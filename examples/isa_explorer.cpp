// Assemble-and-run explorer: feed an assembly file to either ISA's
// assembler, execute it, and print the disassembly plus a dependency
// analysis — handy for studying small instruction sequences the way the
// paper's §3.3 studies the STREAM kernels.
//
//   $ ./build/examples/isa_explorer rv64 my_kernel.s
//   $ ./build/examples/isa_explorer a64 my_kernel.s
//
// Without arguments it runs a built-in demo pair (the paper's copy
// kernels). The program must end with an exit syscall
// (rv64: a7=93, ecall; a64: x8=93, svc #0) or it will run forever.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "aarch64/asm.hpp"
#include "aarch64/disasm.hpp"
#include "analysis/critical_path.hpp"
#include "core/machine.hpp"
#include "riscv/asm.hpp"
#include "riscv/disasm.hpp"

using namespace riscmp;

namespace {

constexpr const char* kDemoRv64 = R"(
  # rv64g STREAM copy (paper Listing 2 shape), 32 elements
  li a5, 0x100000        # src
  li a4, 0x100200        # dst
  li s0, 0x100100        # src end
loop:
  fld fa5, 0(a5)
  fsd fa5, 0(a4)
  addi a5, a5, 8
  addi a4, a4, 8
  bne a5, s0, loop
  li a7, 93
  li a0, 0
  ecall
)";

constexpr const char* kDemoA64 = R"(
  // Armv8-a STREAM copy (paper Listing 1 shape), 32 elements
  movz x22, #0x10, lsl #16   // src = 0x100000
  movz x19, #0x10, lsl #16
  add x19, x19, #0x200       // dst = 0x100200
  mov x0, #0
  mov x20, #32
loop:
  ldr d1, [x22, x0, lsl #3]
  str d1, [x19, x0, lsl #3]
  add x0, x0, #1
  cmp x0, x20
  b.ne loop
  mov x8, #93
  mov x0, #0
  svc #0
)";

int runListing(Arch arch, const std::string& source, std::uint64_t budget) {
  Program program;
  program.arch = arch;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  try {
    program.code = arch == Arch::Rv64
                       ? rv64::assemble(source, program.codeBase)
                       : a64::assemble(source, program.codeBase);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  std::cout << "-- listing (" << archName(arch) << ") --\n";
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const std::uint64_t pc = program.codeBase + i * 4;
    const std::string text = arch == Arch::Rv64
                                 ? rv64::disassemble(program.code[i], pc)
                                 : a64::disassemble(program.code[i], pc);
    std::cout << "  " << std::hex << pc << std::dec << ":  " << text << "\n";
  }

  MachineOptions options;
  options.maxInstructions = budget;
  options.stdoutStream = &std::cout;
  Machine machine(program, options);
  CriticalPathAnalyzer cp;
  machine.addObserver(cp);
  try {
    const RunResult result = machine.run();
    std::cout << "-- execution --\n"
              << "  instructions : " << result.instructions << "\n"
              << "  exit code    : " << result.exitCode << "\n"
              << "  critical path: " << cp.criticalPath() << "\n"
              << "  ILP          : " << cp.ilp() << "\n\n";
  } catch (const Fault& fault) {
    std::cerr << fault.report() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "execution failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t budget = 100'000'000;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      try {
        budget = std::stoull(arg.substr(9));
      } catch (const std::exception&) {
        std::cerr << "error: invalid value for --budget\n";
        return 2;
      }
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    return runListing(Arch::Rv64, kDemoRv64, budget) +
           runListing(Arch::AArch64, kDemoA64, budget);
  }
  if (positional.size() != 2) {
    std::cerr << "usage: " << argv[0]
              << " [--budget=N] rv64|a64 <file.s>\n";
    return 2;
  }
  const std::string& archName = positional[0];
  if (archName != "rv64" && archName != "a64") {
    std::cerr << "unknown architecture '" << archName << "'\n";
    return 2;
  }
  std::ifstream in(positional[1]);
  if (!in) {
    std::cerr << "cannot open '" << positional[1] << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return runListing(archName == "rv64" ? Arch::Rv64 : Arch::AArch64,
                    buffer.str(), budget);
}
