// Quickstart: assemble a tiny program for each ISA, execute it on the
// emulation core, and run a critical-path analysis over the trace.
//
//   $ ./build/examples/quickstart
//
// This touches the three layers most users need: the text assemblers
// (rv64::assemble / a64::assemble), the Machine emulation core, and the
// TraceObserver analyses.
#include <iostream>
#include <string>

#include "aarch64/asm.hpp"
#include "analysis/critical_path.hpp"
#include "core/machine.hpp"
#include "riscv/asm.hpp"

using namespace riscmp;

namespace {

Program makeProgram(Arch arch, std::vector<std::uint32_t> code) {
  Program program;
  program.arch = arch;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  program.code = std::move(code);
  return program;
}

void report(const char* title, Program program, std::uint64_t budget) {
  MachineOptions options;
  options.maxInstructions = budget;
  Machine machine(program, options);
  CriticalPathAnalyzer cp;
  machine.addObserver(cp);
  const RunResult result = machine.run();

  std::cout << title << "\n"
            << "  instructions : " << result.instructions << "\n"
            << "  exit code    : " << result.exitCode << "\n"
            << "  critical path: " << cp.criticalPath() << "\n"
            << "  ILP          : " << cp.ilp() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  // A stuck program raises BudgetExceeded instead of hanging; override
  // with --budget=N (0 = unlimited).
  std::uint64_t budget = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      try {
        budget = std::stoull(arg.substr(9));
      } catch (const std::exception&) {
        std::cerr << "error: invalid value for --budget\n";
        return 2;
      }
    }
  }

  // sum = 10 + 9 + ... + 1 on RV64 (exit code carries the result).
  report("RV64G: sum of 1..10",
         makeProgram(Arch::Rv64, rv64::assemble(R"(
    li a0, 0
    li a1, 10
  loop:
    add a0, a0, a1
    addi a1, a1, -1
    bnez a1, loop
    li a7, 93
    ecall
  )",
                                                Program::kCodeBase)),
         budget);

  // The same loop on AArch64.
  report("AArch64: sum of 1..10",
         makeProgram(Arch::AArch64, a64::assemble(R"(
    mov x0, #0
    mov x1, #10
  loop:
    add x0, x0, x1
    subs x1, x1, #1
    b.ne loop
    mov x8, #93
    svc #0
  )",
                                                  Program::kCodeBase)),
         budget);

  std::cout << "Note the critical paths: the RISC-V loop carries its exit\n"
               "condition through the counter register alone, while the\n"
               "AArch64 subs/b.ne pair also chains through NZCV.\n";
  return 0;
}
