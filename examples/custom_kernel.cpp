// Build a custom kernel with the IR API, compile it for both ISAs under
// both compiler eras, and run the paper's full analysis stack over it:
// path length, critical path, TX2-scaled critical path, windowed CP, and
// the finite-resource OoO core model.
//
// The kernel is a damped 1-D wave update — a stencil with a loop-carried
// chain through the `prev` array, so every analysis has something to see.
#include <iostream>
#include <string>

#include "analysis/critical_path.hpp"
#include "analysis/path_length.hpp"
#include "analysis/windowed_cp.hpp"
#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "kgen/interp.hpp"
#include "support/table.hpp"
#include "uarch/ooo_core.hpp"

using namespace riscmp;
using namespace riscmp::kgen;

namespace {

Module buildWaveModule() {
  constexpr std::int64_t kPoints = 4000;
  Module module;
  module.name = "wave1d";
  auto& current = module.array("curr", kPoints);
  current.init.resize(kPoints, 0.0);
  for (std::int64_t i = kPoints / 4; i < kPoints / 2; ++i) {
    current.init[static_cast<std::size_t>(i)] = 1.0;
  }
  module.array("prev", kPoints).init.assign(kPoints, 0.0);
  module.scalarInit("c2", 0.25);      // wave speed squared (CFL-safe)
  module.scalarInit("damping", 0.999);

  // next = damping * (2*curr - prev + c2*(curr[i-1] - 2 curr[i] + curr[i+1]))
  // written into prev (ping-pong), interior points only.
  std::vector<Stmt> body;
  body.push_back(storeArr(
      "prev", idx("i") + 1,
      mul(scalar("damping"),
          add(sub(mul(cnst(2.0), load("curr", idx("i") + 1)),
                  load("prev", idx("i") + 1)),
              mul(scalar("c2"),
                  add(sub(load("curr", idx("i")),
                          mul(cnst(2.0), load("curr", idx("i") + 1))),
                      load("curr", idx("i") + 2)))))));
  module.kernel("wave_step")
      .body.push_back(loop("i", kPoints - 2, std::move(body)));
  return module;
}

}  // namespace

int main(int argc, char** argv) {
  // Instruction budget per simulated run (--budget=N, 0 = unlimited).
  std::uint64_t budget = 1'000'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      try {
        budget = std::stoull(arg.substr(9));
      } catch (const std::exception&) {
        std::cerr << "error: invalid value for --budget\n";
        return 2;
      }
    }
  }

  const Module module = buildWaveModule();

  // Reference semantics from the interpreter.
  Interpreter interp(module);
  interp.run();
  std::cout << "Interpreter: prev[1000] = " << interp.array("prev")[1000]
            << "\n\n";

  const uarch::CoreModel tx2 = uarch::CoreModel::named("tx2");
  const uarch::CoreModel riscvTx2 = uarch::CoreModel::named("riscv-tx2");

  Table table({"config", "path length", "CP", "ILP", "scaled CP",
               "mean ILP @W=64", "OoO CPI (TX2)"});
  for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
    for (const CompilerEra era : {CompilerEra::Gcc9, CompilerEra::Gcc12}) {
      const Compiled compiled = compile(module, arch, era);
      MachineOptions options;
      options.maxInstructions = budget;
      Machine machine(compiled.program, options);

      CriticalPathAnalyzer cp;
      CriticalPathAnalyzer scaled{arch == Arch::Rv64 ? riscvTx2.latencies
                                                     : tx2.latencies};
      WindowedCPAnalyzer windowed({64});
      uarch::OoOCoreModel core(arch == Arch::Rv64 ? riscvTx2 : tx2);
      machine.addObserver(cp);
      machine.addObserver(scaled);
      machine.addObserver(windowed);
      machine.addObserver(core);
      const RunResult result = machine.run();

      // Cross-check the simulated result against the interpreter.
      const double simulated = machine.memory().read<double>(
          compiled.arrayAddr.at("prev") + 1000 * 8);
      if (simulated != interp.array("prev")[1000]) {
        std::cerr << "validation FAILED for " << archName(arch) << "\n";
        return 1;
      }

      table.addRow({std::string(eraName(era)) + " " +
                        std::string(archName(arch)),
                    withCommas(result.instructions),
                    withCommas(cp.criticalPath()), sigFigs(cp.ilp(), 3),
                    withCommas(scaled.criticalPath()),
                    sigFigs(windowed.results()[0].meanIlp, 3),
                    sigFigs(core.cpi(), 3)});
    }
  }
  std::cout << table;
  std::cout << "\nSimulated memory matches the interpreter on every "
               "configuration.\n";
  return 0;
}
