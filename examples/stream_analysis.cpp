// Reproduction of the paper's §3.3 STREAM analysis (Listings 1 and 2):
// compile the STREAM copy kernel for both ISAs under both compiler eras,
// disassemble the inner loops side by side, and derive the per-iteration
// instruction budgets and the conditional-branch fraction the paper
// discusses ("RISC-V performs 460,027,962 branches ... almost 15% of all
// instructions executed").
#include <iostream>
#include <string>

#include "aarch64/decode.hpp"
#include "aarch64/disasm.hpp"
#include "analysis/path_length.hpp"
#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "riscv/decode.hpp"
#include "riscv/disasm.hpp"
#include "workloads/workloads.hpp"

using namespace riscmp;

namespace {

/// Print the innermost loop body of the copy kernel: the run of
/// instructions ending at the kernel's backward branch.
void printInnerLoop(const kgen::Compiled& compiled) {
  const Program& program = compiled.program;
  const Symbol* kernel = program.kernelNamed("copy");
  if (kernel == nullptr) return;

  // Find the last backward branch in the kernel: its target starts the
  // steady-state loop body.
  const std::size_t first = (kernel->addr - program.codeBase) / 4;
  const std::size_t last = first + kernel->size / 4;
  std::uint64_t loopStart = 0;
  std::uint64_t loopEnd = 0;
  for (std::size_t i = first; i < last; ++i) {
    const std::uint64_t pc = program.codeBase + i * 4;
    const std::uint32_t word = program.code[i];
    // Decode either ISA's branch target via the disassembler-level decode.
    if (program.arch == Arch::Rv64) {
      const auto inst = rv64::decode(word);
      if (inst && inst->info().group == InstGroup::Branch && inst->imm < 0) {
        loopStart = pc + static_cast<std::uint64_t>(inst->imm);
        loopEnd = pc;
      }
    } else {
      const auto inst = a64::decode(word);
      if (inst && inst->info().group == InstGroup::Branch && inst->imm < 0) {
        loopStart = pc + static_cast<std::uint64_t>(inst->imm);
        loopEnd = pc;
      }
    }
  }
  if (loopEnd == 0) return;

  for (std::uint64_t pc = loopStart; pc <= loopEnd; pc += 4) {
    const std::uint32_t word = program.code[(pc - program.codeBase) / 4];
    const std::string text = program.arch == Arch::Rv64
                                 ? rv64::disassemble(word, pc)
                                 : a64::disassemble(word, pc);
    std::cout << "    " << text << "\n";
  }
  std::cout << "    (" << (loopEnd - loopStart) / 4 + 1
            << " instructions per element)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Instruction budget per simulated run (--budget=N, 0 = unlimited).
  std::uint64_t budget = 1'000'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      try {
        budget = std::stoull(arg.substr(9));
      } catch (const std::exception&) {
        std::cerr << "error: invalid value for --budget\n";
        return 2;
      }
    }
  }

  const workloads::StreamParams params{.n = 4096, .reps = 1};
  const kgen::Module module = workloads::makeStream(params);

  struct Case {
    const char* title;
    Arch arch;
    kgen::CompilerEra era;
  };
  const Case cases[] = {
      {"Listing 1 analogue: Armv8-a copy (GCC 12.2 era)", Arch::AArch64,
       kgen::CompilerEra::Gcc12},
      {"Armv8-a copy (GCC 9.2 era: two-instruction loop-exit test)",
       Arch::AArch64, kgen::CompilerEra::Gcc9},
      {"Listing 2 analogue: rv64g copy (both eras)", Arch::Rv64,
       kgen::CompilerEra::Gcc12},
  };

  for (const Case& c : cases) {
    std::cout << c.title << "\n";
    printInnerLoop(kgen::compile(module, c.arch, c.era));
    std::cout << "\n";
  }

  // Branch fraction (paper: ~15% of RISC-V STREAM instructions).
  for (const Arch arch : {Arch::Rv64, Arch::AArch64}) {
    const kgen::Compiled compiled =
        kgen::compile(module, arch, kgen::CompilerEra::Gcc12);
    MachineOptions options;
    options.maxInstructions = budget;
    Machine machine(compiled.program, options);
    PathLengthCounter counter(compiled.program);
    machine.addObserver(counter);
    machine.run();
    std::cout << archName(arch) << " GCC 12.2: "
              << counter.branchCount() << " branches / " << counter.total()
              << " instructions = "
              << 100.0 * static_cast<double>(counter.branchCount()) /
                     static_cast<double>(counter.total())
              << "%\n";
  }
  std::cout << "\nPaper: \"RISC-V performs 460,027,962 branches to complete "
               "STREAM. This is almost 15% of all instructions executed.\"\n";
  return 0;
}
