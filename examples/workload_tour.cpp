// Tour of one workload end to end: IR listing, generated code for both
// ISAs, per-kernel path lengths, and a trace-prefix CSV — everything the
// library exposes for studying how a benchmark maps onto each instruction
// set.
//
//   $ ./build/examples/workload_tour            # STREAM (default)
//   $ ./build/examples/workload_tour lbm        # or: cloverleaf, minibude,
//                                               #     minisweep
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/path_length.hpp"
#include "analysis/trace_log.hpp"
#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "kgen/dump.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace riscmp;

namespace {

kgen::Module pickWorkload(const std::string& name) {
  if (name == "cloverleaf") {
    return workloads::makeCloverLeaf({.nx = 8, .ny = 8, .steps = 1});
  }
  if (name == "lbm") return workloads::makeLbm({.nx = 6, .ny = 6, .iters = 1});
  if (name == "minibude") {
    return workloads::makeMiniBude(
        {.poses = 2, .ligandAtoms = 3, .proteinAtoms = 4});
  }
  if (name == "minisweep") {
    return workloads::makeMinisweep(
        {.ncellX = 2, .ncellY = 2, .ncellZ = 2, .ne = 1, .na = 3});
  }
  return workloads::makeStream({.n = 64, .reps = 1});
}

}  // namespace

int main(int argc, char** argv) {
  // Instruction budget per simulated run (--budget=N, 0 = unlimited).
  std::uint64_t budget = 1'000'000'000;
  std::string name = "stream";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      try {
        budget = std::stoull(arg.substr(9));
      } catch (const std::exception&) {
        std::cerr << "error: invalid value for --budget\n";
        return 2;
      }
    } else {
      name = arg;
    }
  }
  const kgen::Module module = pickWorkload(name);
  MachineOptions options;
  options.maxInstructions = budget;

  std::cout << "===== IR =====\n" << kgen::dumpModule(module) << "\n";

  for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
    const kgen::Compiled compiled =
        kgen::compile(module, arch, kgen::CompilerEra::Gcc12);
    std::cout << "===== " << archName(arch) << " code (GCC 12.2 era, "
              << compiled.program.code.size() << " words) =====\n";
    // Print the first kernel only; the full dump can be large.
    std::istringstream listing(kgen::dumpProgram(compiled.program));
    std::string line;
    int kernelHeaders = 0;
    while (std::getline(listing, line)) {
      if (!line.empty() && line.back() == ':' && line.front() != ' ') {
        if (++kernelHeaders > 1) break;
      }
      std::cout << line << "\n";
    }

    Machine machine(compiled.program, options);
    PathLengthCounter counter(compiled.program);
    machine.addObserver(counter);
    const RunResult result = machine.run();

    Table table({"kernel", "instructions", "share"});
    for (const auto& kernel : counter.kernels()) {
      table.addRow({kernel.name, withCommas(kernel.count),
                    sigFigs(100.0 * static_cast<double>(kernel.count) /
                                static_cast<double>(result.instructions),
                            3) +
                        "%"});
    }
    std::cout << "\n" << table << "\n";
  }

  // Trace prefix as CSV (the offline-analysis interface).
  {
    const kgen::Compiled compiled =
        kgen::compile(module, Arch::Rv64, kgen::CompilerEra::Gcc12);
    Machine machine(compiled.program, options);
    std::ostringstream csv;
    TraceLogger::writeHeader(csv);
    TraceLogger logger(csv, 8);
    machine.addObserver(logger);
    machine.run();
    std::cout << "===== first 8 trace rows (RISC-V) =====\n" << csv.str();
  }
  return 0;
}
