// GridSpec tests (ISSUE 9): exact JSON round-trip, shape resolution and
// its usage errors, fingerprint/cell-key stability properties, and the
// resolver's wiring of analyses and store keys into EngineOptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "engine/grid_spec.hpp"
#include "support/fault.hpp"

namespace riscmp::engine {
namespace {

GridSpec smallSpec() {
  GridSpec spec;
  spec.scale = 0.05;
  spec.workloads = {"STREAM", "LBM"};
  spec.analyses = kPathLength | kCriticalPath;
  spec.budget = 123456;
  return spec;
}

TEST(GridSpecJson, RoundTripsExactly) {
  GridSpec spec = smallSpec();
  spec.configs = {{Arch::AArch64, kgen::CompilerEra::Gcc9},
                  {Arch::Rv64, kgen::CompilerEra::Gcc12}};
  spec.gcc12Analyses = kWindowedCP;
  spec.windowSizes = {4, 64};
  spec.configDir = "/tmp/configs";
  spec.modelA64 = "tx2";
  spec.modelRv64 = "riscv-tx2";
  spec.requireModels = true;
  spec.memCores = {1, 2, 4};

  const GridSpec back = gridSpecFromJson(gridSpecToJson(spec));
  EXPECT_EQ(back.scale, spec.scale);  // bit-exact via scale_bits
  EXPECT_EQ(back.workloads, spec.workloads);
  ASSERT_EQ(back.configs.size(), spec.configs.size());
  for (std::size_t c = 0; c < spec.configs.size(); ++c) {
    EXPECT_EQ(back.configs[c].arch, spec.configs[c].arch);
    EXPECT_EQ(back.configs[c].era, spec.configs[c].era);
  }
  EXPECT_EQ(back.analyses, spec.analyses);
  EXPECT_EQ(back.gcc12Analyses, spec.gcc12Analyses);
  EXPECT_EQ(back.windowSizes, spec.windowSizes);
  EXPECT_EQ(back.budget, spec.budget);
  EXPECT_EQ(back.configDir, spec.configDir);
  EXPECT_EQ(back.modelA64, spec.modelA64);
  EXPECT_EQ(back.modelRv64, spec.modelRv64);
  EXPECT_EQ(back.requireModels, spec.requireModels);
  EXPECT_EQ(back.memCores, spec.memCores);

  // The dump itself must be stable: spec -> json -> spec -> json is a
  // fixed point (the daemon fingerprints canonical re-encodings).
  EXPECT_EQ(gridSpecToJson(spec).dump(), gridSpecToJson(back).dump());
}

TEST(GridSpecJson, RejectsWrongVersionAndBadMask) {
  support::JsonValue doc = gridSpecToJson(smallSpec());
  doc.set("v", support::JsonValue(static_cast<std::uint64_t>(99)));
  EXPECT_THROW(gridSpecFromJson(doc), ConfigError);

  support::JsonValue doc2 = gridSpecToJson(smallSpec());
  doc2.set("analyses",
           support::JsonValue(static_cast<std::uint64_t>(kAllAnalyses + 1)));
  EXPECT_THROW(gridSpecFromJson(doc2), ConfigError);
}

TEST(GridSpecJson, RejectsZeroMemCores) {
  // A zero-core scaling point is meaningless (ISSUE 10); reject it at
  // parse time rather than letting the analyzer silently drop it.
  GridSpec spec = smallSpec();
  spec.memCores = {2, 0};
  EXPECT_THROW(gridSpecFromJson(gridSpecToJson(spec)), ConfigError);
}

TEST(GridShape, FiltersSuiteAndDefaultsConfigs) {
  const GridShape shape = resolveGridShape(smallSpec());
  ASSERT_EQ(shape.suite.size(), 2u);
  EXPECT_EQ(shape.suite[0].name, "STREAM");
  EXPECT_EQ(shape.suite[1].name, "LBM");
  EXPECT_EQ(shape.configs.size(), paperConfigs().size());
}

TEST(GridShape, UnknownWorkloadAndBadScaleAreConfigErrors) {
  GridSpec spec = smallSpec();
  spec.workloads = {"no-such-workload"};
  EXPECT_THROW(resolveGridShape(spec), ConfigError);

  GridSpec bad = smallSpec();
  bad.scale = -1.0;
  EXPECT_THROW(resolveGridShape(bad), ConfigError);
}

TEST(ResolveGridSpec, KeysAreUniqueAndFingerprintIsStable) {
  const GridSpec spec = smallSpec();
  const ResolvedGrid a = resolveGridSpec(spec, {});
  const ResolvedGrid b = resolveGridSpec(spec, {});
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.cellKeys, b.cellKeys);
  EXPECT_EQ(a.cellKeys.size(), a.suite.size() * a.configs.size());
  const std::set<std::string> unique(a.cellKeys.begin(), a.cellKeys.end());
  EXPECT_EQ(unique.size(), a.cellKeys.size());
}

TEST(ResolveGridSpec, KeysSeparateAnalysesBudgetAndScale) {
  const ResolvedGrid base = resolveGridSpec(smallSpec(), {});

  GridSpec other = smallSpec();
  other.analyses = kPathLength;
  EXPECT_NE(resolveGridSpec(other, {}).fingerprint, base.fingerprint);

  other = smallSpec();
  other.budget = base.options.budget + 1;
  EXPECT_NE(resolveGridSpec(other, {}).fingerprint, base.fingerprint);

  other = smallSpec();
  other.scale = 0.06;
  EXPECT_NE(resolveGridSpec(other, {}).fingerprint, base.fingerprint);
}

TEST(ResolveGridSpec, StoreKeyForMapsDenseGridOrder) {
  const ResolvedGrid resolved = resolveGridSpec(smallSpec(), {});
  ASSERT_TRUE(static_cast<bool>(resolved.options.storeKeyFor));
  for (std::size_t w = 0; w < resolved.suite.size(); ++w) {
    for (std::size_t c = 0; c < resolved.configs.size(); ++c) {
      CellKey key;
      key.workloadIndex = w;
      key.configIndex = c;
      EXPECT_EQ(resolved.options.storeKeyFor(key),
                resolved.cellKeys[w * resolved.configs.size() + c]);
    }
  }
}

TEST(ResolveGridSpec, AppliesSpecOntoBaseOptions) {
  GridSpec spec = smallSpec();
  spec.gcc12Analyses = kWindowedCP;
  EngineOptions base;
  base.jobs = 3;
  const ResolvedGrid resolved = resolveGridSpec(spec, base);
  EXPECT_EQ(resolved.options.jobs, 3u);
  EXPECT_EQ(resolved.options.budget, spec.budget);
  EXPECT_EQ(resolved.options.analyses, spec.analyses);
  ASSERT_TRUE(static_cast<bool>(resolved.options.analysesFor));
  CellKey gcc9;
  gcc9.config = {Arch::Rv64, kgen::CompilerEra::Gcc9};
  CellKey gcc12;
  gcc12.config = {Arch::Rv64, kgen::CompilerEra::Gcc12};
  EXPECT_EQ(resolved.options.analysesFor(gcc9), spec.analyses);
  EXPECT_EQ(resolved.options.analysesFor(gcc12),
            spec.analyses | kWindowedCP);
}

TEST(ArchEraTokens, RoundTripAndReject) {
  EXPECT_EQ(archFromToken(archToken(Arch::AArch64)), Arch::AArch64);
  EXPECT_EQ(archFromToken(archToken(Arch::Rv64)), Arch::Rv64);
  EXPECT_EQ(eraFromToken(eraToken(kgen::CompilerEra::Gcc9)),
            kgen::CompilerEra::Gcc9);
  EXPECT_EQ(eraFromToken(eraToken(kgen::CompilerEra::Gcc12)),
            kgen::CompilerEra::Gcc12);
  EXPECT_THROW(archFromToken("x86"), ConfigError);
  EXPECT_THROW(eraFromToken("gcc4"), ConfigError);
}

}  // namespace
}  // namespace riscmp::engine
