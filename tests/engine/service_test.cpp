// SimService tests (ISSUE 9): protocol dispatch (ping/stats/errors), grid
// execution with store-backed warm replies, request batching (identical
// specs in one batch run the engine once and get identical bytes), and a
// live Unix-socket round-trip through serveUnixSocket/requestOverSocket.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/grid_spec.hpp"
#include "engine/service.hpp"
#include "support/fault.hpp"
#include "support/json_lite.hpp"

namespace riscmp::engine {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("riscmp-svc-" + tag + "-" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::string gridRequest() {
  GridSpec spec;
  spec.scale = 0.02;
  spec.workloads = {"STREAM"};
  spec.configs = {{Arch::Rv64, kgen::CompilerEra::Gcc12}};
  spec.analyses = kPathLength;
  support::JsonValue request = support::JsonValue::object();
  request.set("type", support::JsonValue("grid"));
  request.set("spec", gridSpecToJson(spec));
  return request.dump();
}

TEST(SimService, PingStatsAndErrors) {
  SimService service({});
  const support::JsonValue pong =
      support::JsonValue::parse(service.handleLine("{\"type\":\"ping\"}"));
  EXPECT_EQ(pong.at("type").asString(), "pong");
  EXPECT_EQ(pong.at("v").asUint(), kGridSpecV);

  const support::JsonValue err =
      support::JsonValue::parse(service.handleLine("not json"));
  EXPECT_EQ(err.at("type").asString(), "error");

  const support::JsonValue unknown = support::JsonValue::parse(
      service.handleLine("{\"type\":\"frobnicate\"}"));
  EXPECT_EQ(unknown.at("type").asString(), "error");

  const support::JsonValue stats =
      support::JsonValue::parse(service.handleLine("{\"type\":\"stats\"}"));
  EXPECT_EQ(stats.at("type").asString(), "stats");
  EXPECT_EQ(stats.at("requests").asUint(), 4u);
  EXPECT_EQ(stats.at("errors").asUint(), 2u);
  // Storeless daemon: the ResultStore counters exist and read zero.
  EXPECT_EQ(stats.at("store_misses").asUint(), 0u);
  EXPECT_EQ(stats.at("store_writes").asUint(), 0u);
  EXPECT_EQ(stats.at("store_corrupt").asUint(), 0u);
  EXPECT_EQ(stats.at("store_bytes_read").asUint(), 0u);
  EXPECT_EQ(stats.at("store_bytes_written").asUint(), 0u);
}

TEST(SimService, GridRunsAndWarmRepliesComeFromStore) {
  TempDir dir("store");
  ServiceOptions options;
  options.jobs = 1;
  options.storeRoot = (dir.path / "store").string();
  SimService service(options);

  const support::JsonValue cold =
      support::JsonValue::parse(service.handleLine(gridRequest()));
  ASSERT_EQ(cold.at("type").asString(), "grid");
  EXPECT_EQ(cold.at("workloads").asUint(), 1u);
  EXPECT_EQ(cold.at("configs").asUint(), 1u);
  EXPECT_EQ(cold.at("cells").items().size(), 1u);
  EXPECT_EQ(cold.at("stats").at("simulations").asUint(), 1u);
  EXPECT_EQ(cold.at("stats").at("store_hits").asUint(), 0u);

  const support::JsonValue warm =
      support::JsonValue::parse(service.handleLine(gridRequest()));
  EXPECT_EQ(warm.at("stats").at("simulations").asUint(), 0u);
  EXPECT_EQ(warm.at("stats").at("store_hits").asUint(), 1u);
  // The payload (everything but the per-request stats) is byte-identical.
  EXPECT_EQ(cold.at("cells").dump(), warm.at("cells").dump());
  EXPECT_EQ(cold.at("fingerprint").asString(),
            warm.at("fingerprint").asString());

  EXPECT_EQ(service.totals().grids, 2u);
  EXPECT_EQ(service.totals().simulations, 1u);
  EXPECT_EQ(service.totals().storeHits, 1u);

  // The stats reply surfaces the store's own lifetime counters (ISSUE 10
  // satellite): the cold run missed once and wrote its cell, the warm run
  // read those bytes back.
  const support::JsonValue stats =
      support::JsonValue::parse(service.handleLine("{\"type\":\"stats\"}"));
  EXPECT_EQ(stats.at("store_misses").asUint(), 1u);
  EXPECT_EQ(stats.at("store_writes").asUint(), 1u);
  EXPECT_EQ(stats.at("store_corrupt").asUint(), 0u);
  EXPECT_GT(stats.at("store_bytes_written").asUint(), 0u);
  EXPECT_GT(stats.at("store_bytes_read").asUint(), 0u);
  EXPECT_EQ(stats.at("store_hits").asUint(), 1u);
}

TEST(SimService, IdenticalRequestsInOneBatchRunOnce) {
  SimService service({});
  const std::vector<std::string> batch = {gridRequest(), gridRequest()};
  const std::vector<std::string> responses = service.handleBatch(batch);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0], responses[1]);  // same grid -> same bytes
  const support::JsonValue doc = support::JsonValue::parse(responses[0]);
  ASSERT_EQ(doc.at("type").asString(), "grid");
  EXPECT_EQ(doc.at("stats").at("batched").asUint(), 1u);
  // One engine run for the pair, even without a result store.
  EXPECT_EQ(service.totals().simulations, 1u);
  EXPECT_EQ(service.totals().batched, 1u);
  EXPECT_EQ(service.totals().cells, 2u);
}

TEST(SimService, BrokenSpecInBatchDoesNotPoisonOthers) {
  SimService service({});
  const std::vector<std::string> batch = {
      "{\"type\":\"grid\",\"spec\":{\"v\":99}}", gridRequest()};
  const std::vector<std::string> responses = service.handleBatch(batch);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(support::JsonValue::parse(responses[0]).at("type").asString(),
            "error");
  EXPECT_EQ(support::JsonValue::parse(responses[1]).at("type").asString(),
            "grid");
}

TEST(SimService, SocketRoundTripAndShutdownDrain) {
  TempDir dir("sock");
  const std::string socketPath = (dir.path / "d.sock").string();
  SimService service({});
  volatile std::sig_atomic_t stop = 0;
  std::ostringstream log;
  std::thread server([&] { serveUnixSocket(service, socketPath, &stop, log); });

  // Wait for the listener (the daemon logs after bind+listen).
  for (int i = 0; i < 200 && !std::filesystem::exists(socketPath); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const support::JsonValue pong = support::JsonValue::parse(
      requestOverSocket(socketPath, "{\"type\":\"ping\"}"));
  EXPECT_EQ(pong.at("type").asString(), "pong");

  const support::JsonValue grid = support::JsonValue::parse(
      requestOverSocket(socketPath, gridRequest()));
  EXPECT_EQ(grid.at("type").asString(), "grid");

  const support::JsonValue ack = support::JsonValue::parse(
      requestOverSocket(socketPath, "{\"type\":\"shutdown\"}"));
  EXPECT_EQ(ack.at("type").asString(), "shutdown");
  server.join();
  EXPECT_FALSE(std::filesystem::exists(socketPath));  // unlinked on drain
  EXPECT_THROW(requestOverSocket(socketPath, "{\"type\":\"ping\"}"),
               ConfigError);
}

}  // namespace
}  // namespace riscmp::engine
