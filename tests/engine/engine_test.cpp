// Engine acceptance tests (ISSUE 2): determinism across thread counts,
// exactly-once compilation, per-cell fault isolation, and the NaN-safe
// window rendering the report layer relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "engine/engine.hpp"
#include "support/fault.hpp"

namespace riscmp::engine {
namespace {

/// A two-workload suite small enough for every test, with distinct traces.
std::vector<workloads::WorkloadSpec> tinySuite() {
  std::vector<workloads::WorkloadSpec> suite;
  suite.push_back({"stream-xs", workloads::makeStream({.n = 64, .reps = 1})});
  suite.push_back({"stream-s", workloads::makeStream({.n = 200, .reps = 2})});
  return suite;
}

std::vector<Config> gcc12Pair() {
  return {{Arch::AArch64, kgen::CompilerEra::Gcc12},
          {Arch::Rv64, kgen::CompilerEra::Gcc12}};
}

void expectCellsEqual(const CellResult& a, const CellResult& b) {
  EXPECT_EQ(a.key.workload, b.key.workload);
  EXPECT_EQ(a.cell.ok, b.cell.ok);
  EXPECT_EQ(a.faultText, b.faultText);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.criticalPath, b.criticalPath);
  EXPECT_EQ(a.hasScaledCp, b.hasScaledCp);
  EXPECT_EQ(a.scaledCriticalPath, b.scaledCriticalPath);
  EXPECT_EQ(a.unattributed, b.unattributed);
  EXPECT_EQ(a.groups, b.groups);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (std::size_t k = 0; k < a.kernels.size(); ++k) {
    EXPECT_EQ(a.kernels[k].name, b.kernels[k].name);
    EXPECT_EQ(a.kernels[k].count, b.kernels[k].count);
  }
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(a.windows[w].windows, b.windows[w].windows);
    EXPECT_DOUBLE_EQ(a.windows[w].meanCp, b.windows[w].meanCp);
    EXPECT_DOUBLE_EQ(a.windows[w].minCp, b.windows[w].minCp);
    EXPECT_DOUBLE_EQ(a.windows[w].maxCp, b.windows[w].maxCp);
  }
  EXPECT_EQ(a.deps.dependencies, b.deps.dependencies);
  EXPECT_DOUBLE_EQ(a.deps.meanDistance, b.deps.meanDistance);
  EXPECT_DOUBLE_EQ(a.deps.within16, b.deps.within16);
  EXPECT_EQ(a.hasCache, b.hasCache);
  EXPECT_TRUE(a.cache == b.cache);
  EXPECT_EQ(a.cacheFootprintLines, b.cacheFootprintLines);
  EXPECT_EQ(a.cacheLineSetDigest, b.cacheLineSetDigest);
  ASSERT_EQ(a.cacheKernels.size(), b.cacheKernels.size());
  for (std::size_t k = 0; k < a.cacheKernels.size(); ++k) {
    EXPECT_EQ(a.cacheKernels[k].name, b.cacheKernels[k].name);
    EXPECT_EQ(a.cacheKernels[k].instructions, b.cacheKernels[k].instructions);
    EXPECT_EQ(a.cacheKernels[k].l1Misses, b.cacheKernels[k].l1Misses);
    EXPECT_EQ(a.cacheKernels[k].l2Misses, b.cacheKernels[k].l2Misses);
    EXPECT_EQ(a.cacheKernels[k].lineSetDigest, b.cacheKernels[k].lineSetDigest);
  }
  EXPECT_EQ(a.hasCacheAwareCp, b.hasCacheAwareCp);
  EXPECT_EQ(a.cacheAwareCriticalPath, b.cacheAwareCriticalPath);
}

TEST(CellScheduler, ResolvesAutoJobsToAtLeastOne) {
  EXPECT_GE(CellScheduler(0).jobs(), 1u);
  EXPECT_EQ(CellScheduler(3).jobs(), 3u);
}

TEST(CellScheduler, RunsEveryIndexExactlyOnce) {
  const std::size_t count = 100;
  std::vector<std::atomic<int>> hits(count);
  CellScheduler scheduler(4);
  scheduler.run(count, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(CellScheduler, RethrowsAnEscapedExceptionAfterJoining) {
  std::atomic<int> completed{0};
  CellScheduler scheduler(4);
  EXPECT_THROW(scheduler.run(16,
                             [&](std::size_t i) {
                               if (i == 3) throw std::runtime_error("boom");
                               ++completed;
                             }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 15);
}

TEST(CompileCache, CompilesOnceAndSharesTheArtefact) {
  const kgen::Module module = workloads::makeStream({.n = 32, .reps = 1});
  CompileCache cache;
  const auto first = cache.get(module, Arch::Rv64, kgen::CompilerEra::Gcc12);
  const auto second = cache.get(module, Arch::Rv64, kgen::CompilerEra::Gcc12);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.compiles(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // A different era is a different key.
  cache.get(module, Arch::Rv64, kgen::CompilerEra::Gcc9);
  EXPECT_EQ(cache.compiles(), 2u);
}

TEST(CompileCache, FingerprintSeesArrayInitContents) {
  kgen::Module a = workloads::makeStream({.n = 32, .reps = 1});
  kgen::Module b = a;
  ASSERT_FALSE(b.arrays.empty());
  ASSERT_FALSE(b.arrays.front().init.empty());
  b.arrays.front().init.front() += 1.0;
  EXPECT_NE(
      CompileCache::fingerprint(a, Arch::Rv64, kgen::CompilerEra::Gcc12),
      CompileCache::fingerprint(b, Arch::Rv64, kgen::CompilerEra::Gcc12));
}

// Fingerprint-collision coverage (ISSUE 3): structurally identical modules
// that differ only in ways kgen::dumpModule elides must still key distinct
// cache entries, or the cache would serve one module's machine code for
// another's data.

TEST(CompileCache, FingerprintSeparatesArchAndEra) {
  const kgen::Module module = workloads::makeStream({.n = 32, .reps = 1});
  const auto fp = [&](Arch arch, kgen::CompilerEra era) {
    return CompileCache::fingerprint(module, arch, era);
  };
  EXPECT_EQ(fp(Arch::Rv64, kgen::CompilerEra::Gcc12),
            fp(Arch::Rv64, kgen::CompilerEra::Gcc12));
  EXPECT_NE(fp(Arch::Rv64, kgen::CompilerEra::Gcc12),
            fp(Arch::AArch64, kgen::CompilerEra::Gcc12));
  EXPECT_NE(fp(Arch::Rv64, kgen::CompilerEra::Gcc12),
            fp(Arch::Rv64, kgen::CompilerEra::Gcc9));
}

TEST(CompileCache, FingerprintSeparatesExplicitZeroInitFromZeroFill) {
  // dumpModule prints both as array decls, but an explicit all-zero init
  // and an elided (bss) init are different initialiser byte streams.
  kgen::Module zeroFill;
  zeroFill.array("a", 8);
  zeroFill.kernel("k").body.push_back(
      kgen::loop("i", 8, {kgen::storeArr("a", kgen::idx("i"),
                                         kgen::cnst(1.0))}));
  kgen::Module explicitZero = zeroFill;
  explicitZero.arrays.front().init.assign(8, 0.0);

  EXPECT_NE(CompileCache::fingerprint(zeroFill, Arch::Rv64,
                                      kgen::CompilerEra::Gcc12),
            CompileCache::fingerprint(explicitZero, Arch::Rv64,
                                      kgen::CompilerEra::Gcc12));
}

TEST(CompileCache, FingerprintSeparatesSignedZeroInitialisers) {
  // +0.0 and -0.0 print identically almost everywhere but are different
  // bit patterns — the raw-bytes fingerprint must see the difference.
  kgen::Module pos;
  pos.array("a", 4).init.assign(4, 0.0);
  pos.kernel("k").body.push_back(kgen::loop(
      "i", 4,
      {kgen::storeArr("a", kgen::idx("i"), kgen::load("a", kgen::idx("i")))}));
  kgen::Module neg = pos;
  neg.arrays.front().init.assign(4, -0.0);

  EXPECT_NE(
      CompileCache::fingerprint(pos, Arch::Rv64, kgen::CompilerEra::Gcc12),
      CompileCache::fingerprint(neg, Arch::Rv64, kgen::CompilerEra::Gcc12));
}

TEST(CompileCache, DistinctInitModulesGetDistinctArtefacts) {
  kgen::Module a = workloads::makeStream({.n = 32, .reps = 1});
  kgen::Module b = a;
  ASSERT_FALSE(b.arrays.front().init.empty());
  b.arrays.front().init.front() += 1.0;

  CompileCache cache;
  const auto ca = cache.get(a, Arch::Rv64, kgen::CompilerEra::Gcc12);
  const auto cb = cache.get(b, Arch::Rv64, kgen::CompilerEra::Gcc12);
  EXPECT_EQ(cache.compiles(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_NE(ca.get(), cb.get());
  EXPECT_NE(ca->program.data, cb->program.data);
}

TEST(ExperimentEngine, GridIsDeterministicAcrossJobCounts) {
  const auto suite = tinySuite();
  const auto configs = gcc12Pair();
  EngineOptions serial;
  serial.jobs = 1;
  serial.windowSizes = {16, 64};
  EngineOptions wide = serial;
  wide.jobs = 8;

  ExperimentEngine one(serial);
  ExperimentEngine eight(wide);
  const GridResult a = one.runGrid(suite, configs);
  const GridResult b = eight.runGrid(suite, configs);

  ASSERT_EQ(a.cells.size(), suite.size() * configs.size());
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    expectCellsEqual(a.cells[i], b.cells[i]);
  }
  EXPECT_EQ(one.stats().simulations, a.cells.size());
  EXPECT_EQ(eight.stats().simulations, b.cells.size());
}

TEST(ExperimentEngine, CacheAnalysesDeterministicAndIsaInvariant) {
  // ISSUE 5 acceptance: cache counters must be byte-identical across job
  // counts, and — same geometry, same algorithm — identical between the
  // two ISA columns of each workload row.
  const auto suite = tinySuite();
  const auto configs = gcc12Pair();
  const LatencyTable table = unitLatencies();
  uarch::mem::CacheConfig caches;
  caches.l1d = {1024, 2, 4};  // small enough that stream-s spills to L2
  caches.l2 = {8192, 4, 12};
  caches.prefetch = uarch::mem::PrefetchKind::Stride;

  EngineOptions serial;
  serial.jobs = 1;
  serial.analyses = kPathLength | kCacheModel | kCacheAwareCP;
  serial.latenciesFor = [&](Arch) { return &table; };
  serial.cacheConfigFor = [&](Arch) { return &caches; };
  EngineOptions wide = serial;
  wide.jobs = 8;

  ExperimentEngine one(serial);
  ExperimentEngine eight(wide);
  const GridResult a = one.runGrid(suite, configs);
  const GridResult b = eight.runGrid(suite, configs);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_TRUE(a.cells[i].cell.ok) << a.cells[i].cell.summary;
    EXPECT_TRUE(a.cells[i].hasCache);
    EXPECT_TRUE(a.cells[i].hasCacheAwareCp);
    EXPECT_GT(a.cells[i].cache.l1Misses, 0u);
    expectCellsEqual(a.cells[i], b.cells[i]);
  }

  // Cross-ISA: the AArch64 and RISC-V columns of each workload must agree
  // on every cache counter and line set (the E11 invariant).
  for (std::size_t w = 0; w < suite.size(); ++w) {
    const CellResult& a64 = a.at(w, 0);
    const CellResult& rv64 = a.at(w, 1);
    EXPECT_TRUE(a64.cache == rv64.cache) << suite[w].name;
    EXPECT_EQ(a64.cacheFootprintLines, rv64.cacheFootprintLines);
    EXPECT_EQ(a64.cacheLineSetDigest, rv64.cacheLineSetDigest);
  }
}

TEST(ExperimentEngine, CacheAnalysesSkippedWithoutConfig) {
  // No cacheConfigFor hook: the flags are enabled but the cells must
  // complete flat, exactly as before ISSUE 5.
  EngineOptions options;
  options.jobs = 2;
  options.analyses = kAllAnalyses;
  ExperimentEngine eng(options);
  const GridResult grid = eng.runGrid(tinySuite(), gcc12Pair());
  for (const CellResult& cell : grid.cells) {
    ASSERT_TRUE(cell.cell.ok) << cell.cell.summary;
    EXPECT_FALSE(cell.hasCache);
    EXPECT_FALSE(cell.hasCacheAwareCp);
    EXPECT_GT(cell.instructions, 0u);
  }
}

TEST(ExperimentEngine, DuplicateWorkloadsHitTheCompileCache) {
  std::vector<workloads::WorkloadSpec> suite;
  suite.push_back({"stream-a", workloads::makeStream({.n = 48, .reps = 1})});
  suite.push_back({"stream-b", workloads::makeStream({.n = 48, .reps = 1})});
  EngineOptions options;
  options.jobs = 2;
  options.analyses = kPathLength;
  ExperimentEngine eng(options);
  const GridResult grid = eng.runGrid(suite, gcc12Pair());

  // Identical module content: 4 cells, but only one compile per config.
  EXPECT_EQ(eng.stats().compiles, 2u);
  EXPECT_EQ(eng.stats().cacheHits, 2u);
  EXPECT_EQ(eng.stats().simulations, 4u);
  EXPECT_EQ(grid.at(0, 0).instructions, grid.at(1, 0).instructions);
}

TEST(ExperimentEngine, BudgetFaultInOneCellLeavesOthersIntact) {
  // The budget sits between the two workloads' dynamic lengths, so every
  // stream-s cell must fail with BudgetExceeded while every stream-xs cell
  // still completes — on the same worker pool.
  const auto suite = tinySuite();
  const auto configs = gcc12Pair();
  EngineOptions probe;
  probe.jobs = 1;
  probe.analyses = kPathLength;
  ExperimentEngine sizer(probe);
  const GridResult sized = sizer.runGrid(suite, configs);
  const std::uint64_t small = sized.at(0, 0).instructions;
  const std::uint64_t large = sized.at(1, 0).instructions;
  ASSERT_LT(small, large);

  EngineOptions options;
  options.jobs = 4;
  options.analyses = kPathLength | kCriticalPath;
  options.budget = (small + large) / 2;
  ExperimentEngine eng(options);
  const GridResult grid = eng.runGrid(suite, configs);

  for (std::size_t c = 0; c < configs.size(); ++c) {
    const CellResult& ok = grid.at(0, c);
    EXPECT_TRUE(ok.cell.ok) << ok.cell.summary;
    EXPECT_EQ(ok.instructions, sized.at(0, c).instructions);
    EXPECT_GT(ok.criticalPath, 0u);

    const CellResult& failed = grid.at(1, c);
    EXPECT_FALSE(failed.cell.ok);
    EXPECT_EQ(failed.cell.kind, "BudgetExceeded");
    EXPECT_NE(failed.faultText.find("FAULT REPORT"), std::string::npos);
  }
}

TEST(ExperimentEngine, CellSetupFaultFailsOnlyThatCell) {
  const auto suite = tinySuite();
  EngineOptions options;
  options.jobs = 2;
  options.analyses = kPathLength;
  options.cellSetup = [](const CellKey& key) {
    if (key.workloadIndex == 1) {
      throw ConfigError("model unavailable", {}, 0, "tx2");
    }
  };
  ExperimentEngine eng(options);
  const GridResult grid = eng.runGrid(suite, gcc12Pair());
  EXPECT_TRUE(grid.at(0, 0).cell.ok);
  EXPECT_FALSE(grid.at(1, 0).cell.ok);
  EXPECT_EQ(grid.at(1, 0).cell.kind, "ConfigError");
  // The failing cells never reached compilation or simulation.
  EXPECT_EQ(eng.stats().compiles, 2u);
  EXPECT_EQ(eng.stats().simulations, 2u);
}

TEST(WindowIlpCell, RendersDashWhenNoWindowEverFilled) {
  WindowedCPAnalyzer::WindowResult empty;
  empty.windowSize = 2000;
  empty.windows = 0;
  empty.meanIlp = 0.0;
  EXPECT_EQ(windowIlpCell(empty), "-");

  WindowedCPAnalyzer::WindowResult filled;
  filled.windowSize = 4;
  filled.windows = 3;
  filled.meanIlp = 2.0;
  EXPECT_EQ(windowIlpCell(filled), "2.00");
}

TEST(MergeIntoBoundary, ReplaysFaultTextInCellOrderAndSetsExitCode) {
  GridResult grid;
  grid.workloadCount = 1;
  grid.configCount = 2;
  grid.cells.resize(2);
  grid.cells[0].cell = {"w/a", true, "", ""};
  grid.cells[1].cell = {"w/b", false, "TrapFault", "boom"};
  grid.cells[1].faultText = "=== FAULT REPORT: TrapFault ===\n";

  std::ostringstream sink;
  verify::FaultBoundary boundary(sink);
  mergeIntoBoundary(grid, boundary, sink);
  EXPECT_FALSE(boundary.allOk());
  EXPECT_NE(sink.str().find("FAULT REPORT: TrapFault"), std::string::npos);
  EXPECT_NE(boundary.finish(), 0);
  EXPECT_NE(sink.str().find("Fault-boundary summary"), std::string::npos);
}

}  // namespace
}  // namespace riscmp::engine
