// Cell codec + run journal (ISSUE 6 tentpole): exact round-trips, durable
// appends, crash-torn-line tolerance, and the canonical rewrite that makes
// fault-free journals byte-identical across worker counts.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "engine/cell_codec.hpp"
#include "engine/journal.hpp"
#include "support/fault.hpp"

namespace riscmp::engine {
namespace {

namespace fs = std::filesystem;

/// A CellResult with every field populated, including doubles that decimal
/// renderings would mangle (subnormals, values needing all 17 digits).
CellResult sampleCell() {
  CellResult cell;
  cell.key = CellKey{"STREAM", 0,
                     Config{Arch::Rv64, kgen::CompilerEra::Gcc12}, 3};
  cell.cell.name = "STREAM/GCC 12.2 RISC-V";
  cell.instructions = 123456789;
  cell.kernels = {{"copy", 1000}, {"triad", 2000}};
  for (std::size_t g = 0; g < kInstGroupCount; ++g) cell.groups[g] = g * 7 + 1;
  cell.unattributed = 42;
  cell.criticalPath = 54321;
  cell.hasScaledCp = true;
  cell.scaledCriticalPath = 98765;

  WindowedCPAnalyzer::WindowResult window;
  window.windowSize = 64;
  window.windows = 17;
  window.meanCp = 0.1 + 0.2;  // 0.30000000000000004 — decimal-hostile
  window.meanIlp = 5e-324;    // smallest subnormal
  window.minCp = 1.0;
  window.maxCp = 1e308;
  cell.windows = {window};

  cell.deps.dependencies = 77;
  cell.deps.meanDistance = 3.3333333333333335;
  cell.deps.within4 = 0.25;
  cell.deps.within16 = 0.5;
  cell.deps.within64 = 0.75;

  cell.hasCache = true;
  cell.cache.loads = 11;
  cell.cache.stores = 12;
  cell.cache.l1Hits = 13;
  cell.cache.l1Misses = 14;
  cell.cache.l2Hits = 15;
  cell.cache.l2Misses = 16;
  cell.cache.writebacksToL2 = 17;
  cell.cache.writebacksToMem = 18;
  cell.cache.prefetchesIssued = 19;
  cell.cache.prefetchesUseful = 20;
  cell.cacheFootprintLines = 21;
  cell.cacheLineSetDigest = 0xDEADBEEFCAFEF00Dull;
  cell.cacheKernels = {{"copy", 1, 2, 3, 4, 5, 6, 7}};
  cell.hasCacheAwareCp = true;
  cell.cacheAwareCriticalPath = 111213;

  cell.hasThroughput = true;
  cell.throughputProgram =
      {"<program>", 4000, {151, 149, 50, 50, 0, 0}, 151, "ls0", 1000, 88};
  cell.throughputKernels = {
      {"copy", 1000, {100, 100, 0, 0, 0, 0}, 100, "ls0", 250, 8},
      {"triad", 3000, {51, 49, 50, 50, 0, 0}, 51, "ls0", 750, 80}};

  cell.hasFusion = true;
  cell.fusedInstructions = 123450000;
  cell.fusionPairs = 6789;
  for (std::size_t r = 0; r < uarch::kFusionRuleCount; ++r) {
    cell.fusionPairsByRule[r] = r * 11 + 3;
  }
  cell.fusionUnattributedPairs = 5;
  cell.fusionKernels = {{"copy", 1234, {1, 2, 3, 4, 5, 6, 7}},
                        {"triad", 5555, {0, 0, 0, 0, 5555, 0, 0}}};
  cell.fusedKernels = {{"copy", 900}, {"triad", 1800}};
  cell.fusedCriticalPath = 44321;
  cell.hasFusedScaledCp = true;
  cell.fusedScaledCriticalPath = 88765;

  cell.cache.prefetchFillsFromMem = 9;

  cell.hasMemSystem = true;
  cell.memSystem.tlb = {1000, 900, 100, 60, 40, 1200};
  cell.memSystem.footprintPages = 31;
  cell.memSystem.pageSetDigest = 0xFEEDFACE12345678ull;
  cell.memSystem.demandFillBytes = 2048;
  cell.memSystem.prefetchFillBytes = 576;
  cell.memSystem.writebackBytes = 128;
  cell.memSystem.missCycles = 4100;
  cell.memSystem.mshrBoundCycles = 513;
  cell.memSystem.bandwidthBoundCycles = 172;
  cell.memKernels = {{"copy", 1000, 500, 3, 7, 0x1111111111111111ull},
                     {"triad", 2000, 750, 0, 8, 0x2222222222222222ull}};
  uarch::mem::ScalingPoint one;
  one.cores = 1;
  one.perCore = {{500, 40, 24, 16, 5000}};
  one.sharedL2Accesses = 40;
  one.sharedL2Hits = 24;
  one.sharedL2Misses = 16;
  one.sharedWritebacksToMem = 2;
  one.bytesFromMem = 1152;
  one.bandwidthBoundCycles = 72;
  one.mshrBoundCycles = 98;
  uarch::mem::ScalingPoint two;
  two.cores = 2;
  two.perCore = {{500, 44, 20, 24, 5600}, {500, 45, 19, 26, 5800}};
  two.sharedL2Accesses = 89;
  two.sharedL2Hits = 39;
  two.sharedL2Misses = 50;
  two.sharedWritebacksToMem = 5;
  two.bytesFromMem = 3520;
  two.bandwidthBoundCycles = 220;
  two.mshrBoundCycles = 150;
  cell.memScaling = {one, two};
  return cell;
}

void expectIdentical(const CellResult& a, const CellResult& b) {
  // Field-by-field via the canonical encoding: any drift shows up as a
  // digest mismatch, and the dumps make failures readable.
  EXPECT_EQ(encodeCell(a).dump(), encodeCell(b).dump());
  EXPECT_EQ(cellDigest(a), cellDigest(b));
}

TEST(CellCodec, RoundTripsEveryField) {
  const CellResult original = sampleCell();
  const CellResult decoded = decodeCell(encodeCell(original));
  expectIdentical(original, decoded);
  // Spot-check the decimal-hostile doubles really are bit-identical.
  EXPECT_EQ(decoded.windows[0].meanCp, 0.1 + 0.2);
  EXPECT_EQ(decoded.windows[0].meanIlp, 5e-324);
  EXPECT_EQ(decoded.deps.meanDistance, 3.3333333333333335);
}

TEST(CellCodec, RoundTripsFailedCellWithFaultText) {
  CellResult failed = sampleCell();
  failed.cell.ok = false;
  failed.cell.kind = "CrashFault";
  failed.cell.summary =
      "worker for cell 'STREAM/GCC 12.2 RISC-V' killed by SIGSEGV (signal "
      "11)";
  failed.faultText = "\n[cell 'STREAM/GCC 12.2 RISC-V' failed]\n=== FAULT "
                     "REPORT: CrashFault ===\n...\n\n";
  const CellResult decoded = decodeCell(encodeCell(failed));
  expectIdentical(failed, decoded);
  EXPECT_EQ(decoded.cell.kind, "CrashFault");
  EXPECT_EQ(decoded.faultText, failed.faultText);
}

// v3 codec (ISSUE 8): the fusion block must survive the round-trip exactly
// — including per-rule arrays — for both successful and failed cells, so a
// --resume of a fusion grid reproduces BENCH_fusion.json byte-for-byte.
TEST(CellCodec, RoundTripsFusionFields) {
  const CellResult original = sampleCell();
  const CellResult decoded = decodeCell(encodeCell(original));
  expectIdentical(original, decoded);
  EXPECT_TRUE(decoded.hasFusion);
  EXPECT_EQ(decoded.fusedInstructions, 123450000u);
  EXPECT_EQ(decoded.fusionPairs, 6789u);
  EXPECT_EQ(decoded.fusionPairsByRule, original.fusionPairsByRule);
  EXPECT_EQ(decoded.fusionUnattributedPairs, 5u);
  ASSERT_EQ(decoded.fusionKernels.size(), 2u);
  EXPECT_EQ(decoded.fusionKernels[1].name, "triad");
  EXPECT_EQ(decoded.fusionKernels[1].pairs, 5555u);
  EXPECT_EQ(decoded.fusionKernels[1].byRule,
            original.fusionKernels[1].byRule);
  ASSERT_EQ(decoded.fusedKernels.size(), 2u);
  EXPECT_EQ(decoded.fusedKernels[0].count, 900u);
  EXPECT_EQ(decoded.fusedCriticalPath, 44321u);
  EXPECT_TRUE(decoded.hasFusedScaledCp);
  EXPECT_EQ(decoded.fusedScaledCriticalPath, 88765u);
}

// v4 codec (ISSUE 10): the memory-system block — TLB totals, page-set
// digests, occupancy bounds, per-kernel translation stats, and the full
// shared-L2 scaling curve with per-core shares — must survive the
// round-trip exactly so a --resume reproduces BENCH_mem.json
// byte-for-byte.
TEST(CellCodec, RoundTripsMemSystemFields) {
  const CellResult original = sampleCell();
  const CellResult decoded = decodeCell(encodeCell(original));
  expectIdentical(original, decoded);
  EXPECT_TRUE(decoded.hasMemSystem);
  EXPECT_EQ(decoded.memSystem, original.memSystem);
  EXPECT_EQ(decoded.memSystem.tlb.walkCycles, 1200u);
  EXPECT_EQ(decoded.memSystem.pageSetDigest, 0xFEEDFACE12345678ull);
  EXPECT_EQ(decoded.memSystem.totalBytes(), 2048u + 576u + 128u);
  EXPECT_EQ(decoded.cache.prefetchFillsFromMem, 9u);
  ASSERT_EQ(decoded.memKernels.size(), 2u);
  EXPECT_EQ(decoded.memKernels[1].name, "triad");
  EXPECT_EQ(decoded.memKernels[1].pageSetDigest, 0x2222222222222222ull);
  ASSERT_EQ(decoded.memScaling.size(), 2u);
  EXPECT_EQ(decoded.memScaling[0], original.memScaling[0]);
  EXPECT_EQ(decoded.memScaling[1], original.memScaling[1]);
  ASSERT_EQ(decoded.memScaling[1].perCore.size(), 2u);
  EXPECT_EQ(decoded.memScaling[1].perCore[1].latencyCycles, 5800u);
}

TEST(CellCodec, MemSystemlessCellOmitsBlock) {
  CellResult cell = sampleCell();
  cell.hasMemSystem = false;
  const CellResult decoded = decodeCell(encodeCell(cell));
  EXPECT_FALSE(decoded.hasMemSystem);
  EXPECT_EQ(decoded.memSystem, uarch::mem::MemSummary{});
  EXPECT_TRUE(decoded.memKernels.empty());
  EXPECT_TRUE(decoded.memScaling.empty());
  EXPECT_NE(cellDigest(cell), cellDigest(sampleCell()));
}

TEST(CellCodec, RoundTripsFailedFusedCell) {
  // A fusion cell that faulted mid-grid: ok=false with fault text, fusion
  // block still attached (the cell may have been harvested pre-fault on a
  // resume path). Both the flag and the payload must round-trip.
  CellResult failed = sampleCell();
  failed.cell.ok = false;
  failed.cell.kind = "TimeoutFault";
  failed.cell.summary = "worker for cell 'STREAM/GCC 12.2 RISC-V' timed out";
  failed.faultText = "=== FAULT REPORT: TimeoutFault ===\n...\n";
  const CellResult decoded = decodeCell(encodeCell(failed));
  expectIdentical(failed, decoded);
  EXPECT_FALSE(decoded.cell.ok);
  EXPECT_TRUE(decoded.hasFusion);
  EXPECT_EQ(decoded.fusionPairs, 6789u);
  EXPECT_EQ(decoded.faultText, failed.faultText);
}

TEST(CellCodec, FusionlessCellOmitsFusionBlock) {
  CellResult cell = sampleCell();
  cell.hasFusion = false;
  const CellResult decoded = decodeCell(encodeCell(cell));
  EXPECT_FALSE(decoded.hasFusion);
  EXPECT_EQ(decoded.fusionPairs, 0u);
  EXPECT_TRUE(decoded.fusionKernels.empty());
  // And the digest separates fused from fusionless cells.
  EXPECT_NE(cellDigest(cell), cellDigest(sampleCell()));
}

TEST(CellCodec, RoundTripsNaN) {
  CellResult cell = sampleCell();
  cell.windows[0].meanCp = std::numeric_limits<double>::quiet_NaN();
  const CellResult decoded = decodeCell(encodeCell(cell));
  EXPECT_TRUE(std::isnan(decoded.windows[0].meanCp));
}

TEST(CellCodec, RejectsUnknownVersion) {
  support::JsonValue doc = encodeCell(sampleCell());
  doc.set("v", support::JsonValue(std::uint64_t{999}));
  EXPECT_THROW((void)decodeCell(doc), ConfigError);
}

TEST(CellCodec, DigestIsSensitiveToEveryBit) {
  CellResult a = sampleCell();
  CellResult b = sampleCell();
  EXPECT_EQ(cellDigest(a), cellDigest(b));
  b.windows[0].meanCp = std::nextafter(b.windows[0].meanCp, 1.0);
  EXPECT_NE(cellDigest(a), cellDigest(b));
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("riscmp-journal-" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    header_.workloads = {"STREAM"};
    header_.configs = {"GCC 12.2 RISC-V"};
    header_.budget = 1000;
    header_.analyses = 127;
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  static JournalEntry entryFor(const CellResult& cell) {
    return JournalEntry{cell.cell.name, "00ff00ff00ff00ff", cell};
  }

  fs::path dir_;
  JournalHeader header_;
};

TEST_F(JournalTest, AppendThenLoadRoundTrips) {
  const CellResult cell = sampleCell();
  {
    RunJournal journal(path("run.jsonl"), header_);
    journal.append(entryFor(cell), 1234, 0);
  }
  const RunJournal::Loaded loaded = RunJournal::load(path("run.jsonl"));
  EXPECT_TRUE(loaded.hasHeader);
  EXPECT_EQ(loaded.header, header_);
  EXPECT_EQ(loaded.skippedLines, 0u);
  ASSERT_EQ(loaded.entries.size(), 1u);
  const JournalEntry& entry = loaded.entries.at(cell.cell.name);
  EXPECT_EQ(entry.fingerprint, "00ff00ff00ff00ff");
  expectIdentical(entry.result, cell);
}

TEST_F(JournalTest, MissingFileLoadsEmpty) {
  const RunJournal::Loaded loaded = RunJournal::load(path("nope.jsonl"));
  EXPECT_FALSE(loaded.hasHeader);
  EXPECT_TRUE(loaded.entries.empty());
}

TEST_F(JournalTest, ToleratesTornFinalLine) {
  const CellResult cell = sampleCell();
  {
    RunJournal journal(path("run.jsonl"), header_);
    journal.append(entryFor(cell), 10, 0);
  }
  // Simulate a crash mid-append: a second record cut off mid-line.
  {
    std::ofstream out(path("run.jsonl"), std::ios::app);
    out << R"({"type":"cell","v":1,"name":"torn","fp":"01)";
  }
  const RunJournal::Loaded loaded = RunJournal::load(path("run.jsonl"));
  EXPECT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.skippedLines, 1u);
  EXPECT_TRUE(loaded.entries.count(cell.cell.name) == 1);
}

TEST_F(JournalTest, RejectsTamperedResultDigest) {
  const CellResult cell = sampleCell();
  {
    RunJournal journal(path("run.jsonl"), header_);
    journal.append(entryFor(cell), 10, 0);
  }
  std::ifstream in(path("run.jsonl"));
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Flip a digit inside the stored instruction count.
  const std::string needle = "\"instructions\":123456789";
  const auto at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "\"instructions\":123456780");
  std::ofstream(path("run.jsonl"), std::ios::trunc) << text;

  const RunJournal::Loaded loaded = RunJournal::load(path("run.jsonl"));
  EXPECT_TRUE(loaded.entries.empty());  // digest mismatch -> re-run the cell
  EXPECT_EQ(loaded.skippedLines, 1u);
}

TEST_F(JournalTest, LastRecordPerCellWins) {
  CellResult first = sampleCell();
  CellResult second = sampleCell();
  second.instructions = 5;
  {
    RunJournal journal(path("run.jsonl"), header_);
    journal.append(entryFor(first), 10, 0);
    journal.append(entryFor(second), 20, 1);
  }
  const RunJournal::Loaded loaded = RunJournal::load(path("run.jsonl"));
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries.at(first.cell.name).result.instructions, 5u);
}

TEST_F(JournalTest, FinalizeProducesCanonicalBytes) {
  const CellResult cell = sampleCell();
  // Two journals, different append order/timing, same grid: after
  // finalize both files must be byte-identical (the --jobs determinism
  // acceptance in miniature).
  CellResult other = sampleCell();
  other.cell.name = "STREAM/GCC 9.2 RISC-V";
  const std::vector<JournalEntry> canonical = {entryFor(cell),
                                               entryFor(other)};
  {
    RunJournal journal(path("a.jsonl"), header_);
    journal.append(entryFor(cell), 111, 0);
    journal.append(entryFor(other), 222, 2);
    journal.finalize(canonical);
  }
  {
    RunJournal journal(path("b.jsonl"), header_);
    journal.append(entryFor(other), 999, 1);
    journal.append(entryFor(cell), 1, 0);
    journal.finalize(canonical);
  }
  std::ifstream a(path("a.jsonl")), b(path("b.jsonl"));
  const std::string aText((std::istreambuf_iterator<char>(a)),
                          std::istreambuf_iterator<char>());
  const std::string bText((std::istreambuf_iterator<char>(b)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(aText, bText);
  EXPECT_NE(aText.find("\"type\":\"end\""), std::string::npos);
  // Volatile fields are dropped from the canonical form.
  EXPECT_EQ(aText.find("\"us\":"), std::string::npos);
  EXPECT_EQ(aText.find("\"attempt\":"), std::string::npos);
}

TEST_F(JournalTest, HeaderMismatchIsDetectable) {
  {
    RunJournal journal(path("run.jsonl"), header_);
    journal.append(entryFor(sampleCell()), 10, 0);
  }
  const RunJournal::Loaded loaded = RunJournal::load(path("run.jsonl"));
  JournalHeader other = header_;
  other.budget = 2000;
  EXPECT_TRUE(loaded.header == header_);
  EXPECT_FALSE(loaded.header == other);
}

}  // namespace
}  // namespace riscmp::engine
