// ResultStore tests (ISSUE 9): bit-exact round-trip through the on-disk
// cell_codec encoding, the verification trust model (corrupt/stale files
// are counted misses, never results), and the engine's read/write-through
// integration including the store-hits stats suffix.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/grid_spec.hpp"
#include "engine/result_store.hpp"
#include "support/fault.hpp"

namespace riscmp::engine {
namespace {

/// Unique temp root per test; removed on destruction.
struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("riscmp-store-" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

GridSpec streamSpec() {
  GridSpec spec;
  spec.scale = 0.02;
  spec.workloads = {"STREAM"};
  spec.configs = {{Arch::Rv64, kgen::CompilerEra::Gcc12}};
  spec.analyses = kPathLength | kCriticalPath;
  return spec;
}

GridResult runWithStore(const std::shared_ptr<ResultStore>& store) {
  const ResolvedGrid resolved = resolveGridSpec(streamSpec(), {});
  EngineOptions options = resolved.options;
  options.jobs = 1;
  options.resultStore = store;
  ExperimentEngine engine(options);
  return engine.runGrid(resolved.suite, resolved.configs);
}

TEST(ResultStore, MissThenRoundTrip) {
  TempDir dir;
  ResultStore store(dir.path.string());
  EXPECT_FALSE(store.load("0123456789abcdef").has_value());
  EXPECT_EQ(store.misses(), 1u);

  const ResolvedGrid resolved = resolveGridSpec(streamSpec(), {});
  ExperimentEngine engine(resolved.options);
  const GridResult grid = engine.runGrid(resolved.suite, resolved.configs);
  ASSERT_EQ(grid.cells.size(), 1u);
  ASSERT_TRUE(grid.cells[0].cell.ok);

  ASSERT_TRUE(store.store(resolved.cellKeys[0], grid.cells[0]));
  const auto back = store.load(resolved.cellKeys[0]);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->instructions, grid.cells[0].instructions);
  EXPECT_EQ(back->criticalPath, grid.cells[0].criticalPath);
  EXPECT_EQ(back->key.workload, grid.cells[0].key.workload);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.writes(), 1u);
  // The hit read back exactly the bytes the write persisted.
  EXPECT_GT(store.bytesWritten(), 0u);
  EXPECT_EQ(store.bytesRead(), store.bytesWritten());
}

TEST(ResultStore, CorruptAndMismatchedFilesAreMisses) {
  TempDir dir;
  ResultStore store(dir.path.string());
  const ResolvedGrid resolved = resolveGridSpec(streamSpec(), {});
  ExperimentEngine engine(resolved.options);
  const GridResult grid = engine.runGrid(resolved.suite, resolved.configs);
  ASSERT_TRUE(store.store(resolved.cellKeys[0], grid.cells[0]));

  // Truncated file: parse fails -> counted corrupt miss.
  const std::string path = store.cellPath(resolved.cellKeys[0]);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "{\"v\":3,\"key\":";
  }
  EXPECT_FALSE(store.load(resolved.cellKeys[0]).has_value());
  EXPECT_EQ(store.corrupt(), 1u);

  // A valid record stored under the wrong key must not be served: the
  // embedded key check catches renamed/aliased files.
  ASSERT_TRUE(store.store(resolved.cellKeys[0], grid.cells[0]));
  const std::string alias = "feedfacefeedface";
  std::filesystem::create_directories(
      std::filesystem::path(store.cellPath(alias)).parent_path());
  std::filesystem::copy_file(store.cellPath(resolved.cellKeys[0]),
                             store.cellPath(alias));
  EXPECT_FALSE(store.load(alias).has_value());
  EXPECT_GE(store.corrupt(), 2u);
}

TEST(ResultStore, EngineReadThroughSkipsSimulation) {
  TempDir dir;
  auto store = std::make_shared<ResultStore>(dir.path.string());

  const GridResult cold = runWithStore(store);
  ASSERT_EQ(cold.cells.size(), 1u);
  ASSERT_TRUE(cold.cells[0].cell.ok);
  EXPECT_EQ(store.get()->writes(), 1u);

  auto warmStore = std::make_shared<ResultStore>(dir.path.string());
  const ResolvedGrid resolved = resolveGridSpec(streamSpec(), {});
  EngineOptions options = resolved.options;
  options.jobs = 1;
  options.resultStore = warmStore;
  ExperimentEngine engine(options);
  const GridResult warm = engine.runGrid(resolved.suite, resolved.configs);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.simulations, 0u);
  EXPECT_EQ(stats.compiles, 0u);
  EXPECT_EQ(stats.storeHits, 1u);
  EXPECT_EQ(warm.cells[0].instructions, cold.cells[0].instructions);
  EXPECT_EQ(warm.cells[0].criticalPath, cold.cells[0].criticalPath);
  EXPECT_EQ(warm.cells[0].key.workload, "STREAM");

  // The footer advertises store hits only when there are any.
  std::ostringstream footer;
  footer << describe(stats);
  EXPECT_NE(footer.str().find("store-hits=1"), std::string::npos);
}

TEST(ResultStore, FailedCellsAreNotStored) {
  TempDir dir;
  auto store = std::make_shared<ResultStore>(dir.path.string());
  const ResolvedGrid resolved = resolveGridSpec(streamSpec(), {});
  EngineOptions options = resolved.options;
  options.jobs = 1;
  options.resultStore = store;
  options.cellSetup = [](const CellKey&) {
    throw ConfigError("deliberately broken cell", {}, 0, "test");
  };
  ExperimentEngine engine(options);
  const GridResult grid = engine.runGrid(resolved.suite, resolved.configs);
  ASSERT_FALSE(grid.cells[0].cell.ok);
  EXPECT_EQ(store->writes(), 0u);
}

}  // namespace
}  // namespace riscmp::engine
