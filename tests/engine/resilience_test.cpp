// Resilient execution (ISSUE 6): deterministic retry backoff, the deadline
// watchdog, the forked worker pool, and the engine-level deadline / crash
// isolation / journal-resume contracts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "engine/cell_codec.hpp"
#include "engine/engine.hpp"
#include "engine/process_worker.hpp"
#include "engine/watchdog.hpp"
#include "support/fault.hpp"

namespace riscmp::engine {
namespace {

namespace fs = std::filesystem;

std::vector<Config> gcc12Pair() {
  return {{Arch::AArch64, kgen::CompilerEra::Gcc12},
          {Arch::Rv64, kgen::CompilerEra::Gcc12}};
}

fs::path freshTempDir() {
  const fs::path dir =
      fs::temp_directory_path() /
      ("riscmp-resilience-" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---- retry backoff schedule ----------------------------------------------

TEST(RetryBackoff, AttemptZeroRunsImmediately) {
  EXPECT_EQ(retryBackoffDelayMs(100, 42, 3, 0), 0u);
}

TEST(RetryBackoff, DoublesPerAttemptWithBoundedJitter) {
  for (unsigned attempt = 1; attempt <= 3; ++attempt) {
    const std::uint64_t delay = retryBackoffDelayMs(100, 42, 3, attempt);
    const std::uint64_t base = std::uint64_t{100} << (attempt - 1);
    EXPECT_GE(delay, base) << "attempt " << attempt;
    EXPECT_LT(delay, base + 100) << "attempt " << attempt;
  }
}

TEST(RetryBackoff, ScheduleIsDeterministic) {
  // Same (seed, task, attempt) -> same delay: retried runs replay the same
  // wall-clock schedule, which keeps logs and tests reproducible.
  EXPECT_EQ(retryBackoffDelayMs(100, 7, 5, 2), retryBackoffDelayMs(100, 7, 5, 2));
  EXPECT_EQ(retryBackoffDelayMs(50, 123, 0, 1), retryBackoffDelayMs(50, 123, 0, 1));
}

// ---- watchdog -------------------------------------------------------------

TEST(WatchdogTest, ZeroDeadlineReturnsUnarmedToken) {
  Watchdog watchdog;
  const Watchdog::Token token = watchdog.arm(0);
  EXPECT_EQ(token.flag(), nullptr);
}

TEST(WatchdogTest, ExpiredDeadlineSetsFlagToDeadlineMs) {
  Watchdog watchdog;
  const Watchdog::Token token = watchdog.arm(20);
  ASSERT_NE(token.flag(), nullptr);
  EXPECT_EQ(token.flag()->load(), 0u);  // not expired yet at arm time
  const auto start = std::chrono::steady_clock::now();
  while (token.flag()->load() == 0 &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(token.flag()->load(), 20u);
}

// ---- forked worker pool ---------------------------------------------------

TEST(ProcessWorker, DeliversPayloadsFromAllWorkers) {
  ProcessPoolOptions options;
  options.jobs = 2;
  std::map<std::size_t, WorkerOutcome> outcomes;
  const std::vector<std::size_t> skipped = runForkedCells(
      4, options,
      [](std::size_t task) { return "payload-" + std::to_string(task); },
      [&](std::size_t task, const WorkerOutcome& outcome) {
        outcomes[task] = outcome;
        return true;
      });
  EXPECT_TRUE(skipped.empty());
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t task = 0; task < 4; ++task) {
    EXPECT_EQ(outcomes[task].status, WorkerOutcome::Status::Payload);
    EXPECT_EQ(outcomes[task].payload, "payload-" + std::to_string(task));
    EXPECT_EQ(outcomes[task].attempt, 0u);
  }
}

TEST(ProcessWorker, CapturesSegfaultAsCrashedWithSignal) {
  ProcessPoolOptions options;
  options.jobs = 2;
  std::map<std::size_t, WorkerOutcome> outcomes;
  runForkedCells(
      2, options,
      [](std::size_t task) -> std::string {
        if (task == 0) std::raise(SIGSEGV);
        return "ok";
      },
      [&](std::size_t task, const WorkerOutcome& outcome) {
        outcomes[task] = outcome;
        return outcome.status == WorkerOutcome::Status::Payload;
      });
  EXPECT_EQ(outcomes[0].status, WorkerOutcome::Status::Crashed);
  EXPECT_EQ(outcomes[0].signo, SIGSEGV);
  EXPECT_EQ(outcomes[1].status, WorkerOutcome::Status::Payload);
}

TEST(ProcessWorker, CapturesSilentExitAsCrashedWithCode) {
  ProcessPoolOptions options;
  std::map<std::size_t, WorkerOutcome> outcomes;
  runForkedCells(
      1, options,
      [](std::size_t) -> std::string {
        _exit(7);  // no payload, no signal: still a captured failure
      },
      [&](std::size_t task, const WorkerOutcome& outcome) {
        outcomes[task] = outcome;
        return false;
      });
  EXPECT_EQ(outcomes[0].status, WorkerOutcome::Status::Crashed);
  EXPECT_EQ(outcomes[0].signo, 0);
  EXPECT_EQ(outcomes[0].exitCode, 7);
}

TEST(ProcessWorker, KillsHungWorkerAtDeadline) {
  ProcessPoolOptions options;
  options.jobs = 2;
  options.deadlineMs = 150;
  std::map<std::size_t, WorkerOutcome> outcomes;
  runForkedCells(
      2, options,
      [](std::size_t task) -> std::string {
        if (task == 0) {
          for (;;) pause();  // wedged outside any cooperative check
        }
        return "ok";
      },
      [&](std::size_t task, const WorkerOutcome& outcome) {
        outcomes[task] = outcome;
        return outcome.status == WorkerOutcome::Status::Payload;
      });
  EXPECT_EQ(outcomes[0].status, WorkerOutcome::Status::TimedOut);
  EXPECT_EQ(outcomes[1].status, WorkerOutcome::Status::Payload);
}

TEST(ProcessWorker, RetriesTransientCrashUntilSuccess) {
  const fs::path dir = freshTempDir();
  const fs::path marker = dir / "crashed-once";
  ProcessPoolOptions options;
  options.retries = 2;
  options.backoffBaseMs = 1;
  std::map<std::size_t, WorkerOutcome> outcomes;
  runForkedCells(
      1, options,
      [&](std::size_t) -> std::string {
        if (!fs::exists(marker)) {
          std::ofstream(marker) << "x";
          std::raise(SIGKILL);
        }
        return "recovered";
      },
      [&](std::size_t task, const WorkerOutcome& outcome) {
        outcomes[task] = outcome;
        return outcome.status == WorkerOutcome::Status::Payload;
      });
  EXPECT_EQ(outcomes[0].status, WorkerOutcome::Status::Payload);
  EXPECT_EQ(outcomes[0].payload, "recovered");
  EXPECT_GE(outcomes[0].attempt, 1u);  // first attempt died on SIGKILL
  fs::remove_all(dir);
}

TEST(ProcessWorker, FailFastSkipsTasksAfterFirstFailure) {
  ProcessPoolOptions options;
  options.jobs = 1;  // serial, so the failure deterministically comes first
  options.failFast = true;
  std::map<std::size_t, WorkerOutcome> outcomes;
  const std::vector<std::size_t> skipped = runForkedCells(
      4, options,
      [](std::size_t task) -> std::string {
        if (task == 0) std::raise(SIGSEGV);
        return "ok";
      },
      [&](std::size_t task, const WorkerOutcome& outcome) {
        outcomes[task] = outcome;
        return outcome.status == WorkerOutcome::Status::Payload;
      });
  EXPECT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(skipped, (std::vector<std::size_t>{1, 2, 3}));
}

// ---- engine-level contracts ----------------------------------------------

TEST(Resilience, ThreadModeDeadlineRaisesTimeoutFault) {
  EngineOptions options;
  options.jobs = 2;
  options.budget = 0;  // unlimited: the deadline, not the budget, must fire
  options.analyses = kPathLength;
  options.deadlineSeconds = 0.001;
  ExperimentEngine eng(options);
  std::vector<workloads::WorkloadSpec> suite;
  suite.push_back(
      {"stream-xl", workloads::makeStream({.n = 2048, .reps = 500})});
  const GridResult grid = eng.runGrid(suite, gcc12Pair());
  ASSERT_EQ(grid.cells.size(), 2u);
  EXPECT_TRUE(grid.anyFailed());
  for (const CellResult& cell : grid.cells) {
    EXPECT_FALSE(cell.cell.ok);
    EXPECT_EQ(cell.cell.kind, "TimeoutFault");
    EXPECT_NE(cell.cell.summary.find("wall-clock deadline exceeded (1 ms)"),
              std::string::npos);
    // Cooperative cancellation unwinds through the machine, so the report
    // carries full machine context like any taxonomy fault.
    EXPECT_NE(cell.faultText.find("=== FAULT REPORT: TimeoutFault ==="),
              std::string::npos);
  }
}

TEST(Resilience, ProcessIsolationCapturesCrashAndContinues) {
  EngineOptions options;
  options.jobs = 2;
  options.analyses = kPathLength;
  options.isolate = IsolationMode::Process;
  options.cellSetup = [](const CellKey& key) {
    if (key.workload == "crashy") std::raise(SIGSEGV);
  };
  ExperimentEngine eng(options);
  std::vector<workloads::WorkloadSpec> suite;
  suite.push_back({"crashy", workloads::makeStream({.n = 32, .reps = 1})});
  suite.push_back({"healthy", workloads::makeStream({.n = 64, .reps = 1})});
  const GridResult grid = eng.runGrid(suite, gcc12Pair());
  ASSERT_EQ(grid.cells.size(), 4u);
  for (std::size_t c = 0; c < 2; ++c) {
    const CellResult& crashed = grid.at(0, c);
    EXPECT_FALSE(crashed.cell.ok);
    EXPECT_EQ(crashed.cell.kind, "CrashFault");
    EXPECT_NE(crashed.cell.summary.find("killed by SIGSEGV (signal 11)"),
              std::string::npos);
    EXPECT_NE(crashed.cell.summary.find(crashed.cell.name),
              std::string::npos);  // the fault names the cell
    const CellResult& healthy = grid.at(1, c);
    EXPECT_TRUE(healthy.cell.ok);  // the grid survived the worker's death
    EXPECT_GT(healthy.instructions, 0u);
  }
  EXPECT_TRUE(grid.anyFailed());
}

TEST(Resilience, ProcessIsolationRetriesTransientCrash) {
  const fs::path dir = freshTempDir();
  const fs::path marker = dir / "crashed-once";
  EngineOptions options;
  options.jobs = 1;
  options.analyses = kPathLength;
  options.isolate = IsolationMode::Process;
  options.retries = 1;
  options.retryBackoffMs = 1;
  options.cellSetup = [marker](const CellKey& key) {
    if (key.workload == "flaky" && !fs::exists(marker)) {
      std::ofstream(marker) << "x";
      std::raise(SIGSEGV);
    }
  };
  ExperimentEngine eng(options);
  std::vector<workloads::WorkloadSpec> suite;
  suite.push_back({"flaky", workloads::makeStream({.n = 32, .reps = 1})});
  const GridResult grid =
      eng.runGrid(suite, {{Arch::Rv64, kgen::CompilerEra::Gcc12}});
  ASSERT_EQ(grid.cells.size(), 1u);
  EXPECT_TRUE(grid.cells[0].cell.ok) << grid.cells[0].cell.summary;
  EXPECT_GT(grid.cells[0].instructions, 0u);
  fs::remove_all(dir);
}

TEST(Resilience, FailFastMarksUnstartedCellsSkipped) {
  EngineOptions options;
  options.jobs = 1;  // serial: the failing cell deterministically runs first
  options.analyses = kPathLength;
  options.failFast = true;
  options.cellSetup = [](const CellKey& key) {
    if (key.workloadIndex == 0 && key.configIndex == 0) {
      throw ConfigError("injected failure", "resilience_test");
    }
  };
  ExperimentEngine eng(options);
  std::vector<workloads::WorkloadSpec> suite;
  suite.push_back({"stream-a", workloads::makeStream({.n = 32, .reps = 1})});
  suite.push_back({"stream-b", workloads::makeStream({.n = 32, .reps = 1})});
  const GridResult grid = eng.runGrid(suite, gcc12Pair());
  ASSERT_EQ(grid.cells.size(), 4u);
  EXPECT_FALSE(grid.cells[0].cell.ok);
  EXPECT_EQ(grid.cells[0].cell.kind, "ConfigError");
  for (std::size_t i = 1; i < grid.cells.size(); ++i) {
    EXPECT_FALSE(grid.cells[i].cell.ok);
    EXPECT_EQ(grid.cells[i].cell.kind, "skipped");
    EXPECT_NE(grid.cells[i].cell.summary.find("--fail-fast"),
              std::string::npos);
  }
}

TEST(Resilience, ResumeReusesEveryCompletedCell) {
  const fs::path dir = freshTempDir();
  const std::string journal = (dir / "run.jsonl").string();
  std::vector<workloads::WorkloadSpec> suite;
  suite.push_back({"stream-a", workloads::makeStream({.n = 64, .reps = 1})});
  suite.push_back({"stream-b", workloads::makeStream({.n = 200, .reps = 2})});
  const std::vector<Config> configs = gcc12Pair();

  EngineOptions options;
  options.jobs = 2;
  options.journalPath = journal;
  ExperimentEngine first(options);
  const GridResult fresh = first.runGrid(suite, configs);
  ASSERT_EQ(fresh.cells.size(), 4u);
  EXPECT_FALSE(fresh.anyFailed());

  EngineOptions resumeOptions = options;
  resumeOptions.resumeFrom = journal;
  ExperimentEngine second(resumeOptions);
  const GridResult resumed = second.runGrid(suite, configs);

  EXPECT_EQ(second.stats().resumed, 4u);
  EXPECT_EQ(second.stats().simulations, 0u);  // nothing re-executed
  ASSERT_EQ(resumed.cells.size(), fresh.cells.size());
  for (std::size_t i = 0; i < fresh.cells.size(); ++i) {
    // Bit-exact reuse, doubles included — the codec round-trip guarantee.
    EXPECT_EQ(cellDigest(resumed.cells[i]), cellDigest(fresh.cells[i]));
  }
  fs::remove_all(dir);
}

TEST(Resilience, ResumeRejectsJournalFromDifferentGrid) {
  const fs::path dir = freshTempDir();
  const std::string journal = (dir / "run.jsonl").string();
  std::vector<workloads::WorkloadSpec> suite;
  suite.push_back({"stream-a", workloads::makeStream({.n = 64, .reps = 1})});
  const std::vector<Config> configs = gcc12Pair();

  EngineOptions options;
  options.journalPath = journal;
  ExperimentEngine first(options);
  (void)first.runGrid(suite, configs);

  EngineOptions mismatched = options;
  mismatched.resumeFrom = journal;
  mismatched.journalPath.clear();
  mismatched.budget = 12345;  // different grid identity
  ExperimentEngine second(mismatched);
  EXPECT_THROW((void)second.runGrid(suite, configs), ConfigError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace riscmp::engine
