#include <gtest/gtest.h>

#include "aarch64/asm.hpp"
#include "aarch64/disasm.hpp"
#include "aarch64/encode.hpp"

namespace riscmp::a64 {
namespace {

TEST(A64Asm, BasicInstructions) {
  const auto words = assemble(
      "add x0, x1, x2\n"
      "sub w3, w4, #5\n"
      "cmp x0, x20\n"
      "mov x1, #7\n"
      "mul x2, x3, x4\n"
      "sdiv x5, x6, x7\n");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(words[0], encode(makeAddSubReg(Op::ADDr, 0, 1, 2)));
  EXPECT_EQ(words[1],
            encode(makeAddSubImm(Op::SUBi, 3, 4, 5, false, false)));
  EXPECT_EQ(words[2], encode(makeCmpReg(0, 20)));
  EXPECT_EQ(words[3], encode(makeMoveWide(Op::MOVZ, 1, 7, 0)));
  EXPECT_EQ(words[4], encode(makeDp3(Op::MADD, 2, 3, 4, 31)));
  EXPECT_EQ(words[5], encode(makeDp2(Op::SDIV, 5, 6, 7)));
}

TEST(A64Asm, PaperListing1) {
  // Armv8-a STREAM copy kernel exactly as in the paper.
  const auto words = assemble(
      "ldr d1, [x22, x0, lsl #3]\n"
      "str d1, [x19, x0, lsl #3]\n"
      "add x0, x0, #1\n"
      "cmp x0, x20\n"
      "b.ne -16\n");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[0],
            encode(makeLoadStoreReg(Op::LDRD, 1, 22, 0, Extend::UXTX, true)));
  EXPECT_EQ(words[1],
            encode(makeLoadStoreReg(Op::STRD, 1, 19, 0, Extend::UXTX, true)));
  EXPECT_EQ(words[2], encode(makeAddSubImm(Op::ADDi, 0, 0, 1)));
  EXPECT_EQ(words[3], encode(makeCmpReg(0, 20)));
  EXPECT_EQ(words[4], encode(makeCondBranch(Cond::NE, -16)));
}

TEST(A64Asm, AddressingModes) {
  const auto words = assemble(
      "ldr x0, [x1]\n"
      "ldr x0, [x1, #16]\n"
      "ldr x0, [x1, #16]!\n"
      "ldr x0, [x1], #16\n"
      "ldr x0, [x1, x2]\n"
      "ldr x0, [x1, w2, sxtw #3]\n"
      "ldp x0, x1, [sp, #32]\n"
      "stp d8, d9, [sp, #-16]!\n");
  ASSERT_EQ(words.size(), 8u);
  EXPECT_EQ(words[0], encode(makeLoadStore(Op::LDRX, 0, 1, 0)));
  EXPECT_EQ(words[1], encode(makeLoadStore(Op::LDRX, 0, 1, 16)));
  EXPECT_EQ(words[2],
            encode(makeLoadStore(Op::LDRX, 0, 1, 16, AddrMode::PreIndex)));
  EXPECT_EQ(words[3],
            encode(makeLoadStore(Op::LDRX, 0, 1, 16, AddrMode::PostIndex)));
  EXPECT_EQ(words[4],
            encode(makeLoadStoreReg(Op::LDRX, 0, 1, 2, Extend::UXTX, false)));
  EXPECT_EQ(words[5],
            encode(makeLoadStoreReg(Op::LDRX, 0, 1, 2, Extend::SXTW, true)));
  EXPECT_EQ(words[6], encode(makeLoadStorePair(Op::LDP_X, 0, 1, 31, 32)));
  EXPECT_EQ(words[7], encode(makeLoadStorePair(Op::STP_D, 8, 9, 31, -16,
                                               AddrMode::PreIndex)));
}

TEST(A64Asm, LabelsAndBranches) {
  const auto words = assemble(
      "top:\n"
      "  add x0, x0, #1\n"
      "  cmp x0, x1\n"
      "  b.ne top\n"
      "  cbz x0, done\n"
      "  b top\n"
      "done:\n"
      "  ret\n");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(words[2], encode(makeCondBranch(Cond::NE, -8)));
  EXPECT_EQ(words[3], encode(makeCmpBranch(Op::CBZ, 0, 8)));
  EXPECT_EQ(words[4], encode(makeBranch(Op::B, -16)));
  EXPECT_EQ(words[5], encode(makeBranchReg(Op::RET, 30)));
}

TEST(A64Asm, FpInstructions) {
  const auto words = assemble(
      "fadd d0, d1, d2\n"
      "fmul s3, s4, s5\n"
      "fmadd d0, d1, d2, d3\n"
      "fcmp d1, d2\n"
      "fcmp d1, #0.0\n"
      "fsqrt d0, d1\n"
      "scvtf d0, x1\n"
      "fcvtzs w0, s1\n"
      "fmov d0, #1.0\n"
      "fmov x0, d1\n"
      "fcvt s0, d1\n");
  ASSERT_EQ(words.size(), 11u);
  EXPECT_EQ(words[0], encode(makeFp2(Op::FADD_D, 0, 1, 2)));
  EXPECT_EQ(words[1], encode(makeFp2(Op::FMUL_S, 3, 4, 5)));
  EXPECT_EQ(words[2], encode(makeFp3(Op::FMADD_D, 0, 1, 2, 3)));
  EXPECT_EQ(words[3], encode(makeFpCmp(Op::FCMP_D, 1, 2)));
  EXPECT_EQ(words[4], encode(makeFpCmp(Op::FCMPZ_D, 1, 0)));
  EXPECT_EQ(words[5], encode(makeFp1(Op::FSQRT_D, 0, 1)));
  EXPECT_EQ(words[6], encode(makeFpIntCvt(Op::SCVTF_D, 0, 1, true)));
  EXPECT_EQ(words[7], encode(makeFpIntCvt(Op::FCVTZS_S, 0, 1, false)));
  EXPECT_EQ(words[9], encode(makeFpIntCvt(Op::FMOV_XD, 0, 1, true)));
  EXPECT_EQ(words[10], encode(makeFp1(Op::FCVT_DS, 0, 1)));
}

TEST(A64Asm, ShiftAliases) {
  const auto words = assemble(
      "lsl x0, x1, #3\n"
      "lsr x0, x1, #3\n"
      "asr w0, w1, #3\n"
      "lsl x0, x1, x2\n"
      "cset x0, eq\n"
      "sxtw x0, w1\n");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(words[0], encode(makeBitfield(Op::UBFM, 0, 1, 61, 60)));
  EXPECT_EQ(words[1], encode(makeBitfield(Op::UBFM, 0, 1, 3, 63)));
  EXPECT_EQ(words[2], encode(makeBitfield(Op::SBFM, 0, 1, 3, 31, false)));
  EXPECT_EQ(words[3], encode(makeDp2(Op::LSLV, 0, 1, 2)));
  EXPECT_EQ(words[4],
            encode(makeCondSel(Op::CSINC, 0, 31, 31, Cond::NE)));
  EXPECT_EQ(words[5], encode(makeBitfield(Op::SBFM, 0, 1, 0, 31)));
}

TEST(A64Asm, Errors) {
  EXPECT_THROW(assemble("frobnicate x0\n"), AsmError);
  EXPECT_THROW(assemble("add x0, x1\n"), AsmError);
  EXPECT_THROW(assemble("add x0, x1, q2\n"), AsmError);
  EXPECT_THROW(assemble("b nowhere\n"), AsmError);
  EXPECT_THROW(assemble("ldr x0, [x1, #16\n"), AsmError);
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

TEST(A64Disasm, PaperListing1Style) {
  EXPECT_EQ(disassemble(makeLoadStoreReg(Op::LDRD, 1, 22, 0, Extend::UXTX,
                                         true)),
            "ldr d1, [x22, x0, lsl #3]");
  EXPECT_EQ(disassemble(makeLoadStoreReg(Op::STRD, 1, 19, 0, Extend::UXTX,
                                         true)),
            "str d1, [x19, x0, lsl #3]");
  EXPECT_EQ(disassemble(makeAddSubImm(Op::ADDi, 0, 0, 1)), "add x0, x0, #1");
  EXPECT_EQ(disassemble(makeCmpReg(0, 20)), "cmp x0, x20");
  EXPECT_EQ(disassemble(makeCondBranch(Cond::NE, -16), 0x400acc),
            "b.ne 0x400abc");
}

TEST(A64Disasm, Aliases) {
  EXPECT_EQ(disassemble(makeMovReg(0, 1)), "mov x0, x1");
  EXPECT_EQ(disassemble(makeMoveWide(Op::MOVZ, 2, 42, 0)), "mov x2, #42");
  EXPECT_EQ(disassemble(makeDp3(Op::MADD, 0, 1, 2, 31)), "mul x0, x1, x2");
  EXPECT_EQ(disassemble(makeCondSel(Op::CSINC, 0, 31, 31, Cond::NE)),
            "cset x0, eq");
  EXPECT_EQ(disassemble(makeBitfield(Op::UBFM, 0, 1, 61, 60)),
            "lsl x0, x1, #3");
  EXPECT_EQ(disassemble(makeBitfield(Op::UBFM, 0, 1, 3, 63)),
            "lsr x0, x1, #3");
  EXPECT_EQ(disassemble(makeBitfield(Op::SBFM, 0, 1, 0, 31)), "sxtw x0, w1");
  EXPECT_EQ(disassemble(makeAddSubImm(Op::SUBSi, 31, 3, 7)), "cmp x3, #7");
}

TEST(A64Disasm, LoadsAndStores) {
  EXPECT_EQ(disassemble(makeLoadStore(Op::LDRX, 0, 1, 16)),
            "ldr x0, [x1, #16]");
  EXPECT_EQ(disassemble(makeLoadStore(Op::LDRX, 0, 31, 0)), "ldr x0, [sp]");
  EXPECT_EQ(disassemble(makeLoadStore(Op::STRW, 2, 3, 4, AddrMode::PreIndex)),
            "str w2, [x3, #4]!");
  EXPECT_EQ(disassemble(makeLoadStore(Op::LDRD, 1, 2, 8, AddrMode::PostIndex)),
            "ldr d1, [x2], #8");
  EXPECT_EQ(disassemble(makeLoadStorePair(Op::STP_X, 29, 30, 31, -16,
                                          AddrMode::PreIndex)),
            "stp x29, x30, [sp, #-16]!");
}

TEST(A64Disasm, Branches) {
  EXPECT_EQ(disassemble(makeBranch(Op::B, 0x40), 0x1000), "b 0x1040");
  EXPECT_EQ(disassemble(makeCmpBranch(Op::CBNZ, 3, -8), 0x2000),
            "cbnz x3, 0x1ff8");
  EXPECT_EQ(disassemble(makeBranchReg(Op::RET, 30)), "ret");
  EXPECT_EQ(disassemble(Inst{.op = Op::NOP}), "nop");
}

TEST(A64Disasm, UndecodableWord) {
  EXPECT_EQ(disassemble(std::uint32_t{0}, 0), ".word 0x0");
}

TEST(A64Disasm, FpOperands) {
  EXPECT_EQ(disassemble(makeFp2(Op::FADD_D, 0, 1, 2)), "fadd d0, d1, d2");
  EXPECT_EQ(disassemble(makeFp2(Op::FMUL_S, 3, 4, 5)), "fmul s3, s4, s5");
  EXPECT_EQ(disassemble(makeFp3(Op::FMADD_D, 0, 1, 2, 3)),
            "fmadd d0, d1, d2, d3");
  EXPECT_EQ(disassemble(makeFpCmp(Op::FCMPZ_D, 1, 0)), "fcmp d1, #0.0");
}

// Round-trip: assemble -> decode -> disassemble -> assemble yields the same
// words for a representative kernel.
TEST(A64AsmDisasm, RoundTripThroughText) {
  const char* source =
      "ldr d1, [x22, x0, lsl #3]\n"
      "fadd d1, d1, d2\n"
      "str d1, [x19, x0, lsl #3]\n"
      "add x0, x0, #1\n"
      "cmp x0, x20\n";
  const auto words = assemble(source);
  std::string rebuilt;
  for (const auto word : words) rebuilt += disassemble(word, 0) + "\n";
  const auto words2 = assemble(rebuilt);
  EXPECT_EQ(words, words2);
}

}  // namespace
}  // namespace riscmp::a64
