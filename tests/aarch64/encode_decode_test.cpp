#include <gtest/gtest.h>

#include "aarch64/decode.hpp"
#include "aarch64/encode.hpp"

namespace riscmp::a64 {
namespace {

// ---------------------------------------------------------------------------
// Golden encodings, cross-checked against GNU binutils objdump output.
// ---------------------------------------------------------------------------

TEST(A64Encode, GoldenWords) {
  EXPECT_EQ(encode(Inst{.op = Op::NOP}), 0xd503201fu);
  EXPECT_EQ(encode(makeBranchReg(Op::RET, 30)), 0xd65f03c0u);
  EXPECT_EQ(encode(makeAddSubReg(Op::ADDr, 0, 1, 2)), 0x8b020020u);
  EXPECT_EQ(encode(makeAddSubReg(Op::ADDr, 0, 1, 2, Shift::LSL, 0, false)),
            0x0b020020u);
  // sub sp, sp, #16 — the classic prologue word.
  EXPECT_EQ(encode(makeAddSubImm(Op::SUBi, 31, 31, 16)), 0xd10043ffu);
  // stp x29, x30, [sp, #-16]! / ldp x29, x30, [sp], #16
  EXPECT_EQ(encode(makeLoadStorePair(Op::STP_X, 29, 30, 31, -16,
                                     AddrMode::PreIndex)),
            0xa9bf7bfdu);
  EXPECT_EQ(encode(makeLoadStorePair(Op::LDP_X, 29, 30, 31, 16,
                                     AddrMode::PostIndex)),
            0xa8c17bfdu);
  // cmp x0, x20 (the GCC 12.2 STREAM loop-exit test from the paper §3.3)
  EXPECT_EQ(encode(makeCmpReg(0, 20)), 0xeb14001fu);
  EXPECT_EQ(encode(makeMoveWide(Op::MOVZ, 0, 1, 0)), 0xd2800020u);
  EXPECT_EQ(encode(makeLoadStore(Op::LDRX, 0, 1, 8)), 0xf9400420u);
  EXPECT_EQ(encode(makeSvc(0)), 0xd4000001u);
  EXPECT_EQ(encode(makeCmpBranch(Op::CBZ, 0, 8)), 0xb4000040u);
  EXPECT_EQ(encode(makeFp2(Op::FADD_D, 0, 1, 2)), 0x1e622820u);
  EXPECT_EQ(encode(makeFp3(Op::FMADD_D, 0, 1, 2, 3)), 0x1f420c20u);
  EXPECT_EQ(encode(makeLogicImm(Op::ANDi, 0, 1, 0xff)), 0x92401c20u);
  // ldr d1, [x22, x0, lsl #3] — the paper's Listing 1 load.
  EXPECT_EQ(encode(makeLoadStoreReg(Op::LDRD, 1, 22, 0, Extend::UXTX, true)),
            0xfc607ac1u);
}

TEST(A64Encode, RangeErrors) {
  EXPECT_THROW(encode(makeAddSubImm(Op::ADDi, 0, 1, 4096)), EncodeError);
  EXPECT_THROW(encode(makeMoveWide(Op::MOVZ, 0, 1, 17)), EncodeError);
  EXPECT_THROW(encode(makeMoveWide(Op::MOVZ, 0, 1, 32, false)), EncodeError);
  EXPECT_THROW(encode(makeLogicImm(Op::ANDi, 0, 1, 0)), EncodeError);
  EXPECT_THROW(encode(makeBranch(Op::B, 2)), EncodeError);  // misaligned
  EXPECT_THROW(encode(makeCondBranch(Cond::EQ, 1 << 22)), EncodeError);
  EXPECT_THROW(encode(makeLoadStore(Op::LDRX, 0, 1, 4)), EncodeError);
  EXPECT_THROW(encode(makeLoadStore(Op::LDRX, 0, 1, -300,
                                    AddrMode::PostIndex)),
               EncodeError);
  EXPECT_THROW(encode(makeLoadStorePair(Op::LDP_X, 0, 1, 2, 4)), EncodeError);
}

TEST(A64Decode, UnknownWordsRejected) {
  EXPECT_FALSE(decode(0x00000000u).has_value());
  EXPECT_FALSE(decode(0xffffffffu).has_value());
}

TEST(A64Decode, KnownWords) {
  const auto cmp = decode(0xeb14001fu);
  ASSERT_TRUE(cmp.has_value());
  EXPECT_EQ(cmp->op, Op::SUBSr);
  EXPECT_EQ(cmp->rd, 31);
  EXPECT_EQ(cmp->rn, 0);
  EXPECT_EQ(cmp->rm, 20);

  const auto stp = decode(0xa9bf7bfdu);
  ASSERT_TRUE(stp.has_value());
  EXPECT_EQ(stp->op, Op::STP_X);
  EXPECT_EQ(stp->mode, AddrMode::PreIndex);
  EXPECT_EQ(stp->imm, -16);
  EXPECT_EQ(stp->rd, 29);
  EXPECT_EQ(stp->rt2, 30);
  EXPECT_EQ(stp->rn, 31);
}

// ---------------------------------------------------------------------------
// Round-trip properties over representative instructions of every class.
// ---------------------------------------------------------------------------

void roundTrip(const Inst& inst) {
  const std::uint32_t word = encode(inst);
  const auto decoded = decode(word);
  ASSERT_TRUE(decoded.has_value())
      << inst.info().mnemonic << " word 0x" << std::hex << word;
  EXPECT_EQ(*decoded, inst) << inst.info().mnemonic;
  EXPECT_EQ(encode(*decoded), word) << inst.info().mnemonic;
}

TEST(A64RoundTrip, DataProcessingImmediate) {
  for (const bool is64 : {true, false}) {
    roundTrip(makeAddSubImm(Op::ADDi, 3, 4, 123, false, is64));
    roundTrip(makeAddSubImm(Op::SUBSi, 5, 6, 4095, true, is64));
    roundTrip(makeLogicImm(Op::ORRi, 1, 2, 0xff00, is64));
    roundTrip(makeLogicImm(Op::EORi, 1, 2,
                           is64 ? 0x5555555555555555ull : 0x55555555ull,
                           is64));
    roundTrip(makeMoveWide(Op::MOVZ, 7, 0xbeef, 16, is64));
    roundTrip(makeMoveWide(Op::MOVK, 7, 0xdead, 0, is64));
    roundTrip(makeBitfield(Op::UBFM, 1, 2, 8, 15, is64));
    roundTrip(makeBitfield(Op::SBFM, 1, 2, 0, is64 ? 63 : 31, is64));
  }
  roundTrip(makeMoveWide(Op::MOVN, 7, 0x1234, 48, true));
  Inst adr;
  adr.op = Op::ADR;
  adr.rd = 5;
  adr.imm = -1024;
  roundTrip(adr);
  Inst adrp;
  adrp.op = Op::ADRP;
  adrp.rd = 5;
  adrp.imm = 0x7000;  // page-aligned
  roundTrip(adrp);
}

TEST(A64RoundTrip, DataProcessingRegister) {
  for (const bool is64 : {true, false}) {
    roundTrip(makeAddSubReg(Op::ADDr, 1, 2, 3, Shift::LSL, 4, is64));
    roundTrip(makeAddSubReg(Op::SUBSr, 1, 2, 3, Shift::ASR, 7, is64));
    roundTrip(makeLogicReg(Op::BICr, 1, 2, 3, Shift::ROR, 9, is64));
    roundTrip(makeDp2(Op::SDIV, 4, 5, 6, is64));
    roundTrip(makeDp2(Op::LSLV, 4, 5, 6, is64));
    roundTrip(makeDp3(Op::MADD, 1, 2, 3, 4, is64));
    roundTrip(makeDp3(Op::MSUB, 1, 2, 3, 31, is64));
    roundTrip(makeCondSel(Op::CSEL, 1, 2, 3, Cond::GT, is64));
    roundTrip(makeCondSel(Op::CSINC, 1, 31, 31, Cond::NE, is64));
  }
  roundTrip(makeDp3(Op::SMULH, 1, 2, 3, 31, true));
  roundTrip(makeDp3(Op::UMULH, 1, 2, 3, 31, true));
  // Extended-register add (array indexing idiom: add x0, x1, w2, sxtw #3)
  Inst ext;
  ext.op = Op::ADDx;
  ext.rd = 0;
  ext.rn = 1;
  ext.rm = 2;
  ext.extend = Extend::SXTW;
  ext.extAmount = 3;
  roundTrip(ext);
}

TEST(A64RoundTrip, ConditionalCompare) {
  Inst ccmp;
  ccmp.op = Op::CCMPi;
  ccmp.rn = 4;
  ccmp.imm = 17;
  ccmp.cond = Cond::NE;
  ccmp.imms = 0b0100;  // nzcv
  roundTrip(ccmp);

  Inst ccmn;
  ccmn.op = Op::CCMNr;
  ccmn.rn = 4;
  ccmn.rm = 9;
  ccmn.cond = Cond::LT;
  ccmn.imms = 0b1010;
  roundTrip(ccmn);
}

TEST(A64RoundTrip, Branches) {
  roundTrip(makeBranch(Op::B, -4096));
  roundTrip(makeBranch(Op::BL, 0x100000));
  roundTrip(makeCondBranch(Cond::NE, -20));
  roundTrip(makeCmpBranch(Op::CBZ, 7, 64, true));
  roundTrip(makeCmpBranch(Op::CBNZ, 7, -64, false));
  roundTrip(makeTestBranch(Op::TBZ, 3, 63, 32));
  roundTrip(makeTestBranch(Op::TBNZ, 3, 5, -32));
  roundTrip(makeBranchReg(Op::BR, 17));
  roundTrip(makeBranchReg(Op::BLR, 17));
  roundTrip(makeBranchReg(Op::RET, 30));
}

TEST(A64RoundTrip, FloatingPoint) {
  const Op fp2Ops[] = {Op::FADD_D, Op::FSUB_S, Op::FMUL_D, Op::FDIV_S,
                       Op::FMIN_D, Op::FMAXNM_S, Op::FNMUL_D};
  for (const Op op : fp2Ops) roundTrip(makeFp2(op, 1, 2, 3));
  const Op fp1Ops[] = {Op::FMOV_D, Op::FABS_S, Op::FNEG_D, Op::FSQRT_S,
                       Op::FCVT_SD, Op::FCVT_DS};
  for (const Op op : fp1Ops) roundTrip(makeFp1(op, 4, 5));
  const Op fp3Ops[] = {Op::FMADD_D, Op::FMSUB_S, Op::FNMADD_D, Op::FNMSUB_S};
  for (const Op op : fp3Ops) roundTrip(makeFp3(op, 1, 2, 3, 4));
  roundTrip(makeFpCmp(Op::FCMP_D, 1, 2));
  roundTrip(makeFpCmp(Op::FCMPZ_S, 1, 0));
  roundTrip(makeFpCsel(Op::FCSEL_D, 1, 2, 3, Cond::MI));
  for (const bool is64 : {true, false}) {
    roundTrip(makeFpIntCvt(Op::SCVTF_D, 1, 2, is64));
    roundTrip(makeFpIntCvt(Op::FCVTZS_D, 1, 2, is64));
    roundTrip(makeFpIntCvt(Op::UCVTF_S, 1, 2, is64));
  }
  roundTrip(makeFpIntCvt(Op::FMOV_XD, 1, 2, true));
  roundTrip(makeFpIntCvt(Op::FMOV_DX, 1, 2, true));

  Inst fmovImm;
  fmovImm.op = Op::FMOV_Dimm;
  fmovImm.rd = 3;
  fmovImm.imm = *doubleToFpImm8(1.0);
  roundTrip(fmovImm);
}

class A64LoadStoreRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(A64LoadStoreRoundTrip, AllModes) {
  const Op op = GetParam();
  const unsigned size = opInfo(op).memSize;
  roundTrip(makeLoadStore(op, 1, 2, 0, AddrMode::Offset));
  roundTrip(makeLoadStore(op, 1, 2, static_cast<std::int64_t>(size) * 100,
                          AddrMode::Offset));
  roundTrip(makeLoadStore(op, 1, 2, -7, AddrMode::Unscaled));
  roundTrip(makeLoadStore(op, 1, 2, 8, AddrMode::PreIndex));
  roundTrip(makeLoadStore(op, 1, 2, -8, AddrMode::PostIndex));
  roundTrip(makeLoadStoreReg(op, 1, 2, 3, Extend::UXTX, false));
  roundTrip(makeLoadStoreReg(op, 1, 2, 3, Extend::UXTX, true));
  roundTrip(makeLoadStoreReg(op, 1, 2, 3, Extend::SXTW, true));
  roundTrip(makeLoadStoreReg(op, 1, 2, 3, Extend::UXTW, false));
}

INSTANTIATE_TEST_SUITE_P(
    AllLoadStores, A64LoadStoreRoundTrip,
    ::testing::Values(Op::LDRB, Op::LDRH, Op::LDRW, Op::LDRX, Op::LDRSB,
                      Op::LDRSH, Op::LDRSW, Op::STRB, Op::STRH, Op::STRW,
                      Op::STRX, Op::LDRS, Op::LDRD, Op::STRS, Op::STRD),
    [](const auto& info) {
      std::string name(opInfo(info.param).mnemonic);
      name += "_" + std::to_string(static_cast<int>(info.param));
      return name;
    });

TEST(A64RoundTrip, PairsAndLiterals) {
  for (const Op op : {Op::LDP_X, Op::STP_X, Op::LDP_D, Op::STP_D}) {
    roundTrip(makeLoadStorePair(op, 1, 2, 3, 0));
    roundTrip(makeLoadStorePair(op, 1, 2, 3, 496));
    roundTrip(makeLoadStorePair(op, 1, 2, 3, -512, AddrMode::PreIndex));
    roundTrip(makeLoadStorePair(op, 1, 2, 3, 16, AddrMode::PostIndex));
  }
  for (const Op op : {Op::LDR_LIT_W, Op::LDR_LIT_X, Op::LDR_LIT_SW,
                      Op::LDR_LIT_S, Op::LDR_LIT_D}) {
    Inst inst;
    inst.op = op;
    inst.rd = 9;
    inst.mode = AddrMode::Literal;
    inst.imm = 0x1000;
    roundTrip(inst);
    inst.imm = -4;
    roundTrip(inst);
  }
}

TEST(A64FpImm8, ExpandsCommonConstants) {
  EXPECT_DOUBLE_EQ(fpImm8ToDouble(*doubleToFpImm8(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(fpImm8ToDouble(*doubleToFpImm8(2.0)), 2.0);
  EXPECT_DOUBLE_EQ(fpImm8ToDouble(*doubleToFpImm8(0.5)), 0.5);
  EXPECT_DOUBLE_EQ(fpImm8ToDouble(*doubleToFpImm8(-1.0)), -1.0);
  EXPECT_DOUBLE_EQ(fpImm8ToDouble(*doubleToFpImm8(31.0)), 31.0);
  EXPECT_FALSE(doubleToFpImm8(0.0).has_value());   // zero is not encodable
  EXPECT_FALSE(doubleToFpImm8(100.0).has_value());
}

}  // namespace
}  // namespace riscmp::a64
