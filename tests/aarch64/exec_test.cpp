#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aarch64/asm.hpp"
#include "aarch64/decode.hpp"
#include "aarch64/encode.hpp"
#include "aarch64/exec.hpp"

namespace riscmp::a64 {
namespace {

class A64ExecTest : public ::testing::Test {
 protected:
  A64ExecTest() : memory(1 << 20) { state.pc = 0x1000; }

  RetiredInst step(const Inst& inst, Trap expected = Trap::None) {
    RetiredInst retired;
    retired.pc = state.pc;
    const Trap trap = execute(inst, state, memory, retired);
    EXPECT_EQ(trap, expected);
    return retired;
  }

  State state;
  Memory memory;
};

TEST_F(A64ExecTest, AddSubImmediate) {
  step(makeAddSubImm(Op::ADDi, 0, 31, 42));  // add x0, sp(=0), #42
  EXPECT_EQ(state.x[0], 42u);
  step(makeAddSubImm(Op::SUBi, 1, 0, 2));
  EXPECT_EQ(state.x[1], 40u);
  step(makeAddSubImm(Op::ADDi, 2, 0, 1, /*shift12=*/true));
  EXPECT_EQ(state.x[2], 42u + 4096u);
}

TEST_F(A64ExecTest, SpIsOperandOfAddSubImmediate) {
  state.sp = 0x8000;
  step(makeAddSubImm(Op::SUBi, 31, 31, 16));  // sub sp, sp, #16
  EXPECT_EQ(state.sp, 0x8000u - 16u);
}

TEST_F(A64ExecTest, ZeroRegisterReadsZeroInRegisterForms) {
  state.x[1] = 77;
  const RetiredInst r = step(makeAddSubReg(Op::ADDr, 0, 1, 31));
  EXPECT_EQ(state.x[0], 77u);
  // xzr must not appear as a dependency.
  ASSERT_EQ(r.srcs.size(), 1u);
  EXPECT_EQ(r.srcs[0], Reg::gp(1));
}

TEST_F(A64ExecTest, FlagsFromSubs) {
  state.x[0] = 5;
  state.x[1] = 5;
  const RetiredInst r = step(makeCmpReg(0, 1));  // subs xzr, x0, x1
  EXPECT_TRUE(state.flagZ());
  EXPECT_TRUE(state.flagC());  // no borrow
  EXPECT_FALSE(state.flagN());
  ASSERT_EQ(r.dsts.size(), 1u);
  EXPECT_EQ(r.dsts[0], Reg::flags());

  state.x[1] = 6;
  step(makeCmpReg(0, 1));  // 5 - 6
  EXPECT_TRUE(state.flagN());
  EXPECT_FALSE(state.flagC());  // borrow
  EXPECT_FALSE(state.flagZ());
}

TEST_F(A64ExecTest, SignedOverflowSetsV) {
  state.x[0] = 0x7fffffffffffffffull;
  state.x[1] = 1;
  step(makeAddSubReg(Op::ADDSr, 2, 0, 1));
  EXPECT_TRUE(state.flagV());
  EXPECT_TRUE(state.flagN());
}

TEST_F(A64ExecTest, ThirtyTwoBitFlagSemantics) {
  state.x[0] = 0xffffffffull;  // w0 = -1
  state.x[1] = 1;
  step(makeAddSubReg(Op::ADDSr, 2, 0, 1, Shift::LSL, 0, false));
  EXPECT_EQ(state.x[2], 0u);  // wraps in 32 bits, zero-extended
  EXPECT_TRUE(state.flagZ());
  EXPECT_TRUE(state.flagC());
}

TEST_F(A64ExecTest, ConditionalBranchReadsFlags) {
  state.x[0] = 1;
  state.x[1] = 2;
  step(makeCmpReg(0, 1));
  const RetiredInst r = step(makeCondBranch(Cond::NE, 0x20));
  EXPECT_TRUE(r.isBranch);
  EXPECT_TRUE(r.branchTaken);
  ASSERT_EQ(r.srcs.size(), 1u);
  EXPECT_EQ(r.srcs[0], Reg::flags());
  EXPECT_EQ(state.pc, 0x1024u);

  step(makeCondBranch(Cond::EQ, 0x20));
  EXPECT_EQ(state.pc, 0x1028u);  // not taken
}

TEST_F(A64ExecTest, ConditionCodesMatrix) {
  // cmp 3, 5 (signed): N set (3-5 < 0), C clear.
  state.x[0] = 3;
  state.x[1] = 5;
  step(makeCmpReg(0, 1));
  EXPECT_TRUE(condHolds(Cond::LT, state.nzcv));
  EXPECT_TRUE(condHolds(Cond::LE, state.nzcv));
  EXPECT_TRUE(condHolds(Cond::NE, state.nzcv));
  EXPECT_TRUE(condHolds(Cond::CC, state.nzcv));  // unsigned lower
  EXPECT_FALSE(condHolds(Cond::GE, state.nzcv));
  EXPECT_FALSE(condHolds(Cond::HI, state.nzcv));

  // cmp -1, 1 (unsigned: huge vs 1)
  state.x[0] = ~0ull;
  state.x[1] = 1;
  step(makeCmpReg(0, 1));
  EXPECT_TRUE(condHolds(Cond::HI, state.nzcv));
  EXPECT_TRUE(condHolds(Cond::LT, state.nzcv));  // signed -1 < 1
}

TEST_F(A64ExecTest, MovFamily) {
  step(makeMoveWide(Op::MOVZ, 0, 0xdead, 16));
  EXPECT_EQ(state.x[0], 0xdead0000u);
  step(makeMoveWide(Op::MOVK, 0, 0xbeef, 0));
  EXPECT_EQ(state.x[0], 0xdeadbeefu);
  step(makeMoveWide(Op::MOVN, 1, 0, 0));
  EXPECT_EQ(state.x[1], ~0ull);
  const RetiredInst r = step(makeMoveWide(Op::MOVK, 0, 1, 48));
  EXPECT_EQ(state.x[0], 0x00010000deadbeefull);
  // movk reads its destination.
  ASSERT_EQ(r.srcs.size(), 1u);
  EXPECT_EQ(r.srcs[0], Reg::gp(0));
}

TEST_F(A64ExecTest, LogicalOps) {
  state.x[1] = 0xf0f0;
  state.x[2] = 0x0ff0;
  step(makeLogicReg(Op::ANDr, 0, 1, 2));
  EXPECT_EQ(state.x[0], 0x00f0u);
  step(makeLogicReg(Op::ORRr, 0, 1, 2));
  EXPECT_EQ(state.x[0], 0xfff0u);
  step(makeLogicReg(Op::EORr, 0, 1, 2));
  EXPECT_EQ(state.x[0], 0xff00u);
  step(makeLogicReg(Op::BICr, 0, 1, 2));
  EXPECT_EQ(state.x[0], 0xf000u);
  step(makeLogicImm(Op::ANDi, 0, 1, 0xff));
  EXPECT_EQ(state.x[0], 0xf0u);
  // ANDS sets N/Z and clears C/V.
  state.nzcv = kFlagC | kFlagV;
  step(makeLogicReg(Op::ANDSr, 0, 1, 31));
  EXPECT_TRUE(state.flagZ());
  EXPECT_FALSE(state.flagC());
}

TEST_F(A64ExecTest, ShiftedOperands) {
  state.x[1] = 1;
  state.x[2] = 0x10;
  step(makeAddSubReg(Op::ADDr, 0, 31, 2, Shift::LSL, 3));
  EXPECT_EQ(state.x[0], 0x80u);
  step(makeAddSubReg(Op::ADDr, 0, 31, 2, Shift::LSR, 4));
  EXPECT_EQ(state.x[0], 1u);
  state.x[3] = static_cast<std::uint64_t>(-64);
  step(makeAddSubReg(Op::ADDr, 0, 31, 3, Shift::ASR, 3));
  EXPECT_EQ(static_cast<std::int64_t>(state.x[0]), -8);
}

TEST_F(A64ExecTest, BitfieldAliases) {
  state.x[1] = 0xabcd;
  // lsl x0, x1, #4 == ubfm x0, x1, #60, #59
  step(makeBitfield(Op::UBFM, 0, 1, 60, 59));
  EXPECT_EQ(state.x[0], 0xabcd0ull);
  // lsr x0, x1, #4 == ubfm x0, x1, #4, #63
  step(makeBitfield(Op::UBFM, 0, 1, 4, 63));
  EXPECT_EQ(state.x[0], 0xabcull);
  // asr x0, x2, #2 == sbfm x0, x2, #2, #63
  state.x[2] = 0x8000000000000000ull;
  step(makeBitfield(Op::SBFM, 0, 2, 2, 63));
  EXPECT_EQ(state.x[0], 0xe000000000000000ull);
  // ubfx x0, x1, #4, #8
  step(makeBitfield(Op::UBFM, 0, 1, 4, 11));
  EXPECT_EQ(state.x[0], 0xbcull);
  // sxtw
  state.x[3] = 0x80000000ull;
  step(makeBitfield(Op::SBFM, 0, 3, 0, 31));
  EXPECT_EQ(state.x[0], 0xffffffff80000000ull);
  // uxtw-like: 32-bit mov via ubfm keeps zero extension
  step(makeBitfield(Op::UBFM, 0, 3, 0, 31));
  EXPECT_EQ(state.x[0], 0x80000000ull);
}

TEST_F(A64ExecTest, BfmInsertsKeepingBits) {
  state.x[0] = 0xffffffffffffffffull;
  state.x[1] = 0xab;
  // bfi x0, x1, #8, #8 == bfm x0, x1, #56, #7
  step(makeBitfield(Op::BFM, 0, 1, 56, 7));
  EXPECT_EQ(state.x[0], 0xffffffffffffabffull);
}

TEST_F(A64ExecTest, MultiplyDivide) {
  state.x[1] = 7;
  state.x[2] = 6;
  state.x[3] = 100;
  step(makeDp3(Op::MADD, 0, 1, 2, 3));
  EXPECT_EQ(state.x[0], 142u);
  step(makeDp3(Op::MSUB, 0, 1, 2, 3));
  EXPECT_EQ(state.x[0], 58u);
  state.x[4] = ~0ull;
  step(makeDp3(Op::UMULH, 0, 4, 4, 31));
  EXPECT_EQ(state.x[0], 0xfffffffffffffffeull);
  step(makeDp3(Op::SMULH, 0, 4, 4, 31));
  EXPECT_EQ(state.x[0], 0u);  // (-1)*(-1) high

  step(makeDp2(Op::UDIV, 0, 3, 1));
  EXPECT_EQ(state.x[0], 14u);
  state.x[5] = 0;
  step(makeDp2(Op::UDIV, 0, 3, 5));
  EXPECT_EQ(state.x[0], 0u);  // divide by zero -> 0 on A64
  state.x[6] = static_cast<std::uint64_t>(-100);
  step(makeDp2(Op::SDIV, 0, 6, 1));
  EXPECT_EQ(static_cast<std::int64_t>(state.x[0]), -14);
}

TEST_F(A64ExecTest, ConditionalSelectFamily) {
  state.x[1] = 10;
  state.x[2] = 20;
  state.nzcv = kFlagZ;  // EQ holds
  step(makeCondSel(Op::CSEL, 0, 1, 2, Cond::EQ));
  EXPECT_EQ(state.x[0], 10u);
  step(makeCondSel(Op::CSEL, 0, 1, 2, Cond::NE));
  EXPECT_EQ(state.x[0], 20u);
  step(makeCondSel(Op::CSINC, 0, 1, 2, Cond::NE));
  EXPECT_EQ(state.x[0], 21u);
  step(makeCondSel(Op::CSINV, 0, 1, 2, Cond::NE));
  EXPECT_EQ(state.x[0], ~20ull);
  step(makeCondSel(Op::CSNEG, 0, 1, 2, Cond::NE));
  EXPECT_EQ(static_cast<std::int64_t>(state.x[0]), -20);
  // cset x0, eq == csinc x0, xzr, xzr, ne
  step(makeCondSel(Op::CSINC, 0, 31, 31, Cond::NE));
  EXPECT_EQ(state.x[0], 1u);
}

TEST_F(A64ExecTest, LoadStoreAddressingModes) {
  state.x[1] = 0x2000;
  state.x[2] = 0x1122334455667788ull;

  step(makeLoadStore(Op::STRX, 2, 1, 16));
  EXPECT_EQ(memory.read<std::uint64_t>(0x2010), state.x[2]);

  // Pre-index: address = base + imm, base updated.
  const RetiredInst pre = step(makeLoadStore(Op::STRX, 2, 1, 8,
                                             AddrMode::PreIndex));
  EXPECT_EQ(memory.read<std::uint64_t>(0x2008), state.x[2]);
  EXPECT_EQ(state.x[1], 0x2008u);
  bool wroteBase = false;
  for (const Reg& reg : pre.dsts) wroteBase |= reg == Reg::gp(1);
  EXPECT_TRUE(wroteBase);

  // Post-index: address = base, then base updated (paper §3.3's optimal
  // copy-kernel form).
  step(makeLoadStore(Op::LDRX, 3, 1, 8, AddrMode::PostIndex));
  EXPECT_EQ(state.x[3], state.x[2]);
  EXPECT_EQ(state.x[1], 0x2010u);

  // Unscaled negative offset.
  step(makeLoadStore(Op::LDRX, 4, 1, -8, AddrMode::Unscaled));
  EXPECT_EQ(state.x[4], state.x[2]);
}

TEST_F(A64ExecTest, RegisterOffsetLoadMatchesPaperListing) {
  // ldr d1, [x22, x0, lsl #3]
  state.x[22] = 0x3000;
  state.x[0] = 5;
  memory.write<double>(0x3000 + 5 * 8, 2.25);
  const RetiredInst r =
      step(makeLoadStoreReg(Op::LDRD, 1, 22, 0, Extend::UXTX, true));
  EXPECT_DOUBLE_EQ(state.fprD(1), 2.25);
  ASSERT_EQ(r.loads.size(), 1u);
  EXPECT_EQ(r.loads[0], (MemAccess{0x3028, 8}));
  // Dependencies: base + offset register.
  ASSERT_EQ(r.srcs.size(), 2u);
}

TEST_F(A64ExecTest, SxtwRegisterOffset) {
  state.x[1] = 0x4000;
  state.x[2] = 0xffffffffull;  // w2 = -1
  memory.write<std::uint32_t>(0x4000 - 4, 0xabcd);
  step(makeLoadStoreReg(Op::LDRW, 0, 1, 2, Extend::SXTW, true));
  // -1 << 2 = -4
  EXPECT_EQ(state.x[0], 0xabcdu);
}

TEST_F(A64ExecTest, BytesHalvesSignExtension) {
  state.x[1] = 0x5000;
  memory.write<std::uint8_t>(0x5000, 0x80);
  memory.write<std::uint16_t>(0x5002, 0x8000);
  memory.write<std::uint32_t>(0x5004, 0x80000000u);
  step(makeLoadStore(Op::LDRB, 0, 1, 0));
  EXPECT_EQ(state.x[0], 0x80u);
  step(makeLoadStore(Op::LDRSB, 0, 1, 0));
  EXPECT_EQ(state.x[0], 0xffffffffffffff80ull);
  step(makeLoadStore(Op::LDRSH, 0, 1, 2));
  EXPECT_EQ(state.x[0], 0xffffffffffff8000ull);
  step(makeLoadStore(Op::LDRSW, 0, 1, 4));
  EXPECT_EQ(state.x[0], 0xffffffff80000000ull);
}

TEST_F(A64ExecTest, LoadStorePair) {
  state.x[1] = 0x6000;
  state.x[2] = 111;
  state.x[3] = 222;
  const RetiredInst stp = step(makeLoadStorePair(Op::STP_X, 2, 3, 1, 16));
  EXPECT_EQ(memory.read<std::uint64_t>(0x6010), 111u);
  EXPECT_EQ(memory.read<std::uint64_t>(0x6018), 222u);
  EXPECT_EQ(stp.stores.size(), 2u);

  step(makeLoadStorePair(Op::LDP_X, 4, 5, 1, 16));
  EXPECT_EQ(state.x[4], 111u);
  EXPECT_EQ(state.x[5], 222u);
}

TEST_F(A64ExecTest, LoadLiteral) {
  memory.write<double>(0x1100, 3.5);
  Inst inst;
  inst.op = Op::LDR_LIT_D;
  inst.rd = 2;
  inst.mode = AddrMode::Literal;
  inst.imm = 0x100;
  step(inst);
  EXPECT_DOUBLE_EQ(state.fprD(2), 3.5);
}

TEST_F(A64ExecTest, BranchAndLink) {
  step(makeBranch(Op::BL, 0x100));
  EXPECT_EQ(state.x[30], 0x1004u);
  EXPECT_EQ(state.pc, 0x1100u);
  step(makeBranchReg(Op::RET, 30));
  EXPECT_EQ(state.pc, 0x1004u);
}

TEST_F(A64ExecTest, CompareBranches) {
  state.x[0] = 0;
  step(makeCmpBranch(Op::CBZ, 0, 0x10));
  EXPECT_EQ(state.pc, 0x1010u);
  state.x[1] = 0x100000000ull;  // nonzero in X, zero in W
  step(makeCmpBranch(Op::CBZ, 1, 0x10, false));
  EXPECT_EQ(state.pc, 0x1020u);  // taken: w1 == 0
  step(makeTestBranch(Op::TBNZ, 1, 32, 0x10));
  EXPECT_EQ(state.pc, 0x1030u);  // bit 32 set
}

TEST_F(A64ExecTest, FpArithmetic) {
  state.setFprD(1, 3.0);
  state.setFprD(2, 4.0);
  step(makeFp2(Op::FMUL_D, 0, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(0), 12.0);
  step(makeFp2(Op::FNMUL_D, 0, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(0), -12.0);
  state.setFprD(3, 2.0);
  step(makeFp3(Op::FMADD_D, 0, 1, 2, 3));
  EXPECT_DOUBLE_EQ(state.fprD(0), 14.0);
  step(makeFp3(Op::FNMSUB_D, 0, 1, 2, 3));
  EXPECT_DOUBLE_EQ(state.fprD(0), 10.0);
  step(makeFp1(Op::FSQRT_D, 0, 2));
  EXPECT_DOUBLE_EQ(state.fprD(0), 2.0);
  step(makeFp1(Op::FNEG_D, 0, 1));
  EXPECT_DOUBLE_EQ(state.fprD(0), -3.0);
}

TEST_F(A64ExecTest, FpCompareSetsNzcv) {
  state.setFprD(1, 1.0);
  state.setFprD(2, 2.0);
  step(makeFpCmp(Op::FCMP_D, 1, 2));
  EXPECT_TRUE(condHolds(Cond::MI, state.nzcv));  // less
  EXPECT_TRUE(condHolds(Cond::LT, state.nzcv));
  step(makeFpCmp(Op::FCMP_D, 2, 1));
  EXPECT_TRUE(condHolds(Cond::GT, state.nzcv));
  step(makeFpCmp(Op::FCMP_D, 1, 1));
  EXPECT_TRUE(condHolds(Cond::EQ, state.nzcv));
  state.setFprD(3, std::numeric_limits<double>::quiet_NaN());
  step(makeFpCmp(Op::FCMP_D, 1, 3));
  EXPECT_TRUE(condHolds(Cond::VS, state.nzcv));  // unordered
  EXPECT_FALSE(condHolds(Cond::EQ, state.nzcv));
}

TEST_F(A64ExecTest, FpMinMaxVariants) {
  state.setFprD(1, std::numeric_limits<double>::quiet_NaN());
  state.setFprD(2, 7.0);
  step(makeFp2(Op::FMIN_D, 0, 1, 2));
  EXPECT_TRUE(std::isnan(state.fprD(0)));  // FMIN propagates NaN
  step(makeFp2(Op::FMINNM_D, 0, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(0), 7.0);  // FMINNM prefers the number
}

TEST_F(A64ExecTest, FpIntConversions) {
  state.x[1] = static_cast<std::uint64_t>(-9);
  step(makeFpIntCvt(Op::SCVTF_D, 0, 1));
  EXPECT_DOUBLE_EQ(state.fprD(0), -9.0);
  state.setFprD(2, -3.7);
  step(makeFpIntCvt(Op::FCVTZS_D, 0, 2));
  EXPECT_EQ(static_cast<std::int64_t>(state.x[0]), -3);
  state.setFprD(2, std::numeric_limits<double>::quiet_NaN());
  step(makeFpIntCvt(Op::FCVTZS_D, 0, 2));
  EXPECT_EQ(state.x[0], 0u);  // A64: NaN converts to zero
  state.setFprD(2, 1e30);
  step(makeFpIntCvt(Op::FCVTZS_D, 0, 2));
  EXPECT_EQ(static_cast<std::int64_t>(state.x[0]),
            std::numeric_limits<std::int64_t>::max());
}

TEST_F(A64ExecTest, FmovBitPatterns) {
  state.x[1] = 0x3ff0000000000000ull;
  step(makeFpIntCvt(Op::FMOV_DX, 2, 1));
  EXPECT_DOUBLE_EQ(state.fprD(2), 1.0);
  step(makeFpIntCvt(Op::FMOV_XD, 3, 2));
  EXPECT_EQ(state.x[3], 0x3ff0000000000000ull);
}

TEST_F(A64ExecTest, SinglePrecisionWritesZeroUpperBits) {
  state.setFprD(1, 1.0);
  state.setFprS(1, 2.0f);
  EXPECT_EQ(state.v[1] >> 32, 0u);
  EXPECT_FLOAT_EQ(state.fprS(1), 2.0f);
}

TEST_F(A64ExecTest, CcmpChains) {
  // (x0 == 1) && (x1 == 2)
  state.x[0] = 1;
  state.x[1] = 2;
  step(makeCmpImm(0, 1));
  Inst ccmp;
  ccmp.op = Op::CCMPi;
  ccmp.rn = 1;
  ccmp.imm = 2;
  ccmp.cond = Cond::EQ;
  ccmp.imms = 0;  // nzcv if condition fails
  step(ccmp);
  EXPECT_TRUE(condHolds(Cond::EQ, state.nzcv));

  // First compare fails: flags come from the immediate nzcv.
  state.x[0] = 9;
  step(makeCmpImm(0, 1));
  step(ccmp);
  EXPECT_FALSE(condHolds(Cond::EQ, state.nzcv));
}

TEST_F(A64ExecTest, SvcTraps) { step(makeSvc(0), Trap::Svc); }

// Integration: the paper's Listing 1 copy-kernel body, assembled and run.
TEST_F(A64ExecTest, PaperListing1CopyKernel) {
  constexpr std::uint64_t kA = 0x10000;  // source array
  constexpr std::uint64_t kC = 0x20000;  // destination array
  constexpr unsigned kN = 64;
  for (unsigned i = 0; i < kN; ++i) {
    memory.write<double>(kA + i * 8, 1.5 * i);
  }
  const auto words = assemble(
      "  movz x22, #0x1\n"       // a base = 0x10000
      "  lsl x22, x22, #16\n"
      "  movz x19, #0x2\n"       // c base = 0x20000
      "  lsl x19, x19, #16\n"
      "  movz x0, #0\n"
      "  movz x20, #64\n"
      "loop:\n"
      "  ldr d1, [x22, x0, lsl #3]\n"
      "  str d1, [x19, x0, lsl #3]\n"
      "  add x0, x0, #1\n"
      "  cmp x0, x20\n"
      "  b.ne loop\n"
      "  svc #0\n",
      0x1000);
  for (std::size_t i = 0; i < words.size(); ++i) {
    memory.write<std::uint32_t>(0x1000 + i * 4, words[i]);
  }
  state.pc = 0x1000;
  int executed = 0;
  for (;;) {
    ASSERT_LT(++executed, 10000) << "program did not terminate";
    const auto inst = decode(memory.read<std::uint32_t>(state.pc));
    ASSERT_TRUE(inst.has_value()) << "pc=0x" << std::hex << state.pc;
    RetiredInst retired;
    if (execute(*inst, state, memory, retired) == Trap::Svc) break;
  }
  for (unsigned i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(memory.read<double>(kC + i * 8), 1.5 * i) << i;
  }
  // 6 setup + 64 iterations x 5 + svc
  EXPECT_EQ(executed, 6 + 64 * 5 + 1);
}

}  // namespace
}  // namespace riscmp::a64
