#include "aarch64/bitmask.hpp"

#include <gtest/gtest.h>

namespace riscmp::a64 {
namespace {

TEST(Bitmask, KnownEncodings) {
  // and x0, x1, #0xff -> N=1, immr=0, imms=7 (GNU as cross-check).
  const auto fields = encodeBitmask(0xff, 64);
  ASSERT_TRUE(fields.has_value());
  EXPECT_EQ(fields->n, 1);
  EXPECT_EQ(fields->immr, 0);
  EXPECT_EQ(fields->imms, 7);
}

TEST(Bitmask, UnencodableValues) {
  EXPECT_FALSE(encodeBitmask(0, 64).has_value());
  EXPECT_FALSE(encodeBitmask(~std::uint64_t{0}, 64).has_value());
  EXPECT_FALSE(encodeBitmask(0x1234567890abcdefull, 64).has_value());
  EXPECT_FALSE(encodeBitmask(0xff00ff01ull, 64).has_value());
  // 32-bit operations cannot encode values with high bits set.
  EXPECT_FALSE(encodeBitmask(0x1ffffffffull, 32).has_value());
}

TEST(Bitmask, DecodeReservedReturnsNullopt) {
  // imms = all-ones at the selected size is reserved.
  EXPECT_FALSE(decodeBitmask(1, 0, 63, 64).has_value());
  // N=1 in a 32-bit context is reserved.
  EXPECT_FALSE(decodeBitmask(1, 0, 7, 32).has_value());
}

TEST(Bitmask, RoundTripCommonMasks) {
  const std::uint64_t values[] = {
      0x1,
      0x3,
      0x7,
      0xff,
      0xffff,
      0xffffffff,
      0x7ffffffffffffffe,  // run of ones rotated
      0x8000000000000001,  // wrapped run
      0xff00,
      0xffff0000,
      0x5555555555555555,
      0xaaaaaaaaaaaaaaaa,
      0x3333333333333333,
      0x0f0f0f0f0f0f0f0f,
      0xe0e0e0e0e0e0e0e0,
      0xfffffffffffffffe,
      0x00000000fffff000,
  };
  for (const std::uint64_t value : values) {
    const auto fields = encodeBitmask(value, 64);
    ASSERT_TRUE(fields.has_value()) << std::hex << value;
    const auto decoded =
        decodeBitmask(fields->n, fields->immr, fields->imms, 64);
    ASSERT_TRUE(decoded.has_value()) << std::hex << value;
    EXPECT_EQ(*decoded, value) << std::hex << value;
  }
}

TEST(Bitmask, RoundTrip32Bit) {
  const std::uint64_t values[] = {0x1, 0xff, 0xff00, 0x80000001, 0xfffffffe,
                                  0x55555555, 0x0f0f0f0f};
  for (const std::uint64_t value : values) {
    const auto fields = encodeBitmask(value, 32);
    ASSERT_TRUE(fields.has_value()) << std::hex << value;
    EXPECT_EQ(fields->n, 0) << "32-bit immediates must have N=0";
    const auto decoded =
        decodeBitmask(fields->n, fields->immr, fields->imms, 32);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, value) << std::hex << value;
  }
}

// Property: every decodable (N, immr, imms) triple round-trips through the
// encoder, and the encoder never produces a different value.
TEST(Bitmask, ExhaustiveFieldSpaceRoundTrips) {
  int decodable = 0;
  for (unsigned n = 0; n < 2; ++n) {
    for (unsigned immr = 0; immr < 64; ++immr) {
      for (unsigned imms = 0; imms < 64; ++imms) {
        const auto value = decodeBitmask(n, immr, imms, 64);
        if (!value) continue;
        ++decodable;
        const auto fields = encodeBitmask(*value, 64);
        ASSERT_TRUE(fields.has_value()) << std::hex << *value;
        const auto redecoded =
            decodeBitmask(fields->n, fields->immr, fields->imms, 64);
        ASSERT_TRUE(redecoded.has_value());
        EXPECT_EQ(*redecoded, *value);
      }
    }
  }
  // The architecture defines exactly 5334 distinct 64-bit logical-immediate
  // encodings (with redundancy); at least the unique-value count must be hit.
  EXPECT_GT(decodable, 4000);
}

}  // namespace
}  // namespace riscmp::a64
