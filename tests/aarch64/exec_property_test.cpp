// Property suites for the A64 executor: the full condition-code matrix
// against a reference predicate, and operand-sweep comparisons against
// host-computed expected values for shifts, extends, and flag-setting
// arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "aarch64/encode.hpp"
#include "aarch64/exec.hpp"

namespace riscmp::a64 {
namespace {

class A64Property : public ::testing::Test {
 protected:
  A64Property() : memory(1 << 16) { state.pc = 0x1000; }

  void step(const Inst& inst) {
    RetiredInst retired;
    execute(inst, state, memory, retired);
  }

  State state;
  Memory memory;
};

/// Reference predicate: evaluate `cond` the way the ARM ARM defines it in
/// terms of a signed/unsigned comparison a ? b (for flags produced by
/// `cmp a, b`).
bool referenceHolds(Cond cond, std::uint64_t a, std::uint64_t b) {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  switch (cond) {
    case Cond::EQ:
      return a == b;
    case Cond::NE:
      return a != b;
    case Cond::CS:
      return a >= b;  // unsigned >=
    case Cond::CC:
      return a < b;  // unsigned <
    case Cond::MI:
      return sa - sb < 0;  // negative result (no overflow cases used)
    case Cond::PL:
      return sa - sb >= 0;
    case Cond::HI:
      return a > b;
    case Cond::LS:
      return a <= b;
    case Cond::GE:
      return sa >= sb;
    case Cond::LT:
      return sa < sb;
    case Cond::GT:
      return sa > sb;
    case Cond::LE:
      return sa <= sb;
    default:
      return true;  // AL/NV; VS/VC excluded from this sweep
  }
}

TEST_F(A64Property, ConditionMatrixAgainstReference) {
  // Operand pairs chosen to avoid signed-overflow in the reference MI/PL
  // shortcut while covering equal/greater/less and unsigned wraparound.
  const std::uint64_t values[] = {0,          1,          2,
                                  100,        0x7fffffff, 0x80000000,
                                  ~0ull - 1,  ~0ull,      0x123456789abull};
  const Cond conds[] = {Cond::EQ, Cond::NE, Cond::CS, Cond::CC,
                        Cond::HI, Cond::LS, Cond::GE, Cond::LT,
                        Cond::GT, Cond::LE};
  for (const std::uint64_t a : values) {
    for (const std::uint64_t b : values) {
      state.x[0] = a;
      state.x[1] = b;
      step(makeCmpReg(0, 1));
      for (const Cond cond : conds) {
        EXPECT_EQ(condHolds(cond, state.nzcv), referenceHolds(cond, a, b))
            << "cmp " << a << ", " << b << " cond "
            << condName(cond);
      }
    }
  }
}

TEST_F(A64Property, MiPlMatchSignOfResult) {
  // MI/PL reflect the N flag of the subtraction result itself.
  const std::int64_t values[] = {-5, -1, 0, 1, 5};
  for (const std::int64_t a : values) {
    for (const std::int64_t b : values) {
      state.x[0] = static_cast<std::uint64_t>(a);
      state.x[1] = static_cast<std::uint64_t>(b);
      step(makeCmpReg(0, 1));
      EXPECT_EQ(condHolds(Cond::MI, state.nzcv), (a - b) < 0);
      EXPECT_EQ(condHolds(Cond::PL, state.nzcv), (a - b) >= 0);
    }
  }
}

TEST_F(A64Property, ShiftedOperandSweep) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t value = rng();
    const unsigned amount = static_cast<unsigned>(rng() % 64);
    state.x[1] = value;

    step(makeAddSubReg(Op::ADDr, 2, 31, 1, Shift::LSL, amount));
    EXPECT_EQ(state.x[2], amount ? value << amount : value);

    step(makeAddSubReg(Op::ADDr, 2, 31, 1, Shift::LSR, amount));
    EXPECT_EQ(state.x[2], amount ? value >> amount : value);

    step(makeAddSubReg(Op::ADDr, 2, 31, 1, Shift::ASR, amount));
    EXPECT_EQ(state.x[2],
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(value) >> amount));

    step(makeLogicReg(Op::ORRr, 2, 31, 1, Shift::ROR, amount));
    EXPECT_EQ(state.x[2],
              amount ? (value >> amount) | (value << (64 - amount)) : value);
  }
}

TEST_F(A64Property, ThirtyTwoBitShiftsSweep) {
  std::mt19937_64 rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    const auto value = static_cast<std::uint32_t>(rng());
    const unsigned amount = static_cast<unsigned>(rng() % 32);
    state.x[1] = value;
    step(makeAddSubReg(Op::ADDr, 2, 31, 1, Shift::LSL, amount, false));
    EXPECT_EQ(state.x[2], static_cast<std::uint32_t>(value << amount));
    step(makeAddSubReg(Op::ADDr, 2, 31, 1, Shift::ASR, amount, false));
    EXPECT_EQ(state.x[2],
              static_cast<std::uint32_t>(
                  static_cast<std::int32_t>(value) >> amount));
  }
}

TEST_F(A64Property, ExtendedOperandSweep) {
  std::mt19937_64 rng(44);
  struct Case {
    Extend extend;
    std::uint64_t (*reference)(std::uint64_t);
  };
  const Case cases[] = {
      {Extend::UXTB, [](std::uint64_t v) { return v & std::uint64_t{0xff}; }},
      {Extend::UXTH, [](std::uint64_t v) { return v & std::uint64_t{0xffff}; }},
      {Extend::UXTW, [](std::uint64_t v) { return v & std::uint64_t{0xffffffff}; }},
      {Extend::UXTX, [](std::uint64_t v) { return v; }},
      {Extend::SXTB,
       [](std::uint64_t v) {
         return static_cast<std::uint64_t>(
             static_cast<std::int64_t>(static_cast<std::int8_t>(v)));
       }},
      {Extend::SXTH,
       [](std::uint64_t v) {
         return static_cast<std::uint64_t>(
             static_cast<std::int64_t>(static_cast<std::int16_t>(v)));
       }},
      {Extend::SXTW,
       [](std::uint64_t v) {
         return static_cast<std::uint64_t>(
             static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
       }},
      {Extend::SXTX, [](std::uint64_t v) { return v; }},
  };
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t value = rng();
    const unsigned shift = static_cast<unsigned>(rng() % 5);
    state.x[1] = value;
    for (const Case& c : cases) {
      Inst inst;
      inst.op = Op::ADDx;
      inst.rd = 2;
      inst.rn = 31;  // SP reads 0 in the extended form
      inst.rm = 1;
      inst.extend = c.extend;
      inst.extAmount = static_cast<std::uint8_t>(shift);
      step(inst);
      EXPECT_EQ(state.x[2], c.reference(value) << shift)
          << "extend " << static_cast<int>(c.extend) << " shift " << shift;
    }
  }
}

TEST_F(A64Property, CarryFlagMatchesUnsignedBorrow) {
  std::mt19937_64 rng(45);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    state.x[0] = a;
    state.x[1] = b;
    step(makeCmpReg(0, 1));
    // For subtraction, C == no borrow == (a >= b).
    EXPECT_EQ(state.flagC(), a >= b);
    EXPECT_EQ(state.flagZ(), a == b);
  }
}

TEST_F(A64Property, OverflowFlagMatchesSignedOverflow) {
  std::mt19937_64 rng(46);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    state.x[0] = a;
    state.x[1] = b;
    step(makeAddSubReg(Op::ADDSr, 2, 0, 1));
    std::int64_t expected = 0;
    const bool overflow = __builtin_add_overflow(
        static_cast<std::int64_t>(a), static_cast<std::int64_t>(b),
        &expected);
    EXPECT_EQ(state.flagV(), overflow);
    EXPECT_EQ(state.x[2], static_cast<std::uint64_t>(expected));
  }
}

TEST_F(A64Property, CselMatrixOverAllConditions) {
  state.x[1] = 111;
  state.x[2] = 222;
  for (unsigned n = 0; n < 16; ++n) {
    state.nzcv = static_cast<std::uint8_t>(n);
    for (unsigned c = 0; c < 14; ++c) {  // skip AL/NV duplicates
      const Cond cond = static_cast<Cond>(c);
      step(makeCondSel(Op::CSEL, 3, 1, 2, cond));
      EXPECT_EQ(state.x[3], condHolds(cond, state.nzcv) ? 111u : 222u);
    }
  }
}

}  // namespace
}  // namespace riscmp::a64
