// Additional assembler coverage: the mnemonics and operand shapes the main
// asm test does not reach (bitfield extracts, test branches, bit-clear
// family, address generation, literal loads, ccmp-style sequences through
// csel, 32-bit register forms, and immediate-form logical operations).
#include <gtest/gtest.h>

#include "aarch64/asm.hpp"
#include "aarch64/decode.hpp"
#include "aarch64/disasm.hpp"
#include "aarch64/encode.hpp"
#include "core/machine.hpp"

namespace riscmp::a64 {
namespace {

TEST(A64AsmCoverage, BitfieldExtractForms) {
  const auto words = assemble(
      "ubfx x0, x1, #8, #16\n"
      "sbfx w2, w3, #4, #8\n"
      "uxtw x4, w5\n");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], encode(makeBitfield(Op::UBFM, 0, 1, 8, 23)));
  EXPECT_EQ(words[1], encode(makeBitfield(Op::SBFM, 2, 3, 4, 11, false)));
  EXPECT_EQ(words[2], encode(makeBitfield(Op::UBFM, 4, 5, 0, 31)));
}

TEST(A64AsmCoverage, TestBitBranches) {
  const auto words = assemble(
      "top:\n"
      "  tbz x0, #63, top\n"
      "  tbnz x1, #5, top\n");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], encode(makeTestBranch(Op::TBZ, 0, 63, 0)));
  EXPECT_EQ(words[1], encode(makeTestBranch(Op::TBNZ, 1, 5, -4)));
}

TEST(A64AsmCoverage, BitClearFamily) {
  const auto words = assemble(
      "bic x0, x1, x2\n"
      "orn x3, x4, x5\n"
      "eon x6, x7, x8\n");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], encode(makeLogicReg(Op::BICr, 0, 1, 2)));
  EXPECT_EQ(words[1], encode(makeLogicReg(Op::ORNr, 3, 4, 5)));
  EXPECT_EQ(words[2], encode(makeLogicReg(Op::EONr, 6, 7, 8)));
}

TEST(A64AsmCoverage, LogicalImmediates) {
  const auto words = assemble(
      "and x0, x1, #0xff\n"
      "orr x2, x3, #0xf0f0f0f0f0f0f0f0\n"
      "tst x4, #1\n");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], encode(makeLogicImm(Op::ANDi, 0, 1, 0xff)));
  EXPECT_EQ(words[1],
            encode(makeLogicImm(Op::ORRi, 2, 3, 0xf0f0f0f0f0f0f0f0ull)));
  EXPECT_EQ(words[2], encode(makeLogicImm(Op::ANDSi, 31, 4, 1)));
}

TEST(A64AsmCoverage, AdrAndLiteralLoads) {
  const auto words = assemble(
      "pool:\n"
      "  nop\n"
      "  adr x0, pool\n"
      "  ldr x1, pool\n"
      "  ldr d2, pool\n"
      "  ldr w3, pool\n");
  ASSERT_EQ(words.size(), 5u);
  const auto adr = decode(words[1]);
  ASSERT_TRUE(adr.has_value());
  EXPECT_EQ(adr->op, Op::ADR);
  EXPECT_EQ(adr->imm, -4);
  const auto litX = decode(words[2]);
  ASSERT_TRUE(litX.has_value());
  EXPECT_EQ(litX->op, Op::LDR_LIT_X);
  EXPECT_EQ(litX->imm, -8);
  EXPECT_EQ(decode(words[3])->op, Op::LDR_LIT_D);
  EXPECT_EQ(decode(words[4])->op, Op::LDR_LIT_W);
}

TEST(A64AsmCoverage, ThirtyTwoBitForms) {
  const auto words = assemble(
      "add w0, w1, w2\n"
      "cmp w3, #7\n"
      "mov w4, #9\n"
      "cbz w5, 8\n"
      "sdiv w6, w7, w8\n");
  for (const std::uint32_t word : words) {
    const auto inst = decode(word);
    ASSERT_TRUE(inst.has_value());
    EXPECT_FALSE(inst->is64);
  }
}

TEST(A64AsmCoverage, CselFamilyAndConditions) {
  const auto words = assemble(
      "csel x0, x1, x2, gt\n"
      "csinc x3, x4, x5, ls\n"
      "csinv w6, w7, w8, mi\n"
      "csneg x9, x10, x11, vc\n"
      "cset x12, hi\n");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[0], encode(makeCondSel(Op::CSEL, 0, 1, 2, Cond::GT)));
  EXPECT_EQ(words[3], encode(makeCondSel(Op::CSNEG, 9, 10, 11, Cond::VC)));
  EXPECT_EQ(words[4],
            encode(makeCondSel(Op::CSINC, 12, 31, 31, Cond::LS)));
}

TEST(A64AsmCoverage, WideMovesWithShifts) {
  const auto words = assemble(
      "movz x0, #0xdead, lsl #48\n"
      "movk x0, #0xbeef, lsl #16\n"
      "movn x1, #0, lsl #32\n");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], encode(makeMoveWide(Op::MOVZ, 0, 0xdead, 48)));
  EXPECT_EQ(words[1], encode(makeMoveWide(Op::MOVK, 0, 0xbeef, 16)));
  EXPECT_EQ(words[2], encode(makeMoveWide(Op::MOVN, 1, 0, 32)));
}

TEST(A64AsmCoverage, MulVariants) {
  const auto words = assemble(
      "madd x0, x1, x2, x3\n"
      "msub x4, x5, x6, x7\n"
      "smulh x8, x9, x10\n"
      "umulh x11, x12, x13\n"
      "smull x14, w15, w16\n"
      "mneg x17, x19, x20\n");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(words[2], encode(makeDp3(Op::SMULH, 8, 9, 10, 31)));
  EXPECT_EQ(words[4], encode(makeDp3(Op::SMADDL, 14, 15, 16, 31)));
  EXPECT_EQ(words[5], encode(makeDp3(Op::MSUB, 17, 19, 20, 31)));
}

// End-to-end: a hand-written A64 routine combining the covered forms runs
// correctly (population-count via shift/and/add loop).
TEST(A64AsmCoverage, PopcountProgramExecutes) {
  Program program;
  program.arch = Arch::AArch64;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  program.code = assemble(
      "  movz x0, #0\n"            // count
      "  movz x1, #0xb705\n"       // value with 8 bits set
      "loop:\n"
      "  cbz x1, done\n"
      "  and x2, x1, #1\n"
      "  add x0, x0, x2\n"
      "  lsr x1, x1, #1\n"
      "  b loop\n"
      "done:\n"
      "  mov x8, #93\n"
      "  svc #0\n",
      program.codeBase);
  Machine machine(program);
  const RunResult result = machine.run();
  EXPECT_TRUE(result.exitedCleanly);
  EXPECT_EQ(result.exitCode, 8);  // popcount(0xb705)
}

TEST(A64AsmCoverage, DisassemblerRoundTripsCoverageForms) {
  const char* source =
      "ubfx x0, x1, #8, #16\n"
      "bic x0, x1, x2\n"
      "csel x0, x1, x2, gt\n"
      "madd x0, x1, x2, x3\n"
      "movz x0, #123, lsl #16\n"
      "tst x4, x5\n";
  const auto words = assemble(source);
  std::string rebuilt;
  for (const std::uint32_t word : words) {
    rebuilt += disassemble(word, 0) + "\n";
  }
  EXPECT_EQ(assemble(rebuilt), words);
}

}  // namespace
}  // namespace riscmp::a64
