// Encode→decode→disasm→re-assemble round-trip fuzzing, AArch64 (ISSUE 3).
//
// Every 32-bit word either rejects cleanly at decode or survives the full
// round trip: decode → disassemble → assemble → re-decode must reproduce
// the word (or an alias that disassembles identically). Divergence means a
// printer/parser mismatch; Unclassified means an exception escaped the
// taxonomy. Two corpora: 10k seeded random words (mostly invalid — probes
// the decoder's reject paths), and every word of compiled kernels under
// both eras (all valid — probes the full printer/parser surface).
#include <gtest/gtest.h>

#include "kgen/compile.hpp"
#include "verify/differential.hpp"
#include "verify/injector.hpp"  // SplitMix64
#include "workloads/workloads.hpp"

namespace riscmp {
namespace {

constexpr Arch kArch = Arch::AArch64;
constexpr std::uint64_t kRandomWords = 10000;

bool roundTripsClean(const verify::Outcome& outcome) {
  return outcome.kind == verify::OutcomeKind::ValidDecode ||
         outcome.kind == verify::OutcomeKind::DecodeFault;
}

TEST(A64RoundTripFuzz, RandomWordsNeverDiverge) {
  verify::SplitMix64 rng(0x5eed0002);
  std::uint64_t decoded = 0;
  for (std::uint64_t i = 0; i < kRandomWords; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    const verify::Outcome outcome = verify::classifyWord(kArch, word);
    ASSERT_TRUE(roundTripsClean(outcome))
        << "word " << std::hex << word << ": " << outcome.detail;
    if (outcome.kind == verify::OutcomeKind::ValidDecode) ++decoded;
  }
  EXPECT_GT(decoded, 0u) << "corpus never hit a valid encoding";
}

// Regression: the disassembler prints shifted-register forms of bic/orn/eon
// ("orn x14, x19, x9, lsl #61") but the assembler used to require exactly
// three operands — it now accepts the optional shift like and/orr/eor.
TEST(A64RoundTripFuzz, ShiftedOrnRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0xaa29f66eu);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

// Regression: a 32-bit shifted-register ALU word with imm6 >= 32
// (unallocated: sf==0 with imm6<5> set) used to decode and then fail
// re-assembly ("ands w6, w23, w21, lsr #63") — the decoder now rejects it.
TEST(A64RoundTripFuzz, Reserved32BitShiftAmountRejectsAtDecode) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x6a55fee6u);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::DecodeFault) << outcome.detail;
}

// Regression: umaddl/smaddl with a live accumulator used to disassemble
// without the ra operand (and with 64-bit source registers), and the
// assembler knew neither mnemonic nor the umull alias.
TEST(A64RoundTripFuzz, WideningMultiplyAddRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x9bb11b97u);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

// Regression: "ldrsw xt, #lit" used to re-assemble as a plain ldr literal
// (opc 01 instead of 10) because the literal path picked the op from the
// register width alone, ignoring the mnemonic.
TEST(A64RoundTripFuzz, LdrswLiteralRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x983cccbfu);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

// Regression: a 32-bit bitfield word with immr >= 32 (unallocated with
// sf==0) used to decode as "sbfx w12, w30, #44, #14" and then fail
// re-assembly — the decoder now rejects out-of-range 32-bit positions.
TEST(A64RoundTripFuzz, Reserved32BitBitfieldRejectsAtDecode) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x132ce7ccu);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::DecodeFault) << outcome.detail;
}

// Regression: the disassembler falls back to the raw "bfm rd, rn, #immr,
// #imms" spelling when no alias fits, but the assembler only knew the
// aliases — bfm/sbfm/ubfm are now accepted directly.
TEST(A64RoundTripFuzz, RawBfmRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0xb34e4ae7u);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

// Regression: bics decoded and disassembled but the assembler did not know
// the mnemonic at all (bic/orn/eon were parsed, their flag-setting sibling
// was not).
TEST(A64RoundTripFuzz, BicsRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x6aa74001u);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

// Regression: an explicit extend operand on same-width registers
// ("subs w23, w4, w6, sxth #2") used to silently assemble as the plain
// shifted-register form, dropping the extension.
TEST(A64RoundTripFuzz, SameWidthExtendedRegisterRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x6b26a897u);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

// Regression: extr decoded and disassembled (it backs the ror-immediate
// alias) but could not be assembled under its own name when rn != rm.
TEST(A64RoundTripFuzz, ExtrRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x93d6f60du);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

// Regression: a register-offset load with extend option 001 (uxth) used to
// decode as "ldrb w26, [x11, x6, uxth]" — option<1> clear is unallocated
// for memory offsets and now rejects at decode.
TEST(A64RoundTripFuzz, ReservedMemOffsetExtendRejectsAtDecode) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x3866397au);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::DecodeFault) << outcome.detail;
}

// Regression: ccmn/ccmp decoded and disassembled but had no assembler
// support in either the immediate or register form.
TEST(A64RoundTripFuzz, CondCompareRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0xba4209c0u);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

TEST(A64RoundTripFuzz, CompiledCorpusRoundTripsExactly) {
  const kgen::Module stream = workloads::makeStream({.n = 64, .reps = 1});
  for (const auto era : {kgen::CompilerEra::Gcc9, kgen::CompilerEra::Gcc12}) {
    const kgen::Compiled compiled = kgen::compile(stream, kArch, era);
    for (const std::uint32_t word : compiled.program.code) {
      const verify::Outcome outcome = verify::classifyWord(kArch, word);
      ASSERT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode)
          << "word " << std::hex << word << ": " << outcome.detail;
    }
  }
}

}  // namespace
}  // namespace riscmp
