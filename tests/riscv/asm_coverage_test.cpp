// Additional RV64 assembler/disassembler/executor coverage: CSR accesses,
// the A-extension forms, W-suffixed arithmetic, single-precision FP, and
// conversion instructions — the corners the primary suites do not reach.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "riscv/asm.hpp"
#include "riscv/decode.hpp"
#include "riscv/disasm.hpp"
#include "riscv/encode.hpp"

namespace riscmp::rv64 {
namespace {

TEST(Rv64AsmCoverage, CsrInstructions) {
  const auto words = assemble(
      "csrrw t0, 0x003, t1\n"
      "csrrs t2, 0x001, zero\n"
      "csrrwi t3, 0x002, 5\n");
  ASSERT_EQ(words.size(), 3u);
  const auto csrrw = decode(words[0]);
  ASSERT_TRUE(csrrw.has_value());
  EXPECT_EQ(csrrw->op, Op::CSRRW);
  EXPECT_EQ(csrrw->imm, 0x003);
  EXPECT_EQ(csrrw->rd, 5);
  EXPECT_EQ(csrrw->rs1, 6);
  const auto csrrwi = decode(words[2]);
  ASSERT_TRUE(csrrwi.has_value());
  EXPECT_EQ(csrrwi->op, Op::CSRRWI);
  EXPECT_EQ(csrrwi->rs1, 5);  // zimm field
}

TEST(Rv64AsmCoverage, AtomicForms) {
  const auto words = assemble(
      "lr.w t0, (a0)\n"
      "sc.w t1, t2, (a0)\n"
      "amoadd.d t3, t4, (a1)\n"
      "amoswap.w t5, t6, (a2)\n");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(decode(words[0])->op, Op::LR_W);
  EXPECT_EQ(decode(words[1])->op, Op::SC_W);
  EXPECT_EQ(decode(words[2])->op, Op::AMOADD_D);
  EXPECT_EQ(decode(words[3])->op, Op::AMOSWAP_W);
  // Disassembly round-trips the operand order.
  EXPECT_EQ(disassemble(words[2], 0), "amoadd.d t3, t4, (a1)");
}

TEST(Rv64AsmCoverage, WordArithmeticForms) {
  const auto words = assemble(
      "addw a0, a1, a2\n"
      "subw a3, a4, a5\n"
      "slliw t0, t1, 3\n"
      "sraiw t2, t3, 7\n"
      "mulw s0, s1, s2\n"
      "remuw s3, s4, s5\n"
      "sext.w a6, a7\n");
  ASSERT_EQ(words.size(), 7u);
  EXPECT_EQ(decode(words[0])->op, Op::ADDW);
  EXPECT_EQ(decode(words[2])->op, Op::SLLIW);
  EXPECT_EQ(decode(words[4])->op, Op::MULW);
  EXPECT_EQ(decode(words[6])->op, Op::ADDIW);  // sext.w alias
}

TEST(Rv64AsmCoverage, SinglePrecisionFp) {
  const auto words = assemble(
      "flw fa0, 0(a0)\n"
      "fadd.s fa1, fa2, fa3\n"
      "fmadd.s fa4, fa5, fa0, fa1\n"
      "fcvt.d.s ft0, fa4\n"
      "fcvt.s.d ft1, ft0\n"
      "fsw ft1, 8(a0)\n"
      "feq.s t0, fa1, fa2\n");
  ASSERT_EQ(words.size(), 7u);
  EXPECT_EQ(decode(words[1])->op, Op::FADD_S);
  EXPECT_EQ(decode(words[3])->op, Op::FCVT_D_S);
  EXPECT_EQ(decode(words[6])->op, Op::FEQ_S);
}

TEST(Rv64AsmCoverage, ConversionFamily) {
  const auto words = assemble(
      "fcvt.d.l ft0, a0\n"
      "fcvt.d.lu ft1, a1\n"
      "fcvt.l.d a2, ft0\n"
      "fcvt.w.d a3, ft1\n"
      "fmv.x.d a4, ft0\n"
      "fmv.d.x ft2, a5\n");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(decode(words[0])->op, Op::FCVT_D_L);
  EXPECT_EQ(decode(words[2])->op, Op::FCVT_L_D);
  EXPECT_EQ(decode(words[4])->op, Op::FMV_X_D);
  EXPECT_EQ(decode(words[5])->op, Op::FMV_D_X);
}

// End-to-end: a fixed-point square root via integer Newton iterations,
// exercising word ops, multiplies, divides and branches together.
TEST(Rv64AsmCoverage, IntegerNewtonSqrtProgram) {
  Program program;
  program.arch = Arch::Rv64;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  program.code = assemble(
      "  li a0, 1764\n"   // value (42^2)
      "  li a1, 1764\n"   // x = value
      "loop:\n"
      "  div a2, a0, a1\n"   // value / x
      "  add a2, a2, a1\n"
      "  srai a2, a2, 1\n"   // x' = (x + value/x) / 2
      "  bge a2, a1, done\n" // monotone: stop when no longer decreasing
      "  mv a1, a2\n"
      "  j loop\n"
      "done:\n"
      "  mv a0, a1\n"
      "  li a7, 93\n"
      "  ecall\n",
      program.codeBase);
  Machine machine(program);
  const RunResult result = machine.run();
  EXPECT_TRUE(result.exitedCleanly);
  EXPECT_EQ(result.exitCode, 42);
}

TEST(Rv64AsmCoverage, PseudoBranchFamily) {
  const auto words = assemble(
      "top:\n"
      "  bltz a0, top\n"
      "  bgez a1, top\n"
      "  blez a2, top\n"
      "  bgtz a3, top\n"
      "  bgt a4, a5, top\n"
      "  bleu a6, a7, top\n");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(decode(words[0])->op, Op::BLT);   // bltz a0 -> blt a0, zero
  EXPECT_EQ(decode(words[2])->op, Op::BGE);   // blez -> bge zero, rs
  EXPECT_EQ(decode(words[2])->rs1, 0);
  EXPECT_EQ(decode(words[4])->op, Op::BLT);   // bgt swaps operands
  EXPECT_EQ(decode(words[4])->rs1, 15);       // a5
  EXPECT_EQ(decode(words[5])->op, Op::BGEU);  // bleu swaps operands
}

TEST(Rv64AsmCoverage, FpPseudoOps) {
  const auto words = assemble(
      "fmv.d ft0, ft1\n"
      "fneg.d ft2, ft3\n"
      "fabs.s ft4, ft5\n"
      "snez t0, t1\n"
      "not t2, t3\n");
  ASSERT_EQ(words.size(), 5u);
  const auto fmv = decode(words[0]);
  EXPECT_EQ(fmv->op, Op::FSGNJ_D);
  EXPECT_EQ(fmv->rs1, fmv->rs2);
  EXPECT_EQ(decode(words[1])->op, Op::FSGNJN_D);
  EXPECT_EQ(decode(words[2])->op, Op::FSGNJX_S);
  EXPECT_EQ(decode(words[3])->op, Op::SLTU);
  EXPECT_EQ(decode(words[4])->op, Op::XORI);
}

TEST(Rv64AsmCoverage, DisassemblerRoundTripsCoverageForms) {
  const char* source =
      "csrrw t0, 0x3, t1\n"
      "amoadd.d t3, t4, (a1)\n"
      "addw a0, a1, a2\n"
      "fadd.s fa1, fa2, fa3\n"
      "fcvt.d.l ft0, a0\n";
  const auto words = assemble(source);
  std::string rebuilt;
  for (const std::uint32_t word : words) {
    rebuilt += disassemble(word, 0) + "\n";
  }
  EXPECT_EQ(assemble(rebuilt), words);
}

}  // namespace
}  // namespace riscmp::rv64
