#include <gtest/gtest.h>

#include "riscv/decode.hpp"
#include "riscv/encode.hpp"

namespace riscmp::rv64 {
namespace {

// ---------------------------------------------------------------------------
// Golden encodings, cross-checked against GNU binutils objdump output.
// ---------------------------------------------------------------------------

TEST(Rv64Encode, GoldenWords) {
  EXPECT_EQ(encode(makeI(Op::ADDI, 0, 0, 0)), 0x00000013u);   // nop
  EXPECT_EQ(encode(makeI(Op::ADDI, 10, 10, 1)), 0x00150513u); // addi a0,a0,1
  EXPECT_EQ(encode(makeR(Op::ADD, 10, 11, 12)), 0x00c58533u); // add a0,a1,a2
  EXPECT_EQ(encode(makeR(Op::MUL, 10, 11, 12)), 0x02c58533u); // mul a0,a1,a2
  EXPECT_EQ(encode(makeI(Op::JALR, 0, 1, 0)), 0x00008067u);   // ret
  EXPECT_EQ(encode(Inst{.op = Op::ECALL}), 0x00000073u);
  EXPECT_EQ(encode(makeB(Op::BEQ, 10, 11, 16)), 0x00b50863u); // beq a0,a1,.+16
  EXPECT_EQ(encode(makeI(Op::FLD, 15, 15, 0)), 0x0007b787u);  // fld fa5,0(a5)
  EXPECT_EQ(encode(makeS(Op::FSD, 15, 14, 0)), 0x00f73027u);  // fsd fa5,0(a4)
  EXPECT_EQ(encode(makeS(Op::SD, 15, 2, 8)), 0x00f13423u);    // sd a5,8(sp)
  EXPECT_EQ(encode(makeU(Op::LUI, 10, 0x12345000)), 0x12345537u);
  EXPECT_EQ(encode(makeJ(Op::JAL, 1, 8)), 0x008000efu);       // jal ra,.+8
  // fadd.d fa0,fa1,fa2 with dynamic rounding
  EXPECT_EQ(encode(makeR(Op::FADD_D, 10, 11, 12)), 0x02c5f553u);
  // fmadd.d fa0,fa1,fa2,fa3 with dynamic rounding
  EXPECT_EQ(encode(makeR4(Op::FMADD_D, 10, 11, 12, 13)), 0x6ac5f543u);
}

TEST(Rv64Encode, NegativeImmediates) {
  EXPECT_EQ(encode(makeI(Op::ADDI, 5, 5, -1)), 0xfff28293u);  // addi t0,t0,-1
  const std::uint32_t word = encode(makeB(Op::BNE, 15, 8, -20));
  const auto inst = decode(word);
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->imm, -20);
}

TEST(Rv64Encode, RangeErrors) {
  EXPECT_THROW(encode(makeI(Op::ADDI, 1, 1, 2048)), EncodeError);
  EXPECT_THROW(encode(makeI(Op::ADDI, 1, 1, -2049)), EncodeError);
  EXPECT_THROW(encode(makeB(Op::BEQ, 1, 2, 3)), EncodeError);     // odd
  EXPECT_THROW(encode(makeB(Op::BEQ, 1, 2, 4096)), EncodeError);  // too far
  EXPECT_THROW(encode(makeU(Op::LUI, 1, 0x1234)), EncodeError);   // low bits
  EXPECT_THROW(encode(makeI(Op::SLLI, 1, 1, 64)), EncodeError);
  EXPECT_THROW(encode(makeJ(Op::JAL, 1, 1 << 21)), EncodeError);
}

TEST(Rv64Decode, UnknownWordsRejected) {
  EXPECT_FALSE(decode(0x00000000u).has_value());
  EXPECT_FALSE(decode(0xffffffffu).has_value());
  EXPECT_FALSE(decode(0x0000007fu).has_value());
}

TEST(Rv64Decode, KnownWords) {
  const auto inst = decode(0x00c58533u);
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->op, Op::ADD);
  EXPECT_EQ(inst->rd, 10);
  EXPECT_EQ(inst->rs1, 11);
  EXPECT_EQ(inst->rs2, 12);
}

// ---------------------------------------------------------------------------
// Property: encode/decode round-trips for every opcode in the catalogue over
// a sweep of operand values.
// ---------------------------------------------------------------------------

class Rv64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

std::int64_t pickImm(ImmKind kind, int variant) {
  switch (kind) {
    case ImmKind::None:
      return 0;
    case ImmKind::I:
      return std::array<std::int64_t, 4>{0, 1, -1, 2047}[variant & 3];
    case ImmKind::S:
      return std::array<std::int64_t, 4>{0, 8, -8, -2048}[variant & 3];
    case ImmKind::B:
      return std::array<std::int64_t, 4>{0, 4, -4, 4094}[variant & 3];
    case ImmKind::U:
      return std::array<std::int64_t, 4>{0, 0x1000, -0x1000,
                                         0x7ffff000}[variant & 3];
    case ImmKind::J:
      return std::array<std::int64_t, 4>{0, 2, -2, -1048576}[variant & 3];
    case ImmKind::Shamt6:
      return std::array<std::int64_t, 4>{0, 1, 31, 63}[variant & 3];
    case ImmKind::Shamt5:
      return std::array<std::int64_t, 4>{0, 1, 15, 31}[variant & 3];
    case ImmKind::Csr:
    case ImmKind::CsrImm:
      return std::array<std::int64_t, 4>{0, 1, 0x300, 0xfff}[variant & 3];
  }
  return 0;
}

TEST_P(Rv64RoundTrip, EncodeDecodeIdentity) {
  const OpInfo& info = detail::opTable()[GetParam()];
  for (int variant = 0; variant < 4; ++variant) {
    Inst inst;
    inst.op = info.op;
    if (info.hasRd) inst.rd = static_cast<std::uint8_t>((variant * 7 + 1) & 31);
    if (info.readsRs1() || info.imm == ImmKind::CsrImm) {
      inst.rs1 = static_cast<std::uint8_t>((variant * 5 + 2) & 31);
    }
    if (info.readsRs2()) inst.rs2 = static_cast<std::uint8_t>((variant * 3 + 3) & 31);
    if (info.readsRs3()) inst.rs3 = static_cast<std::uint8_t>((variant * 11 + 4) & 31);
    inst.imm = pickImm(info.imm, variant);

    const std::uint32_t word = encode(inst);
    const auto decoded = decode(word);
    ASSERT_TRUE(decoded.has_value())
        << info.mnemonic << " word 0x" << std::hex << word;
    EXPECT_EQ(*decoded, inst) << info.mnemonic;
    // Re-encoding the decoded instruction reproduces the word exactly.
    EXPECT_EQ(encode(*decoded), word) << info.mnemonic;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, Rv64RoundTrip,
                         ::testing::Range<std::size_t>(0, kOpCount),
                         [](const auto& info) {
                           std::string name(
                               detail::opTable()[info.param].mnemonic);
                           for (char& ch : name) {
                             if (ch == '.') ch = '_';
                           }
                           return name;
                         });

// Decoding any 32-bit word never matches two table entries ambiguously:
// every entry's match bits are covered by its own mask.
TEST(Rv64Decode, TableIsSelfConsistent) {
  for (const OpInfo& a : detail::opTable()) {
    EXPECT_EQ(a.match & ~a.mask, 0u) << a.mnemonic << ": match outside mask";
    for (const OpInfo& b : detail::opTable()) {
      if (a.op == b.op) continue;
      // If the masks agree on the overlapping bits, the matches must differ
      // somewhere in the shared mask, otherwise decode would be ambiguous.
      const std::uint32_t shared = a.mask & b.mask;
      EXPECT_FALSE((a.match & shared) == (b.match & shared) &&
                   (a.mask == b.mask))
          << a.mnemonic << " vs " << b.mnemonic;
    }
  }
}

}  // namespace
}  // namespace riscmp::rv64
