// Property suites for the RV64 executor: operand sweeps compared against
// host-computed reference semantics (shifts, W-form wrapping, multiply
// high-halves, division edge behaviour, branch predicates).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "riscv/encode.hpp"
#include "riscv/exec.hpp"

namespace riscmp::rv64 {
namespace {

class Rv64Property : public ::testing::Test {
 protected:
  Rv64Property() : memory(1 << 16) { state.pc = 0x1000; }

  void step(const Inst& inst) {
    RetiredInst retired;
    execute(inst, state, memory, retired);
  }

  State state;
  Memory memory;
};

TEST_F(Rv64Property, ShiftSweep) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t value = rng();
    const unsigned amount = static_cast<unsigned>(rng() % 64);
    state.setGpr(1, value);
    state.setGpr(2, amount);

    step(makeR(Op::SLL, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), value << amount);
    step(makeR(Op::SRL, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), value >> amount);
    step(makeR(Op::SRA, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), static_cast<std::uint64_t>(
                                static_cast<std::int64_t>(value) >> amount));
    // Register shift amounts use only the low 6 bits.
    state.setGpr(2, amount + 64);
    step(makeR(Op::SLL, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), value << amount);
  }
}

TEST_F(Rv64Property, WordFormsWrapAndSignExtend) {
  std::mt19937_64 rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    state.setGpr(1, a);
    state.setGpr(2, b);

    const auto expect32 = [](std::uint32_t v) {
      return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
    };

    step(makeR(Op::ADDW, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), expect32(static_cast<std::uint32_t>(a) +
                                     static_cast<std::uint32_t>(b)));
    step(makeR(Op::SUBW, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), expect32(static_cast<std::uint32_t>(a) -
                                     static_cast<std::uint32_t>(b)));
    step(makeR(Op::MULW, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), expect32(static_cast<std::uint32_t>(a) *
                                     static_cast<std::uint32_t>(b)));
    step(makeR(Op::SLLW, 3, 1, 2));
    EXPECT_EQ(state.gpr(3),
              expect32(static_cast<std::uint32_t>(a) << (b & 31)));
  }
}

TEST_F(Rv64Property, MultiplyHighMatchesInt128) {
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    state.setGpr(1, a);
    state.setGpr(2, b);

    step(makeR(Op::MULHU, 3, 1, 2));
    EXPECT_EQ(state.gpr(3),
              static_cast<std::uint64_t>(
                  (static_cast<unsigned __int128>(a) * b) >> 64));
    step(makeR(Op::MULH, 3, 1, 2));
    EXPECT_EQ(state.gpr(3),
              static_cast<std::uint64_t>(
                  (static_cast<__int128>(static_cast<std::int64_t>(a)) *
                   static_cast<std::int64_t>(b)) >>
                  64));
    step(makeR(Op::MULHSU, 3, 1, 2));
    EXPECT_EQ(state.gpr(3),
              static_cast<std::uint64_t>(
                  (static_cast<__int128>(static_cast<std::int64_t>(a)) *
                   static_cast<unsigned __int128>(b)) >>
                  64));
    step(makeR(Op::MUL, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), a * b);
  }
}

TEST_F(Rv64Property, DivisionAgainstReference) {
  std::mt19937_64 rng(10);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a = rng();
    const std::uint64_t b = trial % 7 == 0 ? 0 : rng();  // mix in div-by-0
    state.setGpr(1, a);
    state.setGpr(2, b);

    step(makeR(Op::DIVU, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), b == 0 ? ~0ull : a / b);
    step(makeR(Op::REMU, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), b == 0 ? a : a % b);

    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    step(makeR(Op::DIV, 3, 1, 2));
    std::int64_t quotient;
    if (sb == 0) {
      quotient = -1;
    } else if (sa == std::numeric_limits<std::int64_t>::min() && sb == -1) {
      quotient = sa;
    } else {
      quotient = sa / sb;
    }
    EXPECT_EQ(static_cast<std::int64_t>(state.gpr(3)), quotient);
  }
}

TEST_F(Rv64Property, BranchPredicatesMatchComparisons) {
  const std::uint64_t values[] = {0, 1, 2, 0x7fffffffffffffffull,
                                  0x8000000000000000ull, ~0ull};
  for (const std::uint64_t a : values) {
    for (const std::uint64_t b : values) {
      struct Case {
        Op op;
        bool expected;
      };
      const Case cases[] = {
          {Op::BEQ, a == b},
          {Op::BNE, a != b},
          {Op::BLT, static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)},
          {Op::BGE,
           static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b)},
          {Op::BLTU, a < b},
          {Op::BGEU, a >= b},
      };
      for (const Case& c : cases) {
        state.pc = 0x1000;
        state.setGpr(1, a);
        state.setGpr(2, b);
        step(makeB(c.op, 1, 2, 0x40));
        EXPECT_EQ(state.pc == 0x1040u, c.expected)
            << opInfo(c.op).mnemonic << " " << a << " " << b;
      }
    }
  }
}

TEST_F(Rv64Property, SltFamilyMatchesComparisons) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    state.setGpr(1, a);
    state.setGpr(2, b);
    step(makeR(Op::SLT, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), static_cast<std::int64_t>(a) <
                                    static_cast<std::int64_t>(b)
                                ? 1u
                                : 0u);
    step(makeR(Op::SLTU, 3, 1, 2));
    EXPECT_EQ(state.gpr(3), a < b ? 1u : 0u);
  }
}

TEST_F(Rv64Property, FpArithmeticMatchesHostDoubles) {
  std::mt19937_64 rng(12);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (int trial = 0; trial < 200; ++trial) {
    const double a = dist(rng);
    const double b = dist(rng);
    const double c = dist(rng);
    state.setFprD(1, a);
    state.setFprD(2, b);
    state.setFprD(3, c);

    step(makeR(Op::FADD_D, 4, 1, 2));
    EXPECT_EQ(state.fprD(4), a + b);
    step(makeR(Op::FSUB_D, 4, 1, 2));
    EXPECT_EQ(state.fprD(4), a - b);
    step(makeR(Op::FMUL_D, 4, 1, 2));
    EXPECT_EQ(state.fprD(4), a * b);
    step(makeR(Op::FDIV_D, 4, 1, 2));
    EXPECT_EQ(state.fprD(4), a / b);
    step(makeR4(Op::FMADD_D, 4, 1, 2, 3));
    EXPECT_EQ(state.fprD(4), std::fma(a, b, c));
    step(makeR4(Op::FNMADD_D, 4, 1, 2, 3));
    EXPECT_EQ(state.fprD(4), std::fma(-a, b, -c));
  }
}

}  // namespace
}  // namespace riscmp::rv64
