#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "riscv/asm.hpp"
#include "riscv/decode.hpp"
#include "riscv/encode.hpp"
#include "riscv/exec.hpp"

namespace riscmp::rv64 {
namespace {

class Rv64ExecTest : public ::testing::Test {
 protected:
  Rv64ExecTest() : memory(1 << 20) { state.pc = 0x1000; }

  RetiredInst step(const Inst& inst, Trap expected = Trap::None) {
    RetiredInst retired;
    retired.pc = state.pc;
    const Trap trap = execute(inst, state, memory, retired);
    EXPECT_EQ(trap, expected);
    return retired;
  }

  State state;
  Memory memory;
};

TEST_F(Rv64ExecTest, AddiAndZeroRegister) {
  step(makeI(Op::ADDI, 5, 0, 42));
  EXPECT_EQ(state.gpr(5), 42u);
  // Writes to x0 are discarded.
  step(makeI(Op::ADDI, 0, 5, 1));
  EXPECT_EQ(state.gpr(0), 0u);
  EXPECT_EQ(state.pc, 0x1008u);
}

TEST_F(Rv64ExecTest, ZeroRegisterNotRecordedAsDependency) {
  const RetiredInst r = step(makeI(Op::ADDI, 5, 0, 1));
  EXPECT_TRUE(r.srcs.empty());
  ASSERT_EQ(r.dsts.size(), 1u);
  EXPECT_EQ(r.dsts[0], Reg::gp(5));

  const RetiredInst r2 = step(makeI(Op::ADDI, 0, 0, 0));  // nop
  EXPECT_TRUE(r2.srcs.empty());
  EXPECT_TRUE(r2.dsts.empty());
}

TEST_F(Rv64ExecTest, LuiAuipc) {
  step(makeU(Op::LUI, 5, 0x12345000));
  EXPECT_EQ(state.gpr(5), 0x12345000u);
  step(makeU(Op::AUIPC, 6, 0x1000));
  EXPECT_EQ(state.gpr(6), 0x1004u + 0x1000u);
}

TEST_F(Rv64ExecTest, NegativeLuiSignExtends) {
  step(makeU(Op::LUI, 5, static_cast<std::int64_t>(-4096)));
  EXPECT_EQ(state.gpr(5), 0xfffffffffffff000ull);
}

TEST_F(Rv64ExecTest, BranchesTakenAndNot) {
  state.setGpr(1, 5);
  state.setGpr(2, 5);
  const RetiredInst taken = step(makeB(Op::BEQ, 1, 2, 16));
  EXPECT_TRUE(taken.isBranch);
  EXPECT_TRUE(taken.branchTaken);
  EXPECT_EQ(taken.branchTarget, 0x1010u);
  EXPECT_EQ(state.pc, 0x1010u);

  const RetiredInst notTaken = step(makeB(Op::BNE, 1, 2, 16));
  EXPECT_TRUE(notTaken.isBranch);
  EXPECT_FALSE(notTaken.branchTaken);
  EXPECT_EQ(state.pc, 0x1014u);
}

TEST_F(Rv64ExecTest, SignedUnsignedBranches) {
  state.setGpr(1, static_cast<std::uint64_t>(-1));
  state.setGpr(2, 1);
  step(makeB(Op::BLT, 1, 2, 8));
  EXPECT_EQ(state.pc, 0x1008u);  // -1 < 1 signed: taken
  step(makeB(Op::BLTU, 1, 2, 8));
  EXPECT_EQ(state.pc, 0x100cu);  // 0xfff... < 1 unsigned: not taken
}

TEST_F(Rv64ExecTest, JalJalrLinkage) {
  step(makeJ(Op::JAL, 1, 0x100));
  EXPECT_EQ(state.gpr(1), 0x1004u);
  EXPECT_EQ(state.pc, 0x1100u);
  state.setGpr(5, 0x2001);  // low bit must be cleared by jalr
  step(makeI(Op::JALR, 1, 5, 0));
  EXPECT_EQ(state.gpr(1), 0x1104u);
  EXPECT_EQ(state.pc, 0x2000u);
}

TEST_F(Rv64ExecTest, LoadStoreWidthsAndExtension) {
  memory.write<std::uint64_t>(0x200, 0xdeadbeefcafef00dull);
  state.setGpr(1, 0x200);

  step(makeI(Op::LB, 2, 1, 0));
  EXPECT_EQ(state.gpr(2), 0x0dull);
  step(makeI(Op::LB, 2, 1, 1));
  EXPECT_EQ(state.gpr(2), 0xfffffffffffffff0ull);  // sign-extended 0xf0
  step(makeI(Op::LBU, 2, 1, 1));
  EXPECT_EQ(state.gpr(2), 0xf0ull);
  step(makeI(Op::LH, 2, 1, 0));
  EXPECT_EQ(state.gpr(2), 0xfffffffffffff00dull);
  step(makeI(Op::LHU, 2, 1, 0));
  EXPECT_EQ(state.gpr(2), 0xf00dull);
  step(makeI(Op::LW, 2, 1, 4));
  EXPECT_EQ(state.gpr(2), 0xffffffffdeadbeefull);
  step(makeI(Op::LWU, 2, 1, 4));
  EXPECT_EQ(state.gpr(2), 0xdeadbeefull);
  step(makeI(Op::LD, 2, 1, 0));
  EXPECT_EQ(state.gpr(2), 0xdeadbeefcafef00dull);

  state.setGpr(3, 0x1122334455667788ull);
  step(makeS(Op::SB, 3, 1, 8));
  EXPECT_EQ(memory.read<std::uint8_t>(0x208), 0x88);
  step(makeS(Op::SH, 3, 1, 10));
  EXPECT_EQ(memory.read<std::uint16_t>(0x20a), 0x7788);
  step(makeS(Op::SW, 3, 1, 12));
  EXPECT_EQ(memory.read<std::uint32_t>(0x20c), 0x55667788u);
  step(makeS(Op::SD, 3, 1, 16));
  EXPECT_EQ(memory.read<std::uint64_t>(0x210), 0x1122334455667788ull);
}

TEST_F(Rv64ExecTest, MemAccessesRecorded) {
  state.setGpr(1, 0x300);
  const RetiredInst load = step(makeI(Op::LD, 2, 1, 8));
  ASSERT_EQ(load.loads.size(), 1u);
  EXPECT_EQ(load.loads[0], (MemAccess{0x308, 8}));
  EXPECT_TRUE(load.stores.empty());

  const RetiredInst store = step(makeS(Op::SW, 2, 1, 4));
  ASSERT_EQ(store.stores.size(), 1u);
  EXPECT_EQ(store.stores[0], (MemAccess{0x304, 4}));
}

TEST_F(Rv64ExecTest, WordArithmeticSignExtends) {
  state.setGpr(1, 0x7fffffff);
  step(makeI(Op::ADDIW, 2, 1, 1));
  EXPECT_EQ(state.gpr(2), 0xffffffff80000000ull);
  state.setGpr(3, 1);
  state.setGpr(4, 0xffffffffull);
  step(makeR(Op::ADDW, 5, 3, 4));
  EXPECT_EQ(state.gpr(5), 0u);
}

TEST_F(Rv64ExecTest, ShiftSemantics) {
  state.setGpr(1, 0x8000000000000000ull);
  step(makeI(Op::SRAI, 2, 1, 63));
  EXPECT_EQ(state.gpr(2), ~0ull);
  step(makeI(Op::SRLI, 2, 1, 63));
  EXPECT_EQ(state.gpr(2), 1u);
  state.setGpr(3, 0x80000000ull);
  step(makeI(Op::SRAIW, 4, 3, 31));
  EXPECT_EQ(state.gpr(4), ~0ull);
}

TEST_F(Rv64ExecTest, MultiplyHighVariants) {
  state.setGpr(1, 0xffffffffffffffffull);  // -1
  state.setGpr(2, 0xffffffffffffffffull);
  step(makeR(Op::MULH, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 0u);  // (-1)*(-1) high = 0
  step(makeR(Op::MULHU, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 0xfffffffffffffffeull);
  step(makeR(Op::MULHSU, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 0xffffffffffffffffull);
  step(makeR(Op::MUL, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 1u);
}

TEST_F(Rv64ExecTest, DivisionEdgeCases) {
  state.setGpr(1, 42);
  state.setGpr(2, 0);
  step(makeR(Op::DIV, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), ~0ull);  // div by zero -> -1
  step(makeR(Op::DIVU, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), ~0ull);
  step(makeR(Op::REM, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 42u);  // rem by zero -> dividend
  step(makeR(Op::REMU, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 42u);

  state.setGpr(1, 0x8000000000000000ull);  // INT64_MIN
  state.setGpr(2, ~0ull);                  // -1
  step(makeR(Op::DIV, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 0x8000000000000000ull);  // overflow -> dividend
  step(makeR(Op::REM, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 0u);
}

TEST_F(Rv64ExecTest, DoubleArithmetic) {
  state.setFprD(1, 3.0);
  state.setFprD(2, 4.0);
  step(makeR(Op::FMUL_D, 3, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(3), 12.0);
  step(makeR(Op::FDIV_D, 3, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(3), 0.75);
  state.setFprD(4, 2.0);
  step(makeR4(Op::FMADD_D, 5, 1, 2, 4));
  EXPECT_DOUBLE_EQ(state.fprD(5), 14.0);
  step(makeR4(Op::FNMSUB_D, 5, 1, 2, 4));
  EXPECT_DOUBLE_EQ(state.fprD(5), -10.0);
  step(makeR(Op::FSQRT_D, 6, 2, 0));
  EXPECT_DOUBLE_EQ(state.fprD(6), 2.0);
}

TEST_F(Rv64ExecTest, FpMinMaxNanHandling) {
  state.setFprD(1, std::numeric_limits<double>::quiet_NaN());
  state.setFprD(2, 7.0);
  step(makeR(Op::FMIN_D, 3, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(3), 7.0);  // number beats NaN
  step(makeR(Op::FMAX_D, 3, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(3), 7.0);
  state.setFprD(4, -0.0);
  state.setFprD(5, +0.0);
  step(makeR(Op::FMIN_D, 3, 4, 5));
  EXPECT_TRUE(std::signbit(state.fprD(3)));
  step(makeR(Op::FMAX_D, 3, 4, 5));
  EXPECT_FALSE(std::signbit(state.fprD(3)));
}

TEST_F(Rv64ExecTest, FpCompares) {
  state.setFprD(1, 1.0);
  state.setFprD(2, 2.0);
  step(makeR(Op::FLT_D, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 1u);
  step(makeR(Op::FLE_D, 3, 2, 1));
  EXPECT_EQ(state.gpr(3), 0u);
  state.setFprD(4, std::numeric_limits<double>::quiet_NaN());
  step(makeR(Op::FEQ_D, 3, 4, 4));
  EXPECT_EQ(state.gpr(3), 0u);  // NaN != NaN
}

TEST_F(Rv64ExecTest, FpConversionSaturation) {
  state.setFprD(1, 1e30);
  step(makeR(Op::FCVT_W_D, 2, 1, 0));
  EXPECT_EQ(static_cast<std::int32_t>(state.gpr(2)),
            std::numeric_limits<std::int32_t>::max());
  state.setFprD(1, -1e30);
  step(makeR(Op::FCVT_L_D, 2, 1, 0));
  EXPECT_EQ(static_cast<std::int64_t>(state.gpr(2)),
            std::numeric_limits<std::int64_t>::min());
  state.setFprD(1, std::numeric_limits<double>::quiet_NaN());
  step(makeR(Op::FCVT_W_D, 2, 1, 0));
  EXPECT_EQ(static_cast<std::int32_t>(state.gpr(2)),
            std::numeric_limits<std::int32_t>::max());
  state.setFprD(1, -3.9);
  step(makeR(Op::FCVT_W_D, 2, 1, 0));
  EXPECT_EQ(static_cast<std::int32_t>(state.gpr(2)), -3);  // truncates
}

TEST_F(Rv64ExecTest, IntToFpConversions) {
  state.setGpr(1, static_cast<std::uint64_t>(-7));
  step(makeR(Op::FCVT_D_L, 2, 1, 0));
  EXPECT_DOUBLE_EQ(state.fprD(2), -7.0);
  step(makeR(Op::FCVT_D_LU, 2, 1, 0));
  EXPECT_DOUBLE_EQ(state.fprD(2),
                   static_cast<double>(0xfffffffffffffff9ull));
}

TEST_F(Rv64ExecTest, SinglePrecisionNanBoxing) {
  state.setFprS(1, 1.5f);
  EXPECT_EQ(state.f[1] >> 32, 0xffffffffu);  // NaN-boxed
  EXPECT_FLOAT_EQ(state.fprS(1), 1.5f);
  // Reading a non-boxed value as single yields NaN.
  state.setFprD(2, 1.0);
  EXPECT_TRUE(std::isnan(state.fprS(2)));
}

TEST_F(Rv64ExecTest, FsgnjFamily) {
  state.setFprD(1, 3.0);
  state.setFprD(2, -5.0);
  step(makeR(Op::FSGNJ_D, 3, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(3), -3.0);
  step(makeR(Op::FSGNJN_D, 3, 1, 2));
  EXPECT_DOUBLE_EQ(state.fprD(3), 3.0);
  step(makeR(Op::FSGNJX_D, 3, 2, 2));
  EXPECT_DOUBLE_EQ(state.fprD(3), 5.0);  // fabs
}

TEST_F(Rv64ExecTest, FmvMovesRawBits) {
  state.setGpr(1, 0x3ff0000000000000ull);  // bits of 1.0
  step(makeR(Op::FMV_D_X, 2, 1, 0));
  EXPECT_DOUBLE_EQ(state.fprD(2), 1.0);
  step(makeR(Op::FMV_X_D, 3, 2, 0));
  EXPECT_EQ(state.gpr(3), 0x3ff0000000000000ull);
}

TEST_F(Rv64ExecTest, EcallEbreakTrap) {
  step(Inst{.op = Op::ECALL}, Trap::Ecall);
  step(Inst{.op = Op::EBREAK}, Trap::Ebreak);
}

TEST_F(Rv64ExecTest, AmoAddSwap) {
  memory.write<std::uint64_t>(0x400, 100);
  state.setGpr(1, 0x400);
  state.setGpr(2, 5);
  const RetiredInst amo = step(makeR(Op::AMOADD_D, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 100u);
  EXPECT_EQ(memory.read<std::uint64_t>(0x400), 105u);
  EXPECT_EQ(amo.loads.size(), 1u);
  EXPECT_EQ(amo.stores.size(), 1u);

  step(makeR(Op::AMOSWAP_D, 3, 1, 2));
  EXPECT_EQ(state.gpr(3), 105u);
  EXPECT_EQ(memory.read<std::uint64_t>(0x400), 5u);
}

TEST_F(Rv64ExecTest, LrScAlwaysSucceedSingleHart) {
  memory.write<std::uint32_t>(0x500, 7);
  state.setGpr(1, 0x500);
  step(makeR(Op::LR_W, 2, 1, 0));
  EXPECT_EQ(state.gpr(2), 7u);
  state.setGpr(3, 9);
  step(makeR(Op::SC_W, 4, 1, 3));
  EXPECT_EQ(state.gpr(4), 0u);  // success
  EXPECT_EQ(memory.read<std::uint32_t>(0x500), 9u);
}

TEST_F(Rv64ExecTest, CsrReadWrite) {
  state.setGpr(1, 0x1f);
  step(makeI(Op::CSRRW, 2, 1, 0x003));  // fcsr
  EXPECT_EQ(state.fcsr, 0x1fu);
  EXPECT_EQ(state.gpr(2), 0u);  // old value
  step(makeI(Op::CSRRS, 3, 0, 0x003));
  EXPECT_EQ(state.gpr(3), 0x1fu);
}

TEST_F(Rv64ExecTest, MemoryFaultOnOutOfRange) {
  state.setGpr(1, memory.size() + 0x1000);
  EXPECT_THROW(step(makeI(Op::LD, 2, 1, 0)), MemoryFault);
}

// Integration: run an assembled program computing 10+9+...+1 via a loop.
TEST_F(Rv64ExecTest, AssembledLoopProgram) {
  const auto words = assemble(
      "  li a0, 0\n"
      "  li a1, 10\n"
      "loop:\n"
      "  add a0, a0, a1\n"
      "  addi a1, a1, -1\n"
      "  bnez a1, loop\n"
      "  ecall\n",
      0x1000);
  for (std::size_t i = 0; i < words.size(); ++i) {
    memory.write<std::uint32_t>(0x1000 + i * 4, words[i]);
  }
  state.pc = 0x1000;
  int executed = 0;
  for (;;) {
    ASSERT_LT(++executed, 1000) << "program did not terminate";
    const std::uint32_t word = memory.read<std::uint32_t>(state.pc);
    const auto inst = decode(word);
    ASSERT_TRUE(inst.has_value());
    RetiredInst retired;
    if (execute(*inst, state, memory, retired) == Trap::Ecall) break;
  }
  EXPECT_EQ(state.gpr(10), 55u);
}

}  // namespace
}  // namespace riscmp::rv64
