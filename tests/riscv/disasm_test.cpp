#include <gtest/gtest.h>

#include "riscv/disasm.hpp"
#include "riscv/encode.hpp"

namespace riscmp::rv64 {
namespace {

TEST(Rv64Disasm, PaperListing2CopyKernel) {
  // The rv64g STREAM copy kernel from the paper's Listing 2.
  EXPECT_EQ(disassemble(makeI(Op::FLD, 15, 15, 0)), "fld fa5, 0(a5)");
  EXPECT_EQ(disassemble(makeS(Op::FSD, 15, 14, 0)), "fsd fa5, 0(a4)");
  EXPECT_EQ(disassemble(makeI(Op::ADDI, 15, 15, 8)), "addi a5, a5, 8");
  EXPECT_EQ(disassemble(makeI(Op::ADDI, 14, 14, 8)), "addi a4, a4, 8");
  EXPECT_EQ(disassemble(makeB(Op::BNE, 15, 8, -16), 0x10dfc),
            "bne a5, s0, 0x10dec");
}

TEST(Rv64Disasm, RTypeOperands) {
  EXPECT_EQ(disassemble(makeR(Op::ADD, 10, 11, 12)), "add a0, a1, a2");
  EXPECT_EQ(disassemble(makeR(Op::FADD_D, 10, 11, 12)),
            "fadd.d fa0, fa1, fa2");
  EXPECT_EQ(disassemble(makeR4(Op::FMADD_D, 0, 1, 2, 3)),
            "fmadd.d ft0, ft1, ft2, ft3");
}

TEST(Rv64Disasm, Immediates) {
  EXPECT_EQ(disassemble(makeI(Op::ADDI, 5, 6, -42)), "addi t0, t1, -42");
  EXPECT_EQ(disassemble(makeI(Op::SLLI, 5, 6, 3)), "slli t0, t1, 3");
  EXPECT_EQ(disassemble(makeU(Op::LUI, 10, 0x12345000)), "lui a0, 0x12345");
}

TEST(Rv64Disasm, JumpsAndBranches) {
  EXPECT_EQ(disassemble(makeJ(Op::JAL, 0, -8), 0x100), "jal 0xf8");
  EXPECT_EQ(disassemble(makeJ(Op::JAL, 1, 16), 0x100), "jal ra, 0x110");
  EXPECT_EQ(disassemble(makeI(Op::JALR, 0, 1, 0)), "jalr zero, 0(ra)");
}

TEST(Rv64Disasm, LoadsAndStores) {
  EXPECT_EQ(disassemble(makeI(Op::LD, 10, 2, 16)), "ld a0, 16(sp)");
  EXPECT_EQ(disassemble(makeS(Op::SW, 7, 8, -4)), "sw t2, -4(s0)");
}

TEST(Rv64Disasm, UndecodableWord) {
  EXPECT_EQ(disassemble(std::uint32_t{0}, 0), ".word 0x0");
}

TEST(Rv64Disasm, RawWordOverload) {
  EXPECT_EQ(disassemble(std::uint32_t{0x00c58533}, 0), "add a0, a1, a2");
}

}  // namespace
}  // namespace riscmp::rv64
