// Encode→decode→disasm→re-assemble round-trip fuzzing, RV64 (ISSUE 3).
//
// Every 32-bit word either rejects cleanly at decode or survives the full
// round trip: decode → disassemble → assemble → re-decode must reproduce
// the word (or an alias that disassembles identically). Divergence means a
// printer/parser mismatch; Unclassified means an exception escaped the
// taxonomy. Two corpora: 10k seeded random words (mostly invalid — probes
// the decoder's reject paths), and every word of compiled kernels under
// both eras (all valid — probes the full printer/parser surface).
#include <gtest/gtest.h>

#include "kgen/compile.hpp"
#include "verify/differential.hpp"
#include "verify/injector.hpp"  // SplitMix64
#include "workloads/workloads.hpp"

namespace riscmp {
namespace {

constexpr Arch kArch = Arch::Rv64;
constexpr std::uint64_t kRandomWords = 10000;

bool roundTripsClean(const verify::Outcome& outcome) {
  return outcome.kind == verify::OutcomeKind::ValidDecode ||
         outcome.kind == verify::OutcomeKind::DecodeFault;
}

TEST(Rv64RoundTripFuzz, RandomWordsNeverDiverge) {
  verify::SplitMix64 rng(0x5eed0001);
  std::uint64_t decoded = 0;
  for (std::uint64_t i = 0; i < kRandomWords; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    const verify::Outcome outcome = verify::classifyWord(kArch, word);
    ASSERT_TRUE(roundTripsClean(outcome))
        << "word " << std::hex << word << ": " << outcome.detail;
    if (outcome.kind == verify::OutcomeKind::ValidDecode) ++decoded;
  }
  EXPECT_GT(decoded, 0u) << "corpus never hit a valid encoding";
}

// Regression: auipc/lui with a field >= 0x80000 disassembles as an unsigned
// 20-bit value ("auipc t3, 0xc7216") that the assembler used to reject as
// out of range — the parser now sign-extends the field like the decoder.
TEST(Rv64RoundTripFuzz, HighUTypeFieldRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0xc7216e17u);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

// Regression: jal with rd = x0 disassembles with the rd omitted
// ("jal 521690"), which the assembler used to reject as an operand-count
// mismatch — it now accepts the one-operand spelling back as rd = x0.
TEST(Rv64RoundTripFuzz, ZeroRdJalRoundTrips) {
  const verify::Outcome outcome = verify::classifyWord(kArch, 0x5da7f06fu);
  EXPECT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode) << outcome.detail;
}

TEST(Rv64RoundTripFuzz, CompiledCorpusRoundTripsExactly) {
  const kgen::Module stream = workloads::makeStream({.n = 64, .reps = 1});
  for (const auto era : {kgen::CompilerEra::Gcc9, kgen::CompilerEra::Gcc12}) {
    const kgen::Compiled compiled = kgen::compile(stream, kArch, era);
    for (const std::uint32_t word : compiled.program.code) {
      const verify::Outcome outcome = verify::classifyWord(kArch, word);
      ASSERT_EQ(outcome.kind, verify::OutcomeKind::ValidDecode)
          << "word " << std::hex << word << ": " << outcome.detail;
    }
  }
}

}  // namespace
}  // namespace riscmp
