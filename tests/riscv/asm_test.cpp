#include <gtest/gtest.h>

#include "riscv/asm.hpp"
#include "riscv/disasm.hpp"
#include "riscv/encode.hpp"

namespace riscmp::rv64 {
namespace {

TEST(Rv64Asm, BasicInstructions) {
  const auto words = assemble(
      "add a0, a1, a2\n"
      "addi t0, t0, -1\n"
      "ld a5, 8(sp)\n"
      "sd a5, 16(s0)\n"
      "fld fa5, 0(a5)\n"
      "fsd fa5, 0(a4)\n");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(words[0], encode(makeR(Op::ADD, 10, 11, 12)));
  EXPECT_EQ(words[1], encode(makeI(Op::ADDI, 5, 5, -1)));
  EXPECT_EQ(words[2], encode(makeI(Op::LD, 15, 2, 8)));
  EXPECT_EQ(words[3], encode(makeS(Op::SD, 15, 8, 16)));
  EXPECT_EQ(words[4], encode(makeI(Op::FLD, 15, 15, 0)));
  EXPECT_EQ(words[5], encode(makeS(Op::FSD, 15, 14, 0)));
}

TEST(Rv64Asm, LabelsResolveBothDirections) {
  const auto words = assemble(
      "top:\n"
      "  addi a0, a0, 1\n"
      "  bne a0, a1, top\n"
      "  beq a0, a1, done\n"
      "  nop\n"
      "done:\n"
      "  ecall\n");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[1], encode(makeB(Op::BNE, 10, 11, -4)));
  EXPECT_EQ(words[2], encode(makeB(Op::BEQ, 10, 11, 8)));
}

TEST(Rv64Asm, NumericRegisterNames) {
  const auto words = assemble("add x10, x11, x12\n");
  EXPECT_EQ(words[0], encode(makeR(Op::ADD, 10, 11, 12)));
}

TEST(Rv64Asm, PseudoInstructions) {
  const auto words = assemble(
      "nop\n"
      "mv a0, a1\n"
      "li a2, 42\n"
      "neg a3, a4\n"
      "j 8\n"
      "ret\n"
      "beqz a0, 8\n"
      "bnez a0, 8\n"
      "seqz a1, a2\n");
  ASSERT_EQ(words.size(), 9u);
  EXPECT_EQ(words[0], encode(makeI(Op::ADDI, 0, 0, 0)));
  EXPECT_EQ(words[1], encode(makeI(Op::ADDI, 10, 11, 0)));
  EXPECT_EQ(words[2], encode(makeI(Op::ADDI, 12, 0, 42)));
  EXPECT_EQ(words[3], encode(makeR(Op::SUB, 13, 0, 14)));
  EXPECT_EQ(words[4], encode(makeJ(Op::JAL, 0, 8)));
  EXPECT_EQ(words[5], encode(makeI(Op::JALR, 0, 1, 0)));
  EXPECT_EQ(words[6], encode(makeB(Op::BEQ, 10, 0, 8)));
  EXPECT_EQ(words[7], encode(makeB(Op::BNE, 10, 0, 8)));
  EXPECT_EQ(words[8], encode(makeI(Op::SLTIU, 11, 12, 1)));
}

TEST(Rv64Asm, LiWideExpandsToLuiAddiw) {
  const auto words = assemble("li a0, 0x12345678\n");
  ASSERT_EQ(words.size(), 2u);
  // lui then addiw; the pair must reconstruct the constant (checked in the
  // executor integration test below as well).
  EXPECT_EQ(words[0] & 0x7fu, 0x37u);
  EXPECT_EQ(words[1] & 0x7fu, 0x1bu);
}

TEST(Rv64Asm, LabelAddressesAccountForPseudoExpansion) {
  const auto words = assemble(
      "  li a0, 0x12345678\n"  // expands to two words
      "  beqz a0, done\n"
      "done:\n"
      "  ecall\n");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[2], encode(makeB(Op::BEQ, 10, 0, 4)));
}

TEST(Rv64Asm, CommentsIgnored) {
  const auto words = assemble("# full comment line\nadd a0, a0, a0 # tail\n");
  ASSERT_EQ(words.size(), 1u);
}

TEST(Rv64Asm, Errors) {
  EXPECT_THROW(assemble("bogus a0, a1\n"), AsmError);
  EXPECT_THROW(assemble("add a0, a1\n"), AsmError);            // arity
  EXPECT_THROW(assemble("add a0, a1, q9\n"), AsmError);        // register
  EXPECT_THROW(assemble("beq a0, a1, nowhere\n"), AsmError);   // label
  EXPECT_THROW(assemble("ld a0, 8(sp\n"), AsmError);           // parens
  EXPECT_THROW(assemble("addi a0, a0, 99999\n"), EncodeError); // range
}

TEST(Rv64Asm, RoundTripsThroughDisassembler) {
  const char* source =
      "fld fa5, 0(a5)\n"
      "fsd fa5, 0(a4)\n"
      "addi a5, a5, 8\n"
      "addi a4, a4, 8\n"
      "bne a5, s0, -16\n";
  const auto words = assemble(source);
  std::string rebuilt;
  for (const auto word : words) {
    rebuilt += disassemble(word, 0) + "\n";
  }
  EXPECT_EQ(rebuilt, source);
}

}  // namespace
}  // namespace riscmp::rv64
