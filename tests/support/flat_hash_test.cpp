#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "support/flat_hash.hpp"

namespace riscmp {
namespace {

TEST(FlatHashMap64, FindOnEmptyReturnsNull) {
  FlatHashMap64<std::uint64_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatHashMap64, AssignInsertsAndOverwrites) {
  FlatHashMap64<std::uint64_t> map;
  map.assign(7, 100);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 100u);
  map.assign(7, 200);
  EXPECT_EQ(*map.find(7), 200u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap64, FindOrInsertReturnsExistingOrFallback) {
  FlatHashMap64<std::uint32_t> map;
  EXPECT_EQ(map.findOrInsert(5, 11), 11u);
  EXPECT_EQ(map.findOrInsert(5, 99), 11u);  // existing wins
  map.findOrInsert(5, 0) = 42;              // reference is writable
  EXPECT_EQ(*map.find(5), 42u);
}

TEST(FlatHashMap64, ZeroKeyIsAValidKey) {
  // Slot emptiness is a flag, not a sentinel key, so key 0 must work.
  FlatHashMap64<std::uint64_t> map;
  EXPECT_EQ(map.find(0), nullptr);
  map.assign(0, 123);
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 123u);
}

TEST(FlatHashMap64, GrowsPastInitialCapacityAndKeepsAllEntries) {
  FlatHashMap64<std::uint64_t> map;
  constexpr std::uint64_t kCount = 10000;
  for (std::uint64_t key = 0; key < kCount; ++key) {
    map.assign(key * 8, key);  // sequential chunk-style keys
  }
  EXPECT_EQ(map.size(), kCount);
  for (std::uint64_t key = 0; key < kCount; ++key) {
    const std::uint64_t* found = map.find(key * 8);
    ASSERT_NE(found, nullptr) << "key " << key * 8;
    EXPECT_EQ(*found, key);
  }
  EXPECT_EQ(map.find(kCount * 8), nullptr);
}

TEST(FlatHashMap64, FindOrInsertSurvivesRehash) {
  FlatHashMap64<std::uint32_t> map;
  // Drive growth through findOrInsert only (the windowed-CP usage pattern:
  // value is a dense id equal to the insertion-order count).
  constexpr std::uint32_t kCount = 5000;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const std::uint32_t id =
        map.findOrInsert(0x20000 + 8ull * i, static_cast<std::uint32_t>(map.size()));
    EXPECT_EQ(id, i);
  }
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(map.findOrInsert(0x20000 + 8ull * i, 0xffffffffu), i);
  }
}

TEST(FlatHashMap64, ClearRemovesEverythingButKeepsWorking) {
  FlatHashMap64<std::uint64_t> map;
  for (std::uint64_t key = 0; key < 100; ++key) map.assign(key, key);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(50), nullptr);
  map.assign(50, 7);
  EXPECT_EQ(*map.find(50), 7u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap64, MatchesUnorderedMapUnderMixedOperations) {
  // Pseudo-random mixed workload cross-checked against std::unordered_map.
  FlatHashMap64<std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  std::uint64_t state = 0x123456789abcdefull;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t key = (state >> 33) % 4096;  // force collisions
    if ((state & 1) != 0) {
      map.assign(key, state);
      reference[key] = state;
    } else {
      const std::uint64_t* found = map.find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
  }
  EXPECT_EQ(map.size(), reference.size());
}

}  // namespace
}  // namespace riscmp
