// ConfigError provenance tests (ISSUE 1 satellite): malformed YAML must be
// rejected with the offending file, line, and key — never silently
// swallowed, never an unannotated std:: exception.
#include <gtest/gtest.h>

#include <string>

#include "support/fault.hpp"
#include "support/yaml_lite.hpp"

namespace riscmp {
namespace {

std::string fixture(const std::string& name) {
  return std::string(RISCMP_FIXTURE_DIR) + "/" + name;
}

TEST(ConfigErrorTest, WhatFormatsFileLineAndKey) {
  const ConfigError e("bad value", "core.yaml", 7, "rob_size");
  EXPECT_EQ(std::string(e.what()),
            "config error: core.yaml: line 7: key 'rob_size': bad value");
  EXPECT_EQ(e.file(), "core.yaml");
  EXPECT_EQ(e.line(), 7);
  EXPECT_EQ(e.key(), "rob_size");
  EXPECT_EQ(e.message(), "bad value");
}

TEST(ConfigErrorTest, WithFileAnnotatesOnlyOnce) {
  const ConfigError bare("oops", {}, 3);
  const ConfigError annotated = bare.withFile("a.yaml");
  EXPECT_EQ(annotated.file(), "a.yaml");
  // A second annotation must not overwrite the original provenance.
  EXPECT_EQ(annotated.withFile("b.yaml").file(), "a.yaml");
}

TEST(ConfigErrorTest, MissingFileNamesThePath) {
  try {
    yaml::parseFile(fixture("no_such_file.yaml"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(e.file().find("no_such_file.yaml"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cannot open file"),
              std::string::npos);
  }
}

TEST(ConfigErrorTest, TabIndentReportsFileAndLine) {
  try {
    yaml::parseFile(fixture("tab_indent.yaml"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(e.file().find("tab_indent.yaml"), std::string::npos);
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("tab indentation"),
              std::string::npos);
  }
}

TEST(ConfigErrorTest, DuplicateKeyReportsLineAndKey) {
  try {
    yaml::parseFile(fixture("duplicate_key.yaml"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.key(), "name");
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("duplicate key"), std::string::npos);
  }
}

TEST(ConfigErrorTest, ScalarConversionCarriesLineNumber) {
  const yaml::Node root = yaml::parse("a: 1\nb: not_a_number\n");
  try {
    (void)root.at("b").asDouble();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("not a number"), std::string::npos);
  }
}

TEST(ConfigErrorTest, MissingKeyNamesTheKey) {
  const yaml::Node root = yaml::parse("a: 1\n");
  try {
    (void)root.at("b");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.key(), "b");
    EXPECT_NE(std::string(e.what()).find("missing required key"),
              std::string::npos);
  }
}

TEST(ConfigErrorTest, ConfigErrorIsAFault) {
  // The taxonomy: ConfigError participates in the same catch hierarchy as
  // every other Fault, so the bench boundary classifies it.
  try {
    throw ConfigError("boom", "x.yaml", 1, "k");
  } catch (const Fault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Config);
    EXPECT_NE(fault.report().find("FAULT REPORT"), std::string::npos);
  }
}

}  // namespace
}  // namespace riscmp
