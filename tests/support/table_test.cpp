#include "support/table.hpp"

#include <gtest/gtest.h>

namespace riscmp {
namespace {

TEST(Format, WithCommas) {
  EXPECT_EQ(withCommas(std::uint64_t{0}), "0");
  EXPECT_EQ(withCommas(std::uint64_t{999}), "999");
  EXPECT_EQ(withCommas(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(withCommas(std::uint64_t{3350107615}), "3,350,107,615");
  EXPECT_EQ(withCommas(std::int64_t{-12345}), "-12,345");
}

TEST(Format, SigFigs) {
  EXPECT_EQ(sigFigs(5.0, 3), "5.00");
  EXPECT_EQ(sigFigs(0.023456, 3), "0.0235");  // rounds
  EXPECT_EQ(sigFigs(335.2, 3), "335");
  EXPECT_EQ(sigFigs(0.0, 3), "0");
}

TEST(Format, PercentDelta) {
  EXPECT_EQ(percentDelta(110.0, 100.0), "+10.0%");
  EXPECT_EQ(percentDelta(90.0, 100.0), "-10.0%");
  EXPECT_EQ(percentDelta(1.0, 0.0), "n/a");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"k", "v"});
  t.addRow({"with,comma", "with\"quote"});
  const std::string csv = t.renderCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, SeparatorInsertsRule) {
  Table t({"x"});
  t.addRow({"a"});
  t.addSeparator();
  t.addRow({"b"});
  const std::string out = t.render();
  // header rule + top + between-rows + bottom = 4 rules
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

}  // namespace
}  // namespace riscmp
