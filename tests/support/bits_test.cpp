#include "support/bits.hpp"

#include <gtest/gtest.h>

namespace riscmp {
namespace {

TEST(Bits, ExtractRange) {
  EXPECT_EQ(bits(0xdeadbeefu, 31u, 28u), 0xdu);
  EXPECT_EQ(bits(0xdeadbeefu, 3u, 0u), 0xfu);
  EXPECT_EQ(bits(0xdeadbeefu, 31u, 0u), 0xdeadbeefu);
  EXPECT_EQ(bits(std::uint64_t{0xff00}, 15u, 8u), 0xffu);
}

TEST(Bits, SingleBit) {
  EXPECT_EQ(bit(0b1000u, 3u), 1u);
  EXPECT_EQ(bit(0b1000u, 2u), 0u);
}

TEST(Bits, InsertBits) {
  EXPECT_EQ(insertBits(0, 11, 7, 0x1f), 0xf80u);
  EXPECT_EQ(insertBits(0xffffffffu, 11, 7, 0), 0xfffff07fu);
  // Values wider than the field are masked.
  EXPECT_EQ(insertBits(0, 3, 0, 0xff), 0xfu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(signExtend(0xfff, 12), -1);
  EXPECT_EQ(signExtend(0x7ff, 12), 2047);
  EXPECT_EQ(signExtend(0x800, 12), -2048);
  EXPECT_EQ(signExtend(0x0, 12), 0);
  EXPECT_EQ(signExtend(0xffffffff, 32), -1);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fitsSigned(2047, 12));
  EXPECT_TRUE(fitsSigned(-2048, 12));
  EXPECT_FALSE(fitsSigned(2048, 12));
  EXPECT_FALSE(fitsSigned(-2049, 12));
}

TEST(Bits, FitsUnsigned) {
  EXPECT_TRUE(fitsUnsigned(4095, 12));
  EXPECT_FALSE(fitsUnsigned(4096, 12));
  EXPECT_TRUE(fitsUnsigned(~0ull, 64));
}

TEST(Bits, Rotate) {
  EXPECT_EQ(rotateRight64(0x1, 1), 0x8000000000000000ull);
  EXPECT_EQ(rotateRight64(0xf0, 4), 0xf);
  EXPECT_EQ(rotateRight(0b0110, 1, 4), 0b0011u);
  EXPECT_EQ(rotateRight(0b0001, 1, 4), 0b1000u);
}

TEST(Bits, Replicate) {
  EXPECT_EQ(replicate(0b01, 2), 0x5555555555555555ull);
  EXPECT_EQ(replicate(0xff, 8), 0xffffffffffffffffull);
}

TEST(Bits, AlignUp) {
  EXPECT_EQ(alignUp(0, 8), 0u);
  EXPECT_EQ(alignUp(1, 8), 8u);
  EXPECT_EQ(alignUp(8, 8), 8u);
  EXPECT_EQ(alignUp(9, 16), 16u);
}

}  // namespace
}  // namespace riscmp
