#include "support/yaml_lite.hpp"

#include <gtest/gtest.h>

namespace riscmp::yaml {
namespace {

TEST(YamlLite, FlatMapping) {
  const Node root = parse("a: 1\nb: hello\nc: 2.5\n");
  EXPECT_TRUE(root.isMapping());
  EXPECT_EQ(root.at("a").asInt(), 1);
  EXPECT_EQ(root.at("b").asString(), "hello");
  EXPECT_DOUBLE_EQ(root.at("c").asDouble(), 2.5);
}

TEST(YamlLite, NestedMapping) {
  const Node root = parse(
      "core:\n"
      "  rob_size: 128\n"
      "  widths:\n"
      "    fetch: 4\n"
      "    commit: 4\n");
  EXPECT_EQ(root.at("core").at("rob_size").asInt(), 128);
  EXPECT_EQ(root.at("core").at("widths").at("commit").asInt(), 4);
}

TEST(YamlLite, BlockSequenceOfScalars) {
  const Node root = parse("sizes:\n  - 4\n  - 16\n  - 64\n");
  const Node& sizes = root.at("sizes");
  ASSERT_TRUE(sizes.isSequence());
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes.elements()[2].asInt(), 64);
}

TEST(YamlLite, BlockSequenceOfMappings) {
  const Node root = parse(
      "ports:\n"
      "  - name: p0\n"
      "    groups: [INT_SIMPLE, INT_MUL]\n"
      "  - name: p1\n"
      "    groups: [LOAD]\n");
  const Node& ports = root.at("ports");
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports.elements()[0].at("name").asString(), "p0");
  ASSERT_TRUE(ports.elements()[0].at("groups").isSequence());
  EXPECT_EQ(ports.elements()[0].at("groups").elements()[1].asString(),
            "INT_MUL");
  EXPECT_EQ(ports.elements()[1].at("name").asString(), "p1");
}

TEST(YamlLite, FlowSequence) {
  const Node root = parse("xs: [1, 2, 3]\nempty: []\n");
  EXPECT_EQ(root.at("xs").size(), 3u);
  EXPECT_EQ(root.at("empty").size(), 0u);
}

TEST(YamlLite, CommentsAndBlanks) {
  const Node root = parse(
      "# header comment\n"
      "\n"
      "a: 1  # trailing\n"
      "b: \"text # not a comment\"\n");
  EXPECT_EQ(root.at("a").asInt(), 1);
  EXPECT_EQ(root.at("b").asString(), "text # not a comment");
}

TEST(YamlLite, QuotedStrings) {
  const Node root = parse("a: 'single'\nb: \"double\"\n");
  EXPECT_EQ(root.at("a").asString(), "single");
  EXPECT_EQ(root.at("b").asString(), "double");
}

TEST(YamlLite, Booleans) {
  const Node root = parse("t: true\nf: off\n");
  EXPECT_TRUE(root.at("t").asBool());
  EXPECT_FALSE(root.at("f").asBool());
}

TEST(YamlLite, HexIntegers) {
  const Node root = parse("addr: 0x10000\n");
  EXPECT_EQ(root.at("addr").asInt(), 0x10000);
}

TEST(YamlLite, Fallbacks) {
  const Node root = parse("present: 7\n");
  EXPECT_EQ(root.getInt("present", 0), 7);
  EXPECT_EQ(root.getInt("absent", 42), 42);
  EXPECT_EQ(root.getString("absent", "x"), "x");
}

TEST(YamlLite, ErrorsCarryLineNumbers) {
  try {
    parse("a: 1\n\tb: 2\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(YamlLite, DuplicateKeyRejected) {
  EXPECT_THROW(parse("a: 1\na: 2\n"), std::runtime_error);
}

TEST(YamlLite, BadScalarConversions) {
  const Node root = parse("s: hello\n");
  EXPECT_THROW(static_cast<void>(root.at("s").asInt()), ConfigError);
  EXPECT_THROW(static_cast<void>(root.at("s").asDouble()), ConfigError);
  EXPECT_THROW(static_cast<void>(root.at("s").asBool()), ConfigError);
  try {
    static_cast<void>(root.at("missing"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.key(), "missing");
  }
}

TEST(YamlLite, KeyOrderPreserved) {
  const Node root = parse("z: 1\na: 2\nm: 3\n");
  const auto& items = root.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "z");
  EXPECT_EQ(items[1].first, "a");
  EXPECT_EQ(items[2].first, "m");
}

}  // namespace
}  // namespace riscmp::yaml
