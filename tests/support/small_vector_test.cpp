#include "support/small_vector.hpp"

#include <gtest/gtest.h>

namespace riscmp {
namespace {

TEST(SmallVector, StartsEmpty) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(SmallVector, PushAndIndex) {
  SmallVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  v.push_back(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVector, InitializerList) {
  SmallVector<int, 4> v = {5, 6};
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 6);
}

TEST(SmallVector, RangeFor) {
  SmallVector<int, 4> v = {1, 2, 3, 4};
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 10);
}

TEST(SmallVector, ClearResets) {
  SmallVector<int, 2> v = {1, 2};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(9);
  EXPECT_EQ(v[0], 9);
}

TEST(SmallVector, Equality) {
  SmallVector<int, 4> a = {1, 2};
  SmallVector<int, 4> b = {1, 2};
  SmallVector<int, 4> c = {1, 3};
  SmallVector<int, 4> d = {1};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

}  // namespace
}  // namespace riscmp
