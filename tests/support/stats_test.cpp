#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace riscmp {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, Variance) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  // Sample variance of 1..4 is 5/3.
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(RunningStats, StableOverManySamples) {
  RunningStats s;
  for (int i = 0; i < 1'000'000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(RunningStats, ResetReturnsToEmpty) {
  RunningStats s;
  for (const double x : {2.0, 4.0}) s.add(x);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
}

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(GeometricMean, SkipsNonPositiveAndNonFiniteInputs) {
  // A zero/negative/NaN ratio must not poison the aggregate (the report
  // layer warns and aggregates the rest).
  std::size_t aggregated = 0;
  EXPECT_NEAR(geometricMean({2.0, 0.0, 8.0}, &aggregated), 4.0, 1e-12);
  EXPECT_EQ(aggregated, 2u);
  EXPECT_NEAR(geometricMean({-1.0, 9.0}, &aggregated), 9.0, 1e-12);
  EXPECT_EQ(aggregated, 1u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(geometricMean({nan, inf, 5.0}, &aggregated), 5.0, 1e-12);
  EXPECT_EQ(aggregated, 1u);
}

TEST(GeometricMean, AllInputsInvalidYieldsZeroAndZeroCount) {
  std::size_t aggregated = 42;
  EXPECT_DOUBLE_EQ(geometricMean({0.0, -3.0}, &aggregated), 0.0);
  EXPECT_EQ(aggregated, 0u);
  EXPECT_DOUBLE_EQ(geometricMean({}, &aggregated), 0.0);
  EXPECT_EQ(aggregated, 0u);
}

}  // namespace
}  // namespace riscmp
