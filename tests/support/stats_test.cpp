#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace riscmp {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, Variance) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  // Sample variance of 1..4 is 5/3.
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(RunningStats, StableOverManySamples) {
  RunningStats s;
  for (int i = 0; i < 1'000'000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

}  // namespace
}  // namespace riscmp
