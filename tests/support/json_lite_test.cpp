// JsonValue: the journal/pipe document model (ISSUE 6).
#include <gtest/gtest.h>

#include "support/fault.hpp"
#include "support/json_lite.hpp"

namespace riscmp::support {
namespace {

TEST(JsonLite, RoundTripsNestedDocument) {
  JsonValue cell = JsonValue::object();
  cell.set("name", JsonValue("STREAM/GCC 9.2 AArch64"));
  cell.set("ok", JsonValue(true));
  cell.set("instructions", JsonValue(std::uint64_t{123456789}));
  JsonValue groups = JsonValue::array();
  groups.push(JsonValue(std::uint64_t{1}));
  groups.push(JsonValue(std::uint64_t{0}));
  cell.set("groups", groups);
  cell.set("fault", JsonValue());  // null

  const std::string bytes = cell.dump();
  EXPECT_EQ(bytes,
            "{\"name\":\"STREAM/GCC 9.2 AArch64\",\"ok\":true,"
            "\"instructions\":123456789,\"groups\":[1,0],\"fault\":null}");

  const JsonValue parsed = JsonValue::parse(bytes);
  EXPECT_EQ(parsed.dump(), bytes);  // byte-exact re-serialization
  EXPECT_EQ(parsed.at("instructions").asUint(), 123456789u);
  EXPECT_TRUE(parsed.at("ok").asBool());
  EXPECT_TRUE(parsed.at("fault").isNull());
  EXPECT_FALSE(parsed.has("missing"));
  EXPECT_TRUE(parsed.at("missing").isNull());
}

TEST(JsonLite, ObjectsEmitInInsertionOrder) {
  JsonValue a = JsonValue::object();
  a.set("z", JsonValue(std::uint64_t{1}));
  a.set("a", JsonValue(std::uint64_t{2}));
  EXPECT_EQ(a.dump(), "{\"z\":1,\"a\":2}");
}

TEST(JsonLite, EscapesControlAndQuoteBytes) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  const JsonValue v = JsonValue::parse("\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  EXPECT_EQ(v.asString(), std::string("a\"b\\c\nd\te\x01"));
}

TEST(JsonLite, MaxUint64RoundTrips) {
  JsonValue v(std::uint64_t{18446744073709551615ull});
  EXPECT_EQ(v.dump(), "18446744073709551615");
  EXPECT_EQ(JsonValue::parse(v.dump()).asUint(), 18446744073709551615ull);
}

TEST(JsonLite, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), ConfigError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1"), ConfigError);   // unterminated
  EXPECT_THROW(JsonValue::parse("{\"a\":1} x"), ConfigError);  // trailing
  EXPECT_THROW(JsonValue::parse("-1"), ConfigError);  // negative numbers
  EXPECT_THROW(JsonValue::parse("1.5"), ConfigError);  // no decimals
  EXPECT_THROW(JsonValue::parse("{'a':1}"), ConfigError);
}

TEST(JsonLite, TryParseProbesTornLinesWithoutThrowing) {
  EXPECT_FALSE(JsonValue::tryParse("{\"type\":\"cell\",\"na").has_value());
  const auto whole = JsonValue::tryParse("{\"type\":\"end\",\"cells\":20}");
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->at("cells").asUint(), 20u);
}

TEST(JsonLite, WrongKindAccessThrowsConfigError) {
  const JsonValue v = JsonValue::parse("{\"n\":7}");
  EXPECT_THROW((void)v.at("n").asString(), ConfigError);
  EXPECT_THROW((void)v.at("n").asBool(), ConfigError);
  EXPECT_THROW((void)v.items(), ConfigError);
}

}  // namespace
}  // namespace riscmp::support
