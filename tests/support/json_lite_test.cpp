// JsonValue: the journal/pipe document model (ISSUE 6).
#include <gtest/gtest.h>

#include "support/fault.hpp"
#include "support/json_lite.hpp"

namespace riscmp::support {
namespace {

TEST(JsonLite, RoundTripsNestedDocument) {
  JsonValue cell = JsonValue::object();
  cell.set("name", JsonValue("STREAM/GCC 9.2 AArch64"));
  cell.set("ok", JsonValue(true));
  cell.set("instructions", JsonValue(std::uint64_t{123456789}));
  JsonValue groups = JsonValue::array();
  groups.push(JsonValue(std::uint64_t{1}));
  groups.push(JsonValue(std::uint64_t{0}));
  cell.set("groups", groups);
  cell.set("fault", JsonValue());  // null

  const std::string bytes = cell.dump();
  EXPECT_EQ(bytes,
            "{\"name\":\"STREAM/GCC 9.2 AArch64\",\"ok\":true,"
            "\"instructions\":123456789,\"groups\":[1,0],\"fault\":null}");

  const JsonValue parsed = JsonValue::parse(bytes);
  EXPECT_EQ(parsed.dump(), bytes);  // byte-exact re-serialization
  EXPECT_EQ(parsed.at("instructions").asUint(), 123456789u);
  EXPECT_TRUE(parsed.at("ok").asBool());
  EXPECT_TRUE(parsed.at("fault").isNull());
  EXPECT_FALSE(parsed.has("missing"));
  EXPECT_TRUE(parsed.at("missing").isNull());
}

TEST(JsonLite, ObjectsEmitInInsertionOrder) {
  JsonValue a = JsonValue::object();
  a.set("z", JsonValue(std::uint64_t{1}));
  a.set("a", JsonValue(std::uint64_t{2}));
  EXPECT_EQ(a.dump(), "{\"z\":1,\"a\":2}");
}

TEST(JsonLite, EscapesControlAndQuoteBytes) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  const JsonValue v = JsonValue::parse("\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  EXPECT_EQ(v.asString(), std::string("a\"b\\c\nd\te\x01"));
}

// The simd protocol ships arbitrary fault text (file paths, YAML excerpts,
// compiler diagnostics) inside JSON strings; every byte below must survive
// dump -> parse unchanged or daemon-rendered reports would diverge from
// local ones.
TEST(JsonLite, EscapingRoundTripsHostileStrings) {
  const std::string cases[] = {
      std::string("quote\" backslash\\ slash/ both\\\""),
      std::string("tab\t newline\n return\r"),
      std::string("backspace\b formfeed\f"),
      std::string("nul\0byte", 8),
      std::string("\x01\x02\x03\x1e\x1f control run"),
      std::string("C:\\temp\\store\\v3\\ab\\cd.json"),
      std::string("line1\nline2\n  indented \"quoted\"\n"),
      std::string("caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97 \xf0\x9f\x94\xa5"),
      std::string(),  // empty string
  };
  for (const std::string& text : cases) {
    const JsonValue v(text);
    const std::string bytes = v.dump();
    EXPECT_EQ(JsonValue::parse(bytes).asString(), text)
        << "round-trip failed for dump: " << bytes;
    // Re-serialization is also a fixed point (store/digest stability).
    EXPECT_EQ(JsonValue::parse(bytes).dump(), bytes);
  }
}

TEST(JsonLite, EscapedStringsNestInsideDocuments) {
  JsonValue doc = JsonValue::object();
  doc.set("summary", JsonValue("fault: \"STREAM\"\n\tat line\\col 3"));
  JsonValue list = JsonValue::array();
  list.push(JsonValue(std::string("\x1b[31mred\x1b[0m")));
  doc.set("notes", list);
  const JsonValue back = JsonValue::parse(doc.dump());
  EXPECT_EQ(back.at("summary").asString(),
            "fault: \"STREAM\"\n\tat line\\col 3");
  EXPECT_EQ(back.at("notes").items()[0].asString(),
            std::string("\x1b[31mred\x1b[0m"));
}

TEST(JsonLite, MaxUint64RoundTrips) {
  JsonValue v(std::uint64_t{18446744073709551615ull});
  EXPECT_EQ(v.dump(), "18446744073709551615");
  EXPECT_EQ(JsonValue::parse(v.dump()).asUint(), 18446744073709551615ull);
}

TEST(JsonLite, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), ConfigError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1"), ConfigError);   // unterminated
  EXPECT_THROW(JsonValue::parse("{\"a\":1} x"), ConfigError);  // trailing
  EXPECT_THROW(JsonValue::parse("-1"), ConfigError);  // negative numbers
  EXPECT_THROW(JsonValue::parse("1.5"), ConfigError);  // no decimals
  EXPECT_THROW(JsonValue::parse("{'a':1}"), ConfigError);
}

TEST(JsonLite, TryParseProbesTornLinesWithoutThrowing) {
  EXPECT_FALSE(JsonValue::tryParse("{\"type\":\"cell\",\"na").has_value());
  const auto whole = JsonValue::tryParse("{\"type\":\"end\",\"cells\":20}");
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->at("cells").asUint(), 20u);
}

TEST(JsonLite, WrongKindAccessThrowsConfigError) {
  const JsonValue v = JsonValue::parse("{\"n\":7}");
  EXPECT_THROW((void)v.at("n").asString(), ConfigError);
  EXPECT_THROW((void)v.at("n").asBool(), ConfigError);
  EXPECT_THROW((void)v.items(), ConfigError);
}

}  // namespace
}  // namespace riscmp::support
