// writeFileAtomic: stage-and-rename artifact publication (ISSUE 6).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "support/atomic_file.hpp"

namespace riscmp::support {
namespace {

namespace fs = std::filesystem;

std::string readAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("riscmp-atomic-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(AtomicFileTest, CreatesNewFile) {
  const fs::path target = dir_ / "report.json";
  std::string error;
  ASSERT_TRUE(writeFileAtomic(target.string(), "{\"ok\":true}\n", &error))
      << error;
  EXPECT_EQ(readAll(target), "{\"ok\":true}\n");
}

TEST_F(AtomicFileTest, ReplacesExistingContentCompletely) {
  const fs::path target = dir_ / "digest.txt";
  ASSERT_TRUE(writeFileAtomic(target.string(),
                              std::string(4096, 'x') + "old-long-content"));
  ASSERT_TRUE(writeFileAtomic(target.string(), "new"));
  EXPECT_EQ(readAll(target), "new");
}

TEST_F(AtomicFileTest, LeavesNoStagingFileBehind) {
  const fs::path target = dir_ / "artifact.json";
  ASSERT_TRUE(writeFileAtomic(target.string(), "payload"));
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // only the published file, no .tmp.* leftovers
}

TEST_F(AtomicFileTest, ReportsErrorInsteadOfThrowing) {
  const fs::path target = dir_ / "missing-subdir" / "artifact.json";
  std::string error;
  EXPECT_FALSE(writeFileAtomic(target.string(), "payload", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fs::exists(target));
}

TEST_F(AtomicFileTest, FailureDoesNotClobberExistingFile) {
  // A failed write (target exists but staging dir is made unwritable via a
  // bogus path) must leave the previous artifact intact.
  const fs::path target = dir_ / "keep.json";
  ASSERT_TRUE(writeFileAtomic(target.string(), "original"));
  std::string error;
  EXPECT_FALSE(
      writeFileAtomic((dir_ / "no-such-dir" / "keep.json").string(), "x",
                      &error));
  EXPECT_EQ(readAll(target), "original");
}

}  // namespace
}  // namespace riscmp::support
