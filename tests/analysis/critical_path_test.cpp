#include <gtest/gtest.h>

#include "analysis/critical_path.hpp"

namespace riscmp {
namespace {

RetiredInst alu(std::initializer_list<unsigned> srcs, unsigned dst,
                InstGroup group = InstGroup::IntSimple) {
  RetiredInst inst;
  inst.group = group;
  for (const unsigned src : srcs) inst.srcs.push_back(Reg::gp(src));
  inst.dsts.push_back(Reg::gp(dst));
  return inst;
}

RetiredInst load(unsigned addrReg, std::uint64_t addr, unsigned dst) {
  RetiredInst inst;
  inst.group = InstGroup::Load;
  inst.srcs.push_back(Reg::gp(addrReg));
  inst.dsts.push_back(Reg::gp(dst));
  inst.loads.push_back(MemAccess{addr, 8});
  return inst;
}

RetiredInst store(unsigned addrReg, unsigned dataReg, std::uint64_t addr,
                  std::uint8_t size = 8) {
  RetiredInst inst;
  inst.group = InstGroup::Store;
  inst.srcs.push_back(Reg::gp(addrReg));
  inst.srcs.push_back(Reg::gp(dataReg));
  inst.stores.push_back(MemAccess{addr, size});
  return inst;
}

TEST(CriticalPath, SerialChainIsPathLength) {
  CriticalPathAnalyzer analyzer;
  // r1 = r1 + r1, ten times: a pure serial chain.
  for (int i = 0; i < 10; ++i) analyzer.onRetire(alu({1}, 1));
  EXPECT_EQ(analyzer.criticalPath(), 10u);
  EXPECT_EQ(analyzer.instructions(), 10u);
  EXPECT_DOUBLE_EQ(analyzer.ilp(), 1.0);
}

TEST(CriticalPath, IndependentInstructionsHaveCpOne) {
  CriticalPathAnalyzer analyzer;
  for (unsigned i = 1; i <= 10; ++i) analyzer.onRetire(alu({}, i));
  EXPECT_EQ(analyzer.criticalPath(), 1u);
  EXPECT_DOUBLE_EQ(analyzer.ilp(), 10.0);
}

TEST(CriticalPath, ForkJoinTakesLongestArm) {
  CriticalPathAnalyzer analyzer;
  analyzer.onRetire(alu({}, 1));    // depth 1
  analyzer.onRetire(alu({1}, 2));   // depth 2 (long arm 1/2)
  analyzer.onRetire(alu({2}, 2));   // depth 3
  analyzer.onRetire(alu({1}, 3));   // depth 2 (short arm)
  analyzer.onRetire(alu({2, 3}, 4));  // join: max(3,2)+1 = 4
  EXPECT_EQ(analyzer.criticalPath(), 4u);
}

TEST(CriticalPath, ChainsThroughMemory) {
  CriticalPathAnalyzer analyzer;
  analyzer.onRetire(alu({}, 1));            // depth 1
  analyzer.onRetire(store(2, 1, 0x100));    // depth 2 through memory
  analyzer.onRetire(load(2, 0x100, 3));     // depth 3 (reads the store)
  analyzer.onRetire(alu({3}, 4));           // depth 4
  EXPECT_EQ(analyzer.criticalPath(), 4u);
}

TEST(CriticalPath, PartialOverlapThroughMemoryChunks) {
  CriticalPathAnalyzer analyzer;
  analyzer.onRetire(alu({}, 1));          // depth 1
  analyzer.onRetire(store(2, 1, 0x104, 4));  // store word into chunk 0x20
  // A load of the full doubleword overlaps the stored word's chunk.
  analyzer.onRetire(load(2, 0x100, 3));
  EXPECT_EQ(analyzer.criticalPath(), 3u);
}

TEST(CriticalPath, DisjointMemoryDoesNotChain) {
  CriticalPathAnalyzer analyzer;
  analyzer.onRetire(alu({}, 1));
  analyzer.onRetire(store(2, 1, 0x100));
  analyzer.onRetire(load(2, 0x200, 3));  // different location
  EXPECT_EQ(analyzer.criticalPath(), 2u);
}

TEST(CriticalPath, ZeroRegisterBreaksChains) {
  // Executors omit x0/xzr from srcs, so a "li" via the zero register starts
  // a fresh chain even after deep computation.
  CriticalPathAnalyzer analyzer;
  for (int i = 0; i < 5; ++i) analyzer.onRetire(alu({1}, 1));
  analyzer.onRetire(alu({}, 1));  // li r1, 0 — no sources
  analyzer.onRetire(alu({1}, 2));
  EXPECT_EQ(analyzer.criticalPath(), 5u);  // the old chain
}

TEST(CriticalPath, FlagsParticipateInChains) {
  CriticalPathAnalyzer analyzer;
  RetiredInst cmp;  // cmp: reads r1, writes flags
  cmp.srcs.push_back(Reg::gp(1));
  cmp.dsts.push_back(Reg::flags());
  RetiredInst bcc;  // b.ne: reads flags
  bcc.srcs.push_back(Reg::flags());
  bcc.isBranch = true;

  analyzer.onRetire(alu({1}, 1));  // depth 1
  analyzer.onRetire(cmp);          // depth 2
  analyzer.onRetire(bcc);          // depth 3
  EXPECT_EQ(analyzer.criticalPath(), 3u);
}

TEST(ScaledCriticalPath, UsesGroupLatencies) {
  LatencyTable latencies = unitLatencies();
  latencies[static_cast<std::size_t>(InstGroup::FpMul)] = 6;
  latencies[static_cast<std::size_t>(InstGroup::FpDiv)] = 23;
  CriticalPathAnalyzer analyzer(latencies);

  RetiredInst fmul = alu({1}, 1, InstGroup::FpMul);
  RetiredInst fdiv = alu({1}, 1, InstGroup::FpDiv);
  analyzer.onRetire(fmul);  // 6
  analyzer.onRetire(fdiv);  // 29
  analyzer.onRetire(fmul);  // 35
  EXPECT_EQ(analyzer.criticalPath(), 35u);
}

TEST(ScaledCriticalPath, LoadsAndStoresAreNotScaled) {
  LatencyTable latencies = unitLatencies();
  latencies[static_cast<std::size_t>(InstGroup::Load)] = 99;
  latencies[static_cast<std::size_t>(InstGroup::Store)] = 99;
  CriticalPathAnalyzer analyzer(latencies);
  analyzer.onRetire(load(1, 0x100, 2));
  analyzer.onRetire(store(1, 2, 0x108));
  // §5.1: loads/stores contribute 1 regardless of the table.
  EXPECT_EQ(analyzer.criticalPath(), 2u);
}

TEST(ScaledCriticalPath, UnscaledAndScaledAgreeWithUnitTable) {
  CriticalPathAnalyzer plain;
  CriticalPathAnalyzer scaled{unitLatencies()};
  for (int i = 0; i < 20; ++i) {
    RetiredInst inst = alu({1, 2}, (i % 3) + 1,
                           i % 2 ? InstGroup::FpAdd : InstGroup::IntSimple);
    plain.onRetire(inst);
    scaled.onRetire(inst);
  }
  EXPECT_EQ(plain.criticalPath(), scaled.criticalPath());
}

TEST(CriticalPath, RuntimeAtTwoGigahertz) {
  CriticalPathAnalyzer analyzer;
  for (int i = 0; i < 2000; ++i) analyzer.onRetire(alu({1}, 1));
  EXPECT_DOUBLE_EQ(analyzer.runtimeSeconds(2e9), 1e-6);
}

TEST(CriticalPath, ResetReplaysIdentically) {
  // The engine reuses analyzer objects across cells; a reset analyzer must
  // reproduce a fresh one's numbers exactly (including memory state).
  const auto feed = [](CriticalPathAnalyzer& analyzer) {
    for (int i = 0; i < 6; ++i) analyzer.onRetire(alu({1}, 1));
    analyzer.onRetire(store(2, 1, 0x100));
    analyzer.onRetire(load(2, 0x100, 3));
    analyzer.onRetire(alu({3}, 4));
  };
  CriticalPathAnalyzer analyzer;
  feed(analyzer);
  const std::uint64_t firstCp = analyzer.criticalPath();
  const std::uint64_t firstInsts = analyzer.instructions();
  analyzer.reset();
  EXPECT_EQ(analyzer.criticalPath(), 0u);
  EXPECT_EQ(analyzer.instructions(), 0u);
  feed(analyzer);
  EXPECT_EQ(analyzer.criticalPath(), firstCp);
  EXPECT_EQ(analyzer.instructions(), firstInsts);
}

}  // namespace
}  // namespace riscmp
