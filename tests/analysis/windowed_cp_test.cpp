#include <gtest/gtest.h>

#include "analysis/windowed_cp.hpp"

namespace riscmp {
namespace {

RetiredInst alu(std::initializer_list<unsigned> srcs, unsigned dst) {
  RetiredInst inst;
  for (const unsigned src : srcs) inst.srcs.push_back(Reg::gp(src));
  inst.dsts.push_back(Reg::gp(dst));
  return inst;
}

TEST(WindowedCP, SerialChainSaturatesEveryWindow) {
  WindowedCPAnalyzer analyzer({4});
  for (int i = 0; i < 20; ++i) analyzer.onRetire(alu({1}, 1));
  analyzer.onProgramEnd();
  const auto results = analyzer.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].windowSize, 4u);
  // Windows start at 0, 2, 4, ..., 16: (20 - 4) / 2 + 1 = 9 windows.
  EXPECT_EQ(results[0].windows, 9u);
  EXPECT_DOUBLE_EQ(results[0].meanCp, 4.0);  // fully serial
  EXPECT_DOUBLE_EQ(results[0].meanIlp, 1.0);
}

TEST(WindowedCP, IndependentStreamGivesIlpEqualToWindow) {
  WindowedCPAnalyzer analyzer({4});
  for (int i = 0; i < 12; ++i) analyzer.onRetire(alu({}, 1u + (i % 8)));
  const auto results = analyzer.results();
  EXPECT_DOUBLE_EQ(results[0].meanCp, 1.0);
  EXPECT_DOUBLE_EQ(results[0].meanIlp, 4.0);
}

TEST(WindowedCP, WindowLocalityForgetsOldDependencies) {
  // A serial chain followed by independent work: late windows must not see
  // the early chain.
  WindowedCPAnalyzer analyzer({4});
  for (int i = 0; i < 8; ++i) analyzer.onRetire(alu({1}, 1));
  for (int i = 0; i < 8; ++i) analyzer.onRetire(alu({}, 2u + (i % 4)));
  const auto results = analyzer.results();
  // Windows over the first half have CP 4, over the second half CP 1.
  EXPECT_LT(results[0].meanCp, 4.0);
  EXPECT_DOUBLE_EQ(results[0].minCp, 1.0);
  EXPECT_DOUBLE_EQ(results[0].maxCp, 4.0);
}

TEST(WindowedCP, MultipleSizesEvaluateIndependently) {
  WindowedCPAnalyzer analyzer({4, 16});
  for (int i = 0; i < 64; ++i) analyzer.onRetire(alu({1}, 1));
  const auto results = analyzer.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].meanCp, 4.0);
  EXPECT_DOUBLE_EQ(results[1].meanCp, 16.0);
  EXPECT_EQ(results[1].windows, (64u - 16u) / 8u + 1u);
}

TEST(WindowedCP, ShortTraceYieldsNoWindows) {
  WindowedCPAnalyzer analyzer({16});
  for (int i = 0; i < 10; ++i) analyzer.onRetire(alu({1}, 1));
  analyzer.onProgramEnd();
  EXPECT_EQ(analyzer.results()[0].windows, 0u);
  EXPECT_DOUBLE_EQ(analyzer.results()[0].meanIlp, 0.0);
}

TEST(WindowedCP, MemoryDependenciesCountInsideWindow) {
  WindowedCPAnalyzer analyzer({4});
  // store -> load -> use chain within each window.
  for (int i = 0; i < 8; ++i) {
    RetiredInst st;
    st.srcs.push_back(Reg::gp(1));
    st.stores.push_back(MemAccess{0x100, 8});
    analyzer.onRetire(st);

    RetiredInst ld;
    ld.dsts.push_back(Reg::gp(1));
    ld.loads.push_back(MemAccess{0x100, 8});
    analyzer.onRetire(ld);
  }
  const auto results = analyzer.results();
  EXPECT_DOUBLE_EQ(results[0].meanCp, 4.0);  // fully serial through memory
}

TEST(WindowedCP, PaperWindowSizes) {
  const auto sizes = WindowedCPAnalyzer::paperWindowSizes();
  ASSERT_EQ(sizes.size(), 7u);
  EXPECT_EQ(sizes.front(), 4u);
  EXPECT_EQ(sizes.back(), 2000u);
}

// Property: for any trace, every window CP lies in [1, W], so mean ILP lies
// in [1, W].
TEST(WindowedCP, IlpBounds) {
  WindowedCPAnalyzer analyzer({8});
  for (int i = 0; i < 200; ++i) {
    // Pseudo-random dependency pattern.
    const unsigned src = 1 + (i * 7) % 5;
    const unsigned dst = 1 + (i * 13) % 5;
    analyzer.onRetire(alu({src}, dst));
  }
  const auto result = analyzer.results()[0];
  EXPECT_GE(result.minCp, 1.0);
  EXPECT_LE(result.maxCp, 8.0);
  EXPECT_GE(result.meanIlp, 1.0);
  EXPECT_LE(result.meanIlp, 8.0);
}

TEST(WindowedCP, ResetReplaysIdentically) {
  const auto feed = [](WindowedCPAnalyzer& analyzer) {
    for (int i = 0; i < 20; ++i) analyzer.onRetire(alu({1}, 1));
    analyzer.onProgramEnd();
  };
  WindowedCPAnalyzer analyzer({4, 16});
  feed(analyzer);
  const auto first = analyzer.results();
  analyzer.reset();
  for (const auto& result : analyzer.results()) {
    EXPECT_EQ(result.windows, 0u);
  }
  feed(analyzer);
  const auto second = analyzer.results();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].windows, second[i].windows);
    EXPECT_DOUBLE_EQ(first[i].meanCp, second[i].meanCp);
    EXPECT_DOUBLE_EQ(first[i].minCp, second[i].minCp);
    EXPECT_DOUBLE_EQ(first[i].maxCp, second[i].maxCp);
  }
}

TEST(WindowedCP, TinyTraceReportsZeroWindowsForLargeSizes) {
  // Regression for the fig2/ext_window_ablation NaN rendering: at tiny
  // --scale a 2000-wide window never fills, so the result must say
  // windows == 0 (the report layer then prints "-") rather than a
  // NaN-bearing mean from RunningStats' empty min/max.
  WindowedCPAnalyzer analyzer({4, 2000});
  for (int i = 0; i < 50; ++i) analyzer.onRetire(alu({1}, 1));
  analyzer.onProgramEnd();
  const auto results = analyzer.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].windows, 0u);
  EXPECT_EQ(results[1].windows, 0u);
  EXPECT_DOUBLE_EQ(results[1].meanCp, 0.0);
  EXPECT_DOUBLE_EQ(results[1].meanIlp, 0.0);
}

}  // namespace
}  // namespace riscmp
