#include <gtest/gtest.h>

#include <string>

#include "analysis/path_length.hpp"
#include "core/machine.hpp"
#include "riscv/asm.hpp"
#include "support/fault.hpp"

namespace riscmp {
namespace {

TEST(PathLength, AttributesPerKernelRegion) {
  Program program;
  program.kernels = {{"copy", 0x1000, 0x10}, {"scale", 0x1010, 0x10}};
  PathLengthCounter counter(program);

  RetiredInst inst;
  inst.pc = 0x1000;
  counter.onRetire(inst);
  inst.pc = 0x1008;
  counter.onRetire(inst);
  inst.pc = 0x1010;
  counter.onRetire(inst);
  inst.pc = 0x2000;  // outside all regions
  counter.onRetire(inst);

  EXPECT_EQ(counter.total(), 4u);
  EXPECT_EQ(counter.kernelCount("copy"), 2u);
  EXPECT_EQ(counter.kernelCount("scale"), 1u);
  EXPECT_EQ(counter.kernelCount("bogus"), 0u);
  EXPECT_EQ(counter.unattributed(), 1u);
}

TEST(PathLength, OverlappingKernelRegionsRejectedAtConstruction) {
  Program program;
  program.kernels = {{"copy", 0x1000, 0x20}, {"scale", 0x1010, 0x20}};
  try {
    PathLengthCounter counter(program);
    FAIL() << "expected ValidationFault for overlapping kernel regions";
  } catch (const ValidationFault& fault) {
    const std::string what = fault.what();
    EXPECT_NE(what.find("copy"), std::string::npos) << what;
    EXPECT_NE(what.find("scale"), std::string::npos) << what;
    EXPECT_NE(what.find("overlap"), std::string::npos) << what;
  }
}

TEST(PathLength, AdjacentKernelRegionsAccepted) {
  Program program;
  program.kernels = {{"copy", 0x1000, 0x10}, {"scale", 0x1010, 0x10}};
  EXPECT_NO_THROW(PathLengthCounter{program});
}

TEST(PathLength, GroupMixCounted) {
  Program program;
  PathLengthCounter counter(program);
  RetiredInst branch;
  branch.group = InstGroup::Branch;
  RetiredInst mul;
  mul.group = InstGroup::FpMul;
  counter.onRetire(branch);
  counter.onRetire(branch);
  counter.onRetire(mul);
  EXPECT_EQ(counter.branchCount(), 2u);
  EXPECT_EQ(counter.groupCount(InstGroup::FpMul), 1u);
  EXPECT_EQ(counter.groupCount(InstGroup::IntDiv), 0u);
}

TEST(PathLength, EndToEndWithMachine) {
  Program program;
  program.arch = Arch::Rv64;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  program.code = rv64::assemble(
      "  li a1, 8\n"       // 1 instruction of setup
      "loop:\n"
      "  addi a1, a1, -1\n"
      "  bnez a1, loop\n"
      "  li a7, 93\n"
      "  ecall\n",
      program.codeBase);
  // The loop body spans words 1..2 (addresses base+4 .. base+12).
  program.kernels = {{"loop", program.codeBase + 4, 8}};

  PathLengthCounter counter(program);
  Machine machine(program);
  machine.addObserver(counter);
  const RunResult result = machine.run();

  EXPECT_EQ(counter.total(), result.instructions);
  EXPECT_EQ(counter.kernelCount("loop"), 16u);  // 8 iterations x 2
  EXPECT_EQ(counter.unattributed(), 3u);        // li + li + ecall
  EXPECT_EQ(counter.branchCount(), 8u);
}

TEST(PathLength, ResetKeepsRegionsAndZerosCounts) {
  Program program;
  program.kernels = {{"copy", 0x1000, 0x10}};
  PathLengthCounter counter(program);
  RetiredInst inst;
  inst.pc = 0x1000;
  inst.group = InstGroup::Branch;
  counter.onRetire(inst);
  inst.pc = 0x2000;
  counter.onRetire(inst);

  counter.reset();
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(counter.kernelCount("copy"), 0u);
  EXPECT_EQ(counter.unattributed(), 0u);
  EXPECT_EQ(counter.branchCount(), 0u);

  // Region attribution still works after reset.
  inst.pc = 0x1008;
  counter.onRetire(inst);
  EXPECT_EQ(counter.total(), 1u);
  EXPECT_EQ(counter.kernelCount("copy"), 1u);
}

}  // namespace
}  // namespace riscmp
