// Per-kernel throughput bounds (ISSUE 7 tentpole): hand-computed port
// pressure for the STREAM-triad shape on the tx2 and a64fx port maps, the
// issue-width and CP bounds, binding-resource selection, and the reuse
// contract. The port maps and FMA latencies below mirror configs/tx2.yaml
// and configs/a64fx.yaml; tests/uarch covers the real files.
#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <string>
#include <vector>

#include "analysis/throughput_bound.hpp"
#include "support/fault.hpp"

namespace riscmp {
namespace {

std::uint32_t maskOf(std::initializer_list<InstGroup> groups) {
  std::uint32_t mask = 0;
  for (const InstGroup group : groups) {
    mask |= 1u << static_cast<unsigned>(group);
  }
  return mask;
}

/// The TX2-class port map shared by configs/tx2.yaml and
/// configs/riscv-tx2.yaml (a64fx has the same shape under other names).
ThroughputModel tx2Like(const std::string& name, std::uint32_t fmaLatency) {
  ThroughputModel model;
  model.name = name;
  model.issueWidth = 4;
  model.ports = {
      {"alu0", maskOf({InstGroup::IntSimple, InstGroup::IntMul,
                       InstGroup::Branch})},
      {"alu1", maskOf({InstGroup::IntSimple, InstGroup::IntDiv})},
      {"fp0", maskOf({InstGroup::FpAdd, InstGroup::FpMul, InstGroup::FpFma,
                      InstGroup::FpDiv, InstGroup::FpSqrt,
                      InstGroup::FpSimple, InstGroup::FpCmp,
                      InstGroup::FpCvt})},
      {"fp1", maskOf({InstGroup::FpAdd, InstGroup::FpMul, InstGroup::FpFma,
                      InstGroup::FpSimple, InstGroup::FpCmp})},
      {"ls0", maskOf({InstGroup::Load, InstGroup::Store, InstGroup::System})},
      {"ls1", maskOf({InstGroup::Load})},
  };
  model.latencies = unitLatencies();
  model.latencies[static_cast<std::size_t>(InstGroup::FpFma)] = fmaLatency;
  return model;
}

Program triadProgram() {
  Program program;
  program.kernels = {{"triad", 0x1000, 0x100}};
  return program;
}

/// One STREAM-triad iteration, a[i] = b[i] + s*c[i]: two loads, one FMA,
/// one store, all at pcs inside the "triad" kernel.
std::vector<RetiredInst> triadTrace(int iterations) {
  std::vector<RetiredInst> trace;
  for (int i = 0; i < iterations; ++i) {
    RetiredInst loadB;
    loadB.pc = 0x1000;
    loadB.group = InstGroup::Load;
    loadB.dsts.push_back(Reg::fp(1));
    loadB.loads.push_back(
        MemAccess{0x10000 + 8 * static_cast<std::uint64_t>(i), 8});
    trace.push_back(loadB);

    RetiredInst loadC = loadB;
    loadC.pc = 0x1004;
    loadC.dsts.clear();
    loadC.dsts.push_back(Reg::fp(2));
    loadC.loads.clear();
    loadC.loads.push_back(
        MemAccess{0x20000 + 8 * static_cast<std::uint64_t>(i), 8});
    trace.push_back(loadC);

    RetiredInst fma;
    fma.pc = 0x1008;
    fma.group = InstGroup::FpFma;
    fma.srcs.push_back(Reg::fp(1));
    fma.srcs.push_back(Reg::fp(2));
    fma.dsts.push_back(Reg::fp(3));
    trace.push_back(fma);

    RetiredInst store;
    store.pc = 0x100c;
    store.group = InstGroup::Store;
    store.srcs.push_back(Reg::fp(3));
    store.stores.push_back(
        MemAccess{0x30000 + 8 * static_cast<std::uint64_t>(i), 8});
    trace.push_back(store);
  }
  return trace;
}

// Hand-computed least-loaded assignment for 100 triad iterations on the
// TX2-class map. Stores can only go to ls0; the two loads spread over
// {ls0, ls1} least-loaded with ties to ls0. Tracing the first iterations:
//   iter 1: loadB->ls0(1), loadC->ls1(1), store->ls0(2)     state (2,1)
//   iter 2: loadB->ls1(2), loadC->ls0(3), store->ls0(4)     state (4,2)
//   iter 3: loadB->ls1(3), loadC->ls1(4), store->ls0(5)     state (5,4)
//   iter 4: loadB->ls1(5), loadC->ls0(6), store->ls0(7)     state (7,5)
// and from iter 2 the two-iteration pattern adds (3,3): after 2k
// iterations the state is (3k+1, 3k-1). With k=50: ls0=151, ls1=149.
// FMAs alternate fp0/fp1 -> 50 each. Issue bound: ceil(400/4) = 100.
// CP (per kernel): loads depth 1 (memory cost 1), FMA = 1 + fmaLatency,
// store = FMA + 1; no loop-carried chain, so cpBound = fmaLatency + 2.
TEST(ThroughputBound, TriadPortPressureOnTx2Map) {
  ThroughputBoundAnalyzer analyzer(tx2Like("tx2", 6), triadProgram());
  for (const RetiredInst& inst : triadTrace(100)) analyzer.onRetire(inst);

  const auto kernels = analyzer.kernels();
  ASSERT_EQ(kernels.size(), 1u);
  const auto& triad = kernels[0];
  EXPECT_EQ(triad.name, "triad");
  EXPECT_EQ(triad.instructions, 400u);
  ASSERT_EQ(triad.portCycles.size(), 6u);
  EXPECT_EQ(triad.portCycles[4], 151u);  // ls0
  EXPECT_EQ(triad.portCycles[5], 149u);  // ls1
  EXPECT_EQ(triad.portCycles[2], 50u);   // fp0
  EXPECT_EQ(triad.portCycles[3], 50u);   // fp1
  EXPECT_EQ(triad.portCycles[0], 0u);    // alu0
  EXPECT_EQ(triad.portBound, 151u);
  EXPECT_EQ(triad.bindingPort, "ls0");
  EXPECT_EQ(triad.issueBound, 100u);
  EXPECT_EQ(triad.cpBound, 8u);  // load(1) + FMA(6) + store(1)
  EXPECT_EQ(triad.boundCycles(), 151u);
  EXPECT_EQ(triad.bindingResource(), "port:ls0");
  EXPECT_NEAR(triad.cyclesPerInstruction(), 151.0 / 400.0, 1e-12);

  // The whole-program context saw the same 400 instructions.
  const auto program = analyzer.program();
  EXPECT_EQ(program.instructions, 400u);
  EXPECT_EQ(program.portBound, 151u);
  EXPECT_EQ(program.cpBound, 8u);
}

TEST(ThroughputBound, TriadPortPressureOnA64fxMap) {
  // Same port shape (eaga/eagb mirror ls0/ls1), FMA latency 9: identical
  // pressure, CP bound 1 + 9 + 1.
  ThroughputBoundAnalyzer analyzer(tx2Like("a64fx", 9), triadProgram());
  for (const RetiredInst& inst : triadTrace(100)) analyzer.onRetire(inst);

  const auto kernels = analyzer.kernels();
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].portBound, 151u);
  EXPECT_EQ(kernels[0].issueBound, 100u);
  EXPECT_EQ(kernels[0].cpBound, 11u);
  EXPECT_EQ(kernels[0].bindingResource(), "port:ls0");
}

TEST(ThroughputBound, SerialFmaChainIsCpBound) {
  // Each FMA consumes its own result: the chain (latency 6 per link)
  // dwarfs both structural bounds.
  ThroughputBoundAnalyzer analyzer(tx2Like("tx2", 6), triadProgram());
  for (int i = 0; i < 100; ++i) {
    RetiredInst fma;
    fma.pc = 0x1008;
    fma.group = InstGroup::FpFma;
    fma.srcs.push_back(Reg::fp(3));
    fma.dsts.push_back(Reg::fp(3));
    analyzer.onRetire(fma);
  }
  const auto kernels = analyzer.kernels();
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].portBound, 50u);  // fp0/fp1 alternate
  EXPECT_EQ(kernels[0].issueBound, 25u);
  EXPECT_EQ(kernels[0].cpBound, 600u);
  EXPECT_EQ(kernels[0].boundCycles(), 600u);
  EXPECT_EQ(kernels[0].bindingResource(), "CP");
}

TEST(ThroughputBound, IndependentStreamIsIssueBound) {
  // Independent single-cycle adds spread over two ALU ports (50 each) but
  // ceil(100/4) = 25 < 50 — the port binds, not issue. Narrow the model's
  // width check: with 8 eligible ports pressure is 13 and issue (25) binds.
  ThroughputModel model = tx2Like("tx2", 6);
  model.ports = {{"p0", maskOf({InstGroup::IntSimple})},
                 {"p1", maskOf({InstGroup::IntSimple})},
                 {"p2", maskOf({InstGroup::IntSimple})},
                 {"p3", maskOf({InstGroup::IntSimple})},
                 {"p4", maskOf({InstGroup::IntSimple})},
                 {"p5", maskOf({InstGroup::IntSimple})},
                 {"p6", maskOf({InstGroup::IntSimple})},
                 {"p7", maskOf({InstGroup::IntSimple})}};
  ThroughputBoundAnalyzer analyzer(model, triadProgram());
  for (int i = 0; i < 100; ++i) {
    RetiredInst add;
    add.pc = 0x1000;
    add.group = InstGroup::IntSimple;
    add.dsts.push_back(Reg::gp(1 + (i % 16)));
    analyzer.onRetire(add);
  }
  const auto kernels = analyzer.kernels();
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].portBound, 13u);  // ceil(100/8)
  EXPECT_EQ(kernels[0].issueBound, 25u);
  EXPECT_EQ(kernels[0].boundCycles(), 25u);
  EXPECT_EQ(kernels[0].bindingResource(), "issue");
}

TEST(ThroughputBound, ReciprocalThroughputTable) {
  const ThroughputModel model = tx2Like("tx2", 6);
  // 2 ALU ports, width 4: max(1/2, 1/4) = 0.5.
  EXPECT_DOUBLE_EQ(model.reciprocalThroughput(InstGroup::IntSimple), 0.5);
  // 1 divide port: 1.0.
  EXPECT_DOUBLE_EQ(model.reciprocalThroughput(InstGroup::IntDiv), 1.0);
  EXPECT_EQ(model.portMultiplicity(InstGroup::FpFma), 2u);
  EXPECT_DOUBLE_EQ(model.reciprocalThroughput(InstGroup::FpFma), 0.5);
  // 8 eligible ports but width 4: the front end binds at 1/4.
  ThroughputModel wide = model;
  wide.ports.assign(8, ThroughputPort{"any", maskOf({InstGroup::IntSimple})});
  EXPECT_DOUBLE_EQ(wide.reciprocalThroughput(InstGroup::IntSimple), 0.25);
}

TEST(ThroughputBound, NoEligiblePortThrows) {
  ThroughputModel model;
  model.name = "holes";
  model.ports = {{"alu", maskOf({InstGroup::IntSimple})}};
  ThroughputBoundAnalyzer analyzer(model, triadProgram());
  RetiredInst add;
  add.group = InstGroup::IntSimple;
  EXPECT_NO_THROW(analyzer.onRetire(add));
  RetiredInst fma;
  fma.group = InstGroup::FpFma;
  EXPECT_THROW(analyzer.onRetire(fma), ValidationFault);
  EXPECT_EQ(model.portMultiplicity(InstGroup::FpFma), 0u);
  EXPECT_TRUE(std::isinf(model.reciprocalThroughput(InstGroup::FpFma)));
}

TEST(ThroughputBound, PortlessModelRejectedAtConstruction) {
  ThroughputModel model;
  model.name = "portless";
  EXPECT_THROW(ThroughputBoundAnalyzer(model, triadProgram()), ConfigError);
}

TEST(ThroughputBound, UnattributedInstructionsCountInProgramOnly) {
  ThroughputBoundAnalyzer analyzer(tx2Like("tx2", 6), triadProgram());
  RetiredInst add;
  add.pc = 0x9000;  // outside the triad kernel
  add.group = InstGroup::IntSimple;
  analyzer.onRetire(add);
  EXPECT_EQ(analyzer.kernels()[0].instructions, 0u);
  EXPECT_EQ(analyzer.program().instructions, 1u);
}

TEST(ThroughputBound, PerKernelChainsAreIndependent) {
  // Two kernels alternate; each FMA depends on the same register, but a
  // kernel's CP bound must only see its own links: 50 links of latency 6
  // each, not the interleaved 100.
  Program program;
  program.kernels = {{"a", 0x1000, 0x10}, {"b", 0x1010, 0x10}};
  ThroughputBoundAnalyzer analyzer(tx2Like("tx2", 6), program);
  for (int i = 0; i < 100; ++i) {
    RetiredInst fma;
    fma.pc = i % 2 == 0 ? 0x1000 : 0x1010;
    fma.group = InstGroup::FpFma;
    fma.srcs.push_back(Reg::fp(3));
    fma.dsts.push_back(Reg::fp(3));
    analyzer.onRetire(fma);
  }
  const auto kernels = analyzer.kernels();
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_EQ(kernels[0].cpBound, 300u);
  EXPECT_EQ(kernels[1].cpBound, 300u);
  EXPECT_EQ(analyzer.program().cpBound, 600u);
}

TEST(ThroughputBound, ResetEqualsFresh) {
  ThroughputBoundAnalyzer analyzer(tx2Like("tx2", 6), triadProgram());
  const auto trace = triadTrace(50);
  for (const RetiredInst& inst : trace) analyzer.onRetire(inst);
  const auto first = analyzer.kernels();
  analyzer.reset();
  EXPECT_EQ(analyzer.instructions(), 0u);
  EXPECT_EQ(analyzer.kernels()[0].instructions, 0u);
  EXPECT_EQ(analyzer.kernels()[0].portBound, 0u);
  for (const RetiredInst& inst : trace) analyzer.onRetire(inst);
  const auto second = analyzer.kernels();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first[0].instructions, second[0].instructions);
  EXPECT_EQ(first[0].portCycles, second[0].portCycles);
  EXPECT_EQ(first[0].cpBound, second[0].cpBound);
  EXPECT_EQ(first[0].issueBound, second[0].issueBound);
}

}  // namespace
}  // namespace riscmp
