#include <gtest/gtest.h>

#include <sstream>

#include "analysis/trace_log.hpp"
#include "core/machine.hpp"
#include "riscv/asm.hpp"

namespace riscmp {
namespace {

TEST(TraceLog, FormatsRegisterAndMemoryOperands) {
  std::ostringstream out;
  TraceLogger logger(out);

  RetiredInst inst;
  inst.pc = 0x1000;
  inst.group = InstGroup::Load;
  inst.srcs.push_back(Reg::gp(5));
  inst.dsts.push_back(Reg::fp(3));
  inst.loads.push_back(MemAccess{0x2000, 8});
  logger.onRetire(inst);

  EXPECT_EQ(out.str(), "0,0x1000,LOAD,5,35,8192:8,,0,0\n");
}

TEST(TraceLog, BranchFlags) {
  std::ostringstream out;
  TraceLogger logger(out);
  RetiredInst inst;
  inst.pc = 4;
  inst.group = InstGroup::Branch;
  inst.isBranch = true;
  inst.branchTaken = true;
  logger.onRetire(inst);
  EXPECT_NE(out.str().find(",1,1\n"), std::string::npos);
}

TEST(TraceLog, LimitCapsRowsButKeepsCounting) {
  std::ostringstream out;
  TraceLogger logger(out, 2);
  RetiredInst inst;
  for (int i = 0; i < 5; ++i) logger.onRetire(inst);
  EXPECT_EQ(logger.logged(), 2u);
  // Two newline-terminated rows only.
  std::size_t rows = 0;
  for (const char ch : out.str()) rows += ch == '\n';
  EXPECT_EQ(rows, 2u);
}

TEST(TraceLog, EndToEndWithMachine) {
  Program program;
  program.arch = Arch::Rv64;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  program.code = rv64::assemble(
      "  li a0, 0\n"
      "  li a7, 93\n"
      "  ecall\n",
      program.codeBase);

  std::ostringstream out;
  TraceLogger::writeHeader(out);
  TraceLogger logger(out);
  Machine machine(program);
  machine.addObserver(logger);
  machine.run();

  EXPECT_EQ(logger.logged(), 3u);
  EXPECT_NE(out.str().find("index,pc,group"), std::string::npos);
  EXPECT_NE(out.str().find("SYSTEM"), std::string::npos);
}

}  // namespace
}  // namespace riscmp
