#include <gtest/gtest.h>

#include "analysis/dep_distance.hpp"

namespace riscmp {
namespace {

RetiredInst alu(std::initializer_list<unsigned> srcs, unsigned dst) {
  RetiredInst inst;
  for (const unsigned src : srcs) inst.srcs.push_back(Reg::gp(src));
  inst.dsts.push_back(Reg::gp(dst));
  return inst;
}

TEST(DepDistance, AdjacentDependencyHasDistanceOne) {
  DependencyDistanceAnalyzer analyzer;
  analyzer.onRetire(alu({}, 1));
  analyzer.onRetire(alu({1}, 2));
  EXPECT_EQ(analyzer.dependencies(), 1u);
  EXPECT_DOUBLE_EQ(analyzer.meanDistance(), 1.0);
  EXPECT_DOUBLE_EQ(analyzer.fractionWithin(4), 1.0);
}

TEST(DepDistance, UnwrittenSourcesAreNotDependencies) {
  DependencyDistanceAnalyzer analyzer;
  analyzer.onRetire(alu({5}, 1));  // r5 never written: no producer
  EXPECT_EQ(analyzer.dependencies(), 0u);
}

TEST(DepDistance, DistanceGrowsWithSeparation) {
  DependencyDistanceAnalyzer analyzer;
  analyzer.onRetire(alu({}, 1));
  for (int i = 0; i < 9; ++i) analyzer.onRetire(alu({}, 2));  // fillers
  analyzer.onRetire(alu({1}, 3));  // distance 10, the only dependency
  EXPECT_EQ(analyzer.dependencies(), 1u);
  EXPECT_DOUBLE_EQ(analyzer.meanDistance(), 10.0);
}

TEST(DepDistance, MemoryDependenciesTracked) {
  DependencyDistanceAnalyzer analyzer;
  RetiredInst store;
  store.stores.push_back(MemAccess{0x100, 8});
  analyzer.onRetire(store);
  analyzer.onRetire(alu({}, 9));
  RetiredInst load;
  load.loads.push_back(MemAccess{0x100, 8});
  load.dsts.push_back(Reg::gp(1));
  analyzer.onRetire(load);
  EXPECT_EQ(analyzer.dependencies(), 1u);
  EXPECT_DOUBLE_EQ(analyzer.meanDistance(), 2.0);
}

TEST(DepDistance, FractionWithinIsMonotone) {
  DependencyDistanceAnalyzer analyzer;
  analyzer.onRetire(alu({}, 1));
  for (int i = 0; i < 100; ++i) analyzer.onRetire(alu({1}, 1));
  analyzer.onRetire(alu({}, 2));
  for (int i = 0; i < 40; ++i) analyzer.onRetire(alu({}, 3 + (i % 4)));
  analyzer.onRetire(alu({2}, 5));  // long-distance dep
  double previous = -1.0;
  for (const std::uint64_t window : {1ull, 4ull, 16ull, 64ull, 1024ull}) {
    const double fraction = analyzer.fractionWithin(window);
    EXPECT_GE(fraction, previous);
    previous = fraction;
  }
  EXPECT_DOUBLE_EQ(analyzer.fractionWithin(1ull << 32), 1.0);
}

TEST(DepDistance, HistogramBucketsByPowerOfTwo) {
  DependencyDistanceAnalyzer analyzer;
  analyzer.onRetire(alu({}, 1));
  analyzer.onRetire(alu({1}, 2));  // distance 1 -> bucket 0
  analyzer.onRetire(alu({1}, 3));  // distance 2 -> bucket 1
  analyzer.onRetire(alu({1}, 4));  // distance 3 -> bucket 1
  const auto& histogram = analyzer.histogram();
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);
}

TEST(DepDistance, ResetReplaysIdentically) {
  const auto feed = [](DependencyDistanceAnalyzer& analyzer) {
    analyzer.onRetire(alu({}, 1));
    analyzer.onRetire(alu({1}, 2));
    for (int i = 0; i < 5; ++i) analyzer.onRetire(alu({}, 3));
    analyzer.onRetire(alu({2}, 4));
  };
  DependencyDistanceAnalyzer analyzer;
  feed(analyzer);
  const std::uint64_t firstDeps = analyzer.dependencies();
  const double firstMean = analyzer.meanDistance();
  analyzer.reset();
  EXPECT_EQ(analyzer.dependencies(), 0u);
  EXPECT_EQ(analyzer.instructions(), 0u);
  // Stale writer state must not leak: r2's old producer is forgotten, so
  // the replay sees exactly the same dependency set as a fresh analyzer.
  feed(analyzer);
  EXPECT_EQ(analyzer.dependencies(), firstDeps);
  EXPECT_DOUBLE_EQ(analyzer.meanDistance(), firstMean);
}

}  // namespace
}  // namespace riscmp
