// Tests for the windowed-CP knobs beyond the paper's defaults: the slide
// fraction (§6.1 leaves it at 1/2 "due to time constraints") and optional
// latency scaling (§6.1: "We also do not account for instruction latency").
#include <gtest/gtest.h>

#include "analysis/windowed_cp.hpp"

namespace riscmp {
namespace {

RetiredInst alu(std::initializer_list<unsigned> srcs, unsigned dst,
                InstGroup group = InstGroup::IntSimple) {
  RetiredInst inst;
  inst.group = group;
  for (const unsigned src : srcs) inst.srcs.push_back(Reg::gp(src));
  inst.dsts.push_back(Reg::gp(dst));
  return inst;
}

TEST(WindowedOptions, SlideFractionControlsWindowCount) {
  WindowedCPAnalyzer half({8}, 1, 2);   // paper default: slide 4
  WindowedCPAnalyzer full({8}, 1, 1);   // disjoint windows: slide 8
  WindowedCPAnalyzer fine({8}, 1, 8);   // slide 1
  for (int i = 0; i < 64; ++i) {
    const RetiredInst inst = alu({1}, 1);
    half.onRetire(inst);
    full.onRetire(inst);
    fine.onRetire(inst);
  }
  EXPECT_EQ(half.results()[0].windows, (64u - 8) / 4 + 1);
  EXPECT_EQ(full.results()[0].windows, 64u / 8);
  EXPECT_EQ(fine.results()[0].windows, 64u - 8 + 1);
  // The mean CP of a uniform serial trace is slide-invariant.
  EXPECT_DOUBLE_EQ(half.results()[0].meanCp, 8.0);
  EXPECT_DOUBLE_EQ(full.results()[0].meanCp, 8.0);
  EXPECT_DOUBLE_EQ(fine.results()[0].meanCp, 8.0);
}

TEST(WindowedOptions, LatencyScalingAppliesToNonMemoryOps) {
  LatencyTable latencies = unitLatencies();
  latencies[static_cast<std::size_t>(InstGroup::FpMul)] = 6;
  WindowedCPAnalyzer scaled({4}, 1, 2, &latencies);
  WindowedCPAnalyzer plain({4});
  for (int i = 0; i < 16; ++i) {
    const RetiredInst inst = alu({1}, 1, InstGroup::FpMul);
    scaled.onRetire(inst);
    plain.onRetire(inst);
  }
  EXPECT_DOUBLE_EQ(plain.results()[0].meanCp, 4.0);
  EXPECT_DOUBLE_EQ(scaled.results()[0].meanCp, 24.0);  // 4 ops x latency 6
}

TEST(WindowedOptions, LoadsStayUnscaled) {
  LatencyTable latencies = unitLatencies();
  latencies[static_cast<std::size_t>(InstGroup::Load)] = 99;
  WindowedCPAnalyzer scaled({4}, 1, 2, &latencies);
  for (int i = 0; i < 16; ++i) {
    RetiredInst load;
    load.group = InstGroup::Load;
    load.srcs.push_back(Reg::gp(1));
    load.dsts.push_back(Reg::gp(1));
    load.loads.push_back(MemAccess{0x100, 8});
    scaled.onRetire(load);
  }
  EXPECT_DOUBLE_EQ(scaled.results()[0].meanCp, 4.0);
}

TEST(WindowedOptions, DefaultMatchesPaperHalfSlide) {
  WindowedCPAnalyzer defaulted({8});
  WindowedCPAnalyzer explicitHalf({8}, 1, 2);
  for (int i = 0; i < 64; ++i) {
    const RetiredInst inst = alu({1}, 2);
    defaulted.onRetire(inst);
    explicitHalf.onRetire(inst);
  }
  EXPECT_EQ(defaulted.results()[0].windows, explicitHalf.results()[0].windows);
}

}  // namespace
}  // namespace riscmp
