# E14 determinism acceptance (ISSUE 10): BENCH_mem.json and the memory-
# system report must be byte-identical whatever the worker count AND
# whether the cells ran locally or on a simd daemon. Runs the bench on 1
# and 8 engine workers, diffs both outputs (only the engine footer and the
# JSON-path echo line may differ), then repeats the run through a daemon
# and diffs its JSON against the local one.
#
# Usage: cmake -DBENCH=<path-to-ext_mem_system> -DSIMD=<simd>
#              -DCLIENT=<sim_client> -DOUT=<scratch-dir>
#              -P compare_mem_determinism.cmake
file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT})

foreach(jobs 1 8)
  execute_process(
    COMMAND ${BENCH} --scale=0.05 --jobs=${jobs} --json=${OUT}/j${jobs}.json
    OUTPUT_FILE ${OUT}/j${jobs}.txt
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "ext_mem_system --jobs=${jobs} exited ${status}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}/j1.json ${OUT}/j8.json
  RESULT_VARIABLE json_differs)
if(NOT json_differs EQUAL 0)
  message(FATAL_ERROR "BENCH_mem JSON differs between --jobs=1 and "
                      "--jobs=8: the report is not deterministic")
endif()

foreach(jobs 1 8)
  file(READ ${OUT}/j${jobs}.txt report)
  string(REGEX REPLACE "engine: [^\n]*\n" "" report "${report}")
  string(REGEX REPLACE "JSON written to [^\n]*\n" "" report "${report}")
  set(report_j${jobs} "${report}")
endforeach()
if(NOT report_j1 STREQUAL report_j8)
  message(FATAL_ERROR "ext_mem_system stdout differs between --jobs=1 and "
                      "--jobs=8 (beyond the engine footer)")
endif()
message(STATUS "E14 report and JSON byte-identical across worker counts")

# Local vs daemon: the same grid through a simd socket must decode to the
# same cells and therefore the same artifact bytes.
set(SOCK ${OUT}/d.sock)
execute_process(
  COMMAND sh -c "exec ${SIMD} --socket=${SOCK} --jobs=2 \
                 > ${OUT}/simd.log 2>&1 &"
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "failed to launch simd (${status})")
endif()
foreach(attempt RANGE 100)
  if(EXISTS ${SOCK})
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()

execute_process(
  COMMAND ${BENCH} --scale=0.05 --jobs=2 --via=socket:${SOCK}
          --json=${OUT}/daemon.json
  OUTPUT_FILE ${OUT}/daemon.txt
  RESULT_VARIABLE status)
execute_process(COMMAND ${CLIENT} --socket=${SOCK} --shutdown
                OUTPUT_QUIET ERROR_QUIET)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "ext_mem_system --via=socket exited ${status}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}/j1.json ${OUT}/daemon.json
  RESULT_VARIABLE json_differs)
if(NOT json_differs EQUAL 0)
  message(FATAL_ERROR "BENCH_mem JSON differs between local and daemon "
                      "execution")
endif()

file(READ ${OUT}/daemon.txt report)
string(REGEX REPLACE "service: [^\n]*\n" "" report "${report}")
string(REGEX REPLACE "JSON written to [^\n]*\n" "" report "${report}")
if(NOT report STREQUAL report_j1)
  message(FATAL_ERROR "ext_mem_system stdout differs between local and "
                      "daemon execution (beyond the footer)")
endif()
message(STATUS "E14 report and JSON byte-identical local vs daemon")
