// FaultBoundary tests (ISSUE 1 tentpole, part 3): a failing cell prints
// its crash report, the run continues, the summary names every cell, and
// the exit code is non-zero iff anything failed.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "support/fault.hpp"
#include "uarch/core_model.hpp"
#include "verify/boundary.hpp"

namespace riscmp::verify {
namespace {

std::string fixture(const std::string& name) {
  return std::string(RISCMP_FIXTURE_DIR) + "/" + name;
}

TEST(FaultBoundary, CatchesFaultPrintsReportAndContinues) {
  std::ostringstream out;
  FaultBoundary boundary(out);

  EXPECT_FALSE(boundary.run("cell-a", [] {
    throw DecodeFault(0xdeadbeef, 0x1000);
  }));
  EXPECT_TRUE(boundary.run("cell-b", [] {}));

  EXPECT_FALSE(boundary.allOk());
  EXPECT_NE(out.str().find("FAULT REPORT: DecodeFault"), std::string::npos);
  EXPECT_NE(out.str().find("cell-a"), std::string::npos);
  EXPECT_EQ(boundary.finish(), 3);
  EXPECT_NE(out.str().find("1/2 cells failed"), std::string::npos);
  EXPECT_NE(out.str().find("cell-b"), std::string::npos);  // summary table
}

TEST(FaultBoundary, AllCellsPassingReturnsZeroAndStaysQuiet) {
  std::ostringstream out;
  FaultBoundary boundary(out);
  EXPECT_TRUE(boundary.run("ok-1", [] {}));
  EXPECT_TRUE(boundary.run("ok-2", [] {}));
  EXPECT_TRUE(boundary.allOk());
  EXPECT_EQ(boundary.finish(), 0);
  EXPECT_TRUE(out.str().empty());
}

TEST(FaultBoundary, NonFaultExceptionIsContainedAndLabelledUnclassified) {
  std::ostringstream out;
  FaultBoundary boundary(out);
  EXPECT_FALSE(boundary.run("stray", [] {
    throw std::runtime_error("raw exception");
  }));
  EXPECT_NE(out.str().find("UNCLASSIFIED"), std::string::npos);
  EXPECT_NE(out.str().find("raw exception"), std::string::npos);
  EXPECT_EQ(boundary.finish(), 3);
}

TEST(FaultBoundary, RecordsFaultKindPerCell) {
  std::ostringstream out;
  FaultBoundary boundary(out);
  boundary.run("budget-cell", [] { throw BudgetExceeded(100); });
  boundary.run("memory-cell", [] { throw MemoryFault(0x40000000, 8); });
  ASSERT_EQ(boundary.results().size(), 2u);
  EXPECT_EQ(boundary.results()[0].kind, "BudgetExceeded");
  EXPECT_EQ(boundary.results()[1].kind, "MemoryFault");
}

TEST(FaultBoundary, BrokenCoreModelYamlClassifiedAsConfigError) {
  std::ostringstream out;
  FaultBoundary boundary(out);
  EXPECT_FALSE(boundary.run("load-config/tx2", [] {
    uarch::CoreModel::fromFile(fixture("broken_tx2.yaml"));
  }));
  ASSERT_EQ(boundary.results().size(), 1u);
  EXPECT_EQ(boundary.results()[0].kind, "ConfigError");
  // The report names the offending file and the out-of-range latency.
  EXPECT_NE(out.str().find("broken_tx2.yaml"), std::string::npos);
  EXPECT_NE(out.str().find("LOAD"), std::string::npos);
  EXPECT_EQ(boundary.finish(), 3);
}

}  // namespace
}  // namespace riscmp::verify
