// Golden test pinning the fault taxonomy's string forms (ISSUE 6).
//
// faultKindName() and every constructor's what() summary are a stable wire
// format: run-journal entries, crash artifacts, and the bench failure
// footers all embed them, and a resumed run compares digests over encoded
// results that contain them. Any change here is a format break — update
// the journal/codec versions, not just these strings.
#include <gtest/gtest.h>

#include "support/fault.hpp"

namespace riscmp {
namespace {

TEST(FaultGolden, KindNamesArePinned) {
  EXPECT_EQ(faultKindName(FaultKind::Decode), "DecodeFault");
  EXPECT_EQ(faultKindName(FaultKind::Memory), "MemoryFault");
  EXPECT_EQ(faultKindName(FaultKind::Trap), "TrapFault");
  EXPECT_EQ(faultKindName(FaultKind::Budget), "BudgetExceeded");
  EXPECT_EQ(faultKindName(FaultKind::Config), "ConfigError");
  EXPECT_EQ(faultKindName(FaultKind::Validation), "ValidationFault");
  EXPECT_EQ(faultKindName(FaultKind::Timeout), "TimeoutFault");
  EXPECT_EQ(faultKindName(FaultKind::Crash), "CrashFault");
}

TEST(FaultGolden, SummariesArePinned) {
  EXPECT_STREQ(DecodeFault(0xDEADBEEF, 0x10000).what(),
               "undecodable instruction 0xdeadbeef at pc 0x10000");
  EXPECT_STREQ(MemoryFault(0x8000, 8).what(),
               "memory fault: access of 8 bytes at 0x8000");
  EXPECT_STREQ(TrapFault("ebreak", 0x104).what(),
               "unhandled trap (ebreak) at pc 0x104");
  EXPECT_STREQ(BudgetExceeded(1000).what(),
               "instruction budget exceeded (1000)");
  EXPECT_STREQ(ConfigError("bad latency", "tx2.yaml", 7, "LOAD").what(),
               "config error: tx2.yaml: line 7: key 'LOAD': bad latency");
  EXPECT_STREQ(ValidationFault("stores diverge").what(),
               "validation fault: stores diverge");
}

TEST(FaultGolden, TimeoutSummaryIsPinned) {
  const TimeoutFault fault(2500);
  EXPECT_EQ(fault.kind(), FaultKind::Timeout);
  EXPECT_EQ(fault.deadlineMs(), 2500u);
  EXPECT_STREQ(fault.what(), "wall-clock deadline exceeded (2500 ms)");
}

TEST(FaultGolden, CrashSignalSummaryIsPinned) {
  const CrashFault fault(11, "LBM/GCC 12.2 RISC-V");
  EXPECT_EQ(fault.kind(), FaultKind::Crash);
  EXPECT_EQ(fault.signo(), 11);
  EXPECT_EQ(fault.exitCode(), 0);
  EXPECT_EQ(fault.cell(), "LBM/GCC 12.2 RISC-V");
  EXPECT_STREQ(fault.what(),
               "worker for cell 'LBM/GCC 12.2 RISC-V' killed by SIGSEGV "
               "(signal 11)");
}

TEST(FaultGolden, CrashExitSummaryIsPinned) {
  const CrashFault fault = CrashFault::exited(3, "STREAM/GCC 9.2 AArch64");
  EXPECT_EQ(fault.signo(), 0);
  EXPECT_EQ(fault.exitCode(), 3);
  EXPECT_STREQ(fault.what(),
               "worker for cell 'STREAM/GCC 9.2 AArch64' exited without a "
               "result (code 3)");
}

TEST(FaultGolden, SignalNamesArePinned) {
  EXPECT_EQ(signalName(1), "SIGHUP");
  EXPECT_EQ(signalName(2), "SIGINT");
  EXPECT_EQ(signalName(4), "SIGILL");
  EXPECT_EQ(signalName(6), "SIGABRT");
  EXPECT_EQ(signalName(7), "SIGBUS");
  EXPECT_EQ(signalName(8), "SIGFPE");
  EXPECT_EQ(signalName(9), "SIGKILL");
  EXPECT_EQ(signalName(11), "SIGSEGV");
  EXPECT_EQ(signalName(13), "SIGPIPE");
  EXPECT_EQ(signalName(15), "SIGTERM");
  EXPECT_EQ(signalName(42), "signal 42");
}

TEST(FaultGolden, ReportWithoutContextIsStable) {
  const TimeoutFault fault(100);
  EXPECT_EQ(fault.report(),
            "=== FAULT REPORT: TimeoutFault ===\n"
            "  wall-clock deadline exceeded (100 ms)\n"
            "=== END FAULT REPORT ===");
}

}  // namespace
}  // namespace riscmp
