// Fault-injection campaign tests (ISSUE 1 tentpole, part 2).
//
// The contract under test: every injected corruption leaves the engine in
// a *classified* state — a valid decode, a typed Fault, or a divergence
// report. `Unclassified` outcomes mean an unexpected exception escaped the
// taxonomy, which is always an engine bug.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "kgen/compile.hpp"
#include "verify/differential.hpp"
#include "verify/injector.hpp"
#include "workloads/workloads.hpp"

namespace riscmp::verify {
namespace {

std::vector<std::uint32_t> corpusFor(Arch arch) {
  const kgen::Module stream = workloads::makeStream({.n = 256, .reps = 1});
  std::vector<std::uint32_t> corpus;
  for (const auto era : {kgen::CompilerEra::Gcc9, kgen::CompilerEra::Gcc12}) {
    const auto compiled = kgen::compile(stream, arch, era);
    corpus.insert(corpus.end(), compiled.program.code.begin(),
                  compiled.program.code.end());
  }
  return corpus;
}

void expectDecodeCampaignClassified(Arch arch) {
  const auto corpus = corpusFor(arch);
  // Acceptance floor from ISSUE 1: >= 10k corrupted words per ISA.
  constexpr std::uint64_t kRounds = 10'000;
  const CampaignStats stats = decodeCampaign(arch, corpus, 2026, kRounds);

  EXPECT_EQ(stats.total, kRounds);
  EXPECT_TRUE(stats.allClassified()) << stats.firstUnclassified;
  // Word-level outcomes can only be: still-valid decode, a DecodeFault,
  // or a round-trip divergence. Nothing else applies to a single word.
  EXPECT_EQ(stats.count(OutcomeKind::ValidDecode) +
                stats.count(OutcomeKind::DecodeFault) +
                stats.count(OutcomeKind::Divergence),
            kRounds)
      << stats.summary();
  // Sanity: bit-flips of real code must hit both classes.
  EXPECT_GT(stats.count(OutcomeKind::ValidDecode), 0u) << stats.summary();
  EXPECT_GT(stats.count(OutcomeKind::DecodeFault), 0u) << stats.summary();
}

TEST(FaultInjection, DecodeCampaignRv64TenThousandWordsAllClassified) {
  expectDecodeCampaignClassified(Arch::Rv64);
}

TEST(FaultInjection, DecodeCampaignA64TenThousandWordsAllClassified) {
  expectDecodeCampaignClassified(Arch::AArch64);
}

TEST(FaultInjection, DecodeCampaignIsDeterministic) {
  const auto corpus = corpusFor(Arch::Rv64);
  const CampaignStats a = decodeCampaign(Arch::Rv64, corpus, 7, 500);
  const CampaignStats b = decodeCampaign(Arch::Rv64, corpus, 7, 500);
  EXPECT_EQ(a.counts, b.counts);
  const CampaignStats c = decodeCampaign(Arch::Rv64, corpus, 8, 500);
  EXPECT_NE(a.counts, c.counts);  // a different seed corrupts differently
}

TEST(FaultInjection, CorruptWordFlipsOneOrTwoBits) {
  FaultInjector injector(99);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t word = static_cast<std::uint32_t>(
        injector.rng().next());
    const std::uint32_t corrupted = injector.corruptWord(word, 2);
    const int flipped = std::popcount(word ^ corrupted);
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 2);
  }
}

TEST(FaultInjection, CorruptCodeWordChangesExactlyOneWord) {
  const kgen::Module stream = workloads::makeStream({.n = 16, .reps = 1});
  const auto compiled =
      kgen::compile(stream, Arch::Rv64, kgen::CompilerEra::Gcc12);
  Program program = compiled.program;
  FaultInjector injector(5);
  const std::size_t index = injector.corruptCodeWord(program);
  ASSERT_LT(index, program.code.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (program.code[i] != compiled.program.code[i]) ++differing;
  }
  EXPECT_EQ(differing, 1u);
  EXPECT_NE(program.code[index], compiled.program.code[index]);
}

TEST(FaultInjection, InjectorStreamsAreSeedReproducible) {
  FaultInjector a(123);
  FaultInjector b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.corruptWord(0xdeadbeef), b.corruptWord(0xdeadbeef));
  }
}

TEST(FaultInjection, ClassifyWordKnownEncodings) {
  // addi x0, x0, 0 (canonical nop): valid on RV64 and round-trips.
  EXPECT_EQ(classifyWord(Arch::Rv64, 0x00000013).kind,
            OutcomeKind::ValidDecode);
  // The all-zero word is defined to be undecodable on RV64.
  EXPECT_EQ(classifyWord(Arch::Rv64, 0x00000000).kind,
            OutcomeKind::DecodeFault);
}

TEST(FaultInjection, ExecCampaignAllClassified) {
  const kgen::Module stream = workloads::makeStream({.n = 64, .reps = 1});
  const CampaignStats stats =
      execCampaign(stream, 2026, /*roundsPerConfig=*/4,
                   /*budget=*/5'000'000);
  EXPECT_EQ(stats.total, 16u);  // 4 rounds x (2 ISAs x 2 eras)
  EXPECT_TRUE(stats.allClassified()) << stats.firstUnclassified;
}

TEST(FaultInjection, ConfigCampaignAllClassified) {
  const std::string yamlText =
      "name: probe\n"
      "core:\n"
      "  fetch_width: 4\n"
      "  rob_size: 64\n"
      "  clock_ghz: 2.0\n"
      "ports:\n"
      "  - name: alu0\n"
      "    groups: [INT_SIMPLE, BRANCH]\n"
      "latencies:\n"
      "  INT_SIMPLE: 1\n"
      "  LOAD: 4\n";
  const CampaignStats stats = configCampaign(yamlText, 11, 300);
  EXPECT_EQ(stats.total, 300u);
  EXPECT_TRUE(stats.allClassified()) << stats.firstUnclassified;
  // Corrupted configs either still load or are rejected with provenance.
  EXPECT_EQ(stats.count(OutcomeKind::CleanRun) +
                stats.count(OutcomeKind::ConfigError),
            300u)
      << stats.summary();
  EXPECT_GT(stats.count(OutcomeKind::ConfigError), 0u) << stats.summary();
}

}  // namespace
}  // namespace riscmp::verify
