// Conformance subsystem tests (ISSUE 3): fuzzer determinism and coverage,
// differential-oracle detection power, trace invariant checking through the
// fault boundary, and the fixed-seed golden digest campaign.
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "kgen/dump.hpp"
#include "verify/boundary.hpp"
#include "verify/conformance/campaign.hpp"
#include "verify/conformance/invariant_checker.hpp"
#include "verify/conformance/kernel_fuzzer.hpp"
#include "verify/conformance/oracle.hpp"

namespace riscmp::verify::conformance {
namespace {

// -- Kernel fuzzer ----------------------------------------------------------

TEST(KernelFuzzer, SameSeedSameModule) {
  for (std::uint64_t seed : {1ull, 42ull, 2026ull}) {
    KernelFuzzer a(seed);
    KernelFuzzer b(seed);
    EXPECT_EQ(kgen::dumpModule(a.generate()), kgen::dumpModule(b.generate()));
    // The stream continues deterministically too.
    EXPECT_EQ(kgen::dumpModule(a.generate()), kgen::dumpModule(b.generate()));
  }
}

TEST(KernelFuzzer, DistinctSeedsDistinctModules) {
  KernelFuzzer a(1);
  KernelFuzzer b(2);
  EXPECT_NE(kgen::dumpModule(a.generate()), kgen::dumpModule(b.generate()));
}

TEST(KernelFuzzer, ModulesValidate) {
  KernelFuzzer fuzzer(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(fuzzer.generate().validate()) << "module " << i;
  }
}

void collectExprOps(const kgen::Expr& expr, std::set<kgen::BinOp>& bins,
                    std::set<kgen::UnOp>& uns) {
  if (expr.kind == kgen::Expr::Kind::Bin) bins.insert(expr.bin);
  if (expr.kind == kgen::Expr::Kind::Unary) uns.insert(expr.un);
  if (expr.lhs) collectExprOps(*expr.lhs, bins, uns);
  if (expr.rhs) collectExprOps(*expr.rhs, bins, uns);
}

void collectStmt(const kgen::Stmt& stmt, std::set<kgen::Stmt::Kind>& kinds,
                 std::set<kgen::BinOp>& bins, std::set<kgen::UnOp>& uns,
                 bool& sawTwoDee, bool& sawStride, bool& sawOffset) {
  kinds.insert(stmt.kind);
  if (stmt.index.terms.size() >= 2) sawTwoDee = true;
  for (const auto& term : stmt.index.terms) {
    if (term.stride > 1) sawStride = true;
  }
  if (stmt.index.offset > 0) sawOffset = true;
  if (stmt.value) collectExprOps(*stmt.value, bins, uns);
  for (const kgen::Stmt& inner : stmt.body) {
    collectStmt(inner, kinds, bins, uns, sawTwoDee, sawStride, sawOffset);
  }
}

// A modest stream of modules must exercise the whole IR surface: every
// binary and unary op, every statement kind, 2-D and strided and offset
// addressing, and both zero- and value-initialised arrays.
TEST(KernelFuzzer, StreamCoversIrSurface) {
  KernelFuzzer fuzzer(2026);
  std::set<kgen::BinOp> bins;
  std::set<kgen::UnOp> uns;
  std::set<kgen::Stmt::Kind> kinds;
  bool sawTwoDee = false, sawStride = false, sawOffset = false;
  bool sawZeroInit = false, sawValueInit = false;

  for (int i = 0; i < 40; ++i) {
    const kgen::Module module = fuzzer.generate();
    for (const kgen::ArrayDecl& array : module.arrays) {
      (array.init.empty() ? sawZeroInit : sawValueInit) = true;
    }
    for (const kgen::Kernel& kernel : module.kernels) {
      for (const kgen::Stmt& stmt : kernel.body) {
        collectStmt(stmt, kinds, bins, uns, sawTwoDee, sawStride, sawOffset);
      }
    }
  }

  EXPECT_EQ(bins.size(), 6u) << "all six BinOps";
  EXPECT_EQ(uns.size(), 3u) << "all three UnOps";
  EXPECT_EQ(kinds.size(), 4u) << "all four Stmt kinds";
  EXPECT_TRUE(sawTwoDee);
  EXPECT_TRUE(sawStride);
  EXPECT_TRUE(sawOffset);
  EXPECT_TRUE(sawZeroInit);
  EXPECT_TRUE(sawValueInit);
}

// -- Differential oracle ----------------------------------------------------

TEST(Oracle, FuzzedModulesAreClean) {
  KernelFuzzer fuzzer(11);
  for (int i = 0; i < 10; ++i) {
    const kgen::Module module = fuzzer.generate();
    const OracleReport report = runOracle(module);
    EXPECT_TRUE(report.ok()) << "module " << i << ":\n" << report.summary();
    EXPECT_EQ(report.runs.size(), 4u);
  }
}

TEST(Oracle, StoreAndRetiredDigestsAgreeWhereTheyMust) {
  KernelFuzzer fuzzer(12);
  const OracleReport report = runOracle(fuzzer.generate());
  ASSERT_TRUE(report.ok()) << report.summary();
  ASSERT_EQ(report.runs.size(), 4u);
  // Store streams are cross-config invariant, so their digests all match.
  for (const RunDigest& run : report.runs) {
    EXPECT_EQ(run.storeDigest, report.runs.front().storeDigest) << run.config;
    EXPECT_GT(run.retired, 0u);
  }
}

/// Compile hook that corrupts one configuration's initialised data image:
/// the simulated run then ends with a different memory value than the
/// interpreter, which the oracle must flag as a Divergence. Every
/// initialised element is touched so a kernel cannot mask the corruption
/// by overwriting the one damaged slot before the final comparison.
CompileFn corruptDataFor(const OracleConfig& victim) {
  return [victim](const kgen::Module& module, const OracleConfig& config) {
    auto compiled = std::make_shared<kgen::Compiled>(
        kgen::compile(module, config.arch, config.era));
    if (config.arch != victim.arch || config.era != victim.era) {
      return compiled;
    }
    for (const kgen::ArrayDecl& array : module.arrays) {
      if (array.init.empty()) continue;
      const std::uint64_t addr = compiled->arrayAddr.at(array.name);
      for (std::size_t i = 0; i < array.init.size(); ++i) {
        const std::size_t at = static_cast<std::size_t>(
            addr - compiled->program.dataBase + i * sizeof(double));
        compiled->program.data.at(at) ^= 0x40;  // flip a mantissa bit
      }
    }
    return compiled;
  };
}

TEST(Oracle, DetectsInjectedDataDivergence) {
  // Seed 11's first module has a value-initialised array (asserted below so
  // a fuzzer change can't silently hollow out this test).
  KernelFuzzer fuzzer(11);
  const kgen::Module module = fuzzer.generate();
  bool anyInitialised = false;
  for (const kgen::ArrayDecl& array : module.arrays) {
    if (!array.init.empty()) anyInitialised = true;
  }
  ASSERT_TRUE(anyInitialised);

  const OracleConfig victim{Arch::Rv64, kgen::CompilerEra::Gcc12};
  OracleOptions options;
  options.compileFn = corruptDataFor(victim);
  const OracleReport report = runOracle(module, options);

  EXPECT_TRUE(report.hasDivergence()) << report.summary();
  bool victimBlamed = false;
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.config, configLabel(victim)) << finding.detail;
    if (finding.config == configLabel(victim)) victimBlamed = true;
  }
  EXPECT_TRUE(victimBlamed);
}

TEST(Oracle, ReportsCorruptCodeAsFaultNotCrash) {
  KernelFuzzer fuzzer(11);
  const kgen::Module module = fuzzer.generate();

  OracleOptions options;
  options.compileFn = [](const kgen::Module& m, const OracleConfig& c) {
    auto compiled =
        std::make_shared<kgen::Compiled>(kgen::compile(m, c.arch, c.era));
    if (c.arch == Arch::AArch64 && c.era == kgen::CompilerEra::Gcc9) {
      // Zero the first executed instruction of the first kernel (code[0]
      // is constant-pool data, not code): 0 is undefined on both ISAs.
      const Program& program = compiled->program;
      const std::size_t at = static_cast<std::size_t>(
          (program.kernels.front().addr - program.codeBase) / 4);
      compiled->program.code.at(at) = 0;
    }
    return compiled;
  };
  const OracleReport report = runOracle(module, options);

  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings.front().kind, Finding::Kind::Fault);
  EXPECT_EQ(report.findings.front().config, "aarch64/gcc9");
  // The other three configurations still ran and produced digests.
  EXPECT_EQ(report.runs.size(), 3u);
}

// -- Trace invariant checker ------------------------------------------------

Program tinyProgram() {
  Program program;
  program.arch = Arch::Rv64;
  program.codeBase = Program::kCodeBase;
  program.code = {0x13, 0x13, 0x13, 0x13};  // 4 words (addi x0 nops)
  program.kernels = {Symbol{"k0", Program::kCodeBase, 8}};
  return program;
}

RetiredInst nop(std::uint64_t pc) {
  RetiredInst inst;
  inst.pc = pc;
  return inst;
}

TEST(InvariantChecker, AcceptsWellFormedStream) {
  const Program program = tinyProgram();
  TraceInvariantChecker checker(program, 0x1000, 0x2000);

  RetiredInst def = nop(program.codeBase);
  def.dsts.push_back(Reg::gp(5));
  checker.onRetire(def);

  RetiredInst use = nop(program.codeBase + 4);
  use.srcs.push_back(Reg::gp(5));
  use.srcs.push_back(Reg::gp(2));  // sp: defined at entry
  use.loads.push_back(MemAccess{0x1000, 8});
  use.stores.push_back(MemAccess{0x1ff8, 8});
  checker.onRetire(use);

  EXPECT_EQ(checker.retired(), 2u);
  EXPECT_EQ(checker.stats().operandChecks, 2u);
  EXPECT_EQ(checker.stats().memoryChecks, 2u);
}

TEST(InvariantChecker, FlagsUndefinedSource) {
  const Program program = tinyProgram();
  TraceInvariantChecker checker(program, 0x1000, 0x2000);
  RetiredInst use = nop(program.codeBase);
  use.srcs.push_back(Reg::gp(7));
  EXPECT_THROW(checker.onRetire(use), ValidationFault);
}

TEST(InvariantChecker, SelfReadBeforeDefineIsFlagged) {
  const Program program = tinyProgram();
  TraceInvariantChecker checker(program, 0x1000, 0x2000);
  // An accumulator reading its own never-written output register.
  RetiredInst inst = nop(program.codeBase);
  inst.srcs.push_back(Reg::fp(3));
  inst.dsts.push_back(Reg::fp(3));
  EXPECT_THROW(checker.onRetire(inst), ValidationFault);
}

TEST(InvariantChecker, FlagsOutOfArenaAccessAndBadSize) {
  const Program program = tinyProgram();
  TraceInvariantChecker checker(program, 0x1000, 0x2000);

  RetiredInst wild = nop(program.codeBase);
  wild.stores.push_back(MemAccess{0x2000, 8});  // one past the end
  EXPECT_THROW(checker.onRetire(wild), ValidationFault);

  TraceInvariantChecker fresh(program, 0x1000, 0x2000);
  RetiredInst bad = nop(program.codeBase);
  bad.loads.push_back(MemAccess{0x1000, 3});  // not a power-of-two size
  EXPECT_THROW(fresh.onRetire(bad), ValidationFault);
}

TEST(InvariantChecker, FlagsBranchLeavingCodeOrKernel) {
  const Program program = tinyProgram();

  TraceInvariantChecker outside(program, 0x1000, 0x2000);
  RetiredInst escape = nop(program.codeBase);
  escape.isBranch = escape.branchTaken = true;
  escape.branchTarget = program.codeEnd();  // first address past the image
  EXPECT_THROW(outside.onRetire(escape), ValidationFault);

  TraceInvariantChecker crossing(program, 0x1000, 0x2000);
  RetiredInst cross = nop(program.codeBase);  // inside kernel k0 [base, +8)
  cross.isBranch = cross.branchTaken = true;
  cross.branchTarget = program.codeBase + 8;  // outside k0, inside code
  EXPECT_THROW(crossing.onRetire(cross), ValidationFault);

  TraceInvariantChecker aligned(program, 0x1000, 0x2000);
  RetiredInst misaligned = nop(program.codeBase);
  misaligned.isBranch = misaligned.branchTaken = true;
  misaligned.branchTarget = program.codeBase + 2;
  EXPECT_THROW(aligned.onRetire(misaligned), ValidationFault);
}

TEST(InvariantChecker, RetiredConsistency) {
  const Program program = tinyProgram();
  TraceInvariantChecker checker(program, 0x1000, 0x2000);
  checker.onRetire(nop(program.codeBase));
  checker.onRetire(nop(program.codeBase + 4));

  EXPECT_NO_THROW(checkRetiredConsistency(2, checker, 2, 2, 0));
  EXPECT_THROW(checkRetiredConsistency(3, checker, 2, 2, 0), ValidationFault);
  EXPECT_THROW(checkRetiredConsistency(2, checker, 3, 2, 0), ValidationFault);
  EXPECT_THROW(checkRetiredConsistency(2, checker, 2, 1, 0), ValidationFault);
}

// A violation escaping through a FaultBoundary must classify as a
// Validation fault — a diagnosed failure, never an unclassified crash.
TEST(InvariantChecker, ViolationClassifiesThroughFaultBoundary) {
  const Program program = tinyProgram();
  std::ostringstream capture;
  FaultBoundary boundary(capture);
  boundary.run("conformance/undefined-read", [&] {
    TraceInvariantChecker checker(program, 0x1000, 0x2000);
    RetiredInst use = nop(program.codeBase);
    use.srcs.push_back(Reg::gp(9));
    checker.onRetire(use);
  });

  ASSERT_EQ(boundary.results().size(), 1u);
  const CellResult& cell = boundary.results().front();
  EXPECT_FALSE(cell.ok);
  EXPECT_EQ(cell.kind, "ValidationFault");
  EXPECT_NE(cell.summary.find("read before any definition"),
            std::string::npos);
}

// -- Campaign + golden digests ----------------------------------------------

std::string goldenPath() {
  return std::string(RISCMP_CONFORMANCE_GOLDEN_DIR) +
         "/conformance_digests.txt";
}

CampaignOptions goldenOptions(unsigned jobs) {
  CampaignOptions options;
  options.seed = 2026;
  options.count = 200;
  options.jobs = jobs;
  return options;
}

// The acceptance campaign: 200 fixed-seed kernels, all four configurations,
// zero findings, digests byte-identical to the checked-in snapshot.
TEST(Campaign, FixedSeedCampaignIsCleanAndMatchesGolden) {
  const CampaignResult result = runCampaign(goldenOptions(1));
  EXPECT_TRUE(result.clean()) << result.summary();
  EXPECT_EQ(result.outcomes.size(), 200u);

  std::ifstream in(goldenPath());
  ASSERT_TRUE(in) << "missing golden snapshot " << goldenPath();
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(result.digestText(), golden.str())
      << "digest drift: regenerate with sim_conformance --seed=2026 "
         "--count=200 --digest-file=tests/verify/golden/"
         "conformance_digests.txt after auditing the change";
}

// Worker-count invariance: the same campaign on a parallel pool produces
// byte-identical digest text.
TEST(Campaign, DigestsIndependentOfJobCount) {
  const CampaignResult serial = runCampaign(goldenOptions(1));
  const CampaignResult parallel = runCampaign(goldenOptions(8));
  EXPECT_EQ(serial.digestText(), parallel.digestText());
  EXPECT_TRUE(parallel.clean()) << parallel.summary();
}

// -- Fusion conformance (ISSUE 8) -------------------------------------------

TEST(Oracle, FusionReplayIsCleanAndStampsDigests) {
  KernelFuzzer fuzzer(11);
  for (int i = 0; i < 5; ++i) {
    const kgen::Module module = fuzzer.generate();
    OracleOptions options;
    options.fusion = true;
    const OracleReport report = runOracle(module, options);
    EXPECT_TRUE(report.ok()) << "module " << i << ":\n" << report.summary();
    ASSERT_EQ(report.runs.size(), 4u);
    for (const RunDigest& run : report.runs) {
      EXPECT_TRUE(run.fused) << run.config;
      // fused + pairs == retired, so fused <= retired always.
      EXPECT_EQ(run.fusedRetired + run.fusionPairs, run.retired)
          << run.config;
    }
  }
}

std::string fusionGoldenPath() {
  return std::string(RISCMP_CONFORMANCE_GOLDEN_DIR) +
         "/fusion_conformance_digests.txt";
}

CampaignOptions fusionGoldenOptions(unsigned jobs) {
  CampaignOptions options;
  options.seed = 3026;
  options.count = 100;
  options.jobs = jobs;
  options.fusion = true;
  return options;
}

// The ISSUE 8 acceptance campaign: 100 fixed-seed kernels replayed with
// fusion enabled on all four configurations, architectural results
// identical to fusion-off (any difference is a Divergence finding), digests
// — including the fused=/pairs= fields — byte-identical to the golden.
TEST(Campaign, FixedSeedFusionCampaignIsCleanAndMatchesGolden) {
  const CampaignResult result = runCampaign(fusionGoldenOptions(1));
  EXPECT_TRUE(result.clean()) << result.summary();
  EXPECT_EQ(result.outcomes.size(), 100u);
  for (const KernelOutcome& outcome : result.outcomes) {
    for (const RunDigest& run : outcome.report.runs) {
      EXPECT_TRUE(run.fused) << "seed=" << outcome.seed << " " << run.config;
    }
  }

  std::ifstream in(fusionGoldenPath());
  ASSERT_TRUE(in) << "missing golden snapshot " << fusionGoldenPath();
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(result.digestText(), golden.str())
      << "digest drift: regenerate with sim_conformance --seed=3026 "
         "--count=100 --fusion --digest-file=tests/verify/golden/"
         "fusion_conformance_digests.txt after auditing the change";
}

TEST(Campaign, FusionDigestsIndependentOfJobCount) {
  const CampaignResult serial = runCampaign(fusionGoldenOptions(1));
  const CampaignResult parallel = runCampaign(fusionGoldenOptions(8));
  EXPECT_EQ(serial.digestText(), parallel.digestText());
  EXPECT_TRUE(parallel.clean()) << parallel.summary();
}

TEST(Campaign, ShrinksInjectedDivergenceToSmallRepro) {
  // No campaign-level compile hook exists (the cache must stay honest), so
  // exercise the shrink path by minimizing against a synthetic oracle
  // failure directly: see fuzz_test.cpp for the shrinker unit tests. Here,
  // assert the campaign plumbing reports a module count and engine stats.
  CampaignOptions small;
  small.seed = 3;
  small.count = 4;
  small.jobs = 2;
  const CampaignResult result = runCampaign(small);
  EXPECT_EQ(result.outcomes.size(), 4u);
  EXPECT_EQ(result.engineStats.compiles, 16u);  // 4 modules x 4 configs
  for (const KernelOutcome& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.report.ok()) << outcome.report.summary();
    EXPECT_TRUE(outcome.minimized.empty());
  }
}

}  // namespace
}  // namespace riscmp::verify::conformance
