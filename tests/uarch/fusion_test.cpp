// Unit tests for the macro-op fusion pass (ISSUE 8): one hand-computed
// fused sequence per catalogue rule pinning the pair count, the merged
// dependence edges, and the chosen group; plus the negative and boundary
// cases the conformance oracle cannot isolate (kernel-boundary straddle,
// branch-target second half, TraceBlock-split pairs, mid-pair fault flush).
#include "uarch/fusion/fusion.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/program.hpp"
#include "support/fault.hpp"

namespace riscmp::uarch {
namespace {

// ---- hand-assembled encodings ---------------------------------------------

/// ld rd, imm(rs1)
constexpr std::uint32_t rvLd(unsigned rd, unsigned rs1, unsigned imm) {
  return (imm << 20) | (rs1 << 15) | (3u << 12) | (rd << 7) | 0x03;
}
/// sd rs2, 0(rs1)
constexpr std::uint32_t rvSd0(unsigned rs2, unsigned rs1) {
  return (rs2 << 20) | (rs1 << 15) | (3u << 12) | 0x23;
}
/// add rd, rs1, rs2
constexpr std::uint32_t rvAdd(unsigned rd, unsigned rs1, unsigned rs2) {
  return (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33;
}
/// addi rd, rs1, imm
constexpr std::uint32_t rvAddi(unsigned rd, unsigned rs1, unsigned imm) {
  return (imm << 20) | (rs1 << 15) | (rd << 7) | 0x13;
}
/// slli rd, rs1, shamt
constexpr std::uint32_t rvSlli(unsigned rd, unsigned rs1, unsigned sh) {
  return (sh << 20) | (rs1 << 15) | (1u << 12) | (rd << 7) | 0x13;
}
/// lui rd, imm20
constexpr std::uint32_t rvLui(unsigned rd, unsigned imm20) {
  return (imm20 << 12) | (rd << 7) | 0x37;
}
/// jal x0, +8 — the canonical "j .+8" skip
constexpr std::uint32_t kRvJalPlus8 = 0x0080006f;
/// A64 nop (decodes, never a branch)
constexpr std::uint32_t kA64Nop = 0xd503201f;
/// adrp xd, .
constexpr std::uint32_t a64Adrp(unsigned rd) { return 0x90000000u | rd; }
/// add xd, xn, #imm12
constexpr std::uint32_t a64AddImm(unsigned rd, unsigned rn, unsigned imm) {
  return 0x91000000u | (imm << 10) | (rn << 5) | rd;
}

// ---- fixtures -------------------------------------------------------------

struct Capture final : TraceObserver {
  std::vector<RetiredInst> records;
  std::size_t maxBlock = 0;
  int programEnds = 0;
  void onRetire(const RetiredInst& inst) override { records.push_back(inst); }
  void onRetireBlock(std::span<const RetiredInst> block) override {
    maxBlock = std::max(maxBlock, block.size());
    records.insert(records.end(), block.begin(), block.end());
  }
  void onProgramEnd() override { ++programEnds; }
};

/// A program whose code image is exactly `code`, covered by one kernel
/// unless `kernels` overrides it.
Program makeProgram(Arch arch, std::vector<std::uint32_t> code,
                    std::vector<Symbol> kernels = {}) {
  Program program;
  program.arch = arch;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  if (kernels.empty()) {
    kernels.push_back(Symbol{"k", program.codeBase, code.size() * 4});
  }
  program.code = std::move(code);
  program.kernels = std::move(kernels);
  return program;
}

/// A retired record for code word `index` (pc and staticIndex agree).
RetiredInst at(std::size_t index, std::uint32_t encoding,
               InstGroup group = InstGroup::IntSimple) {
  RetiredInst inst;
  inst.pc = Program::kCodeBase + index * 4;
  inst.staticIndex = static_cast<std::uint32_t>(index);
  inst.encoding = encoding;
  inst.group = group;
  return inst;
}

FusionConfig rvAll() { return FusionConfig::allRulesFor(Arch::Rv64); }
FusionConfig a64All() { return FusionConfig::allRulesFor(Arch::AArch64); }

/// Runs `stream` through a fresh pass as one block + program end and
/// returns the forwarded records via `capture`.
void run(FusionPass& pass, const std::vector<RetiredInst>& stream) {
  pass.onRetireBlock({stream.data(), stream.size()});
  pass.onProgramEnd();
}

// ---- rule catalogue metadata ----------------------------------------------

TEST(FusionRules, NamesRoundTripAndUnknownRejected) {
  for (std::size_t i = 0; i < kFusionRuleCount; ++i) {
    const auto rule = static_cast<FusionRule>(i);
    const auto back = fusionRuleFromName(fusionRuleName(rule));
    ASSERT_TRUE(back.has_value()) << fusionRuleName(rule);
    EXPECT_EQ(*back, rule);
  }
  EXPECT_FALSE(fusionRuleFromName("load_pear").has_value());
  EXPECT_FALSE(fusionRuleFromName("").has_value());
}

TEST(FusionRules, LegalityPartitionsByArch) {
  const FusionRule rv[] = {FusionRule::LoadPair, FusionRule::IndexedLoad,
                           FusionRule::IndexedStore, FusionRule::LuiAddi,
                           FusionRule::SlliAdd};
  const FusionRule a64[] = {FusionRule::CmpBcc, FusionRule::AdrpAdd};
  for (const FusionRule rule : rv) {
    EXPECT_TRUE(fusionRuleLegalFor(rule, Arch::Rv64));
    EXPECT_FALSE(fusionRuleLegalFor(rule, Arch::AArch64));
  }
  for (const FusionRule rule : a64) {
    EXPECT_FALSE(fusionRuleLegalFor(rule, Arch::Rv64));
    EXPECT_TRUE(fusionRuleLegalFor(rule, Arch::AArch64));
  }
  for (const FusionRule rule : rv) EXPECT_TRUE(rvAll().enabled(rule));
  for (const FusionRule rule : a64) EXPECT_FALSE(rvAll().enabled(rule));
  for (const FusionRule rule : a64) EXPECT_TRUE(a64All().enabled(rule));
  for (const FusionRule rule : rv) EXPECT_FALSE(a64All().enabled(rule));
}

TEST(FusionPass, ArchMismatchThrows) {
  const Program program = makeProgram(Arch::AArch64, {kA64Nop});
  EXPECT_THROW(FusionPass(rvAll(), program, {}), ValidationFault);
}

// ---- one hand-computed sequence per rule ----------------------------------

TEST(FusionPass, LoadPairFusesAdjacentSameBaseLoads) {
  const Program program =
      makeProgram(Arch::Rv64, {rvLd(5, 10, 0), rvLd(6, 10, 8)});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  RetiredInst a = at(0, rvLd(5, 10, 0), InstGroup::Load);
  a.srcs.push_back(Reg::gp(10));
  a.dsts.push_back(Reg::gp(5));
  a.loads.push_back(MemAccess{0x2000, 8});
  RetiredInst b = at(1, rvLd(6, 10, 8), InstGroup::Load);
  b.srcs.push_back(Reg::gp(10));
  b.dsts.push_back(Reg::gp(6));
  b.loads.push_back(MemAccess{0x2008, 8});

  run(pass, {a, b});

  EXPECT_EQ(pass.pairs(), 1u);
  EXPECT_EQ(pass.pairsByRule()[static_cast<std::size_t>(FusionRule::LoadPair)],
            1u);
  EXPECT_EQ(pass.inputInstructions(), 2u);
  EXPECT_EQ(pass.outputInstructions(), 1u);
  ASSERT_EQ(capture.records.size(), 1u);
  const RetiredInst& macro = capture.records[0];
  EXPECT_EQ(macro.pc, a.pc);
  EXPECT_EQ(macro.group, InstGroup::Load);
  ASSERT_EQ(macro.srcs.size(), 1u);  // shared base, deduplicated
  EXPECT_EQ(macro.srcs[0], Reg::gp(10));
  ASSERT_EQ(macro.dsts.size(), 2u);
  EXPECT_EQ(macro.dsts[0], Reg::gp(5));
  EXPECT_EQ(macro.dsts[1], Reg::gp(6));
  ASSERT_EQ(macro.loads.size(), 2u);
  EXPECT_EQ(macro.loads[1].addr, 0x2008u);
  ASSERT_EQ(pass.kernels().size(), 1u);
  EXPECT_EQ(pass.kernels()[0].pairs, 1u);
  EXPECT_EQ(capture.programEnds, 1);
}

TEST(FusionPass, LoadPairRequiresDynamicAdjacency) {
  const Program program =
      makeProgram(Arch::Rv64, {rvLd(5, 10, 0), rvLd(6, 10, 16)});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  RetiredInst a = at(0, rvLd(5, 10, 0), InstGroup::Load);
  a.loads.push_back(MemAccess{0x2000, 8});
  RetiredInst b = at(1, rvLd(6, 10, 16), InstGroup::Load);
  b.loads.push_back(MemAccess{0x2010, 8});  // gap: not addr + size

  run(pass, {a, b});
  EXPECT_EQ(pass.pairs(), 0u);
  EXPECT_EQ(capture.records.size(), 2u);
}

TEST(FusionPass, IndexedLoadDropsTheInternalEdge) {
  const Program program =
      makeProgram(Arch::Rv64, {rvAdd(7, 1, 2), rvLd(8, 7, 0)});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  RetiredInst a = at(0, rvAdd(7, 1, 2));
  a.srcs.push_back(Reg::gp(1));
  a.srcs.push_back(Reg::gp(2));
  a.dsts.push_back(Reg::gp(7));
  RetiredInst b = at(1, rvLd(8, 7, 0), InstGroup::Load);
  b.srcs.push_back(Reg::gp(7));
  b.dsts.push_back(Reg::gp(8));
  b.loads.push_back(MemAccess{0x3000, 8});

  run(pass, {a, b});

  EXPECT_EQ(
      pass.pairsByRule()[static_cast<std::size_t>(FusionRule::IndexedLoad)],
      1u);
  ASSERT_EQ(capture.records.size(), 1u);
  const RetiredInst& macro = capture.records[0];
  EXPECT_EQ(macro.group, InstGroup::Load);
  // x7 (written by A, read by B) must vanish from the external srcs.
  ASSERT_EQ(macro.srcs.size(), 2u);
  EXPECT_EQ(macro.srcs[0], Reg::gp(1));
  EXPECT_EQ(macro.srcs[1], Reg::gp(2));
  ASSERT_EQ(macro.dsts.size(), 2u);
  EXPECT_EQ(macro.dsts[0], Reg::gp(7));
  EXPECT_EQ(macro.dsts[1], Reg::gp(8));
  ASSERT_EQ(macro.loads.size(), 1u);
}

TEST(FusionPass, IndexedStoreFusesAndKeepsStoreAccess) {
  const Program program =
      makeProgram(Arch::Rv64, {rvAdd(7, 1, 2), rvSd0(9, 7)});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  RetiredInst a = at(0, rvAdd(7, 1, 2));
  a.srcs.push_back(Reg::gp(1));
  a.srcs.push_back(Reg::gp(2));
  a.dsts.push_back(Reg::gp(7));
  RetiredInst b = at(1, rvSd0(9, 7), InstGroup::Store);
  b.srcs.push_back(Reg::gp(7));
  b.srcs.push_back(Reg::gp(9));
  b.stores.push_back(MemAccess{0x4000, 8});

  run(pass, {a, b});

  EXPECT_EQ(
      pass.pairsByRule()[static_cast<std::size_t>(FusionRule::IndexedStore)],
      1u);
  ASSERT_EQ(capture.records.size(), 1u);
  const RetiredInst& macro = capture.records[0];
  EXPECT_EQ(macro.group, InstGroup::Store);
  ASSERT_EQ(macro.srcs.size(), 3u);  // x1, x2, x9 — x7 internal
  EXPECT_EQ(macro.srcs[2], Reg::gp(9));
  ASSERT_EQ(macro.stores.size(), 1u);
  EXPECT_EQ(macro.stores[0].addr, 0x4000u);
}

TEST(FusionPass, LuiAddiFusesConstantMaterialisation) {
  const Program program =
      makeProgram(Arch::Rv64, {rvLui(5, 0x12345), rvAddi(5, 5, 0x678)});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  RetiredInst a = at(0, rvLui(5, 0x12345));
  a.dsts.push_back(Reg::gp(5));
  RetiredInst b = at(1, rvAddi(5, 5, 0x678));
  b.srcs.push_back(Reg::gp(5));
  b.dsts.push_back(Reg::gp(5));

  run(pass, {a, b});

  EXPECT_EQ(pass.pairsByRule()[static_cast<std::size_t>(FusionRule::LuiAddi)],
            1u);
  ASSERT_EQ(capture.records.size(), 1u);
  const RetiredInst& macro = capture.records[0];
  EXPECT_EQ(macro.group, InstGroup::IntSimple);
  EXPECT_TRUE(macro.srcs.empty());  // fully internal: no external inputs
  ASSERT_EQ(macro.dsts.size(), 1u);
  EXPECT_EQ(macro.dsts[0], Reg::gp(5));
}

TEST(FusionPass, SlliAddFusesShiftedIndexButNotWideShifts) {
  for (const unsigned shamt : {2u, 4u}) {
    const Program program = makeProgram(
        Arch::Rv64, {rvSlli(6, 3, shamt), rvAdd(7, 5, 6)});
    Capture capture;
    FusionPass pass(rvAll(), program, {&capture});

    RetiredInst a = at(0, rvSlli(6, 3, shamt));
    a.srcs.push_back(Reg::gp(3));
    a.dsts.push_back(Reg::gp(6));
    RetiredInst b = at(1, rvAdd(7, 5, 6));
    b.srcs.push_back(Reg::gp(5));
    b.srcs.push_back(Reg::gp(6));
    b.dsts.push_back(Reg::gp(7));

    run(pass, {a, b});

    // Zba shNadd covers shifts 1..3 only; shamt 4 must stay unfused.
    const std::uint64_t expected = shamt <= 3 ? 1u : 0u;
    EXPECT_EQ(
        pass.pairsByRule()[static_cast<std::size_t>(FusionRule::SlliAdd)],
        expected)
        << "shamt=" << shamt;
    if (expected == 1) {
      ASSERT_EQ(capture.records.size(), 1u);
      ASSERT_EQ(capture.records[0].srcs.size(), 2u);  // x3, x5 — x6 internal
      EXPECT_EQ(capture.records[0].srcs[0], Reg::gp(3));
      EXPECT_EQ(capture.records[0].srcs[1], Reg::gp(5));
    }
  }
}

TEST(FusionPass, CmpBccFusesFlagProducerWithConsumingBranch) {
  const Program program = makeProgram(Arch::AArch64, {kA64Nop, kA64Nop});
  Capture capture;
  FusionPass pass(a64All(), program, {&capture});

  RetiredInst a = at(0, 0xeb02003f);  // cmp x1, x2 (subs xzr, ...)
  a.srcs.push_back(Reg::gp(1));
  a.srcs.push_back(Reg::gp(2));
  a.dsts.push_back(Reg::flags());
  RetiredInst b = at(1, 0x54000041, InstGroup::Branch);  // b.ne
  b.srcs.push_back(Reg::flags());
  b.isBranch = true;
  b.branchTaken = true;
  b.branchTarget = Program::kCodeBase + 0x40;

  run(pass, {a, b});

  EXPECT_EQ(pass.pairsByRule()[static_cast<std::size_t>(FusionRule::CmpBcc)],
            1u);
  ASSERT_EQ(capture.records.size(), 1u);
  const RetiredInst& macro = capture.records[0];
  EXPECT_EQ(macro.group, InstGroup::Branch);
  EXPECT_TRUE(macro.isBranch);
  EXPECT_TRUE(macro.branchTaken);
  EXPECT_EQ(macro.branchTarget, Program::kCodeBase + 0x40);
  // flags is A's dst, so B's flags read is internal.
  ASSERT_EQ(macro.srcs.size(), 2u);
  ASSERT_EQ(macro.dsts.size(), 1u);
  EXPECT_EQ(macro.dsts[0], Reg::flags());
}

TEST(FusionPass, AdrpAddFusesAddressFormation) {
  const Program program =
      makeProgram(Arch::AArch64, {a64Adrp(1), a64AddImm(2, 1, 0x123)});
  Capture capture;
  FusionPass pass(a64All(), program, {&capture});

  RetiredInst a = at(0, a64Adrp(1));
  a.dsts.push_back(Reg::gp(1));
  RetiredInst b = at(1, a64AddImm(2, 1, 0x123));
  b.srcs.push_back(Reg::gp(1));
  b.dsts.push_back(Reg::gp(2));

  run(pass, {a, b});

  EXPECT_EQ(pass.pairsByRule()[static_cast<std::size_t>(FusionRule::AdrpAdd)],
            1u);
  ASSERT_EQ(capture.records.size(), 1u);
  EXPECT_TRUE(capture.records[0].srcs.empty());
}

// ---- negative cases -------------------------------------------------------

TEST(FusionPass, PairStraddlingKernelBoundaryDoesNotFuse) {
  // add ends kernel k1; the consuming load opens kernel k2. Matches
  // indexed_load on encodings alone, but the pair straddles the boundary.
  const std::vector<std::uint32_t> code = {rvAddi(0, 0, 0), rvAdd(7, 1, 2),
                                           rvLd(8, 7, 0), rvAddi(0, 0, 0)};
  const Program program = makeProgram(
      Arch::Rv64, code,
      {Symbol{"k1", Program::kCodeBase, 8},
       Symbol{"k2", Program::kCodeBase + 8, 8}});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  RetiredInst a = at(1, rvAdd(7, 1, 2));
  a.dsts.push_back(Reg::gp(7));
  RetiredInst b = at(2, rvLd(8, 7, 0), InstGroup::Load);
  b.srcs.push_back(Reg::gp(7));
  b.loads.push_back(MemAccess{0x3000, 8});

  run(pass, {a, b});

  EXPECT_EQ(pass.pairs(), 0u);
  EXPECT_EQ(capture.records.size(), 2u);
  for (const FusionPass::KernelFusion& kernel : pass.kernels()) {
    EXPECT_EQ(kernel.pairs, 0u) << kernel.name;
  }
}

TEST(FusionPass, BranchTargetSecondInstructionDoesNotFuse) {
  // Word 0 is "j .+8", so word 2 — the load — is a static branch target:
  // the pair could be entered in the middle and must not fuse. Replacing
  // the jump with a non-branch makes the identical stream fuse.
  for (const bool targeted : {true, false}) {
    const std::vector<std::uint32_t> code = {
        targeted ? kRvJalPlus8 : rvAddi(0, 0, 0), rvAdd(7, 1, 2),
        rvLd(8, 7, 0)};
    const Program program = makeProgram(Arch::Rv64, code);
    Capture capture;
    FusionPass pass(rvAll(), program, {&capture});

    RetiredInst a = at(1, rvAdd(7, 1, 2));
    a.dsts.push_back(Reg::gp(7));
    RetiredInst b = at(2, rvLd(8, 7, 0), InstGroup::Load);
    b.srcs.push_back(Reg::gp(7));
    b.loads.push_back(MemAccess{0x3000, 8});

    run(pass, {a, b});

    EXPECT_EQ(pass.pairs(), targeted ? 0u : 1u) << "targeted=" << targeted;
    EXPECT_EQ(capture.records.size(), targeted ? 2u : 1u);
  }
}

TEST(FusionPass, NonAdjacentPcsDoNotFuse) {
  const Program program = makeProgram(
      Arch::Rv64, {rvAdd(7, 1, 2), rvAddi(0, 0, 0), rvLd(8, 7, 0)});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  // The add retires at word 0, the load at word 2: not pc-adjacent (the
  // dynamic stream skipped a word via some path not visible here).
  RetiredInst a = at(0, rvAdd(7, 1, 2));
  a.dsts.push_back(Reg::gp(7));
  RetiredInst b = at(2, rvLd(8, 7, 0), InstGroup::Load);
  b.srcs.push_back(Reg::gp(7));
  b.loads.push_back(MemAccess{0x3000, 8});

  run(pass, {a, b});
  EXPECT_EQ(pass.pairs(), 0u);
  EXPECT_EQ(capture.records.size(), 2u);
}

TEST(FusionPass, DisabledRuleDoesNotFire) {
  const Program program =
      makeProgram(Arch::Rv64, {rvAdd(7, 1, 2), rvLd(8, 7, 0)});
  FusionConfig config;
  config.arch = Arch::Rv64;
  config.enable(FusionRule::LoadPair);  // indexed_load left disabled
  Capture capture;
  FusionPass pass(config, program, {&capture});

  RetiredInst a = at(0, rvAdd(7, 1, 2));
  a.dsts.push_back(Reg::gp(7));
  RetiredInst b = at(1, rvLd(8, 7, 0), InstGroup::Load);
  b.srcs.push_back(Reg::gp(7));
  b.loads.push_back(MemAccess{0x3000, 8});

  run(pass, {a, b});
  EXPECT_EQ(pass.pairs(), 0u);
  EXPECT_EQ(capture.records.size(), 2u);
}

TEST(FusionPass, GreedyPairingNeverOverlaps) {
  // Three adjacent same-base loads: greedy left-to-right fuses (1,2) and
  // leaves 3 unfused — never the overlapping (2,3).
  const Program program = makeProgram(
      Arch::Rv64, {rvLd(5, 10, 0), rvLd(6, 10, 8), rvLd(7, 10, 16)});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  std::vector<RetiredInst> stream;
  for (std::size_t i = 0; i < 3; ++i) {
    RetiredInst inst = at(i, rvLd(5 + static_cast<unsigned>(i), 10,
                                  static_cast<unsigned>(i) * 8),
                          InstGroup::Load);
    inst.srcs.push_back(Reg::gp(10));
    inst.dsts.push_back(Reg::gp(5 + static_cast<unsigned>(i)));
    inst.loads.push_back(MemAccess{0x2000 + i * 8, 8});
    stream.push_back(inst);
  }

  run(pass, stream);
  EXPECT_EQ(pass.pairs(), 1u);
  ASSERT_EQ(capture.records.size(), 2u);
  EXPECT_EQ(capture.records[0].loads.size(), 2u);  // the fused (1,2)
  EXPECT_EQ(capture.records[1].loads.size(), 1u);  // 3 alone
  EXPECT_EQ(pass.inputInstructions(),
            pass.outputInstructions() + pass.pairs());
}

TEST(FusionPass, PairOutsideEveryKernelCountsAsUnattributed) {
  const Program program = makeProgram(
      Arch::Rv64, {rvAddi(0, 0, 0)},
      {Symbol{"k", Program::kCodeBase, 4}});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  // Both records execute far outside the code image (no staticIndex, pc
  // beyond every kernel region) — e.g. a runtime stub.
  RetiredInst a;
  a.pc = 0x20000;
  a.encoding = rvAdd(7, 1, 2);
  a.dsts.push_back(Reg::gp(7));
  RetiredInst b;
  b.pc = 0x20004;
  b.encoding = rvLd(8, 7, 0);
  b.group = InstGroup::Load;
  b.srcs.push_back(Reg::gp(7));
  b.loads.push_back(MemAccess{0x3000, 8});

  run(pass, {a, b});
  EXPECT_EQ(pass.pairs(), 1u);
  EXPECT_EQ(pass.unattributedPairs(), 1u);
  ASSERT_EQ(pass.kernels().size(), 1u);
  EXPECT_EQ(pass.kernels()[0].pairs, 0u);
}

// ---- block-boundary and fault regressions ---------------------------------

TEST(FusionPass, PairSplitAcrossTraceBlocksStillFuses) {
  // A fusable add/load pair whose halves arrive in different
  // kTraceBlockCapacity-record blocks: the pending candidate must carry
  // across the onRetireBlock boundary (ISSUE 8 regression).
  const std::size_t total = kTraceBlockCapacity + 1;
  std::vector<std::uint32_t> code(total, rvAddi(5, 5, 1));
  code[kTraceBlockCapacity - 1] = rvAdd(7, 1, 2);
  code[kTraceBlockCapacity] = rvLd(8, 7, 0);
  const Program program = makeProgram(Arch::Rv64, code);
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  std::vector<RetiredInst> stream;
  stream.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    RetiredInst inst = at(i, code[i]);
    if (code[i] == rvAdd(7, 1, 2)) {
      inst.srcs.push_back(Reg::gp(1));
      inst.srcs.push_back(Reg::gp(2));
      inst.dsts.push_back(Reg::gp(7));
    } else if (code[i] == rvLd(8, 7, 0)) {
      inst.group = InstGroup::Load;
      inst.srcs.push_back(Reg::gp(7));
      inst.dsts.push_back(Reg::gp(8));
      inst.loads.push_back(MemAccess{0x3000, 8});
    } else {
      inst.srcs.push_back(Reg::gp(5));
      inst.dsts.push_back(Reg::gp(5));
    }
    stream.push_back(inst);
  }

  pass.onRetireBlock({stream.data(), kTraceBlockCapacity});
  pass.onRetireBlock({stream.data() + kTraceBlockCapacity, 1});
  pass.onProgramEnd();

  EXPECT_EQ(pass.pairs(), 1u);
  EXPECT_EQ(
      pass.pairsByRule()[static_cast<std::size_t>(FusionRule::IndexedLoad)],
      1u);
  EXPECT_EQ(pass.inputInstructions(), total);
  EXPECT_EQ(pass.outputInstructions(), total - 1);
  EXPECT_EQ(capture.records.size(), total - 1);
  EXPECT_LE(capture.maxBlock, kTraceBlockCapacity);
  EXPECT_EQ(capture.programEnds, 1);
  // The macro-op sits where the add was.
  EXPECT_EQ(capture.records[kTraceBlockCapacity - 1].group, InstGroup::Load);
  EXPECT_EQ(capture.records[kTraceBlockCapacity - 1].pc,
            Program::kCodeBase + (kTraceBlockCapacity - 1) * 4);
}

TEST(FusionPass, FlushDeliversDeferredRecordAfterMidPairFault) {
  // The machine flushes retired blocks before a fault propagates but never
  // calls onProgramEnd; the harness must be able to flush() the deferred
  // candidate so downstream analyzers see every retired instruction.
  const Program program =
      makeProgram(Arch::Rv64, {rvAdd(7, 1, 2), rvLd(8, 7, 0)});
  Capture capture;
  FusionPass pass(rvAll(), program, {&capture});

  RetiredInst a = at(0, rvAdd(7, 1, 2));
  a.dsts.push_back(Reg::gp(7));
  pass.onRetireBlock({&a, 1});

  // First half retired, second half faulted: nothing forwarded yet.
  EXPECT_EQ(capture.records.size(), 0u);
  EXPECT_EQ(pass.inputInstructions(), 1u);
  EXPECT_EQ(pass.outputInstructions(), 0u);

  pass.flush();
  ASSERT_EQ(capture.records.size(), 1u);
  EXPECT_EQ(capture.records[0].pc, a.pc);
  EXPECT_EQ(pass.outputInstructions(), 1u);
  EXPECT_EQ(capture.programEnds, 0);  // flush() does not signal program end

  pass.flush();  // idempotent
  EXPECT_EQ(capture.records.size(), 1u);
}

}  // namespace
}  // namespace riscmp::uarch
