// Cross-ISA throughput-bound identity (ISSUE 7 satellite): tx2 and
// riscv-tx2 are identical by construction apart from the name, so their
// ThroughputModels must agree structurally, and the analyzer must produce
// identical bounds for the same trace on either — the E12 cross-ISA
// comparison reads per-kernel ratios as pure ISA effects on that basis.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/throughput_bound.hpp"
#include "uarch/core_model.hpp"

namespace riscmp::uarch {
namespace {

std::vector<RetiredInst> mixedTrace() {
  std::vector<RetiredInst> trace;
  for (int i = 0; i < 64; ++i) {
    RetiredInst load;
    load.pc = 0x1000;
    load.group = InstGroup::Load;
    load.dsts.push_back(Reg::gp(1));
    load.loads.push_back(
        MemAccess{0x10000 + 8 * static_cast<std::uint64_t>(i), 8});
    trace.push_back(load);
    RetiredInst add;
    add.pc = 0x1004;
    add.group = InstGroup::IntSimple;
    add.srcs.push_back(Reg::gp(1));
    add.dsts.push_back(Reg::gp(2));
    trace.push_back(add);
    RetiredInst mul;
    mul.pc = 0x1008;
    mul.group = InstGroup::FpMul;
    mul.dsts.push_back(Reg::fp(1));
    trace.push_back(mul);
  }
  return trace;
}

TEST(ThroughputCrossIsa, Tx2AndRiscvTx2ModelsStructurallyIdentical) {
  const ThroughputModel a64 = CoreModel::named("tx2").throughputModel();
  const ThroughputModel rv64 =
      CoreModel::named("riscv-tx2").throughputModel();
  EXPECT_EQ(a64.issueWidth, rv64.issueWidth);
  ASSERT_EQ(a64.ports.size(), rv64.ports.size());
  for (std::size_t p = 0; p < a64.ports.size(); ++p) {
    EXPECT_EQ(a64.ports[p].name, rv64.ports[p].name);
    EXPECT_EQ(a64.ports[p].groupMask, rv64.ports[p].groupMask);
  }
  EXPECT_EQ(a64.latencies, rv64.latencies);
  for (std::size_t g = 0; g < kInstGroupCount; ++g) {
    const InstGroup group = static_cast<InstGroup>(g);
    EXPECT_EQ(a64.portMultiplicity(group), rv64.portMultiplicity(group));
    EXPECT_DOUBLE_EQ(a64.reciprocalThroughput(group),
                     rv64.reciprocalThroughput(group));
  }
}

TEST(ThroughputCrossIsa, SameTraceSameBoundsOnEitherModel) {
  Program program;
  program.kernels = {{"kernel", 0x1000, 0x100}};
  ThroughputBoundAnalyzer a64(CoreModel::named("tx2").throughputModel(),
                              program);
  ThroughputBoundAnalyzer rv64(
      CoreModel::named("riscv-tx2").throughputModel(), program);
  for (const RetiredInst& inst : mixedTrace()) {
    a64.onRetire(inst);
    rv64.onRetire(inst);
  }
  const auto boundsA = a64.kernels();
  const auto boundsR = rv64.kernels();
  ASSERT_EQ(boundsA.size(), 1u);
  ASSERT_EQ(boundsR.size(), 1u);
  EXPECT_EQ(boundsA[0].portCycles, boundsR[0].portCycles);
  EXPECT_EQ(boundsA[0].portBound, boundsR[0].portBound);
  EXPECT_EQ(boundsA[0].bindingPort, boundsR[0].bindingPort);
  EXPECT_EQ(boundsA[0].issueBound, boundsR[0].issueBound);
  EXPECT_EQ(boundsA[0].cpBound, boundsR[0].cpBound);
  EXPECT_EQ(boundsA[0].bindingResource(), boundsR[0].bindingResource());
}

}  // namespace
}  // namespace riscmp::uarch
