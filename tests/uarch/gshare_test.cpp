#include <gtest/gtest.h>

#include "uarch/ooo_core.hpp"

namespace riscmp::uarch {
namespace {

CoreModel gshareModel(unsigned bits = 10) {
  CoreModel model;
  model.dispatchWidth = 4;
  model.commitWidth = 4;
  model.robSize = 64;
  model.predictor = BranchPredictor::Gshare;
  model.gshareBits = bits;
  model.mispredictPenalty = 10;
  Port port;
  port.name = "any";
  port.groupMask = ~0u;
  model.ports = {port, port, port, port};
  return model;
}

RetiredInst branchAt(std::uint64_t pc, bool taken) {
  RetiredInst inst;
  inst.pc = pc;
  inst.group = InstGroup::Branch;
  inst.isBranch = true;
  inst.branchTaken = taken;
  inst.branchTarget = pc + 0x40;
  return inst;
}

TEST(Gshare, LearnsAStableBranch) {
  OoOCoreModel core(gshareModel());
  // Always-taken branch at a fixed pc: after warm-up the predictor is
  // always right.
  for (int i = 0; i < 200; ++i) core.onRetire(branchAt(0x1000, true));
  EXPECT_LE(core.mispredicts(), 2u);  // at most the warm-up
}

TEST(Gshare, LearnsAnAlternatingPattern) {
  // Taken/not-taken alternation is captured through global history.
  OoOCoreModel core(gshareModel());
  for (int i = 0; i < 400; ++i) core.onRetire(branchAt(0x2000, i % 2 == 0));
  // After the counters warm up, the alternation is predictable.
  EXPECT_LT(core.mispredicts(), 40u);
}

TEST(Gshare, RandomPatternMispredictsOften) {
  OoOCoreModel core(gshareModel());
  std::uint64_t lcg = 12345;
  std::uint64_t mispredictable = 0;
  for (int i = 0; i < 400; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const bool taken = (lcg >> 40) & 1;
    mispredictable += taken;
    core.onRetire(branchAt(0x3000, taken));
  }
  // A random stream defeats any predictor: expect a sizeable rate.
  EXPECT_GT(core.mispredicts(), 100u);
}

TEST(Gshare, CostsCyclesComparedToPerfect) {
  CoreModel perfect = gshareModel();
  perfect.predictor = BranchPredictor::Perfect;
  OoOCoreModel withGshare(gshareModel());
  OoOCoreModel withPerfect(perfect);
  std::uint64_t lcg = 999;
  for (int i = 0; i < 500; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const RetiredInst inst = branchAt(0x4000 + (i % 8) * 4, (lcg >> 33) & 1);
    withGshare.onRetire(inst);
    withPerfect.onRetire(inst);
  }
  EXPECT_GT(withGshare.cycles(), withPerfect.cycles());
}

TEST(Gshare, ConfigParsesFromYaml) {
  const CoreModel model = CoreModel::fromYaml(yaml::parse(
      "core:\n"
      "  predictor: gshare\n"
      "  gshare_bits: 8\n"
      "  mispredict_penalty: 14\n"));
  EXPECT_EQ(model.predictor, BranchPredictor::Gshare);
  EXPECT_EQ(model.gshareBits, 8u);
  EXPECT_EQ(model.mispredictPenalty, 14u);
}

}  // namespace
}  // namespace riscmp::uarch
