// Load-time validation of core-model configs (ISSUE 1 satellite): every
// malformed fixture must be rejected with a ConfigError naming the config
// path, and where possible the offending line and key.
#include <gtest/gtest.h>

#include <string>

#include "support/fault.hpp"
#include "uarch/core_model.hpp"

namespace riscmp::uarch {
namespace {

std::string fixture(const std::string& name) {
  return std::string(RISCMP_FIXTURE_DIR) + "/" + name;
}

template <typename Check>
void expectRejected(const std::string& name, Check check) {
  const std::string path = fixture(name);
  try {
    CoreModel::fromFile(path);
    FAIL() << name << " should have been rejected";
  } catch (const ConfigError& e) {
    EXPECT_NE(e.file().find(name), std::string::npos)
        << "error must name the config path: " << e.what();
    check(e);
  }
}

TEST(CoreModelValidation, NonNumericLatencyRejectedWithLine) {
  expectRejected("latency_not_a_number.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("'fast'"), std::string::npos);
  });
}

TEST(CoreModelValidation, MissingGroupsKeyRejected) {
  expectRejected("missing_groups.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "groups");
    EXPECT_NE(std::string(e.what()).find("missing required key"),
              std::string::npos);
  });
}

TEST(CoreModelValidation, UnknownInstructionGroupRejectedWithLine) {
  expectRejected("unknown_group.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("INT_BOGUS"), std::string::npos);
  });
}

TEST(CoreModelValidation, UnknownTopLevelKeyRejected) {
  expectRejected("unknown_top_key.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "latncies");
    EXPECT_NE(std::string(e.what()).find("unknown key"), std::string::npos);
  });
}

TEST(CoreModelValidation, OutOfRangeLatencyRejected) {
  expectRejected("broken_tx2.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "LOAD");
    EXPECT_NE(std::string(e.what()).find("[1, 4096]"), std::string::npos);
  });
}

TEST(CoreModelValidation, CacheZeroWaysRejectedWithLine) {
  expectRejected("cache_zero_ways.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "ways");
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("positive integer"),
              std::string::npos);
  });
}

TEST(CoreModelValidation, CacheNonPowerOfTwoLineSizeRejected) {
  expectRejected("cache_bad_line_bytes.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "line_bytes");
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("power of two"), std::string::npos);
  });
}

TEST(CoreModelValidation, CacheNonPowerOfTwoSetCountRejected) {
  expectRejected("cache_bad_sets.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "l1d.size_kib");
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("power of two"), std::string::npos);
  });
}

TEST(CoreModelValidation, CacheIndivisibleSizeRejected) {
  expectRejected("cache_indivisible.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "l1d.size_kib");
    EXPECT_EQ(e.line(), 6);
    EXPECT_NE(std::string(e.what()).find("whole sets"), std::string::npos);
  });
}

TEST(CoreModelValidation, CacheL2SmallerThanL1Rejected) {
  expectRejected("cache_l2_smaller.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "l2.size_kib");
    EXPECT_EQ(e.line(), 7);
    EXPECT_NE(std::string(e.what()).find("at least as large"),
              std::string::npos);
  });
}

TEST(CoreModelValidation, CacheL2LineMismatchRejectedWithLine) {
  // ISSUE 10 satellite: the hierarchy models ONE line geometry; an L2
  // declaring a different line size would silently mis-count straddles.
  expectRejected("cache_l2_line_mismatch.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "l2.line_bytes");
    EXPECT_EQ(e.line(), 14);
    EXPECT_NE(std::string(e.what()).find("differs from L1's line size"),
              std::string::npos);
  });
}

TEST(CoreModelValidation, TlbBadPageBytesRejectedWithLine) {
  expectRejected("tlb_bad_page_bytes.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "page_bytes");
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("power of two"), std::string::npos);
  });
}

TEST(CoreModelValidation, TlbIndivisibleEntriesRejectedWithLine) {
  expectRejected("tlb_bad_entries.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "l2_entries");
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("not divisible into sets"),
              std::string::npos);
  });
}

TEST(CoreModelValidation, LatencyForUncoveredGroupRejected) {
  // ISSUE 7: a group the config gives a latency but no port accepts would
  // bypass the OoO issue stage's structural hazards entirely; reject it at
  // load time with the latency entry's provenance.
  expectRejected("port_uncovered_group.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "FP_DIV");
    EXPECT_EQ(e.line(), 9);
    EXPECT_NE(std::string(e.what()).find("no port accepts"),
              std::string::npos);
  });
}

TEST(CoreModelValidation, ShippedConfigsCoverEveryGroupWithPorts) {
  // Every group in every shipped model's latency table must be accepted by
  // at least one port, so the throughput analyzer and the OoO model can
  // issue any retired instruction.
  for (const char* name : {"tx2", "riscv-tx2", "m1-firestorm", "a64fx"}) {
    const ThroughputModel model = CoreModel::named(name).throughputModel();
    for (std::size_t g = 0; g < kInstGroupCount; ++g) {
      EXPECT_GE(model.portMultiplicity(static_cast<InstGroup>(g)), 1u)
          << name << " leaves " << instGroupName(static_cast<InstGroup>(g))
          << " uncovered";
    }
  }
}

TEST(CoreModelValidation, ShippedConfigsAllLoad) {
  // The validator must not reject the real models the benches depend on.
  for (const char* name : {"tx2", "riscv-tx2", "m1-firestorm", "a64fx"}) {
    EXPECT_NO_THROW(CoreModel::named(name)) << name;
  }
}

TEST(CoreModelValidation, FusionUnknownRuleRejectedWithLine) {
  expectRejected("fusion_unknown_rule.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "rules");
    EXPECT_EQ(e.line(), 6);
    EXPECT_NE(std::string(e.what()).find("'load_pear'"), std::string::npos);
  });
}

TEST(CoreModelValidation, FusionIsaIllegalRuleRejectedWithLine) {
  // cmp_bcc under isa rv64: RISC-V branches are natively fused
  // compare-and-branch, so the rule is meaningless there and must be
  // rejected at load time rather than silently firing zero times.
  expectRejected("fusion_wrong_isa_rule.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "rules");
    EXPECT_EQ(e.line(), 8);
    EXPECT_NE(std::string(e.what()).find("illegal for isa rv64"),
              std::string::npos);
  });
}

TEST(CoreModelValidation, FusionMissingIsaRejected) {
  expectRejected("fusion_missing_isa.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "isa");
    EXPECT_NE(std::string(e.what()).find("missing required key"),
              std::string::npos);
  });
}

TEST(CoreModelValidation, FusionUnknownIsaRejectedWithLine) {
  expectRejected("fusion_bad_isa.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "isa");
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("'arm64'"), std::string::npos);
  });
}

TEST(CoreModelValidation, FusionDuplicateRuleRejectedWithLine) {
  expectRejected("fusion_duplicate_rule.yaml", [](const ConfigError& e) {
    EXPECT_EQ(e.key(), "rules");
    EXPECT_EQ(e.line(), 7);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  });
}

TEST(CoreModelValidation, ShippedConfigsCarryFusion) {
  // ISSUE 8: every shipped model declares its fusion rules. riscv-tx2 gets
  // the five Celio RV64 idioms; the A64 models get cmp_bcc plus the
  // zero-fire adrp_add control.
  for (const char* name : {"tx2", "riscv-tx2", "m1-firestorm", "a64fx"}) {
    EXPECT_TRUE(CoreModel::named(name).fusion.has_value()) << name;
  }
  const FusionConfig rv = *CoreModel::named("riscv-tx2").fusion;
  EXPECT_EQ(rv.arch, Arch::Rv64);
  EXPECT_EQ(rv.ruleMask, FusionConfig::allRulesFor(Arch::Rv64).ruleMask);
  const FusionConfig a64 = *CoreModel::named("tx2").fusion;
  EXPECT_EQ(a64.arch, Arch::AArch64);
  EXPECT_EQ(a64.ruleMask, FusionConfig::allRulesFor(Arch::AArch64).ruleMask);
}

TEST(CoreModelValidation, ShippedConfigsCarryCaches) {
  // Every shipped model gains a caches: section in ISSUE 5, and the two
  // TX2-class models must agree exactly — the E11 cross-ISA comparison is
  // only meaningful over identical geometry.
  for (const char* name : {"tx2", "riscv-tx2", "m1-firestorm", "a64fx"}) {
    EXPECT_TRUE(CoreModel::named(name).caches.has_value()) << name;
  }
  const CoreModel tx2 = CoreModel::named("tx2");
  const CoreModel riscvTx2 = CoreModel::named("riscv-tx2");
  EXPECT_TRUE(*tx2.caches == *riscvTx2.caches);
  EXPECT_EQ(tx2.caches->l1Sets(), 64u);    // 32 KiB / (8 x 64 B)
  EXPECT_EQ(tx2.caches->l2Sets(), 512u);   // 256 KiB / (8 x 64 B)
  EXPECT_EQ(tx2.caches->prefetch, mem::PrefetchKind::Stride);
}

TEST(CoreModelValidation, ShippedConfigsCarryMemSystem) {
  // ISSUE 10: every shipped model declares MSHRs, peak bandwidth, and a
  // TLB, so E14 can bound any config it is pointed at.
  for (const char* name : {"tx2", "riscv-tx2", "m1-firestorm", "a64fx"}) {
    const CoreModel model = CoreModel::named(name);
    ASSERT_TRUE(model.caches.has_value()) << name;
    EXPECT_GT(model.caches->mshrs, 0u) << name;
    EXPECT_GT(model.caches->memBytesPerCycle, 0u) << name;
    EXPECT_TRUE(model.caches->tlb.has_value()) << name;
  }
  const CoreModel tx2 = CoreModel::named("tx2");
  EXPECT_EQ(tx2.caches->mshrs, 16u);
  EXPECT_EQ(tx2.caches->memBytesPerCycle, 8u);
  EXPECT_EQ(tx2.caches->tlb->pageBytes, 4096u);
  EXPECT_EQ(tx2.caches->tlb->l1Sets(), 1u);  // fully associative
}

}  // namespace
}  // namespace riscmp::uarch
