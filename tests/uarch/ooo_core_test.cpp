#include <gtest/gtest.h>

#include <vector>

#include "support/fault.hpp"
#include "uarch/ooo_core.hpp"

namespace riscmp::uarch {
namespace {

CoreModel makeModel(unsigned width, unsigned rob,
                    unsigned intLatency = 1) {
  CoreModel model;
  model.fetchWidth = width;
  model.dispatchWidth = width;
  model.commitWidth = width;
  model.robSize = rob;
  model.clockGhz = 2.0;
  // One wide port accepting everything avoids port effects unless a test
  // configures ports explicitly.
  Port port;
  port.name = "any";
  port.groupMask = ~0u;
  model.ports = {port, port, port, port, port, port, port, port};
  model.latencies = unitLatencies();
  model.latencies[static_cast<std::size_t>(InstGroup::IntSimple)] = intLatency;
  return model;
}

RetiredInst alu(std::initializer_list<unsigned> srcs, unsigned dst,
                InstGroup group = InstGroup::IntSimple) {
  RetiredInst inst;
  inst.group = group;
  for (const unsigned src : srcs) inst.srcs.push_back(Reg::gp(src));
  inst.dsts.push_back(Reg::gp(dst));
  return inst;
}

TEST(OoOCore, SerialChainBoundByLatency) {
  OoOCoreModel core(makeModel(4, 128, 3));
  for (int i = 0; i < 100; ++i) core.onRetire(alu({1}, 1));
  // Each instruction waits for the previous one's 3-cycle latency.
  EXPECT_NEAR(core.cpi(), 3.0, 0.2);
}

TEST(OoOCore, IndependentStreamBoundByWidth) {
  OoOCoreModel core(makeModel(4, 128));
  for (int i = 0; i < 400; ++i) core.onRetire(alu({}, 1 + (i % 16)));
  EXPECT_NEAR(core.ipc(), 4.0, 0.3);
}

TEST(OoOCore, WiderCoreRunsFaster) {
  OoOCoreModel narrow(makeModel(2, 128));
  OoOCoreModel wide(makeModel(8, 128));
  for (int i = 0; i < 400; ++i) {
    const RetiredInst inst = alu({}, 1 + (i % 16));
    narrow.onRetire(inst);
    wide.onRetire(inst);
  }
  EXPECT_LT(wide.cycles(), narrow.cycles());
  EXPECT_NEAR(narrow.ipc(), 2.0, 0.2);
}

TEST(OoOCore, RobLimitsOverlapOfLongLatencyOps) {
  // A long FP op followed by many independent ints: with a tiny ROB the
  // ints cannot dispatch past the stalled head.
  CoreModel smallRob = makeModel(4, 4);
  smallRob.latencies[static_cast<std::size_t>(InstGroup::FpDiv)] = 40;
  CoreModel bigRob = makeModel(4, 256);
  bigRob.latencies[static_cast<std::size_t>(InstGroup::FpDiv)] = 40;
  OoOCoreModel small(smallRob);
  OoOCoreModel big(bigRob);
  for (int block = 0; block < 10; ++block) {
    const RetiredInst divide = alu({}, 20, InstGroup::FpDiv);
    small.onRetire(divide);
    big.onRetire(divide);
    for (int i = 0; i < 30; ++i) {
      const RetiredInst inst = alu({}, 1 + (i % 8));
      small.onRetire(inst);
      big.onRetire(inst);
    }
  }
  EXPECT_GT(small.cycles(), big.cycles() * 2);
}

TEST(OoOCore, PortContentionSerialisesSameGroup) {
  CoreModel model = makeModel(8, 256);
  Port fp;
  fp.name = "fp";
  fp.groupMask = 1u << static_cast<unsigned>(InstGroup::FpAdd);
  Port any;
  any.name = "any";
  any.groupMask = ~0u & ~fp.groupMask;
  model.ports = {fp, any, any, any};
  OoOCoreModel core(model);
  // Independent FP adds all fight for the single FP port.
  for (int i = 0; i < 200; ++i) {
    core.onRetire(alu({}, 1 + (i % 16), InstGroup::FpAdd));
  }
  EXPECT_NEAR(core.ipc(), 1.0, 0.1);
}

TEST(OoOCore, StoreToLoadForwardingOrdersMemory) {
  OoOCoreModel core(makeModel(4, 64));
  for (int i = 0; i < 50; ++i) {
    RetiredInst st;
    st.group = InstGroup::Store;
    st.srcs.push_back(Reg::gp(1));
    st.stores.push_back(MemAccess{0x100, 8});
    core.onRetire(st);
    RetiredInst ld;
    ld.group = InstGroup::Load;
    ld.dsts.push_back(Reg::gp(1));
    ld.loads.push_back(MemAccess{0x100, 8});
    core.onRetire(ld);
  }
  // Serial store->load chain: each pair costs at least store latency (1)
  // plus load latency (1 by default here).
  EXPECT_GE(core.cpi(), 0.9);
}

TEST(OoOCore, StaticPredictorChargesMispredicts) {
  CoreModel model = makeModel(4, 128);
  model.predictor = BranchPredictor::Static;
  model.mispredictPenalty = 10;
  OoOCoreModel withPenalty(model);
  OoOCoreModel perfect(makeModel(4, 128));

  for (int i = 0; i < 100; ++i) {
    RetiredInst branch;
    branch.group = InstGroup::Branch;
    branch.pc = 0x1000;
    branch.isBranch = true;
    branch.branchTaken = true;
    branch.branchTarget = 0x2000;  // forward taken => static mispredict
    withPenalty.onRetire(branch);
    perfect.onRetire(branch);
    for (int j = 0; j < 3; ++j) {
      withPenalty.onRetire(alu({}, 1 + j));
      perfect.onRetire(alu({}, 1 + j));
    }
  }
  EXPECT_EQ(withPenalty.mispredicts(), 100u);
  EXPECT_EQ(perfect.mispredicts(), 0u);
  EXPECT_GT(withPenalty.cycles(), perfect.cycles() * 3);
}

TEST(OoOCore, BackwardTakenBranchesPredictedByStatic) {
  CoreModel model = makeModel(4, 128);
  model.predictor = BranchPredictor::Static;
  model.mispredictPenalty = 10;
  OoOCoreModel core(model);
  RetiredInst loopBranch;
  loopBranch.group = InstGroup::Branch;
  loopBranch.pc = 0x2000;
  loopBranch.isBranch = true;
  loopBranch.branchTaken = true;
  loopBranch.branchTarget = 0x1000;  // backward taken: predicted correctly
  for (int i = 0; i < 50; ++i) core.onRetire(loopBranch);
  EXPECT_EQ(core.mispredicts(), 0u);
}

TEST(OoOCore, SelfTargetAndZeroTargetBranchesPredictedNotTaken) {
  // ISSUE 7 satellite: the old `branchTarget <= pc` heuristic predicted a
  // self-target branch (target == pc) and an unknown-target indirect
  // branch (target 0) taken. Strictly-backward semantics send both to the
  // not-taken side, so when they ARE taken they must count as mispredicts.
  CoreModel model = makeModel(4, 128);
  model.predictor = BranchPredictor::Static;
  model.mispredictPenalty = 10;
  OoOCoreModel core(model);

  RetiredInst selfTarget;
  selfTarget.group = InstGroup::Branch;
  selfTarget.pc = 0x2000;
  selfTarget.isBranch = true;
  selfTarget.branchTaken = true;
  selfTarget.branchTarget = 0x2000;  // target == pc: not a backward edge
  for (int i = 0; i < 10; ++i) core.onRetire(selfTarget);
  EXPECT_EQ(core.mispredicts(), 10u);

  RetiredInst indirect = selfTarget;
  indirect.branchTarget = 0;  // unknown target: no direction to predict
  for (int i = 0; i < 10; ++i) core.onRetire(indirect);
  EXPECT_EQ(core.mispredicts(), 20u);

  // Not-taken self-target / zero-target branches are predicted correctly.
  RetiredInst notTaken = selfTarget;
  notTaken.branchTaken = false;
  core.onRetire(notTaken);
  notTaken.branchTarget = 0;
  core.onRetire(notTaken);
  EXPECT_EQ(core.mispredicts(), 20u);
}

TEST(OoOCore, NoEligiblePortThrows) {
  // ISSUE 7 satellite: an instruction group no port accepts used to skip
  // the issue stage's structural hazard silently; it must be loud.
  CoreModel model = makeModel(4, 128);
  Port intOnly;
  intOnly.name = "alu";
  intOnly.groupMask = 1u << static_cast<unsigned>(InstGroup::IntSimple);
  model.ports = {intOnly};
  OoOCoreModel core(model);
  core.onRetire(alu({}, 1));  // IntSimple: accepted
  EXPECT_THROW(core.onRetire(alu({}, 2, InstGroup::FpAdd)), ValidationFault);
}

TEST(OoOCore, ResetEqualsFresh) {
  // ISSUE 7 satellite: reused models must match a fresh one (the
  // TraceObserver reuse contract). The trace exercises every piece of
  // state reset() clears: ROB pressure, port contention, memory readiness,
  // the gshare tables, and the mispredict counter.
  CoreModel model = makeModel(2, 8);
  model.predictor = BranchPredictor::Gshare;
  model.mispredictPenalty = 8;
  model.latencies[static_cast<std::size_t>(InstGroup::FpDiv)] = 20;

  const auto trace = [] {
    std::vector<RetiredInst> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(alu({1}, 1 + (i % 4)));
      if (i % 3 == 0) out.push_back(alu({}, 9, InstGroup::FpDiv));
      RetiredInst st;
      st.group = InstGroup::Store;
      st.srcs.push_back(Reg::gp(1));
      st.stores.push_back(MemAccess{0x100 + 8 * (i % 16), 8});
      out.push_back(st);
      RetiredInst branch;
      branch.group = InstGroup::Branch;
      branch.pc = 0x1000 + 4 * (i % 7);
      branch.isBranch = true;
      branch.branchTaken = i % 2 == 0;
      branch.branchTarget = branch.branchTaken ? 0x900 : 0x2000;
      out.push_back(branch);
    }
    return out;
  }();

  OoOCoreModel reused(model);
  for (const RetiredInst& inst : trace) reused.onRetire(inst);
  const std::uint64_t firstCycles = reused.cycles();
  reused.reset();
  EXPECT_EQ(reused.cycles(), 0u);
  EXPECT_EQ(reused.instructions(), 0u);
  EXPECT_EQ(reused.mispredicts(), 0u);
  for (const RetiredInst& inst : trace) reused.onRetire(inst);

  OoOCoreModel fresh(model);
  for (const RetiredInst& inst : trace) fresh.onRetire(inst);
  EXPECT_EQ(reused.cycles(), fresh.cycles());
  EXPECT_EQ(reused.cycles(), firstCycles);
  EXPECT_EQ(reused.instructions(), fresh.instructions());
  EXPECT_EQ(reused.mispredicts(), fresh.mispredicts());
}

TEST(OoOCore, CpiNeverBelowWidthBound) {
  OoOCoreModel core(makeModel(4, 512));
  for (int i = 0; i < 1000; ++i) core.onRetire(alu({}, 1 + (i % 30)));
  EXPECT_GE(core.cpi(), 1.0 / 4.0 - 0.01);
}

TEST(OoOCore, RuntimeUsesModelClock) {
  CoreModel model = makeModel(1, 16);
  model.clockGhz = 1.0;
  OoOCoreModel core(model);
  for (int i = 0; i < 1000; ++i) core.onRetire(alu({1}, 1));
  EXPECT_NEAR(core.runtimeSeconds(), core.cycles() / 1e9, 1e-12);
}

}  // namespace
}  // namespace riscmp::uarch
