// Unit tests for the ISSUE 5 memory hierarchy: golden hit/miss sequences
// on tiny caches, LRU replacement order, write-allocate and write-back
// accounting, prefetcher accuracy, geometry validation, and the
// cache-aware critical path's dynamic load latencies.
#include <gtest/gtest.h>

#include "analysis/critical_path.hpp"
#include "support/fault.hpp"
#include "uarch/mem/cache_aware_cp.hpp"
#include "uarch/mem/hierarchy.hpp"

namespace riscmp::uarch::mem {
namespace {

/// Tiny geometry so tests exercise conflict misses with a handful of
/// accesses: byte sizes, 64 B lines, latencies 4 / 12 / 80.
CacheConfig tinyConfig(std::uint64_t l1Bytes, std::uint32_t l1Ways,
                       std::uint64_t l2Bytes, std::uint32_t l2Ways,
                       PrefetchKind prefetch = PrefetchKind::None) {
  CacheConfig config;
  config.lineBytes = 64;
  config.l1d = {l1Bytes, l1Ways, 4};
  config.l2 = {l2Bytes, l2Ways, 12};
  config.memoryLatency = 80;
  config.prefetch = prefetch;
  return config;
}

RetiredInst loadInst(unsigned addrReg, std::uint64_t addr, unsigned dst) {
  RetiredInst inst;
  inst.group = InstGroup::Load;
  inst.srcs.push_back(Reg::gp(addrReg));
  inst.dsts.push_back(Reg::gp(dst));
  inst.loads.push_back(MemAccess{addr, 8});
  return inst;
}

RetiredInst storeInst(unsigned addrReg, unsigned dataReg,
                      std::uint64_t addr) {
  RetiredInst inst;
  inst.group = InstGroup::Store;
  inst.srcs.push_back(Reg::gp(addrReg));
  inst.srcs.push_back(Reg::gp(dataReg));
  inst.stores.push_back(MemAccess{addr, 8});
  return inst;
}

RetiredInst aluInst(unsigned src, unsigned dst) {
  RetiredInst inst;
  inst.group = InstGroup::IntSimple;
  inst.srcs.push_back(Reg::gp(src));
  inst.dsts.push_back(Reg::gp(dst));
  return inst;
}

TEST(MemoryHierarchy, DirectMappedGoldenSequence) {
  // 256 B direct-mapped L1 (4 sets), 1 KiB 2-way L2 (8 sets).
  MemoryHierarchy h(tinyConfig(256, 1, 1024, 2));

  AccessOutcome out = h.load(0x0, 8);  // cold: memory
  EXPECT_EQ(out.level, HitLevel::Memory);
  EXPECT_EQ(out.latency, 80u);

  out = h.load(0x0, 8);  // resident: L1 hit
  EXPECT_EQ(out.level, HitLevel::L1);
  EXPECT_EQ(out.latency, 4u);

  // Line 4 maps to L1 set 0, evicting line 0 (direct-mapped conflict).
  out = h.load(0x100, 8);
  EXPECT_EQ(out.level, HitLevel::Memory);

  out = h.load(0x0, 8);  // evicted from L1, still in L2
  EXPECT_EQ(out.level, HitLevel::L2);
  EXPECT_EQ(out.latency, 12u);

  out = h.load(0x8, 8);  // same line as 0x0: back in L1
  EXPECT_EQ(out.level, HitLevel::L1);

  const HierarchyStats& s = h.stats();
  EXPECT_EQ(s.loads, 5u);
  EXPECT_EQ(s.stores, 0u);
  EXPECT_EQ(s.l1Hits, 2u);
  EXPECT_EQ(s.l1Misses, 3u);
  EXPECT_EQ(s.l2Hits, 1u);
  EXPECT_EQ(s.l2Misses, 2u);
}

TEST(MemoryHierarchy, LruEvictsLeastRecentlyUsedWay) {
  // One 2-way L1 set: lines 0 and 1 fill it; touching 0 again makes 1 the
  // LRU victim when line 2 arrives.
  MemoryHierarchy h(tinyConfig(128, 2, 512, 2));
  h.load(0x0, 8);   // line 0 (miss)
  h.load(0x40, 8);  // line 1 (miss)
  EXPECT_EQ(h.load(0x0, 8).level, HitLevel::L1);  // refresh line 0
  h.load(0x80, 8);  // line 2 evicts line 1, not line 0
  EXPECT_EQ(h.load(0x0, 8).level, HitLevel::L1);
  EXPECT_EQ(h.load(0x40, 8).level, HitLevel::L2);  // line 1 was the victim
}

TEST(MemoryHierarchy, WriteAllocateAndWritebackAccounting) {
  // Single-line L1 and single-line L2: every conflict spills dirty data.
  MemoryHierarchy h(tinyConfig(64, 1, 64, 1));
  EXPECT_EQ(h.store(0x0, 8).level, HitLevel::Memory);  // write-allocate
  h.store(0x40, 8);  // line 1 displaces dirty line 0 into L2
  h.store(0x0, 8);   // line 0 back (L2 hit), dirty line 1 spills

  const HierarchyStats& s = h.stats();
  EXPECT_EQ(s.stores, 3u);
  EXPECT_EQ(s.l1Misses, 3u);
  EXPECT_EQ(s.l1Hits, 0u);
  EXPECT_EQ(s.l2Hits, 1u);
  EXPECT_EQ(s.l2Misses, 2u);
  EXPECT_EQ(s.writebacksToL2, 2u);  // both dirty L1 victims
  EXPECT_EQ(s.writebacksToMem, 1u);
}

TEST(MemoryHierarchy, StraddlingAccessProbesEveryLine) {
  MemoryHierarchy h(tinyConfig(256, 1, 1024, 2));
  const AccessOutcome out = h.load(0x3c, 8);  // spans lines 0 and 1
  EXPECT_EQ(out.l1LineMisses, 2u);
  EXPECT_EQ(out.l2LineMisses, 2u);
  EXPECT_EQ(out.level, HitLevel::Memory);
  EXPECT_EQ(h.stats().loads, 1u);  // one demand access, two line probes
  EXPECT_EQ(h.stats().l1Misses, 2u);
}

TEST(MemoryHierarchy, NextLinePrefetchTurnsMissIntoHit) {
  MemoryHierarchy h(tinyConfig(512, 2, 2048, 4, PrefetchKind::NextLine));
  EXPECT_EQ(h.load(0x0, 8).level, HitLevel::Memory);  // miss: prefetch L+1
  EXPECT_EQ(h.load(0x40, 8).level, HitLevel::L1);     // prefetched
  const HierarchyStats& s = h.stats();
  EXPECT_EQ(s.prefetchesIssued, 1u);
  EXPECT_EQ(s.prefetchesUseful, 1u);
  EXPECT_DOUBLE_EQ(s.prefetchAccuracy(), 1.0);
}

TEST(MemoryHierarchy, StridePrefetcherConfirmsThenCovers) {
  // Stride of 2 lines within one 4 KiB page: the detector needs two deltas
  // to confirm, then every access prefetches the next target.
  MemoryHierarchy h(tinyConfig(4096, 8, 16384, 8, PrefetchKind::Stride));
  for (std::uint64_t i = 0; i < 10; ++i) h.load(i * 128, 8);
  const HierarchyStats& s = h.stats();
  EXPECT_EQ(s.l1Misses, 3u);  // accesses 0..2 miss; 3..9 covered
  EXPECT_EQ(s.l1Hits, 7u);
  EXPECT_EQ(s.prefetchesIssued, 8u);  // accesses 2..9 each issue one
  EXPECT_EQ(s.prefetchesUseful, 7u);  // the last target is never demanded
  EXPECT_NEAR(s.prefetchAccuracy(), 7.0 / 8.0, 1e-12);
}

TEST(MemoryHierarchy, ResetReproducesIdenticalStats) {
  MemoryHierarchy h(tinyConfig(256, 1, 1024, 2, PrefetchKind::Stride));
  auto run = [&h] {
    for (std::uint64_t i = 0; i < 64; ++i) h.load(i * 72, 8);
    for (std::uint64_t i = 0; i < 64; ++i) h.store(i * 40, 8);
    return h.stats();
  };
  const HierarchyStats first = run();
  h.reset();
  EXPECT_EQ(h.stats(), HierarchyStats{});
  const HierarchyStats second = run();
  EXPECT_EQ(first, second);
}

TEST(CacheConfigValidation, RejectsBadGeometry) {
  auto expectKey = [](CacheConfig config, const std::string& key) {
    try {
      validateCacheConfig(config);
      FAIL() << "expected rejection for key " << key;
    } catch (const ConfigError& e) {
      EXPECT_EQ(e.key(), key);
    }
  };

  CacheConfig zeroWays = tinyConfig(256, 1, 1024, 2);
  zeroWays.l1d.ways = 0;
  expectKey(zeroWays, "l1d.ways");

  CacheConfig badLine = tinyConfig(256, 1, 1024, 2);
  badLine.lineBytes = 48;
  expectKey(badLine, "line_bytes");

  // 24 KiB / (8 x 64 B) = 48 sets: divisible but not a power of two.
  CacheConfig badSets = tinyConfig(24 * 1024, 8, 256 * 1024, 8);
  expectKey(badSets, "l1d.size_kib");

  // 32 KiB does not divide into whole sets of 3 x 64 B.
  CacheConfig indivisible = tinyConfig(32 * 1024, 3, 256 * 1024, 8);
  expectKey(indivisible, "l1d.size_kib");

  CacheConfig l2Small = tinyConfig(32 * 1024, 8, 16 * 1024, 8);
  expectKey(l2Small, "l2.size_kib");
}

TEST(CacheAwareCp, LoadsContributeDynamicLatency) {
  LatencyTable table = unitLatencies();
  table[static_cast<std::size_t>(InstGroup::Load)] = 4;

  CacheAwareCpAnalyzer analyzer(table, tinyConfig(256, 1, 1024, 2));
  analyzer.onRetire(loadInst(1, 0x0, 2));  // cold miss: depth 80
  analyzer.onRetire(aluInst(2, 3));        // dependent: depth 81
  analyzer.onRetire(loadInst(1, 0x0, 4));  // L1 hit: depth 4
  EXPECT_EQ(analyzer.criticalPath(), 81u);
  EXPECT_EQ(analyzer.instructions(), 3u);
  EXPECT_EQ(analyzer.cacheStats().l1Misses, 1u);

  // The flat scaled chain over the same trace charges the table's LOAD
  // latency: the memory-aware mode must dominate it on a cold miss.
  CriticalPathAnalyzer flat(table);
  flat.onRetire(loadInst(1, 0x0, 2));
  flat.onRetire(aluInst(2, 3));
  flat.onRetire(loadInst(1, 0x0, 4));
  EXPECT_LT(flat.criticalPath(), analyzer.criticalPath());
}

TEST(CacheAwareCp, StoresForwardAtUnitCostButWarmTheCache) {
  LatencyTable table = unitLatencies();
  CacheAwareCpAnalyzer analyzer(table, tinyConfig(256, 1, 1024, 2));
  analyzer.onRetire(storeInst(1, 2, 0x0));  // depth 1, write-allocates
  analyzer.onRetire(loadInst(3, 0x0, 4));   // forwarded chunk + L1 hit
  EXPECT_EQ(analyzer.criticalPath(), 1u + 4u);
  EXPECT_EQ(analyzer.cacheStats().stores, 1u);
  EXPECT_EQ(analyzer.cacheStats().l1Hits, 1u);
}

TEST(CacheAwareCp, ResetReproducesIdenticalPath) {
  LatencyTable table = unitLatencies();
  CacheAwareCpAnalyzer analyzer(table, tinyConfig(256, 1, 1024, 2));
  auto run = [&analyzer] {
    for (std::uint64_t i = 0; i < 32; ++i) {
      analyzer.onRetire(loadInst(1, i * 96, 2));
      analyzer.onRetire(aluInst(2, 2));
    }
    return analyzer.criticalPath();
  };
  const std::uint64_t first = run();
  analyzer.reset();
  EXPECT_EQ(analyzer.criticalPath(), 0u);
  EXPECT_EQ(run(), first);
}

}  // namespace
}  // namespace riscmp::uarch::mem
