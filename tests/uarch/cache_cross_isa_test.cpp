// E11 cross-ISA invariant (ISSUE 5 satellite): the data-address stream is
// a property of the algorithm, not the ISA, so RV64 and AArch64
// compilations of the same workload driven through identical cache
// geometry must touch identical cache-line sets and take identical misses,
// kernel by kernel. MPKI then differs between ISAs by exactly the dynamic
// path-length ratio — the paper's Figure 1 finding restated in memory
// terms.
#include <gtest/gtest.h>

#include <vector>

#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "uarch/mem/cache_model.hpp"
#include "workloads/workloads.hpp"

namespace riscmp::uarch::mem {
namespace {

using kgen::CompilerEra;

/// TX2-like geometry scaled down so the reduced workloads still miss.
CacheConfig testConfig() {
  CacheConfig config;
  config.lineBytes = 64;
  config.l1d = {4 * 1024, 8, 4};
  config.l2 = {32 * 1024, 8, 12};
  config.memoryLatency = 80;
  config.prefetch = PrefetchKind::Stride;
  return config;
}

struct CacheRun {
  std::uint64_t instructions = 0;
  HierarchyStats totals;
  std::uint64_t footprintLines = 0;
  std::uint64_t lineSetDigest = 0;
  std::vector<CacheModelAnalyzer::KernelStats> kernels;
};

CacheRun simulate(const kgen::Module& module, Arch arch, CompilerEra era) {
  const kgen::Compiled compiled = kgen::compile(module, arch, era);
  CacheModelAnalyzer analyzer(testConfig(), compiled.program);
  Machine machine(compiled.program);
  machine.addObserver(analyzer);
  machine.run();
  return {analyzer.instructions(), analyzer.totals(),
          analyzer.footprintLines(), analyzer.lineSetDigest(),
          analyzer.kernels()};
}

void expectIsaInvariant(const kgen::Module& module, CompilerEra era) {
  const CacheRun a64 = simulate(module, Arch::AArch64, era);
  const CacheRun rv64 = simulate(module, Arch::Rv64, era);

  // Whole-program: identical demand traffic, misses, and line sets.
  EXPECT_TRUE(a64.totals == rv64.totals) << module.name;
  EXPECT_EQ(a64.footprintLines, rv64.footprintLines) << module.name;
  EXPECT_EQ(a64.lineSetDigest, rv64.lineSetDigest) << module.name;

  // Per kernel: the attribution must agree too, not just the sums.
  ASSERT_EQ(a64.kernels.size(), rv64.kernels.size()) << module.name;
  for (std::size_t k = 0; k < a64.kernels.size(); ++k) {
    const auto& ka = a64.kernels[k];
    const auto& kr = rv64.kernels[k];
    EXPECT_EQ(ka.name, kr.name) << module.name;
    EXPECT_EQ(ka.loads, kr.loads) << module.name << "/" << ka.name;
    EXPECT_EQ(ka.stores, kr.stores) << module.name << "/" << ka.name;
    EXPECT_EQ(ka.l1Misses, kr.l1Misses) << module.name << "/" << ka.name;
    EXPECT_EQ(ka.l2Misses, kr.l2Misses) << module.name << "/" << ka.name;
    EXPECT_EQ(ka.footprintLines, kr.footprintLines)
        << module.name << "/" << ka.name;
    EXPECT_EQ(ka.lineSetDigest, kr.lineSetDigest)
        << module.name << "/" << ka.name;
  }

  // The instruction counts are the one thing that MAY differ (path
  // length); when they do, the per-ISA MPKI difference is exactly their
  // ratio, which is what E11's tables show.
}

TEST(CacheCrossIsa, StreamLineSetsMatch) {
  const kgen::Module module = workloads::makeStream({.n = 600, .reps = 2});
  for (const CompilerEra era : {CompilerEra::Gcc9, CompilerEra::Gcc12}) {
    expectIsaInvariant(module, era);
  }
}

TEST(CacheCrossIsa, CloverLeafLineSetsMatch) {
  const kgen::Module module =
      workloads::makeCloverLeaf({.nx = 12, .ny = 12, .steps = 1});
  for (const CompilerEra era : {CompilerEra::Gcc9, CompilerEra::Gcc12}) {
    expectIsaInvariant(module, era);
  }
}

TEST(CacheCrossIsa, MinisweepLineSetsMatch) {
  const kgen::Module module = workloads::makeMinisweep(
      {.ncellX = 3, .ncellY = 4, .ncellZ = 4, .ne = 1, .na = 6});
  for (const CompilerEra era : {CompilerEra::Gcc9, CompilerEra::Gcc12}) {
    expectIsaInvariant(module, era);
  }
}

TEST(CacheCrossIsa, MissesAreNonTrivial) {
  // Guard against the invariant passing vacuously: the scaled-down caches
  // must actually miss on the test workloads.
  const kgen::Module module = workloads::makeStream({.n = 600, .reps = 2});
  const CacheRun run = simulate(module, Arch::Rv64, CompilerEra::Gcc12);
  EXPECT_GT(run.totals.l1Misses, 0u);
  EXPECT_GT(run.totals.prefetchesIssued, 0u);
  EXPECT_GT(run.footprintLines, 0u);
}

}  // namespace
}  // namespace riscmp::uarch::mem
