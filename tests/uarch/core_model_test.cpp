#include <gtest/gtest.h>

#include "uarch/core_model.hpp"

namespace riscmp::uarch {
namespace {

TEST(CoreModel, LoadsShippedConfigs) {
  for (const char* name : {"tx2", "riscv-tx2", "a64fx", "m1-firestorm"}) {
    const CoreModel model = CoreModel::named(name);
    EXPECT_FALSE(model.ports.empty()) << name;
    EXPECT_GT(model.robSize, 0u) << name;
    EXPECT_GT(model.clockGhz, 0.0) << name;
    // Every group must be executable on at least one port.
    for (std::size_t g = 0; g < kInstGroupCount; ++g) {
      bool covered = false;
      for (const Port& port : model.ports) {
        covered |= port.accepts(static_cast<InstGroup>(g));
      }
      EXPECT_TRUE(covered) << name << " lacks a port for "
                           << instGroupName(static_cast<InstGroup>(g));
    }
  }
}

TEST(CoreModel, PaperModelPairMatches) {
  // §5.1: the RISC-V model is derived from the TX2 latencies.
  const CoreModel tx2 = CoreModel::named("tx2");
  const CoreModel riscv = CoreModel::named("riscv-tx2");
  EXPECT_EQ(tx2.latencies, riscv.latencies);
  EXPECT_EQ(tx2.robSize, riscv.robSize);
}

TEST(CoreModel, ParsesInlineYaml) {
  const CoreModel model = CoreModel::fromYaml(yaml::parse(
      "name: tiny\n"
      "core:\n"
      "  fetch_width: 2\n"
      "  dispatch_width: 2\n"
      "  commit_width: 1\n"
      "  rob_size: 16\n"
      "  clock_ghz: 1.5\n"
      "  predictor: static\n"
      "  mispredict_penalty: 7\n"
      "ports:\n"
      "  - name: p0\n"
      "    groups: [INT_SIMPLE, INT_MUL, BRANCH]\n"
      "latencies:\n"
      "  INT_MUL: 9\n"));
  EXPECT_EQ(model.name, "tiny");
  EXPECT_EQ(model.dispatchWidth, 2u);
  EXPECT_EQ(model.commitWidth, 1u);
  EXPECT_EQ(model.robSize, 16u);
  EXPECT_EQ(model.predictor, BranchPredictor::Static);
  EXPECT_EQ(model.mispredictPenalty, 7u);
  ASSERT_EQ(model.ports.size(), 1u);
  EXPECT_TRUE(model.ports[0].accepts(InstGroup::IntSimple));
  EXPECT_FALSE(model.ports[0].accepts(InstGroup::FpAdd));
  EXPECT_EQ(model.latencies[static_cast<std::size_t>(InstGroup::IntMul)], 9u);
  // Unlisted groups default to 1.
  EXPECT_EQ(model.latencies[static_cast<std::size_t>(InstGroup::FpAdd)], 1u);
}

TEST(CoreModel, RejectsUnknownGroupAndPredictor) {
  EXPECT_THROW(CoreModel::fromYaml(yaml::parse("latencies:\n  BOGUS: 3\n")),
               std::runtime_error);
  EXPECT_THROW(CoreModel::fromYaml(yaml::parse(
                   "ports:\n  - name: p\n    groups: [NOPE]\n")),
               std::runtime_error);
  EXPECT_THROW(CoreModel::fromYaml(
                   yaml::parse("core:\n  predictor: oracle\n")),
               std::runtime_error);
}

}  // namespace
}  // namespace riscmp::uarch
