// Unit tests for the ISSUE 10 memory system: golden TLB hit/walk
// sequences, page-boundary straddles, TLB geometry validation, the
// stride-prefetcher wraparound edge at the ends of the address space, the
// MSHR/bandwidth occupancy bounds, and the shared-L2 scaling model's
// conservation and single-core-equivalence invariants.
#include <gtest/gtest.h>

#include <vector>

#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "support/fault.hpp"
#include "uarch/mem/mem_system.hpp"
#include "uarch/mem/tlb.hpp"
#include "workloads/workloads.hpp"

namespace riscmp::uarch::mem {
namespace {

/// Tiny TLB: 2-entry fully-associative L1 over a 4-entry fully-associative
/// L2, 4 KiB pages, 5-cycle L2 / 30-cycle walk.
TlbConfig tinyTlb() {
  TlbConfig tlb;
  tlb.pageBytes = 4096;
  tlb.l1Entries = 2;
  tlb.l1Ways = 2;
  tlb.l2Entries = 4;
  tlb.l2Ways = 4;
  tlb.l2Latency = 5;
  tlb.walkLatency = 30;
  return tlb;
}

/// Tiny cache geometry as in cache_model_test, with the memory-system
/// knobs (MSHRs, bandwidth, TLB) set to test-friendly values.
CacheConfig tinyConfig(PrefetchKind prefetch = PrefetchKind::None) {
  CacheConfig config;
  config.lineBytes = 64;
  config.l1d = {256, 1, 4};
  config.l2 = {1024, 2, 12};
  config.memoryLatency = 80;
  config.prefetch = prefetch;
  config.mshrs = 4;
  config.memBytesPerCycle = 16;
  config.tlb = tinyTlb();
  return config;
}

RetiredInst loadAt(std::uint64_t pc, std::uint64_t addr,
                   std::uint32_t size = 8) {
  RetiredInst inst;
  inst.pc = pc;
  inst.group = InstGroup::Load;
  inst.srcs.push_back(Reg::gp(1));
  inst.dsts.push_back(Reg::gp(2));
  inst.loads.push_back(MemAccess{addr, size});
  return inst;
}

/// One named kernel covering [0x10000, 0x10040); code left empty so
/// attribution exercises the pc-range fallback.
Program kernelProgram() {
  Program program;
  program.kernels.push_back(Symbol{"edge", 0x10000, 0x40});
  return program;
}

TEST(Tlb, GoldenHitWalkSequence) {
  Tlb tlb(tinyTlb());

  EXPECT_EQ(tlb.access(0).level, TlbLevel::Walk);  // cold
  EXPECT_EQ(tlb.access(0).level, TlbLevel::L1);
  EXPECT_EQ(tlb.access(0).latency, 0u);
  EXPECT_EQ(tlb.access(1).level, TlbLevel::Walk);

  // Page 2 fills the 2-entry L1, evicting LRU page 0; page 0 then hits
  // the L2 (which still holds all three) and refills the L1.
  EXPECT_EQ(tlb.access(2).level, TlbLevel::Walk);
  const Tlb::Outcome back = tlb.access(0);
  EXPECT_EQ(back.level, TlbLevel::L2);
  EXPECT_EQ(back.latency, 5u);
  EXPECT_EQ(tlb.access(0).level, TlbLevel::L1);

  const TlbStats& s = tlb.stats();
  EXPECT_EQ(s.accesses, 7u);
  EXPECT_EQ(s.l1Hits, 3u);
  EXPECT_EQ(s.l1Misses, 4u);
  EXPECT_EQ(s.l2Hits, 1u);
  EXPECT_EQ(s.walks, 3u);
  EXPECT_EQ(s.walkCycles, 3u * 30u);
}

TEST(Tlb, L2CapacityEvictionForcesRewalk) {
  Tlb tlb(tinyTlb());
  // Five distinct pages through a 4-entry L2: page 0 is the LRU victim.
  for (std::uint64_t page = 0; page < 5; ++page) {
    EXPECT_EQ(tlb.access(page).level, TlbLevel::Walk);
  }
  EXPECT_EQ(tlb.access(0).level, TlbLevel::Walk);  // evicted everywhere
  EXPECT_EQ(tlb.stats().walks, 6u);
}

TEST(Tlb, ResetClearsStateAndCounters) {
  Tlb tlb(tinyTlb());
  tlb.access(7);
  tlb.reset();
  EXPECT_EQ(tlb.stats(), TlbStats{});
  EXPECT_EQ(tlb.access(7).level, TlbLevel::Walk);  // cold again
}

TEST(TlbValidation, RejectsBadGeometry) {
  CacheConfig config = tinyConfig();

  config.tlb->pageBytes = 48;  // not a power of two
  EXPECT_THROW(validateCacheConfig(config), ConfigError);

  config.tlb = tinyTlb();
  config.tlb->pageBytes = 32;  // smaller than the 64 B line
  EXPECT_THROW(validateCacheConfig(config), ConfigError);

  config.tlb = tinyTlb();
  config.tlb->l2Entries = 6;  // 6 entries / 4 ways: not whole sets
  try {
    validateCacheConfig(config);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.key(), "tlb.l2_entries");
  }

  config.tlb = tinyTlb();
  config.tlb->l1Entries = 12;  // 12/2 = 6 sets: not a power of two
  try {
    validateCacheConfig(config);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.key(), "tlb.l1_entries");
  }

  config.tlb = tinyTlb();
  config.tlb->walkLatency = 0;
  EXPECT_THROW(validateCacheConfig(config), ConfigError);

  config.tlb = tinyTlb();
  config.mshrs = 0;
  EXPECT_THROW(validateCacheConfig(config), ConfigError);

  config = tinyConfig();
  config.memBytesPerCycle = 0;
  EXPECT_THROW(validateCacheConfig(config), ConfigError);
}

TEST(MemSystem, PageBoundaryStraddleTranslatesBothPages) {
  const Program program = kernelProgram();
  const std::vector<unsigned> cores{1};
  MemSystemAnalyzer analyzer(tinyConfig(), program, cores);

  // An 8-byte load at pageBytes-4 covers the last 4 bytes of page 0 and
  // the first 4 of page 1: one cache access, TWO translations, two walks.
  analyzer.onRetire(loadAt(0x10000, 4096 - 4));

  const MemSummary summary = analyzer.summary();
  EXPECT_EQ(summary.tlb.accesses, 2u);
  EXPECT_EQ(summary.tlb.walks, 2u);
  EXPECT_EQ(summary.footprintPages, 2u);

  ASSERT_EQ(analyzer.kernels().size(), 1u);
  const MemKernelStats& kernel = analyzer.kernels()[0];
  EXPECT_EQ(kernel.name, "edge");
  EXPECT_EQ(kernel.tlbAccesses, 2u);
  EXPECT_EQ(kernel.tlbWalks, 2u);
  EXPECT_EQ(kernel.footprintPages, 2u);

  // The same access straddles a cache line too (line size divides page
  // size), so the hierarchy saw two line probes but one demand load.
  EXPECT_EQ(analyzer.hierarchyTotals().loads, 1u);
  EXPECT_EQ(analyzer.hierarchyTotals().l1Misses, 2u);
}

TEST(MemSystem, PageInteriorAccessTranslatesOnce) {
  const Program program = kernelProgram();
  const std::vector<unsigned> cores{1};
  MemSystemAnalyzer analyzer(tinyConfig(), program, cores);
  analyzer.onRetire(loadAt(0x10000, 128));
  EXPECT_EQ(analyzer.summary().tlb.accesses, 1u);
  EXPECT_EQ(analyzer.summary().footprintPages, 1u);
}

TEST(MemSystem, StridePrefetchWrapsAtAddressSpaceEnd) {
  // Ascending stride right at the top of the address space: after lines
  // N-3, N-2, N-1 confirm a +1 stride, the prefetcher targets line N,
  // which wraps to line 0. The hierarchy must take it in stride (pun
  // intended) rather than trap on the overflow.
  const Program program = kernelProgram();
  const std::vector<unsigned> cores{1};
  MemSystemAnalyzer analyzer(tinyConfig(PrefetchKind::Stride), program,
                             cores);

  const std::uint64_t top = ~std::uint64_t{0} - 255;  // last 4 lines
  for (std::uint64_t offset = 0; offset < 4; ++offset) {
    analyzer.onRetire(loadAt(0x10000, top + offset * 64, 8));
  }
  const HierarchyStats& h = analyzer.hierarchyTotals();
  EXPECT_EQ(h.loads, 4u);
  EXPECT_GT(h.prefetchesIssued, 0u);  // the wrapped line 0 fill
  // Prefetches bypass translation: only the 4 demand loads hit the TLB
  // (all within the same final page).
  EXPECT_EQ(analyzer.summary().tlb.accesses, 4u);
  EXPECT_EQ(analyzer.summary().footprintPages, 1u);
}

TEST(MemSystem, StridePrefetchWrapsBelowZero) {
  // Descending through line 0: the confirmed -1 stride targets line -1 ==
  // 2^64-1. Again: counted, filled, no trap.
  const Program program = kernelProgram();
  const std::vector<unsigned> cores{1};
  MemSystemAnalyzer analyzer(tinyConfig(PrefetchKind::Stride), program,
                             cores);
  for (std::int64_t line = 3; line >= 0; --line) {
    analyzer.onRetire(
        loadAt(0x10000, static_cast<std::uint64_t>(line) * 64, 8));
  }
  EXPECT_GT(analyzer.hierarchyTotals().prefetchesIssued, 0u);
  EXPECT_EQ(analyzer.hierarchyTotals().loads, 4u);
}

TEST(MemSystem, OccupancyBoundsFollowTheFormulas) {
  const Program program = kernelProgram();
  const std::vector<unsigned> cores{1};
  const CacheConfig config = tinyConfig();
  MemSystemAnalyzer analyzer(config, program, cores);

  // 8 cold lines, all L2 misses, no write-backs, no prefetches.
  for (std::uint64_t line = 0; line < 8; ++line) {
    analyzer.onRetire(loadAt(0x10000, line * 64, 8));
  }
  const MemSummary summary = analyzer.summary();
  const HierarchyStats& h = analyzer.hierarchyTotals();
  EXPECT_EQ(h.l2Misses, 8u);
  EXPECT_EQ(summary.demandFillBytes, 8u * 64u);
  EXPECT_EQ(summary.prefetchFillBytes, 0u);
  EXPECT_EQ(summary.writebackBytes, 0u);
  // missCycles = l2Hits*12 + l2Misses*80 = 640; mshrs=4 -> 160.
  EXPECT_EQ(summary.missCycles, 640u);
  EXPECT_EQ(summary.mshrBoundCycles, 160u);
  // 512 bytes at 16 B/cycle -> 32 cycles.
  EXPECT_EQ(summary.bandwidthBoundCycles, 32u);
}

/// Compiled-workload fixture shared by the scaling tests.
MemSystemAnalyzer runStream(const CacheConfig& config,
                            std::span<const unsigned> cores,
                            Arch arch = Arch::Rv64) {
  const kgen::Module module = workloads::makeStream({.n = 600, .reps = 2});
  const kgen::Compiled compiled =
      kgen::compile(module, arch, kgen::CompilerEra::Gcc12);
  MemSystemAnalyzer analyzer(config, compiled.program, cores);
  Machine machine(compiled.program);
  machine.addObserver(analyzer);
  machine.run();
  return analyzer;
}

TEST(MemSystem, SharedL2ConservesPerCoreMisses) {
  CacheConfig config = tinyConfig();
  config.l1d = {4 * 1024, 8, 4};
  config.l2 = {32 * 1024, 8, 12};
  const std::vector<unsigned> cores{1, 2, 4};
  const MemSystemAnalyzer analyzer = runStream(config, cores);

  const std::vector<ScalingPoint> points = analyzer.scaling();
  ASSERT_EQ(points.size(), 3u);
  for (const ScalingPoint& point : points) {
    ASSERT_EQ(point.perCore.size(), point.cores);
    std::uint64_t l1MissSum = 0;
    std::uint64_t l2MissSum = 0;
    std::uint64_t l2HitSum = 0;
    for (const CoreShare& share : point.perCore) {
      EXPECT_GT(share.accesses, 0u);
      l1MissSum += share.l1Misses;
      l2MissSum += share.l2Misses;
      l2HitSum += share.l2Hits;
    }
    EXPECT_EQ(l1MissSum, point.sharedL2Accesses) << point.cores << " cores";
    EXPECT_EQ(l2MissSum, point.sharedL2Misses) << point.cores << " cores";
    EXPECT_EQ(l2HitSum, point.sharedL2Hits) << point.cores << " cores";
    EXPECT_EQ(point.sharedL2Hits + point.sharedL2Misses,
              point.sharedL2Accesses)
        << point.cores << " cores";
    EXPECT_GT(point.sharedL2Misses, 0u);  // non-vacuous
  }
  // Contention is real: 4 cores through one L2 miss at least as much in
  // total as 4x the single-core point would.
  EXPECT_GE(points[2].sharedL2Misses, 4 * points[0].sharedL2Misses);
}

TEST(MemSystem, SingleCoreScalingMatchesPrivateHierarchy) {
  // With no prefetcher the 1-core shared model and the private replica
  // see the identical demand stream, so their miss counts must agree —
  // two independent code paths computing one number.
  CacheConfig config = tinyConfig();
  config.l1d = {4 * 1024, 8, 4};
  config.l2 = {32 * 1024, 8, 12};
  const std::vector<unsigned> cores{1};
  const MemSystemAnalyzer analyzer = runStream(config, cores);

  const std::vector<ScalingPoint> points = analyzer.scaling();
  ASSERT_EQ(points.size(), 1u);
  const CoreShare& share = points[0].perCore[0];
  const HierarchyStats& h = analyzer.hierarchyTotals();
  EXPECT_EQ(share.l1Misses, h.l1Misses);
  EXPECT_EQ(share.l2Hits, h.l2Hits);
  EXPECT_EQ(share.l2Misses, h.l2Misses);
  EXPECT_EQ(share.latencyCycles,
            (share.accesses - share.l1Misses) * config.l1d.latency +
                share.l2Hits * config.l2.latency +
                share.l2Misses * config.memoryLatency);
}

TEST(MemSystem, PageSetsAreIsaInvariant) {
  CacheConfig config = tinyConfig();
  config.l1d = {4 * 1024, 8, 4};
  config.l2 = {32 * 1024, 8, 12};
  const std::vector<unsigned> cores{1};
  const MemSystemAnalyzer a64 = runStream(config, cores, Arch::AArch64);
  const MemSystemAnalyzer rv64 = runStream(config, cores, Arch::Rv64);

  EXPECT_EQ(a64.summary().footprintPages, rv64.summary().footprintPages);
  EXPECT_EQ(a64.summary().pageSetDigest, rv64.summary().pageSetDigest);
  EXPECT_EQ(a64.summary().tlb.walks, rv64.summary().tlb.walks);
  ASSERT_EQ(a64.kernels().size(), rv64.kernels().size());
  for (std::size_t k = 0; k < a64.kernels().size(); ++k) {
    EXPECT_EQ(a64.kernels()[k].name, rv64.kernels()[k].name);
    EXPECT_EQ(a64.kernels()[k].tlbWalks, rv64.kernels()[k].tlbWalks);
    EXPECT_EQ(a64.kernels()[k].pageSetDigest,
              rv64.kernels()[k].pageSetDigest);
  }
  EXPECT_GT(a64.summary().footprintPages, 1u);  // non-vacuous
}

TEST(MemSystem, ResetPreservesKernelNamesAndCoreCounts) {
  const Program program = kernelProgram();
  const std::vector<unsigned> cores{1, 2};
  MemSystemAnalyzer analyzer(tinyConfig(), program, cores);
  analyzer.onRetire(loadAt(0x10000, 0));
  analyzer.reset();

  EXPECT_EQ(analyzer.instructions(), 0u);
  EXPECT_EQ(analyzer.summary(), MemSummary{});
  ASSERT_EQ(analyzer.kernels().size(), 1u);
  EXPECT_EQ(analyzer.kernels()[0].name, "edge");
  EXPECT_EQ(analyzer.kernels()[0].tlbAccesses, 0u);
  const std::vector<ScalingPoint> points = analyzer.scaling();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].cores, 1u);
  EXPECT_EQ(points[1].cores, 2u);
  EXPECT_EQ(points[1].sharedL2Accesses, 0u);

  // Replaying after reset reproduces the original counters exactly.
  analyzer.onRetire(loadAt(0x10000, 0));
  EXPECT_EQ(analyzer.summary().tlb.walks, 1u);
}

TEST(MemSystem, DuplicateAndZeroCoreCountsAreIgnored) {
  const Program program = kernelProgram();
  const std::vector<unsigned> cores{0, 2, 2, 1};
  MemSystemAnalyzer analyzer(tinyConfig(), program, cores);
  const std::vector<ScalingPoint> points = analyzer.scaling();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].cores, 2u);
  EXPECT_EQ(points[1].cores, 1u);
}

}  // namespace
}  // namespace riscmp::uarch::mem
