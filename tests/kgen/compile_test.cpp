// End-to-end compiler tests: every module is compiled for both ISAs under
// both compiler eras, executed on the emulation core, and its final memory
// compared bit-for-bit against the reference interpreter.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "kgen/interp.hpp"

namespace riscmp::kgen {
namespace {

void compileRunValidate(const Module& module, Arch arch, CompilerEra era) {
  const Compiled compiled = compile(module, arch, era);
  Machine machine(compiled.program);
  const RunResult result = machine.run();
  EXPECT_TRUE(result.exitedCleanly);

  Interpreter interp(module);
  interp.run();
  for (const ArrayDecl& array : module.arrays) {
    const std::uint64_t base = compiled.arrayAddr.at(array.name);
    const auto& expected = interp.array(array.name);
    for (std::int64_t i = 0; i < array.elems; ++i) {
      const double actual = machine.memory().read<double>(base + i * 8);
      ASSERT_EQ(actual, expected[static_cast<std::size_t>(i)])
          << archName(arch) << "/" << eraName(era) << " array " << array.name
          << "[" << i << "]";
    }
  }
  for (const ScalarDecl& decl : module.scalars) {
    const double actual =
        machine.memory().read<double>(compiled.scalarAddr.at(decl.name));
    // Scalars not written back keep their init value in memory.
    const double expected = interp.scalarValue(decl.name);
    ASSERT_TRUE(actual == expected || actual == decl.init)
        << archName(arch) << "/" << eraName(era) << " scalar " << decl.name;
  }
}

void validateEverywhere(const Module& module) {
  for (const Arch arch : {Arch::Rv64, Arch::AArch64}) {
    for (const CompilerEra era : {CompilerEra::Gcc9, CompilerEra::Gcc12}) {
      compileRunValidate(module, arch, era);
    }
  }
}

std::vector<double> iota(std::int64_t n, double scale = 1.0) {
  std::vector<double> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = scale * static_cast<double>(i + 1);
  }
  return out;
}

TEST(KgenCompile, CopyKernel) {
  Module module;
  module.name = "copy";
  module.array("a", 64).init = iota(64);
  module.array("c", 64);
  module.kernel("copy").body.push_back(
      loop("i", 64, {storeArr("c", idx("i"), load("a", idx("i")))}));
  validateEverywhere(module);
}

TEST(KgenCompile, TriadWithFmaContraction) {
  Module module;
  module.array("a", 50);
  module.array("b", 50).init = iota(50, 0.5);
  module.array("c", 50).init = iota(50, 0.25);
  module.scalarInit("scalar", 3.0);
  module.kernel("triad").body.push_back(loop(
      "j", 50, {storeArr("a", idx("j"),
                         add(load("b", idx("j")),
                             mul(scalar("scalar"), load("c", idx("j")))))}));
  validateEverywhere(module);
}

TEST(KgenCompile, ReductionChain) {
  Module module;
  module.array("x", 40).init = iota(40);
  module.array("y", 40).init = iota(40, 2.0);
  module.scalarInit("dot", 0.0);
  module.kernel("dot").body.push_back(
      loop("i", 40, {accumScalar("dot", mul(load("x", idx("i")),
                                            load("y", idx("i"))))}));
  validateEverywhere(module);

  // The reduction result must round-trip through the scalar slot.
  const Compiled compiled = compile(module, Arch::Rv64, CompilerEra::Gcc12);
  Machine machine(compiled.program);
  machine.run();
  Interpreter interp(module);
  interp.run();
  EXPECT_EQ(machine.memory().read<double>(compiled.scalarAddr.at("dot")),
            interp.scalarValue("dot"));
}

TEST(KgenCompile, StencilSharesOnePointerGroup) {
  Module module;
  module.array("in", 34).init = iota(34);
  module.array("out", 34);
  module.kernel("stencil").body.push_back(loop(
      "i", 32,
      {storeArr("out", idx("i") + 1,
                mul(cnst(0.5), add(load("in", idx("i")),
                                   load("in", idx("i") + 2))))}));
  validateEverywhere(module);
}

TEST(KgenCompile, TwoDimensionalRowMajor) {
  Module module;
  const std::int64_t w = 12;
  const std::int64_t h = 7;
  module.array("src", w * h).init = iota(w * h);
  module.array("dst", w * h);
  module.kernel("smooth").body.push_back(loop(
      "y", h,
      {loop("x", w, {storeArr("dst", idx2("y", w, "x"),
                              mul(cnst(2.0), load("src", idx2("y", w, "x"))))})}));
  validateEverywhere(module);
}

TEST(KgenCompile, TwoDimensionalWithNeighbours) {
  Module module;
  const std::int64_t w = 10;
  module.array("g", w * w).init = iota(w * w);
  module.array("o", w * w);
  // Interior 5-point stencil via shifted extents.
  std::vector<Stmt> inner;
  inner.push_back(storeArr(
      "o", idx2("y", w, "x") + (w + 1),
      add(add(load("g", idx2("y", w, "x") + (w + 1 - 1)),
              load("g", idx2("y", w, "x") + (w + 1 + 1))),
          add(load("g", idx2("y", w, "x") + 1),
              load("g", idx2("y", w, "x") + (2 * w + 1))))));
  module.kernel("five").body.push_back(
      loop("y", w - 2, {loop("x", w - 2, std::move(inner))}));
  validateEverywhere(module);
}

TEST(KgenCompile, StridedColumnAccess) {
  Module module;
  const std::int64_t w = 8;
  const std::int64_t h = 6;
  module.array("m", w * h).init = iota(w * h);
  module.array("col", h);
  // col[y] = m[y*w + 3]: strided walk on the aarch64 pointer-fallback path.
  module.kernel("column").body.push_back(
      loop("y", h, {storeArr("col", idx("y"),
                             load("m", idx("y", w) + 3))}));
  validateEverywhere(module);
}

TEST(KgenCompile, OuterLoopRepetitions) {
  Module module;
  module.array("v", 16).init = iota(16);
  module.scalarInit("gain", 1.0009765625);  // exactly representable
  module.kernel("pump").body.push_back(loop(
      "rep", 5, {loop("i", 16, {storeArr("v", idx("i"),
                                         mul(scalar("gain"),
                                             load("v", idx("i"))))})}));
  validateEverywhere(module);
}

TEST(KgenCompile, DivideAndSqrtChains) {
  Module module;
  module.array("p", 24).init = iota(24);
  module.array("q", 24).init = iota(24, 3.0);
  module.array("r", 24);
  module.kernel("speed").body.push_back(loop(
      "i", 24, {storeArr("r", idx("i"),
                         fsqrt(divide(load("p", idx("i")),
                                      load("q", idx("i")))))}));
  validateEverywhere(module);
}

TEST(KgenCompile, MultipleKernelsRunInOrder) {
  Module module;
  module.array("a", 20).init = iota(20);
  module.array("b", 20);
  module.array("c", 20);
  module.scalarInit("s", 0.5);
  module.kernel("scale").body.push_back(loop(
      "i", 20,
      {storeArr("b", idx("i"), mul(scalar("s"), load("a", idx("i"))))}));
  module.kernel("add").body.push_back(loop(
      "i", 20, {storeArr("c", idx("i"),
                         add(load("a", idx("i")), load("b", idx("i"))))}));
  validateEverywhere(module);
}

TEST(KgenCompile, MinMaxAbsNegSqrtOnBothIsas) {
  Module module;
  module.array("x", 30).init = iota(30, -1.0);
  module.array("y", 30).init = iota(30, 0.5);
  module.array("z", 30);
  module.kernel("clamp").body.push_back(loop(
      "i", 30,
      {storeArr("z", idx("i"),
                fmax(fmin(fabs(load("x", idx("i"))), load("y", idx("i"))),
                     neg(cnst(1.0))))}));
  validateEverywhere(module);
}

// ---------------------------------------------------------------------------
// Path-length properties of the generated code (paper §3.3)
// ---------------------------------------------------------------------------

Module streamCopyModule(std::int64_t n) {
  Module module;
  module.array("a", n).init = iota(n);
  module.array("c", n);
  module.kernel("copy").body.push_back(
      loop("j", n, {storeArr("c", idx("j"), load("a", idx("j")))}));
  return module;
}

std::uint64_t pathLength(const Module& module, Arch arch, CompilerEra era) {
  const Compiled compiled = compile(module, arch, era);
  Machine machine(compiled.program);
  return machine.run().instructions;
}

TEST(KgenCompile, CopyKernelPerIterationBudgetMatchesPaper) {
  // Listing 1 vs Listing 2: 5 instructions per element on both ISAs with
  // GCC 12, 6 on AArch64 with GCC 9.
  const std::int64_t small = 100;
  const std::int64_t large = 200;
  const Module m1 = streamCopyModule(small);
  const Module m2 = streamCopyModule(large);

  const auto perIteration = [&](Arch arch, CompilerEra era) {
    const std::uint64_t delta =
        pathLength(m2, arch, era) - pathLength(m1, arch, era);
    return static_cast<double>(delta) / static_cast<double>(large - small);
  };

  EXPECT_DOUBLE_EQ(perIteration(Arch::Rv64, CompilerEra::Gcc12), 5.0);
  EXPECT_DOUBLE_EQ(perIteration(Arch::Rv64, CompilerEra::Gcc9), 5.0);
  EXPECT_DOUBLE_EQ(perIteration(Arch::AArch64, CompilerEra::Gcc12), 5.0);
  EXPECT_DOUBLE_EQ(perIteration(Arch::AArch64, CompilerEra::Gcc9), 6.0);
}

TEST(KgenCompile, RiscvIdenticalAcrossEras) {
  // §3.2: "the main kernels remain the same for both RISC-V binaries".
  const Module module = streamCopyModule(64);
  const Compiled gcc9 = compile(module, Arch::Rv64, CompilerEra::Gcc9);
  const Compiled gcc12 = compile(module, Arch::Rv64, CompilerEra::Gcc12);
  EXPECT_EQ(gcc9.program.code, gcc12.program.code);
}

TEST(KgenCompile, RegisterPoolExhaustionReported) {
  Module module;
  module.array("a", 4);
  // 40 distinct constants exceed the FP persistent pool.
  std::vector<Stmt> body;
  for (int i = 0; i < 40; ++i) {
    body.push_back(storeArr("a", idx("i"), cnst(1.0 + i)));
  }
  module.kernel("k").body.push_back(loop("i", 4, std::move(body)));
  EXPECT_THROW(compile(module, Arch::Rv64, CompilerEra::Gcc12), CompileError);
}

}  // namespace
}  // namespace riscmp::kgen
