#include <gtest/gtest.h>

#include "kgen/compile.hpp"
#include "kgen/dump.hpp"
#include "workloads/workloads.hpp"

namespace riscmp::kgen {
namespace {

TEST(KgenDump, ExprRendering) {
  EXPECT_EQ(dumpExpr(*cnst(1.5)), "1.5");
  EXPECT_EQ(dumpExpr(*scalar("s")), "s");
  EXPECT_EQ(dumpExpr(*load("a", idx("i") + 2)), "a[i + 2]");
  EXPECT_EQ(dumpExpr(*load("g", idx2("y", 10, "x"))), "g[10*y + x]");
  EXPECT_EQ(dumpExpr(*add(scalar("s"), cnst(1))), "(s + 1)");
  EXPECT_EQ(dumpExpr(*fmin(scalar("a"), scalar("b"))), "min(a, b)");
  EXPECT_EQ(dumpExpr(*fsqrt(scalar("a"))), "sqrt(a)");
  EXPECT_EQ(dumpExpr(*neg(scalar("a"))), "-(a)");
}

TEST(KgenDump, ModuleListingContainsStructure) {
  const Module module = workloads::makeStream({.n = 8, .reps = 1});
  const std::string text = dumpModule(module);
  EXPECT_NE(text.find("module STREAM"), std::string::npos);
  EXPECT_NE(text.find("array a[8]"), std::string::npos);
  EXPECT_NE(text.find("scalar scalar = 3"), std::string::npos);
  EXPECT_NE(text.find("kernel triad:"), std::string::npos);
  EXPECT_NE(text.find("for j in 0..8:"), std::string::npos);
  EXPECT_NE(text.find("a[j] = (b[j] + (scalar * c[j]))"), std::string::npos);
}

TEST(KgenDump, ProgramListingHasKernelLabelsAndInstructions) {
  const Module module = workloads::makeStream({.n = 8, .reps = 1});
  for (const Arch arch : {Arch::Rv64, Arch::AArch64}) {
    const Compiled compiled = compile(module, arch, CompilerEra::Gcc12);
    const std::string text = dumpProgram(compiled.program);
    EXPECT_NE(text.find("copy:"), std::string::npos) << archName(arch);
    EXPECT_NE(text.find("triad:"), std::string::npos) << archName(arch);
    // Paper-listing shaped instructions appear.
    if (arch == Arch::Rv64) {
      EXPECT_NE(text.find("fld "), std::string::npos);
      EXPECT_NE(text.find("bne "), std::string::npos);
    } else {
      EXPECT_NE(text.find("lsl #3]"), std::string::npos);
      EXPECT_NE(text.find("cmp "), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace riscmp::kgen
