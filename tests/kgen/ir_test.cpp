#include <gtest/gtest.h>

#include "kgen/interp.hpp"
#include "kgen/ir.hpp"

namespace riscmp::kgen {
namespace {

TEST(KgenIr, BuildersProduceExpectedShapes) {
  const AffineIdx i = idx("i");
  EXPECT_EQ(i.terms.size(), 1u);
  EXPECT_EQ(i.terms[0].var, "i");
  EXPECT_EQ(i.terms[0].stride, 1);

  const AffineIdx ij = idx2("y", 100, "x") + 3;
  EXPECT_EQ(ij.terms.size(), 2u);
  EXPECT_EQ(ij.offset, 3);

  const ExprPtr e = add(mul(scalar("s"), load("a", i)), cnst(1.0));
  EXPECT_EQ(e->kind, Expr::Kind::Bin);
  EXPECT_EQ(e->bin, BinOp::Add);
  EXPECT_EQ(e->lhs->bin, BinOp::Mul);
}

Module validModule() {
  Module module;
  module.name = "m";
  module.array("a", 8);
  module.array("b", 8);
  module.scalarInit("s", 2.0);
  Kernel& kernel = module.kernel("k");
  kernel.body.push_back(loop("i", 8, {storeArr("a", idx("i"),
                                               mul(scalar("s"),
                                                   load("b", idx("i")))) }));
  return module;
}

TEST(KgenIr, ValidModulePasses) { EXPECT_NO_THROW(validModule().validate()); }

TEST(KgenIr, UnknownArrayRejected) {
  Module module = validModule();
  module.kernels[0].body.push_back(
      loop("j", 4, {storeArr("nope", idx("j"), cnst(0.0))}));
  EXPECT_THROW(module.validate(), std::runtime_error);
}

TEST(KgenIr, UnknownScalarRejected) {
  Module module = validModule();
  module.kernels[0].body.push_back(loop("j", 4, {accumScalar("zz", cnst(1.0))}));
  EXPECT_THROW(module.validate(), std::runtime_error);
}

TEST(KgenIr, UnboundIndexVariableRejected) {
  Module module = validModule();
  module.kernels[0].body.push_back(
      loop("j", 4, {storeArr("a", idx("k"), cnst(0.0))}));
  EXPECT_THROW(module.validate(), std::runtime_error);
}

TEST(KgenIr, ShadowedLoopVarRejected) {
  Module module = validModule();
  module.kernels[0].body.push_back(
      loop("i", 4, {loop("i", 4, {storeArr("a", idx("i"), cnst(0.0))})}));
  EXPECT_THROW(module.validate(), std::runtime_error);
}

TEST(KgenIr, NonPositiveExtentRejected) {
  Module module = validModule();
  module.kernels[0].body.push_back(loop("j", 0, {}));
  EXPECT_THROW(module.validate(), std::runtime_error);
}

TEST(KgenIr, InitSizeMismatchRejected) {
  Module module = validModule();
  module.arrays[0].init = {1.0, 2.0};  // array has 8 elems
  EXPECT_THROW(module.validate(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Interpreter semantics
// ---------------------------------------------------------------------------

TEST(KgenInterp, ScaleKernel) {
  Module module = validModule();
  module.arrays[1].init = {1, 2, 3, 4, 5, 6, 7, 8};  // b
  Interpreter interp(module);
  interp.run();
  const auto& a = interp.array("a");
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(a[i], 2.0 * (i + 1));
}

TEST(KgenInterp, ReductionAccumulates) {
  Module module;
  module.array("x", 4).init = {1.5, 2.5, 3.0, 4.0};
  module.scalarInit("sum", 0.0);
  module.kernel("dot").body.push_back(
      loop("i", 4, {accumScalar("sum", load("x", idx("i")))}));
  Interpreter interp(module);
  interp.run();
  EXPECT_DOUBLE_EQ(interp.scalarValue("sum"), 11.0);
}

TEST(KgenInterp, NestedLoopsRowMajor) {
  Module module;
  module.array("g", 12);
  module.kernel("fill").body.push_back(loop(
      "y", 3,
      {loop("x", 4, {storeArr("g", idx2("y", 4, "x"),
                              add(mul(cnst(10.0), cnst(1.0)), cnst(0.0)))})}));
  Interpreter interp(module);
  interp.run();
  for (double v : interp.array("g")) EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(KgenInterp, StencilOffsets) {
  Module module;
  module.array("in", 8).init = {0, 1, 2, 3, 4, 5, 6, 7};
  module.array("out", 8);
  // out[i] = in[i-1] + in[i+1], interior only via a 6-trip loop on i+1.
  module.kernel("stencil").body.push_back(
      loop("i", 6, {storeArr("out", idx("i") + 1,
                             add(load("in", idx("i")),
                                 load("in", idx("i") + 2)))}));
  Interpreter interp(module);
  interp.run();
  const auto& out = interp.array("out");
  for (int i = 1; i <= 6; ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * i);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(KgenInterp, OutOfBoundsThrows) {
  Module module;
  module.array("a", 4);
  module.kernel("bad").body.push_back(
      loop("i", 8, {storeArr("a", idx("i"), cnst(1.0))}));
  Interpreter interp(module);
  EXPECT_THROW(interp.run(), std::runtime_error);
}

TEST(KgenInterp, MinMaxSqrtAbsNeg) {
  Module module;
  module.array("a", 1).init = {9.0};
  module.array("r", 4);
  Kernel& kernel = module.kernel("k");
  kernel.body.push_back(loop(
      "i", 1,
      {storeArr("r", idx("i"), fsqrt(load("a", idx("i")))),
       storeArr("r", idx("i") + 1, neg(load("a", idx("i")))),
       storeArr("r", idx("i") + 2, fmin(load("a", idx("i")), cnst(2.0))),
       storeArr("r", idx("i") + 3,
                fabs(sub(cnst(1.0), load("a", idx("i")))))}));
  Interpreter interp(module);
  interp.run();
  const auto& r = interp.array("r");
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], -9.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
  EXPECT_DOUBLE_EQ(r[3], 8.0);
}

TEST(KgenInterp, RunSingleKernelByName) {
  Module module;
  module.array("a", 2);
  module.kernel("first").body.push_back(
      loop("i", 2, {storeArr("a", idx("i"), cnst(1.0))}));
  module.kernel("second").body.push_back(
      loop("i", 2, {storeArr("a", idx("i"), cnst(2.0))}));
  Interpreter interp(module);
  interp.runKernel("first");
  EXPECT_DOUBLE_EQ(interp.array("a")[0], 1.0);
  EXPECT_THROW(interp.runKernel("third"), std::runtime_error);
}

}  // namespace
}  // namespace riscmp::kgen
