#include <gtest/gtest.h>

#include "kgen/backend_common.hpp"

namespace riscmp::kgen {
namespace {

TEST(GroupKey, SameTermsShareAGroup) {
  const GroupKey a = groupKeyFor("arr", idx("i"));
  const GroupKey b = groupKeyFor("arr", idx("i") + 3);
  EXPECT_EQ(a, b);  // same bucket, offsets fold into displacements
}

TEST(GroupKey, TermOrderIsCanonical) {
  AffineIdx ij;
  ij.terms = {{"i", 1}, {"j", 8}};
  AffineIdx ji;
  ji.terms = {{"j", 8}, {"i", 1}};
  EXPECT_EQ(groupKeyFor("a", ij), groupKeyFor("a", ji));
}

TEST(GroupKey, DifferentStridesSplitGroups) {
  EXPECT_FALSE(groupKeyFor("a", idx("i")) == groupKeyFor("a", idx("i", 2)));
}

TEST(GroupKey, DifferentArraysSplitGroups) {
  EXPECT_FALSE(groupKeyFor("a", idx("i")) == groupKeyFor("b", idx("i")));
}

TEST(GroupKey, FarOffsetsSplitIntoBuckets) {
  const GroupKey near = groupKeyFor("a", idx("i"));
  const GroupKey far = groupKeyFor("a", idx("i") + 1000);
  EXPECT_FALSE(near == far);  // bucket 0 vs bucket 3
  EXPECT_EQ(far.bucket, 1000 / 256);
}

TEST(GroupKey, NegativeOffsetsBucketWithFloorDivision) {
  EXPECT_EQ(groupKeyFor("a", idx("i") + (-1)).bucket, -1);
  EXPECT_EQ(groupKeyFor("a", idx("i") + (-256)).bucket, -1);
  EXPECT_EQ(groupKeyFor("a", idx("i") + (-257)).bucket, -2);
}

TEST(StrideOf, FindsTermOrZero) {
  const GroupKey key = groupKeyFor("a", idx2("y", 64, "x"));
  EXPECT_EQ(strideOf(key, "y"), 64);
  EXPECT_EQ(strideOf(key, "x"), 1);
  EXPECT_EQ(strideOf(key, "z"), 0);
}

TEST(CollectGroups, DeduplicatesAndTracksMinOffset) {
  Module module;
  module.array("a", 64);
  std::vector<Stmt> body;
  body.push_back(storeArr("a", idx("i") + 5, load("a", idx("i") + 2)));
  const auto groups = collectGroups(body, module);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].baseOffset, 2);
}

TEST(CollectGroups, SkipsNestedLoops) {
  Module module;
  module.array("a", 64);
  std::vector<Stmt> body;
  body.push_back(loop("j", 4, {storeArr("a", idx("j"), cnst(0.0))}));
  EXPECT_TRUE(collectGroups(body, module).empty());
}

TEST(LoopVarUsed, SeesUsesAtAnyDepth) {
  const Stmt nest = loop(
      "y", 4, {loop("x", 4, {storeArr("g", idx2("y", 4, "x"), cnst(0.0))})});
  EXPECT_TRUE(loopVarUsed(nest, "y"));
  const Stmt unused = loop("r", 4, {loop("x", 4, {storeArr("g", idx("x"),
                                                           cnst(0.0))})});
  EXPECT_FALSE(loopVarUsed(unused, "r"));
}

TEST(NestedLoopsUseVar, OnlyCountsInnerLoops) {
  // Direct use in the loop's own body does not require a scaled counter.
  const Stmt direct = loop("i", 4, {storeArr("a", idx("i"), cnst(0.0))});
  EXPECT_FALSE(nestedLoopsUseVar(direct, "i"));
  const Stmt nested =
      loop("y", 4, {loop("x", 4, {storeArr("a", idx("y", 4), cnst(0.0))})});
  EXPECT_TRUE(nestedLoopsUseVar(nested, "y"));
}

TEST(RegPool, AllocatesReleasesAndExhausts) {
  RegPool pool("test", {1, 2});
  EXPECT_EQ(pool.available(), 2u);
  const unsigned a = pool.alloc();
  const unsigned b = pool.alloc();
  EXPECT_NE(a, b);
  EXPECT_THROW(pool.alloc(), CompileError);
  pool.release(a);
  EXPECT_EQ(pool.alloc(), a);
}

TEST(AnalyzeKernel, CollectsScalarsAndConstantsInFirstUseOrder) {
  Module module;
  module.array("a", 8);
  module.scalarInit("s", 1.0);
  module.scalarInit("acc", 0.0);
  Kernel& kernel = module.kernel("k");
  kernel.body.push_back(loop(
      "i", 8,
      {storeArr("a", idx("i"), add(scalar("s"), cnst(2.5))),
       accumScalar("acc", cnst(2.5)),   // duplicate constant
       accumScalar("acc", cnst(7.0))}));
  const KernelInfo info = analyzeKernel(module, kernel);
  ASSERT_EQ(info.scalars.size(), 2u);
  EXPECT_EQ(info.scalars[0], "s");
  EXPECT_EQ(info.scalars[1], "acc");
  ASSERT_EQ(info.constants.size(), 2u);
  EXPECT_EQ(info.constants[0], 2.5);
  EXPECT_EQ(info.constants[1], 7.0);
}

TEST(ConstKey, DistinguishesSignedZero) {
  EXPECT_NE(constKey(0.0), constKey(-0.0));
  EXPECT_EQ(constKey(1.5), constKey(1.5));
}

}  // namespace
}  // namespace riscmp::kgen
