// Differential fuzzing of the whole pipeline: pseudo-random IR modules are
// compiled for both ISAs under both compiler eras, executed on the
// emulation core, and every array is compared bit-for-bit against the
// reference interpreter. Any divergence pinpoints a bug in one backend,
// one encoder/decoder pair, or one executor.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "kgen/interp.hpp"

namespace riscmp::kgen {
namespace {

class ModuleFuzzer {
 public:
  explicit ModuleFuzzer(std::uint64_t seed) : rng_(seed) {}

  Module generate() {
    Module module;
    module.name = "fuzz";
    const int arrayCount = pick(2, 4);
    for (int i = 0; i < arrayCount; ++i) {
      auto& array = module.array("arr" + std::to_string(i), 48);
      array.init.resize(48);
      for (double& v : array.init) v = value();
      arrays_.push_back(array.name);
    }
    const int scalarCount = pick(1, 3);
    for (int i = 0; i < scalarCount; ++i) {
      module.scalarInit("s" + std::to_string(i), value());
      scalars_.push_back("s" + std::to_string(i));
    }

    const int kernelCount = pick(1, 3);
    for (int k = 0; k < kernelCount; ++k) {
      Kernel& kernel = module.kernel("k" + std::to_string(k));
      const int loops = pick(1, 2);
      for (int l = 0; l < loops; ++l) {
        kernel.body.push_back(makeLoop(l));
      }
    }
    return module;
  }

 private:
  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }
  double value() {
    // Exactly-representable small values avoid accumulation blow-ups while
    // still exercising real arithmetic.
    return std::uniform_int_distribution<int>(-16, 16)(rng_) * 0.25 + 0.125;
  }
  std::string anyArray() {
    return arrays_[static_cast<std::size_t>(pick(0, static_cast<int>(arrays_.size()) - 1))];
  }
  std::string anyScalar() {
    return scalars_[static_cast<std::size_t>(
        pick(0, static_cast<int>(scalars_.size()) - 1))];
  }

  /// Either a flat loop or a 2-level nest over a 6x6 tile.
  Stmt makeLoop(int ordinal) {
    const std::string suffix = std::to_string(ordinal);
    if (pick(0, 2) == 0) {
      std::vector<Stmt> inner;
      const int stmts = pick(1, 2);
      for (int s = 0; s < stmts; ++s) {
        inner.push_back(makeStmt(idx2("y" + suffix, 6, "x" + suffix), 36));
      }
      return loop("y" + suffix, 6, {loop("x" + suffix, 6, std::move(inner))});
    }
    std::vector<Stmt> body;
    const int stmts = pick(1, 3);
    for (int s = 0; s < stmts; ++s) {
      body.push_back(makeStmt(idx("i" + suffix), 40));
    }
    return loop("i" + suffix, 40, std::move(body));
  }

  Stmt makeStmt(const AffineIdx& index, std::int64_t /*extent*/) {
    switch (pick(0, 3)) {
      case 0:
        return storeArr(anyArray(), index, makeExpr(index, 3));
      case 1:
        return accumScalar(anyScalar(), makeExpr(index, 2));
      case 2:
        return setScalar(anyScalar(), makeExpr(index, 2));
      default:
        return storeArr(anyArray(), index + pick(0, 6),
                        makeExpr(index, 3));
    }
  }

  ExprPtr makeExpr(const AffineIdx& index, int depth) {
    if (depth == 0 || pick(0, 3) == 0) {
      switch (pick(0, 2)) {
        case 0:
          return cnst(value());
        case 1:
          return scalar(anyScalar());
        default:
          return load(anyArray(), index + pick(0, 7));
      }
    }
    switch (pick(0, 6)) {
      case 0:
        return add(makeExpr(index, depth - 1), makeExpr(index, depth - 1));
      case 1:
        return sub(makeExpr(index, depth - 1), makeExpr(index, depth - 1));
      case 2:
        return mul(makeExpr(index, depth - 1), makeExpr(index, depth - 1));
      case 3:
        // Guarded divide: |x| + 1.5 keeps the denominator away from zero.
        return divide(makeExpr(index, depth - 1),
                      add(fabs(makeExpr(index, depth - 1)), cnst(1.5)));
      case 4:
        return fmin(makeExpr(index, depth - 1), makeExpr(index, depth - 1));
      case 5:
        return fmax(makeExpr(index, depth - 1), makeExpr(index, depth - 1));
      default:
        return fsqrt(add(fabs(makeExpr(index, depth - 1)), cnst(0.25)));
    }
  }

  std::mt19937_64 rng_;
  std::vector<std::string> arrays_;
  std::vector<std::string> scalars_;
};

class KgenFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KgenFuzz, AllBackendsMatchInterpreterBitForBit) {
  ModuleFuzzer fuzzer(GetParam());
  const Module module = fuzzer.generate();
  ASSERT_NO_THROW(module.validate());

  Interpreter interp(module);
  interp.run();

  for (const Arch arch : {Arch::Rv64, Arch::AArch64}) {
    for (const CompilerEra era : {CompilerEra::Gcc9, CompilerEra::Gcc12}) {
      const Compiled compiled = compile(module, arch, era);
      Machine machine(compiled.program);
      const RunResult result = machine.run();
      ASSERT_TRUE(result.exitedCleanly);

      for (const ArrayDecl& array : module.arrays) {
        const std::uint64_t base = compiled.arrayAddr.at(array.name);
        const auto& expected = interp.array(array.name);
        for (std::int64_t i = 0; i < array.elems; ++i) {
          const double actual = machine.memory().read<double>(base + i * 8);
          const double want = expected[static_cast<std::size_t>(i)];
          // NaNs compare bit-wise (both sides must produce the same kind).
          if (std::isnan(actual) && std::isnan(want)) continue;
          ASSERT_EQ(actual, want)
              << "seed " << GetParam() << " " << archName(arch) << "/"
              << eraName(era) << " " << array.name << "[" << i << "]";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KgenFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace riscmp::kgen
