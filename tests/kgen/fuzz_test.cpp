// Differential fuzzing of the whole pipeline, routed through the
// conformance subsystem (ISSUE 3): seeded random IR modules from the
// KernelFuzzer run through the differential oracle — reference interpreter
// vs both ISA backends under both compiler eras, with store-stream and
// trace-invariant checking — so any divergence pinpoints a bug in one
// backend, one encoder/decoder pair, or one executor. The delta-debugging
// shrinker that minimizes such divergences is unit-tested here against
// synthetic failure predicates.
#include <gtest/gtest.h>

#include "verify/conformance/kernel_fuzzer.hpp"
#include "verify/conformance/oracle.hpp"
#include "verify/conformance/shrink.hpp"

namespace riscmp::kgen {
namespace {

using verify::conformance::KernelFuzzer;
using verify::conformance::OracleReport;
using verify::conformance::opCount;
using verify::conformance::runOracle;
using verify::conformance::shrinkModule;

class KgenFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KgenFuzz, OracleFindsNoDivergenceOnAnyConfig) {
  KernelFuzzer fuzzer(GetParam());
  const Module module = fuzzer.generate();
  ASSERT_NO_THROW(module.validate());

  const OracleReport report = runOracle(module);
  EXPECT_TRUE(report.ok()) << "seed " << GetParam() << ":\n"
                           << report.summary();
  EXPECT_EQ(report.runs.size(), 4u) << "all four configs must complete";
}

INSTANTIATE_TEST_SUITE_P(Seeds, KgenFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

// -- Shrinker ---------------------------------------------------------------

bool exprHasDiv(const Expr& expr) {
  if (expr.kind == Expr::Kind::Bin && expr.bin == BinOp::Div) return true;
  return (expr.lhs && exprHasDiv(*expr.lhs)) ||
         (expr.rhs && exprHasDiv(*expr.rhs));
}

bool stmtHasDiv(const Stmt& stmt) {
  if (stmt.value && exprHasDiv(*stmt.value)) return true;
  for (const Stmt& inner : stmt.body) {
    if (stmtHasDiv(inner)) return true;
  }
  return false;
}

/// Synthetic failure: "the module still contains a divide". Stands in for a
/// real divergence whose root cause is one IR construct.
bool containsDiv(const Module& module) {
  for (const Kernel& kernel : module.kernels) {
    for (const Stmt& stmt : kernel.body) {
      if (stmtHasDiv(stmt)) return true;
    }
  }
  return false;
}

TEST(Shrink, OpCountCountsStatementsAndOperators) {
  Module module;
  module.array("a", 8);
  module.scalarInit("s", 1.0);
  Kernel& kernel = module.kernel("k");
  // loop (1) { store (1) of (a[i] + s) * 2 (2 ops); accum (1) of s (0 ops) }
  kernel.body.push_back(
      loop("i", 8,
           {storeArr("a", idx("i"),
                     mul(add(load("a", idx("i")), scalar("s")), cnst(2.0))),
            accumScalar("s", scalar("s"))}));
  EXPECT_EQ(opCount(module), 5);
}

/// A known-failing module with the failure buried in one statement of one
/// kernel among several: the shrinker must strip everything else away.
Module buriedDivModule() {
  Module module;
  auto& a = module.array("a", 16);
  a.init.assign(16, 1.5);
  module.array("b", 16);
  module.scalarInit("s", 2.0);

  Kernel& noise = module.kernel("noise");
  noise.body.push_back(
      loop("i0", 16, {storeArr("b", idx("i0"),
                               add(load("a", idx("i0")), scalar("s")))}));

  Kernel& needle = module.kernel("needle");
  needle.body.push_back(loop(
      "i1", 16,
      {storeArr("b", idx("i1"), mul(load("a", idx("i1")), cnst(3.0))),
       accumScalar("s", divide(load("a", idx("i1")),
                               add(fabs(scalar("s")), cnst(1.5)))),
       setScalar("s", fmax(scalar("s"), cnst(0.25)))}));

  Kernel& tail = module.kernel("tail");
  tail.body.push_back(
      loop("i2", 8, {storeArr("a", idx("i2"), neg(load("b", idx("i2"))))}));
  return module;
}

TEST(Shrink, MinimizesBuriedFailureToAtMostThreeOps) {
  const Module module = buriedDivModule();
  ASSERT_TRUE(containsDiv(module));
  ASSERT_GT(opCount(module), 10);

  const Module minimized = shrinkModule(module, containsDiv);

  EXPECT_NO_THROW(minimized.validate());
  EXPECT_TRUE(containsDiv(minimized)) << "shrinking must preserve the failure";
  EXPECT_LE(opCount(minimized), 3) << "local minimum should be tiny";
  EXPECT_EQ(minimized.kernels.size(), 1u);
}

TEST(Shrink, FuzzedModuleMinimizesUnderSyntheticPredicate) {
  // Find a fuzzed module containing a divide, then minimize against the
  // synthetic predicate: the result must stay valid, still contain the
  // divide, and be no larger than the original.
  KernelFuzzer fuzzer(5);
  Module module = fuzzer.generate();
  while (!containsDiv(module)) module = fuzzer.generate();

  const int before = opCount(module);
  const Module minimized = shrinkModule(module, containsDiv);
  EXPECT_NO_THROW(minimized.validate());
  EXPECT_TRUE(containsDiv(minimized));
  EXPECT_LE(opCount(minimized), before);
  EXPECT_LE(opCount(minimized), 3);
}

TEST(Shrink, PredicateExceptionsCountAsNotFailing) {
  const Module module = buriedDivModule();
  int calls = 0;
  const Module minimized =
      shrinkModule(module, [&](const Module& candidate) -> bool {
        ++calls;
        if (candidate.kernels.size() < 3) {
          throw std::runtime_error("synthetic predicate error");
        }
        return containsDiv(candidate);
      });
  EXPECT_GT(calls, 0);
  // Dropping any kernel makes the predicate throw, so the module can only
  // shrink within kernels; all three survive.
  EXPECT_EQ(minimized.kernels.size(), 3u);
  EXPECT_TRUE(containsDiv(minimized));
}

}  // namespace
}  // namespace riscmp::kgen
