// Integration tests asserting the paper's headline findings hold for this
// reproduction (the EXPERIMENTS.md claims, as CI checks). Each test names
// the paper section it guards. Workloads run at reduced sizes, so all
// assertions are about ratios and directions, never absolute counts.
#include <gtest/gtest.h>

#include "analysis/critical_path.hpp"
#include "analysis/dep_distance.hpp"
#include "analysis/path_length.hpp"
#include "analysis/windowed_cp.hpp"
#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "uarch/core_model.hpp"
#include "uarch/ooo_core.hpp"
#include "workloads/workloads.hpp"

namespace riscmp {
namespace {

using kgen::Compiled;
using kgen::CompilerEra;

struct Measured {
  std::uint64_t pathLength = 0;
  std::uint64_t cp = 0;
  double branchFraction = 0.0;
};

Measured measure(const kgen::Module& module, Arch arch, CompilerEra era) {
  const Compiled compiled = kgen::compile(module, arch, era);
  Machine machine(compiled.program);
  PathLengthCounter counter(compiled.program);
  CriticalPathAnalyzer cp;
  machine.addObserver(counter);
  machine.addObserver(cp);
  const RunResult result = machine.run();
  return {result.instructions, cp.criticalPath(),
          static_cast<double>(counter.branchCount()) /
              static_cast<double>(result.instructions)};
}

std::vector<kgen::Module> smallSuite() {
  std::vector<kgen::Module> suite;
  suite.push_back(workloads::makeStream({.n = 1000, .reps = 3}));
  suite.push_back(workloads::makeCloverLeaf({.nx = 12, .ny = 12, .steps = 1}));
  suite.push_back(workloads::makeLbm({.nx = 10, .ny = 8, .iters = 2}));
  suite.push_back(
      workloads::makeMiniBude({.poses = 6, .ligandAtoms = 4, .proteinAtoms = 10}));
  suite.push_back(workloads::makeMinisweep(
      {.ncellX = 3, .ncellY = 4, .ncellZ = 4, .ne = 1, .na = 6}));
  return suite;
}

// §3.2: "path lengths for RISC-V and Arm are similar, in most cases within
// 10% of their compiler version counterpart" (largest observed: 21.7%).
TEST(PaperTrends, PathLengthsWithinPaperEnvelope) {
  for (const auto& module : smallSuite()) {
    for (const CompilerEra era : {CompilerEra::Gcc9, CompilerEra::Gcc12}) {
      const Measured arm = measure(module, Arch::AArch64, era);
      const Measured riscv = measure(module, Arch::Rv64, era);
      const double ratio = static_cast<double>(riscv.pathLength) /
                           static_cast<double>(arm.pathLength);
      EXPECT_GT(ratio, 0.78) << module.name;
      EXPECT_LT(ratio, 1.25) << module.name;
    }
  }
}

// §3.3: GCC 12.2 strictly improves the AArch64 binaries (the one-instruction
// loop-exit saving), and never changes the RISC-V ones.
TEST(PaperTrends, EraEffectMatchesSection33) {
  for (const auto& module : smallSuite()) {
    const Measured arm9 = measure(module, Arch::AArch64, CompilerEra::Gcc9);
    const Measured arm12 = measure(module, Arch::AArch64, CompilerEra::Gcc12);
    EXPECT_LT(arm12.pathLength, arm9.pathLength) << module.name;

    const Measured rv9 = measure(module, Arch::Rv64, CompilerEra::Gcc9);
    const Measured rv12 = measure(module, Arch::Rv64, CompilerEra::Gcc12);
    EXPECT_EQ(rv9.pathLength, rv12.pathLength) << module.name;
  }
}

// §3.3: STREAM's copy kernel improves by exactly 12.5% per element from
// GCC 9.2 to 12.2 on AArch64 (6 -> 5 instructions; paper's figure).
TEST(PaperTrends, StreamCopyTwelvePointFivePercent) {
  const auto perElement = [](std::int64_t n, CompilerEra era) {
    const kgen::Module module = workloads::makeStream({.n = n, .reps = 1});
    return measure(module, Arch::AArch64, era).pathLength;
  };
  // Differential between two sizes isolates the loop body.
  const double gcc9 =
      static_cast<double>(perElement(2000, CompilerEra::Gcc9) -
                          perElement(1000, CompilerEra::Gcc9));
  const double gcc12 =
      static_cast<double>(perElement(2000, CompilerEra::Gcc12) -
                          perElement(1000, CompilerEra::Gcc12));
  // Per-element totals over the four kernels under GCC 12.2:
  // copy 5 (ldr/str/add/cmp/b.ne), scale 6 (+fmul), add 7 (2 ldr + fadd),
  // triad 7 (2 ldr + fmadd) => 25; the GCC 9.2 era adds exactly 1 per
  // kernel (the §3.3 two-instruction loop-exit test) => 29.
  EXPECT_DOUBLE_EQ(gcc9 / 1000.0, 29.0);
  EXPECT_DOUBLE_EQ(gcc12 / 1000.0, 25.0);
  // The copy kernel alone improves 6 -> 5: the paper's 12.5% figure (also
  // asserted instruction-exactly in tests/kgen/compile_test.cpp).
}

// §3.3: RISC-V STREAM executes ~15% branches.
TEST(PaperTrends, RiscvStreamBranchFraction) {
  const kgen::Module module = workloads::makeStream({.n = 2000, .reps = 2});
  const Measured riscv = measure(module, Arch::Rv64, CompilerEra::Gcc12);
  EXPECT_NEAR(riscv.branchFraction, 0.148, 0.02);
}

// §4.2: STREAM's critical path is the per-kernel index chain: CP ~ N,
// essentially identical across ISAs (paper: within 0.06%).
TEST(PaperTrends, StreamCriticalPathTracksArrayLength) {
  const std::int64_t n = 3000;
  const kgen::Module module = workloads::makeStream({.n = n, .reps = 2});
  const Measured arm = measure(module, Arch::AArch64, CompilerEra::Gcc12);
  const Measured riscv = measure(module, Arch::Rv64, CompilerEra::Gcc12);
  EXPECT_NEAR(static_cast<double>(arm.cp), static_cast<double>(n),
              static_cast<double>(n) * 0.05);
  EXPECT_NEAR(static_cast<double>(riscv.cp), static_cast<double>(arm.cp),
              static_cast<double>(arm.cp) * 0.01);
}

// §4.2: "estimated runtimes for both ISAs are very similar" — the ideal
// (CP-bound) runtimes agree within a few percent on every workload.
TEST(PaperTrends, IdealRuntimesNearParity) {
  for (const auto& module : smallSuite()) {
    const Measured arm = measure(module, Arch::AArch64, CompilerEra::Gcc12);
    const Measured riscv = measure(module, Arch::Rv64, CompilerEra::Gcc12);
    const double ratio =
        static_cast<double>(riscv.cp) / static_cast<double>(arm.cp);
    EXPECT_GT(ratio, 0.5) << module.name;
    EXPECT_LT(ratio, 2.0) << module.name;
  }
}

// §5.2: with the TX2 latency model, FP-chain-dominated workloads scale
// their CP by roughly the FP latency, identically on both ISAs.
TEST(PaperTrends, ScaledCpScalesFpChainsEqually) {
  const kgen::Module module =
      workloads::makeLbm({.nx = 8, .ny = 8, .iters = 1});
  const uarch::CoreModel tx2 = uarch::CoreModel::named("tx2");
  for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
    const Compiled compiled =
        kgen::compile(module, arch, CompilerEra::Gcc12);
    Machine machine(compiled.program);
    CriticalPathAnalyzer basic;
    CriticalPathAnalyzer scaled{tx2.latencies};
    machine.addObserver(basic);
    machine.addObserver(scaled);
    machine.run();
    const double factor = static_cast<double>(scaled.criticalPath()) /
                          static_cast<double>(basic.criticalPath());
    EXPECT_GT(factor, 3.0) << archName(arch);
    EXPECT_LT(factor, 7.0) << archName(arch);
  }
}

// §6.2: "In every case ... at lower window sizes (500 or less), RISC-V has
// more ILP available."
TEST(PaperTrends, RiscvHasMoreIlpAtSmallWindows) {
  for (const auto& module : smallSuite()) {
    std::array<double, 2> ilpAtW4{};
    int c = 0;
    for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
      const Compiled compiled =
          kgen::compile(module, arch, CompilerEra::Gcc12);
      Machine machine(compiled.program);
      WindowedCPAnalyzer windowed({4});
      machine.addObserver(windowed);
      machine.run();
      ilpAtW4[c++] = windowed.results()[0].meanIlp;
    }
    EXPECT_GE(ilpAtW4[1], ilpAtW4[0] * 0.99) << module.name;
  }
}

// §6.2 mechanism: RISC-V's dependent instructions are spread further apart
// (dependency-distance view) on STREAM, the paper's cleanest example.
TEST(PaperTrends, StreamDependenciesMoreSpreadOnRiscv) {
  const kgen::Module module = workloads::makeStream({.n = 1000, .reps = 2});
  std::array<double, 2> shortRange{};
  int c = 0;
  for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
    const Compiled compiled = kgen::compile(module, arch, CompilerEra::Gcc12);
    Machine machine(compiled.program);
    DependencyDistanceAnalyzer analyzer;
    machine.addObserver(analyzer);
    machine.run();
    shortRange[c++] = analyzer.fractionWithin(4);
  }
  EXPECT_LT(shortRange[1], shortRange[0]);
}

// §7 conclusion via the §8 extension: on matched OoO hardware the two ISAs'
// cycle counts agree closely (neither is architecturally disadvantaged).
TEST(PaperTrends, OooCyclesNearParityOnMatchedHardware) {
  const uarch::CoreModel tx2 = uarch::CoreModel::named("tx2");
  const uarch::CoreModel riscvTx2 = uarch::CoreModel::named("riscv-tx2");
  for (const auto& module : smallSuite()) {
    std::array<std::uint64_t, 2> cycles{};
    int c = 0;
    for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
      const Compiled compiled =
          kgen::compile(module, arch, CompilerEra::Gcc12);
      Machine machine(compiled.program);
      uarch::OoOCoreModel core(arch == Arch::Rv64 ? riscvTx2 : tx2);
      machine.addObserver(core);
      machine.run();
      cycles[c++] = core.cycles();
    }
    const double ratio =
        static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]);
    EXPECT_GT(ratio, 0.8) << module.name;
    EXPECT_LT(ratio, 1.25) << module.name;
  }
}

}  // namespace
}  // namespace riscmp
