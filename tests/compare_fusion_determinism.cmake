# E13 determinism acceptance (ISSUE 8): the macro-op fusion bench must
# produce byte-identical reports and BENCH_fusion.json whatever the worker
# count. Runs the bench on 1 and 8 engine workers and diffs both outputs;
# only the engine footer (which prints jobs=N) and the JSON-path echo line
# may differ.
#
# Usage: cmake -DBENCH=<path-to-ext_fusion> -DOUT=<scratch-dir>
#              -P compare_fusion_determinism.cmake
file(MAKE_DIRECTORY ${OUT})

foreach(jobs 1 8)
  execute_process(
    COMMAND ${BENCH} --scale=0.05 --jobs=${jobs} --json=${OUT}/j${jobs}.json
    OUTPUT_FILE ${OUT}/j${jobs}.txt
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "ext_fusion --jobs=${jobs} exited ${status}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}/j1.json ${OUT}/j8.json
  RESULT_VARIABLE json_differs)
if(NOT json_differs EQUAL 0)
  message(FATAL_ERROR "BENCH_fusion JSON differs between --jobs=1 and "
                      "--jobs=8: the report is not deterministic")
endif()

foreach(jobs 1 8)
  file(READ ${OUT}/j${jobs}.txt report)
  string(REGEX REPLACE "engine: [^\n]*\n" "" report "${report}")
  string(REGEX REPLACE "JSON written to [^\n]*\n" "" report "${report}")
  set(report_j${jobs} "${report}")
endforeach()
if(NOT report_j1 STREQUAL report_j8)
  message(FATAL_ERROR "ext_fusion stdout differs between --jobs=1 and "
                      "--jobs=8 (beyond the engine footer)")
endif()
message(STATUS "E13 report and JSON byte-identical across worker counts")
