// Closed-form path-length checks: for the regular workloads the dynamic
// instruction count follows an exact linear formula in the problem size;
// these tests pin the generated code's per-iteration budgets across sizes
// (parameterised sweeps), so codegen regressions surface as off-by-N
// failures rather than vague ratio drifts.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "workloads/workloads.hpp"

namespace riscmp::workloads {
namespace {

using kgen::CompilerEra;

std::uint64_t pathLength(const kgen::Module& module, Arch arch,
                         CompilerEra era) {
  const kgen::Compiled compiled = kgen::compile(module, arch, era);
  Machine machine(compiled.program);
  return machine.run().instructions;
}

class StreamFormula : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(StreamFormula, PerElementBudgetsExact) {
  const std::int64_t n = GetParam();
  const std::int64_t reps = 2;
  const kgen::Module module = makeStream({.n = n, .reps = reps});

  // Differential against a second size removes all fixed overhead.
  const kgen::Module bigger = makeStream({.n = n + 64, .reps = reps});

  struct Expect {
    Arch arch;
    CompilerEra era;
    std::int64_t perElement;  // summed over the four kernels
  };
  // GCC 12.2: copy 5 + scale 6 + add 7 + triad 7 = 25 (AArch64)
  //           copy 5 + scale 6 + add 8 + triad 8 = 27 (RISC-V: one pointer
  //           bump per live array)
  // GCC 9.2 adds exactly +1 per kernel on AArch64 only.
  const Expect expectations[] = {
      {Arch::AArch64, CompilerEra::Gcc12, 25},
      {Arch::AArch64, CompilerEra::Gcc9, 29},
      {Arch::Rv64, CompilerEra::Gcc12, 27},
      {Arch::Rv64, CompilerEra::Gcc9, 27},
  };
  for (const Expect& expect : expectations) {
    const std::uint64_t delta = pathLength(bigger, expect.arch, expect.era) -
                                pathLength(module, expect.arch, expect.era);
    EXPECT_EQ(delta, static_cast<std::uint64_t>(64 * reps *
                                                expect.perElement))
        << archName(expect.arch) << "/" << eraName(expect.era) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StreamFormula,
                         ::testing::Values(64, 100, 256, 1000));

class BudeFormula : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BudeFormula, PathLengthLinearInPoses) {
  const std::int64_t poses = GetParam();
  const MiniBudeParams base{.poses = poses, .ligandAtoms = 4,
                            .proteinAtoms = 8};
  MiniBudeParams more = base;
  more.poses = poses + 5;
  for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
    const std::uint64_t delta =
        pathLength(makeMiniBude(more), arch, CompilerEra::Gcc12) -
        pathLength(makeMiniBude(base), arch, CompilerEra::Gcc12);
    // Per-pose cost is constant: delta must be divisible by the pose delta.
    EXPECT_EQ(delta % 5, 0u) << archName(arch);
    EXPECT_GT(delta / 5, 100u) << archName(arch);  // real per-pose work
  }
}

INSTANTIATE_TEST_SUITE_P(Poses, BudeFormula, ::testing::Values(2, 6, 12));

TEST(LbmFormula, PathLengthLinearInIterations) {
  const LbmParams one{.nx = 8, .ny = 6, .iters = 1};
  const LbmParams two{.nx = 8, .ny = 6, .iters = 2};
  const LbmParams three{.nx = 8, .ny = 6, .iters = 3};
  for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
    const std::uint64_t p1 = pathLength(makeLbm(one), arch, CompilerEra::Gcc12);
    const std::uint64_t p2 = pathLength(makeLbm(two), arch, CompilerEra::Gcc12);
    const std::uint64_t p3 =
        pathLength(makeLbm(three), arch, CompilerEra::Gcc12);
    // Each extra iteration costs the same.
    EXPECT_EQ(p2 - p1, p3 - p2) << archName(arch);
  }
}

TEST(SweepFormula, PathLengthLinearInAngles) {
  // na enters the face-array strides, and pow2 vs non-pow2 strides compile
  // to different preheader sequences (shift vs multiply) — so linearity is
  // asserted within one codegen class (all non-pow2 angle counts).
  const MinisweepParams base{.ncellX = 2, .ncellY = 3, .ncellZ = 3, .ne = 1,
                             .na = 6};
  MinisweepParams more = base;
  more.na = 12;
  MinisweepParams most = base;
  most.na = 18;
  for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
    const std::uint64_t small =
        pathLength(makeMinisweep(base), arch, CompilerEra::Gcc12);
    const std::uint64_t medium =
        pathLength(makeMinisweep(more), arch, CompilerEra::Gcc12);
    const std::uint64_t large =
        pathLength(makeMinisweep(most), arch, CompilerEra::Gcc12);
    EXPECT_EQ(medium - small, large - medium) << archName(arch);
  }
}

TEST(CloverFormula, StepsScaleLinearly) {
  const CloverLeafParams one{.nx = 10, .ny = 10, .steps = 1};
  const CloverLeafParams two{.nx = 10, .ny = 10, .steps = 2};
  const CloverLeafParams three{.nx = 10, .ny = 10, .steps = 3};
  for (const Arch arch : {Arch::AArch64, Arch::Rv64}) {
    const std::uint64_t p1 =
        pathLength(makeCloverLeaf(one), arch, CompilerEra::Gcc9);
    const std::uint64_t p2 =
        pathLength(makeCloverLeaf(two), arch, CompilerEra::Gcc9);
    const std::uint64_t p3 =
        pathLength(makeCloverLeaf(three), arch, CompilerEra::Gcc9);
    EXPECT_EQ(p2 - p1, p3 - p2) << archName(arch);
  }
}

}  // namespace
}  // namespace riscmp::workloads
