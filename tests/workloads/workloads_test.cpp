// Workload validation: each of the paper's five workloads compiles for both
// ISAs under both compiler eras, runs to completion on the emulation core,
// and produces memory identical to the reference interpreter.
#include <gtest/gtest.h>

#include "analysis/path_length.hpp"
#include "core/machine.hpp"
#include "kgen/compile.hpp"
#include "kgen/interp.hpp"
#include "workloads/workloads.hpp"

namespace riscmp::workloads {
namespace {

using kgen::Compiled;
using kgen::CompilerEra;
using kgen::Interpreter;

struct RunStats {
  std::uint64_t instructions = 0;
};

RunStats runAndValidate(const kgen::Module& module, Arch arch,
                        CompilerEra era) {
  const Compiled compiled = kgen::compile(module, arch, era);
  Machine machine(compiled.program);
  const RunResult result = machine.run();
  EXPECT_TRUE(result.exitedCleanly);

  Interpreter interp(module);
  interp.run();
  for (const kgen::ArrayDecl& array : module.arrays) {
    const std::uint64_t base = compiled.arrayAddr.at(array.name);
    const auto& expected = interp.array(array.name);
    for (std::int64_t i = 0; i < array.elems; ++i) {
      const double actual = machine.memory().read<double>(base + i * 8);
      if (actual != expected[static_cast<std::size_t>(i)]) {
        ADD_FAILURE() << module.name << " " << archName(arch) << "/"
                      << eraName(era) << ": " << array.name << "[" << i
                      << "] = " << actual << ", expected "
                      << expected[static_cast<std::size_t>(i)];
        return {result.instructions};
      }
    }
  }
  return {result.instructions};
}

class WorkloadValidation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

const char* kWorkloadNames[] = {"STREAM", "CloverLeaf", "LBM", "miniBUDE",
                                "minisweep"};

kgen::Module smallWorkload(int index) {
  switch (index) {
    case 0:
      return makeStream({.n = 500, .reps = 2});
    case 1:
      return makeCloverLeaf({.nx = 10, .ny = 8, .steps = 2});
    case 2:
      return makeLbm({.nx = 8, .ny = 6, .iters = 2});
    case 3:
      return makeMiniBude({.poses = 4, .ligandAtoms = 3, .proteinAtoms = 5});
    default:
      return makeMinisweep(
          {.ncellX = 3, .ncellY = 3, .ncellZ = 4, .ne = 2, .na = 4});
  }
}

TEST_P(WorkloadValidation, SimulatedMemoryMatchesInterpreter) {
  const auto [workload, configIndex] = GetParam();
  const Arch arch = configIndex / 2 == 0 ? Arch::AArch64 : Arch::Rv64;
  const CompilerEra era =
      configIndex % 2 == 0 ? CompilerEra::Gcc9 : CompilerEra::Gcc12;
  const kgen::Module module = smallWorkload(workload);
  const RunStats stats = runAndValidate(module, arch, era);
  EXPECT_GT(stats.instructions, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllConfigs, WorkloadValidation,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4)),
    [](const auto& info) {
      const int workload = std::get<0>(info.param);
      const int configIndex = std::get<1>(info.param);
      const std::string arch = configIndex / 2 == 0 ? "AArch64" : "RV64";
      const std::string era = configIndex % 2 == 0 ? "Gcc9" : "Gcc12";
      return std::string(kWorkloadNames[workload]) + "_" + arch + "_" + era;
    });

TEST(Workloads, SuiteContainsPaperWorkloads) {
  const auto suite = paperSuite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "STREAM");
  for (const WorkloadSpec& spec : suite) {
    EXPECT_NO_THROW(spec.module.validate()) << spec.name;
  }
}

TEST(Workloads, SuiteScalesPrimaryDimension) {
  const auto small = paperSuite(0.25);
  const auto large = paperSuite(1.0);
  // STREAM scales its array length.
  EXPECT_LT(small[0].module.arrays[0].elems, large[0].module.arrays[0].elems);
}

TEST(Workloads, StreamKernelAttributionCoversAllFourKernels) {
  const kgen::Module module = makeStream({.n = 200, .reps = 2});
  const Compiled compiled =
      kgen::compile(module, Arch::Rv64, CompilerEra::Gcc12);
  Machine machine(compiled.program);
  PathLengthCounter counter(compiled.program);
  machine.addObserver(counter);
  machine.run();

  ASSERT_EQ(counter.kernels().size(), 4u);  // copy/scale/add/triad, merged
  for (const auto& kernel : counter.kernels()) {
    EXPECT_GT(kernel.count, 200u * 2u) << kernel.name;
  }
  // Only the final exit sequence is unattributed.
  EXPECT_LT(counter.unattributed(), 10u);
}

TEST(Workloads, StreamBranchFractionNearPaperValue) {
  // §3.3: RISC-V STREAM executes almost 15% branches.
  const kgen::Module module = makeStream({.n = 2000, .reps = 2});
  const Compiled compiled =
      kgen::compile(module, Arch::Rv64, CompilerEra::Gcc12);
  Machine machine(compiled.program);
  PathLengthCounter counter(compiled.program);
  machine.addObserver(counter);
  machine.run();
  const double fraction = static_cast<double>(counter.branchCount()) /
                          static_cast<double>(counter.total());
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.20);
}

TEST(Workloads, MiniBudePathLengthShorterOnRiscv) {
  // The paper's Table 1 shows a ~16% shorter path for RISC-V on miniBUDE.
  // Direction (not magnitude) is asserted: the AArch64 compare+branch
  // overhead in the deep pair loop dominates its addressing advantage.
  const kgen::Module module =
      makeMiniBude({.poses = 4, .ligandAtoms = 4, .proteinAtoms = 16});
  const auto count = [&](Arch arch) {
    const Compiled compiled =
        kgen::compile(module, arch, CompilerEra::Gcc9);
    Machine machine(compiled.program);
    return machine.run().instructions;
  };
  EXPECT_LT(count(Arch::Rv64), count(Arch::AArch64) * 1.05);
}

}  // namespace
}  // namespace riscmp::workloads
