# Simulation-as-a-service acceptance (ISSUE 9): for a fixed grid, the
# report rendered locally, rendered from a cold daemon, and rendered from a
# warm daemon must be byte-identical (modulo the engine/service footer
# line), and the warm run must perform zero simulations. The script also
# drives the daemon through sim_client: the same saved GridSpec twice (the
# second answered wholly from the result store), then a graceful shutdown
# that drains and unlinks the socket.
#
# Usage: cmake -DBENCH=<paper_report> -DSIMD=<simd> -DCLIENT=<sim_client>
#              -DOUT=<scratch-dir> -P service_smoke.cmake
file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT})
set(SOCK ${OUT}/d.sock)
set(STORE ${OUT}/store)

# Strip the execution-stats footer ("engine: ..." locally, "service: ..."
# over the socket) — it is the one line allowed to differ between paths.
function(strip_footer text out)
  string(REGEX REPLACE "engine: [^\n]*\n" "" text "${text}")
  string(REGEX REPLACE "service: [^\n]*\n" "" text "${text}")
  set(${out} "${text}" PARENT_SCOPE)
endfunction()

# 1. Local baseline: the bytes every daemon-rendered report must match.
execute_process(
  COMMAND ${BENCH} --scale=0.05 --jobs=2 --via=local
  OUTPUT_FILE ${OUT}/local.txt
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "--via=local run exited ${status}")
endif()
file(READ ${OUT}/local.txt LOCAL)
strip_footer("${LOCAL}" LOCAL)

# 2. Start the daemon with a persistent store, wait for the socket.
execute_process(
  COMMAND sh -c "exec ${SIMD} --socket=${SOCK} --store=${STORE} --jobs=2 \
                 > ${OUT}/simd.log 2>&1 &"
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "failed to launch simd (${status})")
endif()
foreach(attempt RANGE 100)
  if(EXISTS ${SOCK})
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
execute_process(
  COMMAND ${CLIENT} --socket=${SOCK} --ping
  OUTPUT_VARIABLE pong
  RESULT_VARIABLE status)
if(NOT status EQUAL 0 OR NOT pong MATCHES "\"type\":\"pong\"")
  message(FATAL_ERROR "daemon did not answer ping (exit ${status}): ${pong}")
endif()

# 3. Cold daemon render: everything is simulated on the daemon side.
execute_process(
  COMMAND ${BENCH} --scale=0.05 --jobs=2 --via=socket:${SOCK}
  OUTPUT_FILE ${OUT}/cold.txt
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "cold --via=socket run exited ${status}")
endif()
file(READ ${OUT}/cold.txt COLD_RAW)
if(NOT COLD_RAW MATCHES "service: 20 cells")
  message(FATAL_ERROR "cold run footer missing the service line")
endif()

# 4. Warm daemon render: the result store answers every cell.
execute_process(
  COMMAND ${BENCH} --scale=0.05 --jobs=2 --via=socket:${SOCK}
  OUTPUT_FILE ${OUT}/warm.txt
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "warm --via=socket run exited ${status}")
endif()
file(READ ${OUT}/warm.txt WARM_RAW)
if(NOT WARM_RAW MATCHES "service: 20 cells \\(20 store hits\\), 0 compiles \\(\\+0 cached\\), 0 simulations")
  message(FATAL_ERROR "warm run was not answered entirely from the store:\n${WARM_RAW}")
endif()

# 5. Byte-identity across all three paths (footer excepted).
strip_footer("${COLD_RAW}" COLD)
strip_footer("${WARM_RAW}" WARM)
if(NOT COLD STREQUAL LOCAL)
  message(FATAL_ERROR "cold daemon report differs from --via=local")
endif()
if(NOT WARM STREQUAL COLD)
  message(FATAL_ERROR "warm daemon report differs from the cold one")
endif()
message(STATUS "local / cold daemon / warm daemon reports byte-identical")

# 6. sim_client --grid: a saved GridSpec (STREAM across the default paper
# configs at scale 0.0625 — a grid the daemon has NOT seen) runs once,
# then is answered wholly from the store on the repeat.
file(WRITE ${OUT}/grid.json
  "{\"v\":2,\"scale_bits\":4589168020290535424,\"workloads\":[\"STREAM\"],"
  "\"configs\":[],\"analyses\":3,\"gcc12_analyses\":0,\"windows\":[],"
  "\"budget\":1000000000,\"config_dir\":\"\",\"model_a64\":\"\","
  "\"model_rv64\":\"\",\"mem_cores\":[1,2,4],\"require_models\":false}")
execute_process(
  COMMAND ${CLIENT} --socket=${SOCK} --grid=${OUT}/grid.json
  OUTPUT_VARIABLE first
  RESULT_VARIABLE status)
if(NOT status EQUAL 0 OR NOT first MATCHES "\"type\":\"grid\"")
  message(FATAL_ERROR "first --grid request failed (exit ${status}): ${first}")
endif()
if(NOT first MATCHES "\"store_hits\":0")
  message(FATAL_ERROR "first --grid request unexpectedly hit the store")
endif()
execute_process(
  COMMAND ${CLIENT} --socket=${SOCK} --grid=${OUT}/grid.json
  OUTPUT_VARIABLE second
  RESULT_VARIABLE status)
if(NOT status EQUAL 0 OR NOT second MATCHES "\"simulations\":0")
  message(FATAL_ERROR "repeated --grid request re-simulated: ${second}")
endif()
string(REGEX REPLACE "\"stats\":[^}]*}" "" first_payload "${first}")
string(REGEX REPLACE "\"stats\":[^}]*}" "" second_payload "${second}")
if(NOT first_payload STREQUAL second_payload)
  message(FATAL_ERROR "--grid payloads differ between cold and warm replies")
endif()
message(STATUS "sim_client grid repeated: second reply from store, 0 sims")

# 7. Graceful shutdown: drain, unlink the socket, log the drain line.
execute_process(
  COMMAND ${CLIENT} --socket=${SOCK} --shutdown
  OUTPUT_VARIABLE ack
  RESULT_VARIABLE status)
if(NOT status EQUAL 0 OR NOT ack MATCHES "\"type\":\"shutdown\"")
  message(FATAL_ERROR "shutdown was not acknowledged (exit ${status}): ${ack}")
endif()
foreach(attempt RANGE 100)
  if(NOT EXISTS ${SOCK})
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(EXISTS ${SOCK})
  message(FATAL_ERROR "socket still present after shutdown")
endif()
file(READ ${OUT}/simd.log DAEMON_LOG)
if(NOT DAEMON_LOG MATCHES "simd: drained, shutting down")
  message(FATAL_ERROR "daemon log missing the drain line:\n${DAEMON_LOG}")
endif()
message(STATUS "service smoke: daemon drained and shut down cleanly")
