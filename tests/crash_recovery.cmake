# Crash-recovery acceptance (ISSUE 6): a cell that segfaults, is SIGKILLed,
# or hangs under --isolate=process must not take the grid down — the bench
# exits 3 with the fault named in a partial report — and a --resume of the
# journal re-runs only the failed cell and reproduces the clean report
# byte-for-byte (modulo the engine footer, which counts resumed cells).
#
# Usage: cmake -DBENCH=<path-to-paper_report> -DOUT=<scratch-dir>
#              -P crash_recovery.cmake
file(MAKE_DIRECTORY ${OUT})

set(CELL "LBM/GCC 12.2 RISC-V")

# Clean baseline: the report every recovered run must reproduce.
execute_process(
  COMMAND ${BENCH} --scale=0.05 --jobs=2
  OUTPUT_FILE ${OUT}/baseline.txt
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "baseline paper_report exited ${status}")
endif()
file(READ ${OUT}/baseline.txt BASELINE)
string(REGEX REPLACE "engine: [^\n]*\n" "" BASELINE "${BASELINE}")

# One fault class end to end: inject -> exit 3 + named fault + partial
# report -> resume -> exit 0 + byte-identical report.
function(run_recovery variant fault expect)
  execute_process(
    COMMAND ${BENCH} --scale=0.05 --jobs=2 --isolate=process --deadline=2
            "--inject-fault=${CELL}:${fault}"
            --journal=${OUT}/${variant}.jsonl
    OUTPUT_FILE ${OUT}/${variant}.txt
    RESULT_VARIABLE status)
  if(NOT status EQUAL 3)
    message(FATAL_ERROR "${variant}: injected run must exit 3 (cell failed), "
                        "got ${status}")
  endif()
  file(READ ${OUT}/${variant}.txt crashed)
  if(NOT crashed MATCHES "${expect}")
    message(FATAL_ERROR "${variant}: report does not name the fault "
                        "(expected to match '${expect}')")
  endif()
  if(NOT crashed MATCHES "PARTIAL REPORT: 1/20 cells failed")
    message(FATAL_ERROR "${variant}: partial-report footer missing")
  endif()
  if(NOT EXISTS ${OUT}/${variant}.jsonl)
    message(FATAL_ERROR "${variant}: run journal was not written")
  endif()

  execute_process(
    COMMAND ${BENCH} --scale=0.05 --jobs=2 --resume=${OUT}/${variant}.jsonl
    OUTPUT_FILE ${OUT}/${variant}-resumed.txt
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "${variant}: resumed run exited ${status}")
  endif()
  file(READ ${OUT}/${variant}-resumed.txt resumed)
  if(NOT resumed MATCHES "resumed=19")
    message(FATAL_ERROR "${variant}: resume re-ran more than the failed cell")
  endif()
  string(REGEX REPLACE "engine: [^\n]*\n" "" resumed "${resumed}")
  if(NOT resumed STREQUAL BASELINE)
    message(FATAL_ERROR "${variant}: resumed report differs from the clean "
                        "baseline (beyond the engine footer)")
  endif()
  message(STATUS "${variant}: crash captured, grid survived, resume "
                 "byte-identical")
endfunction()

run_recovery(segv segv "CrashFault.*killed by SIGSEGV \\(signal 11\\)")
run_recovery(kill kill "CrashFault.*killed by SIGKILL \\(signal 9\\)")
run_recovery(hang hang "TimeoutFault")
message(STATUS "crash recovery: all fault classes recovered")
