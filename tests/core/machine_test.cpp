#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <vector>

#include "aarch64/asm.hpp"
#include "core/machine.hpp"
#include "riscv/asm.hpp"

namespace riscmp {
namespace {

Program rv64Program(const char* source) {
  Program program;
  program.arch = Arch::Rv64;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  program.code = rv64::assemble(source, program.codeBase);
  return program;
}

Program a64Program(const char* source) {
  Program program;
  program.arch = Arch::AArch64;
  program.codeBase = Program::kCodeBase;
  program.entry = program.codeBase;
  program.code = a64::assemble(source, program.codeBase);
  return program;
}

TEST(Machine, RunsRv64ProgramToExit) {
  Machine machine(rv64Program(
      "  li a0, 0\n"
      "  li a1, 10\n"
      "loop:\n"
      "  add a0, a0, a1\n"
      "  addi a1, a1, -1\n"
      "  bnez a1, loop\n"
      "  li a7, 93\n"  // exit(a0)
      "  ecall\n"));
  const RunResult result = machine.run();
  EXPECT_TRUE(result.exitedCleanly);
  EXPECT_EQ(result.exitCode, 55);
  EXPECT_EQ(result.instructions, 2u + 10 * 3 + 2);
}

TEST(Machine, RunsA64ProgramToExit) {
  Machine machine(a64Program(
      "  mov x0, #0\n"
      "  mov x1, #10\n"
      "loop:\n"
      "  add x0, x0, x1\n"
      "  subs x1, x1, #1\n"
      "  b.ne loop\n"
      "  mov x8, #93\n"
      "  svc #0\n"));
  const RunResult result = machine.run();
  EXPECT_TRUE(result.exitedCleanly);
  EXPECT_EQ(result.exitCode, 55);
  EXPECT_EQ(result.instructions, 2u + 10 * 3 + 2);
}

TEST(Machine, WriteSyscallReachesStream) {
  Program program = rv64Program(
      "  li a0, 1\n"       // fd = stdout
      "  li a1, 0x20000\n" // buffer
      "  li a2, 5\n"       // length
      "  li a7, 64\n"      // write
      "  ecall\n"
      "  li a7, 93\n"
      "  li a0, 0\n"
      "  ecall\n");
  program.dataBase = 0x20000;
  program.data = {'h', 'e', 'l', 'l', 'o'};

  std::ostringstream captured;
  MachineOptions options;
  options.stdoutStream = &captured;
  Machine machine(program, options);
  const RunResult result = machine.run();
  EXPECT_TRUE(result.exitedCleanly);
  EXPECT_EQ(captured.str(), "hello");
}

TEST(Machine, DataAndBssLoaded) {
  Program program = rv64Program(
      "  li a1, 0x20000\n"
      "  ld a0, 0(a1)\n"
      "  li a7, 93\n"
      "  ecall\n");
  program.dataBase = 0x20000;
  program.data.resize(8);
  program.data[0] = 42;
  program.bssBase = 0x21000;
  program.bssSize = 64;

  Machine machine(program);
  const RunResult result = machine.run();
  EXPECT_EQ(result.exitCode, 42);
  // bss is zeroed
  EXPECT_EQ(machine.memory().read<std::uint64_t>(0x21000), 0u);
}

TEST(Machine, InstructionBudgetAborts) {
  Program program = rv64Program(
      "loop:\n"
      "  j loop\n");
  MachineOptions options;
  options.maxInstructions = 100;
  Machine machine(program, options);
  try {
    machine.run();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Budget);
    EXPECT_EQ(fault.limit(), 100u);
    ASSERT_TRUE(fault.hasContext());
    EXPECT_EQ(fault.context().retired, 100u);
  }
}

TEST(Machine, UndecodableInstructionThrowsDecodeFault) {
  Program program = rv64Program("nop\n");
  program.code.push_back(0);  // invalid word
  Machine machine(program);
  try {
    machine.run();
    FAIL() << "expected DecodeFault";
  } catch (const DecodeFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Decode);
    EXPECT_EQ(fault.word(), 0u);
    EXPECT_EQ(fault.pc(), Program::kCodeBase + 4);
    ASSERT_TRUE(fault.hasContext());
    EXPECT_EQ(fault.context().arch, "RISC-V");
    EXPECT_EQ(fault.context().pc, Program::kCodeBase + 4);
    EXPECT_EQ(fault.context().retired, 1u);  // the nop retired first
    EXPECT_EQ(fault.context().regs.size(), 32u);
  }
}

TEST(Machine, UnsupportedSyscallThrowsTrapFault) {
  Machine machine(rv64Program(
      "  li a7, 222\n"
      "  ecall\n"));
  try {
    machine.run();
    FAIL() << "expected TrapFault";
  } catch (const TrapFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Trap);
    EXPECT_NE(std::string(fault.what()).find("222"), std::string::npos);
    ASSERT_TRUE(fault.hasContext());
  }
}

TEST(Machine, FaultReportNamesKernelAndDisassembly) {
  Program program = rv64Program(
      "  nop\n"
      "  nop\n");
  program.code.push_back(0);  // invalid word inside the "inner" kernel
  program.kernels = {{"inner", Program::kCodeBase, 12}};
  Machine machine(program);
  try {
    machine.run();
    FAIL() << "expected DecodeFault";
  } catch (const DecodeFault& fault) {
    const std::string report = fault.report();
    EXPECT_NE(report.find("DecodeFault"), std::string::npos);
    EXPECT_NE(report.find("inner+0x8"), std::string::npos);
    EXPECT_NE(report.find("registers:"), std::string::npos);
    EXPECT_NE(report.find(".word"), std::string::npos);  // disasm of 0
  }
}

TEST(Machine, WildMemoryAccessGetsContext) {
  Machine machine(rv64Program(
      "  li a1, 0x40000000\n"  // far outside the arena
      "  ld a0, 0(a1)\n"
      "  li a7, 93\n"
      "  ecall\n"));
  try {
    machine.run();
    FAIL() << "expected MemoryFault";
  } catch (const MemoryFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::Memory);
    EXPECT_EQ(fault.addr(), 0x40000000u);
    ASSERT_TRUE(fault.hasContext());
    // Context points at the faulting load, not the machine's state after.
    EXPECT_NE(fault.context().disasm.find("ld"), std::string::npos);
  }
}

class CountingObserver : public TraceObserver {
 public:
  void onRetire(const RetiredInst& inst) override {
    ++count;
    if (inst.isBranch) ++branches;
    loads += inst.loads.size();
    stores += inst.stores.size();
  }
  void onProgramEnd() override { ended = true; }

  std::uint64_t count = 0;
  std::uint64_t branches = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  bool ended = false;
};

TEST(Machine, ObserversSeeEveryRetirement) {
  Program program = rv64Program(
      "  li a1, 0x20000\n"
      "  li a2, 4\n"
      "loop:\n"
      "  ld a0, 0(a1)\n"
      "  sd a0, 8(a1)\n"
      "  addi a2, a2, -1\n"
      "  bnez a2, loop\n"
      "  li a7, 93\n"
      "  ecall\n");
  program.bssBase = 0x20000;
  program.bssSize = 64;
  Machine machine(program);
  CountingObserver observer;
  machine.addObserver(observer);
  const RunResult result = machine.run();
  EXPECT_EQ(observer.count, result.instructions);
  EXPECT_EQ(observer.branches, 4u);
  EXPECT_EQ(observer.loads, 4u);
  EXPECT_EQ(observer.stores, 4u);
  EXPECT_TRUE(observer.ended);
}

class LegacyRecordingObserver : public TraceObserver {
 public:
  void onRetire(const RetiredInst& inst) override { stream.push_back(inst); }
  std::vector<RetiredInst> stream;
};

class BlockRecordingObserver : public TraceObserver {
 public:
  void onRetire(const RetiredInst&) override {
    ADD_FAILURE() << "block-overriding observer got a per-record call";
  }
  void onRetireBlock(std::span<const RetiredInst> block) override {
    ++blocks;
    stream.insert(stream.end(), block.begin(), block.end());
  }
  std::vector<RetiredInst> stream;
  std::uint64_t blocks = 0;
};

// A per-instruction observer (default onRetireBlock loops onRetire) and a
// block-overriding observer attached to the same run must see the exact
// same record stream — batching is a delivery detail, not a semantic one.
TEST(Machine, LegacyAndBlockObserversSeeIdenticalStreams) {
  Program program = rv64Program(
      "  li a1, 0x20000\n"
      "  li a2, 200\n"
      "loop:\n"
      "  ld a0, 0(a1)\n"
      "  sd a0, 8(a1)\n"
      "  addi a2, a2, -1\n"
      "  bnez a2, loop\n"
      "  li a7, 93\n"
      "  ecall\n");
  program.bssBase = 0x20000;
  program.bssSize = 64;
  Machine machine(program);
  LegacyRecordingObserver legacy;
  BlockRecordingObserver block;
  machine.addObserver(legacy);
  machine.addObserver(block);
  const RunResult result = machine.run();
  ASSERT_EQ(legacy.stream.size(), result.instructions);
  ASSERT_EQ(block.stream.size(), result.instructions);
  EXPECT_GE(block.blocks, 1u);
  for (std::size_t i = 0; i < legacy.stream.size(); ++i) {
    EXPECT_EQ(legacy.stream[i], block.stream[i]) << "record " << i;
  }
}

// Every in-image retirement carries the static-instruction index of its
// code word so observers can use decode-once metadata tables.
TEST(Machine, RetiredRecordsCarryStaticIndex) {
  Program program = rv64Program(
      "  li a0, 3\n"
      "loop:\n"
      "  addi a0, a0, -1\n"
      "  bnez a0, loop\n"
      "  li a7, 93\n"
      "  ecall\n");
  Machine machine(program);
  LegacyRecordingObserver legacy;
  machine.addObserver(legacy);
  machine.run();
  for (const RetiredInst& inst : legacy.stream) {
    ASSERT_NE(inst.staticIndex, RetiredInst::kNoStaticIndex);
    EXPECT_EQ(inst.pc, program.codeBase + 4ull * inst.staticIndex);
  }
}

TEST(Machine, MemoryGrowsToCoverProgram) {
  Program program = rv64Program("  li a7, 93\n  ecall\n");
  program.bssBase = 200ull << 20;  // beyond the default 64 MiB
  program.bssSize = 4096;
  MachineOptions options;
  options.memorySize = 1 << 20;
  Machine machine(program, options);
  EXPECT_NO_THROW(machine.run());
  EXPECT_GT(machine.memory().size(), 200ull << 20);
}

TEST(Program, KernelLookup) {
  Program program;
  program.kernels = {{"copy", 0x100, 0x40}, {"scale", 0x140, 0x40}};
  ASSERT_NE(program.kernelAt(0x100), nullptr);
  EXPECT_EQ(program.kernelAt(0x100)->name, "copy");
  EXPECT_EQ(program.kernelAt(0x13c)->name, "copy");
  EXPECT_EQ(program.kernelAt(0x140)->name, "scale");
  EXPECT_EQ(program.kernelAt(0x180), nullptr);
  EXPECT_EQ(program.kernelAt(0x50), nullptr);
  ASSERT_NE(program.kernelNamed("scale"), nullptr);
  EXPECT_EQ(program.kernelNamed("bogus"), nullptr);
}

}  // namespace
}  // namespace riscmp
