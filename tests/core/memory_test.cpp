#include <gtest/gtest.h>

#include "core/memory.hpp"

namespace riscmp {
namespace {

TEST(Memory, ReadWriteAllWidths) {
  Memory memory(4096);
  memory.write<std::uint8_t>(0, 0xab);
  memory.write<std::uint16_t>(2, 0xbeef);
  memory.write<std::uint32_t>(4, 0xdeadbeef);
  memory.write<std::uint64_t>(8, 0x0123456789abcdefull);
  memory.write<double>(16, 3.25);

  EXPECT_EQ(memory.read<std::uint8_t>(0), 0xab);
  EXPECT_EQ(memory.read<std::uint16_t>(2), 0xbeef);
  EXPECT_EQ(memory.read<std::uint32_t>(4), 0xdeadbeefu);
  EXPECT_EQ(memory.read<std::uint64_t>(8), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(memory.read<double>(16), 3.25);
}

TEST(Memory, LittleEndianLayout) {
  Memory memory(64);
  memory.write<std::uint32_t>(0, 0x11223344);
  EXPECT_EQ(memory.read<std::uint8_t>(0), 0x44);
  EXPECT_EQ(memory.read<std::uint8_t>(3), 0x11);
}

TEST(Memory, UnalignedAccessesWork) {
  Memory memory(64);
  memory.write<std::uint64_t>(3, 0xaabbccddeeff0011ull);
  EXPECT_EQ(memory.read<std::uint64_t>(3), 0xaabbccddeeff0011ull);
  // Bytes 5..8 of the little-endian value.
  EXPECT_EQ(memory.read<std::uint32_t>(5), 0xccddeeffu);
}

TEST(Memory, NonZeroBase) {
  Memory memory(4096, 0x10000);
  EXPECT_EQ(memory.base(), 0x10000u);
  EXPECT_EQ(memory.end(), 0x11000u);
  memory.write<std::uint32_t>(0x10000, 7);
  EXPECT_EQ(memory.read<std::uint32_t>(0x10000), 7u);
  EXPECT_THROW(memory.read<std::uint32_t>(0xffff), MemoryFault);
}

TEST(Memory, FaultsCarryAddress) {
  Memory memory(64);
  try {
    memory.read<std::uint64_t>(60);  // 4 bytes past the end
    FAIL() << "expected MemoryFault";
  } catch (const MemoryFault& fault) {
    EXPECT_EQ(fault.addr(), 60u);
    EXPECT_NE(std::string(fault.what()).find("0x3c"), std::string::npos);
  }
}

TEST(Memory, BoundaryAccessesExact) {
  Memory memory(64);
  EXPECT_NO_THROW(memory.write<std::uint64_t>(56, 1));  // last 8 bytes
  EXPECT_THROW(memory.write<std::uint64_t>(57, 1), MemoryFault);
  EXPECT_NO_THROW(memory.write<std::uint8_t>(63, 1));
  EXPECT_THROW(memory.write<std::uint8_t>(64, 1), MemoryFault);
}

TEST(Memory, BlockOperations) {
  Memory memory(128);
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  memory.writeBlock(10, data);
  std::uint8_t out[5] = {};
  memory.readBlock(10, out);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], data[i]);
  memory.fill(10, 5, 0xff);
  EXPECT_EQ(memory.read<std::uint8_t>(12), 0xff);
  EXPECT_THROW(memory.fill(126, 4, 0), MemoryFault);
}

TEST(Memory, OverflowingRangeCheckIsSafe) {
  Memory memory(64);
  // addr + size would wrap; the range check must not overflow.
  EXPECT_THROW(memory.read<std::uint64_t>(~0ull - 2), MemoryFault);
}

}  // namespace
}  // namespace riscmp
