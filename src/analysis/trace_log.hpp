// Trace logging observer: writes the retired-instruction stream as CSV for
// offline analysis (the analogue of the paper artifact's raw SimEng output
// directory). One row per retired instruction:
//
//   index,pc,group,srcs,dsts,loads,stores,branch,taken
//
// Register operands use the dense index (0-31 GP, 32-63 FP, 64 flags);
// memory operands are "addr:size" pairs separated by '|'.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

#include "isa/trace.hpp"

namespace riscmp {

class TraceLogger final : public TraceObserver {
 public:
  /// `out` must outlive the logger. `limit` caps the number of logged rows
  /// (0 = unlimited) so long simulations can log a prefix only.
  explicit TraceLogger(std::ostream& out, std::uint64_t limit = 0);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  [[nodiscard]] std::uint64_t logged() const { return logged_; }

  /// Write the CSV header row.
  static void writeHeader(std::ostream& out);

 private:
  std::ostream& out_;
  std::uint64_t limit_;
  std::uint64_t index_ = 0;
  std::uint64_t logged_ = 0;
};

}  // namespace riscmp
