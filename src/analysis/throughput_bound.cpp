#include "analysis/throughput_bound.hpp"

#include <algorithm>
#include <limits>

#include "support/fault.hpp"

namespace riscmp {

double ThroughputModel::reciprocalThroughput(InstGroup group) const {
  const unsigned multiplicity = portMultiplicity(group);
  if (multiplicity == 0) return std::numeric_limits<double>::infinity();
  const unsigned width = std::max(issueWidth, 1u);
  return std::max(1.0 / static_cast<double>(multiplicity),
                  1.0 / static_cast<double>(width));
}

ThroughputBoundAnalyzer::ThroughputBoundAnalyzer(ThroughputModel model,
                                                 const Program& program)
    : model_(std::move(model)) {
  if (model_.ports.empty()) {
    throw ConfigError("throughput model '" + model_.name +
                          "' has no ports: section; the port-pressure bound "
                          "is undefined without one",
                      {}, 0, "ports");
  }

  // Validates kernel-region non-overlap (ValidationFault on violation).
  const std::vector<std::int32_t> symbolOfWord = program.kernelWordIndex();

  std::vector<std::size_t> symbolToKernel(program.kernels.size());
  for (std::size_t s = 0; s < program.kernels.size(); ++s) {
    const Symbol& symbol = program.kernels[s];
    std::size_t kernelIndex = kernelNames_.size();
    for (std::size_t i = 0; i < kernelNames_.size(); ++i) {
      if (kernelNames_[i] == symbol.name) {
        kernelIndex = i;
        break;
      }
    }
    if (kernelIndex == kernelNames_.size()) {
      kernelNames_.push_back(symbol.name);
    }
    symbolToKernel[s] = kernelIndex;
    regions_.push_back({symbol.addr, symbol.addr + symbol.size, kernelIndex});
  }
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.begin < b.begin; });

  wordKernel_.resize(symbolOfWord.size());
  for (std::size_t w = 0; w < symbolOfWord.size(); ++w) {
    wordKernel_[w] =
        symbolOfWord[w] < 0
            ? -1
            : static_cast<std::int32_t>(
                  symbolToKernel[static_cast<std::size_t>(symbolOfWord[w])]);
  }

  contexts_.resize(kernelNames_.size() + 1);  // last slot = whole program
  for (Context& context : contexts_) {
    context.portCycles.resize(model_.ports.size(), 0);
  }
}

void ThroughputBoundAnalyzer::onRetire(const RetiredInst& inst) {
  retireOne(inst);
}

void ThroughputBoundAnalyzer::onRetireBlock(
    std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) retireOne(inst);
}

std::int32_t ThroughputBoundAnalyzer::kernelOf(const RetiredInst& inst) {
  if (inst.staticIndex < wordKernel_.size()) {
    return wordKernel_[inst.staticIndex];
  }
  if (lastRegion_ != SIZE_MAX) {
    const Region& region = regions_[lastRegion_];
    if (inst.pc >= region.begin && inst.pc < region.end) {
      return static_cast<std::int32_t>(region.kernelIndex);
    }
  }
  const auto it = std::upper_bound(
      regions_.begin(), regions_.end(), inst.pc,
      [](std::uint64_t pc, const Region& region) { return pc < region.begin; });
  if (it != regions_.begin()) {
    const Region& region = *(it - 1);
    if (inst.pc < region.end) {
      lastRegion_ = static_cast<std::size_t>(&region - regions_.data());
      return static_cast<std::int32_t>(region.kernelIndex);
    }
  }
  return -1;
}

void ThroughputBoundAnalyzer::account(Context& context,
                                      const RetiredInst& inst) {
  ++context.instructions;

  // Least-loaded eligible port; ties break to the lowest port index so the
  // assignment (and therefore the report) is deterministic.
  std::size_t best = model_.ports.size();
  for (std::size_t p = 0; p < model_.ports.size(); ++p) {
    if (!model_.ports[p].accepts(inst.group)) continue;
    if (best == model_.ports.size() ||
        context.portCycles[p] < context.portCycles[best]) {
      best = p;
    }
  }
  if (best == model_.ports.size()) {
    throw ValidationFault(
        "throughput model '" + model_.name + "': no port accepts group " +
        std::string(instGroupName(inst.group)) +
        " — add it to a port's groups: list");
  }
  ++context.portCycles[best];

  // Scaled-CP chain, mirroring CriticalPathAnalyzer::retireOne exactly:
  // loads and stores cost 1 (§5.1 store-forwarding assumption), everything
  // else its group latency; memory dependencies via 8-byte chunks.
  std::uint64_t depth = 0;
  for (const Reg& reg : inst.srcs) {
    depth = std::max(depth, context.regDepth[reg.dense()]);
  }
  for (const MemAccess& access : inst.loads) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      if (const std::uint64_t* found = context.memDepth.find(chunk)) {
        depth = std::max(depth, *found);
      }
    }
  }
  const bool isMem = !inst.loads.empty() || !inst.stores.empty();
  depth += isMem ? 1
                 : model_.latencies[static_cast<std::size_t>(inst.group)];
  for (const Reg& reg : inst.dsts) {
    context.regDepth[reg.dense()] = depth;
  }
  for (const MemAccess& access : inst.stores) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      context.memDepth.assign(chunk, depth);
    }
  }
  context.maxDepth = std::max(context.maxDepth, depth);
}

void ThroughputBoundAnalyzer::retireOne(const RetiredInst& inst) {
  ++instructions_;
  account(contexts_.back(), inst);
  const std::int32_t kernel = kernelOf(inst);
  if (kernel >= 0) {
    account(contexts_[static_cast<std::size_t>(kernel)], inst);
  }
}

ThroughputBoundAnalyzer::KernelBound ThroughputBoundAnalyzer::bound(
    const Context& context, std::string name) const {
  KernelBound result;
  result.name = std::move(name);
  result.instructions = context.instructions;
  result.portCycles = context.portCycles;
  for (std::size_t p = 0; p < context.portCycles.size(); ++p) {
    if (context.portCycles[p] > result.portBound) {
      result.portBound = context.portCycles[p];
      result.bindingPort = model_.ports[p].name;
    }
  }
  const std::uint64_t width = std::max(model_.issueWidth, 1u);
  result.issueBound = (context.instructions + width - 1) / width;
  result.cpBound = context.maxDepth;
  return result;
}

std::vector<ThroughputBoundAnalyzer::KernelBound>
ThroughputBoundAnalyzer::kernels() const {
  std::vector<KernelBound> result;
  result.reserve(kernelNames_.size());
  for (std::size_t k = 0; k < kernelNames_.size(); ++k) {
    result.push_back(bound(contexts_[k], kernelNames_[k]));
  }
  return result;
}

ThroughputBoundAnalyzer::KernelBound ThroughputBoundAnalyzer::program() const {
  return bound(contexts_.back(), "<program>");
}

void ThroughputBoundAnalyzer::reset() {
  instructions_ = 0;
  lastRegion_ = SIZE_MAX;
  for (Context& context : contexts_) {
    context.instructions = 0;
    std::fill(context.portCycles.begin(), context.portCycles.end(), 0);
    context.maxDepth = 0;
    context.regDepth.fill(0);
    context.memDepth.clear();
  }
}

}  // namespace riscmp
