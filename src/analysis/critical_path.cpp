#include "analysis/critical_path.hpp"

#include <algorithm>

namespace riscmp {
namespace {

/// 8-byte chunk range covered by an access.
inline std::pair<std::uint64_t, std::uint64_t> chunkRange(
    const MemAccess& access) {
  const std::uint64_t first = access.addr >> 3;
  const std::uint64_t last = (access.addr + access.size - 1) >> 3;
  return {first, last};
}

}  // namespace

void CriticalPathAnalyzer::reset() {
  regDepth_.fill(0);
  memDepth_.clear();
  maxDepth_ = 0;
  instructions_ = 0;
}

void CriticalPathAnalyzer::onRetire(const RetiredInst& inst) {
  retireOne(inst);
}

void CriticalPathAnalyzer::onRetireBlock(std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) retireOne(inst);
}

void CriticalPathAnalyzer::retireOne(const RetiredInst& inst) {
  ++instructions_;

  std::uint64_t depth = 0;
  for (const Reg& reg : inst.srcs) {
    depth = std::max(depth, regDepth_[reg.dense()]);
  }
  for (const MemAccess& access : inst.loads) {
    const auto [first, last] = chunkRange(access);
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      if (const std::uint64_t* found = memDepth_.find(chunk)) {
        depth = std::max(depth, *found);
      }
    }
  }

  // Loads and stores are never scaled (§5.1: store forwarding assumed).
  const bool isMem = !inst.loads.empty() || !inst.stores.empty();
  const std::uint64_t cost =
      (scaled_ && !isMem)
          ? latencies_[static_cast<std::size_t>(inst.group)]
          : 1;
  depth += cost;

  for (const Reg& reg : inst.dsts) {
    regDepth_[reg.dense()] = depth;
  }
  for (const MemAccess& access : inst.stores) {
    const auto [first, last] = chunkRange(access);
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      memDepth_.assign(chunk, depth);
    }
  }
  maxDepth_ = std::max(maxDepth_, depth);
}

}  // namespace riscmp
