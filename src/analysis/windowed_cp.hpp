// Windowed critical-path analysis (paper §6).
//
// A window of W consecutive dynamic instructions models a W-entry ROB with
// perfect branch prediction and infinite physical registers; the window's
// critical path bounds how fast those W instructions could issue. Windows
// slide by W/2 (50 % overlap), modelling a limited commit stage (§6.1).
// Latency is not applied (§6.1). The tracked statistic is the mean CP per
// window; mean ILP = W / mean CP (Figure 2).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "analysis/critical_path.hpp"
#include "isa/trace.hpp"
#include "support/flat_hash.hpp"
#include "support/small_vector.hpp"
#include "support/stats.hpp"

namespace riscmp {

class WindowedCPAnalyzer final : public TraceObserver {
 public:
  /// The paper's window sizes: 4, 16, 64, 200, 500, 1000, 2000.
  static std::vector<std::uint32_t> paperWindowSizes();

  /// `slideNumerator/slideDenominator` set the window slide as a fraction
  /// of the window size (the paper uses 1/2 and defers adjusting it to
  /// future work); `latencies` optionally scales non-memory instructions
  /// as in the Section-5 analysis (the paper's windowed analysis does not).
  explicit WindowedCPAnalyzer(std::vector<std::uint32_t> windowSizes,
                              unsigned slideNumerator = 1,
                              unsigned slideDenominator = 2,
                              const LatencyTable* latencies = nullptr);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;
  void onProgramEnd() override;

  /// Drop all buffered footprints and per-size statistics; the window
  /// sizes, slide fraction, and latency table are retained.
  void reset();

  struct WindowResult {
    std::uint32_t windowSize = 0;
    std::uint64_t windows = 0;   ///< number of full windows evaluated
    double meanCp = 0.0;         ///< mean critical path per window
    double meanIlp = 0.0;        ///< windowSize / meanCp
    double minCp = 0.0;
    double maxCp = 0.0;
  };
  [[nodiscard]] std::vector<WindowResult> results() const;

 private:
  /// Dependency footprint of one instruction: dense register ids and
  /// *dense* memory-chunk ids. The 8-byte chunk address is translated to a
  /// small dense id exactly once, when the instruction is buffered, so the
  /// ~2-evaluations-per-instruction-per-size window sweep below indexes
  /// flat arrays instead of hashing.
  struct Footprint {
    SmallVector<std::uint8_t, 5> srcRegs;
    SmallVector<std::uint8_t, 3> dstRegs;
    SmallVector<std::uint32_t, 4> loadChunks;
    SmallVector<std::uint32_t, 4> stChunks;
    std::uint32_t cost = 1;
  };

  struct PerSize {
    std::uint32_t size;
    std::uint64_t nextStart = 0;  ///< absolute index of the next window
    RunningStats cpStats;
  };

  void buffer(const RetiredInst& inst);
  [[nodiscard]] std::uint32_t denseChunk(std::uint64_t chunk);
  void evaluateReadyWindows();
  [[nodiscard]] std::uint64_t windowCp(std::uint64_t start,
                                       std::uint32_t size);
  void trim();

  std::deque<Footprint> buffer_;

  /// 8-byte chunk address -> dense id, stable for the analyzer's lifetime.
  FlatHashMap64<std::uint32_t> chunkIds_;

  /// Per-window-evaluation scratch state, epoch-stamped: an entry is live
  /// in the current evaluation iff its stamp equals epoch_, so starting a
  /// fresh window is one increment instead of clearing depth tables.
  std::array<std::uint64_t, Reg::kDenseCount> scratchRegDepth_{};
  std::array<std::uint64_t, Reg::kDenseCount> scratchRegStamp_{};
  std::vector<std::uint64_t> scratchMemDepth_;  ///< indexed by dense chunk id
  std::vector<std::uint64_t> scratchMemStamp_;
  std::uint64_t epoch_ = 0;

  std::uint64_t bufferBase_ = 0;  ///< absolute index of buffer_.front()
  std::uint64_t retired_ = 0;
  std::vector<PerSize> sizes_;
  unsigned slideNumerator_ = 1;
  unsigned slideDenominator_ = 2;
  bool scaled_ = false;
  LatencyTable latencies_ = unitLatencies();
};

}  // namespace riscmp
