// Windowed critical-path analysis (paper §6).
//
// A window of W consecutive dynamic instructions models a W-entry ROB with
// perfect branch prediction and infinite physical registers; the window's
// critical path bounds how fast those W instructions could issue. Windows
// slide by W/2 (50 % overlap), modelling a limited commit stage (§6.1).
// Latency is not applied (§6.1). The tracked statistic is the mean CP per
// window; mean ILP = W / mean CP (Figure 2).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "analysis/critical_path.hpp"
#include "isa/trace.hpp"
#include "support/small_vector.hpp"
#include "support/stats.hpp"

namespace riscmp {

class WindowedCPAnalyzer final : public TraceObserver {
 public:
  /// The paper's window sizes: 4, 16, 64, 200, 500, 1000, 2000.
  static std::vector<std::uint32_t> paperWindowSizes();

  /// `slideNumerator/slideDenominator` set the window slide as a fraction
  /// of the window size (the paper uses 1/2 and defers adjusting it to
  /// future work); `latencies` optionally scales non-memory instructions
  /// as in the Section-5 analysis (the paper's windowed analysis does not).
  explicit WindowedCPAnalyzer(std::vector<std::uint32_t> windowSizes,
                              unsigned slideNumerator = 1,
                              unsigned slideDenominator = 2,
                              const LatencyTable* latencies = nullptr);

  void onRetire(const RetiredInst& inst) override;
  void onProgramEnd() override;

  /// Drop all buffered footprints and per-size statistics; the window
  /// sizes, slide fraction, and latency table are retained.
  void reset();

  struct WindowResult {
    std::uint32_t windowSize = 0;
    std::uint64_t windows = 0;   ///< number of full windows evaluated
    double meanCp = 0.0;         ///< mean critical path per window
    double meanIlp = 0.0;        ///< windowSize / meanCp
    double minCp = 0.0;
    double maxCp = 0.0;
  };
  [[nodiscard]] std::vector<WindowResult> results() const;

 private:
  /// Dependency footprint of one instruction: dense register ids and 8-byte
  /// memory chunk ids.
  struct Footprint {
    SmallVector<std::uint8_t, 5> srcRegs;
    SmallVector<std::uint8_t, 3> dstRegs;
    SmallVector<std::uint64_t, 4> loadChunks;
    SmallVector<std::uint64_t, 4> stChunks;
    std::uint32_t cost = 1;
  };

  struct PerSize {
    std::uint32_t size;
    std::uint64_t nextStart = 0;  ///< absolute index of the next window
    RunningStats cpStats;
  };

  void evaluateReadyWindows();
  [[nodiscard]] std::uint64_t windowCp(std::uint64_t start,
                                       std::uint32_t size);
  void trim();

  std::deque<Footprint> buffer_;
  std::array<std::uint64_t, Reg::kDenseCount> scratchRegDepth_{};
  std::unordered_map<std::uint64_t, std::uint64_t> scratchMemDepth_;
  std::uint64_t bufferBase_ = 0;  ///< absolute index of buffer_.front()
  std::uint64_t retired_ = 0;
  std::vector<PerSize> sizes_;
  unsigned slideNumerator_ = 1;
  unsigned slideDenominator_ = 2;
  bool scaled_ = false;
  LatencyTable latencies_ = unitLatencies();
};

}  // namespace riscmp
