#include "analysis/dep_distance.hpp"

#include <bit>

namespace riscmp {

DependencyDistanceAnalyzer::DependencyDistanceAnalyzer() = default;

void DependencyDistanceAnalyzer::reset() {
  regWriter_.fill(0);
  regWritten_.fill(false);
  memWriter_.clear();
  histogram_.fill(0);
  stats_.reset();
  retired_ = 0;
}

void DependencyDistanceAnalyzer::record(std::uint64_t producerIndex) {
  const std::uint64_t distance = retired_ - producerIndex;
  if (distance == 0) return;
  stats_.add(static_cast<double>(distance));
  const auto bucket = static_cast<std::size_t>(
      std::bit_width(distance) - 1);
  ++histogram_[bucket < kBuckets ? bucket : kBuckets - 1];
}

void DependencyDistanceAnalyzer::onRetire(const RetiredInst& inst) {
  retireOne(inst);
}

void DependencyDistanceAnalyzer::onRetireBlock(
    std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) retireOne(inst);
}

void DependencyDistanceAnalyzer::retireOne(const RetiredInst& inst) {
  for (const Reg& reg : inst.srcs) {
    const unsigned dense = reg.dense();
    if (regWritten_[dense]) record(regWriter_[dense]);
  }
  for (const MemAccess& access : inst.loads) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      if (const std::uint64_t* writer = memWriter_.find(chunk)) {
        record(*writer);
      }
    }
  }

  for (const Reg& reg : inst.dsts) {
    const unsigned dense = reg.dense();
    regWriter_[dense] = retired_;
    regWritten_[dense] = true;
  }
  for (const MemAccess& access : inst.stores) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      memWriter_.assign(chunk, retired_);
    }
  }
  ++retired_;
}

double DependencyDistanceAnalyzer::fractionWithin(std::uint64_t window) const {
  if (stats_.count() == 0) return 0.0;
  std::uint64_t within = 0;
  std::uint64_t total = 0;
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    total += histogram_[bucket];
    // Bucket covers [2^bucket, 2^(bucket+1)); count it as within when the
    // whole bucket fits.
    if ((std::uint64_t{1} << (bucket + 1)) - 1 <= window) {
      within += histogram_[bucket];
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(within) / static_cast<double>(total);
}

}  // namespace riscmp
