// Dependency-distance analysis (supports the paper's §6.2 explanation).
//
// For every retired instruction, the distance to each of its producers is
// the number of dynamically retired instructions between them. The paper
// explains RISC-V's small-window ILP advantage as "local dependent
// instructions are more distantly spread for RISC-V"; this observer
// measures exactly that: the distribution of producer->consumer distances
// through registers and memory.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "isa/trace.hpp"
#include "support/flat_hash.hpp"
#include "support/stats.hpp"

namespace riscmp {

class DependencyDistanceAnalyzer final : public TraceObserver {
 public:
  DependencyDistanceAnalyzer();

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  /// Forget every producer and distance sample; reusable for a new trace.
  void reset();

  /// Mean producer->consumer distance over all observed dependencies.
  [[nodiscard]] double meanDistance() const { return stats_.mean(); }
  [[nodiscard]] std::uint64_t dependencies() const { return stats_.count(); }
  [[nodiscard]] std::uint64_t instructions() const { return retired_; }

  /// Fraction of dependencies with distance <= `window` — the share of
  /// producer/consumer pairs a ROB of that size could overlap.
  [[nodiscard]] double fractionWithin(std::uint64_t window) const;

  /// Power-of-two histogram: bucket[i] counts distances in
  /// [2^i, 2^(i+1)) (bucket 0 = distance 1).
  static constexpr std::size_t kBuckets = 24;
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& histogram() const {
    return histogram_;
  }

 private:
  void retireOne(const RetiredInst& inst);
  void record(std::uint64_t producerIndex);

  std::array<std::uint64_t, Reg::kDenseCount> regWriter_{};
  std::array<bool, Reg::kDenseCount> regWritten_{};
  FlatHashMap64<std::uint64_t> memWriter_;
  std::array<std::uint64_t, kBuckets> histogram_{};
  RunningStats stats_;
  std::uint64_t retired_ = 0;
};

}  // namespace riscmp
