// Critical-path analysis (paper §4.1, §5.1).
//
// An array holds the longest RAW chain ending at each register; a hash map
// holds the chain ending at each memory location (8-byte chunks, covering
// the access extent). Each retired instruction's depth is
//   max(depth of sources) + cost
// where cost is 1 for the ideal-processor analysis (§4) and the
// instruction's execution latency for the scaled analysis (§5) — loads and
// stores are not scaled (store-forwarding assumption, §5.1). The critical
// path is the maximum depth observed; ILP = instructions / CP.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "isa/trace.hpp"
#include "support/flat_hash.hpp"

namespace riscmp {

/// Execution latency per instruction group (cycles).
using LatencyTable = std::array<std::uint32_t, kInstGroupCount>;

/// The unit latency table: every group costs one cycle (ideal processor).
constexpr LatencyTable unitLatencies() {
  LatencyTable table{};
  table.fill(1);
  return table;
}

class CriticalPathAnalyzer final : public TraceObserver {
 public:
  /// Without a table the analyzer computes the paper's §4 (unscaled) CP;
  /// with one, the §5 scaled CP.
  CriticalPathAnalyzer() : latencies_(unitLatencies()), scaled_(false) {}
  explicit CriticalPathAnalyzer(const LatencyTable& latencies)
      : latencies_(latencies), scaled_(true) {}

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  /// Clear all chain state so the analyzer can observe a fresh trace; the
  /// latency table (and scaled/unscaled mode) is retained.
  void reset();

  /// Length of the longest RAW dependency chain seen so far.
  [[nodiscard]] std::uint64_t criticalPath() const { return maxDepth_; }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] double ilp() const {
    return maxDepth_ == 0
               ? 0.0
               : static_cast<double>(instructions_) /
                     static_cast<double>(maxDepth_);
  }
  /// Ideal runtime in seconds at `clockHz` (paper uses 2 GHz).
  [[nodiscard]] double runtimeSeconds(double clockHz = 2e9) const {
    return static_cast<double>(maxDepth_) / clockHz;
  }

 private:
  void retireOne(const RetiredInst& inst);

  std::array<std::uint64_t, Reg::kDenseCount> regDepth_{};
  FlatHashMap64<std::uint64_t> memDepth_;
  LatencyTable latencies_;
  bool scaled_;
  std::uint64_t maxDepth_ = 0;
  std::uint64_t instructions_ = 0;
};

}  // namespace riscmp
