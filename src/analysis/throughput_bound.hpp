// OSACA-style per-kernel throughput bound (ISSUE 7 tentpole).
//
// Laukemann et al. (OSACA, PAPERS.md) predict loop-kernel performance as
// max(throughput bound, critical-path bound): the throughput bound is the
// pressure on the busiest execution port under an idealised least-loaded
// assignment, and the CP bound is the longest latency-scaled RAW chain.
// This observer computes both per benchmark kernel (plus whole-program)
// from the same retired-instruction stream the engine already produces:
//   - every retired instruction is attributed to its kernel via the
//     staticIndex fast path (DESIGN.md §10, as in PathLengthCounter and
//     CacheModelAnalyzer),
//   - its group is assigned to the least-loaded eligible port (ties break
//     to the lowest port index), adding one slot-cycle of pressure — the
//     fully-pipelined single-issue-per-port assumption the OoO model also
//     makes,
//   - an issue-width bound ceil(instructions / issueWidth) models the
//     front end,
//   - the CP bound mirrors CriticalPathAnalyzer's scaled semantics exactly
//     (loads/stores cost 1 — store forwarding, §5.1 — everything else its
//     group latency), tracked per kernel so a kernel's chain is only what
//     its own instructions contribute.
// The reported cycles are max(port bound, issue bound, CP bound), with the
// binding resource named.
//
// The port/width description arrives as a ThroughputModel — a plain struct
// mirroring the `ports:` + `core:` sections of the YAML core models —
// rather than a uarch::CoreModel, because riscmp_uarch links
// riscmp_analysis, not the other way around. CoreModel::throughputModel()
// (uarch/core_model.hpp) performs the conversion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "core/program.hpp"
#include "isa/trace.hpp"
#include "support/flat_hash.hpp"

namespace riscmp {

/// One execution port: the instruction groups it accepts, as a bitmask
/// over InstGroup (mirrors uarch::Port without depending on it).
struct ThroughputPort {
  std::string name;
  std::uint32_t groupMask = 0;  ///< bit i set => accepts InstGroup(i)

  [[nodiscard]] bool accepts(InstGroup group) const {
    return groupMask & (1u << static_cast<unsigned>(group));
  }
};

/// Port layout + issue width + latency table of one core model — the
/// inputs the throughput bound needs, decoupled from uarch::CoreModel.
struct ThroughputModel {
  std::string name;
  unsigned issueWidth = 4;
  std::vector<ThroughputPort> ports;
  LatencyTable latencies = unitLatencies();

  /// Number of ports accepting `group` (its port multiplicity).
  [[nodiscard]] unsigned portMultiplicity(InstGroup group) const {
    unsigned count = 0;
    for (const ThroughputPort& port : ports) {
      if (port.accepts(group)) ++count;
    }
    return count;
  }

  /// Best-case cycles per instruction of `group` in a homogeneous stream:
  /// max(1/multiplicity, 1/issueWidth) — the OSACA reciprocal throughput.
  /// Infinity when no port accepts the group (it can never issue).
  [[nodiscard]] double reciprocalThroughput(InstGroup group) const;
};

class ThroughputBoundAnalyzer final : public TraceObserver {
 public:
  /// Kernel regions come from the program's symbol table (regions sharing
  /// a name aggregate, as in PathLengthCounter). Throws ConfigError when
  /// the model has no ports and ValidationFault for overlapping kernel
  /// regions; retiring an instruction whose group no port accepts throws
  /// ValidationFault (the silent-fallthrough bug this PR fixes in the OoO
  /// model).
  ThroughputBoundAnalyzer(ThroughputModel model, const Program& program);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  /// One kernel's (or the whole program's) resource bounds. Plain data so
  /// the cell codec can round-trip it exactly.
  struct KernelBound {
    std::string name;
    std::uint64_t instructions = 0;
    std::vector<std::uint64_t> portCycles;  ///< slot-cycles per port
    std::uint64_t portBound = 0;            ///< max over portCycles
    std::string bindingPort;                ///< most-loaded port ("" if none)
    std::uint64_t issueBound = 0;           ///< ceil(instructions / width)
    std::uint64_t cpBound = 0;              ///< latency-scaled RAW chain

    /// The OSACA prediction: max of the three bounds.
    [[nodiscard]] std::uint64_t boundCycles() const {
      std::uint64_t bound = portBound;
      if (issueBound > bound) bound = issueBound;
      if (cpBound > bound) bound = cpBound;
      return bound;
    }
    /// Which resource binds: "CP" when the dependency chain dominates,
    /// otherwise "port:<name>" or "issue". Structural bounds win ties
    /// against CP (a saturated port is the physical limit); the port wins
    /// a port/issue tie (it is the narrower resource).
    [[nodiscard]] std::string bindingResource() const {
      const std::uint64_t structural =
          portBound > issueBound ? portBound : issueBound;
      if (cpBound > structural) return "CP";
      if (portBound >= issueBound) return "port:" + bindingPort;
      return "issue";
    }
    [[nodiscard]] double cyclesPerInstruction() const {
      return instructions == 0 ? 0.0
                               : static_cast<double>(boundCycles()) /
                                     static_cast<double>(instructions);
    }
  };

  /// Per-kernel bounds, in first-appearance symbol order.
  [[nodiscard]] std::vector<KernelBound> kernels() const;
  /// Whole-program bounds (every retired instruction, attributed or not);
  /// its cpBound equals CriticalPathAnalyzer's scaled CP by construction.
  [[nodiscard]] KernelBound program() const;

  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] const ThroughputModel& model() const { return model_; }

  /// Clear pressure and chain state; the model and kernel regions are
  /// retained so the analyzer can observe a fresh run of the same program.
  void reset();

 private:
  struct Region {
    std::uint64_t begin;
    std::uint64_t end;
    std::size_t kernelIndex;
  };

  /// Per-kernel accumulation state: port pressure plus a private scaled-CP
  /// chain (register and memory depths are tracked per kernel so one
  /// kernel's chain never leaks into another's bound).
  struct Context {
    std::uint64_t instructions = 0;
    std::vector<std::uint64_t> portCycles;
    std::uint64_t maxDepth = 0;
    std::array<std::uint64_t, Reg::kDenseCount> regDepth{};
    FlatHashMap64<std::uint64_t> memDepth;
  };

  void retireOne(const RetiredInst& inst);
  void account(Context& context, const RetiredInst& inst);
  /// kernelNames_ slot for this record, or -1 when outside every kernel.
  [[nodiscard]] std::int32_t kernelOf(const RetiredInst& inst);
  [[nodiscard]] KernelBound bound(const Context& context,
                                  std::string name) const;

  ThroughputModel model_;
  std::uint64_t instructions_ = 0;

  // Static attribution (see PathLengthCounter): per code word, the kernel
  // slot to credit, indexed by RetiredInst::staticIndex, with a pc
  // range-search fallback for records without static metadata.
  std::vector<std::int32_t> wordKernel_;
  std::vector<Region> regions_;
  std::size_t lastRegion_ = SIZE_MAX;

  std::vector<std::string> kernelNames_;
  /// One context per kernel, plus the whole-program context at index
  /// kernelNames_.size() (same layout as CacheModelAnalyzer::lineSets_).
  std::vector<Context> contexts_;
};

}  // namespace riscmp
