#include "analysis/trace_log.hpp"

#include <ostream>

namespace riscmp {
namespace {

void writeRegs(std::ostream& out, const SmallVector<Reg, 5>& regs) {
  bool first = true;
  for (const Reg& reg : regs) {
    if (!first) out << '|';
    out << reg.dense();
    first = false;
  }
}

void writeRegs(std::ostream& out, const SmallVector<Reg, 3>& regs) {
  bool first = true;
  for (const Reg& reg : regs) {
    if (!first) out << '|';
    out << reg.dense();
    first = false;
  }
}

void writeMem(std::ostream& out, const SmallVector<MemAccess, 2>& accesses) {
  bool first = true;
  for (const MemAccess& access : accesses) {
    if (!first) out << '|';
    out << access.addr << ':' << static_cast<unsigned>(access.size);
    first = false;
  }
}

}  // namespace

TraceLogger::TraceLogger(std::ostream& out, std::uint64_t limit)
    : out_(out), limit_(limit) {}

void TraceLogger::writeHeader(std::ostream& out) {
  out << "index,pc,group,srcs,dsts,loads,stores,branch,taken\n";
}

void TraceLogger::onRetireBlock(std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) onRetire(inst);
}

void TraceLogger::onRetire(const RetiredInst& inst) {
  const std::uint64_t index = index_++;
  if (limit_ != 0 && logged_ >= limit_) return;
  ++logged_;
  out_ << index << ",0x" << std::hex << inst.pc << std::dec << ','
       << instGroupName(inst.group) << ',';
  writeRegs(out_, inst.srcs);
  out_ << ',';
  writeRegs(out_, inst.dsts);
  out_ << ',';
  writeMem(out_, inst.loads);
  out_ << ',';
  writeMem(out_, inst.stores);
  out_ << ',' << (inst.isBranch ? 1 : 0) << ','
       << (inst.branchTaken ? 1 : 0) << '\n';
}

}  // namespace riscmp
