#include "analysis/path_length.hpp"

#include <algorithm>

namespace riscmp {

PathLengthCounter::PathLengthCounter(const Program& program) {
  // Validates kernel-region non-overlap (ValidationFault on violation).
  const std::vector<std::int32_t> symbolOfWord = program.kernelWordIndex();

  std::vector<std::size_t> symbolToKernel(program.kernels.size());
  for (std::size_t s = 0; s < program.kernels.size(); ++s) {
    const Symbol& symbol = program.kernels[s];
    // Multiple regions may share a kernel name (time-step-unrolled
    // workloads); their counts aggregate.
    std::size_t kernelIndex = kernels_.size();
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
      if (kernels_[i].name == symbol.name) {
        kernelIndex = i;
        break;
      }
    }
    if (kernelIndex == kernels_.size()) {
      kernels_.push_back({symbol.name, 0});
    }
    symbolToKernel[s] = kernelIndex;
    regions_.push_back({symbol.addr, symbol.addr + symbol.size, kernelIndex});
  }
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.begin < b.begin; });

  wordKernel_.resize(symbolOfWord.size());
  for (std::size_t w = 0; w < symbolOfWord.size(); ++w) {
    wordKernel_[w] =
        symbolOfWord[w] < 0
            ? -1
            : static_cast<std::int32_t>(
                  symbolToKernel[static_cast<std::size_t>(symbolOfWord[w])]);
  }
}

void PathLengthCounter::reset() {
  for (KernelCount& kernel : kernels_) kernel.count = 0;
  groups_.fill(0);
  total_ = 0;
  unattributed_ = 0;
  lastRegion_ = SIZE_MAX;
}

void PathLengthCounter::attribute(const RetiredInst& inst) {
  ++total_;
  ++groups_[static_cast<std::size_t>(inst.group)];

  // Hot path: the core stamped the static-instruction index, so kernel
  // attribution is one table load instead of a pc range search.
  if (inst.staticIndex < wordKernel_.size()) {
    const std::int32_t kernel = wordKernel_[inst.staticIndex];
    if (kernel >= 0) {
      ++kernels_[static_cast<std::size_t>(kernel)].count;
    } else {
      ++unattributed_;
    }
    return;
  }

  // Fallback for records without static metadata (hand-built traces,
  // execution outside the code image). Loops stay inside one region for a
  // long time; check the last hit first.
  if (lastRegion_ != SIZE_MAX) {
    const Region& region = regions_[lastRegion_];
    if (inst.pc >= region.begin && inst.pc < region.end) {
      ++kernels_[region.kernelIndex].count;
      return;
    }
  }
  const auto it = std::upper_bound(
      regions_.begin(), regions_.end(), inst.pc,
      [](std::uint64_t pc, const Region& region) { return pc < region.begin; });
  if (it != regions_.begin()) {
    const Region& region = *(it - 1);
    if (inst.pc < region.end) {
      lastRegion_ = static_cast<std::size_t>(&region - regions_.data());
      ++kernels_[region.kernelIndex].count;
      return;
    }
  }
  ++unattributed_;
}

void PathLengthCounter::onRetire(const RetiredInst& inst) { attribute(inst); }

void PathLengthCounter::onRetireBlock(std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) attribute(inst);
}

std::uint64_t PathLengthCounter::kernelCount(std::string_view name) const {
  for (const KernelCount& kernel : kernels_) {
    if (kernel.name == name) return kernel.count;
  }
  return 0;
}

std::uint64_t PathLengthCounter::branchCount() const {
  return groupCount(InstGroup::Branch);
}

}  // namespace riscmp
