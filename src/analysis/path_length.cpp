#include "analysis/path_length.hpp"

#include <algorithm>

namespace riscmp {

PathLengthCounter::PathLengthCounter(const Program& program) {
  for (const Symbol& symbol : program.kernels) {
    // Multiple regions may share a kernel name (time-step-unrolled
    // workloads); their counts aggregate.
    std::size_t kernelIndex = kernels_.size();
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
      if (kernels_[i].name == symbol.name) {
        kernelIndex = i;
        break;
      }
    }
    if (kernelIndex == kernels_.size()) {
      kernels_.push_back({symbol.name, 0});
    }
    regions_.push_back({symbol.addr, symbol.addr + symbol.size, kernelIndex});
  }
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.begin < b.begin; });
}

void PathLengthCounter::reset() {
  for (KernelCount& kernel : kernels_) kernel.count = 0;
  groups_.fill(0);
  total_ = 0;
  unattributed_ = 0;
  lastRegion_ = SIZE_MAX;
}

void PathLengthCounter::onRetire(const RetiredInst& inst) {
  ++total_;
  ++groups_[static_cast<std::size_t>(inst.group)];

  // Loops stay inside one region for a long time; check the last hit first.
  if (lastRegion_ != SIZE_MAX) {
    const Region& region = regions_[lastRegion_];
    if (inst.pc >= region.begin && inst.pc < region.end) {
      ++kernels_[region.kernelIndex].count;
      return;
    }
  }
  const auto it = std::upper_bound(
      regions_.begin(), regions_.end(), inst.pc,
      [](std::uint64_t pc, const Region& region) { return pc < region.begin; });
  if (it != regions_.begin()) {
    const Region& region = *(it - 1);
    if (inst.pc < region.end) {
      lastRegion_ = static_cast<std::size_t>(&region - regions_.data());
      ++kernels_[region.kernelIndex].count;
      return;
    }
  }
  ++unattributed_;
}

std::uint64_t PathLengthCounter::kernelCount(std::string_view name) const {
  for (const KernelCount& kernel : kernels_) {
    if (kernel.name == name) return kernel.count;
  }
  return 0;
}

std::uint64_t PathLengthCounter::branchCount() const {
  return groupCount(InstGroup::Branch);
}

}  // namespace riscmp
