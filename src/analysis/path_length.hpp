// Path-length analysis (paper §3): dynamic instruction counts, attributed
// per benchmark kernel for the Figure 1 breakdown.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "isa/trace.hpp"

namespace riscmp {

class PathLengthCounter final : public TraceObserver {
 public:
  /// Kernel regions are taken from the program's symbol table. Throws
  /// ValidationFault (naming both symbols) if any two kernel regions
  /// overlap — overlap would make per-kernel attribution ambiguous.
  explicit PathLengthCounter(const Program& program);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  /// Zero every count (total, per-kernel, per-group, unattributed) while
  /// keeping the kernel regions, so the counter can observe a fresh run of
  /// the same program.
  void reset();

  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Instructions whose pc fell outside every kernel region.
  [[nodiscard]] std::uint64_t unattributed() const { return unattributed_; }

  struct KernelCount {
    std::string name;
    std::uint64_t count = 0;
  };
  [[nodiscard]] const std::vector<KernelCount>& kernels() const {
    return kernels_;
  }
  [[nodiscard]] std::uint64_t kernelCount(std::string_view name) const;

  /// Per-group instruction mix (branch fraction etc., used by the §3.3
  /// style analyses).
  [[nodiscard]] std::uint64_t groupCount(InstGroup group) const {
    return groups_[static_cast<std::size_t>(group)];
  }
  [[nodiscard]] std::uint64_t branchCount() const;

 private:
  struct Region {
    std::uint64_t begin;
    std::uint64_t end;
    std::size_t kernelIndex;
  };

  void attribute(const RetiredInst& inst);

  /// Static attribution table (tentpole): per code word, the kernels_ slot
  /// to credit (-1 = unattributed), indexed by RetiredInst::staticIndex.
  /// Records without a staticIndex (hand-built tests, code executed
  /// outside the static image) fall back to the pc range search below.
  std::vector<std::int32_t> wordKernel_;

  std::vector<Region> regions_;
  std::vector<KernelCount> kernels_;
  std::array<std::uint64_t, kInstGroupCount> groups_{};
  std::uint64_t total_ = 0;
  std::uint64_t unattributed_ = 0;
  std::size_t lastRegion_ = SIZE_MAX;
};

}  // namespace riscmp
