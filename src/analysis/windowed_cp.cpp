#include "analysis/windowed_cp.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

namespace riscmp {

std::vector<std::uint32_t> WindowedCPAnalyzer::paperWindowSizes() {
  return {4, 16, 64, 200, 500, 1000, 2000};
}

WindowedCPAnalyzer::WindowedCPAnalyzer(std::vector<std::uint32_t> windowSizes,
                                       unsigned slideNumerator,
                                       unsigned slideDenominator,
                                       const LatencyTable* latencies)
    : slideNumerator_(std::max(1u, slideNumerator)),
      slideDenominator_(std::max(1u, slideDenominator)) {
  for (const std::uint32_t size : windowSizes) {
    sizes_.push_back(PerSize{size});
  }
  if (latencies != nullptr) {
    scaled_ = true;
    latencies_ = *latencies;
  }
}

void WindowedCPAnalyzer::reset() {
  buffer_.clear();
  bufferBase_ = 0;
  retired_ = 0;
  for (PerSize& perSize : sizes_) {
    perSize.nextStart = 0;
    perSize.cpStats.reset();
  }
}

void WindowedCPAnalyzer::onRetire(const RetiredInst& inst) {
  Footprint footprint;
  if (scaled_) {
    const bool isMem = !inst.loads.empty() || !inst.stores.empty();
    footprint.cost =
        isMem ? 1 : latencies_[static_cast<std::size_t>(inst.group)];
  }
  for (const Reg& reg : inst.srcs) {
    footprint.srcRegs.push_back(static_cast<std::uint8_t>(reg.dense()));
  }
  for (const Reg& reg : inst.dsts) {
    footprint.dstRegs.push_back(static_cast<std::uint8_t>(reg.dense()));
  }
  for (const MemAccess& access : inst.loads) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first;
         chunk <= last && footprint.loadChunks.size() <
                              footprint.loadChunks.capacity();
         ++chunk) {
      footprint.loadChunks.push_back(chunk);
    }
  }
  for (const MemAccess& access : inst.stores) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first;
         chunk <= last &&
         footprint.stChunks.size() < footprint.stChunks.capacity();
         ++chunk) {
      footprint.stChunks.push_back(chunk);
    }
  }
  buffer_.push_back(std::move(footprint));
  ++retired_;
  evaluateReadyWindows();
}

void WindowedCPAnalyzer::evaluateReadyWindows() {
  for (PerSize& perSize : sizes_) {
    while (perSize.nextStart + perSize.size <= retired_) {
      const std::uint64_t cp = windowCp(perSize.nextStart, perSize.size);
      perSize.cpStats.add(static_cast<double>(cp));
      perSize.nextStart += std::max<std::uint32_t>(
          1, perSize.size * slideNumerator_ / slideDenominator_);
    }
  }
  trim();
}

std::uint64_t WindowedCPAnalyzer::windowCp(std::uint64_t start,
                                           std::uint32_t size) {
  // Scratch state is reused across calls; small windows are evaluated every
  // W/2 retirements so per-call allocation would dominate.
  auto& regDepth = scratchRegDepth_;
  regDepth.fill(0);
  auto& memDepth = scratchMemDepth_;
  memDepth.clear();
  std::uint64_t maxDepth = 0;
  const std::size_t offset = static_cast<std::size_t>(start - bufferBase_);
  for (std::size_t i = 0; i < size; ++i) {
    const Footprint& footprint = buffer_[offset + i];
    std::uint64_t depth = 0;
    for (const std::uint8_t reg : footprint.srcRegs) {
      depth = std::max(depth, regDepth[reg]);
    }
    for (const std::uint64_t chunk : footprint.loadChunks) {
      const auto it = memDepth.find(chunk);
      if (it != memDepth.end()) depth = std::max(depth, it->second);
    }
    depth += footprint.cost;
    for (const std::uint8_t reg : footprint.dstRegs) regDepth[reg] = depth;
    for (const std::uint64_t chunk : footprint.stChunks) {
      memDepth[chunk] = depth;
    }
    maxDepth = std::max(maxDepth, depth);
  }
  return maxDepth;
}

void WindowedCPAnalyzer::trim() {
  // Records below every size's next window start are no longer needed.
  std::uint64_t minStart = retired_;
  for (const PerSize& perSize : sizes_) {
    minStart = std::min(minStart, perSize.nextStart);
  }
  while (bufferBase_ < minStart && !buffer_.empty()) {
    buffer_.pop_front();
    ++bufferBase_;
  }
}

void WindowedCPAnalyzer::onProgramEnd() {
  // Partial trailing windows are discarded, matching the paper's method of
  // only evaluating full windows.
}

std::vector<WindowedCPAnalyzer::WindowResult> WindowedCPAnalyzer::results()
    const {
  std::vector<WindowResult> out;
  for (const PerSize& perSize : sizes_) {
    WindowResult result;
    result.windowSize = perSize.size;
    result.windows = perSize.cpStats.count();
    result.meanCp = perSize.cpStats.mean();
    result.meanIlp = result.meanCp == 0.0
                         ? 0.0
                         : static_cast<double>(perSize.size) / result.meanCp;
    result.minCp = perSize.cpStats.min();
    result.maxCp = perSize.cpStats.max();
    out.push_back(result);
  }
  return out;
}

}  // namespace riscmp
