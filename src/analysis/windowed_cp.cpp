#include "analysis/windowed_cp.hpp"

#include <algorithm>
#include <array>

namespace riscmp {

std::vector<std::uint32_t> WindowedCPAnalyzer::paperWindowSizes() {
  return {4, 16, 64, 200, 500, 1000, 2000};
}

WindowedCPAnalyzer::WindowedCPAnalyzer(std::vector<std::uint32_t> windowSizes,
                                       unsigned slideNumerator,
                                       unsigned slideDenominator,
                                       const LatencyTable* latencies)
    : slideNumerator_(std::max(1u, slideNumerator)),
      slideDenominator_(std::max(1u, slideDenominator)) {
  for (const std::uint32_t size : windowSizes) {
    sizes_.push_back(PerSize{size});
  }
  if (latencies != nullptr) {
    scaled_ = true;
    latencies_ = *latencies;
  }
}

void WindowedCPAnalyzer::reset() {
  buffer_.clear();
  chunkIds_.clear();
  scratchMemDepth_.clear();
  scratchMemStamp_.clear();
  scratchRegStamp_.fill(0);
  epoch_ = 0;
  bufferBase_ = 0;
  retired_ = 0;
  for (PerSize& perSize : sizes_) {
    perSize.nextStart = 0;
    perSize.cpStats.reset();
  }
}

std::uint32_t WindowedCPAnalyzer::denseChunk(std::uint64_t chunk) {
  const std::uint32_t next = static_cast<std::uint32_t>(chunkIds_.size());
  const std::uint32_t id = chunkIds_.findOrInsert(chunk, next);
  if (id == next && next >= scratchMemDepth_.size()) {
    // Grow the scratch tables in steps so buffering stays O(1) amortised.
    scratchMemDepth_.resize(scratchMemDepth_.size() * 2 + 64);
    scratchMemStamp_.resize(scratchMemDepth_.size(), 0);
  }
  return id;
}

void WindowedCPAnalyzer::onRetire(const RetiredInst& inst) {
  buffer(inst);
  evaluateReadyWindows();
}

void WindowedCPAnalyzer::onRetireBlock(std::span<const RetiredInst> block) {
  // Buffering the whole block before evaluating produces bit-identical
  // per-window statistics (nextStart progression only depends on the
  // retired count) while amortising the per-size scan and the trim.
  for (const RetiredInst& inst : block) buffer(inst);
  evaluateReadyWindows();
}

void WindowedCPAnalyzer::buffer(const RetiredInst& inst) {
  Footprint footprint;
  if (scaled_) {
    const bool isMem = !inst.loads.empty() || !inst.stores.empty();
    footprint.cost =
        isMem ? 1 : latencies_[static_cast<std::size_t>(inst.group)];
  }
  for (const Reg& reg : inst.srcs) {
    footprint.srcRegs.push_back(static_cast<std::uint8_t>(reg.dense()));
  }
  for (const Reg& reg : inst.dsts) {
    footprint.dstRegs.push_back(static_cast<std::uint8_t>(reg.dense()));
  }
  for (const MemAccess& access : inst.loads) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first;
         chunk <= last && footprint.loadChunks.size() <
                              footprint.loadChunks.capacity();
         ++chunk) {
      footprint.loadChunks.push_back(denseChunk(chunk));
    }
  }
  for (const MemAccess& access : inst.stores) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first;
         chunk <= last &&
         footprint.stChunks.size() < footprint.stChunks.capacity();
         ++chunk) {
      footprint.stChunks.push_back(denseChunk(chunk));
    }
  }
  buffer_.push_back(std::move(footprint));
  ++retired_;
}

void WindowedCPAnalyzer::evaluateReadyWindows() {
  for (PerSize& perSize : sizes_) {
    while (perSize.nextStart + perSize.size <= retired_) {
      const std::uint64_t cp = windowCp(perSize.nextStart, perSize.size);
      perSize.cpStats.add(static_cast<double>(cp));
      perSize.nextStart += std::max<std::uint32_t>(
          1, perSize.size * slideNumerator_ / slideDenominator_);
    }
  }
  trim();
}

std::uint64_t WindowedCPAnalyzer::windowCp(std::uint64_t start,
                                           std::uint32_t size) {
  // Scratch depth tables are epoch-stamped: bumping epoch_ invalidates
  // every entry from the previous window in O(1). Small windows are
  // evaluated every W/2 retirements, so clearing (or worse, rehashing) per
  // call would dominate the whole simulation pass.
  const std::uint64_t epoch = ++epoch_;
  std::uint64_t maxDepth = 0;
  const std::size_t offset = static_cast<std::size_t>(start - bufferBase_);
  for (std::size_t i = 0; i < size; ++i) {
    const Footprint& footprint = buffer_[offset + i];
    std::uint64_t depth = 0;
    for (const std::uint8_t reg : footprint.srcRegs) {
      if (scratchRegStamp_[reg] == epoch) {
        depth = std::max(depth, scratchRegDepth_[reg]);
      }
    }
    for (const std::uint32_t chunk : footprint.loadChunks) {
      if (scratchMemStamp_[chunk] == epoch) {
        depth = std::max(depth, scratchMemDepth_[chunk]);
      }
    }
    depth += footprint.cost;
    for (const std::uint8_t reg : footprint.dstRegs) {
      scratchRegStamp_[reg] = epoch;
      scratchRegDepth_[reg] = depth;
    }
    for (const std::uint32_t chunk : footprint.stChunks) {
      scratchMemStamp_[chunk] = epoch;
      scratchMemDepth_[chunk] = depth;
    }
    maxDepth = std::max(maxDepth, depth);
  }
  return maxDepth;
}

void WindowedCPAnalyzer::trim() {
  // Records below every size's next window start are no longer needed.
  std::uint64_t minStart = retired_;
  for (const PerSize& perSize : sizes_) {
    minStart = std::min(minStart, perSize.nextStart);
  }
  while (bufferBase_ < minStart && !buffer_.empty()) {
    buffer_.pop_front();
    ++bufferBase_;
  }
}

void WindowedCPAnalyzer::onProgramEnd() {
  // Partial trailing windows are discarded, matching the paper's method of
  // only evaluating full windows.
}

std::vector<WindowedCPAnalyzer::WindowResult> WindowedCPAnalyzer::results()
    const {
  std::vector<WindowResult> out;
  for (const PerSize& perSize : sizes_) {
    WindowResult result;
    result.windowSize = perSize.size;
    result.windows = perSize.cpStats.count();
    result.meanCp = perSize.cpStats.mean();
    result.meanIlp = result.meanCp == 0.0
                         ? 0.0
                         : static_cast<double>(perSize.size) / result.meanCp;
    result.minCp = perSize.cpStats.min();
    result.maxCp = perSize.cpStats.max();
    out.push_back(result);
  }
  return out;
}

}  // namespace riscmp
