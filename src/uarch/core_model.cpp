#include "uarch/core_model.hpp"

#include <algorithm>
#include <string_view>

#include "support/fault.hpp"

namespace riscmp::uarch {
namespace {

/// Reject keys outside `allowed` so config typos fail loudly instead of
/// silently falling back to defaults.
void rejectUnknownKeys(const yaml::Node& node, std::string_view section,
                       std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : node.items()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw ConfigError("unknown key in " + std::string(section) + " section",
                        {}, value.line(), key);
    }
  }
}

unsigned positiveInt(const yaml::Node& section, std::string_view key,
                     std::int64_t fallback) {
  const std::int64_t v = section.getInt(key, fallback);
  if (v < 1) {
    throw ConfigError("must be a positive integer, got " + std::to_string(v),
                      {}, section.has(key) ? section.at(key).line() : 0,
                      std::string(key));
  }
  return static_cast<unsigned>(v);
}

constexpr bool isPowerOfTwo(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Best-effort line for an error about `key` inside `section`.
int lineFor(const yaml::Node& section, std::string_view key) {
  return section.has(key) ? section.at(key).line() : section.line();
}

/// Parse one cache level (`l1d:` / `l2:`) with geometry validation: the
/// size must divide into a power-of-two number of whole sets.
mem::LevelConfig parseCacheLevel(const yaml::Node& caches,
                                 const std::string& name,
                                 std::uint32_t lineBytes,
                                 const mem::LevelConfig& fallback) {
  if (!caches.has(name)) return fallback;
  const yaml::Node& node = caches.at(name);
  rejectUnknownKeys(node, name, {"size_kib", "ways", "latency", "line_bytes"});

  mem::LevelConfig level;
  level.sizeBytes =
      std::uint64_t{positiveInt(node, "size_kib", static_cast<std::int64_t>(
                                                      fallback.sizeBytes /
                                                      1024))} *
      1024;
  level.ways = positiveInt(node, "ways", fallback.ways);
  level.latency = positiveInt(node, "latency", fallback.latency);

  const std::uint64_t waySize = std::uint64_t{lineBytes} * level.ways;
  const int line = lineFor(node, "size_kib");
  if (level.sizeBytes % waySize != 0) {
    throw ConfigError(name + " size is not divisible into whole sets of " +
                          std::to_string(level.ways) + " x " +
                          std::to_string(lineBytes) + " B lines",
                      {}, line, name + ".size_kib");
  }
  const std::uint64_t sets = level.sizeBytes / waySize;
  if (!isPowerOfTwo(sets)) {
    throw ConfigError(name + " set count " + std::to_string(sets) +
                          " must be a power of two",
                      {}, line, name + ".size_kib");
  }
  return level;
}

/// Reject a per-level `line_bytes:` that differs from the hierarchy's
/// shared line size (ISSUE 10 satellite). A single line geometry is what
/// makes the straddle loop and the L1<->L2 write-back exchange exact; a
/// mismatched L2 would silently mis-model every straddling access.
void checkLevelLineBytes(const yaml::Node& caches, const std::string& name,
                         std::uint32_t lineBytes, const std::string& against) {
  if (!caches.has(name)) return;
  const yaml::Node& node = caches.at(name);
  if (!node.has("line_bytes")) return;
  const std::uint64_t levelLine = node.at("line_bytes").asUint();
  if (levelLine != lineBytes) {
    throw ConfigError(
        name + " line size " + std::to_string(levelLine) +
            " B differs from " + against + " (" + std::to_string(lineBytes) +
            " B); the hierarchy models one line geometry, so straddling "
            "accesses would be mis-counted",
        {}, node.at("line_bytes").line(), name + ".line_bytes");
  }
}

/// Parse and validate the `tlb:` subsection (ISSUE 10): page geometry and
/// the two translation levels, with the same divisible-into-power-of-two-
/// sets rule as the caches.
mem::TlbConfig parseTlb(const yaml::Node& tlb, std::uint32_t lineBytes) {
  rejectUnknownKeys(tlb, "tlb",
                    {"page_bytes", "l1_entries", "l1_ways", "l2_entries",
                     "l2_ways", "l2_latency", "walk_latency"});

  mem::TlbConfig config;
  config.pageBytes = positiveInt(tlb, "page_bytes", 4096);
  if (!isPowerOfTwo(config.pageBytes) || config.pageBytes < lineBytes) {
    throw ConfigError(
        "page size must be a power of two no smaller than the line size (" +
            std::to_string(lineBytes) + " B), got " +
            std::to_string(config.pageBytes),
        {}, lineFor(tlb, "page_bytes"), "page_bytes");
  }
  config.l1Entries = positiveInt(tlb, "l1_entries", 48);
  config.l1Ways = positiveInt(tlb, "l1_ways", config.l1Entries);
  config.l2Entries = positiveInt(tlb, "l2_entries", 1024);
  config.l2Ways = positiveInt(tlb, "l2_ways", 8);
  config.l2Latency = positiveInt(tlb, "l2_latency", 5);
  config.walkLatency = positiveInt(tlb, "walk_latency", 30);

  const auto checkLevel = [&tlb](std::uint32_t entries, std::uint32_t ways,
                                 const std::string& prefix) {
    if (entries % ways != 0) {
      throw ConfigError(std::to_string(entries) +
                            " entries are not divisible into sets of " +
                            std::to_string(ways) + " ways",
                        {}, lineFor(tlb, prefix + "_entries"),
                        prefix + "_entries");
    }
    if (!isPowerOfTwo(entries / ways)) {
      throw ConfigError("set count " + std::to_string(entries / ways) +
                            " must be a power of two",
                        {}, lineFor(tlb, prefix + "_entries"),
                        prefix + "_entries");
    }
  };
  checkLevel(config.l1Entries, config.l1Ways, "l1");
  checkLevel(config.l2Entries, config.l2Ways, "l2");
  return config;
}

/// Parse and validate the `caches:` section (ISSUE 5). Every reject names
/// the offending key and its source line; fromFile adds the path.
mem::CacheConfig parseCaches(const yaml::Node& caches) {
  rejectUnknownKeys(caches, "caches",
                    {"line_bytes", "l1d", "l2", "memory_latency", "prefetcher",
                     "mshrs", "mem_bytes_per_cycle", "tlb"});

  mem::CacheConfig config;
  config.lineBytes = positiveInt(caches, "line_bytes", 64);
  if (!isPowerOfTwo(config.lineBytes) || config.lineBytes < 8 ||
      config.lineBytes > 4096) {
    throw ConfigError("line size must be a power of two in [8, 4096], got " +
                          std::to_string(config.lineBytes),
                      {}, lineFor(caches, "line_bytes"), "line_bytes");
  }
  checkLevelLineBytes(caches, "l1d", config.lineBytes,
                      "the shared line_bytes");
  checkLevelLineBytes(caches, "l2", config.lineBytes, "L1's line size");
  config.l1d = parseCacheLevel(caches, "l1d", config.lineBytes, config.l1d);
  config.l2 = parseCacheLevel(caches, "l2", config.lineBytes, config.l2);
  if (config.l2.sizeBytes < config.l1d.sizeBytes) {
    throw ConfigError(
        "L2 (" + std::to_string(config.l2.sizeBytes / 1024) +
            " KiB) must be at least as large as L1D (" +
            std::to_string(config.l1d.sizeBytes / 1024) + " KiB)",
        {}, caches.has("l2") ? lineFor(caches.at("l2"), "size_kib") : caches.line(),
        "l2.size_kib");
  }
  config.memoryLatency = positiveInt(caches, "memory_latency", 80);
  config.mshrs = positiveInt(caches, "mshrs", 8);
  config.memBytesPerCycle = positiveInt(caches, "mem_bytes_per_cycle", 16);
  if (caches.has("tlb")) {
    config.tlb = parseTlb(caches.at("tlb"), config.lineBytes);
  }

  const std::string prefetcher = caches.getString("prefetcher", "none");
  if (prefetcher == "next_line") {
    config.prefetch = mem::PrefetchKind::NextLine;
  } else if (prefetcher == "stride") {
    config.prefetch = mem::PrefetchKind::Stride;
  } else if (prefetcher != "none") {
    throw ConfigError("unknown prefetcher '" + prefetcher +
                          "' (expected none, next_line, or stride)",
                      {}, lineFor(caches, "prefetcher"), "prefetcher");
  }
  return config;
}

/// Parse and validate the `fusion:` section (ISSUE 8). The `isa:` key is
/// required — fusion rules are ISA-specific, and the declared ISA lets the
/// loader reject rules that are illegal for it (load_pair on A64, cmp_bcc
/// on RV64) at load time with file/line/key provenance.
FusionConfig parseFusion(const yaml::Node& fusion) {
  rejectUnknownKeys(fusion, "fusion", {"isa", "rules"});

  FusionConfig config;
  if (!fusion.has("isa")) {
    throw ConfigError("fusion section missing required key", {}, fusion.line(),
                      "isa");
  }
  const std::string isa = fusion.getString("isa", "");
  if (isa == "rv64") {
    config.arch = Arch::Rv64;
  } else if (isa == "a64") {
    config.arch = Arch::AArch64;
  } else {
    throw ConfigError("unknown fusion isa '" + isa +
                          "' (expected rv64 or a64)",
                      {}, lineFor(fusion, "isa"), "isa");
  }

  if (!fusion.has("rules")) {
    throw ConfigError("fusion section missing required key", {}, fusion.line(),
                      "rules");
  }
  const yaml::Node& rules = fusion.at("rules");
  if (!rules.isSequence()) {
    throw ConfigError("'rules' must be a sequence of fusion rule names", {},
                      rules.line(), "rules");
  }
  for (const yaml::Node& ruleNode : rules.elements()) {
    const auto rule = fusionRuleFromName(ruleNode.asString());
    if (!rule) {
      throw ConfigError("unknown fusion rule '" + ruleNode.asString() + "'",
                        {}, ruleNode.line(), "rules");
    }
    if (!fusionRuleLegalFor(*rule, config.arch)) {
      throw ConfigError("fusion rule '" + ruleNode.asString() +
                            "' is illegal for isa " + isa,
                        {}, ruleNode.line(), "rules");
    }
    if (config.enabled(*rule)) {
      throw ConfigError("duplicate fusion rule '" + ruleNode.asString() + "'",
                        {}, ruleNode.line(), "rules");
    }
    config.enable(*rule);
  }
  if (config.ruleMask == 0) {
    throw ConfigError("fusion rules: list must enable at least one rule", {},
                      rules.line(), "rules");
  }
  return config;
}

}  // namespace

std::string configDir() { return RISCMP_CONFIG_DIR; }

CoreModel CoreModel::fromYaml(const yaml::Node& root) {
  if (!root.isMapping()) {
    throw ConfigError("core model document must be a mapping", {},
                      root.line());
  }
  rejectUnknownKeys(
      root, "top-level",
      {"name", "description", "core", "ports", "latencies", "caches",
       "fusion"});

  CoreModel model;
  model.name = root.getString("name", "unnamed");
  model.description = root.getString("description", "");

  if (root.has("core")) {
    const yaml::Node& core = root.at("core");
    rejectUnknownKeys(core, "core",
                      {"fetch_width", "dispatch_width", "commit_width",
                       "rob_size", "clock_ghz", "mispredict_penalty",
                       "predictor", "gshare_bits"});
    model.fetchWidth = positiveInt(core, "fetch_width", 4);
    model.dispatchWidth = positiveInt(core, "dispatch_width", 4);
    model.commitWidth = positiveInt(core, "commit_width", 4);
    model.robSize = positiveInt(core, "rob_size", 180);
    model.clockGhz = core.getDouble("clock_ghz", 2.0);
    if (!(model.clockGhz > 0.0)) {
      throw ConfigError("must be a positive frequency, got " +
                            std::to_string(model.clockGhz),
                        {}, core.at("clock_ghz").line(), "clock_ghz");
    }
    const std::int64_t penalty = core.getInt("mispredict_penalty", 0);
    if (penalty < 0) {
      throw ConfigError("must be non-negative, got " + std::to_string(penalty),
                        {}, core.at("mispredict_penalty").line(),
                        "mispredict_penalty");
    }
    model.mispredictPenalty = static_cast<unsigned>(penalty);
    const std::string predictor = core.getString("predictor", "perfect");
    if (predictor == "static") {
      model.predictor = BranchPredictor::Static;
    } else if (predictor == "gshare") {
      model.predictor = BranchPredictor::Gshare;
    } else if (predictor != "perfect") {
      throw ConfigError(
          "unknown predictor '" + predictor +
              "' (expected perfect, static, or gshare)",
          {}, core.at("predictor").line(), "predictor");
    }
    model.gshareBits = positiveInt(core, "gshare_bits", 12);
    if (model.gshareBits > 30) {
      throw ConfigError("gshare_bits must be <= 30, got " +
                            std::to_string(model.gshareBits),
                        {}, core.at("gshare_bits").line(), "gshare_bits");
    }
  }

  if (root.has("ports")) {
    const yaml::Node& ports = root.at("ports");
    if (!ports.isSequence()) {
      throw ConfigError("'ports' must be a sequence of port mappings", {},
                        ports.line(), "ports");
    }
    for (const yaml::Node& portNode : ports.elements()) {
      rejectUnknownKeys(portNode, "port", {"name", "groups"});
      Port port;
      port.name = portNode.getString("name", "port");
      // `groups` is required: a port that accepts nothing is always a typo.
      for (const yaml::Node& groupNode : portNode.at("groups").elements()) {
        const auto group = instGroupFromName(groupNode.asString());
        if (!group) {
          throw ConfigError(
              "unknown instruction group '" + groupNode.asString() + "'", {},
              groupNode.line(), "groups");
        }
        port.groupMask |= 1u << static_cast<unsigned>(*group);
      }
      if (port.groupMask == 0) {
        throw ConfigError("port '" + port.name + "' accepts no groups", {},
                          portNode.line(), "groups");
      }
      model.ports.push_back(std::move(port));
    }
  }

  if (root.has("latencies")) {
    for (const auto& [key, value] : root.at("latencies").items()) {
      const auto group = instGroupFromName(key);
      if (!group) {
        throw ConfigError("unknown instruction group '" + key + "'", {},
                          value.line(), "latencies");
      }
      const std::uint64_t latency = value.asUint();
      if (latency < 1 || latency > 4096) {
        throw ConfigError("latency for " + key + " must be in [1, 4096], got " +
                              std::to_string(latency),
                          {}, value.line(), key);
      }
      model.latencies[static_cast<std::size_t>(*group)] =
          static_cast<std::uint32_t>(latency);
      // Port coverage (ISSUE 7): a group the config gives a latency is one
      // it expects to execute, so some port must accept it — otherwise the
      // OoO model's issue stage has no structural constraint for it (it
      // now throws ValidationFault at retire, but a config hole should
      // fail at load time, with provenance).
      if (!model.ports.empty()) {
        const bool covered =
            std::any_of(model.ports.begin(), model.ports.end(),
                        [&](const Port& port) { return port.accepts(*group); });
        if (!covered) {
          throw ConfigError("group " + key +
                                " has a configured latency but no port "
                                "accepts it; add it to a port's groups: list",
                            {}, value.line(), key);
        }
      }
    }
  }

  if (root.has("caches")) {
    model.caches = parseCaches(root.at("caches"));
  }
  if (root.has("fusion")) {
    model.fusion = parseFusion(root.at("fusion"));
  }
  return model;
}

ThroughputModel CoreModel::throughputModel() const {
  ThroughputModel model;
  model.name = name;
  model.issueWidth = dispatchWidth;
  model.ports.reserve(ports.size());
  for (const Port& port : ports) {
    model.ports.push_back({port.name, port.groupMask});
  }
  model.latencies = latencies;
  return model;
}

CoreModel CoreModel::fromFile(const std::string& path) {
  try {
    return fromYaml(yaml::parseFile(path));
  } catch (const ConfigError& e) {
    // Annotate with the config path so the report names the file even when
    // the error came from a document-level check.
    throw e.withFile(path);
  }
}

CoreModel CoreModel::named(const std::string& name) {
  return fromFile(configDir() + "/" + name + ".yaml");
}

}  // namespace riscmp::uarch
