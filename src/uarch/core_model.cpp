#include "uarch/core_model.hpp"

#include <stdexcept>

namespace riscmp::uarch {

std::string configDir() { return RISCMP_CONFIG_DIR; }

CoreModel CoreModel::fromYaml(const yaml::Node& root) {
  CoreModel model;
  model.name = root.getString("name", "unnamed");
  model.description = root.getString("description", "");

  if (root.has("core")) {
    const yaml::Node& core = root.at("core");
    model.fetchWidth = static_cast<unsigned>(core.getInt("fetch_width", 4));
    model.dispatchWidth =
        static_cast<unsigned>(core.getInt("dispatch_width", 4));
    model.commitWidth = static_cast<unsigned>(core.getInt("commit_width", 4));
    model.robSize = static_cast<unsigned>(core.getInt("rob_size", 180));
    model.clockGhz = core.getDouble("clock_ghz", 2.0);
    model.mispredictPenalty =
        static_cast<unsigned>(core.getInt("mispredict_penalty", 0));
    const std::string predictor = core.getString("predictor", "perfect");
    if (predictor == "static") {
      model.predictor = BranchPredictor::Static;
    } else if (predictor == "gshare") {
      model.predictor = BranchPredictor::Gshare;
    } else if (predictor != "perfect") {
      throw std::runtime_error("core model: unknown predictor '" + predictor +
                               "'");
    }
    model.gshareBits =
        static_cast<unsigned>(core.getInt("gshare_bits", 12));
  }

  if (root.has("ports")) {
    for (const yaml::Node& portNode : root.at("ports").elements()) {
      Port port;
      port.name = portNode.getString("name", "port");
      for (const yaml::Node& groupNode : portNode.at("groups").elements()) {
        const auto group = instGroupFromName(groupNode.asString());
        if (!group) {
          throw std::runtime_error("core model: unknown instruction group '" +
                                   groupNode.asString() + "'");
        }
        port.groupMask |= 1u << static_cast<unsigned>(*group);
      }
      model.ports.push_back(std::move(port));
    }
  }

  if (root.has("latencies")) {
    for (const auto& [key, value] : root.at("latencies").items()) {
      const auto group = instGroupFromName(key);
      if (!group) {
        throw std::runtime_error("core model: unknown instruction group '" +
                                 key + "'");
      }
      model.latencies[static_cast<std::size_t>(*group)] =
          static_cast<std::uint32_t>(value.asUint());
    }
  }
  return model;
}

CoreModel CoreModel::fromFile(const std::string& path) {
  return fromYaml(yaml::parseFile(path));
}

CoreModel CoreModel::named(const std::string& name) {
  return fromFile(configDir() + "/" + name + ".yaml");
}

}  // namespace riscmp::uarch
