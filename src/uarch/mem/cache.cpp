#include "uarch/mem/cache.hpp"

namespace riscmp::uarch::mem {

Cache::Cache(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways) {
  ways_storage_.resize(static_cast<std::size_t>(sets_) * ways_);
}

Cache::Lookup Cache::access(std::uint64_t line, bool write) {
  const std::size_t base = setBase(line);
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[base + w];
    if (!way.valid || way.line != line) continue;
    Lookup lookup;
    lookup.hit = true;
    lookup.firstUseOfPrefetch = way.prefetched;
    way.prefetched = false;  // only the first demand touch scores it
    way.lastUse = ++tick_;
    if (write) way.dirty = true;
    return lookup;
  }
  return {};
}

Cache::Eviction Cache::fill(std::uint64_t line, bool dirty, bool prefetched) {
  const std::size_t base = setBase(line);
  std::size_t victim = base;
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[base + w];
    if (!way.valid) {
      victim = base + w;
      break;
    }
    if (way.lastUse < ways_storage_[victim].lastUse) victim = base + w;
  }

  Way& way = ways_storage_[victim];
  Eviction eviction;
  if (way.valid) {
    eviction.valid = true;
    eviction.dirty = way.dirty;
    eviction.line = way.line;
  }
  way.line = line;
  way.valid = true;
  way.dirty = dirty;
  way.prefetched = prefetched;
  way.lastUse = ++tick_;
  return eviction;
}

bool Cache::contains(std::uint64_t line) const {
  const std::size_t base = setBase(line);
  for (std::size_t w = 0; w < ways_; ++w) {
    const Way& way = ways_storage_[base + w];
    if (way.valid && way.line == line) return true;
  }
  return false;
}

void Cache::reset() {
  for (Way& way : ways_storage_) way = Way{};
  tick_ = 0;
}

}  // namespace riscmp::uarch::mem
