#include "uarch/mem/cache_aware_cp.hpp"

#include <algorithm>

namespace riscmp::uarch::mem {
namespace {

/// 8-byte chunk range covered by an access — the same dependency
/// granularity as CriticalPathAnalyzer, so the two modes differ only in
/// load cost, never in chain shape.
inline std::pair<std::uint64_t, std::uint64_t> chunkRange(
    const MemAccess& access) {
  const std::uint64_t first = access.addr >> 3;
  const std::uint64_t last = (access.addr + access.size - 1) >> 3;
  return {first, last};
}

}  // namespace

CacheAwareCpAnalyzer::CacheAwareCpAnalyzer(const LatencyTable& latencies,
                                           const CacheConfig& config)
    : hierarchy_(config), latencies_(latencies) {}

void CacheAwareCpAnalyzer::onRetire(const RetiredInst& inst) {
  retireOne(inst);
}

void CacheAwareCpAnalyzer::onRetireBlock(
    std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) retireOne(inst);
}

void CacheAwareCpAnalyzer::retireOne(const RetiredInst& inst) {
  ++instructions_;

  std::uint64_t depth = 0;
  for (const Reg& reg : inst.srcs) {
    depth = std::max(depth, regDepth_[reg.dense()]);
  }
  for (const MemAccess& access : inst.loads) {
    const auto [first, last] = chunkRange(access);
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      if (const std::uint64_t* found = memDepth_.find(chunk)) {
        depth = std::max(depth, *found);
      }
    }
  }

  // Memory-aware cost: loads contribute their dynamic load-to-use latency;
  // stores stay at 1 (store forwarding) but still update cache state.
  std::uint64_t cost;
  if (!inst.loads.empty()) {
    std::uint32_t latency = 0;
    for (const MemAccess& access : inst.loads) {
      latency = std::max(
          latency, hierarchy_.load(access.addr, access.size).latency);
    }
    cost = latency;
  } else if (!inst.stores.empty()) {
    cost = 1;
  } else {
    cost = latencies_[static_cast<std::size_t>(inst.group)];
  }
  for (const MemAccess& access : inst.stores) {
    hierarchy_.store(access.addr, access.size);
  }
  depth += cost;

  for (const Reg& reg : inst.dsts) {
    regDepth_[reg.dense()] = depth;
  }
  for (const MemAccess& access : inst.stores) {
    const auto [first, last] = chunkRange(access);
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      memDepth_.assign(chunk, depth);
    }
  }
  maxDepth_ = std::max(maxDepth_, depth);
}

void CacheAwareCpAnalyzer::reset() {
  hierarchy_.reset();
  regDepth_.fill(0);
  memDepth_.clear();
  maxDepth_ = 0;
  instructions_ = 0;
}

}  // namespace riscmp::uarch::mem
