// One level of a set-associative cache (ISSUE 5 tentpole).
//
// The paper's timing models assume a flat memory system: scaled CP charges
// every load the fixed LOAD latency from the core-model YAML (§5.1, §6.1).
// This module supplies the structural half of the memory hierarchy that
// replaces that assumption — a set-associative, true-LRU array tracked at
// line granularity, with dirty bits for write-back accounting and a
// prefetched bit so the hierarchy can score prefetch accuracy.
//
// The cache stores no data, only tags: the simulator's architectural memory
// stays the single source of truth (src/core/memory.hpp), and this class
// answers the purely temporal question "would this access have hit?".
#pragma once

#include <cstdint>
#include <vector>

namespace riscmp::uarch::mem {

/// Tag array of `sets x ways` lines with per-set true-LRU replacement.
/// Addresses are pre-divided by the line size: callers pass line numbers,
/// so the class is independent of the configured line geometry.
class Cache {
 public:
  Cache(std::uint32_t sets, std::uint32_t ways);

  struct Lookup {
    bool hit = false;
    /// The hit line was installed by the prefetcher and this is its first
    /// demand touch (the hierarchy counts it as a useful prefetch).
    bool firstUseOfPrefetch = false;
  };

  /// Probe for `line`; on a hit, refresh LRU and set the dirty bit when
  /// `write`. A miss changes no state — fills are explicit via fill().
  Lookup access(std::uint64_t line, bool write);

  struct Eviction {
    bool valid = false;  ///< a line was displaced
    bool dirty = false;  ///< ... and needs writing back
    std::uint64_t line = 0;
  };

  /// Install `line` (must not currently be resident), evicting the set's
  /// LRU victim if the set is full. Returns the displaced line so the
  /// hierarchy can model the write-back traffic.
  Eviction fill(std::uint64_t line, bool dirty, bool prefetched);

  /// Tag probe with no LRU or state update (used to skip redundant
  /// prefetches).
  [[nodiscard]] bool contains(std::uint64_t line) const;

  [[nodiscard]] std::uint32_t sets() const { return sets_; }
  [[nodiscard]] std::uint32_t ways() const { return ways_; }

  /// Invalidate every line (stats live in the hierarchy, not here).
  void reset();

 private:
  struct Way {
    std::uint64_t line = 0;
    std::uint64_t lastUse = 0;  ///< global access stamp for true LRU
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
  };

  [[nodiscard]] std::size_t setBase(std::uint64_t line) const {
    return static_cast<std::size_t>(line & (sets_ - 1)) * ways_;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_storage_;
};

}  // namespace riscmp::uarch::mem
