// Memory-system analyzer (ISSUE 10 tentpole): TLBs, finite MSHRs with a
// peak-bandwidth occupancy model, and a shared-L2 multi-core contention
// model, driven from the retired-instruction stream in one pass.
//
// Three layers on top of the ISSUE 5 hierarchy:
//
//  1. A two-level data TLB (uarch/mem/tlb.hpp) translating every demand
//     access, with per-kernel walk attribution and order-independent
//     page-set digests extending the E11 cross-ISA identity argument from
//     line sets to page sets.
//  2. Occupancy bounds over the single-core demand+prefetch traffic: with
//     M MSHRs at most M misses overlap, so cycles >= missCycles / M; with
//     a peak memory bandwidth of B bytes/cycle, cycles >= bytesMoved / B
//     (fills *and* prefetch fills *and* write-backs move bytes). The
//     engine reports both so a bench can name the binding resource in
//     max(CP, port, issue, MSHR, bandwidth).
//  3. A shared-L2 scaling model: N simulated cores with private L1s and a
//     shared L2, fed by round-robin interleaving N copies of the retired
//     stream at disjoint address offsets (the deterministic equivalent of
//     N per-core Machines running the same kernel — see DESIGN.md §16).
//     Per-core hit/miss/latency attribution opens 1/2/4-core scaling
//     curves with an exact miss-conservation invariant.
//
// Like every analyzer in this repo the model is a pure timing/tag layer:
// it never changes architectural state, and all counters are deterministic
// functions of the retired stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "isa/trace.hpp"
#include "support/flat_hash.hpp"
#include "uarch/mem/hierarchy.hpp"
#include "uarch/mem/tlb.hpp"

namespace riscmp::uarch::mem {

/// Per-kernel translation traffic and page-set identity (the page-set
/// analogue of CacheModelAnalyzer::KernelStats).
struct MemKernelStats {
  std::string name;
  std::uint64_t instructions = 0;
  std::uint64_t tlbAccesses = 0;
  std::uint64_t tlbWalks = 0;
  std::uint64_t footprintPages = 0;  ///< distinct pages touched
  std::uint64_t pageSetDigest = 0;   ///< order-independent set digest

  bool operator==(const MemKernelStats&) const = default;
};

/// One simulated core's share of a shared-L2 scaling point.
struct CoreShare {
  std::uint64_t accesses = 0;  ///< demand line accesses
  std::uint64_t l1Misses = 0;
  std::uint64_t l2Hits = 0;
  std::uint64_t l2Misses = 0;
  std::uint64_t latencyCycles = 0;  ///< summed per-access latency

  bool operator==(const CoreShare&) const = default;
};

/// Shared-L2 contention outcome for one core count. The shared counters
/// are accumulated inside the shared-L2 path independently of the
/// per-core shares, so sum(perCore.l1Misses) == sharedL2Accesses and
/// sum(perCore.l2Misses) == sharedL2Misses are non-vacuous conservation
/// checks (E14 asserts both).
struct ScalingPoint {
  std::uint32_t cores = 1;
  std::vector<CoreShare> perCore;
  std::uint64_t sharedL2Accesses = 0;
  std::uint64_t sharedL2Hits = 0;
  std::uint64_t sharedL2Misses = 0;
  std::uint64_t sharedWritebacksToMem = 0;
  std::uint64_t bytesFromMem = 0;  ///< fills + write-backs, in bytes
  std::uint64_t bandwidthBoundCycles = 0;
  std::uint64_t mshrBoundCycles = 0;

  bool operator==(const ScalingPoint&) const = default;
};

/// Whole-program memory-system summary: TLB totals, page-set identity,
/// bytes moved, and the two single-core occupancy bounds.
struct MemSummary {
  TlbStats tlb;
  std::uint64_t footprintPages = 0;
  std::uint64_t pageSetDigest = 0;
  std::uint64_t demandFillBytes = 0;    ///< demand L2 misses x line size
  std::uint64_t prefetchFillBytes = 0;  ///< prefetch fills x line size
  std::uint64_t writebackBytes = 0;     ///< dirty spills to memory x line size
  std::uint64_t missCycles = 0;  ///< serialized L1-miss latency, no overlap
  std::uint64_t mshrBoundCycles = 0;       ///< ceil(missCycles / mshrs)
  std::uint64_t bandwidthBoundCycles = 0;  ///< ceil(totalBytes / B)

  bool operator==(const MemSummary&) const = default;

  [[nodiscard]] std::uint64_t totalBytes() const {
    return demandFillBytes + prefetchFillBytes + writebackBytes;
  }
};

class MemSystemAnalyzer final : public TraceObserver {
 public:
  /// `coreCounts` selects the shared-L2 scaling points (e.g. {1, 2, 4});
  /// duplicates and zeros are ignored. Kernel regions come from the
  /// program's symbol table exactly as in CacheModelAnalyzer. Throws
  /// ConfigError for invalid geometry and ValidationFault for overlapping
  /// kernel regions. A missing `config.tlb` falls back to TlbConfig{}
  /// defaults so page-set digests are always defined.
  MemSystemAnalyzer(const CacheConfig& config, const Program& program,
                    std::span<const unsigned> coreCounts);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  /// Finalized summary with the occupancy bounds computed from the
  /// current counters (cheap; callable at any point).
  [[nodiscard]] MemSummary summary() const;
  [[nodiscard]] const std::vector<MemKernelStats>& kernels() const {
    return kernels_;
  }
  /// Scaling points in the ctor's coreCounts order, bounds filled in.
  [[nodiscard]] std::vector<ScalingPoint> scaling() const;
  [[nodiscard]] const HierarchyStats& hierarchyTotals() const {
    return hierarchy_.stats();
  }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }

  /// Clear TLBs, caches, counters, and page sets; kernel regions and the
  /// configured core counts are retained.
  void reset();

 private:
  /// Private L1s per core over one shared L2, demand-only (prefetch
  /// behaviour under contention is out of scope; see DESIGN.md §16).
  struct SharedHierarchy {
    std::vector<Cache> l1;  ///< one per core
    Cache l2;
    ScalingPoint point;

    SharedHierarchy(const CacheConfig& config, std::uint32_t cores);
    void accessLine(const CacheConfig& config, std::uint32_t core,
                    std::uint64_t line, bool write);
    void fillL1(std::uint32_t core, std::uint64_t line, bool dirty);
    void reset();
  };

  struct Region {
    std::uint64_t begin;
    std::uint64_t end;
    std::size_t kernelIndex;
  };

  void retireOne(const RetiredInst& inst);
  [[nodiscard]] std::int32_t kernelOf(const RetiredInst& inst);
  void accessMemory(std::uint64_t addr, std::uint32_t size, bool write,
                    std::int32_t kernel);

  CacheConfig config_;
  MemoryHierarchy hierarchy_;  ///< private single-core replica for bounds
  Tlb tlb_;
  std::vector<SharedHierarchy> shared_;
  std::uint64_t instructions_ = 0;
  std::uint64_t footprintPages_ = 0;
  std::uint64_t pageSetDigest_ = 0;

  std::vector<std::int32_t> wordKernel_;
  std::vector<Region> regions_;
  std::size_t lastRegion_ = SIZE_MAX;

  std::vector<MemKernelStats> kernels_;
  /// Page membership sets: one per kernel, plus the whole program last.
  std::vector<FlatHashMap64<std::uint8_t>> pageSets_;
};

}  // namespace riscmp::uarch::mem
