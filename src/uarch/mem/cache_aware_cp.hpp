// Memory-aware scaled critical path (ISSUE 5 tentpole).
//
// The paper's scaled CP (§5.1) charges every non-memory instruction its
// core-model latency and leaves loads and stores at one cycle under the
// store-forwarding assumption — a flat memory system. This analyzer is the
// new memory-aware mode layered beside it (the flat mode stays the
// default, and its Table 2 numbers are bit-for-bit unaffected): the chain
// arithmetic is identical, except that each load contributes its *dynamic*
// latency — L1 hit, L2 hit, or memory — from a private MemoryHierarchy
// driven by the same retired-instruction stream. Stores keep cost 1
// (forwarded from the store buffer) but still update cache state, since a
// written line is a later hit.
//
// The analyzer owns its hierarchy instead of sharing the MPKI observer's:
// observers are independent by contract (isa/trace.hpp), and two
// hierarchies fed the same trace behave identically, so no cross-observer
// ordering is needed.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "analysis/critical_path.hpp"  // LatencyTable
#include "isa/trace.hpp"
#include "support/flat_hash.hpp"
#include "uarch/mem/hierarchy.hpp"

namespace riscmp::uarch::mem {

class CacheAwareCpAnalyzer final : public TraceObserver {
 public:
  /// Throws ConfigError when the cache geometry is invalid.
  CacheAwareCpAnalyzer(const LatencyTable& latencies,
                       const CacheConfig& config);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  [[nodiscard]] std::uint64_t criticalPath() const { return maxDepth_; }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] double ilp() const {
    return maxDepth_ == 0 ? 0.0
                          : static_cast<double>(instructions_) /
                                static_cast<double>(maxDepth_);
  }
  [[nodiscard]] double runtimeSeconds(double clockHz = 2e9) const {
    return static_cast<double>(maxDepth_) / clockHz;
  }
  [[nodiscard]] const HierarchyStats& cacheStats() const {
    return hierarchy_.stats();
  }

  /// Clear chain state and cache contents for a fresh trace; the latency
  /// table and geometry are retained.
  void reset();

 private:
  void retireOne(const RetiredInst& inst);

  MemoryHierarchy hierarchy_;
  std::array<std::uint64_t, Reg::kDenseCount> regDepth_{};
  FlatHashMap64<std::uint64_t> memDepth_;
  LatencyTable latencies_;
  std::uint64_t maxDepth_ = 0;
  std::uint64_t instructions_ = 0;
};

}  // namespace riscmp::uarch::mem
