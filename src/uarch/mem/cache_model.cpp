#include "uarch/mem/cache_model.hpp"

#include <algorithm>

namespace riscmp::uarch::mem {
namespace {

/// splitmix64 finaliser: spreads sequential line numbers before the
/// commutative digest sum so arithmetic progressions don't cancel.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

CacheModelAnalyzer::CacheModelAnalyzer(const CacheConfig& config,
                                       const Program& program)
    : hierarchy_(config) {
  // Validates kernel-region non-overlap (ValidationFault on violation).
  const std::vector<std::int32_t> symbolOfWord = program.kernelWordIndex();

  std::vector<std::size_t> symbolToKernel(program.kernels.size());
  for (std::size_t s = 0; s < program.kernels.size(); ++s) {
    const Symbol& symbol = program.kernels[s];
    std::size_t kernelIndex = kernels_.size();
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
      if (kernels_[i].name == symbol.name) {
        kernelIndex = i;
        break;
      }
    }
    if (kernelIndex == kernels_.size()) {
      KernelStats stats;
      stats.name = symbol.name;
      kernels_.push_back(std::move(stats));
    }
    symbolToKernel[s] = kernelIndex;
    regions_.push_back({symbol.addr, symbol.addr + symbol.size, kernelIndex});
  }
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.begin < b.begin; });

  wordKernel_.resize(symbolOfWord.size());
  for (std::size_t w = 0; w < symbolOfWord.size(); ++w) {
    wordKernel_[w] =
        symbolOfWord[w] < 0
            ? -1
            : static_cast<std::int32_t>(
                  symbolToKernel[static_cast<std::size_t>(symbolOfWord[w])]);
  }

  lineSets_.resize(kernels_.size() + 1);  // last slot = whole program
}

void CacheModelAnalyzer::onRetire(const RetiredInst& inst) { retireOne(inst); }

void CacheModelAnalyzer::onRetireBlock(std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) retireOne(inst);
}

std::int32_t CacheModelAnalyzer::kernelOf(const RetiredInst& inst) {
  if (inst.staticIndex < wordKernel_.size()) {
    return wordKernel_[inst.staticIndex];
  }
  if (lastRegion_ != SIZE_MAX) {
    const Region& region = regions_[lastRegion_];
    if (inst.pc >= region.begin && inst.pc < region.end) {
      return static_cast<std::int32_t>(region.kernelIndex);
    }
  }
  const auto it = std::upper_bound(
      regions_.begin(), regions_.end(), inst.pc,
      [](std::uint64_t pc, const Region& region) { return pc < region.begin; });
  if (it != regions_.begin()) {
    const Region& region = *(it - 1);
    if (inst.pc < region.end) {
      lastRegion_ = static_cast<std::size_t>(&region - regions_.data());
      return static_cast<std::int32_t>(region.kernelIndex);
    }
  }
  return -1;
}

void CacheModelAnalyzer::recordLines(std::uint64_t addr, std::uint32_t size,
                                     std::int32_t kernel) {
  const std::uint64_t first = hierarchy_.lineOf(addr);
  const std::uint64_t last =
      hierarchy_.lineOf(addr + std::max(size, 1u) - 1);
  for (std::uint64_t line = first; line <= last; ++line) {
    FlatHashMap64<std::uint8_t>& program = lineSets_.back();
    if (program.find(line) == nullptr) {
      program.assign(line, 1);
      ++footprintLines_;
      lineSetDigest_ += mix64(line);
    }
    if (kernel < 0) continue;
    FlatHashMap64<std::uint8_t>& set =
        lineSets_[static_cast<std::size_t>(kernel)];
    if (set.find(line) == nullptr) {
      set.assign(line, 1);
      KernelStats& stats = kernels_[static_cast<std::size_t>(kernel)];
      ++stats.footprintLines;
      stats.lineSetDigest += mix64(line);
    }
  }
}

void CacheModelAnalyzer::retireOne(const RetiredInst& inst) {
  ++instructions_;
  const std::int32_t kernel = kernelOf(inst);
  KernelStats* stats =
      kernel < 0 ? nullptr : &kernels_[static_cast<std::size_t>(kernel)];
  if (stats != nullptr) ++stats->instructions;

  for (const MemAccess& access : inst.loads) {
    const AccessOutcome outcome = hierarchy_.load(access.addr, access.size);
    recordLines(access.addr, access.size, kernel);
    if (stats == nullptr) continue;
    ++stats->loads;
    stats->l1Misses += outcome.l1LineMisses;
    stats->l2Misses += outcome.l2LineMisses;
  }
  for (const MemAccess& access : inst.stores) {
    const AccessOutcome outcome = hierarchy_.store(access.addr, access.size);
    recordLines(access.addr, access.size, kernel);
    if (stats == nullptr) continue;
    ++stats->stores;
    stats->l1Misses += outcome.l1LineMisses;
    stats->l2Misses += outcome.l2LineMisses;
  }
}

void CacheModelAnalyzer::reset() {
  hierarchy_.reset();
  instructions_ = 0;
  footprintLines_ = 0;
  lineSetDigest_ = 0;
  lastRegion_ = SIZE_MAX;
  for (KernelStats& stats : kernels_) {
    const std::string name = stats.name;
    stats = KernelStats{};
    stats.name = name;
  }
  for (FlatHashMap64<std::uint8_t>& set : lineSets_) set.clear();
}

}  // namespace riscmp::uarch::mem
