// Hardware prefetcher models for the L1D (ISSUE 5 tentpole).
//
// Both models are deliberately address-stream-only: they key on data
// addresses, never on the program counter. The E11 cross-ISA invariant —
// RV64 and A64 compilations of one kernel must produce identical cache
// behaviour — holds because the data-address stream is ISA-invariant while
// pc values are not, so a pc-indexed stride table would break the
// invariant by design.
#pragma once

#include <cstdint>

#include "support/small_vector.hpp"

namespace riscmp::uarch::mem {

enum class PrefetchKind : std::uint8_t {
  None,      ///< no prefetcher (the paper-faithful default)
  NextLine,  ///< on a demand miss of line L, fetch L+1
  Stride,    ///< per-4KiB-page stride detector, confirmed before issuing
};

/// The YAML spelling of each kind ("none" / "next_line" / "stride").
const char* prefetchKindName(PrefetchKind kind);

/// Candidate lines one demand access asks the hierarchy to prefetch.
using PrefetchTargets = SmallVector<std::uint64_t, 2>;

/// Stateful prefetch policy. observe() is called once per demand line
/// access with the line number and whether it missed L1; the returned
/// targets are lines the hierarchy should try to install.
class Prefetcher {
 public:
  explicit Prefetcher(PrefetchKind kind, std::uint32_t lineBytes);

  PrefetchTargets observe(std::uint64_t line, bool missed);

  [[nodiscard]] PrefetchKind kind() const { return kind_; }

  void reset();

 private:
  /// One tracked 4-KiB page: last line touched, last observed line delta,
  /// and whether that delta repeated (stride confirmed).
  struct Stream {
    std::uint64_t page = 0;
    std::uint64_t lastLine = 0;
    std::int64_t stride = 0;
    bool confirmed = false;
    bool valid = false;
  };

  static constexpr std::size_t kStreams = 16;

  PrefetchKind kind_;
  std::uint32_t linesPerPage_;
  Stream streams_[kStreams];
  std::size_t nextVictim_ = 0;
};

}  // namespace riscmp::uarch::mem
