#include "uarch/mem/tlb.hpp"

namespace riscmp::uarch::mem {
namespace {

std::uint32_t shiftFor(std::uint32_t pageBytes) {
  std::uint32_t shift = 0;
  while ((std::uint64_t{1} << shift) < pageBytes) ++shift;
  return shift;
}

}  // namespace

Tlb::Tlb(const TlbConfig& config)
    : config_(config),
      pageShift_(shiftFor(config.pageBytes)),
      l1_(config.l1Sets(), config.l1Ways),
      l2_(config.l2Sets(), config.l2Ways) {}

Tlb::Outcome Tlb::access(std::uint64_t page) {
  ++stats_.accesses;
  if (l1_.access(page, /*write=*/false).hit) {
    ++stats_.l1Hits;
    return {TlbLevel::L1, 0};
  }
  ++stats_.l1Misses;

  if (l2_.access(page, /*write=*/false).hit) {
    ++stats_.l2Hits;
    l1_.fill(page, /*dirty=*/false, /*prefetched=*/false);
    return {TlbLevel::L2, config_.l2Latency};
  }

  // Page walk: install the translation in both levels. Evictions carry no
  // write-back cost (TLB entries are clean by construction).
  ++stats_.walks;
  stats_.walkCycles += config_.walkLatency;
  l2_.fill(page, /*dirty=*/false, /*prefetched=*/false);
  l1_.fill(page, /*dirty=*/false, /*prefetched=*/false);
  return {TlbLevel::Walk, config_.walkLatency};
}

void Tlb::reset() {
  l1_.reset();
  l2_.reset();
  stats_ = TlbStats{};
}

}  // namespace riscmp::uarch::mem
