#include "uarch/mem/prefetcher.hpp"

namespace riscmp::uarch::mem {

const char* prefetchKindName(PrefetchKind kind) {
  switch (kind) {
    case PrefetchKind::None:
      return "none";
    case PrefetchKind::NextLine:
      return "next_line";
    case PrefetchKind::Stride:
      return "stride";
  }
  return "none";
}

Prefetcher::Prefetcher(PrefetchKind kind, std::uint32_t lineBytes)
    : kind_(kind), linesPerPage_(4096u / lineBytes) {}

PrefetchTargets Prefetcher::observe(std::uint64_t line, bool missed) {
  PrefetchTargets targets;
  switch (kind_) {
    case PrefetchKind::None:
      break;

    case PrefetchKind::NextLine:
      if (missed) targets.push_back(line + 1);
      break;

    case PrefetchKind::Stride: {
      const std::uint64_t page = line / linesPerPage_;
      Stream* stream = nullptr;
      for (Stream& candidate : streams_) {
        if (candidate.valid && candidate.page == page) {
          stream = &candidate;
          break;
        }
      }
      if (stream == nullptr) {
        // Round-robin victim: regular kernels touch few pages at a time,
        // and deterministic replacement keeps runs byte-identical.
        stream = &streams_[nextVictim_];
        nextVictim_ = (nextVictim_ + 1) % kStreams;
        *stream = Stream{page, line, 0, false, true};
        break;
      }
      const std::int64_t delta =
          static_cast<std::int64_t>(line) -
          static_cast<std::int64_t>(stream->lastLine);
      if (delta != 0) {
        stream->confirmed = (delta == stream->stride);
        stream->stride = delta;
        stream->lastLine = line;
        if (stream->confirmed) {
          targets.push_back(static_cast<std::uint64_t>(
              static_cast<std::int64_t>(line) + delta));
        }
      }
      break;
    }
  }
  return targets;
}

void Prefetcher::reset() {
  for (Stream& stream : streams_) stream = Stream{};
  nextVictim_ = 0;
}

}  // namespace riscmp::uarch::mem
