#include "uarch/mem/mem_system.hpp"

#include <algorithm>

namespace riscmp::uarch::mem {
namespace {

/// splitmix64 finaliser, as in cache_model.cpp: spreads sequential page
/// numbers before the commutative digest sum.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t ceilDiv(std::uint64_t n, std::uint64_t d) {
  return d == 0 ? 0 : (n + d - 1) / d;
}

/// Line-number offset separating simulated cores' address spaces (1 GiB
/// at 64 B lines): each core runs the same kernel over its own arena, so
/// the shared L2 sees capacity/conflict contention between disjoint
/// working sets rather than artificial sharing.
constexpr std::uint64_t kCoreOffsetLines = std::uint64_t{1} << 24;

}  // namespace

MemSystemAnalyzer::SharedHierarchy::SharedHierarchy(const CacheConfig& config,
                                                    std::uint32_t cores)
    : l2(config.l2Sets(), config.l2.ways) {
  l1.reserve(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    l1.emplace_back(config.l1Sets(), config.l1d.ways);
  }
  point.cores = cores;
  point.perCore.resize(cores);
}

void MemSystemAnalyzer::SharedHierarchy::accessLine(const CacheConfig& config,
                                                    std::uint32_t core,
                                                    std::uint64_t line,
                                                    bool write) {
  CoreShare& share = point.perCore[core];
  ++share.accesses;
  if (l1[core].access(line, write).hit) {
    share.latencyCycles += config.l1d.latency;
    return;
  }
  ++share.l1Misses;

  // Shared-L2 path: counted independently of the per-core shares so the
  // E14 conservation checks compare two distinct tallies.
  ++point.sharedL2Accesses;
  if (l2.access(line, /*write=*/false).hit) {
    ++point.sharedL2Hits;
    ++share.l2Hits;
    share.latencyCycles += config.l2.latency;
    fillL1(core, line, write);
    return;
  }
  ++point.sharedL2Misses;
  ++share.l2Misses;
  share.latencyCycles += config.memoryLatency;
  const Cache::Eviction victim =
      l2.fill(line, /*dirty=*/false, /*prefetched=*/false);
  if (victim.valid && victim.dirty) ++point.sharedWritebacksToMem;
  fillL1(core, line, write);
}

void MemSystemAnalyzer::SharedHierarchy::fillL1(std::uint32_t core,
                                                std::uint64_t line,
                                                bool dirty) {
  const Cache::Eviction victim =
      l1[core].fill(line, dirty, /*prefetched=*/false);
  if (!victim.valid || !victim.dirty) return;
  // Non-inclusive write-back, as in MemoryHierarchy::fillL1.
  if (l2.contains(victim.line)) {
    l2.access(victim.line, /*write=*/true);
  } else {
    const Cache::Eviction spilled =
        l2.fill(victim.line, /*dirty=*/true, /*prefetched=*/false);
    if (spilled.valid && spilled.dirty) ++point.sharedWritebacksToMem;
  }
}

void MemSystemAnalyzer::SharedHierarchy::reset() {
  for (Cache& cache : l1) cache.reset();
  l2.reset();
  const std::uint32_t cores = point.cores;
  point = ScalingPoint{};
  point.cores = cores;
  point.perCore.resize(cores);
}

MemSystemAnalyzer::MemSystemAnalyzer(const CacheConfig& config,
                                     const Program& program,
                                     std::span<const unsigned> coreCounts)
    : config_((validateCacheConfig(config), config)),
      hierarchy_(config),
      tlb_(config.tlb ? *config.tlb : TlbConfig{}) {
  for (const unsigned cores : coreCounts) {
    if (cores == 0) continue;
    const bool seen =
        std::any_of(shared_.begin(), shared_.end(),
                    [cores](const SharedHierarchy& s) {
                      return s.point.cores == cores;
                    });
    if (!seen) shared_.emplace_back(config_, cores);
  }

  // Static kernel attribution, exactly as in CacheModelAnalyzer.
  const std::vector<std::int32_t> symbolOfWord = program.kernelWordIndex();

  std::vector<std::size_t> symbolToKernel(program.kernels.size());
  for (std::size_t s = 0; s < program.kernels.size(); ++s) {
    const Symbol& symbol = program.kernels[s];
    std::size_t kernelIndex = kernels_.size();
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
      if (kernels_[i].name == symbol.name) {
        kernelIndex = i;
        break;
      }
    }
    if (kernelIndex == kernels_.size()) {
      MemKernelStats stats;
      stats.name = symbol.name;
      kernels_.push_back(std::move(stats));
    }
    symbolToKernel[s] = kernelIndex;
    regions_.push_back({symbol.addr, symbol.addr + symbol.size, kernelIndex});
  }
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.begin < b.begin; });

  wordKernel_.resize(symbolOfWord.size());
  for (std::size_t w = 0; w < symbolOfWord.size(); ++w) {
    wordKernel_[w] =
        symbolOfWord[w] < 0
            ? -1
            : static_cast<std::int32_t>(
                  symbolToKernel[static_cast<std::size_t>(symbolOfWord[w])]);
  }

  pageSets_.resize(kernels_.size() + 1);  // last slot = whole program
}

void MemSystemAnalyzer::onRetire(const RetiredInst& inst) { retireOne(inst); }

void MemSystemAnalyzer::onRetireBlock(std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) retireOne(inst);
}

std::int32_t MemSystemAnalyzer::kernelOf(const RetiredInst& inst) {
  if (inst.staticIndex < wordKernel_.size()) {
    return wordKernel_[inst.staticIndex];
  }
  if (lastRegion_ != SIZE_MAX) {
    const Region& region = regions_[lastRegion_];
    if (inst.pc >= region.begin && inst.pc < region.end) {
      return static_cast<std::int32_t>(region.kernelIndex);
    }
  }
  const auto it = std::upper_bound(
      regions_.begin(), regions_.end(), inst.pc,
      [](std::uint64_t pc, const Region& region) { return pc < region.begin; });
  if (it != regions_.begin()) {
    const Region& region = *(it - 1);
    if (inst.pc < region.end) {
      lastRegion_ = static_cast<std::size_t>(&region - regions_.data());
      return static_cast<std::int32_t>(region.kernelIndex);
    }
  }
  return -1;
}

void MemSystemAnalyzer::accessMemory(std::uint64_t addr, std::uint32_t size,
                                     bool write, std::int32_t kernel) {
  MemKernelStats* stats =
      kernel < 0 ? nullptr : &kernels_[static_cast<std::size_t>(kernel)];

  // Single-core hierarchy replica feeding the MSHR/bandwidth bounds.
  if (write) {
    hierarchy_.store(addr, size);
  } else {
    hierarchy_.load(addr, size);
  }

  // Translation: an access straddling a page boundary looks up every page
  // it covers (the straddle test pins this at exactly two).
  const std::uint64_t firstPage = tlb_.pageOf(addr);
  const std::uint64_t lastPage = tlb_.pageOf(addr + std::max(size, 1u) - 1);
  for (std::uint64_t page = firstPage; page <= lastPage; ++page) {
    const Tlb::Outcome outcome = tlb_.access(page);
    if (stats != nullptr) {
      ++stats->tlbAccesses;
      if (outcome.level == TlbLevel::Walk) ++stats->tlbWalks;
    }

    FlatHashMap64<std::uint8_t>& program = pageSets_.back();
    if (program.find(page) == nullptr) {
      program.assign(page, 1);
      ++footprintPages_;
      pageSetDigest_ += mix64(page);
    }
    if (stats != nullptr) {
      FlatHashMap64<std::uint8_t>& set =
          pageSets_[static_cast<std::size_t>(kernel)];
      if (set.find(page) == nullptr) {
        set.assign(page, 1);
        ++stats->footprintPages;
        stats->pageSetDigest += mix64(page);
      }
    }
  }

  // Shared-L2 scaling: round-robin interleave N copies of this access at
  // disjoint per-core offsets (core order fixed -> deterministic).
  const std::uint64_t firstLine = hierarchy_.lineOf(addr);
  const std::uint64_t lastLine =
      hierarchy_.lineOf(addr + std::max(size, 1u) - 1);
  for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
    for (SharedHierarchy& sharedHierarchy : shared_) {
      for (std::uint32_t core = 0; core < sharedHierarchy.point.cores;
           ++core) {
        sharedHierarchy.accessLine(config_, core,
                                   line + core * kCoreOffsetLines, write);
      }
    }
  }
}

void MemSystemAnalyzer::retireOne(const RetiredInst& inst) {
  ++instructions_;
  const std::int32_t kernel = kernelOf(inst);
  if (kernel >= 0) ++kernels_[static_cast<std::size_t>(kernel)].instructions;

  for (const MemAccess& access : inst.loads) {
    accessMemory(access.addr, access.size, /*write=*/false, kernel);
  }
  for (const MemAccess& access : inst.stores) {
    accessMemory(access.addr, access.size, /*write=*/true, kernel);
  }
}

MemSummary MemSystemAnalyzer::summary() const {
  const HierarchyStats& h = hierarchy_.stats();
  MemSummary summary;
  summary.tlb = tlb_.stats();
  summary.footprintPages = footprintPages_;
  summary.pageSetDigest = pageSetDigest_;
  summary.demandFillBytes = h.l2Misses * config_.lineBytes;
  summary.prefetchFillBytes = h.prefetchFillsFromMem * config_.lineBytes;
  summary.writebackBytes = h.writebacksToMem * config_.lineBytes;
  summary.missCycles = h.l2Hits * config_.l2.latency +
                       h.l2Misses * config_.memoryLatency;
  summary.mshrBoundCycles = ceilDiv(summary.missCycles, config_.mshrs);
  summary.bandwidthBoundCycles =
      ceilDiv(summary.totalBytes(), config_.memBytesPerCycle);
  return summary;
}

std::vector<ScalingPoint> MemSystemAnalyzer::scaling() const {
  std::vector<ScalingPoint> points;
  points.reserve(shared_.size());
  for (const SharedHierarchy& sharedHierarchy : shared_) {
    ScalingPoint point = sharedHierarchy.point;
    point.bytesFromMem =
        (point.sharedL2Misses + point.sharedWritebacksToMem) *
        config_.lineBytes;
    point.bandwidthBoundCycles =
        ceilDiv(point.bytesFromMem, config_.memBytesPerCycle);
    std::uint64_t missCycles = 0;
    for (const CoreShare& share : point.perCore) {
      missCycles += share.l2Hits * config_.l2.latency +
                    share.l2Misses * config_.memoryLatency;
    }
    // Each core brings its own MSHRs, so N cores overlap N x mshrs misses.
    point.mshrBoundCycles =
        ceilDiv(missCycles, std::uint64_t{config_.mshrs} * point.cores);
    points.push_back(std::move(point));
  }
  return points;
}

void MemSystemAnalyzer::reset() {
  hierarchy_.reset();
  tlb_.reset();
  for (SharedHierarchy& sharedHierarchy : shared_) sharedHierarchy.reset();
  instructions_ = 0;
  footprintPages_ = 0;
  pageSetDigest_ = 0;
  lastRegion_ = SIZE_MAX;
  for (MemKernelStats& stats : kernels_) {
    const std::string name = stats.name;
    stats = MemKernelStats{};
    stats.name = name;
  }
  for (FlatHashMap64<std::uint8_t>& set : pageSets_) set.clear();
}

}  // namespace riscmp::uarch::mem
