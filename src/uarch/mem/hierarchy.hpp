// Config-driven L1D + unified L2 memory hierarchy (ISSUE 5 tentpole).
//
// The paper's scaled critical-path and OoO models use one flat LOAD latency
// from the core-model YAML (§5.1) and explicitly leave real memory
// behaviour out of scope (§6.1). This hierarchy is the next analysis layer:
// a set-associative, write-back/write-allocate L1D backed by a unified L2,
// with an optional address-stream prefetcher, driven by the addresses the
// retire pipeline already carries in RetiredInst::loads/stores.
//
// Geometry, latencies, and the prefetcher come from the `caches:` section
// of the core-model YAML (parsed and validated in core_model.cpp). The
// class itself is a pure timing/tag model: every access returns the level
// it hit and the resulting load-to-use latency, and accumulates the global
// hit/miss/write-back/prefetch counters the E11 report aggregates.
#pragma once

#include <cstdint>
#include <optional>

#include "uarch/mem/cache.hpp"
#include "uarch/mem/prefetcher.hpp"

namespace riscmp::uarch::mem {

/// Geometry and hit latency of one cache level. Sizes are bytes so tests
/// can build tiny (sub-KiB) caches; the YAML loader converts `size_kib`.
struct LevelConfig {
  std::uint64_t sizeBytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t latency = 0;  ///< load-to-use cycles on a hit at this level

  bool operator==(const LevelConfig&) const = default;
};

/// The `tlb:` subsection of a `caches:` section: a two-level data TLB
/// keyed on virtual page numbers. Entry counts are total entries; the set
/// count (entries / ways) must be a power of two, so a fully-associative
/// level is written entries == ways.
struct TlbConfig {
  std::uint32_t pageBytes = 4096;
  std::uint32_t l1Entries = 48;
  std::uint32_t l1Ways = 48;  ///< == l1Entries -> fully associative
  std::uint32_t l2Entries = 1024;
  std::uint32_t l2Ways = 8;
  std::uint32_t l2Latency = 5;    ///< added cycles on an L1-TLB miss
  std::uint32_t walkLatency = 30; ///< added cycles on a full page walk

  bool operator==(const TlbConfig&) const = default;

  [[nodiscard]] std::uint32_t l1Sets() const { return l1Entries / l1Ways; }
  [[nodiscard]] std::uint32_t l2Sets() const { return l2Entries / l2Ways; }
};

/// The `caches:` section of a core-model YAML. Defaults mirror the
/// TX2-like geometry the configs ship (32 KiB/8-way L1D, 256 KiB/8-way
/// unified L2, 64 B lines).
struct CacheConfig {
  std::uint32_t lineBytes = 64;
  LevelConfig l1d{32 * 1024, 8, 4};
  LevelConfig l2{256 * 1024, 8, 12};
  std::uint32_t memoryLatency = 80;
  PrefetchKind prefetch = PrefetchKind::None;
  /// Miss-level parallelism and memory bandwidth for the occupancy bounds
  /// (ISSUE 10): how many outstanding misses overlap, and how many bytes
  /// per cycle the memory interface sustains at peak.
  std::uint32_t mshrs = 8;
  std::uint32_t memBytesPerCycle = 16;
  std::optional<TlbConfig> tlb;

  bool operator==(const CacheConfig&) const = default;

  [[nodiscard]] std::uint32_t l1Sets() const {
    return static_cast<std::uint32_t>(l1d.sizeBytes / (std::uint64_t{lineBytes} * l1d.ways));
  }
  [[nodiscard]] std::uint32_t l2Sets() const {
    return static_cast<std::uint32_t>(l2.sizeBytes / (std::uint64_t{lineBytes} * l2.ways));
  }
};

/// Validate geometry the way core_model.cpp does for YAML documents, but
/// for programmatically-built configs: throws riscmp::ConfigError (no
/// file/line provenance) on zero ways, non-power-of-two line size or set
/// counts, sizes not divisible into whole sets, or an L2 smaller than L1.
void validateCacheConfig(const CacheConfig& config);

/// Where a demand access was satisfied.
enum class HitLevel : std::uint8_t { L1, L2, Memory };

/// Outcome of one demand load/store: the worst level any touched line had
/// to reach (an access straddling a line boundary probes every line it
/// covers), the resulting latency, and how many lines missed at each level
/// so per-kernel MPKI attribution stays exact for straddling accesses.
struct AccessOutcome {
  HitLevel level = HitLevel::L1;
  std::uint32_t latency = 0;
  std::uint32_t l1LineMisses = 0;
  std::uint32_t l2LineMisses = 0;
};

/// Whole-hierarchy counters (demand traffic only; prefetch fills are
/// tracked separately and never count as demand hits or misses).
struct HierarchyStats {
  std::uint64_t loads = 0;   ///< demand load accesses (per MemAccess record)
  std::uint64_t stores = 0;  ///< demand store accesses
  std::uint64_t l1Hits = 0;
  std::uint64_t l1Misses = 0;
  std::uint64_t l2Hits = 0;
  std::uint64_t l2Misses = 0;  ///< lines fetched from memory
  std::uint64_t writebacksToL2 = 0;   ///< dirty L1 victims
  std::uint64_t writebacksToMem = 0;  ///< dirty L2 victims
  std::uint64_t prefetchesIssued = 0;
  std::uint64_t prefetchesUseful = 0;  ///< prefetched lines later demanded
  /// Prefetched lines that missed L2 and were fetched from memory; demand
  /// misses alone undercount memory traffic, so the bandwidth-bound model
  /// (ISSUE 10) adds these fills to the bytes-moved total.
  std::uint64_t prefetchFillsFromMem = 0;

  bool operator==(const HierarchyStats&) const = default;

  [[nodiscard]] double prefetchAccuracy() const {
    return prefetchesIssued == 0
               ? 0.0
               : static_cast<double>(prefetchesUseful) /
                     static_cast<double>(prefetchesIssued);
  }
};

class MemoryHierarchy {
 public:
  /// Throws riscmp::ConfigError when the geometry is invalid (same checks
  /// as validateCacheConfig).
  explicit MemoryHierarchy(const CacheConfig& config);

  /// Simulate a demand load/store of `size` bytes at `addr`. Both are
  /// write-allocate: a store miss fetches the line before dirtying it.
  AccessOutcome load(std::uint64_t addr, std::uint32_t size);
  AccessOutcome store(std::uint64_t addr, std::uint32_t size);

  [[nodiscard]] const HierarchyStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  /// First line number a byte access touches (for footprint tracking).
  [[nodiscard]] std::uint64_t lineOf(std::uint64_t addr) const {
    return addr >> lineShift_;
  }

  /// Invalidate both levels and zero all counters.
  void reset();

 private:
  AccessOutcome accessLines(std::uint64_t addr, std::uint32_t size,
                            bool write);
  /// One demand line access, including L2 fill and write-back accounting.
  HitLevel accessLine(std::uint64_t line, bool write);
  /// Install `line` into L1, pushing any dirty victim into L2.
  void fillL1(std::uint64_t line, bool dirty, bool prefetched);
  void prefetchLine(std::uint64_t line);

  CacheConfig config_;
  std::uint32_t lineShift_;
  Cache l1_;
  Cache l2_;
  std::optional<Prefetcher> prefetcher_;
  HierarchyStats stats_;
};

}  // namespace riscmp::uarch::mem
