#include "uarch/mem/hierarchy.hpp"

#include <algorithm>
#include <string>

#include "support/fault.hpp"

namespace riscmp::uarch::mem {
namespace {

constexpr bool isPowerOfTwo(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

void requirePositive(std::uint64_t value, const char* key) {
  if (value == 0) {
    throw ConfigError("must be a positive integer, got 0", {}, 0, key);
  }
}

void checkLevel(const LevelConfig& level, const CacheConfig& config,
                const std::string& name) {
  requirePositive(level.ways, (name + ".ways").c_str());
  requirePositive(level.latency, (name + ".latency").c_str());
  requirePositive(level.sizeBytes, (name + ".size_kib").c_str());
  const std::uint64_t waySize =
      std::uint64_t{config.lineBytes} * level.ways;
  if (level.sizeBytes % waySize != 0) {
    throw ConfigError(
        "size " + std::to_string(level.sizeBytes) +
            " B is not divisible into whole sets of " +
            std::to_string(level.ways) + " x " +
            std::to_string(config.lineBytes) + " B lines",
        {}, 0, name + ".size_kib");
  }
  const std::uint64_t sets = level.sizeBytes / waySize;
  if (!isPowerOfTwo(sets)) {
    throw ConfigError("set count " + std::to_string(sets) +
                          " must be a power of two",
                      {}, 0, name + ".size_kib");
  }
}

void checkTlbLevel(std::uint32_t entries, std::uint32_t ways,
                   const std::string& name) {
  requirePositive(entries, (name + "_entries").c_str());
  requirePositive(ways, (name + "_ways").c_str());
  if (entries % ways != 0) {
    throw ConfigError(std::to_string(entries) +
                          " entries are not divisible into sets of " +
                          std::to_string(ways) + " ways",
                      {}, 0, name + "_entries");
  }
  if (!isPowerOfTwo(entries / ways)) {
    throw ConfigError("set count " + std::to_string(entries / ways) +
                          " must be a power of two",
                      {}, 0, name + "_entries");
  }
}

std::uint32_t shiftFor(std::uint32_t lineBytes) {
  std::uint32_t shift = 0;
  while ((1u << shift) < lineBytes) ++shift;
  return shift;
}

}  // namespace

void validateCacheConfig(const CacheConfig& config) {
  if (!isPowerOfTwo(config.lineBytes) || config.lineBytes < 8 ||
      config.lineBytes > 4096) {
    throw ConfigError("line size must be a power of two in [8, 4096], got " +
                          std::to_string(config.lineBytes),
                      {}, 0, "line_bytes");
  }
  checkLevel(config.l1d, config, "l1d");
  checkLevel(config.l2, config, "l2");
  requirePositive(config.memoryLatency, "memory_latency");
  requirePositive(config.mshrs, "mshrs");
  requirePositive(config.memBytesPerCycle, "mem_bytes_per_cycle");
  if (config.tlb) {
    const TlbConfig& tlb = *config.tlb;
    if (!isPowerOfTwo(tlb.pageBytes) || tlb.pageBytes < config.lineBytes) {
      throw ConfigError(
          "page size must be a power of two no smaller than the line size (" +
              std::to_string(config.lineBytes) + " B), got " +
              std::to_string(tlb.pageBytes),
          {}, 0, "tlb.page_bytes");
    }
    checkTlbLevel(tlb.l1Entries, tlb.l1Ways, "tlb.l1");
    checkTlbLevel(tlb.l2Entries, tlb.l2Ways, "tlb.l2");
    requirePositive(tlb.l2Latency, "tlb.l2_latency");
    requirePositive(tlb.walkLatency, "tlb.walk_latency");
  }
  if (config.l2.sizeBytes < config.l1d.sizeBytes) {
    throw ConfigError("L2 (" + std::to_string(config.l2.sizeBytes) +
                          " B) must be at least as large as L1D (" +
                          std::to_string(config.l1d.sizeBytes) + " B)",
                      {}, 0, "l2.size_kib");
  }
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig& config)
    : config_((validateCacheConfig(config), config)),
      lineShift_(shiftFor(config.lineBytes)),
      l1_(config.l1Sets(), config.l1d.ways),
      l2_(config.l2Sets(), config.l2.ways) {
  if (config_.prefetch != PrefetchKind::None) {
    prefetcher_.emplace(config_.prefetch, config_.lineBytes);
  }
}

AccessOutcome MemoryHierarchy::load(std::uint64_t addr, std::uint32_t size) {
  ++stats_.loads;
  return accessLines(addr, size, /*write=*/false);
}

AccessOutcome MemoryHierarchy::store(std::uint64_t addr, std::uint32_t size) {
  ++stats_.stores;
  return accessLines(addr, size, /*write=*/true);
}

AccessOutcome MemoryHierarchy::accessLines(std::uint64_t addr,
                                           std::uint32_t size, bool write) {
  const std::uint64_t first = addr >> lineShift_;
  const std::uint64_t last = (addr + std::max(size, 1u) - 1) >> lineShift_;

  AccessOutcome outcome;
  for (std::uint64_t line = first; line <= last; ++line) {
    const HitLevel level = accessLine(line, write);
    if (level != HitLevel::L1) ++outcome.l1LineMisses;
    if (level == HitLevel::Memory) ++outcome.l2LineMisses;
    outcome.level = std::max(outcome.level, level);

    if (prefetcher_) {
      for (const std::uint64_t target :
           prefetcher_->observe(line, level != HitLevel::L1)) {
        prefetchLine(target);
      }
    }
  }

  switch (outcome.level) {
    case HitLevel::L1:
      outcome.latency = config_.l1d.latency;
      break;
    case HitLevel::L2:
      outcome.latency = config_.l2.latency;
      break;
    case HitLevel::Memory:
      outcome.latency = config_.memoryLatency;
      break;
  }
  return outcome;
}

HitLevel MemoryHierarchy::accessLine(std::uint64_t line, bool write) {
  const Cache::Lookup l1 = l1_.access(line, write);
  if (l1.hit) {
    ++stats_.l1Hits;
    if (l1.firstUseOfPrefetch) ++stats_.prefetchesUseful;
    return HitLevel::L1;
  }
  ++stats_.l1Misses;

  if (l2_.access(line, /*write=*/false).hit) {
    ++stats_.l2Hits;
    fillL1(line, write, /*prefetched=*/false);
    return HitLevel::L2;
  }
  ++stats_.l2Misses;

  const Cache::Eviction victim =
      l2_.fill(line, /*dirty=*/false, /*prefetched=*/false);
  if (victim.valid && victim.dirty) ++stats_.writebacksToMem;
  fillL1(line, write, /*prefetched=*/false);
  return HitLevel::Memory;
}

void MemoryHierarchy::fillL1(std::uint64_t line, bool dirty, bool prefetched) {
  const Cache::Eviction victim = l1_.fill(line, dirty, prefetched);
  if (!victim.valid || !victim.dirty) return;
  ++stats_.writebacksToL2;
  // Write-back path (non-inclusive): dirty the line if L2 still holds it,
  // otherwise re-install it, spilling any dirty L2 victim to memory.
  if (l2_.contains(victim.line)) {
    l2_.access(victim.line, /*write=*/true);
  } else {
    const Cache::Eviction spilled =
        l2_.fill(victim.line, /*dirty=*/true, /*prefetched=*/false);
    if (spilled.valid && spilled.dirty) ++stats_.writebacksToMem;
  }
}

void MemoryHierarchy::prefetchLine(std::uint64_t line) {
  if (l1_.contains(line)) return;  // filtered before issue, not counted
  ++stats_.prefetchesIssued;
  if (!l2_.access(line, /*write=*/false).hit) {
    ++stats_.prefetchFillsFromMem;
    const Cache::Eviction victim =
        l2_.fill(line, /*dirty=*/false, /*prefetched=*/false);
    if (victim.valid && victim.dirty) ++stats_.writebacksToMem;
  }
  fillL1(line, /*dirty=*/false, /*prefetched=*/true);
}

void MemoryHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  if (prefetcher_) prefetcher_->reset();
  stats_ = HierarchyStats{};
}

}  // namespace riscmp::uarch::mem
