// Block-batched cache-model trace observer (ISSUE 5 tentpole).
//
// Drives a MemoryHierarchy from the retired-instruction stream and
// attributes every demand access to the benchmark kernel that issued it,
// using the same staticIndex fast path as PathLengthCounter (DESIGN.md
// §10): one table load per retire instead of a pc range search. Reports
// per-kernel and whole-program hits/misses/MPKI, prefetch accuracy, and an
// order-independent digest of the set of cache lines each kernel touched —
// the E11 cross-ISA invariant compares those digests between RV64 and A64
// compilations of the same kernel (the data-address stream is a property
// of the algorithm, not the ISA).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "isa/trace.hpp"
#include "support/flat_hash.hpp"
#include "uarch/mem/hierarchy.hpp"

namespace riscmp::uarch::mem {

class CacheModelAnalyzer final : public TraceObserver {
 public:
  /// Kernel regions come from the program's symbol table (regions sharing
  /// a name aggregate, as in PathLengthCounter). Throws ConfigError for
  /// invalid geometry and ValidationFault for overlapping kernel regions.
  CacheModelAnalyzer(const CacheConfig& config, const Program& program);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  /// Per-kernel demand-traffic summary. Digests are order-independent
  /// (commutative sums over hashed line numbers), so two runs touching the
  /// same line set in different orders — or interleaved differently by
  /// prefetching — compare equal.
  struct KernelStats {
    std::string name;
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t footprintLines = 0;   ///< distinct lines touched
    std::uint64_t lineSetDigest = 0;    ///< order-independent set digest

    [[nodiscard]] double l1Mpki() const {
      return instructions == 0 ? 0.0
                               : 1000.0 * static_cast<double>(l1Misses) /
                                     static_cast<double>(instructions);
    }
    [[nodiscard]] double l2Mpki() const {
      return instructions == 0 ? 0.0
                               : 1000.0 * static_cast<double>(l2Misses) /
                                     static_cast<double>(instructions);
    }
  };

  [[nodiscard]] const std::vector<KernelStats>& kernels() const {
    return kernels_;
  }
  [[nodiscard]] const HierarchyStats& totals() const {
    return hierarchy_.stats();
  }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] std::uint64_t footprintLines() const {
    return footprintLines_;
  }
  /// Whole-program order-independent line-set digest (same construction
  /// as KernelStats::lineSetDigest).
  [[nodiscard]] std::uint64_t lineSetDigest() const { return lineSetDigest_; }
  [[nodiscard]] double l1Mpki() const {
    return instructions_ == 0
               ? 0.0
               : 1000.0 * static_cast<double>(totals().l1Misses) /
                     static_cast<double>(instructions_);
  }
  [[nodiscard]] double l2Mpki() const {
    return instructions_ == 0
               ? 0.0
               : 1000.0 * static_cast<double>(totals().l2Misses) /
                     static_cast<double>(instructions_);
  }

  /// Clear caches, counters, and line sets; kernel regions are retained so
  /// the analyzer can observe a fresh run of the same program.
  void reset();

 private:
  struct Region {
    std::uint64_t begin;
    std::uint64_t end;
    std::size_t kernelIndex;
  };

  void retireOne(const RetiredInst& inst);
  /// kernels_ slot for this record, or -1 when outside every kernel.
  [[nodiscard]] std::int32_t kernelOf(const RetiredInst& inst);
  void recordLines(std::uint64_t addr, std::uint32_t size,
                   std::int32_t kernel);

  MemoryHierarchy hierarchy_;
  std::uint64_t instructions_ = 0;
  std::uint64_t footprintLines_ = 0;
  std::uint64_t lineSetDigest_ = 0;

  // Static attribution (see PathLengthCounter): per code word, the
  // kernels_ slot to credit, indexed by RetiredInst::staticIndex, with a
  // pc range-search fallback for records without static metadata.
  std::vector<std::int32_t> wordKernel_;
  std::vector<Region> regions_;
  std::size_t lastRegion_ = SIZE_MAX;

  std::vector<KernelStats> kernels_;
  /// Membership sets behind footprintLines/lineSetDigest: one per kernel,
  /// plus one whole-program set at index kernels_.size().
  std::vector<FlatHashMap64<std::uint8_t>> lineSets_;
};

}  // namespace riscmp::uarch::mem
