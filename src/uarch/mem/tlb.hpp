// Two-level data TLB (ISSUE 10 tentpole, part 1).
//
// The cache hierarchy of ISSUE 5 models line residency but assumes free
// address translation. This class adds the translation side: an L1 DTLB
// backed by an L2 TLB, both plain set-associative LRU tag arrays reusing
// Cache keyed on virtual page numbers instead of line numbers. An access
// returns the translation latency to add on top of the cache latency:
// 0 on an L1-TLB hit, `l2Latency` on an L2-TLB hit, `walkLatency` for a
// full page walk (which fills both levels).
//
// Like the caches, the TLB is a pure timing/tag model over the virtual
// addresses the retire pipeline carries; there is no physical mapping, so
// the cross-ISA identity argument extends unchanged from line sets to
// page sets (same addresses => same pages => same walks).
#pragma once

#include <cstdint>

#include "uarch/mem/cache.hpp"
#include "uarch/mem/hierarchy.hpp"

namespace riscmp::uarch::mem {

/// Counters for one TLB instance. Walks are L2-TLB misses; every walk
/// costs `walkLatency` cycles, accumulated in walkCycles.
struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1Hits = 0;
  std::uint64_t l1Misses = 0;
  std::uint64_t l2Hits = 0;
  std::uint64_t walks = 0;
  std::uint64_t walkCycles = 0;

  bool operator==(const TlbStats&) const = default;
};

/// Where a translation was found.
enum class TlbLevel : std::uint8_t { L1, L2, Walk };

class Tlb {
 public:
  struct Outcome {
    TlbLevel level = TlbLevel::L1;
    std::uint32_t latency = 0;  ///< added translation cycles
  };

  /// `config` must already be validated (validateCacheConfig checks the
  /// embedded TlbConfig when present).
  explicit Tlb(const TlbConfig& config);

  /// Translate `page` (a pre-shifted virtual page number).
  Outcome access(std::uint64_t page);

  [[nodiscard]] const TlbStats& stats() const { return stats_; }
  [[nodiscard]] const TlbConfig& config() const { return config_; }

  /// Page number of a byte address under this TLB's page size.
  [[nodiscard]] std::uint64_t pageOf(std::uint64_t addr) const {
    return addr >> pageShift_;
  }

  void reset();

 private:
  TlbConfig config_;
  std::uint32_t pageShift_;
  Cache l1_;
  Cache l2_;
  TlbStats stats_;
};

}  // namespace riscmp::uarch::mem
