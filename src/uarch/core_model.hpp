// Core model descriptions (latencies, port layout, structure sizes), loaded
// from YAML files in the configs/ directory — mirroring SimEng's per-core
// yaml models the paper relies on (§5.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"  // LatencyTable
#include "analysis/throughput_bound.hpp"
#include "isa/groups.hpp"
#include "support/yaml_lite.hpp"
#include "uarch/fusion/fusion.hpp"
#include "uarch/mem/hierarchy.hpp"

namespace riscmp::uarch {

/// One execution port and the instruction groups it accepts.
struct Port {
  std::string name;
  std::uint32_t groupMask = 0;  ///< bit i set => accepts InstGroup(i)

  [[nodiscard]] bool accepts(InstGroup group) const {
    return groupMask & (1u << static_cast<unsigned>(group));
  }
};

enum class BranchPredictor : std::uint8_t {
  Perfect,  ///< the paper's assumption throughout
  Static,   ///< backward-taken / forward-not-taken
  Gshare,   ///< global-history XOR pc, 2-bit counters
};

struct CoreModel {
  std::string name;
  std::string description;

  unsigned fetchWidth = 4;
  unsigned dispatchWidth = 4;
  unsigned commitWidth = 4;
  unsigned robSize = 180;
  double clockGhz = 2.0;
  unsigned mispredictPenalty = 0;
  BranchPredictor predictor = BranchPredictor::Perfect;
  unsigned gshareBits = 12;  ///< log2 of the gshare counter table size

  std::vector<Port> ports;
  LatencyTable latencies = unitLatencies();

  /// Memory hierarchy from the optional `caches:` section (ISSUE 5). Absent
  /// when the config has no such section: the timing models then keep the
  /// paper's flat memory system (fixed LOAD latency), which stays the
  /// default everywhere.
  std::optional<mem::CacheConfig> caches;

  /// Macro-op fusion rules from the optional `fusion:` section (ISSUE 8).
  /// Absent when the config has no such section: the engine then runs no
  /// fused analyzers for cells using this model.
  std::optional<FusionConfig> fusion;

  /// This model's throughput description (ISSUE 7): the ports, the
  /// dispatch width as issue width, and the latency table, in the
  /// analysis-layer struct ThroughputBoundAnalyzer consumes (riscmp_uarch
  /// links riscmp_analysis, so the analyzer cannot take a CoreModel).
  [[nodiscard]] ThroughputModel throughputModel() const;

  /// Parse and validate a YAML document. Unknown keys, unknown
  /// instruction-group names, missing required keys, non-numeric or
  /// out-of-range values, and a `latencies:` entry for a group no port
  /// accepts all throw riscmp::ConfigError with line (and, via fromFile,
  /// file) provenance.
  static CoreModel fromYaml(const yaml::Node& root);
  /// Load and validate; ConfigErrors are annotated with `path`.
  static CoreModel fromFile(const std::string& path);
  /// Load `<name>.yaml` from the repository's configs/ directory.
  static CoreModel named(const std::string& name);
};

/// Absolute path of the repository configs/ directory (compile-time).
std::string configDir();

}  // namespace riscmp::uarch
