// Trace-driven out-of-order core timing model — the paper's §8 future work:
// "SimEng provides the capability for simulating OoO superscalar
// microarchitectures... using real-world sizes for OoO resources".
//
// The model consumes the retired-instruction stream in program order and
// computes, per instruction:
//   dispatch  — bounded by dispatch width and ROB occupancy
//   issue     — bounded by operand readiness (registers and memory, with
//               store-to-load forwarding) and execution-port contention
//   complete  — issue + group latency (fully pipelined units)
//   commit    — in order, bounded by commit width
// Branch handling follows the configured predictor: Perfect (the paper's
// assumption) has no penalty; Static (backward-taken) charges the
// mispredict penalty on wrong guesses.
//
// This is the classic O(1)-per-instruction trace-driven OoO model: it
// captures dependency, capacity, and bandwidth limits without simulating
// speculative wrong paths.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "isa/trace.hpp"
#include "support/flat_hash.hpp"
#include "uarch/core_model.hpp"
#include "uarch/mem/hierarchy.hpp"

namespace riscmp::uarch {

class OoOCoreModel final : public TraceObserver {
 public:
  /// `memoryAware` attaches the cache model from the core model's
  /// `caches:` section (ISSUE 5): each load's execution latency becomes
  /// its dynamic load-to-use latency (L1 / L2 / memory) instead of the
  /// flat LOAD table entry, and stores update cache state. Throws
  /// ConfigError when the model has no `caches:` section. The default
  /// stays the paper's flat memory system.
  explicit OoOCoreModel(CoreModel model, bool memoryAware = false);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  /// Restore construction state — pipeline occupancy, operand readiness,
  /// port reservations, predictor tables, and the cache hierarchy (when
  /// memory-aware) — so the model can observe a fresh run, per the
  /// TraceObserver reuse contract (isa/trace.hpp). Previously missing:
  /// reused models silently carried ROB/port/predictor state across runs.
  void reset();

  [[nodiscard]] std::uint64_t cycles() const { return lastCommitCycle_; }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] double cpi() const {
    return instructions_ == 0 ? 0.0
                              : static_cast<double>(cycles()) /
                                    static_cast<double>(instructions_);
  }
  [[nodiscard]] double ipc() const {
    return cycles() == 0 ? 0.0
                         : static_cast<double>(instructions_) /
                               static_cast<double>(cycles());
  }
  [[nodiscard]] double runtimeSeconds() const {
    return static_cast<double>(cycles()) / (model_.clockGhz * 1e9);
  }
  [[nodiscard]] std::uint64_t mispredicts() const { return mispredicts_; }
  [[nodiscard]] const CoreModel& model() const { return model_; }
  /// Cache counters when constructed memory-aware, nullptr otherwise.
  [[nodiscard]] const mem::HierarchyStats* cacheStats() const {
    return hierarchy_ ? &hierarchy_->stats() : nullptr;
  }

 private:
  CoreModel model_;
  std::optional<mem::MemoryHierarchy> hierarchy_;

  std::uint64_t instructions_ = 0;
  std::uint64_t mispredicts_ = 0;

  // Front end: dispatch cycle tracking.
  std::uint64_t dispatchCycle_ = 1;
  unsigned dispatchedThisCycle_ = 0;
  std::uint64_t frontEndStallUntil_ = 0;

  // ROB occupancy: commit cycles of in-flight instructions, ring buffer.
  std::vector<std::uint64_t> robCommitCycles_;
  std::size_t robHead_ = 0;
  std::size_t robCount_ = 0;

  // Operand readiness.
  std::array<std::uint64_t, Reg::kDenseCount> regReady_{};
  FlatHashMap64<std::uint64_t> memReady_;

  // Execution ports: next cycle each can accept an instruction.
  std::vector<std::uint64_t> portFree_;

  // In-order commit tracking.
  std::uint64_t lastCommitCycle_ = 0;
  unsigned committedThisCycle_ = 0;

  // Gshare predictor state (used when the model selects it).
  std::vector<std::uint8_t> gshareTable_;
  std::uint64_t globalHistory_ = 0;

  void retireOne(const RetiredInst& inst);
  [[nodiscard]] bool predictTaken(const RetiredInst& inst);
  void trainPredictor(const RetiredInst& inst);
};

}  // namespace riscmp::uarch
