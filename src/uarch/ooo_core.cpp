#include "uarch/ooo_core.hpp"

#include <algorithm>

#include "support/fault.hpp"

namespace riscmp::uarch {

OoOCoreModel::OoOCoreModel(CoreModel model, bool memoryAware)
    : model_(std::move(model)) {
  if (memoryAware) {
    if (!model_.caches) {
      throw ConfigError(
          "memory-aware OoO model requires a caches: section in core model '" +
              model_.name + "'",
          {}, 0, "caches");
    }
    hierarchy_.emplace(*model_.caches);
  }
  robCommitCycles_.resize(std::max(1u, model_.robSize), 0);
  portFree_.resize(model_.ports.size(), 0);
  if (model_.predictor == BranchPredictor::Gshare) {
    // 2-bit counters initialised weakly taken.
    gshareTable_.assign(std::size_t{1} << model_.gshareBits, 2);
  }
}

bool OoOCoreModel::predictTaken(const RetiredInst& inst) {
  switch (model_.predictor) {
    case BranchPredictor::Perfect:
      return inst.branchTaken;
    case BranchPredictor::Static:
      // Backward-taken / forward-not-taken, *strictly* backward: a
      // self-target branch (target == pc) is not a backward loop edge, and
      // target 0 means the target is unknown (an indirect branch through a
      // cleared register, or a hand-built record) and carries no
      // direction. Both fall to not-taken; the old `target <= pc` form
      // predicted them taken.
      return inst.branchTarget != 0 && inst.branchTarget < inst.pc;
    case BranchPredictor::Gshare: {
      const std::uint64_t mask = gshareTable_.size() - 1;
      const std::uint64_t index = ((inst.pc >> 2) ^ globalHistory_) & mask;
      return gshareTable_[index] >= 2;
    }
  }
  return true;
}

void OoOCoreModel::trainPredictor(const RetiredInst& inst) {
  if (model_.predictor != BranchPredictor::Gshare) return;
  const std::uint64_t mask = gshareTable_.size() - 1;
  const std::uint64_t index = ((inst.pc >> 2) ^ globalHistory_) & mask;
  std::uint8_t& counter = gshareTable_[index];
  if (inst.branchTaken) {
    if (counter < 3) ++counter;
  } else if (counter > 0) {
    --counter;
  }
  globalHistory_ = ((globalHistory_ << 1) | (inst.branchTaken ? 1 : 0)) & mask;
}

void OoOCoreModel::reset() {
  if (hierarchy_) hierarchy_->reset();
  instructions_ = 0;
  mispredicts_ = 0;
  dispatchCycle_ = 1;
  dispatchedThisCycle_ = 0;
  frontEndStallUntil_ = 0;
  std::fill(robCommitCycles_.begin(), robCommitCycles_.end(), 0);
  robHead_ = 0;
  robCount_ = 0;
  regReady_.fill(0);
  memReady_.clear();
  std::fill(portFree_.begin(), portFree_.end(), 0);
  lastCommitCycle_ = 0;
  committedThisCycle_ = 0;
  std::fill(gshareTable_.begin(), gshareTable_.end(), 2);
  globalHistory_ = 0;
}

void OoOCoreModel::onRetire(const RetiredInst& inst) { retireOne(inst); }

void OoOCoreModel::onRetireBlock(std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) retireOne(inst);
}

void OoOCoreModel::retireOne(const RetiredInst& inst) {
  ++instructions_;

  // ---- dispatch: in order, `dispatchWidth` per cycle, ROB space needed.
  std::uint64_t dispatch = dispatchCycle_;
  if (dispatchedThisCycle_ >= model_.dispatchWidth) {
    dispatch = dispatchCycle_ + 1;
  }
  dispatch = std::max(dispatch, frontEndStallUntil_);
  if (robCount_ >= robCommitCycles_.size()) {
    // The oldest in-flight instruction must commit before this one enters.
    const std::uint64_t oldestCommit = robCommitCycles_[robHead_];
    dispatch = std::max(dispatch, oldestCommit + 1);
    robHead_ = (robHead_ + 1) % robCommitCycles_.size();
    --robCount_;
  }
  if (dispatch != dispatchCycle_) {
    dispatchCycle_ = dispatch;
    dispatchedThisCycle_ = 0;
  }
  ++dispatchedThisCycle_;

  // ---- operand readiness.
  std::uint64_t ready = dispatch;
  for (const Reg& reg : inst.srcs) {
    ready = std::max(ready, regReady_[reg.dense()]);
  }
  for (const MemAccess& access : inst.loads) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      if (const std::uint64_t* found = memReady_.find(chunk)) {
        ready = std::max(ready, *found);
      }
    }
  }

  // ---- issue: earliest eligible port (fully pipelined, one per cycle).
  std::uint64_t issue = ready;
  if (!portFree_.empty()) {
    std::size_t best = portFree_.size();
    std::uint64_t bestCycle = ~std::uint64_t{0};
    for (std::size_t p = 0; p < portFree_.size(); ++p) {
      if (!model_.ports[p].accepts(inst.group)) continue;
      const std::uint64_t cycle = std::max(ready, portFree_[p]);
      if (cycle < bestCycle) {
        bestCycle = cycle;
        best = p;
      }
    }
    if (best == portFree_.size()) {
      // No eligible port: this used to fall through silently, issuing the
      // instruction with no structural hazard at all. Model holes must be
      // loud — CoreModel::fromYaml rejects uncovered groups that have a
      // configured latency, and this catches the rest (defaulted
      // latencies, hand-built models).
      throw ValidationFault(
          "core model '" + model_.name + "': no execution port accepts " +
          std::string(instGroupName(inst.group)) +
          " — add it to a port's groups: list");
    }
    issue = bestCycle;
    portFree_[best] = issue + 1;
  }

  // ---- execute. With a cache model attached, a load's latency is its
  // dynamic load-to-use latency instead of the flat LOAD table entry;
  // stores keep the table latency (write-buffered) but update cache state.
  std::uint32_t latency =
      model_.latencies[static_cast<std::size_t>(inst.group)];
  if (hierarchy_) {
    if (!inst.loads.empty()) {
      std::uint32_t dynamic = 0;
      for (const MemAccess& access : inst.loads) {
        dynamic = std::max(
            dynamic, hierarchy_->load(access.addr, access.size).latency);
      }
      latency = dynamic;
    }
    for (const MemAccess& access : inst.stores) {
      hierarchy_->store(access.addr, access.size);
    }
  }
  const std::uint64_t complete = issue + latency;

  for (const Reg& reg : inst.dsts) {
    regReady_[reg.dense()] = complete;
  }
  for (const MemAccess& access : inst.stores) {
    const std::uint64_t first = access.addr >> 3;
    const std::uint64_t last = (access.addr + access.size - 1) >> 3;
    for (std::uint64_t chunk = first; chunk <= last; ++chunk) {
      memReady_.assign(chunk, complete);
    }
  }

  // ---- branch resolution under the configured predictor.
  if (inst.isBranch && model_.predictor != BranchPredictor::Perfect) {
    const bool predicted = predictTaken(inst);
    trainPredictor(inst);
    if (predicted != inst.branchTaken && model_.mispredictPenalty != 0) {
      ++mispredicts_;
      frontEndStallUntil_ =
          std::max(frontEndStallUntil_, complete + model_.mispredictPenalty);
    }
  }

  // ---- commit: in order, `commitWidth` per cycle.
  std::uint64_t commit = std::max(complete + 1, lastCommitCycle_);
  if (commit == lastCommitCycle_ && committedThisCycle_ >= model_.commitWidth) {
    ++commit;
  }
  if (commit != lastCommitCycle_) {
    lastCommitCycle_ = commit;
    committedThisCycle_ = 0;
  }
  ++committedThisCycle_;

  // ---- ROB bookkeeping.
  const std::size_t tail =
      (robHead_ + robCount_) % robCommitCycles_.size();
  robCommitCycles_[tail] = commit;
  ++robCount_;
}

}  // namespace riscmp::uarch
