// Macro-op fusion pass (ISSUE 8 tentpole).
//
// Celio et al. ("The Renewed Case for the Reduced Instruction Set
// Computer", PAPERS.md) argue the paper's headline gap — RISC-V retires
// more instructions than AArch64 on the same kernels — largely disappears
// once the decoder fuses common adjacent pairs into single macro-ops. This
// pass makes that claim measurable: it sits between the emulation core and
// any set of downstream analyzers (DESIGN.md §14), consumes the batched
// retired stream via onRetireBlock, greedily pairs adjacent same-kernel
// instructions that match an enabled rule, and forwards the fused stream —
// macro-ops carrying merged dependence edges and the dominant group for
// latency selection — to the downstream observers.
//
// Rule catalogue (provenance: Celio et al. §"macro-op fusion"; RV64
// compare-and-branch is a native fused form, so the RISC-V rules cover the
// remaining idioms; the A64 rules are the reverse-direction controls):
//
//   load_pair     (rv64)  two same-width loads off one base register at
//                         adjacent addresses -> one LDP-like macro-op
//   indexed_load  (rv64)  add rd,rs1,rs2 ; load rt,0(rd)  -> indexed load
//   indexed_store (rv64)  add rd,rs1,rs2 ; store rt,0(rd) -> indexed store
//   lui_addi      (rv64)  lui rd,hi ; addi/addiw rt,rd,lo -> 32-bit const
//   slli_add      (rv64)  slli rd,rs,{1,2,3} ; add consuming rd
//                         -> shifted-index address formation (Zba shNadd)
//   cmp_bcc       (a64)   flag-setting ALU op ; conditional branch reading
//                         the flags -> fused compare-and-branch
//   adrp_add      (a64)   adrp rd ; add rt,rd,#imm -> address formation
//                         (the kgen backends never emit adrp: this rule is
//                         a deliberate zero-fire control)
//
// Fusion is an analysis-layer transform: it must never change architectural
// semantics. The sim_conformance oracle enforces this (fusion-on runs must
// produce identical architectural state and an identical *unfused* upstream
// stream).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/program.hpp"
#include "isa/arch.hpp"
#include "isa/trace.hpp"

namespace riscmp::uarch {

enum class FusionRule : std::uint8_t {
  LoadPair,
  IndexedLoad,
  IndexedStore,
  LuiAddi,
  SlliAdd,
  CmpBcc,
  AdrpAdd,
};

inline constexpr std::size_t kFusionRuleCount = 7;

/// Stable YAML/report name, e.g. "load_pair".
std::string_view fusionRuleName(FusionRule rule);
std::optional<FusionRule> fusionRuleFromName(std::string_view name);

/// Whether `rule` is meaningful on `arch` (load_pair on A64 is illegal:
/// the ISA has a real LDP the compiler already emits, so configuring the
/// rule would double-count; cmp_bcc on RV64 is illegal because the ISA's
/// branches are natively fused compare-and-branch).
bool fusionRuleLegalFor(FusionRule rule, Arch arch);

/// Enabled-rule set for one ISA (the `fusion:` YAML section, ISSUE 8).
struct FusionConfig {
  Arch arch = Arch::Rv64;
  std::uint32_t ruleMask = 0;  ///< bit i set => FusionRule(i) enabled

  [[nodiscard]] bool enabled(FusionRule rule) const {
    return ruleMask & (1u << static_cast<unsigned>(rule));
  }
  void enable(FusionRule rule) {
    ruleMask |= 1u << static_cast<unsigned>(rule);
  }

  /// Every rule legal for `arch` enabled — the oracle and bench default.
  static FusionConfig allRulesFor(Arch arch);
};

/// The fusion pass: a TraceObserver that rewrites the retired stream and
/// forwards it to a fixed set of downstream observers.
///
/// Contract (DESIGN.md §14):
///  - Order-preserving and greedy left-to-right: a record is held as the
///    pending pair candidate until the next record arrives; if an enabled
///    rule matches (pending, next) they are emitted as one macro-op (rule
///    priority = enum order), otherwise pending is emitted unfused and
///    next becomes the new candidate. Pairs never overlap.
///  - The pending candidate carries across TraceBlock boundaries, so a
///    fusable pair split across two 4096-record blocks still fuses.
///  - The pass therefore defers at most ONE record relative to the
///    upstream stream. onProgramEnd() flushes it and forwards program end
///    downstream. After a mid-run fault (the machine flushes retired
///    blocks before throwing but never calls onProgramEnd), call flush()
///    to deliver the deferred record to downstream observers.
///  - Macro-op record: pc/encoding/staticIndex from the first instruction;
///    group chosen per rule (the latency-dominant half: Load/Store for the
///    memory rules, Branch for cmp_bcc, IntSimple otherwise); srcs =
///    A.srcs ∪ (B.srcs \ A.dsts) — the fused-internal edge disappears;
///    dsts = A.dsts ∪ B.dsts; loads/stores concatenated; branch fields
///    from the second instruction.
///  - A pair must be pc-adjacent (B.pc == A.pc + 4), lie in the same
///    kernel region (or both outside every kernel), and B must not be a
///    static branch target (a fused pair cannot be entered in the middle;
///    targets of indirect branches are not known statically and are
///    approximated as non-targets, documented in DESIGN.md §14).
class FusionPass final : public TraceObserver {
 public:
  /// Per-kernel fused-pair counts (program kernel order, plus totals via
  /// pairs()/pairsByRule()).
  struct KernelFusion {
    std::string name;
    std::uint64_t pairs = 0;
    std::array<std::uint64_t, kFusionRuleCount> byRule{};
  };

  /// `program` supplies kernel attribution and the static branch-target
  /// scan; `downstream` observers receive the fused stream (block sizes
  /// stay within kTraceBlockCapacity) and onProgramEnd. The config's arch
  /// must match program.arch (ValidationFault otherwise).
  FusionPass(const FusionConfig& config, const Program& program,
             std::vector<TraceObserver*> downstream);

  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;
  void onProgramEnd() override;

  /// Deliver the deferred candidate (if any) downstream without signalling
  /// program end. Safe to call repeatedly; used after a mid-run fault.
  void flush();

  [[nodiscard]] std::uint64_t inputInstructions() const { return input_; }
  /// Records forwarded downstream so far (== input - 2*pairs + pairs,
  /// minus the at-most-one still-deferred candidate).
  [[nodiscard]] std::uint64_t outputInstructions() const { return output_; }
  [[nodiscard]] std::uint64_t pairs() const { return pairsTotal_; }
  [[nodiscard]] const std::array<std::uint64_t, kFusionRuleCount>&
  pairsByRule() const {
    return pairsByRule_;
  }
  [[nodiscard]] const std::vector<KernelFusion>& kernels() const {
    return kernels_;
  }
  /// Pairs whose first instruction lies outside every kernel region.
  [[nodiscard]] std::uint64_t unattributedPairs() const {
    return unattributedPairs_;
  }

 private:
  /// Kernel slot for a record (-1 = outside every kernel), via the
  /// staticIndex table with a pc range-search fallback for hand-built
  /// streams (mirrors PathLengthCounter).
  [[nodiscard]] std::int32_t kernelOf(const RetiredInst& inst) const;
  [[nodiscard]] bool isBranchTarget(const RetiredInst& inst) const;

  /// First matching enabled rule for the adjacent pair, if any.
  [[nodiscard]] std::optional<FusionRule> match(const RetiredInst& a,
                                                const RetiredInst& b) const;

  void process(const RetiredInst& inst);
  void emit(const RetiredInst& inst);
  void emitFused(const RetiredInst& a, const RetiredInst& b, FusionRule rule);
  void forward();

  FusionConfig config_;
  std::uint64_t codeBase_ = 0;
  std::size_t codeWords_ = 0;

  /// Per code word: kernel slot (-1 none), from Program::kernelWordIndex.
  std::vector<std::int32_t> wordKernel_;
  /// Per code word: 1 when some static direct branch/jump targets it.
  std::vector<std::uint8_t> branchTarget_;

  struct Region {
    std::uint64_t begin;
    std::uint64_t end;
    std::int32_t kernelIndex;
  };
  std::vector<Region> regions_;  ///< pc fallback for staticIndex-less records

  std::vector<TraceObserver*> downstream_;
  std::vector<RetiredInst> out_;  ///< per-forward output buffer
  std::optional<RetiredInst> pending_;

  std::uint64_t input_ = 0;
  std::uint64_t output_ = 0;
  std::uint64_t pairsTotal_ = 0;
  std::array<std::uint64_t, kFusionRuleCount> pairsByRule_{};
  std::vector<KernelFusion> kernels_;
  std::uint64_t unattributedPairs_ = 0;
};

}  // namespace riscmp::uarch
