#include "uarch/fusion/fusion.hpp"

#include <algorithm>

#include "aarch64/decode.hpp"
#include "riscv/decode.hpp"
#include "support/fault.hpp"

namespace riscmp::uarch {

namespace {

constexpr std::array<std::string_view, kFusionRuleCount> kRuleNames = {
    "load_pair", "indexed_load", "indexed_store", "lui_addi",
    "slli_add",  "cmp_bcc",      "adrp_add"};

// ---- RV64 encoding fields -------------------------------------------------

constexpr std::uint32_t rvOpc(std::uint32_t enc) { return enc & 0x7f; }
constexpr std::uint32_t rvRd(std::uint32_t enc) { return (enc >> 7) & 31; }
constexpr std::uint32_t rvFunct3(std::uint32_t enc) {
  return (enc >> 12) & 7;
}
constexpr std::uint32_t rvRs1(std::uint32_t enc) { return (enc >> 15) & 31; }
constexpr std::uint32_t rvRs2(std::uint32_t enc) { return (enc >> 20) & 31; }

/// Integer (0x03) and FP (0x07) load opcodes; integer (0x23) / FP (0x27)
/// store opcodes.
constexpr bool rvIsLoad(std::uint32_t enc) {
  return rvOpc(enc) == 0x03 || rvOpc(enc) == 0x07;
}
constexpr bool rvIsStore(std::uint32_t enc) {
  return rvOpc(enc) == 0x23 || rvOpc(enc) == 0x27;
}
/// ADD rd, rs1, rs2 exactly (funct7 0, funct3 0, opcode OP).
constexpr bool rvIsAdd(std::uint32_t enc) {
  return (enc & 0xfe00707f) == 0x00000033;
}
/// SLLI rd, rs1, shamt (RV64: funct6 0, funct3 1, opcode OP-IMM).
constexpr bool rvIsSlli(std::uint32_t enc) {
  return (enc & 0xfc00707f) == 0x00001013;
}
constexpr std::uint32_t rvShamt(std::uint32_t enc) {
  return (enc >> 20) & 0x3f;
}
/// I-type immediate is zero (bits 31:20 clear).
constexpr bool rvImmIZero(std::uint32_t enc) { return (enc >> 20) == 0; }
/// S-type immediate is zero (imm[11:5] and imm[4:0] both clear).
constexpr bool rvImmSZero(std::uint32_t enc) {
  return ((enc >> 25) & 0x7f) == 0 && ((enc >> 7) & 31) == 0;
}

// ---- A64 encoding fields --------------------------------------------------

constexpr bool a64IsAdrp(std::uint32_t enc) {
  return (enc & 0x9f000000) == 0x90000000;
}
/// ADD Xd, Xn, #imm12 {, lsl #12} (64-bit, non-flag-setting).
constexpr bool a64IsAddImm(std::uint32_t enc) {
  return (enc & 0xff800000) == 0x91000000;
}
constexpr std::uint32_t a64Rd(std::uint32_t enc) { return enc & 31; }
constexpr std::uint32_t a64Rn(std::uint32_t enc) { return (enc >> 5) & 31; }

template <typename Regs>
bool contains(const Regs& regs, Reg reg) {
  return std::find(regs.begin(), regs.end(), reg) != regs.end();
}

InstGroup fusedGroup(FusionRule rule) {
  switch (rule) {
    case FusionRule::LoadPair:
    case FusionRule::IndexedLoad:
      return InstGroup::Load;
    case FusionRule::IndexedStore:
      return InstGroup::Store;
    case FusionRule::CmpBcc:
      return InstGroup::Branch;
    case FusionRule::LuiAddi:
    case FusionRule::SlliAdd:
    case FusionRule::AdrpAdd:
      return InstGroup::IntSimple;
  }
  return InstGroup::IntSimple;
}

/// The merged macro-op must fit RetiredInst's inline operand storage
/// (SmallVector asserts on overflow — there is no heap spill). Every
/// catalogued rule fits by construction; this check keeps the pass safe
/// against future rules and adversarial hand-built streams.
bool mergeFits(const RetiredInst& a, const RetiredInst& b) {
  SmallVector<Reg, 5> srcs = a.srcs;
  for (const Reg src : b.srcs) {
    if (contains(a.dsts, src)) continue;
    if (contains(srcs, src)) continue;
    if (srcs.size() == srcs.capacity()) return false;
    srcs.push_back(src);
  }
  SmallVector<Reg, 3> dsts = a.dsts;
  for (const Reg dst : b.dsts) {
    if (contains(dsts, dst)) continue;
    if (dsts.size() == dsts.capacity()) return false;
    dsts.push_back(dst);
  }
  return a.loads.size() + b.loads.size() <= a.loads.capacity() &&
         a.stores.size() + b.stores.size() <= a.stores.capacity();
}

}  // namespace

std::string_view fusionRuleName(FusionRule rule) {
  return kRuleNames[static_cast<std::size_t>(rule)];
}

std::optional<FusionRule> fusionRuleFromName(std::string_view name) {
  for (std::size_t i = 0; i < kFusionRuleCount; ++i) {
    if (kRuleNames[i] == name) return static_cast<FusionRule>(i);
  }
  return std::nullopt;
}

bool fusionRuleLegalFor(FusionRule rule, Arch arch) {
  switch (rule) {
    case FusionRule::LoadPair:
    case FusionRule::IndexedLoad:
    case FusionRule::IndexedStore:
    case FusionRule::LuiAddi:
    case FusionRule::SlliAdd:
      return arch == Arch::Rv64;
    case FusionRule::CmpBcc:
    case FusionRule::AdrpAdd:
      return arch == Arch::AArch64;
  }
  return false;
}

FusionConfig FusionConfig::allRulesFor(Arch arch) {
  FusionConfig config;
  config.arch = arch;
  for (std::size_t i = 0; i < kFusionRuleCount; ++i) {
    const auto rule = static_cast<FusionRule>(i);
    if (fusionRuleLegalFor(rule, arch)) config.enable(rule);
  }
  return config;
}

FusionPass::FusionPass(const FusionConfig& config, const Program& program,
                       std::vector<TraceObserver*> downstream)
    : config_(config),
      codeBase_(program.codeBase),
      codeWords_(program.code.size()),
      downstream_(std::move(downstream)) {
  if (config.arch != program.arch) {
    throw ValidationFault(std::string("fusion config is for ") +
                          std::string(archName(config.arch)) +
                          " but the program is " +
                          std::string(archName(program.arch)));
  }
  // Validates kernel-region non-overlap (ValidationFault on violation).
  const std::vector<std::int32_t> symbolOfWord = program.kernelWordIndex();

  // Multiple symbols may share a kernel name (time-step-unrolled
  // workloads); their pair counts aggregate into one slot, mirroring
  // PathLengthCounter so the per-kernel tables line up row for row.
  std::vector<std::size_t> symbolToKernel(program.kernels.size());
  regions_.reserve(program.kernels.size());
  for (std::size_t s = 0; s < program.kernels.size(); ++s) {
    const Symbol& symbol = program.kernels[s];
    std::size_t kernelIndex = kernels_.size();
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
      if (kernels_[i].name == symbol.name) {
        kernelIndex = i;
        break;
      }
    }
    if (kernelIndex == kernels_.size()) {
      kernels_.push_back(KernelFusion{symbol.name, 0, {}});
    }
    symbolToKernel[s] = kernelIndex;
    regions_.push_back(Region{symbol.addr, symbol.addr + symbol.size,
                              static_cast<std::int32_t>(kernelIndex)});
  }

  wordKernel_.resize(symbolOfWord.size());
  for (std::size_t w = 0; w < symbolOfWord.size(); ++w) {
    wordKernel_[w] =
        symbolOfWord[w] < 0
            ? -1
            : static_cast<std::int32_t>(
                  symbolToKernel[static_cast<std::size_t>(symbolOfWord[w])]);
  }

  // Static branch-target scan: any word a direct branch or jump in the
  // code image targets can be entered mid-stream, so a pair whose second
  // half sits on such a word must not fuse. Indirect branches (jalr, br/
  // blr/ret) have no static target and are approximated as targeting
  // nothing (DESIGN.md §14).
  branchTarget_.assign(codeWords_, 0);
  const std::uint64_t codeEnd = codeBase_ + codeWords_ * 4;
  const auto mark = [&](std::uint64_t target) {
    if (target < codeBase_ || target >= codeEnd || (target & 3) != 0) return;
    branchTarget_[static_cast<std::size_t>((target - codeBase_) / 4)] = 1;
  };
  for (std::size_t i = 0; i < codeWords_; ++i) {
    const std::uint64_t pc = codeBase_ + i * 4;
    const std::uint32_t word = program.code[i];
    if (program.arch == Arch::Rv64) {
      const auto inst = rv64::decode(word);
      if (!inst) continue;
      const rv64::ImmKind imm = inst->info().imm;
      if (imm == rv64::ImmKind::B || imm == rv64::ImmKind::J) {
        mark(pc + static_cast<std::uint64_t>(inst->imm));
      }
    } else {
      const auto inst = a64::decode(word);
      if (!inst) continue;
      const a64::Cls cls = inst->info().cls;
      if (cls == a64::Cls::Branch26 || cls == a64::Cls::CondBranch ||
          cls == a64::Cls::CmpBranch || cls == a64::Cls::TestBranch) {
        mark(pc + static_cast<std::uint64_t>(inst->imm));
      }
    }
  }
}

std::int32_t FusionPass::kernelOf(const RetiredInst& inst) const {
  if (inst.staticIndex != RetiredInst::kNoStaticIndex &&
      inst.staticIndex < wordKernel_.size()) {
    return wordKernel_[inst.staticIndex];
  }
  for (const Region& region : regions_) {
    if (inst.pc >= region.begin && inst.pc < region.end) {
      return region.kernelIndex;
    }
  }
  return -1;
}

bool FusionPass::isBranchTarget(const RetiredInst& inst) const {
  if (inst.staticIndex != RetiredInst::kNoStaticIndex &&
      inst.staticIndex < branchTarget_.size()) {
    return branchTarget_[inst.staticIndex] != 0;
  }
  if (inst.pc >= codeBase_ && inst.pc < codeBase_ + codeWords_ * 4 &&
      (inst.pc & 3) == 0) {
    return branchTarget_[static_cast<std::size_t>((inst.pc - codeBase_) /
                                                  4)] != 0;
  }
  return false;
}

std::optional<FusionRule> FusionPass::match(const RetiredInst& a,
                                            const RetiredInst& b) const {
  // Pair preconditions shared by every rule: dynamic adjacency, same
  // kernel region (both outside every kernel also qualifies), and the
  // second half must not be enterable mid-pair via a branch.
  if (b.pc != a.pc + 4) return std::nullopt;
  if (kernelOf(a) != kernelOf(b)) return std::nullopt;
  if (isBranchTarget(b)) return std::nullopt;

  const std::uint32_t ea = a.encoding;
  const std::uint32_t eb = b.encoding;
  const auto matches = [&](FusionRule rule) -> bool {
    switch (rule) {
      case FusionRule::LoadPair:
        // Two same-width loads off the same (unmodified) base register,
        // dynamically adjacent in memory — the LDP idiom.
        return rvIsLoad(ea) && rvOpc(eb) == rvOpc(ea) &&
               rvFunct3(eb) == rvFunct3(ea) && rvRs1(eb) == rvRs1(ea) &&
               rvRd(ea) != rvRs1(ea) && a.loads.size() == 1 &&
               b.loads.size() == 1 && a.loads[0].size == b.loads[0].size &&
               b.loads[0].addr == a.loads[0].addr + a.loads[0].size;
      case FusionRule::IndexedLoad:
        // add rd, rs1, rs2 ; load rt, 0(rd) — the load consumes the
        // freshly formed address.
        return rvIsAdd(ea) && rvRd(ea) != 0 && rvIsLoad(eb) &&
               rvImmIZero(eb) && rvRs1(eb) == rvRd(ea);
      case FusionRule::IndexedStore:
        return rvIsAdd(ea) && rvRd(ea) != 0 && rvIsStore(eb) &&
               rvImmSZero(eb) && rvRs1(eb) == rvRd(ea);
      case FusionRule::LuiAddi:
        // lui rd, hi ; addi/addiw rt, rd, lo — 32-bit constant or address
        // formation (the RV64 backend emits addiw for sign-correct
        // materialisation, so both OP-IMM and OP-IMM-32 qualify).
        return rvOpc(ea) == 0x37 && rvRd(ea) != 0 &&
               (rvOpc(eb) == 0x13 || rvOpc(eb) == 0x1b) &&
               rvFunct3(eb) == 0 && rvRs1(eb) == rvRd(ea);
      case FusionRule::SlliAdd:
        // slli rd, rs, {1,2,3} ; add consuming rd — the Zba shNadd
        // shifted-index idiom (shift amounts beyond 3 have no fused
        // hardware analogue, so they stay unfused).
        return rvIsSlli(ea) && rvRd(ea) != 0 && rvShamt(ea) >= 1 &&
               rvShamt(ea) <= 3 && rvIsAdd(eb) &&
               (rvRs1(eb) == rvRd(ea) || rvRs2(eb) == rvRd(ea));
      case FusionRule::CmpBcc:
        // Flag-setting integer ALU op immediately consumed by a
        // conditional branch: cmp/cmn/tst/subs/adds/ands + b.cc.
        return !a.isBranch && a.group == InstGroup::IntSimple &&
               a.loads.empty() && a.stores.empty() &&
               contains(a.dsts, Reg::flags()) &&
               b.isBranch &&
               contains(b.srcs, Reg::flags());
      case FusionRule::AdrpAdd:
        return a64IsAdrp(ea) && a64IsAddImm(eb) && a64Rn(eb) == a64Rd(ea);
    }
    return false;
  };

  for (std::size_t i = 0; i < kFusionRuleCount; ++i) {
    const auto rule = static_cast<FusionRule>(i);
    if (!config_.enabled(rule)) continue;
    if (matches(rule) && mergeFits(a, b)) return rule;
  }
  return std::nullopt;
}

void FusionPass::emit(const RetiredInst& inst) { out_.push_back(inst); }

void FusionPass::emitFused(const RetiredInst& a, const RetiredInst& b,
                           FusionRule rule) {
  RetiredInst macro;
  macro.pc = a.pc;
  macro.encoding = a.encoding;
  macro.staticIndex = a.staticIndex;
  macro.group = fusedGroup(rule);

  // Merged dependence edges: the pair's external interface. The internal
  // edge (B reading what A wrote) disappears — that is the fusion win the
  // critical-path analyses measure.
  for (const Reg src : a.srcs) macro.srcs.push_back(src);
  for (const Reg src : b.srcs) {
    if (contains(a.dsts, src)) continue;
    if (contains(macro.srcs, src)) continue;
    macro.srcs.push_back(src);
  }
  for (const Reg dst : a.dsts) macro.dsts.push_back(dst);
  for (const Reg dst : b.dsts) {
    if (contains(macro.dsts, dst)) continue;
    macro.dsts.push_back(dst);
  }
  for (const MemAccess& load : a.loads) macro.loads.push_back(load);
  for (const MemAccess& load : b.loads) macro.loads.push_back(load);
  for (const MemAccess& store : a.stores) macro.stores.push_back(store);
  for (const MemAccess& store : b.stores) macro.stores.push_back(store);

  macro.isBranch = b.isBranch;
  macro.branchTaken = b.branchTaken;
  macro.branchTarget = b.branchTarget;

  ++pairsTotal_;
  ++pairsByRule_[static_cast<std::size_t>(rule)];
  const std::int32_t kernel = kernelOf(a);
  if (kernel >= 0) {
    KernelFusion& stats = kernels_[static_cast<std::size_t>(kernel)];
    ++stats.pairs;
    ++stats.byRule[static_cast<std::size_t>(rule)];
  } else {
    ++unattributedPairs_;
  }
  out_.push_back(macro);
}

void FusionPass::process(const RetiredInst& inst) {
  ++input_;
  if (!pending_) {
    pending_ = inst;
    return;
  }
  if (const std::optional<FusionRule> rule = match(*pending_, inst)) {
    emitFused(*pending_, inst, *rule);
    pending_.reset();
    return;
  }
  emit(*pending_);
  pending_ = inst;
}

void FusionPass::forward() {
  if (out_.empty()) return;
  std::span<const RetiredInst> all(out_.data(), out_.size());
  // Stay within the block-size contract downstream observers were written
  // against (a carried-over candidate can push one block past capacity).
  while (!all.empty()) {
    const std::size_t n = std::min(all.size(), kTraceBlockCapacity);
    for (TraceObserver* observer : downstream_) {
      observer->onRetireBlock(all.subspan(0, n));
    }
    all = all.subspan(n);
  }
  output_ += out_.size();
  out_.clear();
}

void FusionPass::onRetire(const RetiredInst& inst) {
  process(inst);
  forward();
}

void FusionPass::onRetireBlock(std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) process(inst);
  forward();
}

void FusionPass::flush() {
  if (pending_) {
    emit(*pending_);
    pending_.reset();
  }
  forward();
}

void FusionPass::onProgramEnd() {
  flush();
  for (TraceObserver* observer : downstream_) observer->onProgramEnd();
}

}  // namespace riscmp::uarch
