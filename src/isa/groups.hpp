// Instruction groups: the unit of classification for latency models and the
// out-of-order core's port assignments, mirroring SimEng's instruction-group
// mechanism (paper §5.1: "upon instruction decode each instruction is
// categorised and given the execution latency defined within the yaml file").
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace riscmp {

enum class InstGroup : std::uint8_t {
  IntSimple,  ///< add/sub/logic/shift/compare/move
  IntMul,     ///< integer multiply (and multiply-add)
  IntDiv,     ///< integer divide/remainder
  Branch,     ///< all control flow (conditional, unconditional, indirect)
  Load,       ///< memory reads, integer or FP destination
  Store,      ///< memory writes
  FpSimple,   ///< FP moves, abs/neg, sign injection, min/max
  FpAdd,      ///< FP add/sub
  FpMul,      ///< FP multiply
  FpFma,      ///< fused multiply-add family
  FpDiv,      ///< FP divide
  FpSqrt,     ///< FP square root
  FpCmp,      ///< FP compare
  FpCvt,      ///< FP<->int and FP<->FP conversions
  System,     ///< syscalls, fences, CSR accesses, hints
};

constexpr std::size_t kInstGroupCount = 15;

constexpr std::string_view instGroupName(InstGroup group) {
  constexpr std::array<std::string_view, kInstGroupCount> names = {
      "INT_SIMPLE", "INT_MUL", "INT_DIV", "BRANCH",  "LOAD",
      "STORE",      "FP_SIMPLE", "FP_ADD", "FP_MUL", "FP_FMA",
      "FP_DIV",     "FP_SQRT",  "FP_CMP",  "FP_CVT", "SYSTEM"};
  return names[static_cast<std::size_t>(group)];
}

/// Parse a group name as spelled in the microarchitecture YAML files.
std::optional<InstGroup> instGroupFromName(std::string_view name);

}  // namespace riscmp
