// Architecture identifiers for the two instruction sets under comparison.
#pragma once

#include <string_view>

namespace riscmp {

enum class Arch {
  AArch64,  ///< Armv8-a, scalar subset (the paper's -march=armv8-a+nosimd)
  Rv64,     ///< RISC-V rv64g (IMAFD, no compressed instructions)
};

constexpr std::string_view archName(Arch arch) {
  switch (arch) {
    case Arch::AArch64:
      return "AArch64";
    case Arch::Rv64:
      return "RISC-V";
  }
  return "?";
}

}  // namespace riscmp
