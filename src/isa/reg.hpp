// Architecture-neutral register identifiers.
//
// Both ISAs expose 31/32 general-purpose and 32 floating-point registers;
// AArch64 additionally has the NZCV condition flags, RISC-V the FCSR. The
// trace analyses index registers densely: [0,32) GP, [32,64) FP, 64 flags.
#pragma once

#include <cstdint>

namespace riscmp {

enum class RegClass : std::uint8_t {
  Gp = 0,     ///< integer register file (x0-x31 / X0-X30+SP)
  Fp = 1,     ///< floating-point register file (f0-f31 / D0-D31)
  Flags = 2,  ///< NZCV (AArch64) or FCSR flags (RISC-V)
};

struct Reg {
  RegClass cls = RegClass::Gp;
  std::uint8_t idx = 0;

  constexpr bool operator==(const Reg&) const = default;

  /// Dense index into the per-core dependency-depth array.
  [[nodiscard]] constexpr unsigned dense() const {
    switch (cls) {
      case RegClass::Gp:
        return idx;
      case RegClass::Fp:
        return 32u + idx;
      case RegClass::Flags:
        return 64u;
    }
    return 64u;
  }

  static constexpr unsigned kDenseCount = 65;

  static constexpr Reg gp(unsigned i) {
    return Reg{RegClass::Gp, static_cast<std::uint8_t>(i)};
  }
  static constexpr Reg fp(unsigned i) {
    return Reg{RegClass::Fp, static_cast<std::uint8_t>(i)};
  }
  static constexpr Reg flags() { return Reg{RegClass::Flags, 0}; }
};

}  // namespace riscmp
