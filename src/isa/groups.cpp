#include "isa/groups.hpp"

namespace riscmp {

std::optional<InstGroup> instGroupFromName(std::string_view name) {
  for (std::size_t i = 0; i < kInstGroupCount; ++i) {
    const auto group = static_cast<InstGroup>(i);
    if (instGroupName(group) == name) return group;
  }
  return std::nullopt;
}

}  // namespace riscmp
