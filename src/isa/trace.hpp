// The architecture-neutral dynamic-trace record retired by the emulation
// core, and the observer interface all analyses implement.
//
// The paper's four experiments (path length, critical path, scaled critical
// path, windowed critical path) are all pure functions of this record stream;
// implementing them as observers lets one simulation pass feed any number of
// analyses.
#pragma once

#include <cstdint>

#include "isa/groups.hpp"
#include "isa/reg.hpp"
#include "support/small_vector.hpp"

namespace riscmp {

struct MemAccess {
  std::uint64_t addr = 0;
  std::uint8_t size = 0;  ///< bytes (1, 2, 4, or 8)

  bool operator==(const MemAccess&) const = default;
};

/// One retired instruction. Reads of the architectural zero register
/// (RISC-V x0, AArch64 XZR) are omitted from `srcs` by the executors: they
/// carry no dependency, matching the paper's critical-path method (§4.1).
/// Writes to the zero register are likewise omitted from `dsts`.
struct RetiredInst {
  std::uint64_t pc = 0;
  std::uint32_t encoding = 0;
  InstGroup group = InstGroup::IntSimple;

  SmallVector<Reg, 5> srcs;
  SmallVector<Reg, 3> dsts;
  SmallVector<MemAccess, 2> loads;
  SmallVector<MemAccess, 2> stores;

  bool isBranch = false;
  bool branchTaken = false;
  std::uint64_t branchTarget = 0;
};

/// Threading contract: an observer instance belongs to exactly one Machine
/// (one experiment cell) at a time and is only called from the thread
/// driving that Machine's run(); implementations therefore need no locking.
/// Never attach one observer instance to Machines running on different
/// threads — the experiment engine (src/engine) constructs a fresh observer
/// set per cell instead. Observers that implement reset() may be reused
/// sequentially across runs on the same thread.
class TraceObserver {
 public:
  virtual ~TraceObserver() = default;
  virtual void onRetire(const RetiredInst& inst) = 0;
  /// Called once when the simulated program exits.
  virtual void onProgramEnd() {}
};

}  // namespace riscmp
