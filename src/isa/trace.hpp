// The architecture-neutral dynamic-trace record retired by the emulation
// core, and the observer interface all analyses implement.
//
// The paper's four experiments (path length, critical path, scaled critical
// path, windowed critical path) are all pure functions of this record stream;
// implementing them as observers lets one simulation pass feed any number of
// analyses.
//
// Delivery is block-batched (DESIGN.md §10): the core fills a reusable
// TraceBlock and hands it to each observer via onRetireBlock. Observers that
// only implement onRetire keep working — the default onRetireBlock loops —
// while hot observers override onRetireBlock to amortise the virtual call
// over kTraceBlockCapacity records.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/groups.hpp"
#include "isa/reg.hpp"
#include "support/small_vector.hpp"

namespace riscmp {

struct MemAccess {
  std::uint64_t addr = 0;
  std::uint8_t size = 0;  ///< bytes (1, 2, 4, or 8)

  bool operator==(const MemAccess&) const = default;
};

/// One retired instruction. Reads of the architectural zero register
/// (RISC-V x0, AArch64 XZR) are omitted from `srcs` by the executors: they
/// carry no dependency, matching the paper's critical-path method (§4.1).
/// Writes to the zero register are likewise omitted from `dsts`.
struct RetiredInst {
  /// `staticIndex` value for instructions executed outside the program's
  /// static code image (no static-metadata table entry exists for them).
  static constexpr std::uint32_t kNoStaticIndex = 0xffffffffu;

  std::uint64_t pc = 0;
  std::uint32_t encoding = 0;
  /// Index of this instruction's word in Program::code, stamped by the
  /// emulation core so observers can index per-static-instruction metadata
  /// tables (kernel attribution, group) in O(1) instead of searching by pc.
  std::uint32_t staticIndex = kNoStaticIndex;
  InstGroup group = InstGroup::IntSimple;

  SmallVector<Reg, 5> srcs;
  SmallVector<Reg, 3> dsts;
  SmallVector<MemAccess, 2> loads;
  SmallVector<MemAccess, 2> stores;

  bool isBranch = false;
  bool branchTaken = false;
  std::uint64_t branchTarget = 0;

  bool operator==(const RetiredInst&) const = default;

  /// Prepare this record for refill by the core: empty the operand lists
  /// (their inline storage is retained — no reconstruction) and clear the
  /// branch fields the executors only set when true. pc, encoding,
  /// staticIndex, and group are unconditionally overwritten every retire.
  void clearForReuse() {
    srcs.clear();
    dsts.clear();
    loads.clear();
    stores.clear();
    isBranch = false;
    branchTaken = false;
    branchTarget = 0;
  }
};

/// Retired-instruction records the core delivers per observer flush.
inline constexpr std::size_t kTraceBlockCapacity = 4096;

/// Fixed-capacity batch of retired-instruction records, reused in place by
/// the emulation core. next() hands out the slot after the committed prefix,
/// cleared for refill; commit() makes it visible to view(). A slot whose
/// instruction faults mid-execute is simply never committed, so a flushed
/// block only ever contains fully-retired instructions.
class TraceBlock {
 public:
  TraceBlock() : records_(kTraceBlockCapacity) {}

  [[nodiscard]] RetiredInst& next() {
    RetiredInst& slot = records_[size_];
    slot.clearForReuse();
    return slot;
  }
  void commit() { ++size_; }

  [[nodiscard]] bool full() const { return size_ == records_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::span<const RetiredInst> view() const {
    return {records_.data(), size_};
  }
  /// Forget the committed prefix (storage is retained). The span returned
  /// by view() stays valid until the next next() call.
  void reset() { size_ = 0; }

 private:
  std::vector<RetiredInst> records_;
  std::size_t size_ = 0;
};

/// Threading contract: an observer instance belongs to exactly one Machine
/// (one experiment cell) at a time and is only called from the thread
/// driving that Machine's run(); implementations therefore need no locking.
/// Never attach one observer instance to Machines running on different
/// threads — the experiment engine (src/engine) constructs a fresh observer
/// set per cell instead. Observers that implement reset() may be reused
/// sequentially across runs on the same thread.
///
/// Block delivery: the core calls onRetireBlock — on the same driving
/// thread — with up to kTraceBlockCapacity records at a time, flushing on
/// block-full, before every trap/syscall, before any fault propagates out
/// of run(), and at program end (before onProgramEnd). Records within and
/// across blocks arrive in exact retirement order; the span and the records
/// it references are only valid for the duration of the call. The default
/// onRetireBlock forwards record-by-record to onRetire, so per-instruction
/// observers need not know about blocks at all.
class TraceObserver {
 public:
  virtual ~TraceObserver() = default;
  virtual void onRetire(const RetiredInst& inst) = 0;
  virtual void onRetireBlock(std::span<const RetiredInst> block) {
    for (const RetiredInst& inst : block) onRetire(inst);
  }
  /// Called once when the simulated program exits.
  virtual void onProgramEnd() {}
};

}  // namespace riscmp
