#include "verify/boundary.hpp"

#include <ostream>

#include "support/fault.hpp"
#include "support/table.hpp"

namespace riscmp::verify {

FaultBoundary::FaultBoundary(std::ostream& out) : out_(out) {}

bool FaultBoundary::run(const std::string& cell,
                        const std::function<void()>& fn) {
  CellResult result;
  result.name = cell;
  try {
    fn();
    results_.push_back(std::move(result));
    return true;
  } catch (const Fault& fault) {
    result.ok = false;
    result.kind = std::string(faultKindName(fault.kind()));
    result.summary = fault.what();
    out_ << "\n[cell '" << cell << "' failed]\n" << fault.report() << "\n\n";
  } catch (const std::exception& e) {
    // Anything that is not a Fault escaped the taxonomy — still contain
    // it, but label it loudly so it reads as an engine bug.
    result.ok = false;
    result.kind = "unclassified";
    result.summary = e.what();
    out_ << "\n[cell '" << cell << "' failed: UNCLASSIFIED exception]\n  "
         << e.what() << "\n\n";
  }
  ++failures_;
  results_.push_back(std::move(result));
  return false;
}

void FaultBoundary::record(CellResult result) {
  if (!result.ok) ++failures_;
  results_.push_back(std::move(result));
}

int FaultBoundary::finish() {
  if (failures_ == 0) return 0;
  Table table({"cell", "status", "fault"});
  for (const CellResult& result : results_) {
    table.addRow({result.name, result.ok ? "ok" : "FAILED",
                  result.ok ? "" : result.kind + ": " + result.summary});
  }
  out_ << "\nFault-boundary summary: " << failures_ << "/" << results_.size()
       << " cells failed\n"
       << table << "\n";
  return 3;
}

}  // namespace riscmp::verify
