#include "verify/injector.hpp"

#include <cctype>

#include "support/fault.hpp"

namespace riscmp::verify {

std::uint32_t FaultInjector::corruptWord(std::uint32_t word, int maxBits) {
  const int bits = 1 + static_cast<int>(rng_.below(
                           static_cast<std::uint64_t>(maxBits)));
  std::uint32_t flipped = word;
  for (int i = 0; i < bits; ++i) {
    std::uint32_t mask;
    do {
      mask = 1u << rng_.below(32);
    } while ((flipped ^ word) & mask);  // distinct bits
    flipped ^= mask;
  }
  return flipped;
}

std::size_t FaultInjector::corruptCodeWord(Program& program, int maxBits) {
  if (program.code.empty()) {
    throw ValidationFault("cannot corrupt an empty code image");
  }
  const std::size_t index = rng_.below(program.code.size());
  program.code[index] = corruptWord(program.code[index], maxBits);
  return index;
}

void FaultInjector::corruptData(Program& program, int flips) {
  if (program.data.empty()) return;
  for (int i = 0; i < flips; ++i) {
    const std::size_t byte = rng_.below(program.data.size());
    program.data[byte] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
  }
}

std::string FaultInjector::corruptYaml(const std::string& text) {
  // Collect line extents so mutations can target a random line.
  std::vector<std::pair<std::size_t, std::size_t>> lines;  // (begin, length)
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      if (i > begin) lines.emplace_back(begin, i - begin);
      begin = i + 1;
    }
  }
  if (lines.empty()) return text;

  std::string out = text;
  const auto [lineBegin, lineLen] = lines[rng_.below(lines.size())];
  switch (rng_.below(5)) {
    case 0: {  // garble a digit into a letter (non-numeric latency)
      for (std::size_t i = lineBegin; i < lineBegin + lineLen; ++i) {
        if (std::isdigit(static_cast<unsigned char>(out[i]))) {
          out[i] = static_cast<char>('g' + rng_.below(8));
          return out;
        }
      }
      out.insert(lineBegin + lineLen, " !");
      return out;
    }
    case 1: {  // rename the key (unknown group / unknown key)
      out.insert(lineBegin, "zz");
      return out;
    }
    case 2: {  // drop the first colon (structural error)
      for (std::size_t i = lineBegin; i < lineBegin + lineLen; ++i) {
        if (out[i] == ':') {
          out.erase(i, 1);
          return out;
        }
      }
      return out;
    }
    case 3: {  // duplicate the line (duplicate-key error)
      out.insert(lineBegin, text.substr(lineBegin, lineLen) + "\n");
      return out;
    }
    default: {  // inject a tab indent (rejected by the parser)
      out.insert(lineBegin, "\t");
      return out;
    }
  }
}

}  // namespace riscmp::verify
