// Differential fault checker (ISSUE 1 tentpole, part 2).
//
// Every injected variant must leave the engine in exactly one of a small
// set of classified outcomes — never a crash, hang, or silent wrong answer:
//
//   * word-level   — decode → disassemble → re-assemble round-trips: a
//     corrupted word either decodes to another valid instruction (and its
//     disassembly re-assembles to an equivalent encoding), raises a
//     DecodeFault, or produces a Divergence report naming both sides.
//   * program-level — a corrupted program either runs to a clean exit whose
//     memory image matches the reference interpreter, terminates with a
//     classified Fault (decode/memory/trap/budget), or yields a Divergence
//     report. `Unclassified` means an unexpected exception escaped: always
//     a bug in the engine, and campaigns assert it never happens.
//   * config-level — a corrupted core-model YAML either still loads or is
//     rejected with a ConfigError.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "isa/arch.hpp"
#include "kgen/compile.hpp"
#include "verify/injector.hpp"

namespace riscmp::verify {

enum class OutcomeKind : std::uint8_t {
  ValidDecode,     ///< corrupted word decodes; round-trip agreed
  DecodeFault,     ///< decoder rejected the word
  CleanRun,        ///< program exited cleanly and matched the reference
  MemoryFault,     ///< classified wild access
  TrapFault,       ///< classified unhandled trap
  BudgetExceeded,  ///< hang guard fired (still classified)
  ConfigError,     ///< config rejected with provenance
  Divergence,      ///< classified mismatch, with a report naming both sides
  Unclassified,    ///< unexpected escape — an engine bug, campaigns fail
};
inline constexpr std::size_t kOutcomeKinds = 9;

std::string_view outcomeName(OutcomeKind kind);

struct Outcome {
  OutcomeKind kind = OutcomeKind::Unclassified;
  std::string detail;  ///< divergence/fault report (may be empty)
};

/// Tally of campaign outcomes, indexed by OutcomeKind.
struct CampaignStats {
  std::array<std::uint64_t, kOutcomeKinds> counts{};
  std::uint64_t total = 0;
  std::string firstUnclassified;  ///< detail of the first engine escape

  void record(const Outcome& outcome);
  [[nodiscard]] std::uint64_t count(OutcomeKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }
  /// True when no outcome escaped the taxonomy.
  [[nodiscard]] bool allClassified() const {
    return count(OutcomeKind::Unclassified) == 0;
  }
  [[nodiscard]] std::string summary() const;
};

/// Classify one (possibly corrupted) word: decode, disassemble, and
/// re-assemble. Never throws.
Outcome classifyWord(Arch arch, std::uint32_t word);

/// Corrupt one code word of the module compiled for (arch, era) and run it
/// under `budget` instructions; on a clean exit, compare every array
/// against the reference interpreter. Never throws.
Outcome runCorruptedProgram(const kgen::Module& module, Arch arch,
                            kgen::CompilerEra era, FaultInjector& injector,
                            std::uint64_t budget);

/// Word-level campaign: `rounds` corrupted variants of words drawn from
/// `corpus`, classified via classifyWord.
CampaignStats decodeCampaign(Arch arch, std::span<const std::uint32_t> corpus,
                             std::uint64_t seed, std::uint64_t rounds);

/// Program-level campaign over all four (ISA, era) configs of `module`.
CampaignStats execCampaign(const kgen::Module& module, std::uint64_t seed,
                           int roundsPerConfig, std::uint64_t budget);

/// Config-level campaign: `rounds` corrupted variants of `yamlText`, each
/// pushed through the YAML parser and CoreModel validation.
CampaignStats configCampaign(const std::string& yamlText, std::uint64_t seed,
                             int rounds);

}  // namespace riscmp::verify
