// Divergence minimizer (ISSUE 3 tentpole, part 2 support).
//
// Classic delta debugging over kgen IR: given a module and a predicate
// ("does this module still fail?"), repeatedly apply the smallest-step
// structural edits — drop a kernel, drop a statement, shrink a loop extent
// to 1, unwrap a loop whose body ignores its variable, replace an
// expression node by one of its children, drop unused declarations — and
// keep any edit after which the module still validates and the predicate
// still holds. The result is a local minimum: no single remaining edit
// preserves the failure.
//
// The predicate is a plain std::function so tests can minimize against
// synthetic failures ("contains a divide") and the oracle can minimize
// against real ones ("the backends still disagree with the interpreter").
#pragma once

#include <functional>

#include "kgen/ir.hpp"

namespace riscmp::verify::conformance {

/// True when the candidate module still exhibits the failure being
/// minimized. Candidates always pass Module::validate() before the
/// predicate runs; the predicate must treat its own exceptions (e.g. a
/// CompileError on a shrunk module) as "does not fail" by returning false.
using ShrinkPredicate = std::function<bool(const kgen::Module&)>;

/// IR operation count used to judge minimization: statements of every kind
/// (stores, scalar sets/accumulates, loops) plus binary/unary expression
/// nodes. Leaves (constants, loads, scalar reads) are free.
int opCount(const kgen::Module& module);

/// Minimize `module` under `stillFails` (which must hold for the input).
/// `maxAttempts` bounds the total number of predicate evaluations.
kgen::Module shrinkModule(kgen::Module module, const ShrinkPredicate& stillFails,
                          int maxAttempts = 2000);

}  // namespace riscmp::verify::conformance
