// Streaming trace invariant checker (ISSUE 3 tentpole, part 3).
//
// A TraceObserver that validates every dynamic trace record the emulation
// core retires, instruction by instruction:
//
//   * operands defined      — every source register was written earlier in
//                             the trace (or is architecturally defined at
//                             entry: the stack pointer). A read of a
//                             never-written register is a codegen or
//                             executor bug, not a program behaviour.
//   * memory inside arena   — every load/store record lies inside the
//                             machine's mapped memory arena and has a
//                             power-of-two size ≤ 8. The core would fault a
//                             wild access itself; this check proves the
//                             *trace record* is faithful to what executed.
//   * branch targets        — every taken branch lands 4-aligned inside the
//                             code image, and a branch retired inside a
//                             kernel region stays inside that kernel (kgen
//                             emits no cross-kernel control flow).
//   * retired count         — the checker's own count must agree with
//                             RunResult::instructions and with the
//                             path-length analysis (checkRetiredConsistency).
//
// A violation throws ValidationFault immediately, so through Machine::run
// it picks up the full MachineContext crash report and classifies as a
// Validation fault in any verify::FaultBoundary — never a crash. The
// checker is a plain observer: attach it to a Machine directly, or to an
// engine::runJobs cell via ExperimentEngine::simulate.
#pragma once

#include <bitset>
#include <cstdint>
#include <span>

#include "core/program.hpp"
#include "isa/trace.hpp"

namespace riscmp::verify::conformance {

class TraceInvariantChecker final : public TraceObserver {
 public:
  struct Options {
    bool checkOperandsDefined = true;
    bool checkMemoryBounds = true;
    bool checkBranchTargets = true;
  };

  struct Stats {
    std::uint64_t retired = 0;
    std::uint64_t operandChecks = 0;
    std::uint64_t memoryChecks = 0;
    std::uint64_t branchChecks = 0;
  };

  /// `arenaBase`/`arenaEnd` bound the machine's memory (Memory::base/end),
  /// captured before run(). Kernel regions and code bounds come from the
  /// program's symbol table.
  TraceInvariantChecker(const Program& program, std::uint64_t arenaBase,
                        std::uint64_t arenaEnd);
  TraceInvariantChecker(const Program& program, std::uint64_t arenaBase,
                        std::uint64_t arenaEnd, Options options);

  /// Mark an extra register as defined at entry (beyond the per-arch
  /// default: the ABI stack pointer). For hand-written test programs whose
  /// preconditions differ from kgen's.
  void defineRegister(Reg reg);

  /// Throws ValidationFault on the first violated invariant. Under block
  /// delivery the violation message still names the exact violating pc and
  /// retired index; the throw surfaces when the core flushes the block the
  /// record belongs to (block-full, trap/syscall, fault, or program end).
  void onRetire(const RetiredInst& inst) override;
  void onRetireBlock(std::span<const RetiredInst> block) override;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t retired() const { return stats_.retired; }

 private:
  void retireOne(const RetiredInst& inst);
  [[noreturn]] void violate(const RetiredInst& inst,
                            const std::string& what) const;

  const Program& program_;
  std::uint64_t arenaBase_;
  std::uint64_t arenaEnd_;
  Options options_;
  Stats stats_;
  std::bitset<Reg::kDenseCount> defined_;
};

/// Cross-checks the retired-instruction counts one simulation pass
/// produced: the machine's RunResult, the invariant checker's stream count,
/// and the path-length analysis total (whose per-kernel attribution must
/// also sum to it, `kernelSum + unattributed == total`). Throws
/// ValidationFault naming every disagreeing counter.
void checkRetiredConsistency(std::uint64_t runInstructions,
                             const TraceInvariantChecker& checker,
                             std::uint64_t pathLengthTotal,
                             std::uint64_t kernelSum,
                             std::uint64_t unattributed);

}  // namespace riscmp::verify::conformance
