// Conformance campaign driver (ISSUE 3 tentpole, assembly).
//
// Generates `count` random modules from a base seed (module i replays as
// `--seed base+i --count 1`), runs every module through the differential
// oracle on a worker pool (one engine::runJobs cell per module, compiling
// through the engine's CompileCache), and aggregates findings. A module
// whose oracle run diverges is minimized with the delta-debugging shrinker
// so the report shows the smallest failing IR, not a 100-op haystack.
//
// The per-module digest lines (digestText) are the golden-snapshot format:
// deterministic in the base seed alone — independent of --jobs, thread
// scheduling, and platform — because module generation is SplitMix64-driven
// and every digest is computed inside the module's own cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "verify/conformance/kernel_fuzzer.hpp"
#include "verify/conformance/oracle.hpp"

namespace riscmp::verify::conformance {

struct CampaignOptions {
  std::uint64_t seed = 2026;  ///< base seed; module i uses seed + i
  int count = 200;            ///< modules to generate
  unsigned jobs = 0;          ///< worker threads (0 = hardware concurrency)
  std::uint64_t budget = 200'000'000;  ///< per-run instruction budget
  bool shrink = true;  ///< minimize diverging modules for the report
  /// Replay every run with the macro-op FusionPass and assert identical
  /// architectural state (OracleOptions::fusion, ISSUE 8). Digest lines
  /// gain " fused=N pairs=M" fields, so fusion campaigns pin their own
  /// golden file.
  bool fusion = false;
  KernelFuzzer::Options fuzzer;
};

/// Everything one module's oracle run produced.
struct KernelOutcome {
  std::uint64_t seed = 0;  ///< replay seed for this module
  OracleReport report;
  /// kgen::dumpModule of the minimized failing module ("" unless the run
  /// diverged and shrinking is enabled).
  std::string minimized;
  int minimizedOps = 0;
};

struct CampaignResult {
  std::vector<KernelOutcome> outcomes;  ///< one per module, seed order
  engine::EngineStats engineStats;
  int divergences = 0;  ///< modules with at least one Divergence finding
  int violations = 0;   ///< modules with at least one InvariantViolation
  int faults = 0;       ///< modules with at least one Fault finding

  [[nodiscard]] bool clean() const {
    return divergences == 0 && violations == 0 && faults == 0;
  }

  /// Golden-snapshot text: one line per successful run,
  ///   seed=N config=rv64/gcc12 retired=N trace=... stores=... mem=... regs=...
  /// with 16-hex-digit digests; byte-identical for any --jobs value.
  [[nodiscard]] std::string digestText() const;

  /// One line for bench footers, e.g.
  /// "conformance: 200 kernels, 0 divergences, 0 violations, 0 faults".
  [[nodiscard]] std::string summary() const;
};

CampaignResult runCampaign(const CampaignOptions& options = {});

}  // namespace riscmp::verify::conformance
