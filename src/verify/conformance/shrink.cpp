#include "verify/conformance/shrink.hpp"

#include <utility>
#include <vector>

namespace riscmp::verify::conformance {

using kgen::Expr;
using kgen::ExprPtr;
using kgen::Kernel;
using kgen::Module;
using kgen::Stmt;

namespace {

int countExprOps(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::Bin:
      return 1 + countExprOps(*expr.lhs) + countExprOps(*expr.rhs);
    case Expr::Kind::Unary:
      return 1 + countExprOps(*expr.lhs);
    default:
      return 0;
  }
}

int countStmtOps(const Stmt& stmt) {
  int ops = 1;
  if (stmt.value) ops += countExprOps(*stmt.value);
  for (const Stmt& inner : stmt.body) ops += countStmtOps(inner);
  return ops;
}

bool exprUsesVar(const Expr& expr, const std::string& var) {
  if (expr.kind == Expr::Kind::LoadArr) {
    for (const auto& term : expr.index.terms) {
      if (term.var == var) return true;
    }
    return false;
  }
  if (expr.lhs && exprUsesVar(*expr.lhs, var)) return true;
  if (expr.rhs && exprUsesVar(*expr.rhs, var)) return true;
  return false;
}

bool stmtUsesVar(const Stmt& stmt, const std::string& var) {
  for (const auto& term : stmt.index.terms) {
    if (term.var == var) return true;
  }
  if (stmt.value && exprUsesVar(*stmt.value, var)) return true;
  for (const Stmt& inner : stmt.body) {
    if (stmtUsesVar(inner, var)) return true;
  }
  return false;
}

/// Clone `expr` with every affine-index term over `var` removed (the
/// substitution var := 0). Unchanged subtrees are shared, not copied.
ExprPtr exprWithoutVar(const ExprPtr& expr, const std::string& var) {
  if (!expr || !exprUsesVar(*expr, var)) return expr;
  auto clone = std::make_shared<Expr>(*expr);
  std::erase_if(clone->index.terms,
                [&](const kgen::AffineIdx::Term& t) { return t.var == var; });
  clone->lhs = exprWithoutVar(expr->lhs, var);
  clone->rhs = exprWithoutVar(expr->rhs, var);
  return clone;
}

Stmt stmtWithoutVar(const Stmt& stmt, const std::string& var) {
  Stmt out = stmt;
  std::erase_if(out.index.terms,
                [&](const kgen::AffineIdx::Term& t) { return t.var == var; });
  out.value = exprWithoutVar(stmt.value, var);
  out.body.clear();
  for (const Stmt& inner : stmt.body) {
    out.body.push_back(stmtWithoutVar(inner, var));
  }
  return out;
}

/// Emit every single-step simplification of `expr` (replace a binary or
/// unary node by one of its children), rebuilding the path to the root.
void exprEdits(const ExprPtr& expr,
               const std::function<void(ExprPtr)>& emit) {
  if (!expr) return;
  if (expr->kind == Expr::Kind::Bin) {
    emit(expr->lhs);
    emit(expr->rhs);
    exprEdits(expr->lhs, [&](ExprPtr lhs) {
      emit(kgen::binary(expr->bin, std::move(lhs), expr->rhs));
    });
    exprEdits(expr->rhs, [&](ExprPtr rhs) {
      emit(kgen::binary(expr->bin, expr->lhs, std::move(rhs)));
    });
  } else if (expr->kind == Expr::Kind::Unary) {
    emit(expr->lhs);
    exprEdits(expr->lhs, [&](ExprPtr operand) {
      emit(kgen::unary(expr->un, std::move(operand)));
    });
  }
}

/// Emit every single-step edit of a statement list: drop a statement,
/// shrink a loop extent to 1, unwrap a loop whose body ignores its
/// variable, simplify an expression, or recurse into a nested loop body.
void stmtEdits(const std::vector<Stmt>& body,
               const std::function<void(std::vector<Stmt>)>& emit) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    const Stmt& stmt = body[i];

    {  // Drop statement i.
      std::vector<Stmt> edited = body;
      edited.erase(edited.begin() + static_cast<std::ptrdiff_t>(i));
      emit(std::move(edited));
    }

    if (stmt.kind == Stmt::Kind::Loop) {
      if (stmt.extent > 1) {
        std::vector<Stmt> edited = body;
        edited[i].extent = 1;
        emit(std::move(edited));
      }
      bool bodyUsesVar = false;
      for (const Stmt& inner : stmt.body) {
        if (stmtUsesVar(inner, stmt.loopVar)) bodyUsesVar = true;
      }
      if (!bodyUsesVar) {  // Unwrap: splice the body in place of the loop.
        std::vector<Stmt> edited(body.begin(),
                                 body.begin() + static_cast<std::ptrdiff_t>(i));
        edited.insert(edited.end(), stmt.body.begin(), stmt.body.end());
        edited.insert(edited.end(),
                      body.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                      body.end());
        emit(std::move(edited));
      } else if (stmt.extent == 1) {
        // A one-trip loop's variable is always zero: substitute it away
        // (drop its affine-index terms) and splice the body in place.
        std::vector<Stmt> edited(body.begin(),
                                 body.begin() + static_cast<std::ptrdiff_t>(i));
        for (const Stmt& inner : stmt.body) {
          edited.push_back(stmtWithoutVar(inner, stmt.loopVar));
        }
        edited.insert(edited.end(),
                      body.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                      body.end());
        emit(std::move(edited));
      }
      stmtEdits(stmt.body, [&](std::vector<Stmt> inner) {
        std::vector<Stmt> edited = body;
        edited[i].body = std::move(inner);
        emit(std::move(edited));
      });
    } else if (stmt.value) {
      exprEdits(stmt.value, [&](ExprPtr value) {
        std::vector<Stmt> edited = body;
        edited[i].value = std::move(value);
        emit(std::move(edited));
      });
    }
  }
}

bool moduleUsesArray(const Module& module, const std::string& name) {
  bool used = false;
  const std::function<void(const Expr&)> scanExpr = [&](const Expr& expr) {
    if (expr.kind == Expr::Kind::LoadArr && expr.name == name) used = true;
    if (expr.lhs) scanExpr(*expr.lhs);
    if (expr.rhs) scanExpr(*expr.rhs);
  };
  const std::function<void(const Stmt&)> scanStmt = [&](const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::StoreArr && stmt.target == name) used = true;
    if (stmt.value) scanExpr(*stmt.value);
    for (const Stmt& inner : stmt.body) scanStmt(inner);
  };
  for (const Kernel& kernel : module.kernels) {
    for (const Stmt& stmt : kernel.body) scanStmt(stmt);
  }
  return used;
}

bool moduleUsesScalar(const Module& module, const std::string& name) {
  bool used = false;
  const std::function<void(const Expr&)> scanExpr = [&](const Expr& expr) {
    if (expr.kind == Expr::Kind::LoadScalar && expr.name == name) used = true;
    if (expr.lhs) scanExpr(*expr.lhs);
    if (expr.rhs) scanExpr(*expr.rhs);
  };
  const std::function<void(const Stmt&)> scanStmt = [&](const Stmt& stmt) {
    if ((stmt.kind == Stmt::Kind::SetScalar ||
         stmt.kind == Stmt::Kind::AccumScalar) &&
        stmt.target == name) {
      used = true;
    }
    if (stmt.value) scanExpr(*stmt.value);
    for (const Stmt& inner : stmt.body) scanStmt(inner);
  };
  for (const Kernel& kernel : module.kernels) {
    for (const Stmt& stmt : kernel.body) scanStmt(stmt);
  }
  return used;
}

/// All single-step edits of `module`, biggest cuts first (kernels, then
/// statements/loops/expressions, then unused declarations).
std::vector<Module> candidates(const Module& module) {
  std::vector<Module> out;

  if (module.kernels.size() > 1) {
    for (std::size_t k = 0; k < module.kernels.size(); ++k) {
      Module edited = module;
      edited.kernels.erase(edited.kernels.begin() +
                           static_cast<std::ptrdiff_t>(k));
      out.push_back(std::move(edited));
    }
  }

  for (std::size_t k = 0; k < module.kernels.size(); ++k) {
    stmtEdits(module.kernels[k].body, [&](std::vector<Stmt> body) {
      Module edited = module;
      edited.kernels[k].body = std::move(body);
      out.push_back(std::move(edited));
    });
  }

  for (std::size_t a = 0; a < module.arrays.size(); ++a) {
    if (moduleUsesArray(module, module.arrays[a].name)) continue;
    Module edited = module;
    edited.arrays.erase(edited.arrays.begin() +
                        static_cast<std::ptrdiff_t>(a));
    out.push_back(std::move(edited));
  }
  for (std::size_t s = 0; s < module.scalars.size(); ++s) {
    if (moduleUsesScalar(module, module.scalars[s].name)) continue;
    Module edited = module;
    edited.scalars.erase(edited.scalars.begin() +
                         static_cast<std::ptrdiff_t>(s));
    out.push_back(std::move(edited));
  }
  return out;
}

}  // namespace

int opCount(const Module& module) {
  int ops = 0;
  for (const Kernel& kernel : module.kernels) {
    for (const Stmt& stmt : kernel.body) ops += countStmtOps(stmt);
  }
  return ops;
}

Module shrinkModule(Module module, const ShrinkPredicate& stillFails,
                    int maxAttempts) {
  int attempts = 0;
  bool progress = true;
  while (progress && attempts < maxAttempts) {
    progress = false;
    for (Module& candidate : candidates(module)) {
      if (++attempts > maxAttempts) break;
      try {
        candidate.validate();
      } catch (const std::exception&) {
        continue;  // ill-formed edit; try the next one
      }
      bool fails = false;
      try {
        fails = stillFails(candidate);
      } catch (const std::exception&) {
        fails = false;  // a predicate error never counts as a repro
      }
      if (fails) {
        module = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return module;
}

}  // namespace riscmp::verify::conformance
