#include "verify/conformance/campaign.hpp"

#include <iomanip>
#include <sstream>
#include <utility>

#include "kgen/dump.hpp"
#include "verify/conformance/shrink.hpp"

namespace riscmp::verify::conformance {

namespace {

std::string hex16(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

/// Replays a candidate module through a plain (cache-free) oracle run and
/// reports whether it still fails. Used as the shrink predicate; compile
/// errors on shrunk modules surface as Fault findings, which do not count.
bool oracleStillFails(const kgen::Module& module, std::uint64_t budget,
                      bool fusion) {
  OracleOptions options;
  options.budget = budget;
  options.fusion = fusion;
  const OracleReport report = runOracle(module, options);
  return report.hasDivergence() || report.hasViolation();
}

}  // namespace

std::string CampaignResult::digestText() const {
  std::ostringstream out;
  for (const KernelOutcome& outcome : outcomes) {
    for (const RunDigest& run : outcome.report.runs) {
      out << "seed=" << outcome.seed << " config=" << run.config
          << " retired=" << run.retired << " trace=" << hex16(run.traceDigest)
          << " stores=" << hex16(run.storeDigest)
          << " mem=" << hex16(run.memoryDigest)
          << " regs=" << hex16(run.registerDigest);
      if (run.fused) {
        out << " fused=" << run.fusedRetired << " pairs=" << run.fusionPairs;
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string CampaignResult::summary() const {
  std::ostringstream out;
  out << "conformance: " << outcomes.size() << " kernels, " << divergences
      << " divergences, " << violations << " violations, " << faults
      << " faults";
  return out.str();
}

CampaignResult runCampaign(const CampaignOptions& options) {
  // Module generation is sequential and seed-addressed so the module set —
  // and therefore every digest — is independent of the worker count.
  std::vector<kgen::Module> modules;
  modules.reserve(static_cast<std::size_t>(options.count));
  for (int i = 0; i < options.count; ++i) {
    KernelFuzzer fuzzer(options.seed + static_cast<std::uint64_t>(i),
                        options.fuzzer);
    modules.push_back(fuzzer.generate());
  }

  engine::EngineOptions engineOptions;
  engineOptions.jobs = options.jobs;
  engineOptions.budget = options.budget;
  engine::ExperimentEngine engine(engineOptions);

  CampaignResult result;
  result.outcomes.resize(modules.size());

  std::vector<engine::ExperimentEngine::RawJob> jobs;
  jobs.reserve(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    engine::ExperimentEngine::RawJob job;
    job.name = "conformance/seed=" +
               std::to_string(options.seed + static_cast<std::uint64_t>(i));
    job.run = [&, i](engine::ExperimentEngine::CellContext& context) {
      KernelOutcome& outcome = result.outcomes[i];
      outcome.seed = options.seed + static_cast<std::uint64_t>(i);

      OracleOptions oracleOptions;
      oracleOptions.budget = options.budget;
      oracleOptions.fusion = options.fusion;
      oracleOptions.compileFn = [&context](const kgen::Module& module,
                                           const OracleConfig& config) {
        return context.engine.compile(module,
                                      engine::Config{config.arch, config.era});
      };
      outcome.report = runOracle(modules[i], oracleOptions);

      if (options.shrink &&
          (outcome.report.hasDivergence() || outcome.report.hasViolation())) {
        const kgen::Module minimized = shrinkModule(
            modules[i],
            [&](const kgen::Module& candidate) {
              return oracleStillFails(candidate, options.budget,
                                      options.fusion);
            });
        outcome.minimized = kgen::dumpModule(minimized);
        outcome.minimizedOps = opCount(minimized);
      }
    };
    jobs.push_back(std::move(job));
  }

  engine.runJobs(jobs);
  result.engineStats = engine.stats();

  for (const KernelOutcome& outcome : result.outcomes) {
    if (outcome.report.hasDivergence()) ++result.divergences;
    if (outcome.report.hasViolation()) ++result.violations;
    for (const Finding& finding : outcome.report.findings) {
      if (finding.kind == Finding::Kind::Fault) {
        ++result.faults;
        break;
      }
    }
  }
  return result;
}

}  // namespace riscmp::verify::conformance
