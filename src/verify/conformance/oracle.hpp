// Differential conformance oracle (ISSUE 3 tentpole, part 2).
//
// Runs one kgen module through the reference interpreter (which defines the
// IR's semantics) and through Machine::run on every ISA × compiler-era
// configuration, then cross-checks:
//
//   * final arrays and scalars — every simulated double equals the
//     interpreter's bit-for-bit (== , except NaN==NaN passes), read back
//     from simulated memory at the compiled layout addresses;
//   * store streams — the flattened per-kernel (addr, size) store sequence
//     must be identical across all four configurations: ModuleLayout
//     addresses are module-derived only, both backends spill written
//     scalars in first-write order, and array stores follow IR statement
//     order, so any difference is a codegen or executor bug (flattening
//     keeps the comparison valid if a backend ever merges store pairs);
//   * trace invariants — every run streams through a TraceInvariantChecker
//     and a retired-count consistency check against the path-length
//     analysis.
//
// Each successful run also yields four FNV-1a digests (trace records, store
// stream, final data segment, final register file). Register files are
// never compared across configurations — allocation differs by design —
// but the digests pin each configuration's end state for the golden
// snapshots and the --jobs invariance check.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/arch.hpp"
#include "kgen/compile.hpp"
#include "kgen/ir.hpp"

namespace riscmp::verify::conformance {

/// One ISA × compiler-era configuration under test.
struct OracleConfig {
  Arch arch = Arch::Rv64;
  kgen::CompilerEra era = kgen::CompilerEra::Gcc12;
};

/// All four configurations, in the paper's column order.
std::vector<OracleConfig> allConfigs();

/// Stable short label, e.g. "rv64/gcc12" — used in findings, digest lines,
/// and the golden snapshot format.
std::string configLabel(const OracleConfig& config);

/// Compilation hook so the campaign can route through the engine's
/// CompileCache (and tests can inject corrupted compilations). The default
/// wraps kgen::compile.
using CompileFn = std::function<std::shared_ptr<const kgen::Compiled>(
    const kgen::Module&, const OracleConfig&)>;

struct Finding {
  enum class Kind {
    Divergence,          ///< simulated state disagrees with the oracle
    InvariantViolation,  ///< a trace invariant or counter check failed
    Fault,               ///< the run faulted (decode, memory, budget, ...)
  };
  Kind kind = Kind::Divergence;
  std::string config;  ///< configLabel of the offending run
  std::string detail;  ///< one-line description
};

/// Digest record for one successful run.
struct RunDigest {
  std::string config;
  std::uint64_t retired = 0;
  std::uint64_t traceDigest = 0;     ///< every RetiredInst field, in order
  std::uint64_t storeDigest = 0;     ///< flattened (kernel, addr, size) stream
  std::uint64_t memoryDigest = 0;    ///< final data+bss segment bytes
  std::uint64_t registerDigest = 0;  ///< final (name, value) register image
  /// Fusion cross-check results (OracleOptions::fusion). `fused` flags that
  /// the fusion-enabled replay ran clean; its macro-op count and pair count
  /// extend the golden digest line (ISSUE 8).
  bool fused = false;
  std::uint64_t fusedRetired = 0;  ///< macro-op stream length
  std::uint64_t fusionPairs = 0;   ///< pairs fused across all rules
};

struct OracleReport {
  std::vector<Finding> findings;
  std::vector<RunDigest> runs;  ///< successful runs only, config order

  [[nodiscard]] bool ok() const { return findings.empty(); }
  [[nodiscard]] bool hasDivergence() const;
  [[nodiscard]] bool hasViolation() const;

  /// Multi-line rendering of every finding ("" when ok()).
  [[nodiscard]] std::string summary() const;
};

struct OracleOptions {
  /// Per-run instruction budget (0 = unlimited). Generated modules retire
  /// well under 10^5 instructions; the default only guards hangs.
  std::uint64_t budget = 200'000'000;
  /// Attach the TraceInvariantChecker + retired-count consistency check.
  bool checkInvariants = true;
  /// Replay each successful run with the ISSUE 8 macro-op FusionPass
  /// attached (all rules legal for the config's ISA) and assert that
  /// architectural state — retired count, unfused trace, store stream,
  /// final memory, final registers — is identical to the fusion-off run:
  /// fusion is an analysis-layer transform and must never change
  /// semantics. Divergences become findings; clean replays stamp the
  /// fused/pairs fields of the run's digest.
  bool fusion = false;
  /// Configurations to run; empty = allConfigs().
  std::vector<OracleConfig> configs;
  /// Compilation hook; null = kgen::compile.
  CompileFn compileFn;
};

/// Run the full differential comparison for one module. Never throws for
/// simulated-program failures — they become findings; only a broken module
/// (failing Module::validate) or an out-of-memory propagates.
OracleReport runOracle(const kgen::Module& module,
                       const OracleOptions& options = {});

}  // namespace riscmp::verify::conformance
