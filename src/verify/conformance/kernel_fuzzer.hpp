// Seeded random IR kernel generator (ISSUE 3 tentpole, part 1).
//
// Emits well-formed kgen modules that exercise the whole IR surface the
// paper's workloads touch: every binary op (including the FMA-contractible
// a*b±c shapes both backends fuse), every unary op, array loads/stores with
// constant offsets and non-unit strides, row-major 2-D addressing, scalar
// set/accumulate reduction chains, flat and nested counted loops (extents
// down to 1), and zero- as well as value-initialised arrays. Every module
// passes Module::validate() and compiles under both ISAs and both compiler
// eras, so the differential oracle can compare all four configurations
// against the reference interpreter.
//
// Determinism contract: all randomness comes from a SplitMix64 stream — the
// same seed always produces the byte-identical module, on every platform
// (no std::uniform_int_distribution, whose mapping is implementation-
// defined). The conformance golden digests depend on this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kgen/ir.hpp"
#include "verify/injector.hpp"  // SplitMix64

namespace riscmp::verify::conformance {

class KernelFuzzer {
 public:
  struct Options {
    int maxKernels = 3;  ///< kernels per module (at least 1)
    int maxArrays = 4;   ///< arrays per module (at least 2)
    int maxScalars = 3;  ///< scalars per module (at least 1)
    int maxLoops = 2;    ///< top-level loop nests per kernel
    int maxStmts = 3;    ///< statements per loop body
    int exprDepth = 3;   ///< maximum expression-tree depth
  };

  explicit KernelFuzzer(std::uint64_t seed);
  KernelFuzzer(std::uint64_t seed, Options options);

  /// Generate one module. Repeated calls continue the stream (distinct
  /// modules); construct a fresh fuzzer to replay a seed.
  kgen::Module generate();

 private:
  int pick(int lo, int hi);  ///< uniform in [lo, hi]
  bool chance(int percent);
  double value();
  const std::string& anyArray();
  const std::string& anyScalar();

  kgen::Stmt makeLoopNest(int ordinal);
  kgen::Stmt makeStmt(const kgen::AffineIdx& index, int maxOffset);
  kgen::ExprPtr makeExpr(const kgen::AffineIdx& index, int depth,
                         int maxOffset);

  SplitMix64 rng_;
  Options options_;
  std::vector<std::string> arrays_;
  std::vector<std::string> scalars_;
};

}  // namespace riscmp::verify::conformance
