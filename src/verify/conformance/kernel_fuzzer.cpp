#include "verify/conformance/kernel_fuzzer.hpp"

#include <utility>

namespace riscmp::verify::conformance {

using namespace riscmp::kgen;

namespace {

/// Every array is 64 elements: large enough for the deepest loop shape the
/// fuzzer emits (extent 40 + offset 7, or a 6x6 tile + offset 7), small
/// enough that a full campaign's memory images stay cheap to hash.
constexpr std::int64_t kArrayElems = 64;
constexpr int kMaxOffset = 7;

}  // namespace

KernelFuzzer::KernelFuzzer(std::uint64_t seed) : KernelFuzzer(seed, Options{}) {}

KernelFuzzer::KernelFuzzer(std::uint64_t seed, Options options)
    : rng_(seed), options_(options) {}

int KernelFuzzer::pick(int lo, int hi) {
  return lo + static_cast<int>(rng_.below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool KernelFuzzer::chance(int percent) { return pick(1, 100) <= percent; }

double KernelFuzzer::value() {
  // Exactly-representable multiples of 1/4 (offset by 1/8 so no value is
  // zero): real arithmetic without accumulation blow-ups, and bit-stable
  // across every platform.
  return pick(-16, 16) * 0.25 + 0.125;
}

const std::string& KernelFuzzer::anyArray() {
  return arrays_[static_cast<std::size_t>(pick(0, static_cast<int>(arrays_.size()) - 1))];
}

const std::string& KernelFuzzer::anyScalar() {
  return scalars_[static_cast<std::size_t>(pick(0, static_cast<int>(scalars_.size()) - 1))];
}

Module KernelFuzzer::generate() {
  arrays_.clear();
  scalars_.clear();

  Module module;
  module.name = "conformance";

  const int arrayCount = pick(2, options_.maxArrays);
  for (int i = 0; i < arrayCount; ++i) {
    ArrayDecl& array = module.array("a" + std::to_string(i), kArrayElems);
    // Most arrays carry data; some stay zero-initialised to exercise the
    // bss-like path (loads of 0.0, stores into fresh memory).
    if (chance(75)) {
      array.init.resize(kArrayElems);
      for (double& v : array.init) v = value();
    }
    arrays_.push_back(array.name);
  }

  const int scalarCount = pick(1, options_.maxScalars);
  for (int i = 0; i < scalarCount; ++i) {
    module.scalarInit("s" + std::to_string(i), value());
    scalars_.push_back("s" + std::to_string(i));
  }

  const int kernelCount = pick(1, options_.maxKernels);
  for (int k = 0; k < kernelCount; ++k) {
    Kernel& kernel = module.kernel("k" + std::to_string(k));
    const int loops = pick(1, options_.maxLoops);
    for (int l = 0; l < loops; ++l) {
      kernel.body.push_back(makeLoopNest(l));
    }
  }
  return module;
}

Stmt KernelFuzzer::makeLoopNest(int ordinal) {
  const std::string suffix = std::to_string(ordinal);
  switch (pick(0, 3)) {
    case 0: {
      // Row-major 2-D tile: y*cols + x addressing (the stencil shape).
      const std::int64_t rows = pick(4, 6);
      const std::int64_t cols = pick(5, 6);
      std::vector<Stmt> inner;
      const int stmts = pick(1, 2);
      for (int s = 0; s < stmts; ++s) {
        inner.push_back(
            makeStmt(idx2("y" + suffix, cols, "x" + suffix), kMaxOffset));
      }
      return loop("y" + suffix, rows,
                  {loop("x" + suffix, cols, std::move(inner))});
    }
    case 1: {
      // Strided flat loop: i*2 addressing (every second element).
      std::vector<Stmt> body;
      const int stmts = pick(1, options_.maxStmts);
      for (int s = 0; s < stmts; ++s) {
        body.push_back(makeStmt(idx("i" + suffix, 2), kMaxOffset));
      }
      return loop("i" + suffix, 20, std::move(body));
    }
    case 2: {
      // Degenerate extents (1 and tiny): the loop-exit idioms' edge cases.
      std::vector<Stmt> body;
      const int stmts = pick(1, options_.maxStmts);
      for (int s = 0; s < stmts; ++s) {
        body.push_back(makeStmt(idx("i" + suffix), kMaxOffset));
      }
      return loop("i" + suffix, pick(0, 1) == 0 ? 1 : 5, std::move(body));
    }
    default: {
      // The common unit-stride streaming loop.
      std::vector<Stmt> body;
      const int stmts = pick(1, options_.maxStmts);
      for (int s = 0; s < stmts; ++s) {
        body.push_back(makeStmt(idx("i" + suffix), kMaxOffset));
      }
      return loop("i" + suffix, pick(0, 1) == 0 ? 17 : 40, std::move(body));
    }
  }
}

Stmt KernelFuzzer::makeStmt(const AffineIdx& index, int maxOffset) {
  switch (pick(0, 3)) {
    case 0:
      return storeArr(anyArray(), index,
                      makeExpr(index, options_.exprDepth, maxOffset));
    case 1:
      // Serial reduction chain (the paper's dot/sum kernels).
      return accumScalar(anyScalar(),
                         makeExpr(index, options_.exprDepth - 1, maxOffset));
    case 2:
      return setScalar(anyScalar(),
                       makeExpr(index, options_.exprDepth - 1, maxOffset));
    default:
      // Offset store: exercises the displacement side of both ISAs'
      // addressing modes.
      return storeArr(anyArray(), index + pick(0, maxOffset),
                      makeExpr(index, options_.exprDepth, maxOffset));
  }
}

ExprPtr KernelFuzzer::makeExpr(const AffineIdx& index, int depth,
                               int maxOffset) {
  if (depth <= 0 || chance(25)) {
    switch (pick(0, 2)) {
      case 0:
        return cnst(value());
      case 1:
        return scalar(anyScalar());
      default:
        return load(anyArray(), index + pick(0, maxOffset));
    }
  }
  const auto sub = [&] { return makeExpr(index, depth - 1, maxOffset); };
  switch (pick(0, 9)) {
    case 0:
      return add(sub(), sub());
    case 1:
      return kgen::sub(sub(), sub());
    case 2:
      return mul(sub(), sub());
    case 3:
      // Guarded divide: |x| + 1.5 keeps the denominator away from zero.
      return divide(sub(), add(fabs(sub()), cnst(1.5)));
    case 4:
      return fmin(sub(), sub());
    case 5:
      return fmax(sub(), sub());
    case 6:
      return neg(sub());
    case 7:
      // Guarded sqrt: |x| + 0.25 keeps the operand positive.
      return fsqrt(add(fabs(sub()), cnst(0.25)));
    case 8:
      // FMA-contractible a*b + c: both backends fuse this shape, and the
      // interpreter must apply the identical contraction.
      return add(mul(sub(), sub()), sub());
    default:
      // FMA-contractible a*b - c.
      return kgen::sub(mul(sub(), sub()), sub());
  }
}

}  // namespace riscmp::verify::conformance
