#include "verify/conformance/oracle.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "analysis/path_length.hpp"
#include "core/machine.hpp"
#include "kgen/interp.hpp"
#include "support/fault.hpp"
#include "uarch/fusion/fusion.hpp"
#include "verify/conformance/invariant_checker.hpp"

namespace riscmp::verify::conformance {

namespace {

/// FNV-1a 64-bit. Stable everywhere; the golden snapshots depend on it.
struct Fnv64 {
  std::uint64_t h = 14695981039346656037ull;

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void u8(std::uint8_t v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    bytes(s.data(), s.size());
    u8(0);  // delimit so ("ab","c") != ("a","bc")
  }
};

/// One store record, attributed to the enclosing kernel ("" for stores
/// outside every kernel region, i.e. the epilogue scalar spills).
struct StoreRec {
  std::string kernel;
  std::uint64_t addr = 0;
  std::uint8_t size = 0;

  bool operator==(const StoreRec&) const = default;
};

/// Streams the trace into the trace digest and the flattened store stream.
class TraceRecorder final : public TraceObserver {
 public:
  explicit TraceRecorder(const Program& program) : program_(program) {}

  void onRetireBlock(std::span<const RetiredInst> block) override {
    for (const RetiredInst& inst : block) onRetire(inst);
  }

  void onRetire(const RetiredInst& inst) override {
    digest_.u64(inst.pc);
    digest_.u64(inst.encoding);
    digest_.u8(static_cast<std::uint8_t>(inst.group));
    digest_.u8(static_cast<std::uint8_t>(inst.srcs.size()));
    for (const Reg src : inst.srcs) digest_.u8(src.dense());
    digest_.u8(static_cast<std::uint8_t>(inst.dsts.size()));
    for (const Reg dst : inst.dsts) digest_.u8(dst.dense());
    for (const MemAccess& load : inst.loads) {
      digest_.u64(load.addr);
      digest_.u8(load.size);
    }
    const Symbol* kernel =
        inst.stores.empty() ? nullptr : program_.kernelAt(inst.pc);
    for (const MemAccess& store : inst.stores) {
      digest_.u64(store.addr);
      digest_.u8(store.size);
      stores_.push_back(
          StoreRec{kernel != nullptr ? kernel->name : std::string(),
                   store.addr, store.size});
    }
    if (inst.isBranch) {
      digest_.u8(inst.branchTaken ? 2 : 1);
      digest_.u64(inst.branchTarget);
    }
  }

  [[nodiscard]] std::uint64_t traceDigest() const { return digest_.h; }
  [[nodiscard]] const std::vector<StoreRec>& stores() const { return stores_; }

  [[nodiscard]] std::uint64_t storeDigest() const {
    Fnv64 digest;
    for (const StoreRec& store : stores_) {
      digest.str(store.kernel);
      digest.u64(store.addr);
      digest.u8(store.size);
    }
    return digest.h;
  }

 private:
  const Program& program_;
  Fnv64 digest_;
  std::vector<StoreRec> stores_;
};

/// Bit-exact double comparison where NaN == NaN (the rule the existing
/// workload validation uses): the backends and the interpreter contract FMA
/// identically, so anything weaker would hide real divergences.
bool sameValue(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

std::string describeStore(const StoreRec& store) {
  std::ostringstream out;
  out << (store.kernel.empty() ? std::string("<outside kernels>")
                               : store.kernel)
      << " " << fault_detail::hexAddr(store.addr) << " size "
      << static_cast<int>(store.size);
  return out.str();
}

std::uint64_t memoryImageDigest(const Program& program, Machine& machine) {
  const std::uint64_t dataEnd = program.dataBase + program.data.size();
  const std::uint64_t bssEnd = program.bssBase + program.bssSize;
  const std::uint64_t end = bssEnd > dataEnd ? bssEnd : dataEnd;
  Fnv64 digest;
  for (std::uint64_t addr = program.dataBase; addr < end; ++addr) {
    digest.u8(machine.memory().read<std::uint8_t>(addr));
  }
  return digest.h;
}

std::uint64_t registerImageDigest(const Machine& machine) {
  Fnv64 digest;
  for (const auto& [name, value] : machine.registers()) {
    digest.str(name);
    digest.u64(value);
  }
  return digest.h;
}

/// Per-config cap on value-mismatch findings; everything past it collapses
/// into one "... and N more" line so a wholesale divergence stays readable.
constexpr int kMaxValueFindings = 6;

}  // namespace

std::vector<OracleConfig> allConfigs() {
  using kgen::CompilerEra;
  return {{Arch::AArch64, CompilerEra::Gcc9},
          {Arch::Rv64, CompilerEra::Gcc9},
          {Arch::AArch64, CompilerEra::Gcc12},
          {Arch::Rv64, CompilerEra::Gcc12}};
}

std::string configLabel(const OracleConfig& config) {
  return std::string(config.arch == Arch::Rv64 ? "rv64" : "aarch64") +
         (config.era == kgen::CompilerEra::Gcc9 ? "/gcc9" : "/gcc12");
}

bool OracleReport::hasDivergence() const {
  for (const Finding& finding : findings) {
    if (finding.kind == Finding::Kind::Divergence) return true;
  }
  return false;
}

bool OracleReport::hasViolation() const {
  for (const Finding& finding : findings) {
    if (finding.kind == Finding::Kind::InvariantViolation) return true;
  }
  return false;
}

std::string OracleReport::summary() const {
  std::ostringstream out;
  for (const Finding& finding : findings) {
    switch (finding.kind) {
      case Finding::Kind::Divergence:
        out << "divergence";
        break;
      case Finding::Kind::InvariantViolation:
        out << "invariant violation";
        break;
      case Finding::Kind::Fault:
        out << "fault";
        break;
    }
    out << " [" << finding.config << "] " << finding.detail << "\n";
  }
  return out.str();
}

OracleReport runOracle(const kgen::Module& module,
                       const OracleOptions& options) {
  module.validate();

  kgen::Interpreter interp(module);
  interp.run();

  const std::vector<OracleConfig> configs =
      options.configs.empty() ? allConfigs() : options.configs;
  const CompileFn compileFn =
      options.compileFn
          ? options.compileFn
          : [](const kgen::Module& m, const OracleConfig& c) {
              return std::make_shared<const kgen::Compiled>(
                  kgen::compile(m, c.arch, c.era));
            };

  OracleReport report;
  // Store stream of the first configuration that ran to completion; every
  // later run must match it exactly.
  std::vector<StoreRec> referenceStores;
  std::string referenceLabel;

  for (const OracleConfig& config : configs) {
    const std::string label = configLabel(config);
    const auto fail = [&](Finding::Kind kind, std::string detail) {
      report.findings.push_back(Finding{kind, label, std::move(detail)});
    };

    std::shared_ptr<const kgen::Compiled> compiled;
    try {
      compiled = compileFn(module, config);
    } catch (const std::exception& error) {
      fail(Finding::Kind::Fault,
           std::string("compilation failed: ") + error.what());
      continue;
    }

    MachineOptions machineOptions;
    machineOptions.maxInstructions = options.budget;
    Machine machine(compiled->program, machineOptions);

    PathLengthCounter pathLength(compiled->program);
    TraceInvariantChecker checker(compiled->program, machine.memory().base(),
                                  machine.memory().end());
    TraceRecorder recorder(compiled->program);
    machine.addObserver(pathLength);
    if (options.checkInvariants) machine.addObserver(checker);
    machine.addObserver(recorder);

    RunResult result;
    try {
      result = machine.run();
    } catch (const Fault& fault) {
      fail(fault.kind() == FaultKind::Validation
               ? Finding::Kind::InvariantViolation
               : Finding::Kind::Fault,
           fault.report());
      continue;
    }
    if (!result.exitedCleanly) {
      fail(Finding::Kind::Fault, "run ended without reaching the exit "
                                 "syscall");
      continue;
    }

    if (options.checkInvariants) {
      std::uint64_t kernelSum = 0;
      for (const auto& kernel : pathLength.kernels()) {
        kernelSum += kernel.count;
      }
      try {
        checkRetiredConsistency(result.instructions, checker,
                                pathLength.total(), kernelSum,
                                pathLength.unattributed());
      } catch (const Fault& fault) {
        fail(Finding::Kind::InvariantViolation, fault.what());
      }
    }

    // Final memory vs the reference interpreter.
    int valueFindings = 0;
    std::uint64_t suppressed = 0;
    const auto mismatch = [&](const std::string& where, double simulated,
                              double expected) {
      if (valueFindings >= kMaxValueFindings) {
        ++suppressed;
        return;
      }
      ++valueFindings;
      std::ostringstream out;
      out.precision(17);
      out << where << " = " << simulated << ", interpreter says " << expected;
      fail(Finding::Kind::Divergence, out.str());
    };

    for (const kgen::ArrayDecl& array : module.arrays) {
      const std::uint64_t base = compiled->arrayAddr.at(array.name);
      const std::vector<double>& expected = interp.array(array.name);
      for (std::int64_t i = 0; i < array.elems; ++i) {
        const double simulated = machine.memory().read<double>(
            base + static_cast<std::uint64_t>(i) * 8);
        if (!sameValue(simulated, expected[static_cast<std::size_t>(i)])) {
          mismatch(array.name + "[" + std::to_string(i) + "]", simulated,
                   expected[static_cast<std::size_t>(i)]);
        }
      }
    }
    for (const kgen::ScalarDecl& scalar : module.scalars) {
      const double simulated =
          machine.memory().read<double>(compiled->scalarAddr.at(scalar.name));
      const double expected = interp.scalarValue(scalar.name);
      if (!sameValue(simulated, expected)) {
        mismatch("scalar " + scalar.name, simulated, expected);
      }
    }
    if (suppressed > 0) {
      fail(Finding::Kind::Divergence,
           "... and " + std::to_string(suppressed) + " more value mismatches");
    }

    // Store stream vs the first completed configuration.
    if (referenceLabel.empty()) {
      referenceStores = recorder.stores();
      referenceLabel = label;
    } else if (recorder.stores() != referenceStores) {
      const std::vector<StoreRec>& mine = recorder.stores();
      std::size_t at = 0;
      while (at < mine.size() && at < referenceStores.size() &&
             mine[at] == referenceStores[at]) {
        ++at;
      }
      std::ostringstream out;
      out << "store stream diverges from " << referenceLabel << " at store #"
          << at << " (" << mine.size() << " vs " << referenceStores.size()
          << " stores): ";
      if (at < mine.size()) {
        out << describeStore(mine[at]);
      } else {
        out << "<stream ended>";
      }
      out << " vs ";
      if (at < referenceStores.size()) {
        out << describeStore(referenceStores[at]);
      } else {
        out << "<stream ended>";
      }
      fail(Finding::Kind::Divergence, out.str());
    }

    RunDigest digest;
    digest.config = label;
    digest.retired = result.instructions;
    digest.traceDigest = recorder.traceDigest();
    digest.storeDigest = recorder.storeDigest();
    digest.memoryDigest = memoryImageDigest(compiled->program, machine);
    digest.registerDigest = registerImageDigest(machine);

    // Fusion semantics cross-check (ISSUE 8): replay the same compiled
    // program with the macro-op FusionPass attached. The pass is a pure
    // observer, so everything architectural must be bit-identical to the
    // fusion-off run — any difference is a fusion (or machine) bug.
    if (options.fusion) {
      Machine fusedMachine(compiled->program, machineOptions);
      TraceRecorder upstream(compiled->program);
      PathLengthCounter fusedPathLength(compiled->program);
      uarch::FusionPass fusionPass(
          uarch::FusionConfig::allRulesFor(config.arch), compiled->program,
          {&fusedPathLength});
      fusedMachine.addObserver(upstream);
      fusedMachine.addObserver(fusionPass);

      bool fusedOk = false;
      RunResult fusedResult;
      try {
        fusedResult = fusedMachine.run();
        fusedOk = fusedResult.exitedCleanly;
        if (!fusedOk) {
          fail(Finding::Kind::Divergence,
               "fusion-enabled run ended without reaching the exit syscall "
               "but the fusion-off run exited cleanly");
        }
      } catch (const Fault& fault) {
        fail(Finding::Kind::Divergence,
             std::string("fusion-enabled run faulted but the fusion-off run "
                         "was clean: ") +
                 fault.report());
      }

      if (fusedOk) {
        if (fusedResult.instructions != result.instructions) {
          fail(Finding::Kind::Divergence,
               "fusion-enabled run retired " +
                   std::to_string(fusedResult.instructions) +
                   " instructions, fusion-off retired " +
                   std::to_string(result.instructions));
          fusedOk = false;
        }
        if (upstream.traceDigest() != recorder.traceDigest()) {
          fail(Finding::Kind::Divergence,
               "unfused retired stream differs under fusion (trace digest "
               "mismatch)");
          fusedOk = false;
        }
        if (upstream.storeDigest() != recorder.storeDigest()) {
          fail(Finding::Kind::Divergence,
               "store stream differs under fusion");
          fusedOk = false;
        }
        if (memoryImageDigest(compiled->program, fusedMachine) !=
            digest.memoryDigest) {
          fail(Finding::Kind::Divergence,
               "final memory image differs under fusion");
          fusedOk = false;
        }
        if (registerImageDigest(fusedMachine) != digest.registerDigest) {
          fail(Finding::Kind::Divergence,
               "final register file differs under fusion");
          fusedOk = false;
        }
        // Pair accounting: every retired record is forwarded exactly once,
        // either alone or as half of one macro-op.
        if (fusionPass.outputInstructions() + fusionPass.pairs() !=
            fusedResult.instructions) {
          fail(Finding::Kind::InvariantViolation,
               "fusion pair accounting: forwarded " +
                   std::to_string(fusionPass.outputInstructions()) +
                   " + pairs " + std::to_string(fusionPass.pairs()) +
                   " != retired " +
                   std::to_string(fusedResult.instructions));
          fusedOk = false;
        }
        if (fusedPathLength.total() != fusionPass.outputInstructions()) {
          fail(Finding::Kind::InvariantViolation,
               "downstream analyzer saw " +
                   std::to_string(fusedPathLength.total()) +
                   " macro-ops but the pass forwarded " +
                   std::to_string(fusionPass.outputInstructions()));
          fusedOk = false;
        }
      }
      if (fusedOk) {
        digest.fused = true;
        digest.fusedRetired = fusionPass.outputInstructions();
        digest.fusionPairs = fusionPass.pairs();
      }
    }

    report.runs.push_back(std::move(digest));
  }
  return report;
}

}  // namespace riscmp::verify::conformance
