#include "verify/conformance/invariant_checker.hpp"

#include <sstream>
#include <string>

#include "support/fault.hpp"

namespace riscmp::verify::conformance {

namespace {

std::string regName(Reg reg) {
  switch (reg.cls) {
    case RegClass::Gp:
      return "gp" + std::to_string(reg.idx);
    case RegClass::Fp:
      return "fp" + std::to_string(reg.idx);
    case RegClass::Flags:
      return "flags";
  }
  return "?";
}

}  // namespace

TraceInvariantChecker::TraceInvariantChecker(const Program& program,
                                             std::uint64_t arenaBase,
                                             std::uint64_t arenaEnd)
    : TraceInvariantChecker(program, arenaBase, arenaEnd, Options{}) {}

TraceInvariantChecker::TraceInvariantChecker(const Program& program,
                                             std::uint64_t arenaBase,
                                             std::uint64_t arenaEnd,
                                             Options options)
    : program_(program),
      arenaBase_(arenaBase),
      arenaEnd_(arenaEnd),
      options_(options) {
  // The ABI stack pointer is live at entry (Machine::run sets it up):
  // RISC-V x2; AArch64 SP, which the executor records as Reg::gp(31)
  // (XZR reads are omitted from traces, so gp31-as-source always means SP).
  defined_.set(Reg::gp(program.arch == Arch::Rv64 ? 2u : 31u).dense());
}

void TraceInvariantChecker::defineRegister(Reg reg) {
  defined_.set(reg.dense());
}

void TraceInvariantChecker::violate(const RetiredInst& inst,
                                    const std::string& what) const {
  std::ostringstream out;
  out << "trace invariant violated at pc " << fault_detail::hexAddr(inst.pc)
      << " (retired " << stats_.retired << "): " << what;
  throw ValidationFault(out.str());
}

void TraceInvariantChecker::onRetire(const RetiredInst& inst) {
  retireOne(inst);
}

void TraceInvariantChecker::onRetireBlock(
    std::span<const RetiredInst> block) {
  for (const RetiredInst& inst : block) retireOne(inst);
}

void TraceInvariantChecker::retireOne(const RetiredInst& inst) {
  if (options_.checkOperandsDefined) {
    // Sources are checked before destinations take effect, so an
    // instruction reading its own output (accumulators, movk) still
    // requires a prior definition.
    for (const Reg src : inst.srcs) {
      ++stats_.operandChecks;
      if (!defined_.test(src.dense())) {
        violate(inst, "source register " + regName(src) +
                          " read before any definition");
      }
    }
    for (const Reg dst : inst.dsts) defined_.set(dst.dense());
  }

  if (options_.checkMemoryBounds) {
    const auto checkAccess = [&](const MemAccess& access, const char* what) {
      ++stats_.memoryChecks;
      if (access.size != 1 && access.size != 2 && access.size != 4 &&
          access.size != 8) {
        violate(inst, std::string(what) + " record has invalid size " +
                          std::to_string(access.size));
      }
      if (access.addr < arenaBase_ || access.addr + access.size > arenaEnd_) {
        violate(inst, std::string(what) + " at " +
                          fault_detail::hexAddr(access.addr) + " size " +
                          std::to_string(access.size) +
                          " outside the mapped arena [" +
                          fault_detail::hexAddr(arenaBase_) + ", " +
                          fault_detail::hexAddr(arenaEnd_) + ")");
      }
    };
    for (const MemAccess& load : inst.loads) checkAccess(load, "load");
    for (const MemAccess& store : inst.stores) checkAccess(store, "store");
  }

  if (options_.checkBranchTargets && inst.isBranch && inst.branchTaken) {
    ++stats_.branchChecks;
    const std::uint64_t target = inst.branchTarget;
    if ((target & 3) != 0) {
      violate(inst, "taken branch to misaligned target " +
                        fault_detail::hexAddr(target));
    }
    const std::uint64_t codeBase = program_.codeBase;
    const std::uint64_t codeEnd = program_.codeEnd();
    if (target < codeBase || target >= codeEnd) {
      violate(inst, "taken branch to " + fault_detail::hexAddr(target) +
                        " outside the code image [" +
                        fault_detail::hexAddr(codeBase) + ", " +
                        fault_detail::hexAddr(codeEnd) + ")");
    }
    if (const Symbol* kernel = program_.kernelAt(inst.pc)) {
      if (program_.kernelAt(target) != kernel) {
        violate(inst, "branch in kernel '" + kernel->name + "' to " +
                          fault_detail::hexAddr(target) +
                          " escapes the kernel region");
      }
    }
  }

  ++stats_.retired;
}

void checkRetiredConsistency(std::uint64_t runInstructions,
                             const TraceInvariantChecker& checker,
                             std::uint64_t pathLengthTotal,
                             std::uint64_t kernelSum,
                             std::uint64_t unattributed) {
  if (runInstructions == checker.retired() &&
      runInstructions == pathLengthTotal &&
      kernelSum + unattributed == pathLengthTotal) {
    return;
  }
  std::ostringstream out;
  out << "retired-count inconsistency: RunResult=" << runInstructions
      << " checker=" << checker.retired()
      << " pathLength=" << pathLengthTotal << " (kernels=" << kernelSum
      << " + unattributed=" << unattributed << ")";
  throw ValidationFault(out.str());
}

}  // namespace riscmp::verify::conformance
