#include "verify/differential.hpp"

#include <cmath>
#include <sstream>

#include "aarch64/asm.hpp"
#include "aarch64/decode.hpp"
#include "aarch64/disasm.hpp"
#include "core/machine.hpp"
#include "kgen/interp.hpp"
#include "riscv/asm.hpp"
#include "riscv/decode.hpp"
#include "riscv/disasm.hpp"
#include "support/fault.hpp"
#include "uarch/core_model.hpp"

namespace riscmp::verify {
namespace {

std::string hexWord(std::uint32_t word) { return fault_detail::hexWord(word); }

OutcomeKind outcomeForFault(const Fault& fault) {
  switch (fault.kind()) {
    case FaultKind::Decode:
      return OutcomeKind::DecodeFault;
    case FaultKind::Memory:
      return OutcomeKind::MemoryFault;
    case FaultKind::Trap:
      return OutcomeKind::TrapFault;
    case FaultKind::Budget:
      return OutcomeKind::BudgetExceeded;
    case FaultKind::Config:
      return OutcomeKind::ConfigError;
    case FaultKind::Validation:
      return OutcomeKind::Divergence;
  }
  return OutcomeKind::Unclassified;
}

/// Shared decode→disassemble→assemble round-trip; Decoder/Disasm/Asm are
/// the per-ISA entry points.
template <typename DecodeFn, typename DisasmFn, typename AsmFn>
Outcome roundTripWord(std::uint32_t word, DecodeFn&& decodeFn,
                      DisasmFn&& disasmFn, AsmFn&& asmFn) {
  const auto inst = decodeFn(word);
  if (!inst) return {OutcomeKind::DecodeFault, {}};

  const std::string text = disasmFn(*inst);
  std::vector<std::uint32_t> rewords;
  try {
    rewords = asmFn(text);
  } catch (const std::exception& e) {
    return {OutcomeKind::Divergence, "word " + hexWord(word) +
                                         " disassembles to '" + text +
                                         "' which does not re-assemble: " +
                                         e.what()};
  }
  if (rewords.size() != 1) {
    return {OutcomeKind::Divergence,
            "'" + text + "' re-assembled to " +
                std::to_string(rewords.size()) + " words"};
  }
  if (rewords[0] == word) return {OutcomeKind::ValidDecode, {}};

  // The re-encoding may legitimately differ (alias/canonical forms); the
  // round trip still agrees if both encodings disassemble identically.
  const auto reinst = decodeFn(rewords[0]);
  if (reinst && disasmFn(*reinst) == text) {
    return {OutcomeKind::ValidDecode, {}};
  }
  return {OutcomeKind::Divergence,
          "round-trip mismatch: " + hexWord(word) + " ('" + text + "') -> " +
              hexWord(rewords[0]) +
              (reinst ? " ('" + disasmFn(*reinst) + "')"
                      : " (undecodable)")};
}

}  // namespace

std::string_view outcomeName(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::ValidDecode:
      return "valid-decode";
    case OutcomeKind::DecodeFault:
      return "decode-fault";
    case OutcomeKind::CleanRun:
      return "clean-run";
    case OutcomeKind::MemoryFault:
      return "memory-fault";
    case OutcomeKind::TrapFault:
      return "trap-fault";
    case OutcomeKind::BudgetExceeded:
      return "budget-exceeded";
    case OutcomeKind::ConfigError:
      return "config-error";
    case OutcomeKind::Divergence:
      return "divergence";
    case OutcomeKind::Unclassified:
      return "UNCLASSIFIED";
  }
  return "?";
}

void CampaignStats::record(const Outcome& outcome) {
  ++counts[static_cast<std::size_t>(outcome.kind)];
  ++total;
  if (outcome.kind == OutcomeKind::Unclassified &&
      firstUnclassified.empty()) {
    firstUnclassified =
        outcome.detail.empty() ? "(no detail)" : outcome.detail;
  }
}

std::string CampaignStats::summary() const {
  std::ostringstream out;
  out << total << " outcomes:";
  for (std::size_t i = 0; i < kOutcomeKinds; ++i) {
    if (counts[i] == 0) continue;
    out << " " << outcomeName(static_cast<OutcomeKind>(i)) << "=" << counts[i];
  }
  if (!allClassified()) out << " | first escape: " << firstUnclassified;
  return out.str();
}

Outcome classifyWord(Arch arch, std::uint32_t word) {
  try {
    if (arch == Arch::Rv64) {
      return roundTripWord(
          word, [](std::uint32_t w) { return rv64::decode(w); },
          [](const rv64::Inst& inst) { return rv64::disassemble(inst, 0); },
          [](const std::string& text) { return rv64::assemble(text, 0); });
    }
    return roundTripWord(
        word, [](std::uint32_t w) { return a64::decode(w); },
        [](const a64::Inst& inst) { return a64::disassemble(inst, 0); },
        [](const std::string& text) { return a64::assemble(text, 0); });
  } catch (const std::exception& e) {
    return {OutcomeKind::Unclassified,
            "exception escaped word classification of " + hexWord(word) +
                ": " + e.what()};
  } catch (...) {
    return {OutcomeKind::Unclassified,
            "non-standard exception escaped word classification of " +
                hexWord(word)};
  }
}

Outcome runCorruptedProgram(const kgen::Module& module, Arch arch,
                            kgen::CompilerEra era, FaultInjector& injector,
                            std::uint64_t budget) {
  try {
    kgen::Compiled compiled = kgen::compile(module, arch, era);
    injector.corruptCodeWord(compiled.program);

    MachineOptions options;
    options.maxInstructions = budget;
    Machine machine(compiled.program, options);
    try {
      machine.run();
    } catch (const Fault& fault) {
      return {outcomeForFault(fault), fault.report()};
    }

    // Clean exit: the corruption must not have silently changed results.
    kgen::Interpreter interp(module);
    interp.run();
    for (const kgen::ArrayDecl& array : module.arrays) {
      const std::uint64_t base = compiled.arrayAddr.at(array.name);
      const auto& expected = interp.array(array.name);
      for (std::int64_t i = 0; i < array.elems; ++i) {
        const double actual = machine.memory().read<double>(base + i * 8);
        const double want = expected[static_cast<std::size_t>(i)];
        if (std::isnan(actual) && std::isnan(want)) continue;
        if (actual != want) {
          std::ostringstream detail;
          detail << "silent divergence after clean exit: " << array.name
                 << "[" << i << "] = " << actual << ", reference " << want;
          return {OutcomeKind::Divergence, detail.str()};
        }
      }
    }
    return {OutcomeKind::CleanRun, {}};
  } catch (const std::exception& e) {
    return {OutcomeKind::Unclassified,
            "exception escaped corrupted-program run: " +
                std::string(e.what())};
  } catch (...) {
    return {OutcomeKind::Unclassified,
            "non-standard exception escaped corrupted-program run"};
  }
}

CampaignStats decodeCampaign(Arch arch, std::span<const std::uint32_t> corpus,
                             std::uint64_t seed, std::uint64_t rounds) {
  CampaignStats stats;
  if (corpus.empty()) return stats;
  FaultInjector injector(seed);
  for (std::uint64_t i = 0; i < rounds; ++i) {
    const std::uint32_t word =
        corpus[injector.rng().below(corpus.size())];
    stats.record(classifyWord(arch, injector.corruptWord(word)));
  }
  return stats;
}

CampaignStats execCampaign(const kgen::Module& module, std::uint64_t seed,
                           int roundsPerConfig, std::uint64_t budget) {
  CampaignStats stats;
  FaultInjector injector(seed);
  for (const Arch arch : {Arch::Rv64, Arch::AArch64}) {
    for (const kgen::CompilerEra era :
         {kgen::CompilerEra::Gcc9, kgen::CompilerEra::Gcc12}) {
      for (int i = 0; i < roundsPerConfig; ++i) {
        stats.record(runCorruptedProgram(module, arch, era, injector, budget));
      }
    }
  }
  return stats;
}

CampaignStats configCampaign(const std::string& yamlText, std::uint64_t seed,
                             int rounds) {
  CampaignStats stats;
  FaultInjector injector(seed);
  for (int i = 0; i < rounds; ++i) {
    const std::string corrupted = injector.corruptYaml(yamlText);
    Outcome outcome;
    try {
      (void)uarch::CoreModel::fromYaml(yaml::parse(corrupted));
      outcome = {OutcomeKind::CleanRun, {}};
    } catch (const Fault& fault) {
      outcome = {outcomeForFault(fault), fault.what()};
    } catch (const std::exception& e) {
      outcome = {OutcomeKind::Unclassified,
                 "exception escaped config load: " + std::string(e.what())};
    } catch (...) {
      outcome = {OutcomeKind::Unclassified,
                 "non-standard exception escaped config load"};
    }
    stats.record(outcome);
  }
  return stats;
}

}  // namespace riscmp::verify
