// Fault boundary for bench/example cells (ISSUE 1 tentpole, part 3).
//
// Wraps each unit of work (one workload × era × ISA cell) so a failure
// prints its full FaultReport and the run continues with the remaining
// cells. finish() prints a summary table and returns a non-zero exit code
// when any cell failed, so CI still flags the regression.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace riscmp::verify {

struct CellResult {
  std::string name;
  bool ok = true;
  std::string kind;     ///< fault-kind label ("DecodeFault", ...) when failed
  std::string summary;  ///< one-line what() when failed
};

class FaultBoundary {
 public:
  /// Reports and the final summary are written to `out`.
  explicit FaultBoundary(std::ostream& out);

  /// Run one cell. Faults (and stray exceptions, labelled "unclassified")
  /// are caught and reported; returns true when the cell completed.
  bool run(const std::string& cell, const std::function<void()>& fn);

  /// Merge a cell outcome captured elsewhere — e.g. by a worker-local
  /// boundary inside the parallel experiment engine — into this boundary's
  /// summary and exit code. Prints nothing; callers replay any captured
  /// report text themselves, in deterministic cell order.
  void record(CellResult result);

  [[nodiscard]] bool allOk() const { return failures_ == 0; }
  [[nodiscard]] const std::vector<CellResult>& results() const {
    return results_;
  }

  /// Print the per-cell summary (when any cell failed) and return the
  /// process exit code: 0 if everything passed, 3 when any cell failed.
  /// (The bench exit contract: 0 ok, 1 internal error, 2 usage error,
  /// 3 one or more cells failed but the report still rendered.)
  int finish();

 private:
  std::ostream& out_;
  std::vector<CellResult> results_;
  std::size_t failures_ = 0;
};

}  // namespace riscmp::verify
