// Deterministic, seeded fault injector (ISSUE 1 tentpole, part 2).
//
// Corrupts the three input surfaces the simulator trusts:
//   * code words      — single/multi bit-flips of valid encodings
//   * data memory     — bit-flips of a program's initialised data image
//   * latency configs — textual mutations of core-model YAML
//
// All randomness comes from a SplitMix64 stream owned by the injector, so a
// campaign is exactly reproducible from its seed: same seed, same
// corruptions, same outcome sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace riscmp::verify {

/// SplitMix64: tiny, fast, and statistically fine for fuzzing duty.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Flip 1..maxBits distinct random bits of `word`.
  std::uint32_t corruptWord(std::uint32_t word, int maxBits = 2);

  /// Corrupt one random code word in place; returns the corrupted index.
  std::size_t corruptCodeWord(Program& program, int maxBits = 2);

  /// Flip `flips` random bits across the program's initialised data image.
  void corruptData(Program& program, int flips = 8);

  /// Mutate core-model YAML text: garble a numeric value, rename a key,
  /// drop a colon, duplicate a line, or inject a tab indent. The result is
  /// valid-or-rejectable YAML; the loader must classify it either way.
  std::string corruptYaml(const std::string& text);

  SplitMix64& rng() { return rng_; }

 private:
  SplitMix64 rng_;
};

}  // namespace riscmp::verify
