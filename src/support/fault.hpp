// Structured fault taxonomy shared by every layer of the simulator.
//
// Any failure the engine can diagnose is thrown as a subclass of `Fault`,
// which carries (a) a machine-readable kind, (b) a one-line summary served
// through what(), and (c) — once the emulation core has had a chance to
// annotate it — a MachineContext snapshot (pc, retired-instruction count,
// faulting word and its disassembly, enclosing kernel, register file).
// `Fault::report()` renders everything as a multi-line crash report so no
// failure ever surfaces as a bare what() string.
//
// The taxonomy (ISSUE 1, extended by ISSUE 6):
//   DecodeFault     — a word no decoder accepts, or decode out of bounds
//   MemoryFault     — simulated access outside the memory arena
//   TrapFault       — an architectural trap the core does not service
//                     (ebreak/brk, illegal instruction, unknown syscall)
//   BudgetExceeded  — the instruction budget ran out (hang guard)
//   ConfigError     — malformed or semantically invalid configuration,
//                     with file / line / key provenance
//   ValidationFault — an internal invariant or differential check failed
//   TimeoutFault    — a cell overran its wall-clock deadline (watchdog)
//   CrashFault      — an isolated worker process died (signal / bad exit)
//                     instead of delivering a result
//
// The string forms of faultKindName() and every constructor's what()
// summary are load-bearing: run-journal entries (src/engine/journal) and
// crash-report artifacts embed them, and tests/verify/fault_golden_test.cpp
// pins them. Extend the taxonomy freely, but treat existing spellings as a
// stable wire format.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace riscmp {

enum class FaultKind : std::uint8_t {
  Decode,
  Memory,
  Trap,
  Budget,
  Config,
  Validation,
  Timeout,
  Crash,
};

std::string_view faultKindName(FaultKind kind);

/// Snapshot of the simulated machine at the faulting instruction. All
/// fields are plain strings/integers so the support layer stays free of
/// ISA dependencies; the emulation core fills it in.
struct MachineContext {
  std::string arch;          ///< "RISC-V" / "AArch64"
  std::uint64_t pc = 0;
  std::uint64_t retired = 0;  ///< instructions retired before the fault
  std::uint32_t word = 0;     ///< faulting encoding (when applicable)
  std::string disasm;         ///< best-effort disassembly of `word`
  std::string kernel;         ///< "name+0xoff" of the enclosing kernel,
                              ///< or empty when outside any symbol
  /// Small register snapshot: (name, value) pairs in display order.
  std::vector<std::pair<std::string, std::uint64_t>> regs;
};

class Fault : public std::runtime_error {
 public:
  Fault(FaultKind kind, const std::string& summary)
      : std::runtime_error(summary), kind_(kind) {}

  [[nodiscard]] FaultKind kind() const { return kind_; }

  [[nodiscard]] bool hasContext() const { return context_.has_value(); }
  [[nodiscard]] const MachineContext& context() const { return *context_; }
  /// Attach machine context (first writer wins: the innermost frame that
  /// knows the machine state annotates; outer frames must not overwrite).
  void attachContext(MachineContext context) {
    if (!context_) context_ = std::move(context);
  }

  /// Render the full crash report: kind, summary, and — when present —
  /// machine context with disassembly and register file.
  [[nodiscard]] std::string report() const;

 private:
  FaultKind kind_;
  std::optional<MachineContext> context_;
};

/// A word no decoder accepts (or decode outside the code image).
class DecodeFault : public Fault {
 public:
  DecodeFault(std::uint32_t word, std::uint64_t pc);
  [[nodiscard]] std::uint32_t word() const { return word_; }
  [[nodiscard]] std::uint64_t pc() const { return pc_; }

 private:
  std::uint32_t word_;
  std::uint64_t pc_;
};

/// A simulated memory access outside the arena.
class MemoryFault : public Fault {
 public:
  MemoryFault(std::uint64_t addr, std::size_t size);
  [[nodiscard]] std::uint64_t addr() const { return addr_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::uint64_t addr_;
  std::size_t size_;
};

/// An architectural trap the emulation core does not service.
class TrapFault : public Fault {
 public:
  TrapFault(const std::string& trapName, std::uint64_t pc);
  [[nodiscard]] const std::string& trapName() const { return trap_; }
  [[nodiscard]] std::uint64_t pc() const { return pc_; }

 private:
  std::string trap_;
  std::uint64_t pc_;
};

/// Instruction budget exhausted — the hang guard fired.
class BudgetExceeded : public Fault {
 public:
  explicit BudgetExceeded(std::uint64_t limit);
  [[nodiscard]] std::uint64_t limit() const { return limit_; }

 private:
  std::uint64_t limit_;
};

/// Malformed or semantically invalid configuration, with provenance.
/// `file` and `key` may be empty (e.g. for in-memory documents); `line`
/// is 0 when unknown.
class ConfigError : public Fault {
 public:
  ConfigError(const std::string& message, std::string file = {}, int line = 0,
              std::string key = {});
  [[nodiscard]] const std::string& file() const { return file_; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Rebuild this error with file (and optionally key) provenance added —
  /// used by loaders that know the path the document came from.
  [[nodiscard]] ConfigError withFile(const std::string& file) const;
  [[nodiscard]] ConfigError withKey(const std::string& key) const;

 private:
  std::string message_;
  std::string file_;
  int line_;
  std::string key_;
};

/// An internal invariant or differential check failed.
class ValidationFault : public Fault {
 public:
  explicit ValidationFault(const std::string& message)
      : Fault(FaultKind::Validation, "validation fault: " + message) {}
};

/// A cell overran its wall-clock deadline. Raised cooperatively by the
/// emulation core when the engine watchdog flags the deadline expired
/// (thread isolation, full machine context attached), or synthesized by
/// the parent after SIGKILLing an overrunning worker (process isolation,
/// no context — the worker is gone).
class TimeoutFault : public Fault {
 public:
  explicit TimeoutFault(std::uint64_t deadlineMs);
  [[nodiscard]] std::uint64_t deadlineMs() const { return deadlineMs_; }

 private:
  std::uint64_t deadlineMs_;
};

/// Printable name for the signals worker processes die from ("SIGSEGV",
/// or "signal 42" for anything without a stable name). strsignal(3) is
/// locale/platform dependent, so crash records use this fixed table.
std::string signalName(int signo);

/// An isolated worker process died without delivering a result: killed by
/// a signal (SIGSEGV/SIGKILL/OOM...) or exited uncleanly mid-protocol.
/// Synthesized by the parent from waitpid status, so it never carries
/// machine context — the crashing cell's machine died with the worker.
class CrashFault : public Fault {
 public:
  /// Worker terminated by signal `signo` while running `cell`.
  CrashFault(int signo, const std::string& cell);
  /// Worker exited with `code` without completing the result protocol.
  static CrashFault exited(int code, const std::string& cell);

  [[nodiscard]] int signo() const { return signo_; }  ///< 0 for exits
  [[nodiscard]] int exitCode() const { return exitCode_; }
  [[nodiscard]] const std::string& cell() const { return cell_; }

 private:
  CrashFault(const std::string& summary, int signo, int exitCode,
             std::string cell);

  int signo_;
  int exitCode_;
  std::string cell_;
};

namespace fault_detail {
std::string hexWord(std::uint32_t word);
std::string hexAddr(std::uint64_t addr);
}  // namespace fault_detail

}  // namespace riscmp
