#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace riscmp {

std::string withCommas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string withCommas(std::int64_t value) {
  if (value < 0) return "-" + withCommas(static_cast<std::uint64_t>(-value));
  return withCommas(static_cast<std::uint64_t>(value));
}

std::string sigFigs(double value, int digits) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return value > 0 ? "inf" : "-inf";
  const int magnitude = static_cast<int>(std::floor(std::log10(std::fabs(value))));
  const int decimals = std::max(0, digits - 1 - magnitude);
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string percentDelta(double measured, double baseline) {
  if (baseline == 0.0) return "n/a";
  const double pct = (measured / baseline - 1.0) * 100.0;
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%+.1f%%", pct);
  return buffer;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::addSeparator() { separators_.push_back(rows_.size()); }

namespace {

/// Terminal column count of a UTF-8 cell: continuation bytes are free.
/// Keeps multi-byte glyphs like the ✗ failure marker from skewing padding.
std::size_t displayWidth(const std::string& cell) {
  std::size_t width = 0;
  for (const char c : cell) {
    if ((static_cast<unsigned char>(c) & 0xC0u) != 0x80u) ++width;
  }
  return width;
}

}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = displayWidth(header_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], displayWidth(row[c]));
    }
  }

  auto renderRule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line += std::string(widths[c] - displayWidth(row[c]), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = renderRule() + renderRow(header_) + renderRule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) !=
        separators_.end()) {
      out += renderRule();
    }
    out += renderRow(rows_[r]);
  }
  out += renderRule();
  return out;
}

std::string Table::renderCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char ch : cell) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c ? "," : "") << escape(header_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << escape(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.render();
}

}  // namespace riscmp
