// A deliberately small YAML-subset parser for microarchitecture model files.
//
// SimEng describes core models (latencies, port layouts, structure sizes) in
// YAML; we support the subset those files need:
//
//   * indentation-nested mappings (`key: value` / `key:` + indented block)
//   * block sequences (`- item`, where item is a scalar or a mapping)
//   * flow sequences of scalars (`[a, b, c]`)
//   * scalars: integers, floats, booleans, strings (optionally quoted)
//   * `#` comments and blank lines
//
// Anchors, aliases, multi-document streams, and flow mappings are out of
// scope and rejected with a ParseError carrying the offending line number.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/fault.hpp"

namespace riscmp::yaml {

/// Structural YAML error. A ConfigError so it carries file/line provenance
/// and participates in the Fault taxonomy; the historical (message, line)
/// constructor is kept for the parser.
class ParseError : public ConfigError {
 public:
  ParseError(const std::string& message, int line)
      : ConfigError(message, /*file=*/{}, line) {}
};

/// A parsed YAML node: scalar, sequence, or mapping. Mappings preserve key
/// insertion order (port lists in core configs are order-sensitive).
class Node {
 public:
  enum class Kind { Scalar, Sequence, Mapping };

  Node() : kind_(Kind::Mapping) {}
  explicit Node(std::string scalar, int line = 0)
      : kind_(Kind::Scalar), scalar_(std::move(scalar)), line_(line) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  /// Source line this node came from (0 for synthesized nodes). Carried so
  /// scalar-conversion errors can name the offending line.
  [[nodiscard]] int line() const { return line_; }
  void setLine(int line) { line_ = line; }
  [[nodiscard]] bool isScalar() const { return kind_ == Kind::Scalar; }
  [[nodiscard]] bool isSequence() const { return kind_ == Kind::Sequence; }
  [[nodiscard]] bool isMapping() const { return kind_ == Kind::Mapping; }

  // -- Scalar accessors. Conversion failures throw riscmp::ConfigError
  //    carrying this node's source line.
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] std::uint64_t asUint() const;
  [[nodiscard]] double asDouble() const;
  [[nodiscard]] bool asBool() const;

  // -- Mapping access.
  [[nodiscard]] bool has(std::string_view key) const;
  /// Throws riscmp::ConfigError when the key is missing.
  [[nodiscard]] const Node& at(std::string_view key) const;
  /// Returns `fallback` when the key is missing.
  [[nodiscard]] std::int64_t getInt(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] double getDouble(std::string_view key, double fallback) const;
  [[nodiscard]] std::string getString(std::string_view key,
                                      std::string fallback) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Node>>& items() const {
    return map_;
  }

  // -- Sequence access.
  [[nodiscard]] const std::vector<Node>& elements() const { return seq_; }
  [[nodiscard]] std::size_t size() const;

  // -- Construction (used by the parser and by tests).
  void setKind(Kind kind) { kind_ = kind; }
  void append(Node node) { seq_.push_back(std::move(node)); }
  void insert(std::string key, Node node);

 private:
  Kind kind_;
  std::string scalar_;
  int line_ = 0;
  std::vector<Node> seq_;
  std::vector<std::pair<std::string, Node>> map_;
};

/// Parse a YAML document from text. Throws ParseError on malformed input.
Node parse(std::string_view text);

/// Parse the YAML file at `path`. Throws riscmp::ConfigError (naming the
/// file and line) if the file is unreadable or malformed.
Node parseFile(const std::string& path);

}  // namespace riscmp::yaml
