// Write-temp-then-rename file persistence (ISSUE 6 satellite).
//
// Every artifact the harness leaves behind — BENCH_throughput.json,
// BENCH_cache.json, conformance digests, run journals — used to be written
// with a bare ofstream, so a crash or SIGKILL mid-write left a torn file
// that downstream tooling (CI artifact diffing, --resume) would misparse.
// writeFileAtomic stages the full content in `<path>.tmp.<pid>` in the
// same directory and rename(2)s it over the destination, which POSIX
// guarantees is atomic: readers see either the old complete file or the
// new complete file, never a prefix.
#pragma once

#include <string>

namespace riscmp::support {

/// Atomically replace `path` with `content`. The temporary sibling is
/// flushed and closed before the rename; on any failure the temporary is
/// removed and the destination is left untouched. Returns false (and fills
/// `error` when non-null) instead of throwing, so CLI writers can keep
/// their existing "error: cannot write X" exit-2 paths.
bool writeFileAtomic(const std::string& path, const std::string& content,
                     std::string* error = nullptr);

}  // namespace riscmp::support
