#include "support/fault.hpp"

#include <cstdio>
#include <sstream>

namespace riscmp {

namespace fault_detail {

std::string hexWord(std::uint32_t word) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "0x%08x", word);
  return buffer;
}

std::string hexAddr(std::uint64_t addr) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(addr));
  return buffer;
}

}  // namespace fault_detail

using fault_detail::hexAddr;
using fault_detail::hexWord;

std::string_view faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::Decode:
      return "DecodeFault";
    case FaultKind::Memory:
      return "MemoryFault";
    case FaultKind::Trap:
      return "TrapFault";
    case FaultKind::Budget:
      return "BudgetExceeded";
    case FaultKind::Config:
      return "ConfigError";
    case FaultKind::Validation:
      return "ValidationFault";
    case FaultKind::Timeout:
      return "TimeoutFault";
    case FaultKind::Crash:
      return "CrashFault";
  }
  return "Fault";
}

std::string Fault::report() const {
  std::ostringstream out;
  out << "=== FAULT REPORT: " << faultKindName(kind_) << " ===\n";
  out << "  " << what() << "\n";
  if (context_) {
    const MachineContext& ctx = *context_;
    if (!ctx.arch.empty()) out << "  arch:     " << ctx.arch << "\n";
    out << "  pc:       " << hexAddr(ctx.pc) << "\n";
    out << "  retired:  " << ctx.retired << " instructions\n";
    out << "  word:     " << hexWord(ctx.word) << "\n";
    if (!ctx.disasm.empty()) out << "  disasm:   " << ctx.disasm << "\n";
    out << "  kernel:   "
        << (ctx.kernel.empty() ? std::string("(outside any kernel region)")
                               : ctx.kernel)
        << "\n";
    if (!ctx.regs.empty()) {
      out << "  registers:\n";
      std::size_t column = 0;
      for (const auto& [name, value] : ctx.regs) {
        if (column == 0) out << "   ";
        char cell[40];
        std::snprintf(cell, sizeof cell, " %4s=%016llx", name.c_str(),
                      static_cast<unsigned long long>(value));
        out << cell;
        if (++column == 4) {
          out << "\n";
          column = 0;
        }
      }
      if (column != 0) out << "\n";
    }
  }
  out << "=== END FAULT REPORT ===";
  return out.str();
}

DecodeFault::DecodeFault(std::uint32_t word, std::uint64_t pc)
    : Fault(FaultKind::Decode, "undecodable instruction " + hexWord(word) +
                                   " at pc " + hexAddr(pc)),
      word_(word),
      pc_(pc) {}

MemoryFault::MemoryFault(std::uint64_t addr, std::size_t size)
    : Fault(FaultKind::Memory,
            "memory fault: access of " + std::to_string(size) + " bytes at " +
                hexAddr(addr)),
      addr_(addr),
      size_(size) {}

TrapFault::TrapFault(const std::string& trapName, std::uint64_t pc)
    : Fault(FaultKind::Trap,
            "unhandled trap (" + trapName + ") at pc " + hexAddr(pc)),
      trap_(trapName),
      pc_(pc) {}

BudgetExceeded::BudgetExceeded(std::uint64_t limit)
    : Fault(FaultKind::Budget,
            "instruction budget exceeded (" + std::to_string(limit) + ")"),
      limit_(limit) {}

namespace {

std::string configWhat(const std::string& message, const std::string& file,
                       int line, const std::string& key) {
  std::string out = "config error: ";
  if (!file.empty()) out += file + ": ";
  if (line > 0) out += "line " + std::to_string(line) + ": ";
  if (!key.empty()) out += "key '" + key + "': ";
  out += message;
  return out;
}

}  // namespace

ConfigError::ConfigError(const std::string& message, std::string file,
                         int line, std::string key)
    : Fault(FaultKind::Config, configWhat(message, file, line, key)),
      message_(message),
      file_(std::move(file)),
      line_(line),
      key_(std::move(key)) {}

ConfigError ConfigError::withFile(const std::string& file) const {
  ConfigError out(message_, file_.empty() ? file : file_, line_, key_);
  if (hasContext()) out.attachContext(context());
  return out;
}

ConfigError ConfigError::withKey(const std::string& key) const {
  ConfigError out(message_, file_, line_, key_.empty() ? key : key_);
  if (hasContext()) out.attachContext(context());
  return out;
}

TimeoutFault::TimeoutFault(std::uint64_t deadlineMs)
    : Fault(FaultKind::Timeout, "wall-clock deadline exceeded (" +
                                    std::to_string(deadlineMs) + " ms)"),
      deadlineMs_(deadlineMs) {}

std::string signalName(int signo) {
  switch (signo) {
    case 1:
      return "SIGHUP";
    case 2:
      return "SIGINT";
    case 4:
      return "SIGILL";
    case 6:
      return "SIGABRT";
    case 7:
      return "SIGBUS";
    case 8:
      return "SIGFPE";
    case 9:
      return "SIGKILL";
    case 11:
      return "SIGSEGV";
    case 13:
      return "SIGPIPE";
    case 15:
      return "SIGTERM";
    default:
      return "signal " + std::to_string(signo);
  }
}

CrashFault::CrashFault(const std::string& summary, int signo, int exitCode,
                       std::string cell)
    : Fault(FaultKind::Crash, summary),
      signo_(signo),
      exitCode_(exitCode),
      cell_(std::move(cell)) {}

CrashFault::CrashFault(int signo, const std::string& cell)
    : CrashFault("worker for cell '" + cell + "' killed by " +
                     signalName(signo) + " (signal " + std::to_string(signo) +
                     ")",
                 signo, 0, cell) {}

CrashFault CrashFault::exited(int code, const std::string& cell) {
  return CrashFault("worker for cell '" + cell +
                        "' exited without a result (code " +
                        std::to_string(code) + ")",
                    0, code, cell);
}

}  // namespace riscmp
