// Bit-manipulation helpers shared by the instruction encoders and decoders.
//
// All helpers are constexpr and operate on unsigned 32/64-bit words. Field
// positions follow the usual ISA-manual convention: bits(x, hi, lo) extracts
// the inclusive bit range [hi:lo] of x, right-aligned.
#pragma once

#include <cstdint>
#include <type_traits>

namespace riscmp {

/// Extract the inclusive bit range [hi:lo] of `x`, right-aligned.
template <typename T>
constexpr T bits(T x, unsigned hi, unsigned lo) {
  static_assert(std::is_unsigned_v<T>);
  const unsigned width = hi - lo + 1;
  if (width >= sizeof(T) * 8) return x >> lo;
  return (x >> lo) & ((T{1} << width) - 1);
}

/// Extract a single bit of `x`.
template <typename T>
constexpr T bit(T x, unsigned pos) {
  static_assert(std::is_unsigned_v<T>);
  return (x >> pos) & T{1};
}

/// Insert `value` into the inclusive bit range [hi:lo], asserting via mask
/// that the value fits. Returns the updated word.
constexpr std::uint32_t insertBits(std::uint32_t word, unsigned hi, unsigned lo,
                                   std::uint32_t value) {
  const unsigned width = hi - lo + 1;
  const std::uint32_t mask =
      width >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << width) - 1);
  return (word & ~(mask << lo)) | ((value & mask) << lo);
}

/// Sign-extend the low `width` bits of `x` to a signed 64-bit value.
constexpr std::int64_t signExtend(std::uint64_t x, unsigned width) {
  const std::uint64_t m = std::uint64_t{1} << (width - 1);
  const std::uint64_t v = x & ((width >= 64) ? ~std::uint64_t{0}
                                             : ((std::uint64_t{1} << width) - 1));
  return static_cast<std::int64_t>((v ^ m) - m);
}

/// True when the signed value `v` is representable in `width` bits.
constexpr bool fitsSigned(std::int64_t v, unsigned width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return v >= lo && v <= hi;
}

/// True when the unsigned value `v` is representable in `width` bits.
constexpr bool fitsUnsigned(std::uint64_t v, unsigned width) {
  if (width >= 64) return true;
  return v < (std::uint64_t{1} << width);
}

/// Rotate a 64-bit value right by `n` (mod 64).
constexpr std::uint64_t rotateRight64(std::uint64_t x, unsigned n) {
  n &= 63;
  if (n == 0) return x;
  return (x >> n) | (x << (64 - n));
}

/// Rotate the low `size` bits of `x` right by `n`; upper bits must be zero.
constexpr std::uint64_t rotateRight(std::uint64_t x, unsigned n, unsigned size) {
  n %= size;
  if (n == 0) return x;
  const std::uint64_t mask =
      size >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << size) - 1);
  return ((x >> n) | (x << (size - n))) & mask;
}

/// Replicate the low `size` bits of `x` to fill 64 bits.
constexpr std::uint64_t replicate(std::uint64_t x, unsigned size) {
  std::uint64_t out = 0;
  for (unsigned pos = 0; pos < 64; pos += size) out |= x << pos;
  return out;
}

/// True when `x` is a power of two (and non-zero).
constexpr bool isPow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Align `x` up to the next multiple of `a` (a power of two).
constexpr std::uint64_t alignUp(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) & ~(a - 1);
}

}  // namespace riscmp
