// Minimal JSON document model for the engine's durable records (ISSUE 6).
//
// The run journal (JSONL, one object per line) and the process-isolation
// pipe protocol both need structured records that round-trip exactly and
// parse without external dependencies — the same vendored-nothing stance
// yaml_lite takes for configs. The surface is deliberately narrow:
//   values   null / bool / unsigned 64-bit integers / string / array /
//            object (insertion-ordered, so emitted bytes are deterministic)
//   numbers  non-negative integers only. Every numeric field in the
//            journal schema is a count, an index, a bit pattern, or a
//            digest; doubles are carried as their IEEE-754 bit patterns
//            (see engine/cell_codec) so re-serialization is byte-exact.
// parse() rejects anything outside that subset with a ConfigError carrying
// the byte offset, and never throws on the hot path (journal loaders probe
// with tryParse to tolerate a torn final line after a crash).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace riscmp::support {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Uint, String, Array, Object };

  JsonValue() : kind_(Kind::Null) {}
  explicit JsonValue(bool value) : kind_(Kind::Bool), boolean_(value) {}
  explicit JsonValue(std::uint64_t value) : kind_(Kind::Uint), uint_(value) {}
  explicit JsonValue(std::string value)
      : kind_(Kind::String), string_(std::move(value)) {}
  explicit JsonValue(const char* value)
      : kind_(Kind::String), string_(value) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }

  /// Typed accessors; wrong-kind access throws ConfigError (decoders treat
  /// that as a corrupt record, not a crash).
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] std::uint64_t asUint() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Array building.
  void push(JsonValue value);

  /// Object building; set() preserves first-insertion order for
  /// deterministic emission.
  void set(const std::string& key, JsonValue value);
  /// Object field lookup: null-kind reference when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Compact single-line emission (no trailing newline). Objects emit in
  /// insertion order, so identical documents yield identical bytes.
  [[nodiscard]] std::string dump() const;

  /// Strict parse of one document; throws ConfigError (with byte offset in
  /// the message) on any syntax error or unsupported construct.
  static JsonValue parse(const std::string& text);
  /// Non-throwing probe used by the journal loader on possibly-torn lines.
  static std::optional<JsonValue> tryParse(const std::string& text);

 private:
  Kind kind_;
  bool boolean_ = false;
  std::uint64_t uint_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// JSON string escaping (shared with hand-rolled writers like the E11
/// report): escapes quotes, backslashes, and control bytes.
std::string jsonEscape(const std::string& text);

}  // namespace riscmp::support
