// Streaming statistics used by the windowed critical-path analysis and the
// benchmark harnesses. Welford's algorithm keeps the variance numerically
// stable over millions of samples.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace riscmp {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean over a set of strictly positive values; used when averaging
/// cross-benchmark ratios (the paper's "weighting each benchmark equally").
inline double geometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double logSum = 0.0;
  for (const double v : values) logSum += std::log(v);
  return std::exp(logSum / static_cast<double>(values.size()));
}

}  // namespace riscmp
