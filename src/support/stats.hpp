// Streaming statistics used by the windowed critical-path analysis and the
// benchmark harnesses. Welford's algorithm keeps the variance numerically
// stable over millions of samples.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace riscmp {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  /// Forget every sample; the instance is reusable as if freshly built.
  void reset() { *this = RunningStats(); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean over the strictly positive, finite entries of `values`;
/// used when averaging cross-benchmark ratios (the paper's "weighting each
/// benchmark equally"). Zero, negative, NaN, and infinite entries — possible
/// when a faulted cell leaves a totals[] slot at 0 — are skipped instead of
/// being fed to std::log, which would silently turn the headline geomean
/// into -inf/NaN. When `aggregated` is non-null it receives the number of
/// values actually averaged, so callers can warn about skipped entries.
inline double geometricMean(const std::vector<double>& values,
                            std::size_t* aggregated = nullptr) {
  double logSum = 0.0;
  std::size_t used = 0;
  for (const double v : values) {
    if (!std::isfinite(v) || v <= 0.0) continue;
    logSum += std::log(v);
    ++used;
  }
  if (aggregated != nullptr) *aggregated = used;
  return used == 0 ? 0.0 : std::exp(logSum / static_cast<double>(used));
}

}  // namespace riscmp
