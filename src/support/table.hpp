// ASCII table and CSV rendering for the benchmark harnesses.
//
// The bench binaries print the paper's tables side by side with measured
// values; this renderer keeps columns aligned and offers the thousands
// separators used throughout the paper.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace riscmp {

/// Format an integer with thousands separators, e.g. 3350107615 ->
/// "3,350,107,615" (the style used in the paper's tables).
std::string withCommas(std::uint64_t value);
std::string withCommas(std::int64_t value);

/// Format a double with `digits` significant digits (paper style, e.g.
/// "0.0235", "5.00", "335").
std::string sigFigs(double value, int digits);

/// Format a ratio as a signed percentage, e.g. +2.3% / -16.2%.
std::string percentDelta(double measured, double baseline);

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  /// Insert a horizontal separator before the next row.
  void addSeparator();

  /// Render with box-drawing rules and padded columns.
  [[nodiscard]] std::string render() const;
  /// Render as CSV (no padding, comma-escaped).
  [[nodiscard]] std::string renderCsv() const;

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace riscmp
