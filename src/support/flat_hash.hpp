// A minimal open-addressing hash map for the analysis hot paths.
//
// The trace analyses track per-memory-chunk state (dependency depths,
// producer indices, readiness cycles) keyed by 64-bit chunk ids. They only
// ever need find and insert-or-assign — no erase, no iteration — but they
// perform those operations once or more per retired instruction, where
// std::unordered_map's per-node allocation and pointer chasing dominate the
// simulator's end-to-end throughput. This map stores slots inline in one
// power-of-two array with linear probing (multiplicative hashing spreads
// the sequential chunk ids the analyses produce), so the common hit is one
// probe into one cache line and inserts never allocate until the 0.7 load
// factor forces a rehash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace riscmp {

/// Hash map from std::uint64_t keys to `Value`, open addressing + linear
/// probing. Supports find / insert-or-assign / clear only (the operations
/// the retire-path analyses need); erase is intentionally absent so probe
/// chains never need tombstones.
template <typename Value>
class FlatHashMap64 {
 public:
  FlatHashMap64() { rehash(kInitialCapacity); }

  /// Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] const Value* find(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = indexOf(key);; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (!slot.used) return nullptr;
      if (slot.key == key) return &slot.value;
    }
  }

  /// Insert `key` with `value`, overwriting any existing entry.
  void assign(std::uint64_t key, const Value& value) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = indexOf(key);; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        slot.used = true;
        slot.key = key;
        slot.value = value;
        if (++size_ * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
        return;
      }
      if (slot.key == key) {
        slot.value = value;
        return;
      }
    }
  }

  /// Value for `key`, inserting `fallback` first when absent.
  Value& findOrInsert(std::uint64_t key, const Value& fallback) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = indexOf(key);; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        slot.used = true;
        slot.key = key;
        slot.value = fallback;
        if (++size_ * 10 >= slots_.size() * 7) {
          rehash(slots_.size() * 2);
          return *const_cast<Value*>(find(key));
        }
        return slot.value;
      }
      if (slot.key == key) return slot.value;
    }
  }

  void clear() {
    for (Slot& slot : slots_) slot.used = false;
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  static constexpr std::size_t kInitialCapacity = 64;

  struct Slot {
    std::uint64_t key = 0;
    Value value{};
    bool used = false;
  };

  [[nodiscard]] std::size_t indexOf(std::uint64_t key) const {
    // Fibonacci (multiplicative) hashing: sequential chunk ids land in
    // well-spread slots, keeping linear probe chains short.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> shift_);
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    shift_ = 64;
    while ((std::size_t{1} << (64 - shift_)) < capacity) --shift_;
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.used) assign(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  unsigned shift_ = 64;
};

}  // namespace riscmp
