#include "support/json_lite.hpp"

#include <cstdio>

#include "support/fault.hpp"

namespace riscmp::support {

namespace {

[[noreturn]] void badAccess(const char* want, JsonValue::Kind got) {
  throw ConfigError(std::string("json: expected ") + want +
                    ", found kind #" +
                    std::to_string(static_cast<unsigned>(got)));
}

}  // namespace

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) badAccess("bool", kind_);
  return boolean_;
}

std::uint64_t JsonValue::asUint() const {
  if (kind_ != Kind::Uint) badAccess("number", kind_);
  return uint_;
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) badAccess("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) badAccess("array", kind_);
  return array_;
}

void JsonValue::push(JsonValue value) {
  if (kind_ != Kind::Array) badAccess("array", kind_);
  array_.push_back(std::move(value));
}

void JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ != Kind::Object) badAccess("object", kind_);
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind_ != Kind::Object) badAccess("object", kind_);
  for (const auto& [name, value] : members_) {
    if (name == key) return value;
  }
  static const JsonValue kNull;
  return kNull;
}

bool JsonValue::has(const std::string& key) const {
  return !at(key).isNull();
}

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::Null:
      return "null";
    case Kind::Bool:
      return boolean_ ? "true" : "false";
    case Kind::Uint:
      return std::to_string(uint_);
    case Kind::String:
      return "\"" + jsonEscape(string_) + "\"";
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ",";
        out += array_[i].dump();
      }
      return out + "]";
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ",";
        out += "\"" + jsonEscape(members_[i].first) +
               "\":" + members_[i].second.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue value = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("json: " + why + " at byte " + std::to_string(pos_));
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parseValue() {
    skipSpace();
    const char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') return JsonValue(parseString());
    if (c >= '0' && c <= '9') return parseNumber();
    if (consume("true")) return JsonValue(true);
    if (consume("false")) return JsonValue(false);
    if (consume("null")) return JsonValue();
    fail("unsupported value (only objects, arrays, strings, booleans, null, "
         "and non-negative integers)");
  }

  JsonValue parseNumber() {
    std::uint64_t value = 0;
    bool any = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(text_[pos_] - '0');
      if (value > (UINT64_MAX - digit) / 10) fail("integer overflow");
      value = value * 10 + digit;
      ++pos_;
      any = true;
    }
    if (!any) fail("malformed number");
    return JsonValue(value);
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // The emitter only produces \u00xx control escapes; reject the
          // rest rather than hand back mojibake.
          if (code > 0xFF) fail("\\u escape outside the emitted subset");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("unsupported escape");
      }
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue out = JsonValue::array();
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push(parseValue());
      skipSpace();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue out = JsonValue::object();
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skipSpace();
      std::string key = parseString();
      skipSpace();
      expect(':');
      out.set(key, parseValue());
      skipSpace();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parseDocument();
}

std::optional<JsonValue> JsonValue::tryParse(const std::string& text) {
  try {
    return parse(text);
  } catch (const ConfigError&) {
    return std::nullopt;
  }
}

}  // namespace riscmp::support
