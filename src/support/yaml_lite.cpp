#include "support/yaml_lite.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace riscmp::yaml {
namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Strip an unquoted trailing comment, respecting single/double quotes.
std::string stripComment(std::string_view s) {
  bool inSingle = false;
  bool inDouble = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !inDouble) inSingle = !inSingle;
    if (c == '"' && !inSingle) inDouble = !inDouble;
    if (c == '#' && !inSingle && !inDouble &&
        (i == 0 || std::isspace(static_cast<unsigned char>(s[i - 1])))) {
      return std::string(s.substr(0, i));
    }
  }
  return std::string(s);
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                        (s.front() == '\'' && s.back() == '\''))) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

struct Line {
  int number;
  int indent;
  std::string content;  // trimmed, comment-free
};

std::vector<Line> splitLines(std::string_view text) {
  std::vector<Line> out;
  int number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    ++number;
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;

    int indent = 0;
    while (static_cast<std::size_t>(indent) < raw.size() &&
           raw[indent] == ' ') {
      ++indent;
    }
    if (static_cast<std::size_t>(indent) < raw.size() && raw[indent] == '\t') {
      throw ParseError("tab indentation is not supported", number);
    }
    std::string content = trim(stripComment(raw));
    if (content.empty() || content == "---") continue;
    out.push_back({number, indent, std::move(content)});
  }
  return out;
}

/// Parse a flow sequence "[a, b, c]" of scalars.
Node parseFlowSequence(const std::string& s, int lineNo) {
  Node node;
  node.setKind(Node::Kind::Sequence);
  node.setLine(lineNo);
  std::string inner = trim(std::string_view(s).substr(1, s.size() - 2));
  if (inner.empty()) return node;
  std::size_t start = 0;
  bool inSingle = false;
  bool inDouble = false;
  for (std::size_t i = 0; i <= inner.size(); ++i) {
    if (i < inner.size()) {
      const char c = inner[i];
      if (c == '\'' && !inDouble) inSingle = !inSingle;
      if (c == '"' && !inSingle) inDouble = !inDouble;
      if (c != ',' || inSingle || inDouble) continue;
    }
    std::string item = trim(std::string_view(inner).substr(start, i - start));
    if (item.empty()) throw ParseError("empty flow-sequence element", lineNo);
    node.append(Node(unquote(item), lineNo));
    start = i + 1;
  }
  return node;
}

Node parseScalarOrFlow(const std::string& s, int lineNo) {
  if (s.size() >= 2 && s.front() == '[' && s.back() == ']') {
    return parseFlowSequence(s, lineNo);
  }
  if (!s.empty() && s.front() == '{') {
    throw ParseError("flow mappings are not supported", lineNo);
  }
  return Node(unquote(s), lineNo);
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Node parseDocument() {
    if (lines_.empty()) return Node{};
    Node root = parseBlock(lines_[0].indent);
    if (pos_ != lines_.size()) {
      throw ParseError("unexpected dedent/content after document",
                       lines_[pos_].number);
    }
    return root;
  }

 private:
  /// Parse a block (mapping or sequence) whose entries sit at `indent`.
  Node parseBlock(int indent) {
    const Line& first = lines_[pos_];
    if (first.content.rfind("- ", 0) == 0 || first.content == "-") {
      return parseSequence(indent);
    }
    return parseMapping(indent);
  }

  Node parseMapping(int indent) {
    Node node;
    node.setKind(Node::Kind::Mapping);
    node.setLine(lines_[pos_].number);
    while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
      const Line line = lines_[pos_];
      if (line.content.rfind("- ", 0) == 0 || line.content == "-") {
        throw ParseError("sequence item in mapping block", line.number);
      }
      const std::size_t colon = findKeyColon(line.content, line.number);
      std::string key = unquote(trim(line.content.substr(0, colon)));
      std::string rest = trim(line.content.substr(colon + 1));
      ++pos_;
      if (!rest.empty()) {
        node.insert(std::move(key), parseScalarOrFlow(rest, line.number));
      } else if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        node.insert(std::move(key), parseBlock(lines_[pos_].indent));
      } else {
        node.insert(std::move(key),
                    Node(std::string{}, line.number));  // empty value
      }
      if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        throw ParseError("unexpected indentation", lines_[pos_].number);
      }
    }
    return node;
  }

  Node parseSequence(int indent) {
    Node node;
    node.setKind(Node::Kind::Sequence);
    node.setLine(lines_[pos_].number);
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           (lines_[pos_].content.rfind("- ", 0) == 0 ||
            lines_[pos_].content == "-")) {
      const Line line = lines_[pos_];
      std::string rest =
          line.content == "-" ? std::string{} : trim(line.content.substr(2));
      if (rest.empty()) {
        ++pos_;
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          node.append(parseBlock(lines_[pos_].indent));
        } else {
          node.append(Node(std::string{}, line.number));
        }
        continue;
      }
      // "- key: value" starts an inline mapping whose further keys are
      // indented to the position just after "- ".
      const std::size_t colon = findKeyColonOrNpos(rest);
      if (colon != std::string::npos) {
        // Rewrite this line as a mapping entry at indent+2 and re-parse.
        lines_[pos_] = {line.number, indent + 2, rest};
        node.append(parseMapping(indent + 2));
      } else {
        ++pos_;
        node.append(parseScalarOrFlow(rest, line.number));
      }
    }
    return node;
  }

  static std::size_t findKeyColonOrNpos(const std::string& s) {
    bool inSingle = false;
    bool inDouble = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '\'' && !inDouble) inSingle = !inSingle;
      if (c == '"' && !inSingle) inDouble = !inDouble;
      if (c == ':' && !inSingle && !inDouble &&
          (i + 1 == s.size() || s[i + 1] == ' ')) {
        return i;
      }
      if (c == '[' && !inSingle && !inDouble) return std::string::npos;
    }
    return std::string::npos;
  }

  static std::size_t findKeyColon(const std::string& s, int lineNo) {
    const std::size_t colon = findKeyColonOrNpos(s);
    if (colon == std::string::npos) {
      throw ParseError("expected 'key: value'", lineNo);
    }
    return colon;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

const std::string& Node::asString() const {
  if (!isScalar()) {
    throw ConfigError("expected a scalar value", /*file=*/{}, line_);
  }
  return scalar_;
}

std::int64_t Node::asInt() const {
  const std::string& s = asString();
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    begin += 2;
    base = 16;
  }
  auto [ptr, ec] = std::from_chars(begin, end, value, base);
  if (ec == std::errc::result_out_of_range) {
    throw ConfigError("'" + s + "' overflows a 64-bit integer", {}, line_);
  }
  if (ec != std::errc{} || ptr != end) {
    throw ConfigError("'" + s + "' is not an integer", {}, line_);
  }
  return value;
}

std::uint64_t Node::asUint() const {
  const std::int64_t v = asInt();
  if (v < 0) {
    throw ConfigError(
        "'" + asString() + "' is negative where an unsigned value is required",
        {}, line_);
  }
  return static_cast<std::uint64_t>(v);
}

double Node::asDouble() const {
  const std::string& s = asString();
  // Deliberately no catch-all here: every std::stod failure mode is mapped
  // to a precise ConfigError naming the value and its source line.
  std::size_t consumed = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &consumed);
  } catch (const std::out_of_range&) {
    throw ConfigError("'" + s + "' is out of range for a double", {}, line_);
  } catch (const std::invalid_argument&) {
    throw ConfigError("'" + s + "' is not a number", {}, line_);
  }
  if (consumed != s.size()) {
    throw ConfigError("'" + s + "' has trailing characters after the number",
                      {}, line_);
  }
  return v;
}

bool Node::asBool() const {
  const std::string& s = asString();
  if (s == "true" || s == "True" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "False" || s == "no" || s == "off") return false;
  throw ConfigError("'" + s + "' is not a boolean", {}, line_);
}

bool Node::has(std::string_view key) const {
  for (const auto& [k, v] : map_) {
    if (k == key) return true;
  }
  return false;
}

const Node& Node::at(std::string_view key) const {
  for (const auto& [k, v] : map_) {
    if (k == key) return v;
  }
  throw ConfigError("missing required key", {}, line_, std::string(key));
}

std::int64_t Node::getInt(std::string_view key, std::int64_t fallback) const {
  return has(key) ? at(key).asInt() : fallback;
}

double Node::getDouble(std::string_view key, double fallback) const {
  return has(key) ? at(key).asDouble() : fallback;
}

std::string Node::getString(std::string_view key, std::string fallback) const {
  return has(key) ? at(key).asString() : fallback;
}

std::size_t Node::size() const {
  switch (kind_) {
    case Kind::Scalar:
      return scalar_.size();
    case Kind::Sequence:
      return seq_.size();
    case Kind::Mapping:
      return map_.size();
  }
  return 0;
}

void Node::insert(std::string key, Node node) {
  for (auto& [k, v] : map_) {
    if (k == key) {
      throw ConfigError("duplicate key", {}, node.line(), key);
    }
  }
  map_.emplace_back(std::move(key), std::move(node));
}

Node parse(std::string_view text) {
  Parser parser(splitLines(text));
  return parser.parseDocument();
}

Node parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open file", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const ConfigError& e) {
    throw e.withFile(path);
  }
}

}  // namespace riscmp::yaml
