#include "support/atomic_file.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace riscmp::support {

bool writeFileAtomic(const std::string& path, const std::string& content,
                     std::string* error) {
  // The temporary must live in the destination directory: rename(2) is
  // only atomic within one filesystem. The pid suffix keeps concurrent
  // writers (e.g. two bench runs in one build tree) from clobbering each
  // other's staging file.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + temp + " for writing";
      return false;
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "short write to " + temp;
      std::remove(temp.c_str());
      return false;
    }
  }

  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + temp + " to " + path;
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace riscmp::support
