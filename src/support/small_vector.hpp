// A fixed-capacity inline vector used on the hot retire path.
//
// Instruction operand lists are tiny (<= 5 registers, <= 2 memory accesses),
// so the simulator stores them inline to avoid per-instruction heap traffic.
// Exceeding the inline capacity is a programming error and asserts.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>

namespace riscmp {

template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    assert(init.size() <= N);
    for (const T& v : init) push_back(v);
  }

  void push_back(const T& v) {
    assert(size_ < N && "SmallVector inline capacity exceeded");
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  static constexpr std::size_t capacity() { return N; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  iterator begin() { return data_.data(); }
  iterator end() { return data_.data() + size_; }
  const_iterator begin() const { return data_.data(); }
  const_iterator end() const { return data_.data() + size_; }

  bool operator==(const SmallVector& other) const {
    if (size_ != other.size_) return false;
    for (std::size_t i = 0; i < size_; ++i)
      if (!(data_[i] == other.data_[i])) return false;
    return true;
  }

 private:
  std::array<T, N> data_{};
  std::size_t size_ = 0;
};

}  // namespace riscmp
