// Kernel IR: the input language of the built-in compiler that substitutes
// for the paper's GCC 9.2 / 12.2 toolchains.
//
// The IR deliberately matches the shape of the paper's five workloads:
// perfectly nested counted loops over double-precision arrays with affine
// indexing, FP expression trees (with FMA-contractible patterns), scalar
// reductions, and min/max/sqrt/abs intrinsics. Loop extents are
// compile-time constants — like the benchmarks, whose sizes are fixed at
// build time by -D flags or input decks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace riscmp::kgen {

/// An affine index expression: sum of (loop-var * stride) terms plus a
/// constant element offset.
struct AffineIdx {
  struct Term {
    std::string var;
    std::int64_t stride = 1;
  };
  std::vector<Term> terms;
  std::int64_t offset = 0;

  bool operator==(const AffineIdx&) const = default;
};

/// idx("i") or idx("i", stride) — single-variable index.
AffineIdx idx(std::string var, std::int64_t stride = 1);
/// idx2("y", rowStride, "x") — row-major 2-D index y*rowStride + x.
AffineIdx idx2(std::string rowVar, std::int64_t rowStride, std::string colVar);
AffineIdx operator+(AffineIdx index, std::int64_t offset);

enum class BinOp { Add, Sub, Mul, Div, Min, Max };
enum class UnOp { Neg, Abs, Sqrt };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind {
    ConstF,      ///< double literal
    LoadArr,     ///< array[affine index]
    LoadScalar,  ///< named scalar (register-resident within a kernel)
    Bin,
    Unary,
  };
  Kind kind = Kind::ConstF;
  double constant = 0.0;
  std::string name;  ///< array or scalar name
  AffineIdx index;
  BinOp bin = BinOp::Add;
  UnOp un = UnOp::Neg;
  ExprPtr lhs;
  ExprPtr rhs;
};

// -- Expression builders ----------------------------------------------------
ExprPtr cnst(double value);
ExprPtr load(std::string array, AffineIdx index);
ExprPtr scalar(std::string name);
ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr unary(UnOp op, ExprPtr operand);
ExprPtr add(ExprPtr lhs, ExprPtr rhs);
ExprPtr sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr divide(ExprPtr lhs, ExprPtr rhs);
ExprPtr fmin(ExprPtr lhs, ExprPtr rhs);
ExprPtr fmax(ExprPtr lhs, ExprPtr rhs);
ExprPtr neg(ExprPtr operand);
ExprPtr fabs(ExprPtr operand);
ExprPtr fsqrt(ExprPtr operand);

struct Stmt {
  enum class Kind {
    StoreArr,     ///< array[index] = value
    SetScalar,    ///< name = value
    AccumScalar,  ///< name += value (serial reduction chain)
    Loop,         ///< for (var = 0; var < extent; ++var) body
  };
  Kind kind = Kind::Loop;

  std::string target;  ///< array or scalar name
  AffineIdx index;
  ExprPtr value;

  std::string loopVar;
  std::int64_t extent = 0;
  std::vector<Stmt> body;
};

Stmt storeArr(std::string array, AffineIdx index, ExprPtr value);
Stmt setScalar(std::string name, ExprPtr value);
Stmt accumScalar(std::string name, ExprPtr value);
Stmt loop(std::string var, std::int64_t extent, std::vector<Stmt> body);

/// A named kernel: one entry in the program's symbol table, and the unit of
/// path-length attribution (Figure 1).
struct Kernel {
  std::string name;
  std::vector<Stmt> body;
};

struct ArrayDecl {
  std::string name;
  std::int64_t elems = 0;
  /// Initial contents; empty means zero-initialised. When non-empty its
  /// size must equal `elems`.
  std::vector<double> init;
};

struct ScalarDecl {
  std::string name;
  double init = 0.0;
};

struct Module {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<ScalarDecl> scalars;
  std::vector<Kernel> kernels;

  ArrayDecl& array(std::string name, std::int64_t elems);
  void scalarInit(std::string name, double value);
  Kernel& kernel(std::string name);

  [[nodiscard]] const ArrayDecl* findArray(std::string_view name) const;
  [[nodiscard]] const ScalarDecl* findScalar(std::string_view name) const;

  /// Structural checks: names resolve, extents positive, loop vars unique
  /// on each path, every index var bound by an enclosing loop. Throws
  /// std::runtime_error on violation.
  void validate() const;
};

}  // namespace riscmp::kgen
