// Human-readable dumps of kernel IR and compiled programs — the tooling
// layer behind the examples and the debugging workflow (the equivalent of
// the paper artifact's raw-output inspection).
#pragma once

#include <string>

#include "core/program.hpp"
#include "kgen/ir.hpp"

namespace riscmp::kgen {

/// Render an expression as a C-like string, e.g.
/// "b[j] + scalar * c[j]".
std::string dumpExpr(const Expr& expr);

/// Render a whole module: arrays, scalars, and each kernel's loop nest.
std::string dumpModule(const Module& module);

/// Disassemble a compiled program with kernel labels, one instruction per
/// line ("<pc>: <text>"). Works for either ISA.
std::string dumpProgram(const Program& program);

}  // namespace riscmp::kgen
