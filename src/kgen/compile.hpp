// Compilation interface: Module -> Program for either ISA under either
// compiler-era model.
//
// The era model reproduces the codegen idioms the paper attributes to
// GCC 9.2 and GCC 12.2 (§3.3):
//   * AArch64/Gcc12 — counted loops exit via `cmp index, limit` with the
//     limit held in a register (one instruction of compare overhead).
//   * AArch64/Gcc9 — loops exit via the two-instruction
//     `sub tmp, index, #hi, lsl #12; subs tmp, tmp, #lo` sequence the paper
//     observed, costing one extra instruction per iteration.
//   * RISC-V — identical code under both eras ("the main kernels remain the
//     same for both RISC-V binaries"): per-array pointer bumping with the
//     fused compare-and-branch `bne ptr, end` as loop exit.
// Both backends contract a*b±c to fused multiply-add, use fmin/fmax
// (AArch64: fminnm/fmaxnm) for the Min/Max ops, and keep scalars and FP
// constants register-resident across loop nests.
#pragma once

#include <map>
#include <string>

#include "core/program.hpp"
#include "kgen/ir.hpp"

namespace riscmp::kgen {

enum class CompilerEra { Gcc9, Gcc12 };

constexpr std::string_view eraName(CompilerEra era) {
  return era == CompilerEra::Gcc9 ? "GCC 9.2" : "GCC 12.2";
}

struct Compiled {
  Program program;
  std::map<std::string, std::uint64_t> arrayAddr;
  std::map<std::string, std::uint64_t> scalarAddr;
};

class CompileError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Compile a validated module. Throws CompileError on resource exhaustion
/// (register pools) or unsupported constructs.
Compiled compile(const Module& module, Arch arch, CompilerEra era);

}  // namespace riscmp::kgen
