// AArch64 (Armv8-a scalar) backend.
//
// Lowering follows the idioms the paper observed in GCC's AArch64 output
// (§3.3 and Listing 1):
//   * one shared index register per loop, with register-offset scaled
//     addressing `ldr d, [base, idx, lsl #3]` ("only a single register (X0)
//     is needed to store an offset into the array");
//   * per-(array, offset) base registers materialised in loop preheaders
//     (scoped, so wide kernels such as LBM's halo exchange stay within the
//     register file), so stencil offsets cost no per-iteration work;
//   * loop exit via an explicit NZCV-setting compare followed by b.ne:
//       - Gcc12 era: `cmp idx, limit` (limit register hoisted) — 1 insn;
//       - Gcc9 era:  `sub tmp, idx, #hi, lsl #12; subs tmp, tmp, #lo`
//         — the 2-insn sequence the paper found, +1 per iteration;
//   * countdown `subs/b.ne` for loops whose variable indexes nothing;
//   * strided accesses that register-offset addressing cannot express fall
//     back to pointer bumping, as GCC's ivopts does.
#include <bit>
#include <map>
#include <optional>

#include "aarch64/encode.hpp"
#include "kgen/backend_common.hpp"
#include "kgen/layout.hpp"
#include "support/bits.hpp"

namespace riscmp::kgen {

using a64::AddrMode;
using a64::Cond;
using a64::Extend;
using a64::Inst;
using a64::Op;
using a64::Shift;

namespace {

class A64Backend {
 public:
  A64Backend(const Module& module, CompilerEra era)
      : module_(module), era_(era), layout_(module) {}

  Compiled run() {
    module_.validate();
    for (const Kernel& kernel : module_.kernels) compileKernel(kernel);
    emitExit();
    resolveFixups();

    Compiled out;
    out.program.arch = Arch::AArch64;
    out.program.codeBase = ModuleLayout::kCodeBase;
    out.program.entry = layout_.entry();
    out.program.code = layout_.constPoolWords();
    out.program.code.insert(out.program.code.end(), code_.begin(),
                            code_.end());
    out.program.dataBase = ModuleLayout::kDataBase;
    out.program.data = layout_.dataSegment();
    out.program.kernels = std::move(kernels_);
    out.arrayAddr = layout_.arrayAddrs();
    out.scalarAddr = layout_.scalarAddrs();
    return out;
  }

 private:
  // ---- emitter --------------------------------------------------------------
  [[nodiscard]] std::uint64_t pcHere() const {
    return layout_.entry() + code_.size() * 4;
  }
  void emit(const Inst& inst) { code_.push_back(a64::encode(inst)); }

  int newLabel() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size() - 1);
  }
  void bind(int label) {
    labels_[static_cast<std::size_t>(label)] =
        static_cast<std::int64_t>(code_.size());
  }
  void emitCondBranch(Cond cond, int label) {
    fixups_.push_back({code_.size(), label});
    pending_.push_back(a64::makeCondBranch(cond, 0));
    code_.push_back(0);
  }
  void resolveFixups() {
    for (std::size_t i = 0; i < fixups_.size(); ++i) {
      const auto& [index, label] = fixups_[i];
      const std::int64_t target = labels_[static_cast<std::size_t>(label)];
      if (target < 0) throw CompileError("a64 backend: unbound label");
      Inst inst = pending_[i];
      inst.imm = (target - static_cast<std::int64_t>(index)) * 4;
      code_[index] = a64::encode(inst);
    }
  }

  // ---- helpers ---------------------------------------------------------------
  void emitMovImm(unsigned rd, std::uint64_t value) {
    emit(a64::makeMoveWide(Op::MOVZ, rd,
                           static_cast<std::uint16_t>(value & 0xffff), 0));
    for (unsigned shift = 16; shift < 64; shift += 16) {
      const auto piece =
          static_cast<std::uint16_t>((value >> shift) & 0xffff);
      if (piece != 0) emit(a64::makeMoveWide(Op::MOVK, rd, piece, shift));
    }
  }

  /// Load a pool constant with a pc-relative literal load (GCC's literal
  /// pool idiom); the pool precedes the code so the offset is known.
  void emitLoadConst(unsigned dreg, double value) {
    const std::uint64_t addr = layout_.constAddr(value);
    const std::int64_t offset =
        static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(pcHere());
    Inst inst;
    inst.op = Op::LDR_LIT_D;
    inst.rd = static_cast<std::uint8_t>(dreg);
    inst.mode = AddrMode::Literal;
    inst.imm = offset;
    emit(inst);
  }

  // ---- register pools -----------------------------------------------------------
  // x0..x2 scratch; x29/x30 untouched by convention.
  static constexpr std::array<unsigned, 26> kIntPool = {
      3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,
      16, 17, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 18};
  static constexpr unsigned kScratch0 = 0;
  static constexpr unsigned kScratch1 = 1;
  static constexpr std::array<unsigned, 8> kFpTempPool = {0, 1, 2, 3,
                                                          4, 5, 6, 7};
  static constexpr std::array<unsigned, 24> kFpPersistPool = {
      8,  9,  10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
      20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31};

  // ---- kernel compilation -----------------------------------------------------------
  void compileKernel(const Kernel& kernel) {
    intPool_ = RegPool("int", {kIntPool.begin(), kIntPool.end()});
    fpTemp_ = RegPool("fp-temp", {kFpTempPool.begin(), kFpTempPool.end()});
    fpPersist_ =
        RegPool("fp-persist", {kFpPersistPool.begin(), kFpPersistPool.end()});
    scalarRegs_.clear();
    constRegs_.clear();
    writtenScalars_.clear();
    limitRegs_.clear();
    scalarBaseReg_.reset();

    const std::uint64_t startPc = pcHere();
    const KernelInfo info = analyzeKernel(module_, kernel);

    // Prologue: scalars via a base register, constants via literal loads.
    if (!info.scalars.empty()) {
      scalarBaseReg_ = intPool_.alloc();
      emitMovImm(*scalarBaseReg_, layout_.scalarBase());
      for (const std::string& name : info.scalars) {
        const unsigned reg = fpPersist_.alloc();
        scalarRegs_[name] = reg;
        emit(a64::makeLoadStore(
            Op::LDRD, reg, *scalarBaseReg_,
            static_cast<std::int64_t>(layout_.scalarAddr(name) -
                                      layout_.scalarBase())));
      }
    }
    for (const double value : info.constants) {
      const unsigned reg = fpPersist_.alloc();
      constRegs_[constKey(value)] = reg;
      emitLoadConst(reg, value);
    }

    // Hoisted limit registers for the Gcc12 `cmp idx, limit` idiom.
    if (era_ == CompilerEra::Gcc12) prepareLimits(kernel);

    LoopCtx root;
    root.parent = nullptr;
    for (const Stmt& stmt : kernel.body) compileStmt(stmt, root);

    for (const std::string& name : writtenScalars_) {
      if (!scalarBaseReg_) {
        scalarBaseReg_ = intPool_.alloc();
        emitMovImm(*scalarBaseReg_, layout_.scalarBase());
      }
      emit(a64::makeLoadStore(
          Op::STRD, scalarRegs_.at(name), *scalarBaseReg_,
          static_cast<std::int64_t>(layout_.scalarAddr(name) -
                                    layout_.scalarBase())));
    }

    kernels_.push_back(Symbol{kernel.name, startPc, pcHere() - startPc});
  }

  void emitExit() {
    emit(a64::makeMoveWide(Op::MOVZ, 0, 0, 0));   // x0 = 0
    emit(a64::makeMoveWide(Op::MOVZ, 8, 93, 0));  // x8 = exit
    emit(a64::makeSvc(0));
  }

  /// rowBase map key: term structure + constant offset. Base registers are
  /// loop-scoped (materialised in the preheader), keeping register pressure
  /// bounded for kernels with many distinct (array, offset) pairs such as
  /// LBM's halo exchanges.
  using BaseKey = std::pair<std::string, std::int64_t>;
  static std::string serializeKey(const GroupKey& key) {
    std::string out = key.array;
    for (const auto& [var, stride] : key.terms) {
      out += '#' + var + ':' + std::to_string(stride);
    }
    return out;
  }

  void prepareLimits(const Kernel& kernel) {
    auto scan = [&](const Stmt& stmt, auto&& self) -> void {
      if (stmt.kind == Stmt::Kind::Loop) {
        if (loopVarUsed(stmt, stmt.loopVar) &&
            limitRegs_.count(stmt.extent) == 0) {
          const unsigned reg = intPool_.alloc();
          emitMovImm(reg, static_cast<std::uint64_t>(stmt.extent));
          limitRegs_[stmt.extent] = reg;
        }
        for (const Stmt& inner : stmt.body) self(inner, self);
      }
    };
    for (const Stmt& stmt : kernel.body) scan(stmt, scan);
  }

  // ---- loop lowering -----------------------------------------------------------------
  /// Pointer-style group (strided or loop-invariant accesses that
  /// register-offset addressing cannot express).
  struct PtrGroup {
    GroupKey key;
    unsigned reg = 0;
    std::int64_t innerStride = 0;
  };

  struct LoopCtx {
    const LoopCtx* parent = nullptr;
    std::string var;
    std::optional<unsigned> indexReg;  ///< element counter for `var`
    std::vector<PtrGroup> ptrGroups;
    /// rowBase registers for reg-offset accesses, keyed by
    /// (serialised term structure, offset).
    std::map<BaseKey, unsigned> rowBases;
  };

  [[nodiscard]] static const LoopCtx* findLoop(const LoopCtx& ctx,
                                               const std::string& var) {
    for (const LoopCtx* scope = &ctx; scope != nullptr;
         scope = scope->parent) {
      if (scope->var == var) return scope;
    }
    return nullptr;
  }

  void compileStmt(const Stmt& stmt, LoopCtx& ctx) {
    switch (stmt.kind) {
      case Stmt::Kind::Loop:
        compileLoop(stmt, ctx);
        return;
      case Stmt::Kind::StoreArr: {
        const Val value = genExpr(*stmt.value, ctx);
        emitAccess(Op::STRD, value.reg, stmt.target, stmt.index, ctx);
        release(value);
        return;
      }
      case Stmt::Kind::SetScalar: {
        const unsigned acc = scalarRegs_.at(stmt.target);
        if (stmt.value->kind == Expr::Kind::LoadArr) {
          emitAccess(Op::LDRD, acc, stmt.value->name, stmt.value->index, ctx);
        } else {
          const Val value = genExpr(*stmt.value, ctx);
          emit(a64::makeFp1(Op::FMOV_D, acc, value.reg));
          release(value);
        }
        markScalarWritten(stmt.target);
        return;
      }
      case Stmt::Kind::AccumScalar: {
        const unsigned acc = scalarRegs_.at(stmt.target);
        if (stmt.value->kind == Expr::Kind::Bin &&
            stmt.value->bin == BinOp::Mul) {
          const Val x = genExpr(*stmt.value->lhs, ctx);
          const Val y = genExpr(*stmt.value->rhs, ctx);
          emit(a64::makeFp3(Op::FMADD_D, acc, x.reg, y.reg, acc));
          release(x);
          release(y);
        } else {
          const Val value = genExpr(*stmt.value, ctx);
          emit(a64::makeFp2(Op::FADD_D, acc, acc, value.reg));
          release(value);
        }
        markScalarWritten(stmt.target);
        return;
      }
    }
  }

  /// True when the access can use register-offset addressing in the loop
  /// over `var`: its term over `var` has stride 1.
  static bool regOffsetEligible(const GroupKey& key, const std::string& var) {
    return strideOf(key, var) == 1;
  }

  void compileLoop(const Stmt& loopStmt, LoopCtx& parent) {
    LoopCtx ctx;
    ctx.parent = &parent;
    ctx.var = loopStmt.loopVar;

    // loopVarUsed is recursive, so it also covers uses in nested loops —
    // the same condition prepareLimits used when hoisting limit registers.
    const bool varUsed = loopVarUsed(loopStmt, loopStmt.loopVar);
    if (varUsed) ctx.indexReg = intPool_.alloc();

    // Partition this loop's immediate accesses.
    const std::vector<GroupKey> keys = collectGroups(loopStmt.body, module_);
    std::vector<GroupKey> regOffsetKeys;
    for (const GroupKey& key : keys) {
      if (regOffsetEligible(key, ctx.var)) {
        regOffsetKeys.push_back(key);
      } else {
        PtrGroup group;
        group.key = key;
        group.reg = intPool_.alloc();
        group.innerStride = strideOf(key, ctx.var);
        ctx.ptrGroups.push_back(group);
      }
    }

    // ---- preheader.
    if (ctx.indexReg) emit(a64::makeMoveWide(Op::MOVZ, *ctx.indexReg, 0, 0));
    // rowBase registers: array base + constant offset + outer-term
    // contributions, one per (term structure, offset) pair. Register-offset
    // addressing has no displacement field, so each offset needs its own.
    for (const GroupKey& key : regOffsetKeys) {
      for (const auto& [array, offset] : distinctOffsets(loopStmt, key)) {
        const unsigned reg = intPool_.alloc();
        initRowBase(reg, key, offset, ctx);
        ctx.rowBases[{serializeKey(key), offset}] = reg;
      }
    }
    for (PtrGroup& group : ctx.ptrGroups) initPointer(group, ctx);

    std::optional<unsigned> counterReg;
    if (!ctx.indexReg) {
      counterReg = intPool_.alloc();
      emitMovImm(*counterReg, static_cast<std::uint64_t>(loopStmt.extent));
    }

    // ---- body.
    const int head = newLabel();
    bind(head);
    for (const Stmt& stmt : loopStmt.body) compileStmt(stmt, ctx);

    // ---- latch.
    for (const PtrGroup& group : ctx.ptrGroups) {
      if (group.innerStride != 0) {
        emit(a64::makeAddSubImm(Op::ADDi, group.reg, group.reg,
                                static_cast<std::uint32_t>(
                                    group.innerStride * 8)));
      }
    }
    if (ctx.indexReg) {
      emit(a64::makeAddSubImm(Op::ADDi, *ctx.indexReg, *ctx.indexReg, 1));
      emitLoopExitCompare(*ctx.indexReg, loopStmt.extent);
      emitCondBranch(Cond::NE, head);
    } else {
      emit(a64::makeAddSubImm(Op::SUBSi, *counterReg, *counterReg, 1));
      emitCondBranch(Cond::NE, head);
    }

    // Release loop-scoped registers.
    if (counterReg) intPool_.release(*counterReg);
    if (ctx.indexReg) intPool_.release(*ctx.indexReg);
    for (const auto& [key, reg] : ctx.rowBases) intPool_.release(reg);
    for (const PtrGroup& group : ctx.ptrGroups) intPool_.release(group.reg);
  }

  /// The era-dependent loop-exit compare (paper §3.3).
  void emitLoopExitCompare(unsigned indexReg, std::int64_t extent) {
    if (era_ == CompilerEra::Gcc12) {
      emit(a64::makeCmpReg(indexReg, limitRegs_.at(extent)));
      return;
    }
    // Gcc9 era: sub tmp, idx, #hi, lsl #12 ; subs tmp, tmp, #lo.
    const auto hi = static_cast<std::uint32_t>((extent >> 12) & 0xfff);
    const auto lo = static_cast<std::uint32_t>(extent & 0xfff);
    emit(a64::makeAddSubImm(Op::SUBi, kScratch0, indexReg, hi, true));
    emit(a64::makeAddSubImm(Op::SUBSi, kScratch0, kScratch0, lo));
  }

  /// Offsets used with this term structure among the loop's immediate
  /// accesses (each needs its own rowBase, since register-offset addressing
  /// has no displacement field).
  static std::vector<BaseKey> distinctOffsets(const Stmt& loopStmt,
                                              const GroupKey& key) {
    std::vector<BaseKey> out;
    detail::forEachImmediateAccess(
        loopStmt.body, [&](const std::string& array, const AffineIdx& index) {
          if (groupKeyFor(array, index) == key) {
            const BaseKey entry{array, index.offset};
            if (std::find(out.begin(), out.end(), entry) == out.end()) {
              out.push_back(entry);
            }
          }
        });
    return out;
  }

  /// Add the outer-loop contributions of `terms` to `reg` in place.
  void addOuterContributions(
      unsigned reg,
      const std::vector<std::pair<std::string, std::int64_t>>& terms,
      const LoopCtx& ctx) {
    for (const auto& [var, stride] : terms) {
      if (var == ctx.var) continue;
      const LoopCtx* outer =
          ctx.parent ? findLoop(*ctx.parent, var) : nullptr;
      if (outer == nullptr || !outer->indexReg) {
        throw CompileError("a64 backend: no index register for '" + var +
                           "'");
      }
      const std::uint64_t byteStride =
          static_cast<std::uint64_t>(stride) * 8;
      if (isPow2(byteStride)) {
        emit(a64::makeAddSubReg(
            Op::ADDr, reg, reg, *outer->indexReg, Shift::LSL,
            static_cast<unsigned>(std::countr_zero(byteStride))));
      } else {
        emitMovImm(kScratch0, byteStride);
        emit(a64::makeDp3(Op::MADD, reg, *outer->indexReg, kScratch0, reg));
      }
    }
  }

  /// rowBase = array base + offset*8 + Σ outer-term contributions.
  void initRowBase(unsigned reg, const GroupKey& key, std::int64_t offset,
                   const LoopCtx& ctx) {
    emitMovImm(reg, layout_.arrayAddr(key.array) +
                        static_cast<std::uint64_t>(offset * 8));
    addOuterContributions(reg, key.terms, ctx);
  }

  /// Pointer-group initialisation mirrors the RISC-V backend.
  void initPointer(const PtrGroup& group, const LoopCtx& ctx) {
    emitMovImm(group.reg,
               layout_.arrayAddr(group.key.array) +
                   static_cast<std::uint64_t>(group.key.baseOffset * 8));
    addOuterContributions(group.reg, group.key.terms, ctx);
  }

  /// Emit one load or store (op is LDRD or STRD) for `array[index]`.
  void emitAccess(Op op, unsigned dreg, const std::string& array,
                  const AffineIdx& index, const LoopCtx& ctx) {
    const GroupKey key = groupKeyFor(array, index);

    // Pointer-style group anywhere up the loop stack?
    for (const LoopCtx* scope = &ctx; scope != nullptr;
         scope = scope->parent) {
      for (const PtrGroup& group : scope->ptrGroups) {
        if (group.key == key) {
          const std::int64_t disp = (index.offset - group.key.baseOffset) * 8;
          const AddrMode mode =
              (disp >= 0) ? AddrMode::Offset : AddrMode::Unscaled;
          emit(a64::makeLoadStore(op, dreg, group.reg, disp, mode));
          return;
        }
      }
    }

    // Register-offset form: [rowBase, idx, lsl #3]. The group (and its
    // rowBase) lives in the loop whose immediate body contains the access.
    const BaseKey rowKey{serializeKey(key), index.offset};
    for (const LoopCtx* scope = &ctx; scope != nullptr;
         scope = scope->parent) {
      const auto it = scope->rowBases.find(rowKey);
      if (it == scope->rowBases.end()) continue;
      if (!scope->indexReg) break;
      emit(a64::makeLoadStoreReg(op, dreg, it->second, *scope->indexReg,
                                 Extend::UXTX, /*scaled=*/true));
      return;
    }
    throw CompileError("a64 backend: no addressing path for '" + array +
                       "'");
  }

  // ---- expressions ---------------------------------------------------------------------
  struct Val {
    unsigned reg;
    bool temp;
  };
  void release(const Val& value) {
    if (value.temp) fpTemp_.release(value.reg);
  }
  void markScalarWritten(const std::string& name) {
    if (std::find(writtenScalars_.begin(), writtenScalars_.end(), name) ==
        writtenScalars_.end()) {
      writtenScalars_.push_back(name);
    }
  }

  Val genExpr(const Expr& expr, const LoopCtx& ctx) {
    switch (expr.kind) {
      case Expr::Kind::ConstF:
        return {constRegs_.at(constKey(expr.constant)), false};
      case Expr::Kind::LoadScalar:
        return {scalarRegs_.at(expr.name), false};
      case Expr::Kind::LoadArr: {
        const unsigned reg = fpTemp_.alloc();
        emitAccess(Op::LDRD, reg, expr.name, expr.index, ctx);
        return {reg, true};
      }
      case Expr::Kind::Bin:
        return genBin(expr, ctx);
      case Expr::Kind::Unary: {
        const Val a = genExpr(*expr.lhs, ctx);
        const unsigned reg = a.temp ? a.reg : fpTemp_.alloc();
        switch (expr.un) {
          case UnOp::Neg:
            emit(a64::makeFp1(Op::FNEG_D, reg, a.reg));
            break;
          case UnOp::Abs:
            emit(a64::makeFp1(Op::FABS_D, reg, a.reg));
            break;
          case UnOp::Sqrt:
            emit(a64::makeFp1(Op::FSQRT_D, reg, a.reg));
            break;
        }
        return {reg, true};
      }
    }
    throw CompileError("a64 backend: bad expression");
  }

  Val genBin(const Expr& expr, const LoopCtx& ctx) {
    const bool lhsMul =
        expr.lhs->kind == Expr::Kind::Bin && expr.lhs->bin == BinOp::Mul;
    const bool rhsMul =
        expr.rhs->kind == Expr::Kind::Bin && expr.rhs->bin == BinOp::Mul;
    if (expr.bin == BinOp::Add && (lhsMul || rhsMul)) {
      const Expr& mulNode = lhsMul ? *expr.lhs : *expr.rhs;
      const Expr& addend = lhsMul ? *expr.rhs : *expr.lhs;
      const Val x = genExpr(*mulNode.lhs, ctx);
      const Val y = genExpr(*mulNode.rhs, ctx);
      const Val z = genExpr(addend, ctx);
      const unsigned reg = fpTemp_.alloc();
      emit(a64::makeFp3(Op::FMADD_D, reg, x.reg, y.reg, z.reg));
      release(x);
      release(y);
      release(z);
      return {reg, true};
    }
    if (expr.bin == BinOp::Sub && lhsMul) {
      // x*y - z: A64 FNMSUB computes Rn*Rm - Ra.
      const Val x = genExpr(*expr.lhs->lhs, ctx);
      const Val y = genExpr(*expr.lhs->rhs, ctx);
      const Val z = genExpr(*expr.rhs, ctx);
      const unsigned reg = fpTemp_.alloc();
      emit(a64::makeFp3(Op::FNMSUB_D, reg, x.reg, y.reg, z.reg));
      release(x);
      release(y);
      release(z);
      return {reg, true};
    }

    const Val a = genExpr(*expr.lhs, ctx);
    const Val b = genExpr(*expr.rhs, ctx);
    const unsigned reg = a.temp ? a.reg : (b.temp ? b.reg : fpTemp_.alloc());
    Op op = Op::FADD_D;
    switch (expr.bin) {
      case BinOp::Add:
        op = Op::FADD_D;
        break;
      case BinOp::Sub:
        op = Op::FSUB_D;
        break;
      case BinOp::Mul:
        op = Op::FMUL_D;
        break;
      case BinOp::Div:
        op = Op::FDIV_D;
        break;
      case BinOp::Min:
        op = Op::FMINNM_D;  // number-preferring min, like GCC's fmin()
        break;
      case BinOp::Max:
        op = Op::FMAXNM_D;
        break;
    }
    emit(a64::makeFp2(op, reg, a.reg, b.reg));
    if (a.temp && reg != a.reg) fpTemp_.release(a.reg);
    if (b.temp && reg != b.reg) fpTemp_.release(b.reg);
    return {reg, true};
  }

  // ---- state ----------------------------------------------------------------
  const Module& module_;
  CompilerEra era_;
  ModuleLayout layout_;

  std::vector<std::uint32_t> code_;
  std::vector<std::int64_t> labels_;
  std::vector<std::pair<std::size_t, int>> fixups_;
  std::vector<Inst> pending_;
  std::vector<Symbol> kernels_;

  RegPool intPool_{"int", {}};
  RegPool fpTemp_{"fp-temp", {}};
  RegPool fpPersist_{"fp-persist", {}};
  std::map<std::string, unsigned> scalarRegs_;
  std::map<std::uint64_t, unsigned> constRegs_;
  std::vector<std::string> writtenScalars_;
  std::map<std::int64_t, unsigned> limitRegs_;
  std::optional<unsigned> scalarBaseReg_;
};

}  // namespace

Compiled compileA64(const Module& module, CompilerEra era) {
  A64Backend backend(module, era);
  return backend.run();
}

}  // namespace riscmp::kgen
