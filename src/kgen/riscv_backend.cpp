// RISC-V (rv64g) backend.
//
// Lowering follows the idioms the paper observed in GCC's rv64g output
// (§3.3 and Listing 2):
//   * one induction pointer per (array, index-term) group, bumped by
//     stride*8 each iteration ("RISC-V requires two add instructions: one
//     for the array being loaded from, and one for the array being stored
//     to");
//   * loop exit through the fused compare-and-branch `bne ptr, end` with no
//     separate compare instruction;
//   * immediate-offset loads/stores only ("Immediate offsetting is the only
//     form of load or store in RISC-V");
//   * identical code under both compiler eras ("the main kernels remain the
//     same for both RISC-V binaries").
#include <algorithm>
#include <map>
#include <optional>

#include "kgen/backend_common.hpp"
#include "kgen/layout.hpp"
#include "riscv/encode.hpp"
#include "support/bits.hpp"

namespace riscmp::kgen {

using rv64::Inst;
using rv64::Op;

namespace {

class RvBackend {
 public:
  RvBackend(const Module& module, CompilerEra era)
      : module_(module), era_(era), layout_(module) {
    (void)era_;  // both eras lower identically on RISC-V (§3.2)
  }

  Compiled run() {
    module_.validate();
    for (const Kernel& kernel : module_.kernels) compileKernel(kernel);
    emitExit();
    resolveFixups();

    Compiled out;
    out.program.arch = Arch::Rv64;
    out.program.codeBase = ModuleLayout::kCodeBase;
    out.program.entry = layout_.entry();
    out.program.code = layout_.constPoolWords();
    out.program.code.insert(out.program.code.end(), code_.begin(),
                            code_.end());
    out.program.dataBase = ModuleLayout::kDataBase;
    out.program.data = layout_.dataSegment();
    out.program.kernels = std::move(kernels_);
    out.arrayAddr = layout_.arrayAddrs();
    out.scalarAddr = layout_.scalarAddrs();
    return out;
  }

 private:
  // ---- emitter ------------------------------------------------------------
  [[nodiscard]] std::uint64_t pcHere() const {
    return layout_.entry() + code_.size() * 4;
  }
  void emit(const Inst& inst) { code_.push_back(rv64::encode(inst)); }

  int newLabel() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size() - 1);
  }
  void bind(int label) {
    labels_[static_cast<std::size_t>(label)] =
        static_cast<std::int64_t>(code_.size());
  }
  void emitBranch(Op op, unsigned rs1, unsigned rs2, int label) {
    fixups_.push_back({code_.size(), label});
    Inst inst = rv64::makeB(op, rs1, rs2, 0);
    code_.push_back(0);
    pending_.push_back(inst);
  }
  void resolveFixups() {
    for (std::size_t i = 0; i < fixups_.size(); ++i) {
      const auto& [index, label] = fixups_[i];
      const std::int64_t target = labels_[static_cast<std::size_t>(label)];
      if (target < 0) throw CompileError("riscv backend: unbound label");
      Inst inst = pending_[i];
      inst.imm = (target - static_cast<std::int64_t>(index)) * 4;
      code_[index] = rv64::encode(inst);
    }
  }

  // ---- small code helpers ---------------------------------------------------
  void emitLi(unsigned rd, std::int64_t value) {
    if (fitsSigned(value, 12)) {
      emit(rv64::makeI(Op::ADDI, rd, 0, value));
      return;
    }
    if (!fitsSigned(value, 32)) {
      throw CompileError("riscv backend: immediate exceeds 32 bits");
    }
    const std::int64_t hi = (value + 0x800) >> 12;
    const std::int64_t lo = value - (hi << 12);
    emit(rv64::makeU(Op::LUI, rd, hi << 12));
    if (lo != 0) emit(rv64::makeI(Op::ADDIW, rd, rd, lo));
  }
  void emitLa(unsigned rd, std::uint64_t addr) {
    emitLi(rd, static_cast<std::int64_t>(addr));
  }

  // ---- register pools --------------------------------------------------------
  // Persistent integer registers (pointers, counters, limits, bases).
  // x10..x12 stay reserved as scratch; x1 (ra), x2 (sp), x4 (tp) untouched.
  static constexpr std::array<unsigned, 24> kIntPool = {
      5,  6,  7,  9,  13, 14, 15, 16, 17, 18, 19, 20,
      21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 3};
  static constexpr unsigned kScratch0 = 10;
  static constexpr unsigned kScratch1 = 11;
  // FP temporaries for expression trees (trees are shallow; 8 suffice).
  static constexpr std::array<unsigned, 8> kFpTempPool = {0, 1, 2, 3,
                                                          4, 5, 6, 7};
  // FP persistent registers (scalars, constants, accumulators).
  static constexpr std::array<unsigned, 24> kFpPersistPool = {
      8,  9,  10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
      20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31};

  // ---- kernel compilation ------------------------------------------------------
  void compileKernel(const Kernel& kernel) {
    intPool_ = RegPool("int", {kIntPool.begin(), kIntPool.end()});
    fpTemp_ = RegPool("fp-temp", {kFpTempPool.begin(), kFpTempPool.end()});
    fpPersist_ =
        RegPool("fp-persist", {kFpPersistPool.begin(), kFpPersistPool.end()});
    scalarRegs_.clear();
    constRegs_.clear();
    writtenScalars_.clear();
    scalarBaseReg_.reset();
    constBaseReg_.reset();

    const std::uint64_t startPc = pcHere();

    const KernelInfo info = analyzeKernel(module_, kernel);
    // Prologue: register-resident scalars and constants (§"compilers keep
    // loop-invariant values in callee-saved registers").
    if (!info.scalars.empty()) {
      scalarBaseReg_ = intPool_.alloc();
      emitLa(*scalarBaseReg_, layout_.scalarBase());
      for (const std::string& name : info.scalars) {
        const unsigned reg = fpPersist_.alloc();
        scalarRegs_[name] = reg;
        emit(rv64::makeI(Op::FLD, reg, *scalarBaseReg_,
                         static_cast<std::int64_t>(layout_.scalarAddr(name) -
                                                   layout_.scalarBase())));
      }
    }
    if (!info.constants.empty()) {
      constBaseReg_ = intPool_.alloc();
      emitLa(*constBaseReg_, layout_.constPoolBase());
      for (const double value : info.constants) {
        const unsigned reg = fpPersist_.alloc();
        constRegs_[constKey(value)] = reg;
        emit(rv64::makeI(Op::FLD, reg, *constBaseReg_,
                         static_cast<std::int64_t>(layout_.constAddr(value) -
                                                   layout_.constPoolBase())));
      }
    }

    LoopCtx root;
    root.parent = nullptr;
    for (const Stmt& stmt : kernel.body) compileStmt(stmt, root);

    // Epilogue: spill written scalars back to their slots.
    for (const std::string& name : writtenScalars_) {
      if (!scalarBaseReg_) {
        scalarBaseReg_ = intPool_.alloc();
        emitLa(*scalarBaseReg_, layout_.scalarBase());
      }
      emit(rv64::makeS(Op::FSD, scalarRegs_.at(name), *scalarBaseReg_,
                       static_cast<std::int64_t>(layout_.scalarAddr(name) -
                                                 layout_.scalarBase())));
    }

    kernels_.push_back(Symbol{kernel.name, startPc, pcHere() - startPc});
  }

  void emitExit() {
    emit(rv64::makeI(Op::ADDI, 10, 0, 0));   // a0 = 0
    emit(rv64::makeI(Op::ADDI, 17, 0, 93));  // a7 = exit
    emit(Inst{.op = Op::ECALL});
  }

  // ---- loop lowering ---------------------------------------------------------------
  struct PtrGroup {
    GroupKey key;
    unsigned reg = 0;
    std::int64_t innerStride = 0;  ///< elements per iteration of this loop
  };

  struct LoopCtx {
    const LoopCtx* parent = nullptr;
    std::string var;
    std::optional<unsigned> scaledCounterReg;  ///< holds var * 8
    std::vector<PtrGroup> groups;
  };

  [[nodiscard]] static const PtrGroup* findGroup(const LoopCtx& ctx,
                                                 const GroupKey& key) {
    for (const LoopCtx* scope = &ctx; scope != nullptr;
         scope = scope->parent) {
      for (const PtrGroup& group : scope->groups) {
        if (group.key == key) return &group;
      }
    }
    return nullptr;
  }

  [[nodiscard]] static std::optional<unsigned> findScaledCounter(
      const LoopCtx& ctx, const std::string& var) {
    for (const LoopCtx* scope = &ctx; scope != nullptr;
         scope = scope->parent) {
      if (scope->var == var) return scope->scaledCounterReg;
    }
    return std::nullopt;
  }

  void compileStmt(const Stmt& stmt, LoopCtx& ctx) {
    switch (stmt.kind) {
      case Stmt::Kind::Loop:
        compileLoop(stmt, ctx);
        return;
      case Stmt::Kind::StoreArr: {
        const Val value = genExpr(*stmt.value, ctx);
        const auto [base, disp] = addressOf(stmt.target, stmt.index, ctx);
        emit(rv64::makeS(Op::FSD, value.reg, base, disp));
        release(value);
        return;
      }
      case Stmt::Kind::SetScalar: {
        const unsigned acc = scalarReg(stmt.target);
        if (stmt.value->kind == Expr::Kind::LoadArr) {
          // Load straight into the scalar's register.
          const auto [base, disp] =
              addressOf(stmt.value->name, stmt.value->index, ctx);
          emit(rv64::makeI(Op::FLD, acc, base, disp));
        } else {
          const Val value = genExpr(*stmt.value, ctx);
          // fsgnj.d rd, v, v  ==  fmv.d rd, v
          emit(rv64::makeR(Op::FSGNJ_D, acc, value.reg, value.reg));
          release(value);
        }
        markScalarWritten(stmt.target);
        return;
      }
      case Stmt::Kind::AccumScalar: {
        const unsigned acc = scalarReg(stmt.target);
        // acc += x*y contracts to fmadd, like real codegen.
        if (stmt.value->kind == Expr::Kind::Bin &&
            stmt.value->bin == BinOp::Mul) {
          const Val x = genExpr(*stmt.value->lhs, ctx);
          const Val y = genExpr(*stmt.value->rhs, ctx);
          emit(rv64::makeR4(Op::FMADD_D, acc, x.reg, y.reg, acc));
          release(x);
          release(y);
        } else {
          const Val value = genExpr(*stmt.value, ctx);
          emit(rv64::makeR(Op::FADD_D, acc, acc, value.reg));
          release(value);
        }
        markScalarWritten(stmt.target);
        return;
      }
    }
  }

  void compileLoop(const Stmt& loopStmt, LoopCtx& parent) {
    LoopCtx ctx;
    ctx.parent = &parent;
    ctx.var = loopStmt.loopVar;

    // Pointer groups for accesses directly in this loop's body.
    const std::vector<GroupKey> keys =
        collectGroups(loopStmt.body, module_);
    for (const GroupKey& key : keys) {
      PtrGroup group;
      group.key = key;
      group.reg = intPool_.alloc();
      group.innerStride = strideOf(key, ctx.var);
      ctx.groups.push_back(group);
    }

    // A scaled counter (var*8) is needed when nested loops index with this
    // variable.
    const bool nestedUse = nestedLoopsUseVar(loopStmt, loopStmt.loopVar);
    if (nestedUse) ctx.scaledCounterReg = intPool_.alloc();

    // ---- preheader.
    for (PtrGroup& group : ctx.groups) initPointer(group, ctx);
    if (ctx.scaledCounterReg) {
      emit(rv64::makeI(Op::ADDI, *ctx.scaledCounterReg, 0, 0));
    }

    // Loop-exit strategy (paper Listing 2: compare a bumped pointer against
    // a precomputed end pointer with the fused bne).
    const PtrGroup* exitGroup = nullptr;
    for (const PtrGroup& group : ctx.groups) {
      if (group.innerStride != 0) {
        exitGroup = &group;
        break;
      }
    }
    std::optional<unsigned> endReg;
    std::optional<unsigned> counterReg;
    std::optional<unsigned> scaledLimitReg;
    if (exitGroup != nullptr) {
      endReg = intPool_.alloc();
      const std::int64_t span =
          loopStmt.extent * exitGroup->innerStride * 8;
      if (fitsSigned(span, 12)) {
        emit(rv64::makeI(Op::ADDI, *endReg, exitGroup->reg, span));
      } else {
        emitLi(kScratch0, span);
        emit(rv64::makeR(Op::ADD, *endReg, exitGroup->reg, kScratch0));
      }
    } else if (ctx.scaledCounterReg) {
      scaledLimitReg = intPool_.alloc();
      emitLi(*scaledLimitReg, loopStmt.extent * 8);
    } else {
      counterReg = intPool_.alloc();
      emitLi(*counterReg, loopStmt.extent);
    }

    // ---- body.
    const int head = newLabel();
    bind(head);
    for (const Stmt& stmt : loopStmt.body) compileStmt(stmt, ctx);

    // ---- latch: bump pointers, bump scaled counter, fused compare-branch.
    for (const PtrGroup& group : ctx.groups) {
      if (group.innerStride != 0) {
        emit(rv64::makeI(Op::ADDI, group.reg, group.reg,
                         group.innerStride * 8));
      }
    }
    if (ctx.scaledCounterReg) {
      emit(rv64::makeI(Op::ADDI, *ctx.scaledCounterReg, *ctx.scaledCounterReg,
                       8));
    }
    if (exitGroup != nullptr) {
      emitBranch(Op::BNE, exitGroup->reg, *endReg, head);
    } else if (scaledLimitReg) {
      emitBranch(Op::BNE, *ctx.scaledCounterReg, *scaledLimitReg, head);
    } else {
      emit(rv64::makeI(Op::ADDI, *counterReg, *counterReg, -1));
      emitBranch(Op::BNE, *counterReg, 0, head);
    }

    // Release loop-scoped registers.
    if (endReg) intPool_.release(*endReg);
    if (counterReg) intPool_.release(*counterReg);
    if (scaledLimitReg) intPool_.release(*scaledLimitReg);
    if (ctx.scaledCounterReg) intPool_.release(*ctx.scaledCounterReg);
    for (const PtrGroup& group : ctx.groups) intPool_.release(group.reg);
  }

  /// Preheader pointer initialisation: array base + group offset + outer
  /// loop-variable contributions (via their scaled counters).
  void initPointer(const PtrGroup& group, const LoopCtx& ctx) {
    const std::uint64_t base =
        layout_.arrayAddr(group.key.array) +
        static_cast<std::uint64_t>(group.key.baseOffset * 8);
    emitLa(group.reg, base);
    for (const auto& [var, stride] : group.key.terms) {
      if (var == ctx.var) continue;  // starts at zero
      const auto counter = findScaledCounter(*ctx.parent, var);
      if (!counter) {
        throw CompileError("riscv backend: no scaled counter for '" + var +
                           "'");
      }
      if (stride == 1) {
        emit(rv64::makeR(Op::ADD, group.reg, group.reg, *counter));
      } else if (isPow2(static_cast<std::uint64_t>(stride))) {
        const unsigned shift =
            static_cast<unsigned>(std::countr_zero(
                static_cast<std::uint64_t>(stride)));
        emit(rv64::makeI(Op::SLLI, kScratch0, *counter, shift));
        emit(rv64::makeR(Op::ADD, group.reg, group.reg, kScratch0));
      } else {
        emitLi(kScratch0, stride);
        emit(rv64::makeR(Op::MUL, kScratch0, *counter, kScratch0));
        emit(rv64::makeR(Op::ADD, group.reg, group.reg, kScratch0));
      }
    }
  }

  /// Addressing path for one access: the owning group's pointer plus an
  /// immediate displacement (the only load/store form rv64g has).
  std::pair<unsigned, std::int64_t> addressOf(const std::string& array,
                                              const AffineIdx& index,
                                              const LoopCtx& ctx) {
    const GroupKey key = groupKeyFor(array, index);
    const PtrGroup* group = findGroup(ctx, key);
    if (group == nullptr) {
      throw CompileError("riscv backend: no pointer group for '" + array +
                         "'");
    }
    const std::int64_t disp = (index.offset - group->key.baseOffset) * 8;
    if (!fitsSigned(disp, 12)) {
      throw CompileError("riscv backend: displacement out of range");
    }
    return {group->reg, disp};
  }

  // ---- expressions -------------------------------------------------------------------
  struct Val {
    unsigned reg;
    bool temp;
  };
  void release(const Val& value) {
    if (value.temp) fpTemp_.release(value.reg);
  }

  unsigned scalarReg(const std::string& name) { return scalarRegs_.at(name); }
  void markScalarWritten(const std::string& name) {
    if (std::find(writtenScalars_.begin(), writtenScalars_.end(), name) ==
        writtenScalars_.end()) {
      writtenScalars_.push_back(name);
    }
  }

  Val genExpr(const Expr& expr, const LoopCtx& ctx) {
    switch (expr.kind) {
      case Expr::Kind::ConstF:
        return {constRegs_.at(constKey(expr.constant)), false};
      case Expr::Kind::LoadScalar:
        return {scalarRegs_.at(expr.name), false};
      case Expr::Kind::LoadArr: {
        const auto [base, disp] = addressOf(expr.name, expr.index, ctx);
        const unsigned reg = fpTemp_.alloc();
        emit(rv64::makeI(Op::FLD, reg, base, disp));
        return {reg, true};
      }
      case Expr::Kind::Bin:
        return genBin(expr, ctx);
      case Expr::Kind::Unary: {
        const Val a = genExpr(*expr.lhs, ctx);
        const unsigned reg = a.temp ? a.reg : fpTemp_.alloc();
        switch (expr.un) {
          case UnOp::Neg:
            emit(rv64::makeR(Op::FSGNJN_D, reg, a.reg, a.reg));
            break;
          case UnOp::Abs:
            emit(rv64::makeR(Op::FSGNJX_D, reg, a.reg, a.reg));
            break;
          case UnOp::Sqrt:
            emit(rv64::makeR(Op::FSQRT_D, reg, a.reg, 0));
            break;
        }
        return {reg, true};
      }
    }
    throw CompileError("riscv backend: bad expression");
  }

  Val genBin(const Expr& expr, const LoopCtx& ctx) {
    // FMA contraction (mirrored exactly by the interpreter).
    const bool lhsMul =
        expr.lhs->kind == Expr::Kind::Bin && expr.lhs->bin == BinOp::Mul;
    const bool rhsMul =
        expr.rhs->kind == Expr::Kind::Bin && expr.rhs->bin == BinOp::Mul;
    if (expr.bin == BinOp::Add && (lhsMul || rhsMul)) {
      const Expr& mulNode = lhsMul ? *expr.lhs : *expr.rhs;
      const Expr& addend = lhsMul ? *expr.rhs : *expr.lhs;
      const Val x = genExpr(*mulNode.lhs, ctx);
      const Val y = genExpr(*mulNode.rhs, ctx);
      const Val z = genExpr(addend, ctx);
      const unsigned reg = fpTemp_.alloc();
      emit(rv64::makeR4(Op::FMADD_D, reg, x.reg, y.reg, z.reg));
      release(x);
      release(y);
      release(z);
      return {reg, true};
    }
    if (expr.bin == BinOp::Sub && lhsMul) {
      const Val x = genExpr(*expr.lhs->lhs, ctx);
      const Val y = genExpr(*expr.lhs->rhs, ctx);
      const Val z = genExpr(*expr.rhs, ctx);
      const unsigned reg = fpTemp_.alloc();
      emit(rv64::makeR4(Op::FMSUB_D, reg, x.reg, y.reg, z.reg));
      release(x);
      release(y);
      release(z);
      return {reg, true};
    }

    const Val a = genExpr(*expr.lhs, ctx);
    const Val b = genExpr(*expr.rhs, ctx);
    const unsigned reg =
        a.temp ? a.reg : (b.temp ? b.reg : fpTemp_.alloc());
    Op op = Op::FADD_D;
    switch (expr.bin) {
      case BinOp::Add:
        op = Op::FADD_D;
        break;
      case BinOp::Sub:
        op = Op::FSUB_D;
        break;
      case BinOp::Mul:
        op = Op::FMUL_D;
        break;
      case BinOp::Div:
        op = Op::FDIV_D;
        break;
      case BinOp::Min:
        op = Op::FMIN_D;
        break;
      case BinOp::Max:
        op = Op::FMAX_D;
        break;
    }
    emit(rv64::makeR(op, reg, a.reg, b.reg));
    if (a.temp && reg != a.reg) fpTemp_.release(a.reg);
    if (b.temp && reg != b.reg) fpTemp_.release(b.reg);
    return {reg, true};
  }

  // ---- state ----------------------------------------------------------------
  const Module& module_;
  CompilerEra era_;
  ModuleLayout layout_;

  std::vector<std::uint32_t> code_;
  std::vector<std::int64_t> labels_;
  std::vector<std::pair<std::size_t, int>> fixups_;
  std::vector<Inst> pending_;
  std::vector<Symbol> kernels_;

  RegPool intPool_{"int", {}};
  RegPool fpTemp_{"fp-temp", {}};
  RegPool fpPersist_{"fp-persist", {}};
  std::map<std::string, unsigned> scalarRegs_;
  std::map<std::uint64_t, unsigned> constRegs_;
  std::vector<std::string> writtenScalars_;
  std::optional<unsigned> scalarBaseReg_;
  std::optional<unsigned> constBaseReg_;
};

}  // namespace

Compiled compileRv64(const Module& module, CompilerEra era) {
  RvBackend backend(module, era);
  return backend.run();
}

}  // namespace riscmp::kgen
