#include "kgen/layout.hpp"

#include <cstring>

#include "support/bits.hpp"

namespace riscmp::kgen {

ModuleLayout::ModuleLayout(const Module& module) : module_(module) {
  // Gather distinct FP constants (by bit pattern) into the pool.
  for (const Kernel& kernel : module.kernels) {
    for (const Stmt& stmt : kernel.body) collectConstants(stmt);
  }
  std::uint64_t poolAddr = kCodeBase;
  for (auto& [bits, addr] : constants_) {
    addr = poolAddr;
    poolWords_.push_back(static_cast<std::uint32_t>(bits));
    poolWords_.push_back(static_cast<std::uint32_t>(bits >> 32));
    poolAddr += 8;
  }
  entry_ = poolAddr;

  // Scalar block, then arrays.
  std::uint64_t cursor = kDataBase;
  for (const ScalarDecl& decl : module.scalars) {
    scalars_[decl.name] = cursor;
    cursor += 8;
  }
  for (const ArrayDecl& array : module.arrays) {
    cursor = alignUp(cursor, 64);
    arrays_[array.name] = cursor;
    cursor += static_cast<std::uint64_t>(array.elems) * 8;
  }
  dataEnd_ = cursor;
}

void ModuleLayout::collectConstants(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::ConstF: {
      std::uint64_t bits;
      std::memcpy(&bits, &expr.constant, sizeof bits);
      constants_.emplace(bits, 0);
      return;
    }
    case Expr::Kind::Bin:
      collectConstants(*expr.lhs);
      collectConstants(*expr.rhs);
      return;
    case Expr::Kind::Unary:
      collectConstants(*expr.lhs);
      return;
    default:
      return;
  }
}

void ModuleLayout::collectConstants(const Stmt& stmt) {
  if (stmt.value) collectConstants(*stmt.value);
  for (const Stmt& inner : stmt.body) collectConstants(inner);
}

std::uint64_t ModuleLayout::constAddr(double value) const {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return constants_.at(bits);
}

std::uint64_t ModuleLayout::scalarAddr(const std::string& name) const {
  return scalars_.at(name);
}

std::uint64_t ModuleLayout::arrayAddr(const std::string& name) const {
  return arrays_.at(name);
}

std::vector<std::uint8_t> ModuleLayout::dataSegment() const {
  std::vector<std::uint8_t> data(dataEnd_ - kDataBase, 0);
  auto put = [&](std::uint64_t addr, double value) {
    std::memcpy(data.data() + (addr - kDataBase), &value, sizeof value);
  };
  for (const ScalarDecl& decl : module_.scalars) {
    put(scalars_.at(decl.name), decl.init);
  }
  for (const ArrayDecl& array : module_.arrays) {
    const std::uint64_t base = arrays_.at(array.name);
    for (std::size_t i = 0; i < array.init.size(); ++i) {
      put(base + i * 8, array.init[i]);
    }
  }
  return data;
}

}  // namespace riscmp::kgen
