#include "kgen/dump.hpp"

#include <cstdio>
#include <sstream>

#include "aarch64/disasm.hpp"
#include "riscv/disasm.hpp"

namespace riscmp::kgen {
namespace {

std::string dumpIndex(const AffineIdx& index) {
  std::string out;
  for (const AffineIdx::Term& term : index.terms) {
    if (!out.empty()) out += " + ";
    if (term.stride == 1) {
      out += term.var;
    } else {
      out += std::to_string(term.stride) + "*" + term.var;
    }
  }
  if (index.offset != 0 || out.empty()) {
    if (!out.empty()) out += index.offset >= 0 ? " + " : " - ";
    out += std::to_string(index.offset >= 0 ? index.offset : -index.offset);
  }
  return out;
}

std::string formatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

void dumpStmt(const Stmt& stmt, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (stmt.kind) {
    case Stmt::Kind::StoreArr:
      out += pad + stmt.target + "[" + dumpIndex(stmt.index) +
             "] = " + dumpExpr(*stmt.value) + "\n";
      return;
    case Stmt::Kind::SetScalar:
      out += pad + stmt.target + " = " + dumpExpr(*stmt.value) + "\n";
      return;
    case Stmt::Kind::AccumScalar:
      out += pad + stmt.target + " += " + dumpExpr(*stmt.value) + "\n";
      return;
    case Stmt::Kind::Loop:
      out += pad + "for " + stmt.loopVar + " in 0.." +
             std::to_string(stmt.extent) + ":\n";
      for (const Stmt& inner : stmt.body) dumpStmt(inner, depth + 1, out);
      return;
  }
}

}  // namespace

std::string dumpExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::ConstF:
      return formatDouble(expr.constant);
    case Expr::Kind::LoadArr:
      return expr.name + "[" + dumpIndex(expr.index) + "]";
    case Expr::Kind::LoadScalar:
      return expr.name;
    case Expr::Kind::Bin: {
      const char* op = "+";
      switch (expr.bin) {
        case BinOp::Add:
          op = "+";
          break;
        case BinOp::Sub:
          op = "-";
          break;
        case BinOp::Mul:
          op = "*";
          break;
        case BinOp::Div:
          op = "/";
          break;
        case BinOp::Min:
          return "min(" + dumpExpr(*expr.lhs) + ", " + dumpExpr(*expr.rhs) +
                 ")";
        case BinOp::Max:
          return "max(" + dumpExpr(*expr.lhs) + ", " + dumpExpr(*expr.rhs) +
                 ")";
      }
      return "(" + dumpExpr(*expr.lhs) + " " + op + " " +
             dumpExpr(*expr.rhs) + ")";
    }
    case Expr::Kind::Unary:
      switch (expr.un) {
        case UnOp::Neg:
          return "-(" + dumpExpr(*expr.lhs) + ")";
        case UnOp::Abs:
          return "abs(" + dumpExpr(*expr.lhs) + ")";
        case UnOp::Sqrt:
          return "sqrt(" + dumpExpr(*expr.lhs) + ")";
      }
      break;
  }
  return "?";
}

std::string dumpModule(const Module& module) {
  std::string out = "module " + module.name + "\n";
  for (const ArrayDecl& array : module.arrays) {
    out += "  array " + array.name + "[" + std::to_string(array.elems) + "]" +
           (array.init.empty() ? " (zero)" : " (initialised)") + "\n";
  }
  for (const ScalarDecl& decl : module.scalars) {
    out += "  scalar " + decl.name + " = " + formatDouble(decl.init) + "\n";
  }
  for (const Kernel& kernel : module.kernels) {
    out += "  kernel " + kernel.name + ":\n";
    for (const Stmt& stmt : kernel.body) dumpStmt(stmt, 2, out);
  }
  return out;
}

std::string dumpProgram(const Program& program) {
  std::ostringstream out;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const std::uint64_t pc = program.codeBase + i * 4;
    for (const Symbol& kernel : program.kernels) {
      if (kernel.addr == pc) out << kernel.name << ":\n";
    }
    if (pc < program.entry) continue;  // constant pool words
    const std::string text = program.arch == Arch::Rv64
                                 ? rv64::disassemble(program.code[i], pc)
                                 : a64::disassemble(program.code[i], pc);
    char addr[24];
    std::snprintf(addr, sizeof addr, "  %6llx:  ",
                  static_cast<unsigned long long>(pc));
    out << addr << text << "\n";
  }
  return out.str();
}

}  // namespace riscmp::kgen
