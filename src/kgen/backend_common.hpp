// Helpers shared by the two ISA backends: register pools, access-group
// analysis, and kernel scans for register-resident values.
#pragma once

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "kgen/compile.hpp"
#include "kgen/ir.hpp"

namespace riscmp::kgen {

/// A scoped register pool. Backends allocate loop-scoped registers
/// (pointers, counters) and release them on loop exit; exhaustion is a
/// compile error naming the pool.
class RegPool {
 public:
  RegPool(std::string name, std::vector<unsigned> regs)
      : name_(std::move(name)), free_(std::move(regs)) {}

  unsigned alloc() {
    if (free_.empty()) {
      throw CompileError("register pool '" + name_ + "' exhausted");
    }
    const unsigned reg = free_.front();
    free_.erase(free_.begin());
    return reg;
  }

  void release(unsigned reg) { free_.push_back(reg); }

  [[nodiscard]] std::size_t available() const { return free_.size(); }

 private:
  std::string name_;
  std::vector<unsigned> free_;
};

/// Identity of an induction-pointer group: one array accessed with one
/// affine term structure. Accesses differing only in the constant offset
/// share a group (the offset difference becomes the load/store immediate)
/// as long as they fall in the same 256-element offset bucket — the bucket
/// keeps every displacement within both ISAs' immediate ranges (rv64
/// signed 12-bit, A64 scaled unsigned 12-bit).
struct GroupKey {
  std::string array;
  std::vector<std::pair<std::string, std::int64_t>> terms;  ///< sorted
  std::int64_t bucket = 0;      ///< floor(offset / 256)
  std::int64_t baseOffset = 0;  ///< smallest constant offset in the group

  bool operator==(const GroupKey& other) const {
    return array == other.array && terms == other.terms &&
           bucket == other.bucket;
  }
};

inline GroupKey groupKeyFor(const std::string& array, const AffineIdx& index) {
  GroupKey key;
  key.array = array;
  for (const AffineIdx::Term& term : index.terms) {
    key.terms.emplace_back(term.var, term.stride);
  }
  std::sort(key.terms.begin(), key.terms.end());
  key.baseOffset = index.offset;
  key.bucket = index.offset >= 0 ? index.offset / 256
                                 : -((-index.offset + 255) / 256);
  return key;
}

/// The group's element stride with respect to loop variable `var`.
inline std::int64_t strideOf(const GroupKey& key, const std::string& var) {
  for (const auto& [name, stride] : key.terms) {
    if (name == var) return stride;
  }
  return 0;
}

namespace detail {

template <typename Fn>
void forEachAccessInExpr(const Expr& expr, Fn&& fn) {
  switch (expr.kind) {
    case Expr::Kind::LoadArr:
      fn(expr.name, expr.index);
      return;
    case Expr::Kind::Bin:
      forEachAccessInExpr(*expr.lhs, fn);
      forEachAccessInExpr(*expr.rhs, fn);
      return;
    case Expr::Kind::Unary:
      forEachAccessInExpr(*expr.lhs, fn);
      return;
    default:
      return;
  }
}

/// Visit accesses in the statement list without descending into nested
/// loops (those own their accesses).
template <typename Fn>
void forEachImmediateAccess(const std::vector<Stmt>& body, Fn&& fn) {
  for (const Stmt& stmt : body) {
    if (stmt.kind == Stmt::Kind::Loop) continue;
    if (stmt.value) forEachAccessInExpr(*stmt.value, fn);
    if (stmt.kind == Stmt::Kind::StoreArr) fn(stmt.target, stmt.index);
  }
}

template <typename Fn>
void forEachAccessRecursive(const std::vector<Stmt>& body, Fn&& fn) {
  for (const Stmt& stmt : body) {
    if (stmt.value) forEachAccessInExpr(*stmt.value, fn);
    if (stmt.kind == Stmt::Kind::StoreArr) fn(stmt.target, stmt.index);
    if (stmt.kind == Stmt::Kind::Loop) forEachAccessRecursive(stmt.body, fn);
  }
}

}  // namespace detail

/// Distinct access groups among the statements directly in `body`
/// (deduplicated; baseOffset = the minimum offset seen).
inline std::vector<GroupKey> collectGroups(const std::vector<Stmt>& body,
                                           const Module& /*module*/) {
  std::vector<GroupKey> groups;
  detail::forEachImmediateAccess(
      body, [&](const std::string& array, const AffineIdx& index) {
        GroupKey key = groupKeyFor(array, index);
        for (GroupKey& existing : groups) {
          if (existing == key) {
            existing.baseOffset = std::min(existing.baseOffset, key.baseOffset);
            return;
          }
        }
        groups.push_back(std::move(key));
      });
  return groups;
}

/// True when any loop nested inside `loopStmt` contains an access indexed
/// by `var` (the enclosing loop then needs a scaled counter / index
/// register live across the nest).
inline bool nestedLoopsUseVar(const Stmt& loopStmt, const std::string& var) {
  bool used = false;
  for (const Stmt& stmt : loopStmt.body) {
    if (stmt.kind != Stmt::Kind::Loop) continue;
    detail::forEachAccessRecursive(
        stmt.body, [&](const std::string&, const AffineIdx& index) {
          for (const AffineIdx::Term& term : index.terms) {
            if (term.var == var) used = true;
          }
        });
  }
  return used;
}

/// True when any access anywhere in the loop nest indexes with `var`
/// (decides index-register vs countdown loop control on AArch64).
inline bool loopVarUsed(const Stmt& loopStmt, const std::string& var) {
  bool used = false;
  detail::forEachAccessRecursive(
      loopStmt.body, [&](const std::string&, const AffineIdx& index) {
        for (const AffineIdx::Term& term : index.terms) {
          if (term.var == var) used = true;
        }
      });
  return used;
}

/// Bit pattern key for FP constants (distinguishes -0.0 from 0.0 etc.).
inline std::uint64_t constKey(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

/// Values a kernel keeps register-resident: referenced scalars (reads and
/// writes) and distinct FP constants, in first-use order.
struct KernelInfo {
  std::vector<std::string> scalars;
  std::vector<double> constants;
};

inline KernelInfo analyzeKernel(const Module& /*module*/,
                                const Kernel& kernel) {
  KernelInfo info;
  std::set<std::string> seenScalars;
  std::set<std::uint64_t> seenConsts;

  auto scanExpr = [&](const Expr& expr, auto&& self) -> void {
    switch (expr.kind) {
      case Expr::Kind::ConstF:
        if (seenConsts.insert(constKey(expr.constant)).second) {
          info.constants.push_back(expr.constant);
        }
        return;
      case Expr::Kind::LoadScalar:
        if (seenScalars.insert(expr.name).second) {
          info.scalars.push_back(expr.name);
        }
        return;
      case Expr::Kind::Bin:
        self(*expr.lhs, self);
        self(*expr.rhs, self);
        return;
      case Expr::Kind::Unary:
        self(*expr.lhs, self);
        return;
      default:
        return;
    }
  };
  auto scanStmt = [&](const Stmt& stmt, auto&& self) -> void {
    if (stmt.value) scanExpr(*stmt.value, scanExpr);
    if (stmt.kind == Stmt::Kind::SetScalar ||
        stmt.kind == Stmt::Kind::AccumScalar) {
      if (seenScalars.insert(stmt.target).second) {
        info.scalars.push_back(stmt.target);
      }
    }
    for (const Stmt& inner : stmt.body) self(inner, self);
  };
  for (const Stmt& stmt : kernel.body) scanStmt(stmt, scanStmt);
  return info;
}

}  // namespace riscmp::kgen
