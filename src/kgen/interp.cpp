#include "kgen/interp.hpp"

#include <cmath>
#include <stdexcept>

namespace riscmp::kgen {
namespace {

/// IEEE minimumNumber/maximumNumber with the -0/+0 ordering both ISAs'
/// fmin/fmax instructions implement.
double refMin(double a, double b) {
  if (std::isnan(a)) return b;
  if (std::isnan(b)) return a;
  if (a == 0.0 && b == 0.0) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}

double refMax(double a, double b) {
  if (std::isnan(a)) return b;
  if (std::isnan(b)) return a;
  if (a == 0.0 && b == 0.0) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

/// True when the backends contract this Bin node into an FMA.
bool contractsToFma(const Expr& expr) {
  if (expr.kind != Expr::Kind::Bin) return false;
  if (expr.bin != BinOp::Add && expr.bin != BinOp::Sub) return false;
  return (expr.lhs->kind == Expr::Kind::Bin && expr.lhs->bin == BinOp::Mul) ||
         (expr.bin == BinOp::Add && expr.rhs->kind == Expr::Kind::Bin &&
          expr.rhs->bin == BinOp::Mul);
}

}  // namespace

Interpreter::Interpreter(const Module& module) : module_(module) {
  module.validate();
  for (const ArrayDecl& array : module.arrays) {
    if (array.init.empty()) {
      arrays_[array.name].assign(static_cast<std::size_t>(array.elems), 0.0);
    } else {
      arrays_[array.name] = array.init;
    }
  }
  for (const ScalarDecl& decl : module.scalars) {
    scalars_[decl.name] = decl.init;
  }
}

void Interpreter::run() {
  for (const Kernel& kernel : module_.kernels) {
    for (const Stmt& stmt : kernel.body) execute(stmt);
  }
}

void Interpreter::runKernel(const std::string& name) {
  for (const Kernel& kernel : module_.kernels) {
    if (kernel.name == name) {
      for (const Stmt& stmt : kernel.body) execute(stmt);
      return;
    }
  }
  throw std::runtime_error("kgen: unknown kernel '" + name + "'");
}

const std::vector<double>& Interpreter::array(const std::string& name) const {
  const auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    throw std::runtime_error("kgen: unknown array '" + name + "'");
  }
  return it->second;
}

double Interpreter::scalarValue(const std::string& name) const {
  const auto it = scalars_.find(name);
  if (it == scalars_.end()) {
    throw std::runtime_error("kgen: unknown scalar '" + name + "'");
  }
  return it->second;
}

std::int64_t Interpreter::indexValue(const AffineIdx& index) const {
  std::int64_t value = index.offset;
  for (const AffineIdx::Term& term : index.terms) {
    value += loopVars_.at(term.var) * term.stride;
  }
  return value;
}

double Interpreter::eval(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::ConstF:
      return expr.constant;
    case Expr::Kind::LoadArr: {
      const std::vector<double>& data = arrays_.at(expr.name);
      const std::int64_t i = indexValue(expr.index);
      if (i < 0 || static_cast<std::size_t>(i) >= data.size()) {
        throw std::runtime_error("kgen: out-of-bounds access to '" +
                                 expr.name + "' at " + std::to_string(i));
      }
      return data[static_cast<std::size_t>(i)];
    }
    case Expr::Kind::LoadScalar:
      return scalars_.at(expr.name);
    case Expr::Kind::Bin: {
      // Mirror the backends' FMA contraction so results match bit-for-bit.
      if (contractsToFma(expr)) {
        if (expr.lhs->kind == Expr::Kind::Bin && expr.lhs->bin == BinOp::Mul) {
          const double x = eval(*expr.lhs->lhs);
          const double y = eval(*expr.lhs->rhs);
          const double z = eval(*expr.rhs);
          return expr.bin == BinOp::Add ? std::fma(x, y, z)
                                        : std::fma(x, y, -z);
        }
        // Add with the multiply on the right: z + x*y.
        const double z = eval(*expr.lhs);
        const double x = eval(*expr.rhs->lhs);
        const double y = eval(*expr.rhs->rhs);
        return std::fma(x, y, z);
      }
      const double a = eval(*expr.lhs);
      const double b = eval(*expr.rhs);
      switch (expr.bin) {
        case BinOp::Add:
          return a + b;
        case BinOp::Sub:
          return a - b;
        case BinOp::Mul:
          return a * b;
        case BinOp::Div:
          return a / b;
        case BinOp::Min:
          return refMin(a, b);
        case BinOp::Max:
          return refMax(a, b);
      }
      return 0.0;
    }
    case Expr::Kind::Unary: {
      const double a = eval(*expr.lhs);
      switch (expr.un) {
        case UnOp::Neg:
          return -a;
        case UnOp::Abs:
          return std::fabs(a);
        case UnOp::Sqrt:
          return std::sqrt(a);
      }
      return 0.0;
    }
  }
  return 0.0;
}

void Interpreter::execute(const Stmt& stmt) {
  switch (stmt.kind) {
    case Stmt::Kind::StoreArr: {
      const double value = eval(*stmt.value);
      std::vector<double>& data = arrays_.at(stmt.target);
      const std::int64_t i = indexValue(stmt.index);
      if (i < 0 || static_cast<std::size_t>(i) >= data.size()) {
        throw std::runtime_error("kgen: out-of-bounds store to '" +
                                 stmt.target + "' at " + std::to_string(i));
      }
      data[static_cast<std::size_t>(i)] = value;
      return;
    }
    case Stmt::Kind::SetScalar:
      scalars_.at(stmt.target) = eval(*stmt.value);
      return;
    case Stmt::Kind::AccumScalar: {
      double& acc = scalars_.at(stmt.target);
      // acc += x*y contracts to a fused multiply-add in both backends.
      if (stmt.value->kind == Expr::Kind::Bin &&
          stmt.value->bin == BinOp::Mul) {
        acc = std::fma(eval(*stmt.value->lhs), eval(*stmt.value->rhs), acc);
      } else {
        acc += eval(*stmt.value);
      }
      return;
    }
    case Stmt::Kind::Loop:
      for (std::int64_t i = 0; i < stmt.extent; ++i) {
        loopVars_[stmt.loopVar] = i;
        for (const Stmt& inner : stmt.body) execute(inner);
      }
      loopVars_.erase(stmt.loopVar);
      return;
  }
}

}  // namespace riscmp::kgen
