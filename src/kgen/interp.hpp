// Reference interpreter for the kernel IR.
//
// The interpreter defines the IR's semantics: workload validation compares
// simulated memory after running compiled code on either ISA against the
// interpreter's arrays. FP arithmetic uses host doubles with FMA
// contraction applied exactly where the backends contract, so compiled and
// interpreted results agree bit-for-bit.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "kgen/ir.hpp"

namespace riscmp::kgen {

class Interpreter {
 public:
  explicit Interpreter(const Module& module);

  /// Run every kernel in order (the compiled program's behaviour).
  void run();
  /// Run a single kernel by name. Throws if unknown.
  void runKernel(const std::string& name);

  [[nodiscard]] const std::vector<double>& array(
      const std::string& name) const;
  [[nodiscard]] double scalarValue(const std::string& name) const;

 private:
  double eval(const Expr& expr);
  void execute(const Stmt& stmt);
  [[nodiscard]] std::int64_t indexValue(const AffineIdx& index) const;

  const Module& module_;
  std::map<std::string, std::vector<double>> arrays_;
  std::map<std::string, double> scalars_;
  std::map<std::string, std::int64_t> loopVars_;
};

}  // namespace riscmp::kgen
