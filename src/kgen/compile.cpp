#include "kgen/compile.hpp"

namespace riscmp::kgen {

Compiled compileRv64(const Module& module, CompilerEra era);
Compiled compileA64(const Module& module, CompilerEra era);

Compiled compile(const Module& module, Arch arch, CompilerEra era) {
  return arch == Arch::Rv64 ? compileRv64(module, era)
                            : compileA64(module, era);
}

}  // namespace riscmp::kgen
