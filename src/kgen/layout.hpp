// Memory layout shared by both backends.
//
//   code segment @ 0x10000: [FP constant pool][kernel code...]
//   data segment @ 0x100000: [scalar block][arrays, 64-byte aligned]
//
// The constant pool lives at the front of the code segment so both backends
// know every pool address before emitting code (AArch64 reaches it with
// pc-relative literal loads, RISC-V with a lui/addi base).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "kgen/compile.hpp"
#include "kgen/ir.hpp"

namespace riscmp::kgen {

class ModuleLayout {
 public:
  static constexpr std::uint64_t kCodeBase = Program::kCodeBase;
  static constexpr std::uint64_t kDataBase = 0x100000;

  explicit ModuleLayout(const Module& module);

  /// Address of the first instruction after the constant pool.
  [[nodiscard]] std::uint64_t entry() const { return entry_; }
  [[nodiscard]] std::uint64_t constPoolBase() const { return kCodeBase; }
  /// The pool as instruction-stream words to prepend to the code.
  [[nodiscard]] const std::vector<std::uint32_t>& constPoolWords() const {
    return poolWords_;
  }

  [[nodiscard]] std::uint64_t constAddr(double value) const;
  [[nodiscard]] std::uint64_t scalarBase() const { return kDataBase; }
  [[nodiscard]] std::uint64_t scalarAddr(const std::string& name) const;
  [[nodiscard]] std::uint64_t arrayAddr(const std::string& name) const;

  /// Initialised data segment (scalar block + arrays).
  [[nodiscard]] std::vector<std::uint8_t> dataSegment() const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& arrayAddrs()
      const {
    return arrays_;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& scalarAddrs()
      const {
    return scalars_;
  }

 private:
  void collectConstants(const Expr& expr);
  void collectConstants(const Stmt& stmt);

  const Module& module_;
  std::map<std::uint64_t, std::uint64_t> constants_;  ///< bits -> address
  std::vector<std::uint32_t> poolWords_;
  std::map<std::string, std::uint64_t> scalars_;
  std::map<std::string, std::uint64_t> arrays_;
  std::uint64_t entry_ = 0;
  std::uint64_t dataEnd_ = 0;
};

}  // namespace riscmp::kgen
