#include "kgen/ir.hpp"

#include <set>
#include <stdexcept>

namespace riscmp::kgen {

AffineIdx idx(std::string var, std::int64_t stride) {
  AffineIdx index;
  index.terms.push_back({std::move(var), stride});
  return index;
}

AffineIdx idx2(std::string rowVar, std::int64_t rowStride,
               std::string colVar) {
  AffineIdx index;
  index.terms.push_back({std::move(rowVar), rowStride});
  index.terms.push_back({std::move(colVar), 1});
  return index;
}

AffineIdx operator+(AffineIdx index, std::int64_t offset) {
  index.offset += offset;
  return index;
}

ExprPtr cnst(double value) {
  auto expr = std::make_shared<Expr>();
  expr->kind = Expr::Kind::ConstF;
  expr->constant = value;
  return expr;
}

ExprPtr load(std::string array, AffineIdx index) {
  auto expr = std::make_shared<Expr>();
  expr->kind = Expr::Kind::LoadArr;
  expr->name = std::move(array);
  expr->index = std::move(index);
  return expr;
}

ExprPtr scalar(std::string name) {
  auto expr = std::make_shared<Expr>();
  expr->kind = Expr::Kind::LoadScalar;
  expr->name = std::move(name);
  return expr;
}

ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto expr = std::make_shared<Expr>();
  expr->kind = Expr::Kind::Bin;
  expr->bin = op;
  expr->lhs = std::move(lhs);
  expr->rhs = std::move(rhs);
  return expr;
}

ExprPtr unary(UnOp op, ExprPtr operand) {
  auto expr = std::make_shared<Expr>();
  expr->kind = Expr::Kind::Unary;
  expr->un = op;
  expr->lhs = std::move(operand);
  return expr;
}

ExprPtr add(ExprPtr lhs, ExprPtr rhs) {
  return binary(BinOp::Add, std::move(lhs), std::move(rhs));
}
ExprPtr sub(ExprPtr lhs, ExprPtr rhs) {
  return binary(BinOp::Sub, std::move(lhs), std::move(rhs));
}
ExprPtr mul(ExprPtr lhs, ExprPtr rhs) {
  return binary(BinOp::Mul, std::move(lhs), std::move(rhs));
}
ExprPtr divide(ExprPtr lhs, ExprPtr rhs) {
  return binary(BinOp::Div, std::move(lhs), std::move(rhs));
}
ExprPtr fmin(ExprPtr lhs, ExprPtr rhs) {
  return binary(BinOp::Min, std::move(lhs), std::move(rhs));
}
ExprPtr fmax(ExprPtr lhs, ExprPtr rhs) {
  return binary(BinOp::Max, std::move(lhs), std::move(rhs));
}
ExprPtr neg(ExprPtr operand) { return unary(UnOp::Neg, std::move(operand)); }
ExprPtr fabs(ExprPtr operand) { return unary(UnOp::Abs, std::move(operand)); }
ExprPtr fsqrt(ExprPtr operand) {
  return unary(UnOp::Sqrt, std::move(operand));
}

Stmt storeArr(std::string array, AffineIdx index, ExprPtr value) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::StoreArr;
  stmt.target = std::move(array);
  stmt.index = std::move(index);
  stmt.value = std::move(value);
  return stmt;
}

Stmt setScalar(std::string name, ExprPtr value) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::SetScalar;
  stmt.target = std::move(name);
  stmt.value = std::move(value);
  return stmt;
}

Stmt accumScalar(std::string name, ExprPtr value) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::AccumScalar;
  stmt.target = std::move(name);
  stmt.value = std::move(value);
  return stmt;
}

Stmt loop(std::string var, std::int64_t extent, std::vector<Stmt> body) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::Loop;
  stmt.loopVar = std::move(var);
  stmt.extent = extent;
  stmt.body = std::move(body);
  return stmt;
}

ArrayDecl& Module::array(std::string name, std::int64_t elems) {
  arrays.push_back(ArrayDecl{std::move(name), elems, {}});
  return arrays.back();
}

void Module::scalarInit(std::string name, double value) {
  scalars.push_back(ScalarDecl{std::move(name), value});
}

Kernel& Module::kernel(std::string name) {
  kernels.push_back(Kernel{std::move(name), {}});
  return kernels.back();
}

const ArrayDecl* Module::findArray(std::string_view name) const {
  for (const ArrayDecl& array : arrays) {
    if (array.name == name) return &array;
  }
  return nullptr;
}

const ScalarDecl* Module::findScalar(std::string_view name) const {
  for (const ScalarDecl& decl : scalars) {
    if (decl.name == name) return &decl;
  }
  return nullptr;
}

namespace {

class Validator {
 public:
  explicit Validator(const Module& module) : module_(module) {}

  void run() {
    for (const ArrayDecl& array : module_.arrays) {
      if (array.elems <= 0) {
        fail("array '" + array.name + "' has non-positive size");
      }
      if (!array.init.empty() &&
          static_cast<std::int64_t>(array.init.size()) != array.elems) {
        fail("array '" + array.name + "' init size mismatch");
      }
    }
    for (const Kernel& kernel : module_.kernels) {
      for (const Stmt& stmt : kernel.body) checkStmt(stmt, kernel.name);
    }
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("kgen: " + what);
  }

  void checkIndex(const AffineIdx& index, const std::string& where) {
    for (const AffineIdx::Term& term : index.terms) {
      if (loopVars_.count(term.var) == 0) {
        fail(where + ": index variable '" + term.var +
             "' not bound by an enclosing loop");
      }
    }
  }

  void checkExpr(const Expr& expr, const std::string& where) {
    switch (expr.kind) {
      case Expr::Kind::ConstF:
        return;
      case Expr::Kind::LoadArr:
        if (module_.findArray(expr.name) == nullptr) {
          fail(where + ": unknown array '" + expr.name + "'");
        }
        checkIndex(expr.index, where);
        return;
      case Expr::Kind::LoadScalar:
        if (module_.findScalar(expr.name) == nullptr) {
          fail(where + ": unknown scalar '" + expr.name + "'");
        }
        return;
      case Expr::Kind::Bin:
        checkExpr(*expr.lhs, where);
        checkExpr(*expr.rhs, where);
        return;
      case Expr::Kind::Unary:
        checkExpr(*expr.lhs, where);
        return;
    }
  }

  void checkStmt(const Stmt& stmt, const std::string& where) {
    switch (stmt.kind) {
      case Stmt::Kind::StoreArr:
        if (module_.findArray(stmt.target) == nullptr) {
          fail(where + ": unknown array '" + stmt.target + "'");
        }
        checkIndex(stmt.index, where);
        checkExpr(*stmt.value, where);
        return;
      case Stmt::Kind::SetScalar:
      case Stmt::Kind::AccumScalar:
        if (module_.findScalar(stmt.target) == nullptr) {
          fail(where + ": unknown scalar '" + stmt.target + "'");
        }
        checkExpr(*stmt.value, where);
        return;
      case Stmt::Kind::Loop: {
        if (stmt.extent <= 0) fail(where + ": loop extent must be positive");
        if (!loopVars_.insert(stmt.loopVar).second) {
          fail(where + ": loop variable '" + stmt.loopVar + "' shadows");
        }
        for (const Stmt& inner : stmt.body) checkStmt(inner, where);
        loopVars_.erase(stmt.loopVar);
        return;
      }
    }
  }

  const Module& module_;
  std::set<std::string> loopVars_;
};

}  // namespace

void Module::validate() const { Validator(*this).run(); }

}  // namespace riscmp::kgen
