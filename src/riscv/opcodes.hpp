// RV64G opcode enumeration and static metadata.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "isa/groups.hpp"

namespace riscmp::rv64 {

enum class Op : std::uint8_t {
#define X(NAME, mnemonic, immKind, match, mask, group, srcMask, fpMask, hasRd, \
          memSize, memKind)                                                    \
  NAME,
#include "riscv/opcodes.def"
#undef X
};

constexpr std::size_t kOpCount = 0
#define X(...) +1
#include "riscv/opcodes.def"
#undef X
    ;

/// Immediate encoding formats of RV64G (spec §2.3 plus shift/CSR forms).
enum class ImmKind : std::uint8_t {
  None,
  I,       ///< imm[11:0] at 31:20, sign-extended
  S,       ///< imm[11:5] at 31:25, imm[4:0] at 11:7
  B,       ///< branch offset, multiples of 2
  U,       ///< imm[31:12] at 31:12 (value stored shifted, sign-extended)
  J,       ///< jump offset, multiples of 2
  Shamt6,  ///< 6-bit shift amount at 25:20
  Shamt5,  ///< 5-bit shift amount at 24:20
  Csr,     ///< CSR number at 31:20 (zero-extended), rs1 as register
  CsrImm,  ///< CSR number at 31:20, 5-bit zimm in the rs1 field
};

enum class MemKind : std::uint8_t { None, Load, Store, Amo };

struct OpInfo {
  Op op;
  std::string_view mnemonic;
  ImmKind imm;
  std::uint32_t match;
  std::uint32_t mask;
  InstGroup group;
  std::uint8_t srcMask;  ///< bit0 rs1, bit1 rs2, bit2 rs3
  std::uint8_t fpMask;   ///< bit0 rs1 FP, bit1 rs2 FP, bit2 rs3 FP, bit3 rd FP
  bool hasRd;
  std::uint8_t memSize;
  MemKind memKind;

  [[nodiscard]] bool readsRs1() const { return srcMask & 1; }
  [[nodiscard]] bool readsRs2() const { return srcMask & 2; }
  [[nodiscard]] bool readsRs3() const { return srcMask & 4; }
  [[nodiscard]] bool rs1IsFp() const { return fpMask & 1; }
  [[nodiscard]] bool rs2IsFp() const { return fpMask & 2; }
  [[nodiscard]] bool rs3IsFp() const { return fpMask & 4; }
  [[nodiscard]] bool rdIsFp() const { return fpMask & 8; }
};

/// Metadata for an opcode. O(1).
const OpInfo& opInfo(Op op);

/// Look up an opcode by mnemonic (used by the text assembler).
std::optional<Op> opFromMnemonic(std::string_view mnemonic);

namespace detail {
/// Full opcode table, in catalogue order (used by the decoder's match loop
/// and by the round-trip property tests).
const std::array<OpInfo, kOpCount>& opTable();
}  // namespace detail

}  // namespace riscmp::rv64
