#include "riscv/opcodes.hpp"

#include <array>

namespace riscmp::rv64 {
namespace {

constexpr std::array<OpInfo, kOpCount> kOpTable = {{
#define X(NAME, mnemonic, immKind, match, mask, group, srcMask, fpMask, hasRd, \
          memSize, memKind)                                                    \
  OpInfo{Op::NAME,          mnemonic,                                          \
         ImmKind::immKind,  match,                                             \
         mask,              InstGroup::group,                                  \
         srcMask,           fpMask,                                            \
         static_cast<bool>(hasRd), memSize, MemKind::memKind},
#include "riscv/opcodes.def"
#undef X
}};

}  // namespace

const OpInfo& opInfo(Op op) {
  return kOpTable[static_cast<std::size_t>(op)];
}

std::optional<Op> opFromMnemonic(std::string_view mnemonic) {
  for (const OpInfo& info : kOpTable) {
    if (info.mnemonic == mnemonic) return info.op;
  }
  return std::nullopt;
}

namespace detail {
const std::array<OpInfo, kOpCount>& opTable() { return kOpTable; }
}  // namespace detail

}  // namespace riscmp::rv64
