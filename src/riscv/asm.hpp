// Two-pass RV64G text assembler.
//
// Accepts GNU-style assembly: one instruction or label per line, `#`
// comments, ABI or numeric register names, decimal/hex immediates,
// `offset(base)` memory operands, and label operands on branches/jumps.
// A practical set of pseudo-instructions is expanded (li, mv, not, neg,
// nop, j, jr, ret, beqz, bnez, blez, bgez, bltz, bgtz, bgt, ble, bgtu,
// bleu, fmv.d, fmv.s, fneg.d, fabs.d, call-less subset).
//
// This is primarily a test and example facility; the kernel compiler emits
// encoded instructions directly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace riscmp::rv64 {

class AsmError : public std::runtime_error {
 public:
  AsmError(const std::string& message, int line)
      : std::runtime_error("riscv asm: line " + std::to_string(line) + ": " +
                           message) {}
};

/// Assemble a listing into machine words. `base` is the address of the
/// first instruction (labels resolve against it).
std::vector<std::uint32_t> assemble(std::string_view source,
                                    std::uint64_t base = 0);

}  // namespace riscmp::rv64
