// RV64G disassembler (GNU-objdump flavoured operand syntax, ABI names).
#pragma once

#include <cstdint>
#include <string>

#include "riscv/inst.hpp"

namespace riscmp::rv64 {

/// Render a decoded instruction, e.g. "fld fa5, 0(a5)" or
/// "bne a5, s0, 0x10dec". `pc` resolves branch/jump targets to absolute
/// addresses; pass 0 to print relative offsets.
std::string disassemble(const Inst& inst, std::uint64_t pc = 0);

/// Decode and render a raw word; undecodable words render as ".word 0x...".
std::string disassemble(std::uint32_t word, std::uint64_t pc);

}  // namespace riscmp::rv64
