// ABI register naming for RV64 (integer and floating-point files).
#include <array>
#include <cctype>
#include <charconv>
#include <string_view>

#include "riscv/inst.hpp"

namespace riscmp::rv64 {
namespace {

constexpr std::array<const char*, 32> kGprNames = {
    "zero", "ra", "sp",  "gp",  "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3",  "a4",  "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8",  "s9",  "s10", "s11", "t3", "t4", "t5", "t6"};

constexpr std::array<const char*, 32> kFprNames = {
    "ft0", "ft1", "ft2",  "ft3",  "ft4", "ft5", "ft6",  "ft7",
    "fs0", "fs1", "fa0",  "fa1",  "fa2", "fa3", "fa4",  "fa5",
    "fa6", "fa7", "fs2",  "fs3",  "fs4", "fs5", "fs6",  "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};

int parseIndexed(std::string_view name, char prefix) {
  if (name.size() < 2 || name[0] != prefix) return -1;
  int value = -1;
  const auto* begin = name.data() + 1;
  const auto* end = name.data() + name.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value < 0 || value > 31) return -1;
  return value;
}

}  // namespace

const char* gprName(unsigned index) { return kGprNames[index & 31]; }
const char* fprName(unsigned index) { return kFprNames[index & 31]; }

int gprFromName(std::string_view name) {
  for (unsigned i = 0; i < 32; ++i) {
    if (name == kGprNames[i]) return static_cast<int>(i);
  }
  if (name == "fp") return 8;  // alias for s0
  return parseIndexed(name, 'x');
}

int fprFromName(std::string_view name) {
  for (unsigned i = 0; i < 32; ++i) {
    if (name == kFprNames[i]) return static_cast<int>(i);
  }
  return parseIndexed(name, 'f');
}

}  // namespace riscmp::rv64
