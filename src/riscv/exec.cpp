#include "riscv/exec.hpp"

#include <cfenv>
#include <cmath>
#include <cstring>
#include <limits>

namespace riscmp::rv64 {
namespace {

constexpr std::uint64_t kNanBoxMask = 0xffffffff00000000ull;
constexpr std::uint32_t kCanonicalNanS = 0x7fc00000u;

std::uint64_t mulhu(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) >> 64);
}

std::int64_t mulh(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(
      (static_cast<__int128>(a) * b) >> 64);
}

std::int64_t mulhsu(std::int64_t a, std::uint64_t b) {
  return static_cast<std::int64_t>(
      (static_cast<__int128>(a) * static_cast<unsigned __int128>(b)) >> 64);
}

std::int64_t divSigned(std::int64_t a, std::int64_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
  return a / b;
}

std::int64_t remSigned(std::int64_t a, std::int64_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return 0;
  return a % b;
}

std::int32_t divSigned32(std::int32_t a, std::int32_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
  return a / b;
}

std::int32_t remSigned32(std::int32_t a, std::int32_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
  return a % b;
}

/// IEEE-754 minimumNumber / maximumNumber as required by FMIN/FMAX:
/// a number beats a NaN; -0.0 orders below +0.0.
template <typename T>
T fpMin(T a, T b) {
  if (std::isnan(a) && std::isnan(b)) return std::numeric_limits<T>::quiet_NaN();
  if (std::isnan(a)) return b;
  if (std::isnan(b)) return a;
  if (a == T{0} && b == T{0}) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}

template <typename T>
T fpMax(T a, T b) {
  if (std::isnan(a) && std::isnan(b)) return std::numeric_limits<T>::quiet_NaN();
  if (std::isnan(a)) return b;
  if (std::isnan(b)) return a;
  if (a == T{0} && b == T{0}) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

/// Saturating float->int conversions (RISC-V semantics: NaN and +inf give
/// the maximum value, -inf the minimum, out-of-range saturates).
template <typename Int, typename Fp>
Int fcvtToInt(Fp v) {
  if (std::isnan(v)) return std::numeric_limits<Int>::max();
  const Fp truncated = std::trunc(v);
  if (truncated <= static_cast<Fp>(std::numeric_limits<Int>::min())) {
    // Exact minimum is representable for signed types.
    if constexpr (std::numeric_limits<Int>::is_signed) {
      if (truncated == static_cast<Fp>(std::numeric_limits<Int>::min())) {
        return std::numeric_limits<Int>::min();
      }
    }
    if (truncated < static_cast<Fp>(std::numeric_limits<Int>::min())) {
      return std::numeric_limits<Int>::min();
    }
  }
  if (truncated >= static_cast<Fp>(std::numeric_limits<Int>::max())) {
    return std::numeric_limits<Int>::max();
  }
  return static_cast<Int>(truncated);
}

std::uint32_t fclass(double v) {
  if (std::isnan(v)) return 1u << 9;  // report all NaNs as quiet
  switch (std::fpclassify(v)) {
    case FP_INFINITE:
      return std::signbit(v) ? 1u << 0 : 1u << 7;
    case FP_NORMAL:
      return std::signbit(v) ? 1u << 1 : 1u << 6;
    case FP_SUBNORMAL:
      return std::signbit(v) ? 1u << 2 : 1u << 5;
    case FP_ZERO:
      return std::signbit(v) ? 1u << 3 : 1u << 4;
  }
  return 0;
}

}  // namespace

float State::fprS(unsigned i) const {
  const std::uint64_t raw = f[i];
  std::uint32_t low;
  if ((raw & kNanBoxMask) != kNanBoxMask) {
    low = kCanonicalNanS;
  } else {
    low = static_cast<std::uint32_t>(raw);
  }
  float v;
  std::memcpy(&v, &low, sizeof v);
  return v;
}

void State::setFprS(unsigned i, float v) {
  std::uint32_t low;
  std::memcpy(&low, &v, sizeof low);
  f[i] = kNanBoxMask | low;
}

Trap execute(const Inst& inst, State& state, Memory& memory,
             RetiredInst& retired) {
  const OpInfo& info = inst.info();

  // Record register dependencies. x0 never participates in chains.
  if (info.readsRs1()) {
    if (info.rs1IsFp()) {
      retired.srcs.push_back(Reg::fp(inst.rs1));
    } else if (inst.rs1 != 0) {
      retired.srcs.push_back(Reg::gp(inst.rs1));
    }
  }
  if (info.readsRs2()) {
    if (info.rs2IsFp()) {
      retired.srcs.push_back(Reg::fp(inst.rs2));
    } else if (inst.rs2 != 0) {
      retired.srcs.push_back(Reg::gp(inst.rs2));
    }
  }
  if (info.readsRs3()) {
    // rs3 only exists on the FP fused multiply-add family.
    retired.srcs.push_back(Reg::fp(inst.rs3));
  }
  if (info.hasRd) {
    if (info.rdIsFp()) {
      retired.dsts.push_back(Reg::fp(inst.rd));
    } else if (inst.rd != 0) {
      retired.dsts.push_back(Reg::gp(inst.rd));
    }
  }

  const std::uint64_t pc = state.pc;
  std::uint64_t nextPc = pc + 4;
  const std::uint64_t rs1 = state.gpr(inst.rs1);
  const std::uint64_t rs2 = state.gpr(inst.rs2);
  const std::int64_t imm = inst.imm;

  auto writeRd = [&](std::uint64_t v) { state.setGpr(inst.rd, v); };
  auto writeRd32 = [&](std::uint32_t v) {
    state.setGpr(inst.rd, static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(static_cast<std::int32_t>(v))));
  };
  auto branch = [&](bool taken) {
    retired.isBranch = true;
    retired.branchTaken = taken;
    retired.branchTarget = pc + static_cast<std::uint64_t>(imm);
    if (taken) nextPc = retired.branchTarget;
  };
  auto memAddr = [&] { return rs1 + static_cast<std::uint64_t>(imm); };
  auto recordLoad = [&](std::uint64_t addr, unsigned size) {
    retired.loads.push_back(
        MemAccess{addr, static_cast<std::uint8_t>(size)});
  };
  auto recordStore = [&](std::uint64_t addr, unsigned size) {
    retired.stores.push_back(
        MemAccess{addr, static_cast<std::uint8_t>(size)});
  };

  Trap trap = Trap::None;

  switch (inst.op) {
    // ---- RV64I --------------------------------------------------------
    case Op::LUI:
      writeRd(static_cast<std::uint64_t>(imm));
      break;
    case Op::AUIPC:
      writeRd(pc + static_cast<std::uint64_t>(imm));
      break;
    case Op::JAL:
      writeRd(pc + 4);
      retired.isBranch = true;
      retired.branchTaken = true;
      retired.branchTarget = pc + static_cast<std::uint64_t>(imm);
      nextPc = retired.branchTarget;
      break;
    case Op::JALR: {
      const std::uint64_t target = (rs1 + static_cast<std::uint64_t>(imm)) & ~1ull;
      writeRd(pc + 4);
      retired.isBranch = true;
      retired.branchTaken = true;
      retired.branchTarget = target;
      nextPc = target;
      break;
    }
    case Op::BEQ:
      branch(rs1 == rs2);
      break;
    case Op::BNE:
      branch(rs1 != rs2);
      break;
    case Op::BLT:
      branch(static_cast<std::int64_t>(rs1) < static_cast<std::int64_t>(rs2));
      break;
    case Op::BGE:
      branch(static_cast<std::int64_t>(rs1) >= static_cast<std::int64_t>(rs2));
      break;
    case Op::BLTU:
      branch(rs1 < rs2);
      break;
    case Op::BGEU:
      branch(rs1 >= rs2);
      break;

    case Op::LB: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 1);
      writeRd(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(memory.read<std::int8_t>(addr))));
      break;
    }
    case Op::LH: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 2);
      writeRd(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(memory.read<std::int16_t>(addr))));
      break;
    }
    case Op::LW: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 4);
      writeRd(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(memory.read<std::int32_t>(addr))));
      break;
    }
    case Op::LD: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 8);
      writeRd(memory.read<std::uint64_t>(addr));
      break;
    }
    case Op::LBU: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 1);
      writeRd(memory.read<std::uint8_t>(addr));
      break;
    }
    case Op::LHU: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 2);
      writeRd(memory.read<std::uint16_t>(addr));
      break;
    }
    case Op::LWU: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 4);
      writeRd(memory.read<std::uint32_t>(addr));
      break;
    }
    case Op::SB: {
      const std::uint64_t addr = memAddr();
      recordStore(addr, 1);
      memory.write<std::uint8_t>(addr, static_cast<std::uint8_t>(rs2));
      break;
    }
    case Op::SH: {
      const std::uint64_t addr = memAddr();
      recordStore(addr, 2);
      memory.write<std::uint16_t>(addr, static_cast<std::uint16_t>(rs2));
      break;
    }
    case Op::SW: {
      const std::uint64_t addr = memAddr();
      recordStore(addr, 4);
      memory.write<std::uint32_t>(addr, static_cast<std::uint32_t>(rs2));
      break;
    }
    case Op::SD: {
      const std::uint64_t addr = memAddr();
      recordStore(addr, 8);
      memory.write<std::uint64_t>(addr, rs2);
      break;
    }

    case Op::ADDI:
      writeRd(rs1 + static_cast<std::uint64_t>(imm));
      break;
    case Op::SLTI:
      writeRd(static_cast<std::int64_t>(rs1) < imm ? 1 : 0);
      break;
    case Op::SLTIU:
      writeRd(rs1 < static_cast<std::uint64_t>(imm) ? 1 : 0);
      break;
    case Op::XORI:
      writeRd(rs1 ^ static_cast<std::uint64_t>(imm));
      break;
    case Op::ORI:
      writeRd(rs1 | static_cast<std::uint64_t>(imm));
      break;
    case Op::ANDI:
      writeRd(rs1 & static_cast<std::uint64_t>(imm));
      break;
    case Op::SLLI:
      writeRd(rs1 << (imm & 63));
      break;
    case Op::SRLI:
      writeRd(rs1 >> (imm & 63));
      break;
    case Op::SRAI:
      writeRd(static_cast<std::uint64_t>(static_cast<std::int64_t>(rs1) >>
                                         (imm & 63)));
      break;
    case Op::ADD:
      writeRd(rs1 + rs2);
      break;
    case Op::SUB:
      writeRd(rs1 - rs2);
      break;
    case Op::SLL:
      writeRd(rs1 << (rs2 & 63));
      break;
    case Op::SLT:
      writeRd(static_cast<std::int64_t>(rs1) < static_cast<std::int64_t>(rs2)
                  ? 1
                  : 0);
      break;
    case Op::SLTU:
      writeRd(rs1 < rs2 ? 1 : 0);
      break;
    case Op::XOR:
      writeRd(rs1 ^ rs2);
      break;
    case Op::SRL:
      writeRd(rs1 >> (rs2 & 63));
      break;
    case Op::SRA:
      writeRd(static_cast<std::uint64_t>(static_cast<std::int64_t>(rs1) >>
                                         (rs2 & 63)));
      break;
    case Op::OR:
      writeRd(rs1 | rs2);
      break;
    case Op::AND:
      writeRd(rs1 & rs2);
      break;

    case Op::ADDIW:
      writeRd32(static_cast<std::uint32_t>(rs1) +
                static_cast<std::uint32_t>(imm));
      break;
    case Op::SLLIW:
      writeRd32(static_cast<std::uint32_t>(rs1) << (imm & 31));
      break;
    case Op::SRLIW:
      writeRd32(static_cast<std::uint32_t>(rs1) >> (imm & 31));
      break;
    case Op::SRAIW:
      writeRd32(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(rs1) >> (imm & 31)));
      break;
    case Op::ADDW:
      writeRd32(static_cast<std::uint32_t>(rs1) +
                static_cast<std::uint32_t>(rs2));
      break;
    case Op::SUBW:
      writeRd32(static_cast<std::uint32_t>(rs1) -
                static_cast<std::uint32_t>(rs2));
      break;
    case Op::SLLW:
      writeRd32(static_cast<std::uint32_t>(rs1) << (rs2 & 31));
      break;
    case Op::SRLW:
      writeRd32(static_cast<std::uint32_t>(rs1) >> (rs2 & 31));
      break;
    case Op::SRAW:
      writeRd32(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(rs1) >> (rs2 & 31)));
      break;

    case Op::FENCE:
      break;
    case Op::ECALL:
      trap = Trap::Ecall;
      break;
    case Op::EBREAK:
      trap = Trap::Ebreak;
      break;

    // ---- M ------------------------------------------------------------
    case Op::MUL:
      writeRd(rs1 * rs2);
      break;
    case Op::MULH:
      writeRd(static_cast<std::uint64_t>(
          mulh(static_cast<std::int64_t>(rs1), static_cast<std::int64_t>(rs2))));
      break;
    case Op::MULHSU:
      writeRd(static_cast<std::uint64_t>(
          mulhsu(static_cast<std::int64_t>(rs1), rs2)));
      break;
    case Op::MULHU:
      writeRd(mulhu(rs1, rs2));
      break;
    case Op::DIV:
      writeRd(static_cast<std::uint64_t>(divSigned(
          static_cast<std::int64_t>(rs1), static_cast<std::int64_t>(rs2))));
      break;
    case Op::DIVU:
      writeRd(rs2 == 0 ? ~std::uint64_t{0} : rs1 / rs2);
      break;
    case Op::REM:
      writeRd(static_cast<std::uint64_t>(remSigned(
          static_cast<std::int64_t>(rs1), static_cast<std::int64_t>(rs2))));
      break;
    case Op::REMU:
      writeRd(rs2 == 0 ? rs1 : rs1 % rs2);
      break;
    case Op::MULW:
      writeRd32(static_cast<std::uint32_t>(rs1) *
                static_cast<std::uint32_t>(rs2));
      break;
    case Op::DIVW:
      writeRd32(static_cast<std::uint32_t>(divSigned32(
          static_cast<std::int32_t>(rs1), static_cast<std::int32_t>(rs2))));
      break;
    case Op::DIVUW: {
      const auto a = static_cast<std::uint32_t>(rs1);
      const auto b = static_cast<std::uint32_t>(rs2);
      writeRd32(b == 0 ? ~std::uint32_t{0} : a / b);
      break;
    }
    case Op::REMW:
      writeRd32(static_cast<std::uint32_t>(remSigned32(
          static_cast<std::int32_t>(rs1), static_cast<std::int32_t>(rs2))));
      break;
    case Op::REMUW: {
      const auto a = static_cast<std::uint32_t>(rs1);
      const auto b = static_cast<std::uint32_t>(rs2);
      writeRd32(b == 0 ? a : a % b);
      break;
    }

    // ---- A (subset); this simulator is single-hart so LR/SC always
    // succeed and AMOs are plain read-modify-writes. -------------------
    case Op::LR_W:
      recordLoad(rs1, 4);
      writeRd(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(memory.read<std::int32_t>(rs1))));
      break;
    case Op::LR_D:
      recordLoad(rs1, 8);
      writeRd(memory.read<std::uint64_t>(rs1));
      break;
    case Op::SC_W:
      recordStore(rs1, 4);
      memory.write<std::uint32_t>(rs1, static_cast<std::uint32_t>(rs2));
      writeRd(0);  // success
      break;
    case Op::SC_D:
      recordStore(rs1, 8);
      memory.write<std::uint64_t>(rs1, rs2);
      writeRd(0);
      break;
    case Op::AMOADD_W: {
      recordLoad(rs1, 4);
      recordStore(rs1, 4);
      const auto old = memory.read<std::int32_t>(rs1);
      memory.write<std::uint32_t>(
          rs1, static_cast<std::uint32_t>(old) + static_cast<std::uint32_t>(rs2));
      writeRd32(static_cast<std::uint32_t>(old));
      break;
    }
    case Op::AMOADD_D: {
      recordLoad(rs1, 8);
      recordStore(rs1, 8);
      const auto old = memory.read<std::uint64_t>(rs1);
      memory.write<std::uint64_t>(rs1, old + rs2);
      writeRd(old);
      break;
    }
    case Op::AMOSWAP_W: {
      recordLoad(rs1, 4);
      recordStore(rs1, 4);
      const auto old = memory.read<std::int32_t>(rs1);
      memory.write<std::uint32_t>(rs1, static_cast<std::uint32_t>(rs2));
      writeRd32(static_cast<std::uint32_t>(old));
      break;
    }
    case Op::AMOSWAP_D: {
      recordLoad(rs1, 8);
      recordStore(rs1, 8);
      const auto old = memory.read<std::uint64_t>(rs1);
      memory.write<std::uint64_t>(rs1, rs2);
      writeRd(old);
      break;
    }

    // ---- Zicsr: only the FP CSRs exist in this machine model. ---------
    case Op::CSRRW:
    case Op::CSRRS:
    case Op::CSRRC:
    case Op::CSRRWI:
    case Op::CSRRSI:
    case Op::CSRRCI: {
      const std::uint32_t old = state.fcsr;
      const bool immediate =
          inst.op == Op::CSRRWI || inst.op == Op::CSRRSI || inst.op == Op::CSRRCI;
      const std::uint64_t operand = immediate ? inst.rs1 : rs1;
      std::uint32_t next = old;
      if (inst.op == Op::CSRRW || inst.op == Op::CSRRWI) {
        next = static_cast<std::uint32_t>(operand);
      } else if (inst.op == Op::CSRRS || inst.op == Op::CSRRSI) {
        next = old | static_cast<std::uint32_t>(operand);
      } else {
        next = old & ~static_cast<std::uint32_t>(operand);
      }
      state.fcsr = next;
      writeRd(old);
      break;
    }

    // ---- F/D loads and stores -----------------------------------------
    case Op::FLW: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 4);
      state.f[inst.rd] = kNanBoxMask | memory.read<std::uint32_t>(addr);
      break;
    }
    case Op::FLD: {
      const std::uint64_t addr = memAddr();
      recordLoad(addr, 8);
      state.f[inst.rd] = memory.read<std::uint64_t>(addr);
      break;
    }
    case Op::FSW: {
      const std::uint64_t addr = memAddr();
      recordStore(addr, 4);
      memory.write<std::uint32_t>(addr,
                                  static_cast<std::uint32_t>(state.f[inst.rs2]));
      break;
    }
    case Op::FSD: {
      const std::uint64_t addr = memAddr();
      recordStore(addr, 8);
      memory.write<std::uint64_t>(addr, state.f[inst.rs2]);
      break;
    }

    // ---- F (single precision) ------------------------------------------
    case Op::FMADD_S:
      state.setFprS(inst.rd, std::fma(state.fprS(inst.rs1), state.fprS(inst.rs2),
                                      state.fprS(inst.rs3)));
      break;
    case Op::FMSUB_S:
      state.setFprS(inst.rd, std::fma(state.fprS(inst.rs1), state.fprS(inst.rs2),
                                      -state.fprS(inst.rs3)));
      break;
    case Op::FNMSUB_S:
      state.setFprS(inst.rd, std::fma(-state.fprS(inst.rs1),
                                      state.fprS(inst.rs2),
                                      state.fprS(inst.rs3)));
      break;
    case Op::FNMADD_S:
      state.setFprS(inst.rd, std::fma(-state.fprS(inst.rs1),
                                      state.fprS(inst.rs2),
                                      -state.fprS(inst.rs3)));
      break;
    case Op::FADD_S:
      state.setFprS(inst.rd, state.fprS(inst.rs1) + state.fprS(inst.rs2));
      break;
    case Op::FSUB_S:
      state.setFprS(inst.rd, state.fprS(inst.rs1) - state.fprS(inst.rs2));
      break;
    case Op::FMUL_S:
      state.setFprS(inst.rd, state.fprS(inst.rs1) * state.fprS(inst.rs2));
      break;
    case Op::FDIV_S:
      state.setFprS(inst.rd, state.fprS(inst.rs1) / state.fprS(inst.rs2));
      break;
    case Op::FSQRT_S:
      state.setFprS(inst.rd, std::sqrt(state.fprS(inst.rs1)));
      break;
    case Op::FSGNJ_S: {
      const std::uint32_t a = kNanBoxMask | static_cast<std::uint32_t>(state.f[inst.rs1]);
      const std::uint32_t b = static_cast<std::uint32_t>(state.f[inst.rs2]);
      state.f[inst.rd] =
          kNanBoxMask | ((a & 0x7fffffffu) | (b & 0x80000000u));
      break;
    }
    case Op::FSGNJN_S: {
      const std::uint32_t a = static_cast<std::uint32_t>(state.f[inst.rs1]);
      const std::uint32_t b = static_cast<std::uint32_t>(state.f[inst.rs2]);
      state.f[inst.rd] =
          kNanBoxMask | ((a & 0x7fffffffu) | (~b & 0x80000000u));
      break;
    }
    case Op::FSGNJX_S: {
      const std::uint32_t a = static_cast<std::uint32_t>(state.f[inst.rs1]);
      const std::uint32_t b = static_cast<std::uint32_t>(state.f[inst.rs2]);
      state.f[inst.rd] = kNanBoxMask | (a ^ (b & 0x80000000u));
      break;
    }
    case Op::FMIN_S:
      state.setFprS(inst.rd, fpMin(state.fprS(inst.rs1), state.fprS(inst.rs2)));
      break;
    case Op::FMAX_S:
      state.setFprS(inst.rd, fpMax(state.fprS(inst.rs1), state.fprS(inst.rs2)));
      break;
    case Op::FCVT_W_S:
      writeRd32(static_cast<std::uint32_t>(
          fcvtToInt<std::int32_t>(state.fprS(inst.rs1))));
      break;
    case Op::FCVT_WU_S:
      writeRd32(fcvtToInt<std::uint32_t>(state.fprS(inst.rs1)));
      break;
    case Op::FCVT_L_S:
      writeRd(static_cast<std::uint64_t>(
          fcvtToInt<std::int64_t>(state.fprS(inst.rs1))));
      break;
    case Op::FCVT_LU_S:
      writeRd(fcvtToInt<std::uint64_t>(state.fprS(inst.rs1)));
      break;
    case Op::FMV_X_W:
      writeRd(static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(state.f[inst.rs1])))));
      break;
    case Op::FEQ_S:
      writeRd(state.fprS(inst.rs1) == state.fprS(inst.rs2) ? 1 : 0);
      break;
    case Op::FLT_S:
      writeRd(state.fprS(inst.rs1) < state.fprS(inst.rs2) ? 1 : 0);
      break;
    case Op::FLE_S:
      writeRd(state.fprS(inst.rs1) <= state.fprS(inst.rs2) ? 1 : 0);
      break;
    case Op::FCLASS_S:
      writeRd(fclass(static_cast<double>(state.fprS(inst.rs1))));
      break;
    case Op::FCVT_S_W:
      state.setFprS(inst.rd,
                    static_cast<float>(static_cast<std::int32_t>(rs1)));
      break;
    case Op::FCVT_S_WU:
      state.setFprS(inst.rd,
                    static_cast<float>(static_cast<std::uint32_t>(rs1)));
      break;
    case Op::FCVT_S_L:
      state.setFprS(inst.rd,
                    static_cast<float>(static_cast<std::int64_t>(rs1)));
      break;
    case Op::FCVT_S_LU:
      state.setFprS(inst.rd, static_cast<float>(rs1));
      break;
    case Op::FMV_W_X:
      state.f[inst.rd] = kNanBoxMask | static_cast<std::uint32_t>(rs1);
      break;

    // ---- D (double precision) -------------------------------------------
    case Op::FMADD_D:
      state.setFprD(inst.rd, std::fma(state.fprD(inst.rs1), state.fprD(inst.rs2),
                                      state.fprD(inst.rs3)));
      break;
    case Op::FMSUB_D:
      state.setFprD(inst.rd, std::fma(state.fprD(inst.rs1), state.fprD(inst.rs2),
                                      -state.fprD(inst.rs3)));
      break;
    case Op::FNMSUB_D:
      state.setFprD(inst.rd, std::fma(-state.fprD(inst.rs1),
                                      state.fprD(inst.rs2),
                                      state.fprD(inst.rs3)));
      break;
    case Op::FNMADD_D:
      state.setFprD(inst.rd, std::fma(-state.fprD(inst.rs1),
                                      state.fprD(inst.rs2),
                                      -state.fprD(inst.rs3)));
      break;
    case Op::FADD_D:
      state.setFprD(inst.rd, state.fprD(inst.rs1) + state.fprD(inst.rs2));
      break;
    case Op::FSUB_D:
      state.setFprD(inst.rd, state.fprD(inst.rs1) - state.fprD(inst.rs2));
      break;
    case Op::FMUL_D:
      state.setFprD(inst.rd, state.fprD(inst.rs1) * state.fprD(inst.rs2));
      break;
    case Op::FDIV_D:
      state.setFprD(inst.rd, state.fprD(inst.rs1) / state.fprD(inst.rs2));
      break;
    case Op::FSQRT_D:
      state.setFprD(inst.rd, std::sqrt(state.fprD(inst.rs1)));
      break;
    case Op::FSGNJ_D:
      state.f[inst.rd] = (state.f[inst.rs1] & 0x7fffffffffffffffull) |
                         (state.f[inst.rs2] & 0x8000000000000000ull);
      break;
    case Op::FSGNJN_D:
      state.f[inst.rd] = (state.f[inst.rs1] & 0x7fffffffffffffffull) |
                         (~state.f[inst.rs2] & 0x8000000000000000ull);
      break;
    case Op::FSGNJX_D:
      state.f[inst.rd] =
          state.f[inst.rs1] ^ (state.f[inst.rs2] & 0x8000000000000000ull);
      break;
    case Op::FMIN_D:
      state.setFprD(inst.rd, fpMin(state.fprD(inst.rs1), state.fprD(inst.rs2)));
      break;
    case Op::FMAX_D:
      state.setFprD(inst.rd, fpMax(state.fprD(inst.rs1), state.fprD(inst.rs2)));
      break;
    case Op::FCVT_S_D:
      state.setFprS(inst.rd, static_cast<float>(state.fprD(inst.rs1)));
      break;
    case Op::FCVT_D_S:
      state.setFprD(inst.rd, static_cast<double>(state.fprS(inst.rs1)));
      break;
    case Op::FEQ_D:
      writeRd(state.fprD(inst.rs1) == state.fprD(inst.rs2) ? 1 : 0);
      break;
    case Op::FLT_D:
      writeRd(state.fprD(inst.rs1) < state.fprD(inst.rs2) ? 1 : 0);
      break;
    case Op::FLE_D:
      writeRd(state.fprD(inst.rs1) <= state.fprD(inst.rs2) ? 1 : 0);
      break;
    case Op::FCLASS_D:
      writeRd(fclass(state.fprD(inst.rs1)));
      break;
    case Op::FCVT_W_D:
      writeRd32(static_cast<std::uint32_t>(
          fcvtToInt<std::int32_t>(state.fprD(inst.rs1))));
      break;
    case Op::FCVT_WU_D:
      writeRd32(fcvtToInt<std::uint32_t>(state.fprD(inst.rs1)));
      break;
    case Op::FCVT_L_D:
      writeRd(static_cast<std::uint64_t>(
          fcvtToInt<std::int64_t>(state.fprD(inst.rs1))));
      break;
    case Op::FCVT_LU_D:
      writeRd(fcvtToInt<std::uint64_t>(state.fprD(inst.rs1)));
      break;
    case Op::FCVT_D_W:
      state.setFprD(inst.rd,
                    static_cast<double>(static_cast<std::int32_t>(rs1)));
      break;
    case Op::FCVT_D_WU:
      state.setFprD(inst.rd,
                    static_cast<double>(static_cast<std::uint32_t>(rs1)));
      break;
    case Op::FCVT_D_L:
      state.setFprD(inst.rd,
                    static_cast<double>(static_cast<std::int64_t>(rs1)));
      break;
    case Op::FCVT_D_LU:
      state.setFprD(inst.rd, static_cast<double>(rs1));
      break;
    case Op::FMV_X_D:
      writeRd(state.f[inst.rs1]);
      break;
    case Op::FMV_D_X:
      state.f[inst.rd] = rs1;
      break;
  }

  state.pc = nextPc;
  return trap;
}

}  // namespace riscmp::rv64
