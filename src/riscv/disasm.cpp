#include "riscv/disasm.hpp"

#include <cstdio>

#include "riscv/decode.hpp"

namespace riscmp::rv64 {
namespace {

std::string hex(std::uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

const char* regName(unsigned index, bool isFp) {
  return isFp ? fprName(index) : gprName(index);
}

}  // namespace

std::string disassemble(const Inst& inst, std::uint64_t pc) {
  const OpInfo& info = inst.info();
  std::string out(info.mnemonic);

  auto sep = [&out] { out += out.find(' ') == std::string::npos ? " " : ", "; };
  auto addReg = [&](unsigned index, bool isFp) {
    sep();
    out += regName(index, isFp);
  };
  auto addImm = [&](std::int64_t v) {
    sep();
    out += std::to_string(v);
  };

  switch (info.imm) {
    case ImmKind::B:
      addReg(inst.rs1, info.rs1IsFp());
      addReg(inst.rs2, info.rs2IsFp());
      sep();
      out += pc ? hex(pc + static_cast<std::uint64_t>(inst.imm))
                : std::to_string(inst.imm);
      return out;
    case ImmKind::J:
      if (inst.rd != 0) addReg(inst.rd, false);
      sep();
      out += pc ? hex(pc + static_cast<std::uint64_t>(inst.imm))
                : std::to_string(inst.imm);
      return out;
    case ImmKind::U:
      addReg(inst.rd, false);
      sep();
      out += hex(static_cast<std::uint64_t>(inst.imm) >> 12 & 0xfffff);
      return out;
    case ImmKind::Csr:
    case ImmKind::CsrImm:
      addReg(inst.rd, false);
      sep();
      out += hex(static_cast<std::uint64_t>(inst.imm));
      if (info.imm == ImmKind::Csr) {
        addReg(inst.rs1, false);
      } else {
        addImm(inst.rs1);
      }
      return out;
    default:
      break;
  }

  // Memory operands use the offset(base) form.
  if (info.memKind == MemKind::Load && info.imm == ImmKind::I) {
    addReg(inst.rd, info.rdIsFp());
    sep();
    out += std::to_string(inst.imm) + "(" + gprName(inst.rs1) + ")";
    return out;
  }
  if (info.memKind == MemKind::Store) {
    if (info.imm == ImmKind::S) {
      addReg(inst.rs2, info.rs2IsFp());
      sep();
      out += std::to_string(inst.imm) + "(" + gprName(inst.rs1) + ")";
      return out;
    }
    // SC / AMO: rd, rs2, (rs1)
    addReg(inst.rd, false);
    addReg(inst.rs2, false);
    sep();
    out += "(" + std::string(gprName(inst.rs1)) + ")";
    return out;
  }
  if (info.memKind == MemKind::Amo) {
    addReg(inst.rd, false);
    addReg(inst.rs2, false);
    sep();
    out += "(" + std::string(gprName(inst.rs1)) + ")";
    return out;
  }
  if (info.op == Op::LR_W || info.op == Op::LR_D) {
    addReg(inst.rd, false);
    sep();
    out += "(" + std::string(gprName(inst.rs1)) + ")";
    return out;
  }
  if (info.op == Op::JALR) {
    addReg(inst.rd, false);
    sep();
    out += std::to_string(inst.imm) + "(" + gprName(inst.rs1) + ")";
    return out;
  }

  if (info.hasRd) addReg(inst.rd, info.rdIsFp());
  if (info.readsRs1()) addReg(inst.rs1, info.rs1IsFp());
  if (info.readsRs2()) addReg(inst.rs2, info.rs2IsFp());
  if (info.readsRs3()) addReg(inst.rs3, info.rs3IsFp());
  if (info.imm != ImmKind::None) addImm(inst.imm);
  return out;
}

std::string disassemble(std::uint32_t word, std::uint64_t pc) {
  if (const auto inst = decode(word)) return disassemble(*inst, pc);
  return ".word " + hex(word);
}

}  // namespace riscmp::rv64
