#include "riscv/asm.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <optional>

#include "riscv/encode.hpp"
#include "support/bits.hpp"

namespace riscmp::rv64 {
namespace {

struct Token {
  std::string text;
};

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& ch : out) ch = static_cast<char>(std::tolower(ch));
  return out;
}

std::vector<std::string> tokenizeOperands(std::string_view rest, int line) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (const char ch : rest) {
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    if (ch == ',' && depth == 0) {
      out.push_back(current);
      current.clear();
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(ch))) current += ch;
  }
  if (!current.empty()) out.push_back(current);
  if (depth != 0) throw AsmError("unbalanced parentheses", line);
  return out;
}

struct SourceLine {
  int number;
  std::string mnemonic;
  std::vector<std::string> operands;
};

/// First pass: strip comments/labels, record label addresses.
struct Listing {
  std::vector<SourceLine> lines;
  std::map<std::string, std::uint64_t, std::less<>> labels;
};

bool pseudoExpandsToTwo(const std::string& mnemonic,
                        const std::vector<std::string>& operands);

std::int64_t parseImmediate(std::string_view text, int line) {
  std::int64_t value = 0;
  bool negative = false;
  std::string_view body = text;
  if (!body.empty() && (body[0] == '-' || body[0] == '+')) {
    negative = body[0] == '-';
    body.remove_prefix(1);
  }
  int base = 10;
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    body.remove_prefix(2);
    base = 16;
  }
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value, base);
  if (ec != std::errc{} || ptr != body.data() + body.size()) {
    throw AsmError("bad immediate '" + std::string(text) + "'", line);
  }
  return negative ? -value : value;
}

bool looksLikeImmediate(std::string_view text) {
  if (text.empty()) return false;
  const char c = text[0];
  return c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c));
}

Listing firstPass(std::string_view source) {
  Listing listing;
  std::uint64_t offset = 0;
  int number = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    std::string_view raw = source.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    ++number;
    pos = (nl == std::string_view::npos) ? source.size() + 1 : nl + 1;

    if (const std::size_t hash = raw.find('#'); hash != std::string_view::npos) {
      raw = raw.substr(0, hash);
    }
    // Leading labels (may share a line with an instruction).
    for (;;) {
      std::size_t b = 0;
      while (b < raw.size() && std::isspace(static_cast<unsigned char>(raw[b]))) ++b;
      raw = raw.substr(b);
      const std::size_t colon = raw.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view label = raw.substr(0, colon);
      if (label.empty() ||
          label.find_first_of(" \t,()") != std::string_view::npos) {
        break;
      }
      listing.labels.emplace(std::string(label), offset);
      raw = raw.substr(colon + 1);
    }
    std::size_t b = 0;
    while (b < raw.size() && std::isspace(static_cast<unsigned char>(raw[b]))) ++b;
    std::size_t e = raw.size();
    while (e > b && std::isspace(static_cast<unsigned char>(raw[e - 1]))) --e;
    raw = raw.substr(b, e - b);
    if (raw.empty()) continue;

    std::size_t space = 0;
    while (space < raw.size() &&
           !std::isspace(static_cast<unsigned char>(raw[space]))) {
      ++space;
    }
    SourceLine line;
    line.number = number;
    line.mnemonic = toLower(raw.substr(0, space));
    line.operands = tokenizeOperands(raw.substr(space), number);
    offset += pseudoExpandsToTwo(line.mnemonic, line.operands) ? 8 : 4;
    listing.lines.push_back(std::move(line));
  }
  return listing;
}

// "li" with a value outside the addi range expands to lui+addi(w).
bool pseudoExpandsToTwo(const std::string& mnemonic,
                        const std::vector<std::string>& operands) {
  if (mnemonic != "li" || operands.size() != 2) return false;
  if (!looksLikeImmediate(operands[1])) return true;  // conservative
  try {
    const std::int64_t v = parseImmediate(operands[1], 0);
    return !fitsSigned(v, 12);
  } catch (const AsmError&) {
    return true;
  }
}

class SecondPass {
 public:
  SecondPass(const Listing& listing, std::uint64_t base)
      : listing_(listing), base_(base) {}

  std::vector<std::uint32_t> run() {
    for (const SourceLine& line : listing_.lines) assembleLine(line);
    return std::move(words_);
  }

 private:
  [[noreturn]] void fail(const SourceLine& line, const std::string& what) {
    throw AsmError(what, line.number);
  }

  unsigned gpr(const SourceLine& line, const std::string& text) {
    const int r = gprFromName(text);
    if (r < 0) fail(line, "bad integer register '" + text + "'");
    return static_cast<unsigned>(r);
  }

  unsigned fpr(const SourceLine& line, const std::string& text) {
    const int r = fprFromName(text);
    if (r < 0) fail(line, "bad FP register '" + text + "'");
    return static_cast<unsigned>(r);
  }

  std::int64_t immOrLabelOffset(const SourceLine& line, const std::string& text) {
    if (looksLikeImmediate(text)) return parseImmediate(text, line.number);
    const auto it = listing_.labels.find(text);
    if (it == listing_.labels.end()) fail(line, "unknown label '" + text + "'");
    const std::uint64_t target = base_ + it->second;
    const std::uint64_t here = base_ + words_.size() * 4;
    return static_cast<std::int64_t>(target) - static_cast<std::int64_t>(here);
  }

  std::int64_t imm(const SourceLine& line, const std::string& text) {
    if (!looksLikeImmediate(text)) fail(line, "expected immediate, got '" + text + "'");
    return parseImmediate(text, line.number);
  }

  /// Split "offset(base)"; offset may be empty (meaning 0).
  std::pair<std::int64_t, unsigned> memOperand(const SourceLine& line,
                                               const std::string& text) {
    const std::size_t open = text.find('(');
    const std::size_t close = text.rfind(')');
    if (open == std::string::npos || close != text.size() - 1) {
      fail(line, "expected offset(base), got '" + text + "'");
    }
    const std::string offsetText = text.substr(0, open);
    const std::string baseText = text.substr(open + 1, close - open - 1);
    const std::int64_t offset =
        offsetText.empty() ? 0 : parseImmediate(offsetText, line.number);
    return {offset, gpr(line, baseText)};
  }

  void emit(const Inst& inst) { words_.push_back(encode(inst)); }

  void expectOperands(const SourceLine& line, std::size_t count) {
    if (line.operands.size() != count) {
      fail(line, line.mnemonic + ": expected " + std::to_string(count) +
                     " operands, got " + std::to_string(line.operands.size()));
    }
  }

  void assembleLine(const SourceLine& line) {
    if (assemblePseudo(line)) return;

    const auto op = opFromMnemonic(line.mnemonic);
    if (!op) fail(line, "unknown mnemonic '" + line.mnemonic + "'");
    const OpInfo& info = opInfo(*op);

    Inst inst;
    inst.op = *op;
    const auto& ops = line.operands;

    switch (info.imm) {
      case ImmKind::U: {
        expectOperands(line, 2);
        inst.rd = static_cast<std::uint8_t>(gpr(line, ops[0]));
        // The operand is the raw 20-bit field (what the disassembler
        // prints); sign-extend it so fields >= 0x80000 round-trip to the
        // decoder's sign-extended view instead of overflowing the encoder.
        const std::int64_t field = imm(line, ops[1]);
        if (field < -0x80000 || field > 0xfffff) {
          fail(line, line.mnemonic + ": immediate out of range");
        }
        inst.imm = signExtend(static_cast<std::uint64_t>(field) & 0xfffff, 20)
                   << 12;
        break;
      }
      case ImmKind::J:
        // Disassembly omits a zero rd ("jal offset"); accept that one-operand
        // spelling back with rd = x0.
        if (ops.size() == 1) {
          inst.rd = 0;
          inst.imm = immOrLabelOffset(line, ops[0]);
        } else {
          expectOperands(line, 2);
          inst.rd = static_cast<std::uint8_t>(gpr(line, ops[0]));
          inst.imm = immOrLabelOffset(line, ops[1]);
        }
        break;
      case ImmKind::B:
        expectOperands(line, 3);
        inst.rs1 = static_cast<std::uint8_t>(gpr(line, ops[0]));
        inst.rs2 = static_cast<std::uint8_t>(gpr(line, ops[1]));
        inst.imm = immOrLabelOffset(line, ops[2]);
        break;
      case ImmKind::S: {
        expectOperands(line, 2);
        inst.rs2 = static_cast<std::uint8_t>(
            info.rs2IsFp() ? fpr(line, ops[0]) : gpr(line, ops[0]));
        const auto [offset, baseReg] = memOperand(line, ops[1]);
        inst.imm = offset;
        inst.rs1 = static_cast<std::uint8_t>(baseReg);
        break;
      }
      case ImmKind::I:
        if (info.memKind == MemKind::Load || inst.op == Op::JALR) {
          expectOperands(line, 2);
          inst.rd = static_cast<std::uint8_t>(
              info.rdIsFp() ? fpr(line, ops[0]) : gpr(line, ops[0]));
          const auto [offset, baseReg] = memOperand(line, ops[1]);
          inst.imm = offset;
          inst.rs1 = static_cast<std::uint8_t>(baseReg);
        } else {
          expectOperands(line, 3);
          inst.rd = static_cast<std::uint8_t>(gpr(line, ops[0]));
          inst.rs1 = static_cast<std::uint8_t>(gpr(line, ops[1]));
          inst.imm = imm(line, ops[2]);
        }
        break;
      case ImmKind::Shamt6:
      case ImmKind::Shamt5:
        expectOperands(line, 3);
        inst.rd = static_cast<std::uint8_t>(gpr(line, ops[0]));
        inst.rs1 = static_cast<std::uint8_t>(gpr(line, ops[1]));
        inst.imm = imm(line, ops[2]);
        break;
      case ImmKind::Csr:
        expectOperands(line, 3);
        inst.rd = static_cast<std::uint8_t>(gpr(line, ops[0]));
        inst.imm = imm(line, ops[1]);
        inst.rs1 = static_cast<std::uint8_t>(gpr(line, ops[2]));
        break;
      case ImmKind::CsrImm:
        expectOperands(line, 3);
        inst.rd = static_cast<std::uint8_t>(gpr(line, ops[0]));
        inst.imm = imm(line, ops[1]);
        inst.rs1 = static_cast<std::uint8_t>(imm(line, ops[2]) & 31);
        break;
      case ImmKind::None: {
        std::size_t expected = 0;
        if (info.hasRd) ++expected;
        expected += static_cast<std::size_t>(info.readsRs1()) +
                    static_cast<std::size_t>(info.readsRs2()) +
                    static_cast<std::size_t>(info.readsRs3());
        if (info.memKind != MemKind::None) {
          assembleAmoLike(line, inst, info);
          return;
        }
        if (expected == 0) {  // ecall / ebreak / fence
          emit(inst);
          return;
        }
        expectOperands(line, expected);
        std::size_t cursor = 0;
        if (info.hasRd) {
          inst.rd = static_cast<std::uint8_t>(
              info.rdIsFp() ? fpr(line, ops[cursor]) : gpr(line, ops[cursor]));
          ++cursor;
        }
        if (info.readsRs1()) {
          inst.rs1 = static_cast<std::uint8_t>(
              info.rs1IsFp() ? fpr(line, ops[cursor]) : gpr(line, ops[cursor]));
          ++cursor;
        }
        if (info.readsRs2()) {
          inst.rs2 = static_cast<std::uint8_t>(
              info.rs2IsFp() ? fpr(line, ops[cursor]) : gpr(line, ops[cursor]));
          ++cursor;
        }
        if (info.readsRs3()) {
          inst.rs3 = static_cast<std::uint8_t>(
              info.rs3IsFp() ? fpr(line, ops[cursor]) : gpr(line, ops[cursor]));
        }
        break;
      }
    }
    emit(inst);
  }

  void assembleAmoLike(const SourceLine& line, Inst inst, const OpInfo& info) {
    // lr.w rd, (rs1) / sc.w rd, rs2, (rs1) / amoadd.w rd, rs2, (rs1)
    const auto& ops = line.operands;
    const bool hasRs2 = info.readsRs2();
    expectOperands(line, hasRs2 ? 3 : 2);
    inst.rd = static_cast<std::uint8_t>(gpr(line, ops[0]));
    std::string addr = ops[hasRs2 ? 2 : 1];
    if (hasRs2) inst.rs2 = static_cast<std::uint8_t>(gpr(line, ops[1]));
    if (addr.size() >= 2 && addr.front() == '(' && addr.back() == ')') {
      addr = addr.substr(1, addr.size() - 2);
    }
    inst.rs1 = static_cast<std::uint8_t>(gpr(line, addr));
    emit(inst);
  }

  bool assemblePseudo(const SourceLine& line) {
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;

    auto emitI = [&](Op op, unsigned rd, unsigned rs1, std::int64_t value) {
      emit(makeI(op, rd, rs1, value));
    };
    auto emitR = [&](Op op, unsigned rd, unsigned rs1, unsigned rs2v) {
      emit(makeR(op, rd, rs1, rs2v));
    };
    auto branchZero = [&](Op op, bool zeroFirst) {
      expectOperands(line, 2);
      const unsigned r = gpr(line, ops[0]);
      Inst inst;
      inst.op = op;
      inst.rs1 = static_cast<std::uint8_t>(zeroFirst ? 0 : r);
      inst.rs2 = static_cast<std::uint8_t>(zeroFirst ? r : 0);
      inst.imm = immOrLabelOffset(line, ops[1]);
      emit(inst);
      return true;
    };
    auto branchSwapped = [&](Op op) {
      expectOperands(line, 3);
      Inst inst;
      inst.op = op;
      inst.rs1 = static_cast<std::uint8_t>(gpr(line, ops[1]));
      inst.rs2 = static_cast<std::uint8_t>(gpr(line, ops[0]));
      inst.imm = immOrLabelOffset(line, ops[2]);
      emit(inst);
      return true;
    };

    if (m == "nop") {
      emitI(Op::ADDI, 0, 0, 0);
      return true;
    }
    if (m == "li") {
      expectOperands(line, 2);
      const unsigned rd = gpr(line, ops[0]);
      const std::int64_t value = imm(line, ops[1]);
      if (fitsSigned(value, 12)) {
        emitI(Op::ADDI, rd, 0, value);
      } else if (fitsSigned(value, 32)) {
        // lui + addiw, compensating for addiw sign extension.
        const std::int64_t hi = (value + 0x800) >> 12;
        const std::int64_t lo = value - (hi << 12);
        emit(makeU(Op::LUI, rd, hi << 12));
        emitI(Op::ADDIW, rd, rd, lo);
      } else {
        fail(line, "li: value out of 32-bit range (use lui/slli sequences)");
      }
      return true;
    }
    if (m == "mv") {
      expectOperands(line, 2);
      emitI(Op::ADDI, gpr(line, ops[0]), gpr(line, ops[1]), 0);
      return true;
    }
    if (m == "not") {
      expectOperands(line, 2);
      emitI(Op::XORI, gpr(line, ops[0]), gpr(line, ops[1]), -1);
      return true;
    }
    if (m == "neg") {
      expectOperands(line, 2);
      emitR(Op::SUB, gpr(line, ops[0]), 0, gpr(line, ops[1]));
      return true;
    }
    if (m == "negw") {
      expectOperands(line, 2);
      emitR(Op::SUBW, gpr(line, ops[0]), 0, gpr(line, ops[1]));
      return true;
    }
    if (m == "sext.w") {
      expectOperands(line, 2);
      emitI(Op::ADDIW, gpr(line, ops[0]), gpr(line, ops[1]), 0);
      return true;
    }
    if (m == "j") {
      expectOperands(line, 1);
      Inst inst;
      inst.op = Op::JAL;
      inst.rd = 0;
      inst.imm = immOrLabelOffset(line, ops[0]);
      emit(inst);
      return true;
    }
    if (m == "jr") {
      expectOperands(line, 1);
      emitI(Op::JALR, 0, gpr(line, ops[0]), 0);
      return true;
    }
    if (m == "ret") {
      emitI(Op::JALR, 0, 1, 0);
      return true;
    }
    if (m == "beqz") return branchZero(Op::BEQ, false);
    if (m == "bnez") return branchZero(Op::BNE, false);
    if (m == "bltz") return branchZero(Op::BLT, false);
    if (m == "bgez") return branchZero(Op::BGE, false);
    if (m == "blez") return branchZero(Op::BGE, true);
    if (m == "bgtz") return branchZero(Op::BLT, true);
    if (m == "bgt") return branchSwapped(Op::BLT);
    if (m == "ble") return branchSwapped(Op::BGE);
    if (m == "bgtu") return branchSwapped(Op::BLTU);
    if (m == "bleu") return branchSwapped(Op::BGEU);
    if (m == "fmv.d" || m == "fmv.s") {
      expectOperands(line, 2);
      const unsigned rd = fpr(line, ops[0]);
      const unsigned rs = fpr(line, ops[1]);
      emit(makeR(m == "fmv.d" ? Op::FSGNJ_D : Op::FSGNJ_S, rd, rs, rs));
      return true;
    }
    if (m == "fneg.d" || m == "fneg.s") {
      expectOperands(line, 2);
      const unsigned rd = fpr(line, ops[0]);
      const unsigned rs = fpr(line, ops[1]);
      emit(makeR(m == "fneg.d" ? Op::FSGNJN_D : Op::FSGNJN_S, rd, rs, rs));
      return true;
    }
    if (m == "fabs.d" || m == "fabs.s") {
      expectOperands(line, 2);
      const unsigned rd = fpr(line, ops[0]);
      const unsigned rs = fpr(line, ops[1]);
      emit(makeR(m == "fabs.d" ? Op::FSGNJX_D : Op::FSGNJX_S, rd, rs, rs));
      return true;
    }
    if (m == "seqz") {
      expectOperands(line, 2);
      emitI(Op::SLTIU, gpr(line, ops[0]), gpr(line, ops[1]), 1);
      return true;
    }
    if (m == "snez") {
      expectOperands(line, 2);
      emitR(Op::SLTU, gpr(line, ops[0]), 0, gpr(line, ops[1]));
      return true;
    }
    return false;
  }

  const Listing& listing_;
  std::uint64_t base_;
  std::vector<std::uint32_t> words_;
};

}  // namespace

std::vector<std::uint32_t> assemble(std::string_view source, std::uint64_t base) {
  const Listing listing = firstPass(source);
  SecondPass pass(listing, base);
  return pass.run();
}

}  // namespace riscmp::rv64
