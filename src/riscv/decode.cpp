#include "riscv/decode.hpp"

#include "support/bits.hpp"

namespace riscmp::rv64 {
namespace {

std::int64_t decodeImm(std::uint32_t word, ImmKind kind) {
  switch (kind) {
    case ImmKind::None:
      return 0;
    case ImmKind::I:
      return signExtend(bits(word, 31u, 20u), 12);
    case ImmKind::S:
      return signExtend((bits(word, 31u, 25u) << 5) | bits(word, 11u, 7u), 12);
    case ImmKind::B: {
      const std::uint64_t imm = (static_cast<std::uint64_t>(bit(word, 31u)) << 12) |
                                (static_cast<std::uint64_t>(bit(word, 7u)) << 11) |
                                (bits(word, 30u, 25u) << 5) |
                                (bits(word, 11u, 8u) << 1);
      return signExtend(imm, 13);
    }
    case ImmKind::U:
      return signExtend(static_cast<std::uint64_t>(word & 0xfffff000u), 32);
    case ImmKind::J: {
      const std::uint64_t imm = (static_cast<std::uint64_t>(bit(word, 31u)) << 20) |
                                (bits(word, 19u, 12u) << 12) |
                                (static_cast<std::uint64_t>(bit(word, 20u)) << 11) |
                                (bits(word, 30u, 21u) << 1);
      return signExtend(imm, 21);
    }
    case ImmKind::Shamt6:
      return static_cast<std::int64_t>(bits(word, 25u, 20u));
    case ImmKind::Shamt5:
      return static_cast<std::int64_t>(bits(word, 24u, 20u));
    case ImmKind::Csr:
    case ImmKind::CsrImm:
      return static_cast<std::int64_t>(bits(word, 31u, 20u));
  }
  return 0;
}

}  // namespace

std::optional<Inst> decode(std::uint32_t word) {
  for (const OpInfo& info : detail::opTable()) {
    if ((word & info.mask) != info.match) continue;

    Inst inst;
    inst.op = info.op;
    if (info.hasRd) inst.rd = static_cast<std::uint8_t>(bits(word, 11u, 7u));
    if (info.readsRs1() || info.imm == ImmKind::CsrImm) {
      inst.rs1 = static_cast<std::uint8_t>(bits(word, 19u, 15u));
    }
    if (info.readsRs2()) inst.rs2 = static_cast<std::uint8_t>(bits(word, 24u, 20u));
    if (info.readsRs3()) inst.rs3 = static_cast<std::uint8_t>(bits(word, 31u, 27u));
    inst.imm = decodeImm(word, info.imm);
    return inst;
  }
  return std::nullopt;
}

}  // namespace riscmp::rv64
