// RV64G architectural state and single-instruction executor.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "core/memory.hpp"
#include "isa/trace.hpp"
#include "riscv/inst.hpp"

namespace riscmp::rv64 {

struct State {
  std::array<std::uint64_t, 32> x{};  ///< x0 is forced to zero on read
  std::array<std::uint64_t, 32> f{};  ///< raw bit patterns, NaN-boxed floats
  std::uint64_t pc = 0;
  std::uint32_t fcsr = 0;

  [[nodiscard]] std::uint64_t gpr(unsigned i) const { return i == 0 ? 0 : x[i]; }
  void setGpr(unsigned i, std::uint64_t v) {
    if (i != 0) x[i] = v;
  }

  [[nodiscard]] double fprD(unsigned i) const {
    double v;
    std::memcpy(&v, &f[i], sizeof v);
    return v;
  }
  void setFprD(unsigned i, double v) { std::memcpy(&f[i], &v, sizeof v); }

  /// Single-precision values are NaN-boxed in the upper 32 bits (RISC-V
  /// D-extension requirement); reads of an improperly boxed value yield the
  /// canonical NaN.
  [[nodiscard]] float fprS(unsigned i) const;
  void setFprS(unsigned i, float v);
};

enum class Trap : std::uint8_t {
  None,
  Ecall,
  Ebreak,
  IllegalInstruction,
};

/// Execute one decoded instruction: updates `state` (including pc) and
/// `memory`, and appends operand/memory/branch details to `retired`
/// (`retired.pc/encoding/group` are filled by the caller). Reads of x0 are
/// not recorded as dependencies; writes to x0 are discarded.
Trap execute(const Inst& inst, State& state, Memory& memory,
             RetiredInst& retired);

}  // namespace riscmp::rv64
