// Decoded RV64G instruction representation.
#pragma once

#include <cstdint>

#include "riscv/opcodes.hpp"

namespace riscmp::rv64 {

struct Inst {
  Op op = Op::ADDI;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t rs3 = 0;
  /// Sign-extended immediate. For U-format the full shifted value
  /// (imm << 12); for branches/jumps the byte offset; for shifts the shamt;
  /// for CSR instructions the CSR number (and rs1 carries the zimm for the
  /// immediate forms).
  std::int64_t imm = 0;

  [[nodiscard]] const OpInfo& info() const { return opInfo(op); }

  bool operator==(const Inst&) const = default;
};

/// ABI register names (x-registers and f-registers).
const char* gprName(unsigned index);
const char* fprName(unsigned index);

/// Parse "x7"/"a0"/"sp"... or "f5"/"fa0"... Returns -1 on failure.
int gprFromName(std::string_view name);
int fprFromName(std::string_view name);

}  // namespace riscmp::rv64
