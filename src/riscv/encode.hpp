// RV64G instruction encoder.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "riscv/inst.hpp"

namespace riscmp::rv64 {

class EncodeError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Encode a decoded instruction into its 32-bit machine word. Throws
/// EncodeError when an immediate does not fit its field or is misaligned.
std::uint32_t encode(const Inst& inst);

// -- Convenience builders used by the kernel compiler's RISC-V backend. ----
Inst makeR(Op op, unsigned rd, unsigned rs1, unsigned rs2);
Inst makeR4(Op op, unsigned rd, unsigned rs1, unsigned rs2, unsigned rs3);
Inst makeI(Op op, unsigned rd, unsigned rs1, std::int64_t imm);
Inst makeS(Op op, unsigned rs2, unsigned rs1, std::int64_t imm);
Inst makeB(Op op, unsigned rs1, unsigned rs2, std::int64_t offset);
Inst makeU(Op op, unsigned rd, std::int64_t immShifted);
Inst makeJ(Op op, unsigned rd, std::int64_t offset);

}  // namespace riscmp::rv64
