#include "riscv/encode.hpp"

#include <string>

#include "support/bits.hpp"

namespace riscmp::rv64 {
namespace {

[[noreturn]] void fail(const Inst& inst, const char* what) {
  throw EncodeError(std::string(inst.info().mnemonic) + ": " + what);
}

void requireSigned(const Inst& inst, std::int64_t value, unsigned width) {
  if (!fitsSigned(value, width)) fail(inst, "immediate out of range");
}

}  // namespace

std::uint32_t encode(const Inst& inst) {
  const OpInfo& info = inst.info();
  std::uint32_t word = info.match;

  if (inst.rd > 31 || inst.rs1 > 31 || inst.rs2 > 31 || inst.rs3 > 31) {
    fail(inst, "register index out of range");
  }
  if (info.hasRd) word = insertBits(word, 11, 7, inst.rd);
  if (info.readsRs1() || info.imm == ImmKind::CsrImm) {
    word = insertBits(word, 19, 15, inst.rs1);
  }
  if (info.readsRs2()) word = insertBits(word, 24, 20, inst.rs2);
  if (info.readsRs3()) word = insertBits(word, 31, 27, inst.rs3);

  // FP instructions with a rounding-mode field (OP-FP and the four fused
  // multiply-add major opcodes, when funct3 is not fixed by the mask):
  // encode dynamic rounding (rm = 0b111), matching what GCC emits.
  const std::uint32_t major = info.match & 0x7fu;
  const bool hasRmField =
      (major == 0x53u || major == 0x43u || major == 0x47u || major == 0x4bu ||
       major == 0x4fu) &&
      (info.mask & 0x7000u) == 0;
  if (hasRmField) word = insertBits(word, 14, 12, 0b111);

  const std::int64_t imm = inst.imm;
  switch (info.imm) {
    case ImmKind::None:
      break;
    case ImmKind::I:
      requireSigned(inst, imm, 12);
      word = insertBits(word, 31, 20, static_cast<std::uint32_t>(imm & 0xfff));
      break;
    case ImmKind::S:
      requireSigned(inst, imm, 12);
      word = insertBits(word, 31, 25,
                        static_cast<std::uint32_t>((imm >> 5) & 0x7f));
      word = insertBits(word, 11, 7, static_cast<std::uint32_t>(imm & 0x1f));
      break;
    case ImmKind::B:
      requireSigned(inst, imm, 13);
      if (imm & 1) fail(inst, "branch offset must be even");
      word = insertBits(word, 31, 31,
                        static_cast<std::uint32_t>((imm >> 12) & 1));
      word = insertBits(word, 30, 25,
                        static_cast<std::uint32_t>((imm >> 5) & 0x3f));
      word = insertBits(word, 11, 8, static_cast<std::uint32_t>((imm >> 1) & 0xf));
      word = insertBits(word, 7, 7, static_cast<std::uint32_t>((imm >> 11) & 1));
      break;
    case ImmKind::U: {
      if ((imm & 0xfff) != 0) fail(inst, "U-immediate has low bits set");
      const std::int64_t hi = imm >> 12;
      requireSigned(inst, hi, 20);
      word = insertBits(word, 31, 12, static_cast<std::uint32_t>(hi & 0xfffff));
      break;
    }
    case ImmKind::J:
      requireSigned(inst, imm, 21);
      if (imm & 1) fail(inst, "jump offset must be even");
      word = insertBits(word, 31, 31,
                        static_cast<std::uint32_t>((imm >> 20) & 1));
      word = insertBits(word, 30, 21,
                        static_cast<std::uint32_t>((imm >> 1) & 0x3ff));
      word = insertBits(word, 20, 20,
                        static_cast<std::uint32_t>((imm >> 11) & 1));
      word = insertBits(word, 19, 12,
                        static_cast<std::uint32_t>((imm >> 12) & 0xff));
      break;
    case ImmKind::Shamt6:
      if (imm < 0 || imm > 63) fail(inst, "shift amount out of range");
      word = insertBits(word, 25, 20, static_cast<std::uint32_t>(imm));
      break;
    case ImmKind::Shamt5:
      if (imm < 0 || imm > 31) fail(inst, "shift amount out of range");
      word = insertBits(word, 24, 20, static_cast<std::uint32_t>(imm));
      break;
    case ImmKind::Csr:
    case ImmKind::CsrImm:
      if (imm < 0 || imm > 0xfff) fail(inst, "CSR number out of range");
      word = insertBits(word, 31, 20, static_cast<std::uint32_t>(imm));
      break;
  }
  return word;
}

Inst makeR(Op op, unsigned rd, unsigned rs1, unsigned rs2) {
  Inst inst;
  inst.op = op;
  inst.rd = static_cast<std::uint8_t>(rd);
  inst.rs1 = static_cast<std::uint8_t>(rs1);
  inst.rs2 = static_cast<std::uint8_t>(rs2);
  return inst;
}

Inst makeR4(Op op, unsigned rd, unsigned rs1, unsigned rs2, unsigned rs3) {
  Inst inst = makeR(op, rd, rs1, rs2);
  inst.rs3 = static_cast<std::uint8_t>(rs3);
  return inst;
}

Inst makeI(Op op, unsigned rd, unsigned rs1, std::int64_t imm) {
  Inst inst;
  inst.op = op;
  inst.rd = static_cast<std::uint8_t>(rd);
  inst.rs1 = static_cast<std::uint8_t>(rs1);
  inst.imm = imm;
  return inst;
}

Inst makeS(Op op, unsigned rs2, unsigned rs1, std::int64_t imm) {
  Inst inst;
  inst.op = op;
  inst.rs1 = static_cast<std::uint8_t>(rs1);
  inst.rs2 = static_cast<std::uint8_t>(rs2);
  inst.imm = imm;
  return inst;
}

Inst makeB(Op op, unsigned rs1, unsigned rs2, std::int64_t offset) {
  Inst inst;
  inst.op = op;
  inst.rs1 = static_cast<std::uint8_t>(rs1);
  inst.rs2 = static_cast<std::uint8_t>(rs2);
  inst.imm = offset;
  return inst;
}

Inst makeU(Op op, unsigned rd, std::int64_t immShifted) {
  Inst inst;
  inst.op = op;
  inst.rd = static_cast<std::uint8_t>(rd);
  inst.imm = immShifted;
  return inst;
}

Inst makeJ(Op op, unsigned rd, std::int64_t offset) {
  Inst inst;
  inst.op = op;
  inst.rd = static_cast<std::uint8_t>(rd);
  inst.imm = offset;
  return inst;
}

}  // namespace riscmp::rv64
