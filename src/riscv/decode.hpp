// RV64G instruction decoder.
#pragma once

#include <cstdint>
#include <optional>

#include "riscv/inst.hpp"

namespace riscmp::rv64 {

/// Decode a 32-bit machine word. Returns std::nullopt for encodings outside
/// the supported RV64G subset.
std::optional<Inst> decode(std::uint32_t word);

}  // namespace riscmp::rv64
