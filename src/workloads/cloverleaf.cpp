// CloverLeaf-serial mini (§2.1): "a high energy physics simulation solving
// the compressible Euler equations on a 2D Cartesian grid ... broken down
// into a series of kernels each of which loops over the entire grid."
//
// Four representative kernels per step, mirroring the originals' structure:
//   ideal_gas   — p = (γ-1)·ρ·e; ss = sqrt(γ·p/ρ)   (divide + sqrt chains)
//   accelerate  — velocity update from pressure gradients, divided by a
//                 face-averaged density
//   flux_calc   — face volume fluxes from velocities
//   advec_cell  — energy/density update from flux divergence
//   calc_dt     — CFL timestep: a serial min-reduction over every cell,
//                 the chain that dominates CloverLeaf's critical path
// Grids are padded by one halo cell on each side; kernels sweep interior
// cells only, so all indexing stays affine.
#include "workloads/workloads.hpp"

using namespace riscmp::kgen;

namespace riscmp::workloads {
namespace {

std::vector<double> smoothField(std::int64_t count, double base,
                                double amplitude) {
  std::vector<double> out(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    // A bounded, strictly positive pseudo-profile (no transcendentals so
    // the reference is exactly reproducible).
    const double phase = static_cast<double>(i % 17) / 17.0;
    out[static_cast<std::size_t>(i)] =
        base + amplitude * (phase - 0.5) * (phase - 0.5);
  }
  return out;
}

}  // namespace

Module makeCloverLeaf(const CloverLeafParams& params) {
  Module module;
  module.name = "CloverLeaf";

  const std::int64_t w = params.nx + 2;  // padded width
  const std::int64_t h = params.ny + 2;
  const std::int64_t cells = w * h;

  module.array("density", cells).init = smoothField(cells, 1.0, 0.4);
  module.array("energy", cells).init = smoothField(cells, 2.5, 0.8);
  module.array("pressure", cells);
  module.array("soundspeed", cells);
  module.array("xvel", cells);
  module.array("yvel", cells);
  module.array("vol_flux_x", cells);
  module.array("vol_flux_y", cells);

  module.scalarInit("gm1", 0.4);    // gamma - 1
  module.scalarInit("gamma", 1.4);
  module.scalarInit("dtdx", 0.002);
  module.scalarInit("dt", 0.004);
  module.scalarInit("rvol", 0.25);
  module.scalarInit("dt_min", 1.0e10);

  const AffineIdx cell = idx2("y", w, "x") + (w + 1);  // interior shift

  for (std::int64_t step = 0; step < params.steps; ++step) {
    // ---- ideal_gas --------------------------------------------------------
    {
      std::vector<Stmt> body;
      body.push_back(storeArr(
          "pressure", cell,
          mul(scalar("gm1"),
              mul(load("density", cell), load("energy", cell)))));
      body.push_back(storeArr(
          "soundspeed", cell,
          fsqrt(divide(mul(scalar("gamma"), load("pressure", cell)),
                       load("density", cell)))));
      module.kernel("ideal_gas")
          .body.push_back(
              loop("y", params.ny, {loop("x", params.nx, std::move(body))}));
    }

    // ---- accelerate ---------------------------------------------------------
    {
      std::vector<Stmt> body;
      // xvel -= dtdx * (p[x+1]-p[x-1]) / (0.5*(rho[x]+rho[x-1]))
      body.push_back(storeArr(
          "xvel", cell,
          sub(load("xvel", cell),
              divide(mul(scalar("dtdx"),
                         sub(load("pressure", cell + 1),
                             load("pressure", cell + (-1)))),
                     mul(cnst(0.5), add(load("density", cell),
                                        load("density", cell + (-1))))))));
      body.push_back(storeArr(
          "yvel", cell,
          sub(load("yvel", cell),
              divide(mul(scalar("dtdx"),
                         sub(load("pressure", cell + w),
                             load("pressure", cell + (-w)))),
                     mul(cnst(0.5), add(load("density", cell),
                                        load("density", cell + (-w))))))));
      module.kernel("accelerate")
          .body.push_back(
              loop("y", params.ny, {loop("x", params.nx, std::move(body))}));
    }

    // ---- flux_calc ------------------------------------------------------------
    {
      std::vector<Stmt> body;
      body.push_back(storeArr(
          "vol_flux_x", cell,
          mul(mul(cnst(0.25), scalar("dt")),
              mul(add(load("xvel", cell), load("xvel", cell + 1)),
                  add(load("soundspeed", cell),
                      load("soundspeed", cell + 1))))));
      body.push_back(storeArr(
          "vol_flux_y", cell,
          mul(mul(cnst(0.25), scalar("dt")),
              mul(add(load("yvel", cell), load("yvel", cell + w)),
                  add(load("soundspeed", cell),
                      load("soundspeed", cell + w))))));
      module.kernel("flux_calc")
          .body.push_back(
              loop("y", params.ny, {loop("x", params.nx, std::move(body))}));
    }

    // ---- advec_cell ---------------------------------------------------------------
    {
      std::vector<Stmt> body;
      body.push_back(storeArr(
          "energy", cell,
          add(load("energy", cell),
              mul(scalar("rvol"),
                  add(sub(load("vol_flux_x", cell),
                          load("vol_flux_x", cell + 1)),
                      sub(load("vol_flux_y", cell),
                          load("vol_flux_y", cell + w)))))));
      body.push_back(storeArr(
          "density", cell,
          fmax(cnst(0.1),
               add(load("density", cell),
                   mul(mul(cnst(0.5), scalar("rvol")),
                       add(sub(load("vol_flux_x", cell),
                               load("vol_flux_x", cell + 1)),
                           sub(load("vol_flux_y", cell),
                               load("vol_flux_y", cell + w))))))));
      module.kernel("advec_cell")
          .body.push_back(
              loop("y", params.ny, {loop("x", params.nx, std::move(body))}));
    }

    // ---- calc_dt: global CFL min-reduction ---------------------------------
    {
      std::vector<Stmt> body;
      body.push_back(setScalar(
          "dt_min",
          fmin(scalar("dt_min"),
               divide(cnst(0.04),
                      add(load("soundspeed", cell),
                          add(fabs(load("xvel", cell)),
                              fabs(load("yvel", cell))))))));
      module.kernel("calc_dt")
          .body.push_back(
              loop("y", params.ny, {loop("x", params.nx, std::move(body))}));
    }
  }
  return module;
}

}  // namespace riscmp::workloads
