// STREAM (§2.1): "4 simple kernels applied to elements of arrays". The
// repetition loop is unrolled at module level so copy/scale/add/triad
// interleave per repetition as in the original benchmark, while per-kernel
// path-length attribution (Figure 1) still aggregates across repetitions.
#include "workloads/workloads.hpp"

using namespace riscmp::kgen;

namespace riscmp::workloads {

Module makeStream(const StreamParams& params) {
  Module module;
  module.name = "STREAM";

  const std::int64_t n = params.n;
  module.array("a", n).init.assign(static_cast<std::size_t>(n), 1.0);
  module.array("b", n).init.assign(static_cast<std::size_t>(n), 2.0);
  module.array("c", n).init.assign(static_cast<std::size_t>(n), 0.0);
  module.scalarInit("scalar", 3.0);

  for (std::int64_t rep = 0; rep < params.reps; ++rep) {
    module.kernel("copy").body.push_back(
        loop("j", n, {storeArr("c", idx("j"), load("a", idx("j")))}));
    module.kernel("scale").body.push_back(loop(
        "j", n,
        {storeArr("b", idx("j"), mul(scalar("scalar"), load("c", idx("j"))))}));
    module.kernel("add").body.push_back(loop(
        "j", n, {storeArr("c", idx("j"),
                          add(load("a", idx("j")), load("b", idx("j"))))}));
    module.kernel("triad").body.push_back(loop(
        "j", n, {storeArr("a", idx("j"),
                          add(load("b", idx("j")),
                              mul(scalar("scalar"), load("c", idx("j")))))}));
  }
  return module;
}

}  // namespace riscmp::workloads
