#include "workloads/workloads.hpp"

#include <algorithm>
#include <cmath>

namespace riscmp::workloads {

std::vector<WorkloadSpec> paperSuite(double scale) {
  const auto scaled = [scale](std::int64_t value) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               static_cast<double>(value) * scale)));
  };

  StreamParams stream;
  stream.n = scaled(stream.n);

  CloverLeafParams clover;
  clover.steps = scaled(clover.steps);

  MiniBudeParams bude;
  bude.poses = scaled(bude.poses);

  LbmParams lbm;
  lbm.iters = scaled(lbm.iters);

  MinisweepParams sweep;
  sweep.na = scaled(sweep.na);

  std::vector<WorkloadSpec> suite;
  suite.push_back({"STREAM", makeStream(stream)});
  suite.push_back({"CloverLeaf", makeCloverLeaf(clover)});
  suite.push_back({"LBM", makeLbm(lbm)});
  suite.push_back({"miniBUDE", makeMiniBude(bude)});
  suite.push_back({"minisweep", makeMinisweep(sweep)});
  return suite;
}

}  // namespace riscmp::workloads
