// Minisweep mini (§2.1): "a radiation transportation mini app reproducing
// the Denovo Sn radiation transport behaviour used for nuclear reactor
// neutronics modeling."
//
// One-octant structured sweep: cells are visited in (z, y, x) order and for
// every (energy, angle) pair the outgoing flux is computed from the three
// upwind face fluxes, written back to the face arrays (loop-carried
// dependencies through memory — the wavefront that shapes minisweep's
// critical path), and accumulated into the cell output.
#include "workloads/workloads.hpp"

using namespace riscmp::kgen;

namespace riscmp::workloads {
namespace {

std::vector<double> positiveField(std::int64_t count, double base,
                                  double amplitude, std::uint64_t seed) {
  std::vector<double> out(static_cast<std::size_t>(count));
  std::uint64_t state = seed;
  for (std::int64_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double unit =
        static_cast<double>((state >> 33) & 0xffffff) / 16777216.0;
    out[static_cast<std::size_t>(i)] = base + amplitude * unit;
  }
  return out;
}

}  // namespace

Module makeMinisweep(const MinisweepParams& params) {
  Module module;
  module.name = "minisweep";

  const std::int64_t nx = params.ncellX;
  const std::int64_t ny = params.ncellY;
  const std::int64_t nz = params.ncellZ;
  const std::int64_t ne = params.ne;
  const std::int64_t na = params.na;
  const std::int64_t cells = nz * ny * nx;

  module.array("vs", cells).init = positiveField(cells, 0.5, 0.5, 7);
  module.array("sigt", cells).init = positiveField(cells, 1.5, 0.5, 13);
  module.array("vo", cells);
  // Face fluxes: x-faces persist per (z, y, e, a), etc.
  module.array("facex", nz * ny * ne * na)
      .init.assign(static_cast<std::size_t>(nz * ny * ne * na), 0.25);
  module.array("facey", nz * nx * ne * na)
      .init.assign(static_cast<std::size_t>(nz * nx * ne * na), 0.25);
  module.array("facez", ny * nx * ne * na)
      .init.assign(static_cast<std::size_t>(ny * nx * ne * na), 0.25);

  module.scalarInit("psi", 0.0);
  module.scalarInit("wt", 1.0 / static_cast<double>(na));

  // Index helpers (row-major nests).
  const AffineIdx cell = [&] {
    AffineIdx index;
    index.terms = {{"z", ny * nx}, {"y", nx}, {"x", 1}};
    return index;
  }();
  const AffineIdx faceXIdx = [&] {
    AffineIdx index;
    index.terms = {{"z", ny * ne * na}, {"y", ne * na}, {"e", na}, {"a", 1}};
    return index;
  }();
  const AffineIdx faceYIdx = [&] {
    AffineIdx index;
    index.terms = {{"z", nx * ne * na}, {"x", ne * na}, {"e", na}, {"a", 1}};
    return index;
  }();
  const AffineIdx faceZIdx = [&] {
    AffineIdx index;
    index.terms = {{"y", nx * ne * na}, {"x", ne * na}, {"e", na}, {"a", 1}};
    return index;
  }();

  std::vector<Stmt> angleBody;
  // psi = (vs + 0.3 fx + 0.3 fy + 0.3 fz) / sigt
  angleBody.push_back(setScalar(
      "psi",
      divide(add(load("vs", cell),
                 add(mul(cnst(0.3), load("facex", faceXIdx)),
                     add(mul(cnst(0.3), load("facey", faceYIdx)),
                         mul(cnst(0.3), load("facez", faceZIdx))))),
             load("sigt", cell))));
  // Outgoing fluxes replace the incoming faces (the wavefront carry).
  angleBody.push_back(storeArr("facex", faceXIdx, scalar("psi")));
  angleBody.push_back(storeArr("facey", faceYIdx, scalar("psi")));
  angleBody.push_back(storeArr("facez", faceZIdx, scalar("psi")));
  // vo[cell] += wt * psi
  angleBody.push_back(storeArr(
      "vo", cell,
      add(load("vo", cell), mul(scalar("wt"), scalar("psi")))));

  module.kernel("sweep").body.push_back(loop(
      "z", nz,
      {loop("y", ny,
            {loop("x", nx,
                  {loop("e", ne, {loop("a", na, std::move(angleBody))})})})}));

  return module;
}

}  // namespace riscmp::workloads
