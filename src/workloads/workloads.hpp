// The paper's five workloads (§2.1), expressed in the kernel IR at
// laptop-scale problem sizes.
//
// Each builder returns a kgen::Module whose kernels mirror the structure of
// the original benchmark's hot kernels; EXPERIMENTS.md records the size
// substitutions. Every module is validated end-to-end by comparing
// simulated memory against the reference interpreter (tests/workloads).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kgen/ir.hpp"

namespace riscmp::workloads {

/// STREAM (McCalpin): four kernels (copy/scale/add/triad) over arrays of
/// doubles, repeated `reps` times. Paper size: n = 10,000,000.
struct StreamParams {
  std::int64_t n = 25'000;
  std::int64_t reps = 10;  ///< STREAM's classic NTIMES
};
kgen::Module makeStream(const StreamParams& params = {});

/// CloverLeaf (serial) mini: compressible-Euler style kernels on a padded
/// 2-D staggered grid (ideal_gas / accelerate / flux_calc / advec_cell).
/// Paper size: default deck (960x960-class grids).
struct CloverLeafParams {
  std::int64_t nx = 48;
  std::int64_t ny = 48;
  std::int64_t steps = 2;
};
kgen::Module makeCloverLeaf(const CloverLeafParams& params = {});

/// miniBUDE mini: per-pose molecular-docking energy (distance, 1/r
/// electrostatics, Lennard-Jones-style terms), serial accumulation chain
/// per pose. Paper run: bm1 deck, 64 poses, 1 iteration.
struct MiniBudeParams {
  std::int64_t poses = 24;
  std::int64_t ligandAtoms = 8;
  std::int64_t proteinAtoms = 32;
};
kgen::Module makeMiniBude(const MiniBudeParams& params = {});

/// Lattice-Boltzmann d2q9-bgk mini: fully periodic torus (halo-exchange,
/// propagate, accelerate, collide), no obstacles. Paper size: 128x128,
/// 100 iterations.
struct LbmParams {
  std::int64_t nx = 32;
  std::int64_t ny = 32;
  std::int64_t iters = 6;
};
kgen::Module makeLbm(const LbmParams& params = {});

/// Minisweep mini: Denovo Sn-style wavefront transport sweep; per-cell
/// face fluxes carry loop-ordered dependencies through memory. Paper run:
/// -ncell_x 8 -ncell_y 16 -ncell_z 32 -ne 1 -na 32.
struct MinisweepParams {
  std::int64_t ncellX = 4;
  std::int64_t ncellY = 6;
  std::int64_t ncellZ = 8;
  std::int64_t ne = 2;
  std::int64_t na = 12;
};
kgen::Module makeMinisweep(const MinisweepParams& params = {});

/// One entry of the benchmark suite.
struct WorkloadSpec {
  std::string name;
  kgen::Module module;
};

/// The paper's five-workload suite at bench sizes. `scale` stretches the
/// dominant dimension (array length / grid side / pose count) for longer
/// runs; 1.0 is the default laptop-scale configuration.
std::vector<WorkloadSpec> paperSuite(double scale = 1.0);

}  // namespace riscmp::workloads
