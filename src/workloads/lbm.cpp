// Lattice-Boltzmann d2q9-bgk mini (§2.1): "developed within the HPC
// Research Group at the University of Bristol, optimised for serial
// execution."
//
// Full d2q9-bgk structure on a fully periodic torus, one halo cell per
// side, no obstacles:
//   accelerate_flow — bias the x-momentum distributions on one interior row
//   halo_exchange   — periodic copies of edge rows/columns/corners
//   propagate       — stream each distribution from its upwind neighbour
//   collision       — density/velocity moments, BGK relaxation towards the
//                     usual second-order equilibrium (two divides per cell)
//   av_velocity     — the per-step average-speed reduction of d2q9-bgk: a
//                     serial sum over every cell (the CP-dominating chain)
// Per-iteration kernels are unrolled at module level so Figure-1 style
// per-kernel attribution aggregates across time steps.
#include "workloads/workloads.hpp"

using namespace riscmp::kgen;

namespace riscmp::workloads {
namespace {

// d2q9 lattice vectors and weights.
constexpr int kEx[9] = {0, 1, 0, -1, 0, 1, -1, -1, 1};
constexpr int kEy[9] = {0, 0, 1, 0, -1, 1, 1, -1, -1};
constexpr double kW[9] = {4.0 / 9,  1.0 / 9,  1.0 / 9, 1.0 / 9, 1.0 / 9,
                          1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36};

std::string fName(int d) { return "f" + std::to_string(d); }
std::string tName(int d) { return "t" + std::to_string(d); }

}  // namespace

Module makeLbm(const LbmParams& params) {
  Module module;
  module.name = "LBM";

  const std::int64_t nx = params.nx;
  const std::int64_t ny = params.ny;
  const std::int64_t w = nx + 2;  // padded width
  const std::int64_t cells = w * (ny + 2);
  const double rho0 = 1.0;

  for (int d = 0; d < 9; ++d) {
    module.array(fName(d), cells)
        .init.assign(static_cast<std::size_t>(cells), kW[d] * rho0);
    module.array(tName(d), cells);
  }

  module.scalarInit("w1a", rho0 * 0.005 / 9.0);   // accel * w1
  module.scalarInit("w2a", rho0 * 0.005 / 36.0);  // accel * w2
  module.scalarInit("omega", 1.2);
  for (const char* name : {"rho", "ux", "uy", "usq", "tot_u"}) {
    module.scalarInit(name, 0.0);
  }
  for (int d = 0; d < 9; ++d) module.scalarInit("td" + std::to_string(d), 0.0);

  const AffineIdx cell = idx2("y", w, "x") + (w + 1);

  for (std::int64_t iter = 0; iter < params.iters; ++iter) {
    // ---- accelerate_flow: row y = 1 (fixed interior row) ------------------
    {
      const AffineIdx row = idx("x") + (w + 1);
      std::vector<Stmt> body;
      body.push_back(
          storeArr("f1", row, add(load("f1", row), scalar("w1a"))));
      body.push_back(
          storeArr("f5", row, add(load("f5", row), scalar("w2a"))));
      body.push_back(
          storeArr("f8", row, add(load("f8", row), scalar("w2a"))));
      body.push_back(
          storeArr("f3", row, sub(load("f3", row), scalar("w1a"))));
      body.push_back(
          storeArr("f6", row, sub(load("f6", row), scalar("w2a"))));
      body.push_back(
          storeArr("f7", row, sub(load("f7", row), scalar("w2a"))));
      module.kernel("accelerate").body.push_back(loop("x", nx, std::move(body)));
    }

    // ---- halo_exchange: periodic edges for every distribution -------------
    {
      Kernel& kernel = module.kernel("halo_exchange");
      for (int d = 0; d < 9; ++d) {
        const std::string f = fName(d);
        // Rows: halo row 0 <- interior row ny; halo row ny+1 <- row 1.
        kernel.body.push_back(
            loop("x", nx, {storeArr(f, idx("x") + 1,
                                    load(f, idx("x") + (ny * w + 1)))}));
        kernel.body.push_back(loop(
            "x", nx, {storeArr(f, idx("x") + ((ny + 1) * w + 1),
                               load(f, idx("x") + (w + 1)))}));
        // Columns: halo col 0 <- interior col nx; halo col nx+1 <- col 1.
        kernel.body.push_back(
            loop("y", ny, {storeArr(f, idx("y", w) + w,
                                    load(f, idx("y", w) + (w + nx)))}));
        kernel.body.push_back(loop(
            "y", ny, {storeArr(f, idx("y", w) + (w + nx + 1),
                               load(f, idx("y", w) + (w + 1)))}));
        // Corners (single-trip loops keep indexing affine).
        kernel.body.push_back(loop(
            "c", 1, {storeArr(f, idx("c"), load(f, idx("c") + (ny * w + nx)))}));
        kernel.body.push_back(
            loop("c", 1, {storeArr(f, idx("c") + (w - 1),
                                   load(f, idx("c") + (ny * w + 1)))}));
        kernel.body.push_back(
            loop("c", 1, {storeArr(f, idx("c") + ((ny + 1) * w),
                                   load(f, idx("c") + (w + nx)))}));
        kernel.body.push_back(
            loop("c", 1, {storeArr(f, idx("c") + ((ny + 1) * w + nx + 1),
                                   load(f, idx("c") + (w + 1)))}));
      }
    }

    // ---- propagate: t_d(x, y) = f_d(x - ex, y - ey) ------------------------
    {
      std::vector<Stmt> body;
      for (int d = 0; d < 9; ++d) {
        const std::int64_t shift = -kEx[d] - static_cast<std::int64_t>(kEy[d]) * w;
        body.push_back(storeArr(tName(d), cell, load(fName(d), cell + shift)));
      }
      module.kernel("propagate")
          .body.push_back(loop("y", ny, {loop("x", nx, std::move(body))}));
    }

    // ---- collision: BGK relaxation ------------------------------------------
    {
      std::vector<Stmt> body;
      for (int d = 0; d < 9; ++d) {
        body.push_back(
            setScalar("td" + std::to_string(d), load(tName(d), cell)));
      }
      auto td = [](int d) { return scalar("td" + std::to_string(d)); };
      // rho = sum of distributions.
      ExprPtr rho = td(0);
      for (int d = 1; d < 9; ++d) rho = add(rho, td(d));
      body.push_back(setScalar("rho", rho));
      // ux = (t1 + t5 + t8 - t3 - t6 - t7) / rho
      body.push_back(setScalar(
          "ux", divide(sub(add(td(1), add(td(5), td(8))),
                           add(td(3), add(td(6), td(7)))),
                       scalar("rho"))));
      body.push_back(setScalar(
          "uy", divide(sub(add(td(2), add(td(5), td(6))),
                           add(td(4), add(td(7), td(8)))),
                       scalar("rho"))));
      body.push_back(setScalar(
          "usq", add(mul(scalar("ux"), scalar("ux")),
                     mul(scalar("uy"), scalar("uy")))));
      for (int d = 0; d < 9; ++d) {
        // eu = ex*ux + ey*uy (folded at build time per direction).
        ExprPtr eu = nullptr;
        if (kEx[d] == 1) eu = scalar("ux");
        if (kEx[d] == -1) eu = neg(scalar("ux"));
        if (kEy[d] != 0) {
          const ExprPtr uyTerm =
              kEy[d] == 1 ? scalar("uy") : neg(scalar("uy"));
          eu = eu ? add(eu, uyTerm) : uyTerm;
        }
        // equilibrium = w_d rho (1 + 3 eu + 4.5 eu^2 - 1.5 usq)
        ExprPtr inner = sub(cnst(1.0), mul(cnst(1.5), scalar("usq")));
        if (eu) {
          inner = add(inner, mul(cnst(3.0), eu));
          inner = add(inner, mul(cnst(4.5), mul(eu, eu)));
        }
        const ExprPtr equilibrium = mul(mul(cnst(kW[d]), scalar("rho")), inner);
        // f_d = t_d + omega (eq - t_d)
        body.push_back(storeArr(
            fName(d), cell,
            add(td(d), mul(scalar("omega"), sub(equilibrium, td(d))))));
      }
      module.kernel("collision")
          .body.push_back(loop("y", ny, {loop("x", nx, std::move(body))}));
    }

    // ---- av_velocity: the benchmark's per-step reduction -------------------
    {
      std::vector<Stmt> body;
      auto f = [&](int d) { return load(fName(d), cell); };
      ExprPtr rho = f(0);
      for (int d = 1; d < 9; ++d) rho = add(rho, f(d));
      body.push_back(setScalar("rho", rho));
      body.push_back(setScalar(
          "ux", divide(sub(add(f(1), add(f(5), f(8))),
                           add(f(3), add(f(6), f(7)))),
                       scalar("rho"))));
      body.push_back(setScalar(
          "uy", divide(sub(add(f(2), add(f(5), f(6))),
                           add(f(4), add(f(7), f(8)))),
                       scalar("rho"))));
      body.push_back(accumScalar(
          "tot_u", fsqrt(add(mul(scalar("ux"), scalar("ux")),
                             mul(scalar("uy"), scalar("uy"))))));
      module.kernel("av_velocity")
          .body.push_back(loop("y", ny, {loop("x", nx, std::move(body))}));
    }
  }
  return module;
}

}  // namespace riscmp::workloads
