// miniBUDE mini (§2.1): "a mini app approximating the behaviour of a
// molecular docking simulation used for drug discovery."
//
// Like the original's fasten_main kernel: for every pose, translate the
// ligand, then accumulate an interaction energy over all ligand-protein
// atom pairs (squared distance via FMA, reciprocal-distance electrostatics
// via divide + sqrt, a repulsive r^-2-style term). The per-pose energy is a
// serial floating-point reduction chain — the structure behind miniBUDE's
// distinctive critical-path behaviour in the paper (ILP ~600-700).
#include "workloads/workloads.hpp"

using namespace riscmp::kgen;

namespace riscmp::workloads {
namespace {

std::vector<double> pseudoCoords(std::int64_t count, double spread,
                                 std::uint64_t seed) {
  std::vector<double> out(static_cast<std::size_t>(count));
  std::uint64_t state = seed;
  for (std::int64_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double unit =
        static_cast<double>((state >> 33) & 0xffffff) / 16777216.0;
    out[static_cast<std::size_t>(i)] = spread * (unit - 0.5);
  }
  return out;
}

}  // namespace

Module makeMiniBude(const MiniBudeParams& params) {
  Module module;
  module.name = "miniBUDE";

  const std::int64_t nl = params.ligandAtoms;
  const std::int64_t np = params.proteinAtoms;
  const std::int64_t poses = params.poses;

  module.array("lx", nl).init = pseudoCoords(nl, 4.0, 11);
  module.array("ly", nl).init = pseudoCoords(nl, 4.0, 22);
  module.array("lz", nl).init = pseudoCoords(nl, 4.0, 33);
  module.array("lq", nl).init = pseudoCoords(nl, 2.0, 44);
  module.array("px", np).init = pseudoCoords(np, 12.0, 55);
  module.array("py", np).init = pseudoCoords(np, 12.0, 66);
  module.array("pz", np).init = pseudoCoords(np, 12.0, 77);
  module.array("pq", np).init = pseudoCoords(np, 2.0, 88);
  module.array("posex", poses).init = pseudoCoords(poses, 6.0, 99);
  module.array("posey", poses).init = pseudoCoords(poses, 6.0, 111);
  module.array("posez", poses).init = pseudoCoords(poses, 6.0, 222);
  module.array("energies", poses);

  module.scalarInit("etot", 0.0);
  module.scalarInit("softening", 1.0);  // keeps r^2 strictly positive

  // dx = lx[i] + posex[p] - px[j]  (and likewise for y, z)
  auto delta = [&](const char* ligand, const char* pose, const char* protein) {
    return sub(add(load(ligand, idx("i")), load(pose, idx("p"))),
               load(protein, idx("j")));
  };

  // dx/dy/dz live in register-resident scalar temporaries so each delta is
  // computed once (the CSE a real compiler would perform).
  std::vector<Stmt> pairBody;
  pairBody.push_back(setScalar("dx", delta("lx", "posex", "px")));
  pairBody.push_back(setScalar("dy", delta("ly", "posey", "py")));
  pairBody.push_back(setScalar("dz", delta("lz", "posez", "pz")));
  // r2 = softening + dx^2 + dy^2 + dz^2 (FMA chain)
  pairBody.push_back(setScalar(
      "r2", add(mul(scalar("dx"), scalar("dx")),
                add(mul(scalar("dy"), scalar("dy")),
                    add(mul(scalar("dz"), scalar("dz")),
                        scalar("softening"))))));
  // etot += q_i q_j / sqrt(r2) + 0.01 / r2   (electrostatics + repulsion)
  pairBody.push_back(accumScalar(
      "etot", divide(mul(load("lq", idx("i")), load("pq", idx("j"))),
                     fsqrt(scalar("r2")))));
  pairBody.push_back(accumScalar("etot", divide(cnst(0.01), scalar("r2"))));
  module.scalarInit("r2", 0.0);
  module.scalarInit("dx", 0.0);
  module.scalarInit("dy", 0.0);
  module.scalarInit("dz", 0.0);

  Kernel& kernel = module.kernel("fasten_main");
  kernel.body.push_back(loop(
      "p", poses,
      {setScalar("etot", cnst(0.0)),
       loop("i", nl, {loop("j", np, std::move(pairBody))}),
       storeArr("energies", idx("p"), scalar("etot"))}));

  return module;
}

}  // namespace riscmp::workloads
