#include "engine/cell_codec.hpp"

#include <bit>
#include <cstdio>

#include "support/fault.hpp"

namespace riscmp::engine {

using support::JsonValue;

namespace {

JsonValue bits(double value) {
  return JsonValue(std::bit_cast<std::uint64_t>(value));
}

double unbits(const JsonValue& value) {
  return std::bit_cast<double>(value.asUint());
}

JsonValue encodeConfig(const Config& config) {
  JsonValue out = JsonValue::object();
  out.set("arch", JsonValue(static_cast<std::uint64_t>(config.arch)));
  out.set("era", JsonValue(static_cast<std::uint64_t>(config.era)));
  return out;
}

Config decodeConfig(const JsonValue& value) {
  Config config;
  config.arch = static_cast<Arch>(value.at("arch").asUint());
  config.era = static_cast<kgen::CompilerEra>(value.at("era").asUint());
  return config;
}

JsonValue encodeKernelBound(
    const ThroughputBoundAnalyzer::KernelBound& bound) {
  JsonValue out = JsonValue::object();
  out.set("name", JsonValue(bound.name));
  out.set("instructions", JsonValue(bound.instructions));
  JsonValue ports = JsonValue::array();
  for (const std::uint64_t cycles : bound.portCycles) {
    ports.push(JsonValue(cycles));
  }
  out.set("portCycles", std::move(ports));
  out.set("portBound", JsonValue(bound.portBound));
  out.set("bindingPort", JsonValue(bound.bindingPort));
  out.set("issueBound", JsonValue(bound.issueBound));
  out.set("cpBound", JsonValue(bound.cpBound));
  return out;
}

ThroughputBoundAnalyzer::KernelBound decodeKernelBound(
    const JsonValue& value) {
  ThroughputBoundAnalyzer::KernelBound bound;
  bound.name = value.at("name").asString();
  bound.instructions = value.at("instructions").asUint();
  for (const JsonValue& cycles : value.at("portCycles").items()) {
    bound.portCycles.push_back(cycles.asUint());
  }
  bound.portBound = value.at("portBound").asUint();
  bound.bindingPort = value.at("bindingPort").asString();
  bound.issueBound = value.at("issueBound").asUint();
  bound.cpBound = value.at("cpBound").asUint();
  return bound;
}

}  // namespace

JsonValue encodeCell(const CellResult& result) {
  JsonValue out = JsonValue::object();
  out.set("v", JsonValue(kCodecV));

  JsonValue key = JsonValue::object();
  key.set("workload", JsonValue(result.key.workload));
  key.set("w", JsonValue(static_cast<std::uint64_t>(result.key.workloadIndex)));
  key.set("config", encodeConfig(result.key.config));
  key.set("c", JsonValue(static_cast<std::uint64_t>(result.key.configIndex)));
  out.set("key", std::move(key));

  JsonValue status = JsonValue::object();
  status.set("name", JsonValue(result.cell.name));
  status.set("ok", JsonValue(result.cell.ok));
  if (!result.cell.ok) {
    status.set("kind", JsonValue(result.cell.kind));
    status.set("summary", JsonValue(result.cell.summary));
  }
  out.set("cell", std::move(status));
  if (!result.faultText.empty()) {
    out.set("faultText", JsonValue(result.faultText));
  }

  out.set("instructions", JsonValue(result.instructions));

  JsonValue kernels = JsonValue::array();
  for (const auto& kernel : result.kernels) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue(kernel.name));
    entry.set("count", JsonValue(kernel.count));
    kernels.push(std::move(entry));
  }
  out.set("kernels", std::move(kernels));

  JsonValue groups = JsonValue::array();
  for (const std::uint64_t count : result.groups) groups.push(JsonValue(count));
  out.set("groups", std::move(groups));
  out.set("unattributed", JsonValue(result.unattributed));

  out.set("criticalPath", JsonValue(result.criticalPath));
  out.set("hasScaledCp", JsonValue(result.hasScaledCp));
  out.set("scaledCriticalPath", JsonValue(result.scaledCriticalPath));

  JsonValue windows = JsonValue::array();
  for (const auto& window : result.windows) {
    JsonValue entry = JsonValue::object();
    entry.set("size", JsonValue(static_cast<std::uint64_t>(window.windowSize)));
    entry.set("windows", JsonValue(window.windows));
    entry.set("meanCp", bits(window.meanCp));
    entry.set("meanIlp", bits(window.meanIlp));
    entry.set("minCp", bits(window.minCp));
    entry.set("maxCp", bits(window.maxCp));
    windows.push(std::move(entry));
  }
  out.set("windows", std::move(windows));

  JsonValue deps = JsonValue::object();
  deps.set("dependencies", JsonValue(result.deps.dependencies));
  deps.set("meanDistance", bits(result.deps.meanDistance));
  deps.set("within4", bits(result.deps.within4));
  deps.set("within16", bits(result.deps.within16));
  deps.set("within64", bits(result.deps.within64));
  out.set("deps", std::move(deps));

  out.set("hasCache", JsonValue(result.hasCache));
  if (result.hasCache) {
    JsonValue cache = JsonValue::object();
    cache.set("loads", JsonValue(result.cache.loads));
    cache.set("stores", JsonValue(result.cache.stores));
    cache.set("l1Hits", JsonValue(result.cache.l1Hits));
    cache.set("l1Misses", JsonValue(result.cache.l1Misses));
    cache.set("l2Hits", JsonValue(result.cache.l2Hits));
    cache.set("l2Misses", JsonValue(result.cache.l2Misses));
    cache.set("writebacksToL2", JsonValue(result.cache.writebacksToL2));
    cache.set("writebacksToMem", JsonValue(result.cache.writebacksToMem));
    cache.set("prefetchesIssued", JsonValue(result.cache.prefetchesIssued));
    cache.set("prefetchesUseful", JsonValue(result.cache.prefetchesUseful));
    cache.set("prefetchFillsFromMem",
              JsonValue(result.cache.prefetchFillsFromMem));
    out.set("cache", std::move(cache));
    out.set("cacheFootprintLines", JsonValue(result.cacheFootprintLines));
    out.set("cacheLineSetDigest", JsonValue(result.cacheLineSetDigest));

    JsonValue cacheKernels = JsonValue::array();
    for (const auto& kernel : result.cacheKernels) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue(kernel.name));
      entry.set("instructions", JsonValue(kernel.instructions));
      entry.set("loads", JsonValue(kernel.loads));
      entry.set("stores", JsonValue(kernel.stores));
      entry.set("l1Misses", JsonValue(kernel.l1Misses));
      entry.set("l2Misses", JsonValue(kernel.l2Misses));
      entry.set("footprintLines", JsonValue(kernel.footprintLines));
      entry.set("lineSetDigest", JsonValue(kernel.lineSetDigest));
      cacheKernels.push(std::move(entry));
    }
    out.set("cacheKernels", std::move(cacheKernels));
  }
  out.set("hasCacheAwareCp", JsonValue(result.hasCacheAwareCp));
  out.set("cacheAwareCriticalPath", JsonValue(result.cacheAwareCriticalPath));

  out.set("hasThroughput", JsonValue(result.hasThroughput));
  if (result.hasThroughput) {
    out.set("throughputProgram", encodeKernelBound(result.throughputProgram));
    JsonValue kernelsOut = JsonValue::array();
    for (const auto& kernel : result.throughputKernels) {
      kernelsOut.push(encodeKernelBound(kernel));
    }
    out.set("throughputKernels", std::move(kernelsOut));
  }

  out.set("hasFusion", JsonValue(result.hasFusion));
  if (result.hasFusion) {
    out.set("fusedInstructions", JsonValue(result.fusedInstructions));
    out.set("fusionPairs", JsonValue(result.fusionPairs));
    JsonValue byRule = JsonValue::array();
    for (const std::uint64_t count : result.fusionPairsByRule) {
      byRule.push(JsonValue(count));
    }
    out.set("fusionPairsByRule", std::move(byRule));
    out.set("fusionUnattributedPairs",
            JsonValue(result.fusionUnattributedPairs));
    JsonValue fusionKernels = JsonValue::array();
    for (const auto& kernel : result.fusionKernels) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue(kernel.name));
      entry.set("pairs", JsonValue(kernel.pairs));
      JsonValue kernelByRule = JsonValue::array();
      for (const std::uint64_t count : kernel.byRule) {
        kernelByRule.push(JsonValue(count));
      }
      entry.set("byRule", std::move(kernelByRule));
      fusionKernels.push(std::move(entry));
    }
    out.set("fusionKernels", std::move(fusionKernels));
    JsonValue fusedKernels = JsonValue::array();
    for (const auto& kernel : result.fusedKernels) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue(kernel.name));
      entry.set("count", JsonValue(kernel.count));
      fusedKernels.push(std::move(entry));
    }
    out.set("fusedKernels", std::move(fusedKernels));
    out.set("fusedCriticalPath", JsonValue(result.fusedCriticalPath));
    out.set("hasFusedScaledCp", JsonValue(result.hasFusedScaledCp));
    out.set("fusedScaledCriticalPath",
            JsonValue(result.fusedScaledCriticalPath));
  }

  out.set("hasMemSystem", JsonValue(result.hasMemSystem));
  if (result.hasMemSystem) {
    JsonValue mem = JsonValue::object();
    JsonValue tlb = JsonValue::object();
    tlb.set("accesses", JsonValue(result.memSystem.tlb.accesses));
    tlb.set("l1Hits", JsonValue(result.memSystem.tlb.l1Hits));
    tlb.set("l1Misses", JsonValue(result.memSystem.tlb.l1Misses));
    tlb.set("l2Hits", JsonValue(result.memSystem.tlb.l2Hits));
    tlb.set("walks", JsonValue(result.memSystem.tlb.walks));
    tlb.set("walkCycles", JsonValue(result.memSystem.tlb.walkCycles));
    mem.set("tlb", std::move(tlb));
    mem.set("footprintPages", JsonValue(result.memSystem.footprintPages));
    mem.set("pageSetDigest", JsonValue(result.memSystem.pageSetDigest));
    mem.set("demandFillBytes", JsonValue(result.memSystem.demandFillBytes));
    mem.set("prefetchFillBytes",
            JsonValue(result.memSystem.prefetchFillBytes));
    mem.set("writebackBytes", JsonValue(result.memSystem.writebackBytes));
    mem.set("missCycles", JsonValue(result.memSystem.missCycles));
    mem.set("mshrBoundCycles", JsonValue(result.memSystem.mshrBoundCycles));
    mem.set("bandwidthBoundCycles",
            JsonValue(result.memSystem.bandwidthBoundCycles));
    out.set("memSystem", std::move(mem));

    JsonValue memKernels = JsonValue::array();
    for (const auto& kernel : result.memKernels) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue(kernel.name));
      entry.set("instructions", JsonValue(kernel.instructions));
      entry.set("tlbAccesses", JsonValue(kernel.tlbAccesses));
      entry.set("tlbWalks", JsonValue(kernel.tlbWalks));
      entry.set("footprintPages", JsonValue(kernel.footprintPages));
      entry.set("pageSetDigest", JsonValue(kernel.pageSetDigest));
      memKernels.push(std::move(entry));
    }
    out.set("memKernels", std::move(memKernels));

    JsonValue scaling = JsonValue::array();
    for (const auto& point : result.memScaling) {
      JsonValue entry = JsonValue::object();
      entry.set("cores", JsonValue(static_cast<std::uint64_t>(point.cores)));
      JsonValue perCore = JsonValue::array();
      for (const auto& share : point.perCore) {
        JsonValue coreEntry = JsonValue::object();
        coreEntry.set("accesses", JsonValue(share.accesses));
        coreEntry.set("l1Misses", JsonValue(share.l1Misses));
        coreEntry.set("l2Hits", JsonValue(share.l2Hits));
        coreEntry.set("l2Misses", JsonValue(share.l2Misses));
        coreEntry.set("latencyCycles", JsonValue(share.latencyCycles));
        perCore.push(std::move(coreEntry));
      }
      entry.set("perCore", std::move(perCore));
      entry.set("sharedL2Accesses", JsonValue(point.sharedL2Accesses));
      entry.set("sharedL2Hits", JsonValue(point.sharedL2Hits));
      entry.set("sharedL2Misses", JsonValue(point.sharedL2Misses));
      entry.set("sharedWritebacksToMem",
                JsonValue(point.sharedWritebacksToMem));
      entry.set("bytesFromMem", JsonValue(point.bytesFromMem));
      entry.set("bandwidthBoundCycles",
                JsonValue(point.bandwidthBoundCycles));
      entry.set("mshrBoundCycles", JsonValue(point.mshrBoundCycles));
      scaling.push(std::move(entry));
    }
    out.set("memScaling", std::move(scaling));
  }

  return out;
}

CellResult decodeCell(const JsonValue& value) {
  if (value.at("v").asUint() != kCodecV) {
    throw ConfigError("cell codec: unsupported version " +
                      std::to_string(value.at("v").asUint()));
  }
  CellResult result;

  const JsonValue& key = value.at("key");
  result.key.workload = key.at("workload").asString();
  result.key.workloadIndex = key.at("w").asUint();
  result.key.config = decodeConfig(key.at("config"));
  result.key.configIndex = key.at("c").asUint();

  const JsonValue& status = value.at("cell");
  result.cell.name = status.at("name").asString();
  result.cell.ok = status.at("ok").asBool();
  if (!result.cell.ok) {
    result.cell.kind = status.at("kind").asString();
    result.cell.summary = status.at("summary").asString();
  }
  if (value.has("faultText")) {
    result.faultText = value.at("faultText").asString();
  }

  result.instructions = value.at("instructions").asUint();

  for (const JsonValue& entry : value.at("kernels").items()) {
    result.kernels.push_back(
        {entry.at("name").asString(), entry.at("count").asUint()});
  }

  const auto& groups = value.at("groups").items();
  if (groups.size() != result.groups.size()) {
    throw ConfigError("cell codec: group-count mismatch");
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    result.groups[g] = groups[g].asUint();
  }
  result.unattributed = value.at("unattributed").asUint();

  result.criticalPath = value.at("criticalPath").asUint();
  result.hasScaledCp = value.at("hasScaledCp").asBool();
  result.scaledCriticalPath = value.at("scaledCriticalPath").asUint();

  for (const JsonValue& entry : value.at("windows").items()) {
    WindowedCPAnalyzer::WindowResult window;
    window.windowSize = static_cast<std::uint32_t>(entry.at("size").asUint());
    window.windows = entry.at("windows").asUint();
    window.meanCp = unbits(entry.at("meanCp"));
    window.meanIlp = unbits(entry.at("meanIlp"));
    window.minCp = unbits(entry.at("minCp"));
    window.maxCp = unbits(entry.at("maxCp"));
    result.windows.push_back(window);
  }

  const JsonValue& deps = value.at("deps");
  result.deps.dependencies = deps.at("dependencies").asUint();
  result.deps.meanDistance = unbits(deps.at("meanDistance"));
  result.deps.within4 = unbits(deps.at("within4"));
  result.deps.within16 = unbits(deps.at("within16"));
  result.deps.within64 = unbits(deps.at("within64"));

  result.hasCache = value.at("hasCache").asBool();
  if (result.hasCache) {
    const JsonValue& cache = value.at("cache");
    result.cache.loads = cache.at("loads").asUint();
    result.cache.stores = cache.at("stores").asUint();
    result.cache.l1Hits = cache.at("l1Hits").asUint();
    result.cache.l1Misses = cache.at("l1Misses").asUint();
    result.cache.l2Hits = cache.at("l2Hits").asUint();
    result.cache.l2Misses = cache.at("l2Misses").asUint();
    result.cache.writebacksToL2 = cache.at("writebacksToL2").asUint();
    result.cache.writebacksToMem = cache.at("writebacksToMem").asUint();
    result.cache.prefetchesIssued = cache.at("prefetchesIssued").asUint();
    result.cache.prefetchesUseful = cache.at("prefetchesUseful").asUint();
    result.cache.prefetchFillsFromMem =
        cache.at("prefetchFillsFromMem").asUint();
    result.cacheFootprintLines = value.at("cacheFootprintLines").asUint();
    result.cacheLineSetDigest = value.at("cacheLineSetDigest").asUint();
    for (const JsonValue& entry : value.at("cacheKernels").items()) {
      uarch::mem::CacheModelAnalyzer::KernelStats kernel;
      kernel.name = entry.at("name").asString();
      kernel.instructions = entry.at("instructions").asUint();
      kernel.loads = entry.at("loads").asUint();
      kernel.stores = entry.at("stores").asUint();
      kernel.l1Misses = entry.at("l1Misses").asUint();
      kernel.l2Misses = entry.at("l2Misses").asUint();
      kernel.footprintLines = entry.at("footprintLines").asUint();
      kernel.lineSetDigest = entry.at("lineSetDigest").asUint();
      result.cacheKernels.push_back(std::move(kernel));
    }
  }
  result.hasCacheAwareCp = value.at("hasCacheAwareCp").asBool();
  result.cacheAwareCriticalPath = value.at("cacheAwareCriticalPath").asUint();

  result.hasThroughput = value.at("hasThroughput").asBool();
  if (result.hasThroughput) {
    result.throughputProgram =
        decodeKernelBound(value.at("throughputProgram"));
    for (const JsonValue& entry : value.at("throughputKernels").items()) {
      result.throughputKernels.push_back(decodeKernelBound(entry));
    }
  }

  result.hasFusion = value.at("hasFusion").asBool();
  if (result.hasFusion) {
    result.fusedInstructions = value.at("fusedInstructions").asUint();
    result.fusionPairs = value.at("fusionPairs").asUint();
    const auto& byRule = value.at("fusionPairsByRule").items();
    if (byRule.size() != result.fusionPairsByRule.size()) {
      throw ConfigError("cell codec: fusion rule-count mismatch");
    }
    for (std::size_t r = 0; r < byRule.size(); ++r) {
      result.fusionPairsByRule[r] = byRule[r].asUint();
    }
    result.fusionUnattributedPairs =
        value.at("fusionUnattributedPairs").asUint();
    for (const JsonValue& entry : value.at("fusionKernels").items()) {
      uarch::FusionPass::KernelFusion kernel;
      kernel.name = entry.at("name").asString();
      kernel.pairs = entry.at("pairs").asUint();
      const auto& kernelByRule = entry.at("byRule").items();
      if (kernelByRule.size() != kernel.byRule.size()) {
        throw ConfigError("cell codec: fusion rule-count mismatch");
      }
      for (std::size_t r = 0; r < kernelByRule.size(); ++r) {
        kernel.byRule[r] = kernelByRule[r].asUint();
      }
      result.fusionKernels.push_back(std::move(kernel));
    }
    for (const JsonValue& entry : value.at("fusedKernels").items()) {
      result.fusedKernels.push_back(
          {entry.at("name").asString(), entry.at("count").asUint()});
    }
    result.fusedCriticalPath = value.at("fusedCriticalPath").asUint();
    result.hasFusedScaledCp = value.at("hasFusedScaledCp").asBool();
    result.fusedScaledCriticalPath =
        value.at("fusedScaledCriticalPath").asUint();
  }

  result.hasMemSystem = value.at("hasMemSystem").asBool();
  if (result.hasMemSystem) {
    const JsonValue& mem = value.at("memSystem");
    const JsonValue& tlb = mem.at("tlb");
    result.memSystem.tlb.accesses = tlb.at("accesses").asUint();
    result.memSystem.tlb.l1Hits = tlb.at("l1Hits").asUint();
    result.memSystem.tlb.l1Misses = tlb.at("l1Misses").asUint();
    result.memSystem.tlb.l2Hits = tlb.at("l2Hits").asUint();
    result.memSystem.tlb.walks = tlb.at("walks").asUint();
    result.memSystem.tlb.walkCycles = tlb.at("walkCycles").asUint();
    result.memSystem.footprintPages = mem.at("footprintPages").asUint();
    result.memSystem.pageSetDigest = mem.at("pageSetDigest").asUint();
    result.memSystem.demandFillBytes = mem.at("demandFillBytes").asUint();
    result.memSystem.prefetchFillBytes = mem.at("prefetchFillBytes").asUint();
    result.memSystem.writebackBytes = mem.at("writebackBytes").asUint();
    result.memSystem.missCycles = mem.at("missCycles").asUint();
    result.memSystem.mshrBoundCycles = mem.at("mshrBoundCycles").asUint();
    result.memSystem.bandwidthBoundCycles =
        mem.at("bandwidthBoundCycles").asUint();
    for (const JsonValue& entry : value.at("memKernels").items()) {
      uarch::mem::MemKernelStats kernel;
      kernel.name = entry.at("name").asString();
      kernel.instructions = entry.at("instructions").asUint();
      kernel.tlbAccesses = entry.at("tlbAccesses").asUint();
      kernel.tlbWalks = entry.at("tlbWalks").asUint();
      kernel.footprintPages = entry.at("footprintPages").asUint();
      kernel.pageSetDigest = entry.at("pageSetDigest").asUint();
      result.memKernels.push_back(std::move(kernel));
    }
    for (const JsonValue& entry : value.at("memScaling").items()) {
      uarch::mem::ScalingPoint point;
      point.cores = static_cast<std::uint32_t>(entry.at("cores").asUint());
      for (const JsonValue& coreEntry : entry.at("perCore").items()) {
        uarch::mem::CoreShare share;
        share.accesses = coreEntry.at("accesses").asUint();
        share.l1Misses = coreEntry.at("l1Misses").asUint();
        share.l2Hits = coreEntry.at("l2Hits").asUint();
        share.l2Misses = coreEntry.at("l2Misses").asUint();
        share.latencyCycles = coreEntry.at("latencyCycles").asUint();
        point.perCore.push_back(share);
      }
      point.sharedL2Accesses = entry.at("sharedL2Accesses").asUint();
      point.sharedL2Hits = entry.at("sharedL2Hits").asUint();
      point.sharedL2Misses = entry.at("sharedL2Misses").asUint();
      point.sharedWritebacksToMem =
          entry.at("sharedWritebacksToMem").asUint();
      point.bytesFromMem = entry.at("bytesFromMem").asUint();
      point.bandwidthBoundCycles = entry.at("bandwidthBoundCycles").asUint();
      point.mshrBoundCycles = entry.at("mshrBoundCycles").asUint();
      result.memScaling.push_back(std::move(point));
    }
  }

  return result;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t cellDigest(const CellResult& result) {
  return fnv1a64(encodeCell(result).dump());
}

std::string digestHex(std::uint64_t digest) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

}  // namespace riscmp::engine
