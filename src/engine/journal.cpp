#include "engine/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "engine/cell_codec.hpp"
#include "support/atomic_file.hpp"
#include "support/fault.hpp"

namespace riscmp::engine {

using support::JsonValue;

namespace {

JsonValue headerJson(const JournalHeader& header) {
  JsonValue out = JsonValue::object();
  out.set("type", JsonValue("header"));
  out.set("v", JsonValue(kJournalV));
  JsonValue workloads = JsonValue::array();
  for (const std::string& name : header.workloads) {
    workloads.push(JsonValue(name));
  }
  out.set("workloads", std::move(workloads));
  JsonValue configs = JsonValue::array();
  for (const std::string& name : header.configs) {
    configs.push(JsonValue(name));
  }
  out.set("configs", std::move(configs));
  out.set("budget", JsonValue(header.budget));
  out.set("analyses", JsonValue(header.analyses));
  return out;
}

JournalHeader decodeHeader(const JsonValue& value) {
  JournalHeader header;
  for (const JsonValue& name : value.at("workloads").items()) {
    header.workloads.push_back(name.asString());
  }
  for (const JsonValue& name : value.at("configs").items()) {
    header.configs.push_back(name.asString());
  }
  header.budget = value.at("budget").asUint();
  header.analyses = value.at("analyses").asUint();
  return header;
}

JsonValue cellJson(const JournalEntry& entry) {
  JsonValue out = JsonValue::object();
  out.set("type", JsonValue("cell"));
  out.set("v", JsonValue(kJournalV));
  out.set("name", JsonValue(entry.name));
  out.set("fp", JsonValue(entry.fingerprint));
  out.set("ok", JsonValue(entry.result.cell.ok));
  out.set("digest", JsonValue(digestHex(cellDigest(entry.result))));
  out.set("result", encodeCell(entry.result));
  return out;
}

void appendLine(int fd, const std::string& line) {
  std::string payload = line;
  payload.push_back('\n');
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + written,
                              payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ConfigError("journal: append failed: " +
                        std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string RunJournal::cellLine(const JournalEntry& entry) {
  return cellJson(entry).dump();
}

RunJournal::RunJournal(std::string path, const JournalHeader& header)
    : path_(std::move(path)), header_(header) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw ConfigError("journal: cannot open " + path_ + ": " +
                      std::string(std::strerror(errno)));
  }
  struct stat st{};
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    appendLine(fd_, headerJson(header_).dump());
  }
}

RunJournal::~RunJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void RunJournal::append(const JournalEntry& entry, std::uint64_t elapsedUs,
                        unsigned attempt) {
  // Volatile operational fields ride on the durable record but are dropped
  // from the canonical rewrite, keeping final journals deterministic.
  JsonValue record = cellJson(entry);
  record.set("us", JsonValue(elapsedUs));
  record.set("attempt", JsonValue(static_cast<std::uint64_t>(attempt)));
  appendLine(fd_, record.dump());
}

void RunJournal::finalize(const std::vector<JournalEntry>& entries) {
  std::ostringstream out;
  out << headerJson(header_).dump() << "\n";
  std::size_t failed = 0;
  for (const JournalEntry& entry : entries) {
    if (!entry.result.cell.ok) ++failed;
    out << cellJson(entry).dump() << "\n";
  }
  JsonValue end = JsonValue::object();
  end.set("type", JsonValue("end"));
  end.set("cells", JsonValue(static_cast<std::uint64_t>(entries.size())));
  end.set("failed", JsonValue(static_cast<std::uint64_t>(failed)));
  out << end.dump() << "\n";

  std::string error;
  if (!support::writeFileAtomic(path_, out.str(), &error)) {
    throw ConfigError("journal: " + error);
  }
  // Reopen the append fd: the rename replaced the inode we held.
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
}

RunJournal::Loaded RunJournal::load(const std::string& path) {
  Loaded loaded;
  std::ifstream in(path);
  if (!in) return loaded;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parsed = JsonValue::tryParse(line);
    if (!parsed) {
      // Torn trailing line after a crash, or stray corruption: the cell
      // it described simply re-runs.
      ++loaded.skippedLines;
      continue;
    }
    try {
      const std::string& type = parsed->at("type").asString();
      if (type == "header") {
        loaded.header = decodeHeader(*parsed);
        loaded.hasHeader = true;
      } else if (type == "cell") {
        if (parsed->at("v").asUint() != kJournalV) {
          ++loaded.skippedLines;
          continue;
        }
        JournalEntry entry;
        entry.name = parsed->at("name").asString();
        entry.fingerprint = parsed->at("fp").asString();
        entry.result = decodeCell(parsed->at("result"));
        // The embedded digest must match a re-encoding of the decoded
        // result — any drift means the record cannot reproduce the
        // original cell byte-for-byte, so it is not reusable.
        if (parsed->at("digest").asString() !=
            digestHex(cellDigest(entry.result))) {
          ++loaded.skippedLines;
          continue;
        }
        loaded.entries[entry.name] = std::move(entry);  // last record wins
      }
      // "end" lines carry no per-cell state; nothing to do.
    } catch (const ConfigError&) {
      ++loaded.skippedLines;
    }
  }
  return loaded;
}

}  // namespace riscmp::engine
