// Process-sandboxed cell execution (ISSUE 6 tentpole, --isolate=process).
//
// Each experiment cell is dispatched to a forked worker subprocess: the
// child runs the cell with the full in-process machinery (everything is
// inherited across fork, including the suite, configs, and options
// closures), serializes its complete CellResult over a pipe, and _exit()s.
// The parent — which stays single-threaded while the pool runs — drives up
// to `jobs` concurrent children with poll(2)/waitpid(2):
//
//   child writes payload + EOF, exits 0  -> Status::Payload (the pipe
//       protocol: one cell_codec JSON document, length-delimited by EOF)
//   child dies on a signal (SIGSEGV, SIGKILL, OOM kill, abort)
//       -> Status::Crashed with the signal number; the grid continues
//   child exits non-zero or closes the pipe without a valid payload
//       -> Status::Crashed with the exit code
//   child overruns the wall-clock deadline -> parent SIGKILLs it and
//       reports Status::TimedOut (preemptive, unlike the cooperative
//       thread-mode watchdog — a worker wedged anywhere dies here)
//
// Crashed and TimedOut attempts are the "transient" class: the pool
// re-forks them up to `retries` times with seeded exponential backoff
// before surfacing the final outcome. Payload outcomes are never retried —
// an in-taxonomy fault captured by the cell's own boundary is
// deterministic. This is the same harness/untrusted-execution split QBDI's
// validator uses: the orchestrator must survive anything the executed cell
// does.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace riscmp::engine {

struct WorkerOutcome {
  enum class Status : std::uint8_t { Payload, Crashed, TimedOut };
  Status status = Status::Payload;
  std::string payload;  ///< child's pipe payload (Status::Payload)
  int signo = 0;        ///< terminating signal (Crashed; 0 for bad exits)
  int exitCode = 0;     ///< exit code (Crashed with signo == 0)
  std::uint64_t elapsedUs = 0;
  unsigned attempt = 0;  ///< attempt index that produced this outcome
};

struct ProcessPoolOptions {
  unsigned jobs = 1;             ///< max concurrent worker processes
  std::uint32_t deadlineMs = 0;  ///< per-attempt wall clock (0 = none)
  unsigned retries = 0;          ///< extra attempts for Crashed/TimedOut
  unsigned backoffBaseMs = 100;  ///< retry backoff base (doubles per try)
  std::uint64_t retrySeed = 0;   ///< jitter seed (deterministic schedule)
  bool failFast = false;         ///< stop forking after the first failure
};

/// Deterministic retry backoff: base << (attempt-1) plus seeded jitter in
/// [0, base). Shared by the process pool and the thread-mode retry loop so
/// both isolation modes follow the same schedule.
std::uint64_t retryBackoffDelayMs(unsigned backoffBaseMs, std::uint64_t seed,
                                  std::size_t task, unsigned attempt);

/// Run tasks [0, count) in forked workers, at most options.jobs at a time,
/// entirely from the calling thread. `childRun(task)` executes in the
/// forked child and returns the payload bytes to ship back; it must not
/// throw. `onOutcome(task, outcome)` executes in the parent as each task
/// reaches its final outcome, and returns true when the task's cell
/// succeeded (steering --fail-fast). Returns the tasks never started
/// because fail-fast tripped, in ascending order.
std::vector<std::size_t> runForkedCells(
    std::size_t count, const ProcessPoolOptions& options,
    const std::function<std::string(std::size_t)>& childRun,
    const std::function<bool(std::size_t, const WorkerOutcome&)>& onOutcome);

}  // namespace riscmp::engine
