// Declarative experiment-grid specification (ISSUE 9, layer 1).
//
// Every report bench used to re-describe its grid imperatively: build the
// paper suite at some scale, pick configs, set an analyses mask, load core
// models, and wire four axis closures into EngineOptions. That description
// was duplicated across 10+ benches and — being closures — could neither
// be serialized to a daemon nor fingerprinted for a result store. GridSpec
// is that description as data:
//
//   workload filter × configs × analyses mask (+ GCC 12.2-only extras)
//   × window sizes × budget × scale × per-arch core-model axis
//
// with an exact JSON round-trip (the simd socket protocol's request body),
// a canonical fingerprint (the daemon's request-batching key), and one
// shared resolver that turns the spec into the suite/configs/EngineOptions
// triple the engine consumes. The resolver also derives one content key
// per cell — module bytes, arch, era, effective analyses, budget, window
// sizes, and the core-model file content all folded in — which is what the
// ResultStore addresses results by. Benches become thin renderers over
// GridSpec → GridResult and stop caring where the cells were computed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "support/json_lite.hpp"
#include "uarch/core_model.hpp"

namespace riscmp::engine {

inline constexpr std::uint64_t kGridSpecV = 2;  // v2: mem_cores axis

/// A complete, serializable description of one experiment grid. Execution
/// details that do not change any cell's numbers (worker count, isolation
/// mode, deadlines, journal paths) deliberately stay out — they live in
/// EngineOptions and may differ between the processes that share results.
struct GridSpec {
  /// Workload stretch factor (the benches' --scale); part of the module
  /// content, so it needs no separate slot in the cell fingerprints.
  double scale = 1.0;
  /// Suite filter by workload name; empty = the full paper suite.
  std::vector<std::string> workloads;
  /// Grid columns; empty = the paper's four configs.
  std::vector<Config> configs;
  /// AnalysisFlags mask attached to every cell.
  unsigned analyses = kAllAnalyses;
  /// Extra analyses for GCC 12.2 cells only (the paper runs Figure 2 and
  /// §6.2 on the newer binaries alone).
  unsigned gcc12Analyses = 0;
  /// Window sizes for kWindowedCP; empty = the paper's 4...2000 set.
  std::vector<std::uint32_t> windowSizes;
  /// Per-cell instruction budget (0 = unlimited).
  std::uint64_t budget = kDefaultInstructionBudget;
  /// Directory core-model YAML files load from; empty = the repository
  /// configs/ directory.
  std::string configDir;
  /// Core-model names (file stem under configDir) feeding the latency /
  /// cache / throughput / fusion axes per arch; empty = no model axes for
  /// cells of that arch.
  std::string modelA64;
  std::string modelRv64;
  /// Shared-L2 scaling points for kMemSystem cells (EngineOptions::
  /// memCores); part of the spec fingerprint when the analysis is on.
  std::vector<unsigned> memCores = {1, 2, 4};
  /// When set, a cell whose arch names a model that failed to load — or
  /// that lacks a section an enabled analysis needs (caches: for the cache
  /// analyses, fusion: for kFusion) — fails with a per-cell ConfigError
  /// instead of silently running without the axis.
  bool requireModels = false;
};

/// Exact JSON round-trip (scale travels as its IEEE-754 bit pattern, like
/// every double in cell_codec). gridSpecFromJson throws ConfigError on
/// version or shape mismatch.
support::JsonValue gridSpecToJson(const GridSpec& spec);
GridSpec gridSpecFromJson(const support::JsonValue& value);

/// The grid's axes materialized, without any core-model I/O — what a
/// renderer needs for table headers whether cells run locally or arrive
/// from a daemon. Throws ConfigError on invalid scale or an unknown
/// workload name.
struct GridShape {
  std::vector<workloads::WorkloadSpec> suite;
  std::vector<Config> configs;
};
GridShape resolveGridShape(const GridSpec& spec);

/// Core models backing the spec's axis closures; shared so the closures
/// stay valid however ResolvedGrid is copied or moved.
struct GridModels {
  std::optional<uarch::CoreModel> a64;
  std::optional<uarch::CoreModel> rv64;
  std::optional<ThroughputModel> a64Throughput;
  std::optional<ThroughputModel> rv64Throughput;
  std::string a64Error;  ///< load-failure text ("" when loaded or unnamed)
  std::string rv64Error;
  std::uint64_t a64Digest = 0;  ///< FNV-1a of the model file bytes
  std::uint64_t rv64Digest = 0;
};

/// A spec bound to engine inputs: the resolved suite/configs, EngineOptions
/// whose axis closures serve the loaded models, one ResultStore content key
/// per cell (dense grid order), and the whole-grid fingerprint the daemon
/// batches identical requests on.
struct ResolvedGrid {
  std::vector<workloads::WorkloadSpec> suite;
  std::vector<Config> configs;
  std::shared_ptr<const GridModels> models;
  EngineOptions options;
  std::vector<std::string> cellKeys;
  std::string fingerprint;
};

/// Resolve `spec` against `base` execution options (jobs, isolation,
/// deadlines, journal/store wiring — everything the spec itself does not
/// govern). base.cellSetup is preserved and runs before the spec's own
/// requireModels check; base.analyses/budget/windowSizes and the four axis
/// closures are overwritten from the spec. Model-load failures are
/// recorded in `models` rather than thrown: with requireModels they become
/// per-cell ConfigErrors, otherwise the affected axes are simply absent,
/// exactly like the benches they replace.
ResolvedGrid resolveGridSpec(const GridSpec& spec, const EngineOptions& base);

/// Spelling helpers for the JSON encoding ("a64"/"rv64", "gcc9"/"gcc12");
/// parsers throw ConfigError on unknown tokens.
std::string archToken(Arch arch);
Arch archFromToken(const std::string& token);
std::string eraToken(kgen::CompilerEra era);
kgen::CompilerEra eraFromToken(const std::string& token);

}  // namespace riscmp::engine
