// Append-only run journal with atomic canonical rewrite (ISSUE 6).
//
// One JSONL file records a grid run cell by cell so a crashed or killed
// harness never loses completed work:
//
//   {"type":"header","v":1,"workloads":[...],"configs":[...],"budget":N,
//    "analyses":N}
//   {"type":"cell","v":1,"name":"stream/GCC 9.2 AArch64","fp":"<compile
//    fingerprint>","ok":true,"digest":"<fnv64 of result>","us":1234,
//    "attempt":0,"result":{...cell_codec...}}
//   ...
//   {"type":"end","cells":20,"failed":0}
//
// During the run, entries append in *completion* order — each one a single
// O_APPEND write of one line, immediately durable — and carry wall-clock
// timing and the retry attempt that produced them. When the run finishes,
// the whole file is atomically rewritten (support/atomic_file) in
// canonical *cell* order with the volatile "us"/"attempt" fields dropped,
// so fault-free journals are byte-identical whatever --jobs produced them.
//
// --resume reads either form: the loader takes the last record per cell,
// verifies the embedded result digest and the compile fingerprint, and
// hands back only trustworthy completed cells; torn trailing lines (the
// crash case) and corrupt records are skipped, which simply re-runs those
// cells. A header mismatch (different workloads/configs/budget) rejects
// the resume outright rather than splicing incompatible grids.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.hpp"

namespace riscmp::engine {

inline constexpr std::uint64_t kJournalV = 1;

/// Grid identity pinned in the journal's first line. Resume refuses to
/// splice results across different grids.
struct JournalHeader {
  std::vector<std::string> workloads;  ///< suite names, in grid order
  std::vector<std::string> configs;    ///< configName()s, in grid order
  std::uint64_t budget = 0;
  std::uint64_t analyses = 0;  ///< EngineOptions::analyses mask

  bool operator==(const JournalHeader&) const = default;
};

/// One completed (or failed) cell as recorded in the journal.
struct JournalEntry {
  std::string name;         ///< "workload/config" cell key
  std::string fingerprint;  ///< CompileCache fingerprint of the cell input
  CellResult result;
};

class RunJournal {
 public:
  /// Open `path` for appending (creating it with the header line when new
  /// or empty). Throws ConfigError when the path cannot be opened.
  RunJournal(std::string path, const JournalHeader& header);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Durably append one cell record: a single O_APPEND write of one
  /// newline-terminated line, safe against concurrent worker appends and
  /// never leaving a half-old/half-new record on crash.
  void append(const JournalEntry& entry, std::uint64_t elapsedUs,
              unsigned attempt);

  /// Atomically replace the file with the canonical form: header, every
  /// entry in grid cell order without volatile timing fields, end line.
  void finalize(const std::vector<JournalEntry>& entries);

  [[nodiscard]] const std::string& path() const { return path_; }

  struct Loaded {
    bool hasHeader = false;
    JournalHeader header;
    /// Last trustworthy record per cell name (digest and codec verified).
    std::unordered_map<std::string, JournalEntry> entries;
    std::size_t skippedLines = 0;  ///< torn/corrupt lines ignored
  };
  /// Read a journal for resume. A missing file yields an empty Loaded;
  /// malformed lines are counted, not fatal.
  static Loaded load(const std::string& path);

  /// The canonical one-line spelling of a cell record (exposed so tests
  /// can pin the wire format).
  static std::string cellLine(const JournalEntry& entry);

 private:
  std::string path_;
  JournalHeader header_;
  int fd_ = -1;
};

}  // namespace riscmp::engine
