// Persistent content-addressed cell-result store (ISSUE 9, layer 2).
//
// The engine already guarantees each cell simulates at most once *within*
// a process (CompileCache + single-pass runGrid) and at most once across
// crashes of one run (the RunJournal). This store extends that guarantee
// across processes and across time: every completed CellResult is written
// — via the exact cell_codec v3 encoding and writeFileAtomic, so readers
// only ever see whole records — under a content key that fingerprints
// everything the result depends on (module bytes, arch, era, analyses
// mask, budget, window sizes, and the core-model file content feeding the
// latency/cache/throughput/fusion axes; see grid_spec.hpp). Any process
// that later asks for the same cell gets the stored result for free, and
// because the codec is bit-exact the rendered report is byte-identical to
// a fresh simulation. This is what makes a warm `simd` daemon serve whole
// grids with zero simulations.
//
// Layout (one file per cell, sharded on the first key byte so directories
// stay small at production cell counts):
//
//   <root>/v<kCodecV>/<key[0..1]>/<key>.json
//   {"v":3,"key":"<16 hex>","digest":"<16 hex>","result":{...cell_codec}}
//
// Trust model: load() verifies the codec version, the embedded key, and
// the result digest before handing anything back; a torn, stale, or
// corrupt file is a miss (counted, never fatal), which simply re-simulates
// the cell and overwrites the entry. Concurrent writers (parallel engine
// workers, several daemons sharing one store) are safe because every write
// is a whole-file rename of identical-by-construction content.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "engine/engine.hpp"

namespace riscmp::engine {

class ResultStore {
 public:
  /// A store rooted at `root` (created on first write, not here, so a
  /// read-only consumer of a missing store just sees misses).
  explicit ResultStore(std::string root);

  /// Fetch the cell stored under `key`; std::nullopt on miss or on any
  /// verification failure (wrong codec version, key mismatch, digest
  /// mismatch, unparseable file).
  std::optional<CellResult> load(const std::string& key);

  /// Persist `result` under `key` with writeFileAtomic. Returns false on
  /// I/O failure (the run still succeeds; the cell is just not cached).
  bool store(const std::string& key, const CellResult& result);

  [[nodiscard]] const std::string& root() const { return root_; }
  /// Absolute file path a key maps to (exposed so tests can tamper).
  [[nodiscard]] std::string cellPath(const std::string& key) const;

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }
  /// Files that existed but failed verification (subset of misses()).
  [[nodiscard]] std::uint64_t corrupt() const {
    return corrupt_.load(std::memory_order_relaxed);
  }
  /// Bytes of verified cell files served by load() (hits only), and bytes
  /// successfully persisted by store() — the sim_client --stats view of
  /// how much result traffic the store absorbed.
  [[nodiscard]] std::uint64_t bytesRead() const {
    return bytesRead_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytesWritten() const {
    return bytesWritten_.load(std::memory_order_relaxed);
  }

 private:
  std::string root_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> bytesRead_{0};
  std::atomic<std::uint64_t> bytesWritten_{0};
};

}  // namespace riscmp::engine
