// Exact CellResult (de)serialization (ISSUE 6 tentpole).
//
// Two transports share this codec: run-journal entries (so --resume can
// reuse a completed cell and still render a byte-identical report) and the
// process-isolation pipe protocol (so a forked worker can hand its whole
// result back to the parent). Exactness is the contract: every numeric
// field round-trips bit-for-bit — doubles are carried as their IEEE-754
// bit patterns, not decimal renderings — and decode(encode(x)) must
// reproduce x down to the fault text. The schema is versioned (kCodecV);
// decoders reject other versions so a stale journal re-runs its cells
// instead of mispopulating a report.
#pragma once

#include <cstdint>
#include <string>

#include "engine/engine.hpp"
#include "support/json_lite.hpp"

namespace riscmp::engine {

inline constexpr std::uint64_t kCodecV = 4;  // v4: memory-system fields

/// Encode everything `result` carries, including the verify cell status
/// and captured fault text. The `key.workloadIndex`/`configIndex` fields
/// are encoded too — decode restores a fully positioned grid cell.
support::JsonValue encodeCell(const CellResult& result);

/// Inverse of encodeCell. Throws ConfigError on version or shape mismatch
/// (journal loaders treat that as "re-run this cell").
CellResult decodeCell(const support::JsonValue& value);

/// FNV-1a 64 over raw bytes (shared by cellDigest and the journal's
/// compact compile-fingerprint digests).
std::uint64_t fnv1a64(const std::string& bytes);

/// FNV-1a over the canonical encoding — the journal's per-entry result
/// digest. Any bit of drift in the stored result invalidates the entry.
std::uint64_t cellDigest(const CellResult& result);

/// Hex spelling used for digests in journal entries ("%016llx").
std::string digestHex(std::uint64_t digest);

}  // namespace riscmp::engine
