#include "engine/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace riscmp::engine {

CellScheduler::CellScheduler(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) jobs_ = std::max(1u, std::thread::hardware_concurrency());
}

void CellScheduler::run(std::size_t count,
                        const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  if (workers <= 1) {
    // In-line fast path: identical semantics, no thread overhead, and the
    // reference ordering for the determinism guarantee.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();

  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace riscmp::engine
